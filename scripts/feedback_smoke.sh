#!/usr/bin/env bash
# Feedback-loop smoke test: the full online learning loop through the real
# binaries, end to end —
#
#   1. train a tiny model, publish it, serve it in registry mode with the
#      feedback log and a bandit λ slice enabled,
#   2. drive load with DCM-simulated clicks POSTed to /v1/feedback
#      (zero dropped requests) and assert the rapid_feedback_* /
#      rapid_bandit_* series,
#   3. kill -9 the server mid-traffic and prove crash consistency: the
#      recovered log replays a byte-identical prefix of the log after
#      restart + more traffic,
#   4. run the rapidfeed trainer against the live admin API: it replays the
#      log, re-estimates the click model incrementally (verified ≡ batch
#      MLE), publishes the best bandit arm as a div-fb-* version, canaries
#      it and promotes it — the div-*/v* transition shows up in
#      /admin/models and /metrics.
#
# Run from the repo root: ./scripts/feedback_smoke.sh
set -euo pipefail

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

STORE="$WORK/models"
FLOG="$WORK/feedback"
ADDR="127.0.0.1:18090"
TOKEN="smoke-admin-token"

echo "== build"
go build -o "$WORK/rapidtrain" ./cmd/rapidtrain
go build -o "$WORK/rapidserve" ./cmd/rapidserve
go build -o "$WORK/rapidload" ./cmd/rapidload
go build -o "$WORK/rapidfeed" ./cmd/rapidfeed

echo "== train and publish a model version"
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 1 -out "$WORK/m1.gob" -publish "$STORE" 2>&1 | tail -2
MANIFEST_JSON="$(find "$STORE" -name '*.json' ! -name 'index.json' | head -1)"
[ -n "$MANIFEST_JSON" ] || { echo "FAIL: no manifest in $STORE"; exit 1; }

serve() {
    "$WORK/rapidserve" -model-root "$STORE" -addr "$ADDR" -admin-token "$TOKEN" \
        -canary-pct 50 \
        -feedback-log "$FLOG" -bandit-pct 50 -bandit-arms 'mmr@0.2,mmr@0.8' \
        -bandit-segments 4 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        curl -fs "http://$ADDR/readyz" >/dev/null 2>&1 && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: rapidserve died on startup"; exit 1; }
        sleep 0.2
    done
    echo "FAIL: server never became ready"; exit 1
}
metric() { awk -v m="$1" '$1 == m {print $2}' <<<"$2"; }
ge1() { awk -v v="${1:-0}" 'BEGIN { exit !(v >= 1) }'; }

echo "== serve with feedback log and bandit slice"
serve

echo "== load with simulated clicks (zero dropped requests)"
"$WORK/rapidload" -target "http://$ADDR" -manifest "$MANIFEST_JSON" \
    -rps 150 -duration 4s -users 200 -feedback-pct 80 -max-error-rate 0 \
    || { echo "FAIL: load with feedback dropped requests"; exit 1; }

echo "== feedback and bandit series on /metrics"
METRICS="$(curl -fs "http://$ADDR/metrics")"
ge1 "$(metric 'rapid_feedback_requests_total{status="accepted"}' "$METRICS")" \
    || { echo "FAIL: no accepted feedback requests counted"; exit 1; }
ge1 "$(metric 'rapid_feedback_events_total{result="ok"}' "$METRICS")" \
    || { echo "FAIL: no correlated feedback events ingested"; exit 1; }
ge1 "$(metric rapid_feedback_appended_total "$METRICS")" \
    || { echo "FAIL: no events appended to the feedback log"; exit 1; }
ge1 "$(metric rapid_feedback_log_records "$METRICS")" \
    || { echo "FAIL: feedback log stats not exported"; exit 1; }
ge1 "$(metric rapid_bandit_updates_total "$METRICS")" \
    || { echo "FAIL: bandit policy received no reward updates"; exit 1; }
grep -q 'rapid_bandit_served_total{arm="bandit-mmr@' <<<"$METRICS" \
    || { echo "FAIL: no bandit arm served traffic"; exit 1; }

echo "== kill -9 mid-traffic"
"$WORK/rapidload" -target "http://$ADDR" -manifest "$MANIFEST_JSON" \
    -rps 150 -duration 3s -users 200 -feedback-pct 80 >/dev/null 2>&1 &
LOAD_PID=$!
sleep 1
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
wait "$LOAD_PID" 2>/dev/null || true

echo "== dump the recovered log"
"$WORK/rapidfeed" -log "$FLOG" -dump >"$WORK/d1.txt"
D1_EVENTS="$(wc -l <"$WORK/d1.txt")"
ge1 "$D1_EVENTS" || { echo "FAIL: recovered log replayed no events"; exit 1; }
echo "   $D1_EVENTS events survived the crash"

echo "== restart over the recovered log, more traffic + trainer"
serve
"$WORK/rapidfeed" -log "$FLOG" -model-root "$STORE" -admin "http://$ADDR" \
    -admin-token "$TOKEN" -once \
    -min-events 50 -min-arm-pulls 20 -promote-after 10 -promote-timeout 45s \
    2>&1 | sed 's/^/   trainer: /' &
FEED_PID=$!
"$WORK/rapidload" -target "http://$ADDR" -manifest "$MANIFEST_JSON" \
    -rps 150 -duration 10s -users 200 -feedback-pct 50 -max-error-rate 0 \
    || { echo "FAIL: post-restart load dropped requests"; exit 1; }
wait "$FEED_PID" || { echo "FAIL: rapidfeed trainer step failed"; exit 1; }

echo "== online-learned version promoted through canary"
LIST="$(curl -fs -H "Authorization: Bearer $TOKEN" "http://$ADDR/admin/models")"
echo "$LIST"
grep -q '"version":"div-fb-1","state":"active"' <<<"$LIST" \
    || { echo "FAIL: div-fb-1 is not active after the trainer run"; exit 1; }
grep -q '"state":"previous"' <<<"$LIST" \
    || { echo "FAIL: the trained model version was not kept as rollback target"; exit 1; }
METRICS="$(curl -fs "http://$ADDR/metrics")"
grep -q 'rapid_model_requests_total{version="div-fb-1"}' <<<"$METRICS" \
    || { echo "FAIL: no per-version request series for div-fb-1"; exit 1; }

echo "== byte-identical log prefix across the crash"
kill "$SERVE_PID" && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
"$WORK/rapidfeed" -log "$FLOG" -dump >"$WORK/d2.txt"
head -c "$(wc -c <"$WORK/d1.txt")" "$WORK/d2.txt" | cmp -s - "$WORK/d1.txt" \
    || { echo "FAIL: pre-crash replay is not a byte prefix of the post-crash log"; exit 1; }
D2_EVENTS="$(wc -l <"$WORK/d2.txt")"
[ "$D2_EVENTS" -gt "$D1_EVENTS" ] \
    || { echo "FAIL: no new events landed after the restart"; exit 1; }

echo "== incremental re-estimate matches the batch MLE on the full log"
"$WORK/rapidfeed" -log "$FLOG" -estimate -check-batch >/dev/null \
    || { echo "FAIL: incremental and batch estimates diverge"; exit 1; }

echo "PASS: feedback loop smoke"
