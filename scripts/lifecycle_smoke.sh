#!/usr/bin/env bash
# Lifecycle smoke test: the full model-lifecycle path through the real
# binaries, end to end —
#
#   1. train two tiny models and publish both into a versioned store
#      (rapidtrain -publish),
#   2. serve the store (rapidserve -model-root): the newest version activates,
#   3. load the older version as a canary candidate and promote it through
#      the admin API,
#   4. assert GET /admin/models tracks the lifecycle states and /metrics
#      exposes per-version series for BOTH versions.
#
# Run from the repo root: ./scripts/lifecycle_smoke.sh
set -euo pipefail

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

STORE="$WORK/models"
ADDR="127.0.0.1:18080"
TOKEN="smoke-admin-token"

echo "== build"
go build -o "$WORK/rapidtrain" ./cmd/rapidtrain
go build -o "$WORK/rapidserve" ./cmd/rapidserve

echo "== train and publish two versions"
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 1 -out "$WORK/m1.gob" -publish "$STORE" 2>&1 | tail -2
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 2 -out "$WORK/m2.gob" -publish "$STORE" 2>&1 | tail -2

echo "== serve the store"
"$WORK/rapidserve" -model-root "$STORE" -addr "$ADDR" -admin-token "$TOKEN" \
    -canary-pct 50 -shadow &
SERVE_PID=$!

for _ in $(seq 1 100); do
    curl -fs "http://$ADDR/readyz" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: rapidserve died on startup"; exit 1; }
    sleep 0.2
done
curl -fs "http://$ADDR/readyz" >/dev/null || { echo "FAIL: server never became ready"; exit 1; }

admin() { # admin METHOD PATH [BODY]
    local method="$1" path="$2" body="${3:-}"
    curl -fs -X "$method" -H "Authorization: Bearer $TOKEN" \
        ${body:+-d "$body"} "http://$ADDR$path"
}

echo "== discover versions"
LIST="$(admin GET /admin/models)"
echo "$LIST"
mapfile -t VERSIONS < <(grep -o '"version":"[^"]*"' <<<"$LIST" | cut -d'"' -f4 | sort -u)
[ "${#VERSIONS[@]}" -eq 2 ] || { echo "FAIL: expected 2 versions, got ${#VERSIONS[@]}"; exit 1; }
OLD="${VERSIONS[0]}"   # published first; the newest auto-activated
NEW="${VERSIONS[1]}"
grep -q "\"version\":\"$NEW\",\"state\":\"active\"" <<<"$LIST" \
    || { echo "FAIL: newest version $NEW is not active at startup"; exit 1; }

echo "== load $OLD as canary candidate"
admin POST /admin/models/load "{\"version\":\"$OLD\"}" >/dev/null
LIST="$(admin GET /admin/models)"
grep -q "\"version\":\"$OLD\",\"state\":\"candidate\"" <<<"$LIST" \
    || { echo "FAIL: $OLD is not the candidate after load"; exit 1; }

echo "== promote $OLD"
admin POST /admin/models/promote "{\"version\":\"$OLD\"}" >/dev/null
LIST="$(admin GET /admin/models)"
grep -q "\"version\":\"$OLD\",\"state\":\"active\"" <<<"$LIST" \
    || { echo "FAIL: $OLD is not active after promote"; exit 1; }
grep -q "\"version\":\"$NEW\",\"state\":\"previous\"" <<<"$LIST" \
    || { echo "FAIL: $NEW is not kept as the rollback target"; exit 1; }

echo "== per-version metrics for both versions"
METRICS="$(curl -fs "http://$ADDR/metrics")"
for v in "$OLD" "$NEW"; do
    grep -q "rapid_model_requests_total{version=\"$v\"}" <<<"$METRICS" \
        || { echo "FAIL: /metrics has no request series for $v"; exit 1; }
    grep -q "rapid_model_request_latency_seconds_bucket{version=\"$v\"" <<<"$METRICS" \
        || { echo "FAIL: /metrics has no latency histogram for $v"; exit 1; }
done
grep -q "rapid_model_promotions_total 1" <<<"$METRICS" \
    || { echo "FAIL: promotion not counted"; exit 1; }

# Build one deterministic rerank body from the published manifest geometry,
# so the encoded-user-state cache (on by default) can be exercised with a
# byte-identical repeat request.
MANIFEST_JSON="$(find "$STORE" -name '*.json' | head -1)"
dim() { grep -o "\"$1\": *[0-9]*" "$MANIFEST_JSON" | head -1 | grep -o '[0-9]*$'; }
UD="$(dim UserDim)"; ID_="$(dim ItemDim)"; TP="$(dim Topics)"
[ -n "$UD" ] && [ -n "$ID_" ] && [ -n "$TP" ] \
    || { echo "FAIL: could not read dims from $MANIFEST_JSON"; exit 1; }
vec() { # vec N -> [0.1,0.2,...] with N entries
    local n="$1" out="" i
    for ((i = 0; i < n; i++)); do out="${out}${out:+,}0.$((i % 9 + 1))"; done
    echo "[$out]"
}
UF="$(vec "$UD")"; IF="$(vec "$ID_")"; CV="$(vec "$TP")"
SEQ="[{\"features\":$IF},{\"features\":$IF}]"
SEQS="$SEQ"
for ((i = 1; i < TP; i++)); do SEQS="$SEQS,$SEQ"; done
ITEMS=""
for ((i = 0; i < 5; i++)); do
    ITEMS="${ITEMS}${ITEMS:+,}{\"id\":$i,\"features\":$IF,\"cover\":$CV,\"init_score\":0.$((i + 1))}"
done
BODY="{\"user_features\":$UF,\"items\":[$ITEMS],\"topic_sequences\":[$SEQS]}"
rerank() {
    curl -fs -X POST -H 'Content-Type: application/json' -d "$BODY" \
        "http://$ADDR/v1/rerank"
}
scores() { grep -o '"scores":\[[^]]*\]' <<<"$1"; }
metric() { awk -v m="$1" '$1 == m {print $2}' <<<"$2"; }
ge1() { awk -v v="${1:-0}" 'BEGIN { exit !(v >= 1) }'; }

echo "== user-state cache serves a byte-identical repeat request"
R1="$(rerank)"; R2="$(rerank)"
S1="$(scores "$R1")"; S2="$(scores "$R2")"
[ -n "$S1" ] || { echo "FAIL: rerank returned no scores: $R1"; exit 1; }
[ "$S1" = "$S2" ] \
    || { echo "FAIL: repeat request scores diverged: $S1 vs $S2"; exit 1; }
METRICS="$(curl -fs "http://$ADDR/metrics")"
ge1 "$(metric rapid_state_cache_hits_total "$METRICS")" \
    || { echo "FAIL: repeat request produced no state-cache hit"; exit 1; }
ge1 "$(metric rapid_state_cache_entries "$METRICS")" \
    || { echo "FAIL: state cache holds no entries after a scored request"; exit 1; }

echo "== rollback reverts to $NEW"
admin POST /admin/models/rollback >/dev/null
LIST="$(admin GET /admin/models)"
grep -q "\"version\":\"$NEW\",\"state\":\"active\"" <<<"$LIST" \
    || { echo "FAIL: rollback did not restore $NEW"; exit 1; }

echo "== rollback flushed the state cache; repeat parity on $NEW"
METRICS="$(curl -fs "http://$ADDR/metrics")"
ge1 "$(metric rapid_state_cache_invalidations_total "$METRICS")" \
    || { echo "FAIL: lifecycle transition did not flush the state cache"; exit 1; }
R3="$(rerank)"; R4="$(rerank)"
S3="$(scores "$R3")"; S4="$(scores "$R4")"
[ -n "$S3" ] && [ "$S3" = "$S4" ] \
    || { echo "FAIL: post-rollback repeat scores diverged: $S3 vs $S4"; exit 1; }

echo "== admin guard rejects bad tokens"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer wrong" \
    "http://$ADDR/admin/models")"
[ "$CODE" = 403 ] || { echo "FAIL: wrong token got $CODE, want 403"; exit 1; }

echo "PASS: model lifecycle smoke"
