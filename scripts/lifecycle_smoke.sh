#!/usr/bin/env bash
# Lifecycle smoke test: the full model-lifecycle path through the real
# binaries, end to end —
#
#   1. train two tiny models and publish both into a versioned store
#      (rapidtrain -publish),
#   2. serve the store (rapidserve -model-root): the newest version activates,
#   3. load the older version as a canary candidate and promote it through
#      the admin API,
#   4. assert GET /admin/models tracks the lifecycle states and /metrics
#      exposes per-version series for BOTH versions.
#
# Run from the repo root: ./scripts/lifecycle_smoke.sh
set -euo pipefail

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

STORE="$WORK/models"
ADDR="127.0.0.1:18080"
TOKEN="smoke-admin-token"

echo "== build"
go build -o "$WORK/rapidtrain" ./cmd/rapidtrain
go build -o "$WORK/rapidserve" ./cmd/rapidserve

echo "== train and publish two versions"
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 1 -out "$WORK/m1.gob" -publish "$STORE" 2>&1 | tail -2
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 2 -out "$WORK/m2.gob" -publish "$STORE" 2>&1 | tail -2

echo "== serve the store"
"$WORK/rapidserve" -model-root "$STORE" -addr "$ADDR" -admin-token "$TOKEN" \
    -canary-pct 50 -shadow &
SERVE_PID=$!

for _ in $(seq 1 100); do
    curl -fs "http://$ADDR/readyz" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: rapidserve died on startup"; exit 1; }
    sleep 0.2
done
curl -fs "http://$ADDR/readyz" >/dev/null || { echo "FAIL: server never became ready"; exit 1; }

admin() { # admin METHOD PATH [BODY]
    local method="$1" path="$2" body="${3:-}"
    curl -fs -X "$method" -H "Authorization: Bearer $TOKEN" \
        ${body:+-d "$body"} "http://$ADDR$path"
}

echo "== discover versions"
LIST="$(admin GET /admin/models)"
echo "$LIST"
mapfile -t VERSIONS < <(grep -o '"version":"[^"]*"' <<<"$LIST" | cut -d'"' -f4 | sort -u)
[ "${#VERSIONS[@]}" -eq 2 ] || { echo "FAIL: expected 2 versions, got ${#VERSIONS[@]}"; exit 1; }
OLD="${VERSIONS[0]}"   # published first; the newest auto-activated
NEW="${VERSIONS[1]}"
grep -q "\"version\":\"$NEW\",\"state\":\"active\"" <<<"$LIST" \
    || { echo "FAIL: newest version $NEW is not active at startup"; exit 1; }

echo "== load $OLD as canary candidate"
admin POST /admin/models/load "{\"version\":\"$OLD\"}" >/dev/null
LIST="$(admin GET /admin/models)"
grep -q "\"version\":\"$OLD\",\"state\":\"candidate\"" <<<"$LIST" \
    || { echo "FAIL: $OLD is not the candidate after load"; exit 1; }

echo "== promote $OLD"
admin POST /admin/models/promote "{\"version\":\"$OLD\"}" >/dev/null
LIST="$(admin GET /admin/models)"
grep -q "\"version\":\"$OLD\",\"state\":\"active\"" <<<"$LIST" \
    || { echo "FAIL: $OLD is not active after promote"; exit 1; }
grep -q "\"version\":\"$NEW\",\"state\":\"previous\"" <<<"$LIST" \
    || { echo "FAIL: $NEW is not kept as the rollback target"; exit 1; }

echo "== per-version metrics for both versions"
METRICS="$(curl -fs "http://$ADDR/metrics")"
for v in "$OLD" "$NEW"; do
    grep -q "rapid_model_requests_total{version=\"$v\"}" <<<"$METRICS" \
        || { echo "FAIL: /metrics has no request series for $v"; exit 1; }
    grep -q "rapid_model_request_latency_seconds_bucket{version=\"$v\"" <<<"$METRICS" \
        || { echo "FAIL: /metrics has no latency histogram for $v"; exit 1; }
done
grep -q "rapid_model_promotions_total 1" <<<"$METRICS" \
    || { echo "FAIL: promotion not counted"; exit 1; }

echo "== rollback reverts to $NEW"
admin POST /admin/models/rollback >/dev/null
LIST="$(admin GET /admin/models)"
grep -q "\"version\":\"$NEW\",\"state\":\"active\"" <<<"$LIST" \
    || { echo "FAIL: rollback did not restore $NEW"; exit 1; }

echo "== admin guard rejects bad tokens"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer wrong" \
    "http://$ADDR/admin/models")"
[ "$CODE" = 403 ] || { echo "FAIL: wrong token got $CODE, want 403"; exit 1; }

echo "PASS: model lifecycle smoke"
