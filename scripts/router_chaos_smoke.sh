#!/usr/bin/env bash
# Fleet chaos smoke: the fault-tolerant routing path through the real
# binaries, end to end —
#
#   1. train two tiny models and publish them into two versioned stores,
#   2. serve three registry-mode rapidserve replicas: r0 and r1 on store A,
#      r2 on store B (distinct model version → the router must flag skew);
#      r1 is a 10x-slow node via -chaos-latency,
#   3. front the fleet with two rapidrouters — hedging off and hedging on —
#      and drive open-loop rapidload runs against both, recording latency
#      percentiles for each into BENCH_PR6.json,
#   4. during the unhedged run, kill -9 replica r0 mid-load and restart it:
#      every request must still be answered by a healthy replica (zero
#      errors, zero router-synthesized 503s),
#   5. assert the router metrics tell the story: version skew flagged,
#      retries spent, hedges launched and winning, no unavailable responses.
#
# Run from the repo root: ./scripts/router_chaos_smoke.sh
set -euo pipefail

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

STORE_A="$WORK/store-a"
STORE_B="$WORK/store-b"
R0=127.0.0.1:18181
R1=127.0.0.1:18182
R2=127.0.0.1:18183
ROUTER_PLAIN=127.0.0.1:18190
ROUTER_HEDGED=127.0.0.1:18191
BENCH="${BENCH_JSON:-BENCH_PR6.json}"

echo "== build"
go build -o "$WORK/rapidtrain" ./cmd/rapidtrain
go build -o "$WORK/rapidserve" ./cmd/rapidserve
go build -o "$WORK/rapidrouter" ./cmd/rapidrouter
go build -o "$WORK/rapidload" ./cmd/rapidload

echo "== train and publish two versions into two stores"
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 1 -out "$WORK/m1.gob" -publish "$STORE_A" 2>&1 | tail -1
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 2 -out "$WORK/m2.gob" -publish "$STORE_B" 2>&1 | tail -1

# start_replica ADDR STORE [extra flags...]
start_replica() {
    local addr="$1" store="$2"; shift 2
    "$WORK/rapidserve" -model-root "$store" -addr "$addr" -budget 2s "$@" \
        >>"$WORK/serve-$addr.log" 2>&1 &
    PIDS+=($!)
    echo $!
}

wait_ready() { # wait_ready ADDR WHAT
    for _ in $(seq 1 150); do
        curl -fs "http://$1/readyz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "FAIL: $2 never became ready"; exit 1
}

echo "== start fleet: r0, r1 (10x slow) on store A; r2 on store B"
R0_PID="$(start_replica "$R0" "$STORE_A")"
R1_PID="$(start_replica "$R1" "$STORE_A" -chaos-latency 60ms)"
start_replica "$R2" "$STORE_B" >/dev/null
wait_ready "$R0" "replica r0"
wait_ready "$R1" "replica r1"
wait_ready "$R2" "replica r2"

ROUTER_FLAGS=(-replicas "r0=http://$R0,r1=http://$R1,r2=http://$R2"
    -probe-interval 100ms -probe-ejections 2
    -retries 3 -retry-base 10ms -attempt-timeout 1s)

echo "== start routers (hedging off and on)"
"$WORK/rapidrouter" -addr "$ROUTER_PLAIN" "${ROUTER_FLAGS[@]}" \
    >>"$WORK/router-plain.log" 2>&1 &
PIDS+=($!)
"$WORK/rapidrouter" -addr "$ROUTER_HEDGED" "${ROUTER_FLAGS[@]}" -hedge 25ms \
    >>"$WORK/router-hedged.log" 2>&1 &
PIDS+=($!)
wait_ready "$ROUTER_PLAIN" "plain router"
wait_ready "$ROUTER_HEDGED" "hedged router"

echo "== version skew across stores is flagged"
METRICS="$(curl -fs "http://$ROUTER_PLAIN/metrics")"
grep -q "rapid_router_version_skew 1" <<<"$METRICS" \
    || { echo "FAIL: distinct store versions not flagged as skew"; exit 1; }
grep -q "rapid_router_model_versions 2" <<<"$METRICS" \
    || { echo "FAIL: expected 2 distinct model versions"; exit 1; }

LOAD_FLAGS=(-manifest "$WORK/m1.json" -list-len 16 -users 400 -zipf-s 1.2
    -rps 120 -duration 6s -timeout 2s -benchjson "$BENCH" -max-error-rate 0)

echo "== unhedged load with a mid-run kill -9 + restart of r0"
(
    sleep 2
    kill -9 "$R0_PID" 2>/dev/null || true
    sleep 1.5
    "$WORK/rapidserve" -model-root "$STORE_A" -addr "$R0" -budget 2s \
        >>"$WORK/serve-$R0.log" 2>&1 &
    echo $! >"$WORK/r0-restart.pid"
) &
CHAOS_PID=$!
"$WORK/rapidload" -target "http://$ROUTER_PLAIN" -scenario unhedged "${LOAD_FLAGS[@]}"
wait "$CHAOS_PID"
PIDS+=("$(cat "$WORK/r0-restart.pid")")
wait_ready "$R0" "restarted replica r0"

METRICS="$(curl -fs "http://$ROUTER_PLAIN/metrics")"
grep -Eq 'rapid_router_responses_total\{status="unavailable"\} 0' <<<"$METRICS" \
    || { echo "FAIL: router synthesized 503s despite healthy fallbacks"; exit 1; }
RETRIES="$(grep -o 'rapid_router_retries_total [0-9]*' <<<"$METRICS" | awk '{print $2}')"
[ "${RETRIES:-0}" -gt 0 ] \
    || { echo "FAIL: killing a replica mid-load spent no retries"; exit 1; }

echo "== hedged load against the slow node"
"$WORK/rapidload" -target "http://$ROUTER_HEDGED" -scenario hedged "${LOAD_FLAGS[@]}"

METRICS="$(curl -fs "http://$ROUTER_HEDGED/metrics")"
HEDGES="$(grep -o 'rapid_router_hedges_total [0-9]*' <<<"$METRICS" | awk '{print $2}')"
WINS="$(grep -o 'rapid_router_hedge_wins_total [0-9]*' <<<"$METRICS" | awk '{print $2}')"
[ "${HEDGES:-0}" -gt 0 ] || { echo "FAIL: slow node triggered no hedges"; exit 1; }
[ "${WINS:-0}" -gt 0 ] || { echo "FAIL: no hedge ever beat the slow owner"; exit 1; }
grep -Eq 'rapid_router_responses_total\{status="unavailable"\} 0' <<<"$METRICS" \
    || { echo "FAIL: hedged router synthesized 503s"; exit 1; }

echo "== both scenarios recorded in $BENCH"
grep -q '"unhedged"' "$BENCH" || { echo "FAIL: $BENCH missing unhedged scenario"; exit 1; }
grep -q '"hedged"' "$BENCH" || { echo "FAIL: $BENCH missing hedged scenario"; exit 1; }

echo "PASS: router chaos smoke"
