#!/usr/bin/env bash
# Diversifier-suite smoke test: the weightless-diversifier serving path
# through the real binaries, end to end —
#
#   1. train one tiny RAPID model and publish it (rapidtrain -publish),
#   2. publish all four classic diversifiers as weightless versions copying
#      the model's geometry (rapidserve -publish-diversifier),
#   3. serve the store (rapidserve -model-root): the RAPID version activates
#      ("div-*" labels sort before "v*" timestamps),
#   4. for each diversifier: stage it as the canary candidate, drive varied
#      /v1/rerank traffic, and assert (a) some responses are served by the
#      diversifier version, (b) its rapid_diversifier_* series counts them,
#      (c) shadow comparison against the active RAPID model ran; then abort
#      the candidate and move to the next.
#
# Run from the repo root: ./scripts/diversify_smoke.sh
set -euo pipefail

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

STORE="$WORK/models"
ADDR="127.0.0.1:18082"
TOKEN="smoke-admin-token"

echo "== build"
go build -o "$WORK/rapidtrain" ./cmd/rapidtrain
go build -o "$WORK/rapidserve" ./cmd/rapidserve

echo "== train and publish the RAPID baseline version"
"$WORK/rapidtrain" -dataset taobao -scale 0.02 -seed 1 -out "$WORK/m1.gob" -publish "$STORE" 2>&1 | tail -2

echo "== publish the four diversifiers as weightless versions"
for NAME in mmr dpp bswap window; do
    "$WORK/rapidserve" -model-root "$STORE" -publish-diversifier "$NAME" \
        -diversifier-lambda 0.5 2>&1 | tail -1
done

echo "== serve the store"
"$WORK/rapidserve" -model-root "$STORE" -addr "$ADDR" -admin-token "$TOKEN" \
    -canary-pct 50 -shadow &
SERVE_PID=$!

for _ in $(seq 1 100); do
    curl -fs "http://$ADDR/readyz" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: rapidserve died on startup"; exit 1; }
    sleep 0.2
done
curl -fs "http://$ADDR/readyz" >/dev/null || { echo "FAIL: server never became ready"; exit 1; }

admin() { # admin METHOD PATH [BODY]
    local method="$1" path="$2" body="${3:-}"
    curl -fs -X "$method" -H "Authorization: Bearer $TOKEN" \
        ${body:+-d "$body"} "http://$ADDR$path"
}

LIST="$(admin GET /admin/models)"
grep -qE '"version":"v[^"]*","state":"active"' <<<"$LIST" \
    || { echo "FAIL: RAPID version is not active at startup: $LIST"; exit 1; }

# Build rerank bodies from the published manifest geometry. The first
# user-feature entry varies per request so RouteKey — and with it the 50%
# canary split — varies too.
MANIFEST_JSON="$(find "$STORE" -name '*.json' | sort | tail -1)"
dim() { grep -o "\"$1\": *[0-9]*" "$MANIFEST_JSON" | head -1 | grep -o '[0-9]*$'; }
UD="$(dim UserDim)"; ID_="$(dim ItemDim)"; TP="$(dim Topics)"
[ -n "$UD" ] && [ -n "$ID_" ] && [ -n "$TP" ] \
    || { echo "FAIL: could not read dims from $MANIFEST_JSON"; exit 1; }
vec() { # vec N -> [0.1,0.2,...] with N entries
    local n="$1" out="" i
    for ((i = 0; i < n; i++)); do out="${out}${out:+,}0.$((i % 9 + 1))"; done
    echo "[$out]"
}
IF="$(vec "$ID_")"; CV="$(vec "$TP")"
SEQ="[{\"features\":$IF},{\"features\":$IF}]"
SEQS="$SEQ"
for ((i = 1; i < TP; i++)); do SEQS="$SEQS,$SEQ"; done
ITEMS=""
for ((i = 0; i < 6; i++)); do
    ITEMS="${ITEMS}${ITEMS:+,}{\"id\":$i,\"features\":$IF,\"cover\":$CV,\"init_score\":0.$((i + 1))}"
done
rerank() { # rerank SALT -> response JSON; SALT varies the routing key
    local salt="$1" i uf
    uf="[0.$salt"
    for ((i = 1; i < UD; i++)); do uf="$uf,0.$((i % 9 + 1))"; done
    uf="$uf]"
    curl -fs -X POST -H 'Content-Type: application/json' \
        -d "{\"user_features\":$uf,\"items\":[$ITEMS],\"topic_sequences\":[$SEQS]}" \
        "http://$ADDR/v1/rerank"
}
metric() { awk -v m="$1" '$1 == m {print $2}' <<<"$2"; }
ge1() { awk -v v="${1:-0}" 'BEGIN { exit !(v >= 1) }'; }

for NAME in mmr dpp bswap window; do
    echo "== canary div-$NAME behind /v1/rerank"
    admin POST /admin/models/load "{\"version\":\"div-$NAME\"}" >/dev/null
    HIT=0
    for SALT in $(seq 1 24); do
        R="$(rerank "$SALT")"
        grep -q '"ranked":\[' <<<"$R" || { echo "FAIL: bad rerank response: $R"; exit 1; }
        grep -q "\"model_version\":\"div-$NAME\"" <<<"$R" && HIT=1
    done
    [ "$HIT" = 1 ] || { echo "FAIL: no response was served by div-$NAME at 50% canary"; exit 1; }
    METRICS="$(curl -fs "http://$ADDR/metrics")"
    ge1 "$(metric "rapid_diversifier_requests_total{diversifier=\"$NAME\"}" "$METRICS")" \
        || { echo "FAIL: rapid_diversifier_requests_total{diversifier=\"$NAME\"} never incremented"; exit 1; }
    ge1 "$(metric "rapid_diversifier_items_total{diversifier=\"$NAME\"}" "$METRICS")" \
        || { echo "FAIL: rapid_diversifier_items_total{diversifier=\"$NAME\"} never incremented"; exit 1; }
    admin POST /admin/models/rollback >/dev/null
done

echo "== shadow comparison against the active RAPID model ran"
METRICS="$(curl -fs "http://$ADDR/metrics")"
ge1 "$(metric rapid_shadow_scored_total "$METRICS")" \
    || { echo "FAIL: no shadow comparison was recorded"; exit 1; }

echo "PASS: diversifier suite smoke"
