// Command rapidrouter fronts a fleet of rapidserve replicas with the
// fault-tolerant consistent-hash router (internal/router): requests shard
// across replicas by the deterministic user route key, unhealthy replicas
// are ejected by /readyz probes and starved by per-replica circuit breakers,
// sheds and failures are retried under a retry budget, and slow owners can
// be hedged to the next replica in the key's fallback sequence.
//
//	rapidrouter -addr :8090 \
//	  -replicas r0=http://127.0.0.1:8081,r1=http://127.0.0.1:8082,r2=http://127.0.0.1:8083 \
//	  -hedge 25ms
//
// Replica IDs (the part before "=") are hashed onto the ring: keep them
// stable across restarts and address changes so keyspace ownership — and
// with it every replica-local cache — survives redeploys. Bare URLs are
// accepted and given positional IDs, which is fine for fixed fleets.
//
// Endpoints:
//
//	POST /rerank, /v1/rerank, /v1/rerank:batch — proxied to the fleet
//	GET  /healthz     — router liveness
//	GET  /readyz      — 200 while at least one replica is admitted
//	GET  /metrics     — rapid_router_* Prometheus text exposition
//	GET  /admin/fleet — per-replica health, breaker states, version skew
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		replicas = flag.String("replicas", "", "comma-separated fleet: id=url pairs (or bare urls, given positional ids)")
		vnodes   = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		hedge    = flag.Duration("hedge", 0, "hedge delay: start a second attempt on the next replica if the owner has not answered (0 disables)")
		attempt  = flag.Duration("attempt-timeout", 5*time.Second, "per-attempt timeout against one replica")

		probeEvery   = flag.Duration("probe-interval", time.Second, "readiness probe period per replica")
		probeTimeout = flag.Duration("probe-timeout", 500*time.Millisecond, "readiness probe timeout")
		ejections    = flag.Int("probe-ejections", 2, "consecutive probe failures before a replica is ejected")

		retries     = flag.Int("retries", 3, "max attempts per request including the primary")
		retryBase   = flag.Duration("retry-base", 25*time.Millisecond, "base retry backoff (jittered, doubling)")
		retryMax    = flag.Duration("retry-max", time.Second, "retry backoff cap; upstream Retry-After is honored up to this")
		budgetRatio = flag.Float64("retry-budget", 0.1, "retry-budget earn rate: tokens deposited per primary request; each retry or hedge spends one")

		brWindow  = flag.Duration("breaker-window", 10*time.Second, "sliding error-rate window per replica breaker")
		brRate    = flag.Float64("breaker-rate", 0.5, "windowed failure fraction that opens a breaker")
		brMin     = flag.Int("breaker-min-samples", 8, "fewest windowed samples before the error rate is trusted")
		brOpenFor = flag.Duration("breaker-open-for", 2*time.Second, "how long an open breaker rejects before half-open probing")
	)
	flag.Parse()

	fleet, err := parseReplicas(*replicas)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidrouter: %v\n", err)
		os.Exit(2)
	}
	r, err := router.New(router.Config{
		Replicas:       fleet,
		VNodes:         *vnodes,
		HedgeDelay:     *hedge,
		AttemptTimeout: *attempt,
		Health: router.HealthConfig{
			Interval:  *probeEvery,
			Timeout:   *probeTimeout,
			Ejections: *ejections,
		},
		Breaker: router.BreakerConfig{
			Window:      *brWindow,
			FailureRate: *brRate,
			MinSamples:  *brMin,
			OpenFor:     *brOpenFor,
		},
		Retry: router.RetryConfig{
			MaxAttempts: *retries,
			BaseBackoff: *retryBase,
			MaxBackoff:  *retryMax,
			BudgetRatio: *budgetRatio,
		},
		Log: log.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidrouter: %v\n", err)
		os.Exit(2)
	}
	if err := serveRouter(r, *addr, fleet, *hedge); err != nil {
		fmt.Fprintf(os.Stderr, "rapidrouter: %v\n", err)
		os.Exit(1)
	}
}

// serveRouter runs the router's HTTP server until SIGINT/SIGTERM, then shuts
// down gracefully.
func serveRouter(r *router.Router, addr string, fleet []router.Replica, hedge time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r.Start()
	defer r.Close()

	srv := &http.Server{Addr: addr, Handler: r.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rapidrouter: listening on %s (%d replicas, hedge %v, metrics at /metrics, fleet at /admin/fleet)",
		addr, len(fleet), hedge)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// parseReplicas decodes the -replicas flag: "id=url" pairs, or bare URLs
// that get positional ids r0, r1, ...
func parseReplicas(spec string) ([]router.Replica, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("no replicas: pass -replicas id=url[,id=url...]")
	}
	var fleet []router.Replica
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok {
			id, u = fmt.Sprintf("r%d", i), part
		}
		fleet = append(fleet, router.Replica{ID: id, URL: u})
	}
	return fleet, nil
}
