// Command datastat prints calibration statistics of the synthetic datasets
// — the quantities DESIGN.md's substitution argument rests on: how focused
// vs diverse the user population is, how redundant the retrieved candidate
// pools are, how relevance and the diversity appetite distribute.
//
// Usage:
//
//	datastat -dataset taobao -scale 0.25
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/topics"
)

func main() {
	var (
		ds    = flag.String("dataset", "taobao", "dataset preset: taobao, movielens, appstore")
		scale = flag.Float64("scale", 0.25, "dataset scale")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	if err := run(*ds, *scale, *seed, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "datastat: %v\n", err)
		os.Exit(1)
	}
}

func run(ds string, scale float64, seed int64, w *os.File) error {
	var cfg dataset.Config
	switch ds {
	case "taobao":
		cfg = dataset.TaobaoLike(seed)
	case "movielens":
		cfg = dataset.MovieLensLike(seed)
	case "appstore":
		cfg = dataset.AppStoreLike(seed)
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}
	if scale != 1 {
		cfg = cfg.Scaled(scale)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	s := Summarize(d)
	fmt.Fprintf(w, "dataset %s: %d users, %d items, %d topics\n", d.Name, len(d.Users), len(d.Items), d.M())
	fmt.Fprintf(w, "users: %.0f%% focused (pref entropy < 0.5·log m); appetite mean %.2f (focused %.2f, diverse %.2f)\n",
		s.FocusedFrac*100, s.AppetiteMean, s.AppetiteFocused, s.AppetiteDiverse)
	fmt.Fprintf(w, "relevance: mean %.3f, p10 %.3f, p90 %.3f\n", s.RelMean, s.RelP10, s.RelP90)
	fmt.Fprintf(w, "history: topical share on favorite topic %.2f (uniform would be %.2f)\n",
		s.HistoryTopicalShare, 1/float64(d.M()))
	fmt.Fprintf(w, "pools: mean per-pool coverage %.2f of %d topics (redundancy %.0f%%)\n",
		s.PoolCoverage, d.M(), (1-s.PoolCoverage/float64(d.M()))*100)
	return nil
}

// Stats summarizes a generated dataset.
type Stats struct {
	FocusedFrac                   float64
	AppetiteMean, AppetiteFocused float64
	AppetiteDiverse               float64
	RelMean, RelP10, RelP90       float64
	HistoryTopicalShare           float64
	PoolCoverage                  float64
}

// Summarize computes the calibration statistics for a dataset.
func Summarize(d *dataset.Dataset) Stats {
	var s Stats
	var nFocused, nDiverse float64
	var appFocused, appDiverse, appAll float64
	var topical, histTotal float64
	for _, u := range d.Users {
		h := mat.Entropy(u.Pref) / math.Log(float64(d.M()))
		appAll += u.DivAppetite
		if h < 0.5 {
			nFocused++
			appFocused += u.DivAppetite
		} else {
			nDiverse++
			appDiverse += u.DivAppetite
		}
		best := 0
		for j, p := range u.Pref {
			if p > u.Pref[best] {
				best = j
			}
		}
		for _, v := range u.History {
			topical += d.Cover(v)[best]
			histTotal++
		}
	}
	n := float64(len(d.Users))
	s.FocusedFrac = nFocused / n
	s.AppetiteMean = appAll / n
	if nFocused > 0 {
		s.AppetiteFocused = appFocused / nFocused
	}
	if nDiverse > 0 {
		s.AppetiteDiverse = appDiverse / nDiverse
	}
	if histTotal > 0 {
		s.HistoryTopicalShare = topical / histTotal
	}

	// Relevance distribution over sampled user-item pairs.
	var rels []float64
	for ui := 0; ui < len(d.Users); ui += 1 + len(d.Users)/50 {
		for vi := 0; vi < len(d.Items); vi += 1 + len(d.Items)/50 {
			rels = append(rels, d.Relevance(ui, vi))
		}
	}
	sortFloats(rels)
	if len(rels) > 0 {
		var sum float64
		for _, r := range rels {
			sum += r
		}
		s.RelMean = sum / float64(len(rels))
		s.RelP10 = rels[len(rels)/10]
		s.RelP90 = rels[len(rels)*9/10]
	}

	// Pool topical coverage.
	var cov float64
	pools := d.RerankPools
	if len(pools) > 50 {
		pools = pools[:50]
	}
	for _, p := range pools {
		cover := make([][]float64, len(p.Candidates))
		for i, v := range p.Candidates {
			cover[i] = d.Cover(v)
		}
		cov += topics.CoverageTotal(cover, d.M())
	}
	if len(pools) > 0 {
		s.PoolCoverage = cov / float64(len(pools))
	}
	return s
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
