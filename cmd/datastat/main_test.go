package main

import (
	"testing"

	"repro/internal/dataset"
)

func TestSummarize(t *testing.T) {
	cfg := dataset.TaobaoLike(5).Scaled(0.1)
	d := dataset.MustGenerate(cfg)
	s := Summarize(d)
	if s.FocusedFrac < 0.1 || s.FocusedFrac > 0.9 {
		t.Fatalf("focused fraction %v implausible", s.FocusedFrac)
	}
	if s.AppetiteDiverse <= s.AppetiteFocused {
		t.Fatalf("diverse appetite %v not above focused %v", s.AppetiteDiverse, s.AppetiteFocused)
	}
	if s.RelMean <= 0 || s.RelMean >= 1 || s.RelP10 > s.RelP90 {
		t.Fatalf("relevance stats %+v", s)
	}
	if s.HistoryTopicalShare <= 1/float64(d.M()) {
		t.Fatalf("history share %v not above uniform", s.HistoryTopicalShare)
	}
	if s.PoolCoverage <= 0 || s.PoolCoverage > float64(d.M()) {
		t.Fatalf("pool coverage %v", s.PoolCoverage)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 0.1, 1, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
