// Command rapidtrain trains a RAPID model on a generated dataset and saves
// its parameters (gob) together with a JSON manifest describing the model
// geometry, so rapidserve can load and serve it.
//
// Usage:
//
//	rapidtrain -dataset movielens -scale 0.25 -out model.gob [-lambda 0.9]
//
// Robustness: every weights write (periodic epoch checkpoints and the final
// save) goes through a temp-file-plus-rename, so a crash mid-write never
// leaves a truncated model on disk; -resume warm-starts from a previous
// checkpoint trained with the same architecture flags; NaN/Inf training
// batches are skipped and counted rather than corrupting optimizer state.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/rerank"
	"repro/internal/serve"
)

type options struct {
	dataset    string
	scale      float64
	seed       int64
	lambda     float64
	out        string
	det        bool
	resume     string // checkpoint to warm-start from; "" trains from scratch
	ckptEvery  int    // write a checkpoint every N epochs; 0 disables
	debugAddr  string // serve /metrics and pprof here during training; "" disables
	publish    string // registry root to publish into as a new version; "" disables
	matWorkers int    // GEMM parallelism knob; 1 = serial, 0 = GOMAXPROCS
}

func main() {
	var o options
	flag.StringVar(&o.dataset, "dataset", "movielens", "dataset preset: taobao, movielens, appstore")
	flag.Float64Var(&o.scale, "scale", 0.25, "dataset scale")
	flag.Int64Var(&o.seed, "seed", 42, "random seed")
	flag.Float64Var(&o.lambda, "lambda", 0.9, "DCM relevance-diversity tradeoff")
	flag.StringVar(&o.out, "out", "rapid-model.gob", "output model path (manifest written alongside with .json)")
	flag.BoolVar(&o.det, "det", false, "use the deterministic head instead of the probabilistic one")
	flag.StringVar(&o.resume, "resume", "", "checkpoint (.gob) to warm-start from; must match the architecture flags")
	flag.IntVar(&o.ckptEvery, "checkpoint-every", 1, "write an atomic checkpoint to -out every N epochs (0 disables)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve /metrics and /debug/pprof/ on this address while training (e.g. localhost:6060); empty disables")
	flag.StringVar(&o.publish, "publish", "", "model registry root: additionally publish the trained model into a fresh version directory (atomic; servable by rapidserve -model-root)")
	flag.IntVar(&o.matWorkers, "mat-workers", 1, "goroutines per large GEMM in the matrix kernels (1 = serial; 0 = GOMAXPROCS)")
	flag.Parse()
	mat.SetWorkers(o.matWorkers)
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "rapidtrain: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	var cfg dataset.Config
	switch o.dataset {
	case "taobao":
		cfg = dataset.TaobaoLike(o.seed)
	case "movielens":
		cfg = dataset.MovieLensLike(o.seed)
	case "appstore":
		cfg = dataset.AppStoreLike(o.seed)
	default:
		return fmt.Errorf("unknown dataset %q", o.dataset)
	}
	if o.resume != "" {
		// Pre-flight the checkpoint before spending minutes building data.
		if _, err := os.Stat(o.resume); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	}
	opt := experiments.DefaultOptions()
	opt.Scale = o.scale
	opt.Seed = o.seed
	opt.Log = os.Stderr

	rd, err := experiments.BuildRankedData(cfg, experiments.NewRankerByName("DIN", o.seed), opt)
	if err != nil {
		return err
	}
	env := experiments.BuildEnv(rd, o.lambda, opt)
	m := experiments.NewRAPID(env, opt, 12, func(c *core.Config) {
		if o.det {
			c.Output = core.Deterministic
		}
	})
	if o.resume != "" {
		f, err := os.Open(o.resume)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		err = m.ParamSet().LoadStrict(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume checkpoint %s does not match the model architecture: %w", o.resume, err)
		}
		fmt.Fprintf(os.Stderr, "resumed from %s\n", o.resume)
	}

	// Training telemetry: every epoch feeds an obs registry (and a progress
	// line on stderr); -debug-addr exposes it live as /metrics plus pprof so
	// a long run can be watched and profiled without stopping it.
	reg := obs.NewRegistry()
	if o.debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(o.debugAddr, obs.DebugMux(reg)); err != nil {
				fmt.Fprintf(os.Stderr, "debug server on %s: %v\n", o.debugAddr, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server: http://%s/metrics and /debug/pprof/\n", o.debugAddr)
	}

	// NaN/Inf guards: poisoned batches are skipped and counted rather than
	// corrupting Adam state; the counters are reported after training.
	stats := &rerank.TrainStats{}
	m.TrainCfg.Stats = stats
	m.TrainCfg.Observer = &trainObserver{tel: obs.NewTrainTelemetry(reg), w: os.Stderr}
	prevOnEpoch := m.TrainCfg.OnEpoch
	m.TrainCfg.OnEpoch = func(epoch int, loss float64) {
		if prevOnEpoch != nil {
			prevOnEpoch(epoch, loss)
		}
		if o.ckptEvery > 0 && (epoch+1)%o.ckptEvery == 0 {
			if err := m.ParamSet().SaveFileAtomic(o.out); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint epoch %d: %v\n", epoch, err)
			}
		}
	}
	if err := env.FitIfTrainable(m, opt); err != nil {
		return err
	}
	if stats.SkippedInstances > 0 || stats.DroppedSteps > 0 {
		fmt.Fprintf(os.Stderr, "training guards: skipped %d non-finite instances, dropped %d non-finite steps\n",
			stats.SkippedInstances, stats.DroppedSteps)
	}
	res := env.Evaluate(m, []int{5, 10})
	metrics := map[string]float64{}
	for _, k := range res.Metrics() {
		metrics[k] = res.Mean(k)
	}

	if err := m.ParamSet().SaveFileAtomic(o.out); err != nil {
		return err
	}
	manifest := serve.Manifest{Dataset: o.dataset, Lambda: o.lambda, Config: m.Cfg, Metrics: metrics}
	if err := serve.WriteManifestFileAtomic(serve.ManifestPath(o.out), manifest); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saved %s (+ manifest); test metrics: %v\n", o.out, metrics)
	if o.publish != "" {
		label, err := registry.Publish(o.publish, "", m.ParamSet(), manifest)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "published version %s to %s (serve it with: rapidserve -model-root %s; activate later versions via the admin API)\n",
			label, o.publish, o.publish)
	}
	return nil
}

// trainObserver adapts rerank's epoch hook to the obs training telemetry and
// prints one progress line per epoch. It runs on the trainer goroutine at
// epoch boundaries, so plain writes are safe; the telemetry side is atomic
// and therefore scrape-safe from the -debug-addr server.
type trainObserver struct {
	tel *obs.TrainTelemetry
	w   io.Writer
}

func (t *trainObserver) ObserveEpoch(es rerank.EpochStats) {
	t.tel.RecordEpoch(es.Loss, es.ValidLoss, es.Duration, es.Steps, es.Instances, es.SkippedInstances, es.DroppedSteps)
	line := fmt.Sprintf("epoch %d/%d loss=%.6f", es.Epoch+1, es.Epochs, es.Loss)
	if !math.IsNaN(es.ValidLoss) {
		line += fmt.Sprintf(" valid=%.6f", es.ValidLoss)
	}
	line += fmt.Sprintf(" %s steps=%d", es.Duration.Round(time.Millisecond), es.Steps)
	if es.SkippedInstances > 0 || es.DroppedSteps > 0 {
		line += fmt.Sprintf(" skipped=%d dropped=%d", es.SkippedInstances, es.DroppedSteps)
	}
	fmt.Fprintln(t.w, line)
}
