// Command rapidtrain trains a RAPID model on a generated dataset and saves
// its parameters (gob) together with a JSON manifest describing the model
// geometry, so rapidserve can load and serve it.
//
// Usage:
//
//	rapidtrain -dataset movielens -scale 0.25 -out model.gob [-lambda 0.9]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

// Manifest describes a saved model so a server can rebuild the architecture
// before loading weights.
type Manifest struct {
	Dataset string      `json:"dataset"`
	Lambda  float64     `json:"lambda"`
	Config  core.Config `json:"config"`
	Metrics map[string]float64
}

func main() {
	var (
		ds     = flag.String("dataset", "movielens", "dataset preset: taobao, movielens, appstore")
		scale  = flag.Float64("scale", 0.25, "dataset scale")
		seed   = flag.Int64("seed", 42, "random seed")
		lambda = flag.Float64("lambda", 0.9, "DCM relevance-diversity tradeoff")
		out    = flag.String("out", "rapid-model.gob", "output model path (manifest written alongside with .json)")
		det    = flag.Bool("det", false, "use the deterministic head instead of the probabilistic one")
	)
	flag.Parse()
	if err := run(*ds, *scale, *seed, *lambda, *out, *det); err != nil {
		fmt.Fprintf(os.Stderr, "rapidtrain: %v\n", err)
		os.Exit(1)
	}
}

func run(ds string, scale float64, seed int64, lambda float64, out string, det bool) error {
	var cfg dataset.Config
	switch ds {
	case "taobao":
		cfg = dataset.TaobaoLike(seed)
	case "movielens":
		cfg = dataset.MovieLensLike(seed)
	case "appstore":
		cfg = dataset.AppStoreLike(seed)
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}
	opt := experiments.DefaultOptions()
	opt.Scale = scale
	opt.Seed = seed
	opt.Log = os.Stderr

	rd, err := experiments.BuildRankedData(cfg, experiments.NewRankerByName("DIN", seed), opt)
	if err != nil {
		return err
	}
	env := experiments.BuildEnv(rd, lambda, opt)
	m := experiments.NewRAPID(env, opt, 12, func(c *core.Config) {
		if det {
			c.Output = core.Deterministic
		}
	})
	if err := env.FitIfTrainable(m, opt); err != nil {
		return err
	}
	res := env.Evaluate(m, []int{5, 10})
	metrics := map[string]float64{}
	for _, k := range res.Metrics() {
		metrics[k] = res.Mean(k)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.ParamSet().Save(f); err != nil {
		return err
	}
	manifest := Manifest{Dataset: ds, Lambda: lambda, Config: m.Cfg, Metrics: metrics}
	mf, err := os.Create(manifestPath(out))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saved %s (+ manifest); test metrics: %v\n", out, metrics)
	return nil
}

func manifestPath(out string) string {
	return strings.TrimSuffix(out, ".gob") + ".json"
}
