package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestManifestPathSuffix(t *testing.T) {
	if got := manifestPath("m.gob"); got != "m.json" {
		t.Fatalf("manifestPath = %s", got)
	}
	if got := manifestPath("dir/model.gob"); got != "dir/model.json" {
		t.Fatalf("manifestPath = %s", got)
	}
}

func TestTrainAndSaveRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "model.gob")
	if err := run("taobao", 0.02, 7, 0.9, out, false); err != nil {
		t.Fatal(err)
	}
	// The weights file and manifest must exist and be loadable.
	mf, err := os.Open(manifestPath(out))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	var man Manifest
	if err := json.NewDecoder(mf).Decode(&man); err != nil {
		t.Fatal(err)
	}
	if man.Dataset != "taobao" || man.Config.Topics != 5 {
		t.Fatalf("manifest %+v", man)
	}
	m := core.New(man.Config)
	wf, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	if err := m.ParamSet().Load(wf); err != nil {
		t.Fatal(err)
	}
	if len(man.Metrics) == 0 {
		t.Fatal("manifest carries no evaluation metrics")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 0.1, 1, 0.9, filepath.Join(t.TempDir(), "x.gob"), false); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
