package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/serve"
)

func TestManifestPathSuffix(t *testing.T) {
	if got := serve.ManifestPath("m.gob"); got != "m.json" {
		t.Fatalf("ManifestPath = %s", got)
	}
	if got := serve.ManifestPath("dir/model.gob"); got != "dir/model.json" {
		t.Fatalf("ManifestPath = %s", got)
	}
}

func trainOpts(out string) options {
	return options{dataset: "taobao", scale: 0.02, seed: 7, lambda: 0.9, out: out, ckptEvery: 1}
}

func TestTrainAndSaveRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "model.gob")
	store := filepath.Join(dir, "store")
	o := trainOpts(out)
	o.publish = store
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// The weights file and manifest must exist and load back strictly
	// through the serving loader.
	m, man, err := serve.LoadModel(out)
	if err != nil {
		t.Fatal(err)
	}
	if man.Dataset != "taobao" || man.Config.Topics != 5 {
		t.Fatalf("manifest %+v", man)
	}
	if m.Cfg.Topics != 5 {
		t.Fatalf("model config %+v", m.Cfg)
	}
	if len(man.Metrics) == 0 {
		t.Fatal("manifest carries no evaluation metrics")
	}

	// -publish must have committed exactly one version into the store, and it
	// must load back through the same strict production loader.
	versions, err := registry.Scan(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		t.Fatalf("published versions %v, want exactly one", versions)
	}
	if _, pubMan, err := serve.LoadModel(registry.ModelPath(store, versions[0])); err != nil {
		t.Fatalf("published version does not load: %v", err)
	} else if pubMan.Dataset != "taobao" {
		t.Fatalf("published manifest %+v", pubMan)
	}

	// Resume: a second run warm-started from the checkpoint must succeed
	// and overwrite the artifacts atomically.
	o = trainOpts(filepath.Join(dir, "model2.gob"))
	o.resume = out
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, _, err := serve.LoadModel(o.out); err != nil {
		t.Fatal(err)
	}
	// No temp files may be left behind by the atomic writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // the publish store
		}
		if filepath.Ext(e.Name()) != ".gob" && filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("stray file %s after atomic writes", e.Name())
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	o := trainOpts(filepath.Join(t.TempDir(), "x.gob"))
	o.dataset = "nope"
	if err := run(o); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunBadResume(t *testing.T) {
	dir := t.TempDir()
	o := trainOpts(filepath.Join(dir, "x.gob"))
	o.resume = filepath.Join(dir, "missing.gob")
	if err := run(o); err == nil {
		t.Fatal("missing resume checkpoint accepted")
	}
	if testing.Short() {
		return // the mismatch check below builds the full data pipeline
	}
	// A checkpoint from a different architecture must be rejected, not
	// silently partially loaded.
	other := filepath.Join(dir, "other.gob")
	cfg := core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2, Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
	if err := core.New(cfg).ParamSet().SaveFileAtomic(other); err != nil {
		t.Fatal(err)
	}
	o.resume = other
	if err := run(o); err == nil {
		t.Fatal("mismatched resume checkpoint accepted")
	}
}
