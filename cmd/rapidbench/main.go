// Command rapidbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rapidbench -exp table2a [-scale 0.2] [-seed 42] [-quiet]
//
// Experiments: table2a table2b table2c table3 table4 table5 table6
// fig3 fig4 fig5 regret divfn robust extended personal all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (table2a..c, table3..6, fig3..5, regret, divfn, robust, extended, personal, all)")
		scale  = flag.Float64("scale", 0.25, "dataset scale factor (1.0 = full harness size)")
		seed   = flag.Int64("seed", 42, "random seed")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")
		asJSON = flag.Bool("json", false, "emit tables as JSON instead of aligned text")
		svg    = flag.String("svg", "", "write the regret figure to this SVG path (regret experiment only)")
		benchJ = flag.String("benchjson", "", "run the shared benchmark suite and write machine-readable results (BENCH_PR2.json) to this path, then exit")
		batchJ = flag.String("batchjson", "", "run the batched-inference comparison and write machine-readable results (BENCH_PR5.json) to this path, then exit")
		pr7J   = flag.String("pr7json", "", "run the parallel-GEMM sweep and cold/warm state-cache comparison and write machine-readable results (BENCH_PR7.json) to this path, then exit")
		pr10J  = flag.String("pr10json", "", "run the JSON-vs-binary frontend comparison and write machine-readable results (BENCH_PR10.json) to this path, then exit")
		smoke  = flag.Bool("smoke", false, "with -batchjson/-pr7json/-pr10json: run only the benchmarks the CI gates read")
		check  = flag.Bool("check", false, "with -batchjson/-pr7json/-pr10json: exit non-zero when a perf gate fails")
	)
	flag.Parse()

	if *benchJ != "" {
		if err := runBenchJSON(*benchJ); err != nil {
			fmt.Fprintf(os.Stderr, "rapidbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *batchJ != "" {
		if err := runBatchJSON(*batchJ, *smoke, *check); err != nil {
			fmt.Fprintf(os.Stderr, "rapidbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pr7J != "" {
		if err := runPR7JSON(*pr7J, *smoke, *check); err != nil {
			fmt.Fprintf(os.Stderr, "rapidbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pr10J != "" {
		if err := runPR10JSON(*pr10J, *smoke, *check); err != nil {
			fmt.Fprintf(os.Stderr, "rapidbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opt := experiments.DefaultOptions()
	opt.Scale = *scale
	opt.Seed = *seed
	if !*quiet {
		opt.Log = os.Stderr
	}
	emitJSON = *asJSON
	svgPath = *svg
	if err := run(*exp, opt, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rapidbench: %v\n", err)
		os.Exit(1)
	}
}

// emitJSON switches table output to JSON (set by the -json flag);
// svgPath, when non-empty, receives the regret figure.
var (
	emitJSON bool
	svgPath  string
)

func emit(w io.Writer, t *experiments.Table) error {
	if emitJSON {
		return t.WriteJSON(w)
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

func run(exp string, opt experiments.Options, w io.Writer) error {
	printTables := func(tables []*experiments.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(w, t); err != nil {
				return err
			}
		}
		return nil
	}
	printOne := func(t *experiments.Table, err error) error {
		if err != nil {
			return err
		}
		return emit(w, t)
	}
	switch exp {
	case "table2a":
		return printTables(experiments.RunTable2(0.5, opt))
	case "table2b":
		return printTables(experiments.RunTable2(0.9, opt))
	case "table2c":
		return printTables(experiments.RunTable2(1.0, opt))
	case "table3":
		return printOne(experiments.RunTable3(opt))
	case "table4":
		return printTables(experiments.RunTable4(opt))
	case "table5":
		return printOne(experiments.RunTable5(opt))
	case "table6":
		return printOne(experiments.RunTable6(opt))
	case "fig3":
		return printTables(experiments.RunFig3(opt))
	case "fig4":
		return printTables(experiments.RunFig4(opt))
	case "fig5":
		return printOne(experiments.RunFig5(opt))
	case "regret":
		tbl, curves := experiments.RunRegret(experiments.DefaultRegretOptions(opt.Seed))
		if svgPath != "" {
			f, err := os.Create(svgPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := experiments.RegretChart(curves).WriteSVG(f); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "rapidbench: wrote %s\n", svgPath)
		}
		return emit(w, tbl)
	case "divfn":
		return printOne(experiments.RunDivFnAblation(opt))
	case "robust":
		return printOne(experiments.RunRobustness(opt))
	case "extended":
		return printOne(experiments.RunExtended(opt))
	case "personal":
		return printOne(experiments.RunPersonalization(opt))
	case "all":
		for _, id := range []string{
			"table2a", "table2b", "table2c", "table3", "table4",
			"table5", "table6", "fig3", "fig4", "fig5", "regret",
			"divfn", "robust", "extended", "personal",
		} {
			fmt.Fprintf(w, "==== %s ====\n", id)
			if err := run(id, opt, w); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
