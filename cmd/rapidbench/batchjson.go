package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchsuite"
	"repro/internal/obs"
)

// batchBaseline pins the pre-change single-request numbers BENCH_PR5.json
// compares against: BenchmarkRAPIDInference measured at the named commit,
// before the batched engine existed (per-request tape, one instance per
// forward pass). Intel Xeon @ 2.10GHz, GOMAXPROCS=1, linux/amd64.
var batchBaseline = benchBaseline{
	Commit: "bbd7f8a",
	Note: "pre batched-inference baseline; RAPIDInference then scored one " +
		"instance per forward pass through the legacy Scores path",
	Results: map[string]benchResult{
		"RAPIDInference": {NsPerOp: 334423, BytesPerOp: 442521, AllocsPerOp: 1905, Iterations: 6205},
	},
}

// batchFile is the BENCH_PR5.json layout: the committed pre-change baseline,
// the current single and batched numbers, and the derived ratios the CI
// smoke gate asserts.
type batchFile struct {
	Generated string                 `json:"generated"`
	Env       benchEnv               `json:"env"`
	Baseline  benchBaseline          `json:"baseline"`
	Current   map[string]benchResult `json:"current"`
	// SingleVsBaseline is current RAPIDInference ns/op over the baseline's —
	// above 1.0 means the batched engine slowed the single-request path.
	SingleVsBaseline float64 `json:"single_vs_baseline"`
	// Batch16ThroughputX is batch-16 instances/s over the baseline
	// single-request throughput (1e9 / baseline ns/op).
	Batch16ThroughputX float64 `json:"batch16_throughput_x"`
	// Telemetry carries the per-batch-size inference latency histograms.
	Telemetry []obs.MetricSnapshot `json:"telemetry,omitempty"`
}

// CI gates for -check: the single-request path may not regress more than
// 10% against the committed baseline, and batch-16 must clear 2× its
// throughput (the PR's acceptance floor).
const (
	maxSingleRegression = 1.10
	minBatch16Speedup   = 2.0
)

// runBatchJSON executes the batched-inference comparison and writes
// BENCH_PR5.json. smoke restricts the run to the two benchmarks the CI
// gates read (single-request and batch-16); check exits non-zero when a
// gate fails.
func runBatchJSON(path string, smoke, check bool) error {
	reg := obs.NewRegistry()
	benchsuite.SetRegistry(reg)
	defer benchsuite.SetRegistry(nil)
	out := batchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env: benchEnv{
			Go:         runtime.Version(),
			CPU:        runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Arch:       runtime.GOARCH,
		},
		Baseline: batchBaseline,
		Current:  make(map[string]benchResult),
	}
	for _, e := range benchsuite.BatchEntries() {
		if smoke && e.Name != "RAPIDInference" && e.Name != "RAPIDInferenceBatch16" {
			continue
		}
		fmt.Fprintf(os.Stderr, "rapidbench: benchmarking %s...\n", e.Name)
		// Best of 3: scheduler noise and thermal throttling only ever slow a
		// run down, so the fastest repetition is the least-noisy estimate —
		// this keeps the CI gates from flapping on a loaded runner.
		var res benchResult
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(e.F)
			cand := benchResult{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Iterations:  r.N,
			}
			if ips, ok := r.Extra["instances/s"]; ok {
				cand.InstancesPerSec = ips
			} else if e.InstancesPerOp > 0 && cand.NsPerOp > 0 {
				cand.InstancesPerSec = float64(e.InstancesPerOp) / (cand.NsPerOp * 1e-9)
			}
			if rep == 0 || cand.NsPerOp < res.NsPerOp {
				res = cand
			}
		}
		out.Current[e.Name] = res
		fmt.Fprintf(os.Stderr, "rapidbench: %-22s %12.0f ns/op %10.0f instances/s\n",
			e.Name, res.NsPerOp, res.InstancesPerSec)
	}

	base := out.Baseline.Results["RAPIDInference"]
	baseThroughput := 1e9 / base.NsPerOp
	if cur, ok := out.Current["RAPIDInference"]; ok && base.NsPerOp > 0 {
		out.SingleVsBaseline = cur.NsPerOp / base.NsPerOp
	}
	if b16, ok := out.Current["RAPIDInferenceBatch16"]; ok && baseThroughput > 0 {
		out.Batch16ThroughputX = b16.InstancesPerSec / baseThroughput
	}
	out.Telemetry = reg.Snapshot()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rapidbench: wrote %s (single vs baseline %.3f, batch16 throughput %.2fx)\n",
		path, out.SingleVsBaseline, out.Batch16ThroughputX)

	if check {
		if out.SingleVsBaseline > maxSingleRegression {
			return fmt.Errorf("single-request latency regressed %.1f%% against baseline %s (gate: %.0f%%)",
				(out.SingleVsBaseline-1)*100, out.Baseline.Commit, (maxSingleRegression-1)*100)
		}
		if out.Batch16ThroughputX < minBatch16Speedup {
			return fmt.Errorf("batch-16 throughput is %.2fx the pre-change single-request baseline (gate: %.1fx)",
				out.Batch16ThroughputX, minBatch16Speedup)
		}
		fmt.Fprintln(os.Stderr, "rapidbench: batch gates passed")
	}
	return nil
}
