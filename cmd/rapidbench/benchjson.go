package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchsuite"
	"repro/internal/obs"
)

// benchResult is one benchmark's measurements in BENCH_PR2.json.
type benchResult struct {
	NsPerOp         float64 `json:"ns_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	Iterations      int     `json:"iterations,omitempty"`
	InstancesPerSec float64 `json:"train_instances_per_sec,omitempty"`
	SpeedupVsBase   float64 `json:"speedup_vs_baseline,omitempty"`
	AllocRatioBase  float64 `json:"alloc_reduction_vs_baseline,omitempty"`
}

type benchEnv struct {
	Go         string `json:"go"`
	CPU        int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Arch       string `json:"goarch"`
}

type benchFile struct {
	Generated string                 `json:"generated"`
	Env       benchEnv               `json:"env"`
	Baseline  benchBaseline          `json:"baseline"`
	Current   map[string]benchResult `json:"current"`
	// Telemetry is the obs registry snapshot accumulated across the run:
	// the inference-latency histogram (full distribution, not just the
	// mean ns/op) and the training metric set from the TrainListwise epochs.
	Telemetry []obs.MetricSnapshot `json:"telemetry,omitempty"`
}

type benchBaseline struct {
	Commit  string                 `json:"commit"`
	Note    string                 `json:"note"`
	Results map[string]benchResult `json:"results"`
}

// baselineResults are the pre-change numbers, measured at the named commit
// on the benchmarks as they existed then (per-iteration fresh tapes, branchy
// MatMul, sequential trainer). Intel Xeon @ 2.10GHz, 1 CPU, go1.24.0.
var baselineResults = benchBaseline{
	Commit: "6e72360",
	Note: "pre data-parallel-trainer / pooled-tape baseline; " +
		"LSTMStep and BiLSTMList20 then allocated a fresh tape per iteration",
	Results: map[string]benchResult{
		"MatMul32":       {NsPerOp: 20378, BytesPerOp: 8240, AllocsPerOp: 2},
		"LSTMStep":       {NsPerOp: 8581, BytesPerOp: 11864, AllocsPerOp: 114},
		"BiLSTMList20":   {NsPerOp: 394378, BytesPerOp: 419760, AllocsPerOp: 4436},
		"RAPIDInference": {NsPerOp: 565234, BytesPerOp: 583528, AllocsPerOp: 5743},
		"Table2a":        {NsPerOp: 13782878106, BytesPerOp: 15604627728, AllocsPerOp: 29379216},
	},
}

// runBenchJSON executes the shared benchmark suite and writes the results —
// alongside the committed pre-change baseline — to path as JSON. Progress
// goes to stderr; the heavyweight Table2a entry runs last.
func runBenchJSON(path string) error {
	reg := obs.NewRegistry()
	benchsuite.SetRegistry(reg)
	defer benchsuite.SetRegistry(nil)
	out := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env: benchEnv{
			Go:         runtime.Version(),
			CPU:        runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Arch:       runtime.GOARCH,
		},
		Baseline: baselineResults,
		Current:  make(map[string]benchResult),
	}
	for _, e := range benchsuite.Entries() {
		fmt.Fprintf(os.Stderr, "rapidbench: benchmarking %s...\n", e.Name)
		r := testing.Benchmark(e.F)
		res := benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		if ips, ok := r.Extra["instances/s"]; ok {
			res.InstancesPerSec = ips
		} else if e.InstancesPerOp > 0 && res.NsPerOp > 0 {
			res.InstancesPerSec = float64(e.InstancesPerOp) / (res.NsPerOp * 1e-9)
		}
		if base, ok := out.Baseline.Results[e.Name]; ok {
			if res.NsPerOp > 0 {
				res.SpeedupVsBase = base.NsPerOp / res.NsPerOp
			}
			if res.AllocsPerOp > 0 {
				res.AllocRatioBase = float64(base.AllocsPerOp) / float64(res.AllocsPerOp)
			}
		}
		out.Current[e.Name] = res
		fmt.Fprintf(os.Stderr, "rapidbench: %-18s %12.0f ns/op %10d B/op %8d allocs/op\n",
			e.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	out.Telemetry = reg.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rapidbench: wrote %s\n", path)
	return nil
}
