package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func smokeOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Scale = 0.02
	opt.Epochs = 1
	opt.Seed = 7
	return opt
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", smokeOptions(), &strings.Builder{}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunRegretExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run("regret", smokeOptions(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "regret") {
		t.Fatalf("regret output missing table: %s", sb.String())
	}
}

func TestRunTable5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	var sb strings.Builder
	if err := run("table5", smokeOptions(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"RAPID-3", "RAPID-5", "RAPID-10", "rev@10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table5 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	var sb strings.Builder
	if err := run("fig5", smokeOptions(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "diverse") || !strings.Contains(sb.String(), "focused") {
		t.Fatalf("fig5 output missing case users:\n%s", sb.String())
	}
}
