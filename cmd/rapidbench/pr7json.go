package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchsuite"
)

// pr7Baseline pins the pre-change numbers BENCH_PR7.json compares against:
// the serial GEMM kernel (bitwise identical to what MatMulInto always ran)
// and cold batch-16 scoring (every instance paying the full preference
// pass), measured at the named commit before the parallel dispatch and the
// user-state fast path existed. Intel Xeon @ 2.10GHz, 1 CPU, linux/amd64.
var pr7Baseline = benchBaseline{
	Commit: "c08208e",
	Note: "pre parallel-GEMM / user-state-cache baseline; serial register-" +
		"blocked kernel, ScoreBatch with no encoded-state reuse",
	Results: map[string]benchResult{
		"GEMM32Serial":   {NsPerOp: 15900, BytesPerOp: 0, AllocsPerOp: 0},
		"GEMM128Serial":  {NsPerOp: 889968, BytesPerOp: 0, AllocsPerOp: 0},
		"GEMM256Serial":  {NsPerOp: 6864965, BytesPerOp: 0, AllocsPerOp: 0},
		"GEMM384Serial":  {NsPerOp: 24505263, BytesPerOp: 0, AllocsPerOp: 0},
		"StateScoreCold": {NsPerOp: 3343111, BytesPerOp: 459160, AllocsPerOp: 1459},
	},
}

// pr7File is the BENCH_PR7.json layout: the committed pre-change baseline,
// the current serial/parallel GEMM sweep and cold/warm state-scoring pair,
// and the derived ratios the CI gates read.
type pr7File struct {
	Generated string                 `json:"generated"`
	Env       benchEnv               `json:"env"`
	Baseline  benchBaseline          `json:"baseline"`
	Current   map[string]benchResult `json:"current"`
	// GEMMParallelSpeedup maps each swept size to serial ns/op over parallel
	// ns/op. Above 1.0 the panel split wins; sizes below the dispatch cutoff
	// (32) must sit at ~1.0 — the parallel build may not tax small shapes.
	GEMMParallelSpeedup map[string]float64 `json:"gemm_parallel_speedup"`
	// WarmSpeedupX is cold ns/op over warm ns/op for batch-16 scoring: the
	// share of the forward pass the encoded-user-state cache elides.
	WarmSpeedupX float64 `json:"warm_speedup_x"`
	// SerialVsBaseline is current GEMM256Serial ns/op over the committed
	// baseline's — the guard that the dispatch refactor left the serial
	// kernel untouched.
	SerialVsBaseline float64 `json:"serial_vs_baseline"`
	// ParallelEffective records whether this machine can express a parallel
	// win (GOMAXPROCS > 1). On a single-core runner the parallel dispatch
	// falls back to serial and the speedup gate degrades to no-regression.
	ParallelEffective bool `json:"parallel_effective"`
}

// Gates for -pr7json -check. On a multi-core runner the large-shape panels
// must actually win; on any machine the small shape and the serial kernel
// may not regress, and the warm state path must beat cold.
//
// The timing tolerances are deliberately loose where the comparison spans
// noise we cannot control: the serial kernel's bit-for-bit unchangedness is
// proven by the parity tests in internal/mat, so the cross-run drift gate
// here only has to catch gross regressions (an accidental O(n³)→worse or
// dispatch overhead leaking into the serial path), not scheduler jitter —
// shared single-core runners show >30% run-to-run variance on multi-ms
// benchmarks.
const (
	pr7MinLargeSpeedup  = 1.2  // GEMM256/384 parallel vs serial, GOMAXPROCS > 1 only
	pr7MaxSmallSlowdown = 1.15 // GEMM32 parallel vs serial (below-cutoff dispatch tax)
	pr7MaxSerialDrift   = 2.0  // serial kernel vs committed baseline (gross drift only)
	pr7MaxSingleCoreTax = 1.5  // GEMM256 parallel build vs serial on one core (same code path; noise backstop)
	pr7MinWarmSpeedup   = 1.05 // cold vs warm batch-16 scoring
)

// runPR7JSON executes the parallel-GEMM sweep and the cold/warm state
// comparison and writes BENCH_PR7.json. smoke restricts the run to the
// entries the CI gates read; check exits non-zero when a gate fails.
func runPR7JSON(path string, smoke, check bool) error {
	gated := map[string]bool{
		"GEMM32Serial": true, "GEMM32Parallel": true,
		"GEMM256Serial": true, "GEMM256Parallel": true,
		"StateScoreCold": true, "StateScoreWarm": true,
	}
	out := pr7File{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env: benchEnv{
			Go:         runtime.Version(),
			CPU:        runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Arch:       runtime.GOARCH,
		},
		Baseline:            pr7Baseline,
		Current:             make(map[string]benchResult),
		GEMMParallelSpeedup: make(map[string]float64),
		ParallelEffective:   runtime.GOMAXPROCS(0) > 1,
	}
	for _, e := range benchsuite.PR7Entries() {
		if smoke && !gated[e.Name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "rapidbench: benchmarking %s...\n", e.Name)
		// Best of 5 (the batch harness uses 3): noise only slows a run down,
		// so the fastest repetition is the least-noisy estimate, and this
		// harness's serial-vs-parallel ratios are gated, so it is worth more
		// repetitions to tighten them.
		var res benchResult
		for rep := 0; rep < 5; rep++ {
			r := testing.Benchmark(e.F)
			cand := benchResult{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Iterations:  r.N,
			}
			if ips, ok := r.Extra["instances/s"]; ok {
				cand.InstancesPerSec = ips
			} else if e.InstancesPerOp > 0 && cand.NsPerOp > 0 {
				cand.InstancesPerSec = float64(e.InstancesPerOp) / (cand.NsPerOp * 1e-9)
			}
			if rep == 0 || cand.NsPerOp < res.NsPerOp {
				res = cand
			}
		}
		out.Current[e.Name] = res
		fmt.Fprintf(os.Stderr, "rapidbench: %-18s %12.0f ns/op\n", e.Name, res.NsPerOp)
	}

	for _, n := range []string{"32", "128", "256", "384"} {
		ser, okS := out.Current["GEMM"+n+"Serial"]
		par, okP := out.Current["GEMM"+n+"Parallel"]
		if okS && okP && par.NsPerOp > 0 {
			out.GEMMParallelSpeedup[n] = ser.NsPerOp / par.NsPerOp
		}
	}
	if cold, ok := out.Current["StateScoreCold"]; ok {
		if warm, ok := out.Current["StateScoreWarm"]; ok && warm.NsPerOp > 0 {
			out.WarmSpeedupX = cold.NsPerOp / warm.NsPerOp
		}
	}
	if base, ok := out.Baseline.Results["GEMM256Serial"]; ok && base.NsPerOp > 0 {
		if cur, ok := out.Current["GEMM256Serial"]; ok {
			out.SerialVsBaseline = cur.NsPerOp / base.NsPerOp
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rapidbench: wrote %s (gemm256 parallel %.2fx, warm %.2fx, parallel effective %v)\n",
		path, out.GEMMParallelSpeedup["256"], out.WarmSpeedupX, out.ParallelEffective)

	if check {
		if sp, ok := out.GEMMParallelSpeedup["32"]; ok && sp > 0 && 1/sp > pr7MaxSmallSlowdown {
			return fmt.Errorf("below-cutoff GEMM32 slowed %.1f%% under the parallel build (gate: %.0f%%)",
				(1/sp-1)*100, (pr7MaxSmallSlowdown-1)*100)
		}
		if out.SerialVsBaseline > pr7MaxSerialDrift {
			return fmt.Errorf("serial GEMM256 drifted %.1f%% from baseline %s (gate: %.0f%%)",
				(out.SerialVsBaseline-1)*100, out.Baseline.Commit, (pr7MaxSerialDrift-1)*100)
		}
		if out.ParallelEffective {
			for _, n := range []string{"256", "384"} {
				if sp, ok := out.GEMMParallelSpeedup[n]; ok && sp < pr7MinLargeSpeedup {
					return fmt.Errorf("GEMM%s parallel speedup %.2fx below gate %.1fx on a %d-way machine",
						n, sp, pr7MinLargeSpeedup, out.Env.GOMAXPROCS)
				}
			}
		} else if sp, ok := out.GEMMParallelSpeedup["256"]; ok && sp > 0 && 1/sp > pr7MaxSingleCoreTax {
			// Single-core: SetWorkers(0) resolves to GOMAXPROCS=1, so the
			// "parallel" entry runs the serial fallback — any measured delta
			// is noise, and this gate is only a backstop against the fallback
			// itself breaking.
			return fmt.Errorf("GEMM256 slowed %.1f%% under the parallel build on a single-core machine (gate: %.0f%%)",
				(1/sp-1)*100, (pr7MaxSingleCoreTax-1)*100)
		}
		if out.WarmSpeedupX < pr7MinWarmSpeedup {
			return fmt.Errorf("warm state scoring is only %.2fx cold (gate: %.2fx)",
				out.WarmSpeedupX, pr7MinWarmSpeedup)
		}
		fmt.Fprintln(os.Stderr, "rapidbench: pr7 gates passed")
	}
	return nil
}
