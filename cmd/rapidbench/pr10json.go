package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/serve/binproto"
)

// pr10File is the BENCH_PR10.json layout: the two wire codecs and the two
// full frontends measured against the same engine and the same request, plus
// the derived ratios the CI gates read. There is no pinned cross-commit
// baseline: the binary protocol did not exist before this change, so the
// comparison that matters is intra-run — JSON entries are the baseline.
type pr10File struct {
	Generated string                 `json:"generated"`
	Env       benchEnv               `json:"env"`
	Note      string                 `json:"note"`
	Current   map[string]benchResult `json:"current"`
	// CodecAllocRatio is BinaryCodec allocs/op over JSONCodec allocs/op for
	// one full request+response encode/decode cycle (client encode, server
	// decode, server encode, client decode). The binary codec reuses its
	// encode buffers, so this is the serialization cost a steady-state
	// fleet-internal hop pays.
	CodecAllocRatio float64 `json:"codec_alloc_ratio"`
	// RoundTripAllocRatio is BinaryRoundTrip allocs/op over JSONRoundTrip
	// allocs/op: a live request through each frontend into the same engine.
	// Both sides pay the identical scoring cost, so the gap is pure
	// transport (HTTP machinery + JSON text vs length-prefixed frames).
	RoundTripAllocRatio float64 `json:"round_trip_alloc_ratio"`
	// CodecSpeedupX / RoundTripSpeedupX are JSON ns/op over binary ns/op.
	CodecSpeedupX     float64 `json:"codec_speedup_x"`
	RoundTripSpeedupX float64 `json:"round_trip_speedup_x"`
	// ScoreParity records that the two frontends returned bitwise-identical
	// scores and ranking for the benchmark request before timing started.
	ScoreParity bool `json:"score_parity"`
}

// Gates for -pr10json -check. The allocation gates are strict inequalities —
// allocs/op is deterministic, not timing noise — and are the acceptance
// criterion for the binary frontend: it must be cheaper per request than
// JSON, not merely equivalent. The timing gate is a loose backstop only;
// loopback round trips on shared runners jitter far too much to gate tightly.
const (
	pr10MaxBinarySlowdown = 1.25 // BinaryRoundTrip ns/op vs JSONRoundTrip (noise backstop)
)

// pr10Model is the serving geometry both frontends score against: big enough
// that requests look like production traffic (20 candidates, 5 behavior
// topics), small enough that one scoring pass stays well inside the budget.
func pr10Model() (serve.Scorer, serve.Manifest) {
	cfg := core.Config{
		UserDim: 8, ItemDim: 6, Topics: 5, Hidden: 16, D: 8,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 7,
	}
	m := core.New(cfg)
	return m, serve.Manifest{Dataset: "bench-pr10", Config: cfg}
}

// pr10Request builds the deterministic benchmark request: the rapidload
// generator's shape (normal features, uniform covers and init scores) at the
// pr10Model geometry with 20 candidates.
func pr10Request(cfg core.Config) *serve.RerankRequest {
	rng := rand.New(rand.NewSource(10))
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	req := &serve.RerankRequest{
		UserFeatures:   vec(cfg.UserDim),
		TopicSequences: make([][]serve.SeqItemWire, cfg.Topics),
	}
	for j := range req.TopicSequences {
		seq := make([]serve.SeqItemWire, 3)
		for k := range seq {
			seq[k] = serve.SeqItemWire{Features: vec(cfg.ItemDim)}
		}
		req.TopicSequences[j] = seq
	}
	for i := 0; i < 20; i++ {
		cover := make([]float64, cfg.Topics)
		for j := range cover {
			cover[j] = rng.Float64() * 0.5
		}
		req.Items = append(req.Items, serve.RerankItem{
			ID:        1000 + i,
			Features:  vec(cfg.ItemDim),
			Cover:     cover,
			InitScore: rng.Float64(),
		})
	}
	return req
}

// pr10Parity sends req through both frontends once and verifies the answers
// are bitwise-identical in ranking and scores (request IDs differ by design:
// each served response gets its own). A degraded response fails parity — a
// benchmark of the fallback path would not measure what this file claims.
func pr10Parity(httpURL string, bin *binproto.Client, req *serve.RerankRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := http.Post(httpURL+"/v1/rerank", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("http parity request: %w", err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return fmt.Errorf("http parity request: status %d", hr.StatusCode)
	}
	var jresp serve.RerankResponse
	if err := json.NewDecoder(hr.Body).Decode(&jresp); err != nil {
		return err
	}
	bresp, err := bin.Rerank(context.Background(), req)
	if err != nil {
		return fmt.Errorf("binary parity request: %w", err)
	}
	if jresp.Degraded || bresp.Degraded {
		return fmt.Errorf("parity request degraded (json %v, binary %v)", jresp.Degraded, bresp.Degraded)
	}
	if len(jresp.Ranked) != len(bresp.Ranked) || len(jresp.Scores) != len(bresp.Scores) {
		return fmt.Errorf("parity shape mismatch: json %d/%d, binary %d/%d",
			len(jresp.Ranked), len(jresp.Scores), len(bresp.Ranked), len(bresp.Scores))
	}
	for i := range jresp.Ranked {
		if jresp.Ranked[i] != bresp.Ranked[i] {
			return fmt.Errorf("parity rank[%d]: json %d, binary %d", i, jresp.Ranked[i], bresp.Ranked[i])
		}
		if math.Float64bits(jresp.Scores[i]) != math.Float64bits(bresp.Scores[i]) {
			return fmt.Errorf("parity score[%d]: json %x, binary %x",
				i, math.Float64bits(jresp.Scores[i]), math.Float64bits(bresp.Scores[i]))
		}
	}
	return nil
}

// runPR10JSON benchmarks the JSON and binary frontends against one shared
// engine and writes BENCH_PR10.json. smoke shortens the repetition count;
// every entry is gate-read, so none are skipped. check exits non-zero when
// the binary path fails to beat JSON on per-request allocations.
func runPR10JSON(path string, smoke, check bool) error {
	model, man := pr10Model()
	srv := serve.NewServer(model, man, serve.Config{Budget: 2 * time.Second})
	srv.Log = func(string, ...any) {}
	req := pr10Request(man.Config)

	// JSON frontend: the real handler behind a real HTTP server on loopback.
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	// Binary frontend: the binproto server over the same engine on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	bs := &binproto.Server{Eng: srv.Engine, Log: func(string, ...any) {}}
	go bs.Serve(ln)
	defer ln.Close()
	bin, err := binproto.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer bin.Close()

	out := pr10File{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Env: benchEnv{
			Go:         runtime.Version(),
			CPU:        runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Arch:       runtime.GOARCH,
		},
		Note: "JSON entries are the baseline: both frontends drive the same engine " +
			"with the same request, so every delta is transport cost",
		Current: make(map[string]benchResult),
	}

	if err := pr10Parity(hts.URL, bin, req); err != nil {
		return fmt.Errorf("cross-frontend parity: %w", err)
	}
	out.ScoreParity = true

	// A representative response for the codec benchmarks: what the engine
	// actually answers for req, not a synthetic shape.
	refResp, err := bin.Rerank(context.Background(), req)
	if err != nil {
		return err
	}

	benches := []struct {
		name string
		f    func(b *testing.B)
	}{
		{"JSONCodec", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wire, err := json.Marshal(req)
				if err != nil {
					b.Fatal(err)
				}
				var dreq serve.RerankRequest
				if err := json.Unmarshal(wire, &dreq); err != nil {
					b.Fatal(err)
				}
				rwire, err := json.Marshal(&refResp)
				if err != nil {
					b.Fatal(err)
				}
				var dresp serve.RerankResponse
				if err := json.Unmarshal(rwire, &dresp); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BinaryCodec", func(b *testing.B) {
			b.ReportAllocs()
			var pbuf, rbuf []byte
			for i := 0; i < b.N; i++ {
				pbuf = binproto.AppendRequest(pbuf[:0], req)
				if _, err := binproto.DecodeRequest(pbuf); err != nil {
					b.Fatal(err)
				}
				rbuf = binproto.AppendResponse(rbuf[:0], &refResp)
				if _, err := binproto.DecodeResponse(rbuf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"JSONRoundTrip", func(b *testing.B) {
			body, err := json.Marshal(req)
			if err != nil {
				b.Fatal(err)
			}
			client := hts.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hr, err := client.Post(hts.URL+"/v1/rerank", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				var resp serve.RerankResponse
				if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
					b.Fatal(err)
				}
				hr.Body.Close()
				if hr.StatusCode != http.StatusOK || resp.Degraded {
					b.Fatalf("status %d degraded %v", hr.StatusCode, resp.Degraded)
				}
			}
		}},
		{"BinaryRoundTrip", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp, err := bin.Rerank(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if resp.Degraded {
					b.Fatal("degraded response")
				}
			}
		}},
	}

	// Best-of-N like the pr7 harness: noise only slows a repetition down, so
	// the fastest rep is the least-noisy estimate. Allocs/op is identical
	// across reps. Smoke keeps one rep — the alloc gates it feeds are exact.
	reps := 3
	if smoke {
		reps = 1
	}
	for _, e := range benches {
		fmt.Fprintf(os.Stderr, "rapidbench: benchmarking %s...\n", e.name)
		var res benchResult
		for rep := 0; rep < reps; rep++ {
			r := testing.Benchmark(e.f)
			cand := benchResult{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Iterations:  r.N,
			}
			if rep == 0 || cand.NsPerOp < res.NsPerOp {
				res = cand
			}
		}
		out.Current[e.name] = res
		fmt.Fprintf(os.Stderr, "rapidbench: %-16s %10.0f ns/op %8d B/op %6d allocs/op\n",
			e.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	jc, bc := out.Current["JSONCodec"], out.Current["BinaryCodec"]
	jr, br := out.Current["JSONRoundTrip"], out.Current["BinaryRoundTrip"]
	if jc.AllocsPerOp > 0 {
		out.CodecAllocRatio = float64(bc.AllocsPerOp) / float64(jc.AllocsPerOp)
	}
	if jr.AllocsPerOp > 0 {
		out.RoundTripAllocRatio = float64(br.AllocsPerOp) / float64(jr.AllocsPerOp)
	}
	if bc.NsPerOp > 0 {
		out.CodecSpeedupX = jc.NsPerOp / bc.NsPerOp
	}
	if br.NsPerOp > 0 {
		out.RoundTripSpeedupX = jr.NsPerOp / br.NsPerOp
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rapidbench: wrote %s (codec %.2fx faster / %.2fx allocs, round trip %.2fx faster / %.2fx allocs)\n",
		path, out.CodecSpeedupX, out.CodecAllocRatio, out.RoundTripSpeedupX, out.RoundTripAllocRatio)

	if check {
		if !out.ScoreParity {
			return fmt.Errorf("cross-frontend score parity not established")
		}
		if bc.AllocsPerOp >= jc.AllocsPerOp {
			return fmt.Errorf("binary codec allocates %d/op, JSON %d/op — binary must be strictly cheaper",
				bc.AllocsPerOp, jc.AllocsPerOp)
		}
		if br.AllocsPerOp >= jr.AllocsPerOp {
			return fmt.Errorf("binary round trip allocates %d/op, JSON %d/op — binary must be strictly cheaper",
				br.AllocsPerOp, jr.AllocsPerOp)
		}
		if jr.NsPerOp > 0 && br.NsPerOp/jr.NsPerOp > pr10MaxBinarySlowdown {
			return fmt.Errorf("binary round trip is %.1f%% slower than JSON (gate: %.0f%%)",
				(br.NsPerOp/jr.NsPerOp-1)*100, (pr10MaxBinarySlowdown-1)*100)
		}
		fmt.Fprintln(os.Stderr, "rapidbench: pr10 gates passed")
	}
	return nil
}
