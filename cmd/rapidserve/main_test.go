package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
)

func testServer(t *testing.T) *server {
	t.Helper()
	cfg := core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2,
		Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
	return &server{model: core.New(cfg), manifest: manifest{Dataset: "test", Config: cfg}}
}

func validRequest() *rerankRequest {
	return &rerankRequest{
		UserFeatures: []float64{0.1, 0.2, 0.3},
		Items: []rerankItem{
			{ID: 7, Features: []float64{0.5, 0.1}, Cover: []float64{1, 0}, InitScore: 0.9},
			{ID: 8, Features: []float64{0.2, 0.7}, Cover: []float64{0, 1}, InitScore: 0.4},
			{ID: 9, Features: []float64{0.3, 0.3}, Cover: []float64{1, 0}, InitScore: 0.2},
		},
		TopicSequences: [][]seqItemWire{
			{{Features: []float64{0.5, 0.2}}},
			{},
		},
	}
}

func TestToInstanceValid(t *testing.T) {
	s := testServer(t)
	inst, err := s.toInstance(validRequest())
	if err != nil {
		t.Fatal(err)
	}
	if inst.L() != 3 || inst.M != 2 {
		t.Fatalf("instance geometry L=%d M=%d", inst.L(), inst.M)
	}
	// Sequence items resolve through ItemFeat with synthetic ids.
	if len(inst.TopicSeqs[0]) != 1 {
		t.Fatalf("topic 0 sequence %v", inst.TopicSeqs[0])
	}
	if f := inst.ItemFeat(inst.TopicSeqs[0][0]); f[0] != 0.5 {
		t.Fatal("sequence item features unresolved")
	}
	// Scoring the assembled instance must work end to end.
	scores := s.model.Scores(inst)
	if len(scores) != 3 {
		t.Fatalf("scores %v", scores)
	}
}

func TestToInstanceValidation(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name   string
		mutate func(*rerankRequest)
	}{
		{"wrong user dims", func(r *rerankRequest) { r.UserFeatures = []float64{1} }},
		{"no items", func(r *rerankRequest) { r.Items = nil }},
		{"wrong item dims", func(r *rerankRequest) { r.Items[0].Features = []float64{1, 2, 3} }},
		{"wrong cover dims", func(r *rerankRequest) { r.Items[1].Cover = []float64{1} }},
		{"wrong topic count", func(r *rerankRequest) { r.TopicSequences = r.TopicSequences[:1] }},
		{"wrong seq dims", func(r *rerankRequest) {
			r.TopicSequences[0] = []seqItemWire{{Features: []float64{1}}}
		}},
	}
	for _, tc := range cases {
		req := validRequest()
		tc.mutate(req)
		if _, err := s.toInstance(req); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
}

func TestHandleRerank(t *testing.T) {
	s := testServer(t)
	body, _ := json.Marshal(validRequest())
	req := httptest.NewRequest(http.MethodPost, "/rerank", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.handleRerank(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp rerankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Ranked) != 3 || len(resp.Scores) != 3 {
		t.Fatalf("response %+v", resp)
	}
	// Scores aligned with ranked order must be non-increasing.
	for i := 1; i < len(resp.Scores); i++ {
		if resp.Scores[i] > resp.Scores[i-1]+1e-12 {
			t.Fatalf("scores not sorted: %v", resp.Scores)
		}
	}
	// Ranked is a permutation of the request ids.
	seen := map[int]bool{}
	for _, id := range resp.Ranked {
		seen[id] = true
	}
	for _, id := range []int{7, 8, 9} {
		if !seen[id] {
			t.Fatalf("item %d missing from ranking", id)
		}
	}
}

func TestHandleRerankBadJSON(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/rerank", bytes.NewReader([]byte("{")))
	w := httptest.NewRecorder()
	s.handleRerank(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d for malformed JSON", w.Code)
	}
}

func TestHandleHealth(t *testing.T) {
	s := testServer(t)
	w := httptest.NewRecorder()
	s.handleHealth(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["status"] != "ok" || m["model"] != "RAPID-pro" {
		t.Fatalf("health payload %v", m)
	}
}

func TestManifestPath(t *testing.T) {
	if got := manifestPath("model.gob"); got != "model.json" {
		t.Fatalf("manifestPath = %s", got)
	}
	if got := manifestPath("weird"); got != "weird.json" {
		t.Fatalf("manifestPath = %s", got)
	}
}
