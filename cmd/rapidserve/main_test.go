package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/serve"
)

func TestRunMissingModel(t *testing.T) {
	err := run(context.Background(), filepath.Join(t.TempDir(), "nope.gob"), "127.0.0.1:0", serve.Config{}, nil)
	if err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestRunRegistryEmptyRoot(t *testing.T) {
	err := runRegistry(context.Background(), t.TempDir(), "127.0.0.1:0", serve.Config{}, 5, false, nil, feedbackOpts{})
	if err == nil {
		t.Fatal("empty registry root accepted")
	}
}

// TestRunRegistryStartsAndDrains exercises the versioned deployment shape:
// publish a version, activate it through the registry, serve, drain.
func TestRunRegistryStartsAndDrains(t *testing.T) {
	root := t.TempDir()
	cfg := core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2, Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
	m := core.New(cfg)
	if _, err := registry.Publish(root, "v1", m.ParamSet(), serve.Manifest{Dataset: "test", Config: cfg}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	// Full feedback wiring: event log, ingest queue and a bandit slice all
	// come up and drain with the server.
	fb := feedbackOpts{
		dir: filepath.Join(root, "feedback"), queue: 16, segmentMB: 1, maxSegments: 4,
		banditPct: 10, arms: "mmr@0.2,mmr@0.8", segments: 2, algo: "linucb", epsilon: 0.05,
	}
	go func() {
		errc <- runRegistry(ctx, root, "127.0.0.1:0", serve.Config{DrainTimeout: time.Second}, 5, true, nil, fb)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("runRegistry: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runRegistry did not drain after cancel")
	}
	if _, err := os.Stat(filepath.Join(root, "feedback", "index.json")); err != nil {
		t.Fatalf("feedback log was not created/committed: %v", err)
	}
}

// TestRunStartsAndDrains exercises the full startup path — manifest decode,
// geometry validation, strict weight load — and the signal-driven drain.
func TestRunStartsAndDrains(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	cfg := core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2, Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
	m := core.New(cfg)
	if err := m.ParamSet().SaveFileAtomic(modelPath); err != nil {
		t.Fatal(err)
	}
	man, err := json.Marshal(serve.Manifest{Dataset: "test", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(serve.ManifestPath(modelPath), man, 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, modelPath, "127.0.0.1:0", serve.Config{DrainTimeout: time.Second}, nil)
	}()
	// Give the listener a moment to come up, then simulate SIGTERM.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
}
