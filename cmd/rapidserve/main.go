// Command rapidserve exposes a trained RAPID model as a hardened HTTP
// re-ranking microservice — the deployment shape the paper's efficiency
// analysis (Section V-B) targets, where re-ranking must fit inside an
// industrial response budget (< 50 ms) and must never stall or crash the
// serving chain it sits in.
//
// Start it with the artifacts produced by rapidtrain:
//
//	rapidserve -model rapid-model.gob -addr :8080
//
// Endpoints:
//
//	POST /rerank   — JSON request → re-ranked item IDs and scores
//	GET  /healthz  — liveness, model metadata and operational counters
//	GET  /readyz   — readiness; 503 while draining
//	GET  /metrics  — Prometheus text exposition (internal/obs)
//	GET  /debug/pprof/* — profiling, only with -pprof
//
// Robustness envelope (see internal/serve): per-request scoring deadline
// with graceful degradation to the initial-ranker order, bounded
// concurrency with 429 load shedding, panic recovery, request-size caps,
// and SIGINT/SIGTERM graceful drain.
//
// The request must carry everything the model consumes (features, topic
// coverage, per-topic behavior sequences), mirroring rerank.Instance:
//
//	{
//	  "user_features": [...],
//	  "items": [{"id": 1, "features": [...], "cover": [...], "init_score": 0.7}, ...],
//	  "topic_sequences": [[{"features": [...]}, ...], ...]   // one list per topic
//	}
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "rapid-model.gob", "model weights from rapidtrain")
		addr      = flag.String("addr", ":8080", "listen address")
		budget    = flag.Duration("budget", 50*time.Millisecond, "per-request scoring deadline before degrading to the initial order")
		inflight  = flag.Int("max-inflight", 0, "max concurrent scoring passes (0 = 4×GOMAXPROCS)")
		queueWait = flag.Duration("queue-wait", 10*time.Millisecond, "max wait for a scoring slot before shedding with 429")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default: profiling endpoints are a DoS surface)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *modelPath, *addr, serve.Config{
		Budget:       *budget,
		MaxInFlight:  *inflight,
		QueueWait:    *queueWait,
		MaxBodyBytes: *maxBody,
		DrainTimeout: *drain,
		Pprof:        *pprofOn,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "rapidserve: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, modelPath, addr string, cfg serve.Config) error {
	model, man, err := serve.LoadModel(modelPath)
	if err != nil {
		return err
	}
	srv := serve.NewServer(model, man, cfg)
	log.Printf("rapidserve: listening on %s (model %s, dataset %s, budget %v, metrics at /metrics, pprof %v)",
		addr, model.Name(), man.Dataset, cfg.Budget, cfg.Pprof)
	return srv.Run(ctx, addr)
}
