// Command rapidserve exposes a trained RAPID model as an HTTP re-ranking
// microservice — the deployment shape the paper's efficiency analysis
// (Section V-B) targets, where re-ranking must fit inside an industrial
// response budget (< 50 ms).
//
// Start it with the artifacts produced by rapidtrain:
//
//	rapidserve -model rapid-model.gob -addr :8080
//
// Endpoints:
//
//	POST /rerank   — JSON request → re-ranked item IDs and scores
//	GET  /healthz  — liveness and model metadata
//
// The request must carry everything the model consumes (features, topic
// coverage, per-topic behavior sequences), mirroring rerank.Instance:
//
//	{
//	  "user_features": [...],
//	  "items": [{"id": 1, "features": [...], "cover": [...], "init_score": 0.7}, ...],
//	  "topic_sequences": [[{"features": [...]}, ...], ...]   // one list per topic
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/rerank"
)

func main() {
	var (
		modelPath = flag.String("model", "rapid-model.gob", "model weights from rapidtrain")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	srv, err := newServer(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidserve: %v\n", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rerank", srv.handleRerank)
	mux.HandleFunc("GET /healthz", srv.handleHealth)
	log.Printf("rapidserve: listening on %s (model %s)", *addr, *modelPath)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type server struct {
	model    *core.Model
	manifest manifest
}

type manifest struct {
	Dataset string      `json:"dataset"`
	Lambda  float64     `json:"lambda"`
	Config  core.Config `json:"config"`
}

func newServer(modelPath string) (*server, error) {
	mf, err := os.Open(manifestPath(modelPath))
	if err != nil {
		return nil, fmt.Errorf("open manifest: %w", err)
	}
	defer mf.Close()
	var man manifest
	if err := json.NewDecoder(mf).Decode(&man); err != nil {
		return nil, fmt.Errorf("decode manifest: %w", err)
	}
	m := core.New(man.Config)
	wf, err := os.Open(modelPath)
	if err != nil {
		return nil, fmt.Errorf("open model: %w", err)
	}
	defer wf.Close()
	if err := m.ParamSet().Load(wf); err != nil {
		return nil, fmt.Errorf("load weights: %w", err)
	}
	return &server{model: m, manifest: man}, nil
}

func manifestPath(modelPath string) string {
	if len(modelPath) > 4 && modelPath[len(modelPath)-4:] == ".gob" {
		return modelPath[:len(modelPath)-4] + ".json"
	}
	return modelPath + ".json"
}

// rerankRequest is the wire format of POST /rerank.
type rerankRequest struct {
	UserFeatures   []float64       `json:"user_features"`
	Items          []rerankItem    `json:"items"`
	TopicSequences [][]seqItemWire `json:"topic_sequences"`
}

type rerankItem struct {
	ID        int       `json:"id"`
	Features  []float64 `json:"features"`
	Cover     []float64 `json:"cover"`
	InitScore float64   `json:"init_score"`
}

type seqItemWire struct {
	Features []float64 `json:"features"`
}

type rerankResponse struct {
	Ranked    []int     `json:"ranked"`
	Scores    []float64 `json:"scores"` // aligned with Ranked
	LatencyMS float64   `json:"latency_ms"`
}

func (s *server) handleRerank(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req rerankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	inst, err := s.toInstance(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scores := s.model.Scores(inst)
	order := rerank.OrderByScores(inst.Items, scores)
	ordered := make([]float64, len(order))
	pos := make(map[int]int, len(inst.Items))
	for i, id := range inst.Items {
		pos[id] = i
	}
	for i, id := range order {
		ordered[i] = scores[pos[id]]
	}
	resp := rerankResponse{
		Ranked:    order,
		Scores:    ordered,
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("rapidserve: encode response: %v", err)
	}
}

// toInstance validates the wire request against the model geometry and
// assembles a rerank.Instance.
func (s *server) toInstance(req *rerankRequest) (*rerank.Instance, error) {
	cfg := s.model.Cfg
	if len(req.UserFeatures) != cfg.UserDim {
		return nil, fmt.Errorf("user_features has %d dims, model wants %d", len(req.UserFeatures), cfg.UserDim)
	}
	if len(req.Items) == 0 {
		return nil, fmt.Errorf("no items to re-rank")
	}
	if len(req.TopicSequences) != cfg.Topics {
		return nil, fmt.Errorf("topic_sequences has %d topics, model wants %d", len(req.TopicSequences), cfg.Topics)
	}
	items := make([]int, len(req.Items))
	scores := make([]float64, len(req.Items))
	cover := make([][]float64, len(req.Items))
	feats := make(map[int][]float64, len(req.Items))
	for i, it := range req.Items {
		if len(it.Features) != cfg.ItemDim {
			return nil, fmt.Errorf("item %d has %d feature dims, model wants %d", it.ID, len(it.Features), cfg.ItemDim)
		}
		if len(it.Cover) != cfg.Topics {
			return nil, fmt.Errorf("item %d has %d cover dims, model wants %d", it.ID, len(it.Cover), cfg.Topics)
		}
		items[i] = it.ID
		scores[i] = it.InitScore
		cover[i] = it.Cover
		feats[it.ID] = it.Features
	}
	// Behavior-sequence items are addressed with synthetic negative IDs so
	// they cannot collide with list items.
	seqs := make([][]int, cfg.Topics)
	nextID := -1
	for j, seq := range req.TopicSequences {
		for _, si := range seq {
			if len(si.Features) != cfg.ItemDim {
				return nil, fmt.Errorf("topic %d sequence item has %d feature dims, model wants %d", j, len(si.Features), cfg.ItemDim)
			}
			feats[nextID] = si.Features
			seqs[j] = append(seqs[j], nextID)
			nextID--
		}
		if len(seqs[j]) > rerank.TopicSeqCap {
			seqs[j] = seqs[j][len(seqs[j])-rerank.TopicSeqCap:]
		}
	}
	return &rerank.Instance{
		UserFeat:   req.UserFeatures,
		Items:      items,
		InitScores: scores,
		Cover:      cover,
		TopicSeqs:  seqs,
		M:          cfg.Topics,
		ItemFeat:   func(id int) []float64 { return feats[id] },
		CoverOf: func(id int) []float64 {
			for i, v := range items {
				if v == id {
					return cover[i]
				}
			}
			return make([]float64, cfg.Topics)
		},
	}, nil
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"dataset": s.manifest.Dataset,
		"model":   s.model.Name(),
		"topics":  s.model.Cfg.Topics,
		"hidden":  s.model.Cfg.Hidden,
	})
}
