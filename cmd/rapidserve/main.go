// Command rapidserve exposes a trained RAPID model as a hardened HTTP
// re-ranking microservice — the deployment shape the paper's efficiency
// analysis (Section V-B) targets, where re-ranking must fit inside an
// industrial response budget (< 50 ms) and must never stall or crash the
// serving chain it sits in.
//
// Deployment shapes:
//
//	rapidserve -model rapid-model.gob -addr :8080        # one fixed model
//	rapidserve -model-root /srv/models -addr :8080       # versioned registry
//	rapidserve -model rapid-model.gob -diversifier mmr   # classic diversifier
//	rapidserve -model-root /srv/models -publish-diversifier window  # publish & exit
//
// With -diversifier the scoring seat holds a weightless classic diversifier
// (internal/diversify: mmr, dpp, bswap or window) at -diversifier-lambda; the
// manifest next to -model still supplies the surface geometry. With
// -publish-diversifier a diversifier version is committed into -model-root
// (geometry copied from the newest version) so the admin API can load,
// canary, shadow-compare, promote and roll it back exactly like a model.
//
// With -model-root the server opens a model registry (internal/registry)
// over a directory of versions published by rapidtrain -publish, activates
// the newest one, and exposes the model lifecycle over the admin API: load a
// candidate (warm-up validated, then canaried to -canary-pct of traffic and
// shadow-scored with -shadow), promote it, or roll back — all without
// dropping a request. SIGHUP rescans the root for newly published versions.
//
// Endpoints:
//
//	POST /v1/rerank       — JSON request → re-ranked item IDs and scores
//	POST /v1/rerank:batch — multi-request envelope, scored as one batch
//	POST /rerank          — alias for /v1/rerank (pre-v1 clients)
//	POST /v1/feedback     — click/skip events joined back to served responses (-feedback-log)
//	GET  /healthz  — liveness, model metadata and operational counters
//	GET  /readyz   — readiness; 503 while draining
//	GET  /metrics  — Prometheus text exposition (internal/obs)
//	GET  /admin/models            — versions and lifecycle states (-model-root only)
//	POST /admin/models/load       — {"version": "..."}: stage a canary candidate
//	POST /admin/models/promote    — {"version": "..."}: candidate → active
//	POST /admin/models/rollback   — abort candidate / revert to previous
//	GET  /debug/pprof/* — profiling, only with -pprof
//
// Admin endpoints require -admin-token as a bearer token, or a loopback peer
// when no token is set.
//
// Robustness envelope (see internal/serve): per-request scoring deadline
// with graceful degradation to the initial-ranker order, bounded
// concurrency with 429 load shedding, panic recovery, request-size caps,
// and SIGINT/SIGTERM graceful drain. Concurrent requests pinned to the same
// model version coalesce into batched forward passes (-max-batch instances,
// -batch-wait gathering window); the batch split always follows the
// registry pin, so a canary never shares a batch with the active version.
//
// The request must carry everything the model consumes (features, topic
// coverage, per-topic behavior sequences), mirroring rerank.Instance:
//
//	{
//	  "user_features": [...],
//	  "items": [{"id": 1, "features": [...], "cover": [...], "init_score": 0.7}, ...],
//	  "topic_sequences": [[{"features": [...]}, ...], ...]   // one list per topic
//	}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/bandit"
	"repro/internal/diversify"
	"repro/internal/feedback"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/rerank"
	"repro/internal/serve"
)

func main() {
	var (
		modelPath    = flag.String("model", "rapid-model.gob", "model weights from rapidtrain (single-model mode; ignored with -model-root)")
		modelRoot    = flag.String("model-root", "", "versioned model registry root (from rapidtrain -publish); enables the lifecycle admin API")
		canaryPct    = flag.Float64("canary-pct", 5, "percent of traffic routed to a loaded candidate version (registry mode)")
		shadowOn     = flag.Bool("shadow", false, "shadow-score loaded candidates off the request path and export divergence histograms (registry mode)")
		adminToken   = flag.String("admin-token", "", "bearer token for the admin endpoints; empty restricts them to loopback peers")
		addr         = flag.String("addr", ":8080", "listen address")
		budget       = flag.Duration("budget", 50*time.Millisecond, "per-request scoring deadline before degrading to the initial order")
		inflight     = flag.Int("max-inflight", 0, "max concurrent scoring passes (0 = 4×GOMAXPROCS)")
		queueWait    = flag.Duration("queue-wait", 10*time.Millisecond, "max wait for a scoring slot before shedding with 429")
		maxBody      = flag.Int64("max-body", 8<<20, "request body cap in bytes")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default: profiling endpoints are a DoS surface)")
		maxBatch     = flag.Int("max-batch", 0, "max instances per coalesced scoring batch (0 = default 16; 1 disables batching)")
		batchWait    = flag.Duration("batch-wait", 0, "how long a request gathers batch-mates before scoring (0 = default 2ms)")
		batchWorkers = flag.Int("batch-workers", 0, "scoring worker goroutines draining batches (0 = max(2, GOMAXPROCS))")
		matWorkers   = flag.Int("mat-workers", 1, "goroutines per large GEMM in the matrix kernels (1 = serial; 0 = GOMAXPROCS)")
		stateCacheMB = flag.Int64("state-cache-mb", 64, "memory budget in MiB for the encoded user-state cache (repeat-user fast path; 0 disables)")
		binaryAddr   = flag.String("binary-addr", "", "additionally serve the fleet-internal binary protocol on this TCP address (same engine and models as HTTP)")

		tenantRoot        = flag.String("tenant-root", "", "multi-tenant model store root (one single-tenant version store per subdirectory); requests may then name a tenant")
		tenantBudgetMB    = flag.Int64("tenant-budget-mb", 512, "resident-tenant memory budget in MiB; past it least-recently-used tenants are evicted (0 = unlimited)")
		tenantMaxResident = flag.Int("tenant-max-resident", 0, "max resident tenants regardless of size (0 = unlimited)")
		tenantMaxInflight = flag.Int("tenant-max-inflight", 0, "per-tenant concurrent rerank admission quota; saturation sheds with reason tenant_quota (0 = no quota)")

		feedbackLog     = flag.String("feedback-log", "", "directory for the append-only feedback event log; mounts POST /v1/feedback (registry mode)")
		feedbackQueue   = flag.Int("feedback-queue", 1024, "bounded feedback ingest queue; a full queue sheds events with 429")
		feedbackSegMB   = flag.Int64("feedback-segment-mb", 4, "feedback log segment rotation threshold in MiB")
		feedbackMaxSegs = flag.Int("feedback-max-segments", 64, "committed feedback log segments retained before the oldest are deleted")
		banditPct       = flag.Float64("bandit-pct", 0, "percent of traffic served by bandit-tuned diversifier arms (requires -feedback-log)")
		banditArms      = flag.String("bandit-arms", "mmr@0.2,mmr@0.4,mmr@0.6,mmr@0.8", "comma-separated λ grid of diversifier arms, e.g. mmr@0.2,window@0.8")
		banditSegments  = flag.Int("bandit-segments", 8, "user segments (route key % segments) learning independent arm values")
		banditAlgo      = flag.String("bandit-algo", "linucb", "bandit learner: linucb or eps")
		banditEps       = flag.Float64("bandit-epsilon", 0.05, "forced-exploration rate on top of the learner")

		diversifier  = flag.String("diversifier", "", "serve a classic diversifier (mmr|dpp|bswap|window) instead of model weights; -model still supplies the manifest geometry (single-model mode)")
		divLambda    = flag.Float64("diversifier-lambda", 0.5, "relevance/diversity trade-off λ for -diversifier and -publish-diversifier")
		publishDiv   = flag.String("publish-diversifier", "", "publish a weightless diversifier version (mmr|dpp|bswap|window) into -model-root, copying the newest version's geometry, then exit")
		publishLabel = flag.String("publish-label", "", "version label for -publish-diversifier (default div-<name>)")

		chaosLatency = flag.Duration("chaos-latency", 0, "CHAOS TESTING: extra latency injected into the scoring path (0 = off); slows responses while -budget allows, degrades them past it")
		chaosLatRate = flag.Float64("chaos-latency-rate", 1, "CHAOS TESTING: fraction of requests receiving -chaos-latency")
		chaosErrRate = flag.Float64("chaos-error-rate", 0, "CHAOS TESTING: fraction of requests failing with an injected scoring error (degraded responses)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "CHAOS TESTING: RNG seed for the -chaos-* sampling")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mat.SetWorkers(*matWorkers)
	cfg := serve.Config{
		StateCacheBytes: *stateCacheMB << 20,
		Budget:          *budget,
		MaxInFlight:     *inflight,
		QueueWait:       *queueWait,
		MaxBodyBytes:    *maxBody,
		DrainTimeout:    *drain,
		Pprof:           *pprofOn,
		AdminToken:      *adminToken,
		Batch: serve.BatchConfig{
			MaxBatch: *maxBatch,
			MaxWait:  *batchWait,
			Workers:  *batchWorkers,
		},
	}
	if *binaryAddr != "" {
		ln, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidserve: binary listener: %v\n", err)
			os.Exit(1)
		}
		cfg.BinaryListener = ln
		log.Printf("rapidserve: binary protocol on %s", ln.Addr())
	}
	if *tenantRoot != "" {
		// Tenancy shares one metrics namespace across the engine, the tenant
		// store and (in registry mode) the lifecycle layer.
		if cfg.Registry == nil {
			cfg.Registry = obs.NewRegistry()
		}
		multi, err := registry.NewMulti(registry.MultiConfig{
			Root:             *tenantRoot,
			MaxResidentBytes: *tenantBudgetMB << 20,
			MaxResident:      *tenantMaxResident,
			Registry:         cfg.Registry,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidserve: tenant store: %v\n", err)
			os.Exit(1)
		}
		defer multi.Close()
		cfg.Tenants = multi
		cfg.TenantMaxInFlight = *tenantMaxInflight
		log.Printf("rapidserve: multi-tenant store at %s (budget %d MiB, max resident %d, per-tenant inflight %d)",
			*tenantRoot, *tenantBudgetMB, *tenantMaxResident, *tenantMaxInflight)
	}
	faults := chaosHooks(*chaosLatency, *chaosLatRate, *chaosErrRate, *chaosSeed)
	fb := feedbackOpts{
		dir:         *feedbackLog,
		queue:       *feedbackQueue,
		segmentMB:   *feedbackSegMB,
		maxSegments: *feedbackMaxSegs,
		banditPct:   *banditPct,
		arms:        *banditArms,
		segments:    *banditSegments,
		algo:        *banditAlgo,
		epsilon:     *banditEps,
	}
	var err error
	switch {
	case *publishDiv != "":
		err = publishDiversifier(*modelRoot, *publishDiv, *publishLabel, *divLambda)
	case *modelRoot != "":
		err = runRegistry(ctx, *modelRoot, *addr, cfg, *canaryPct, *shadowOn, faults, fb)
	case *feedbackLog != "" || *banditPct > 0:
		err = errors.New("-feedback-log and -bandit-pct require -model-root (the feedback loop republishes through the registry)")
	case *diversifier != "":
		err = runDiversifier(ctx, *modelPath, *diversifier, *divLambda, *addr, cfg, faults)
	default:
		err = run(ctx, *modelPath, *addr, cfg, faults)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidserve: %v\n", err)
		os.Exit(1)
	}
}

// chaosHooks builds the scoring-path fault injector from the -chaos-* flags,
// or nil when chaos is off. The flags turn any replica into a controllable
// sick node for fleet testing: injected latency (a slow node, as long as the
// budget allows; degraded responses past it) and injected scoring errors
// (degraded responses, never 5xx — the serving layer's contract).
func chaosHooks(latency time.Duration, latencyRate, errRate float64, seed int64) serve.FaultInjector {
	if latency <= 0 && errRate <= 0 {
		return nil
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	roll := func(rate float64) bool {
		if rate <= 0 {
			return false
		}
		if rate >= 1 {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64() < rate
	}
	return serve.FaultHooks{
		Before: func(context.Context, *rerank.Instance) error {
			if roll(errRate) {
				return errors.New("chaos: injected scoring error")
			}
			return nil
		},
		After: func(ctx context.Context, _ *rerank.Instance, _ []float64) error {
			if latency <= 0 || !roll(latencyRate) {
				return nil
			}
			t := time.NewTimer(latency)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err() // past the budget: degrade as a deadline miss
			case <-t.C:
				return nil
			}
		},
	}
}

// run is the single-model deployment shape: one fixed model, no lifecycle.
func run(ctx context.Context, modelPath, addr string, cfg serve.Config, faults serve.FaultInjector) error {
	model, man, err := serve.LoadModel(modelPath)
	if err != nil {
		return err
	}
	srv := serve.NewServer(model, man, cfg)
	srv.Faults = faults
	log.Printf("rapidserve: listening on %s (model %s, dataset %s, budget %v, metrics at /metrics, pprof %v)",
		addr, model.Name(), man.Dataset, cfg.Budget, cfg.Pprof)
	return srv.Run(ctx, addr)
}

// runDiversifier is the single-model shape with a classic diversifier in the
// scoring seat: the manifest next to -model supplies the surface geometry
// (request validation), but scoring goes through the weightless
// internal/diversify adapter at the requested λ.
func runDiversifier(ctx context.Context, modelPath, name string, lambda float64, addr string, cfg serve.Config, faults serve.FaultInjector) error {
	man, err := serve.ReadManifest(modelPath)
	if err != nil {
		return err
	}
	ds, err := diversify.NewScorer(name, lambda)
	if err != nil {
		return err
	}
	srv := serve.NewServer(ds, man, cfg)
	srv.Faults = faults
	log.Printf("rapidserve: listening on %s (diversifier %s, lambda %.2f, dataset %s, budget %v)",
		addr, ds.Name(), lambda, man.Dataset, cfg.Budget)
	return srv.Run(ctx, addr)
}

// publishDiversifier commits a weightless diversifier version into the
// registry root: the newest published version supplies the surface geometry,
// the manifest gains the diversifier name and λ, and the usual atomic commit
// makes it loadable/canariable/promotable like any model version.
func publishDiversifier(root, name, label string, lambda float64) error {
	if root == "" {
		return errors.New("-publish-diversifier requires -model-root")
	}
	if !diversify.Known(name) {
		return fmt.Errorf("unknown diversifier %q (have %v)", name, diversify.Names())
	}
	versions, err := registry.Scan(root)
	if err != nil {
		return err
	}
	if len(versions) == 0 {
		return fmt.Errorf("no published versions in %s to copy geometry from", root)
	}
	latest := versions[len(versions)-1]
	man, err := serve.ReadManifest(registry.ModelPath(root, latest))
	if err != nil {
		return err
	}
	man.Diversifier = name
	man.DiversifierLambda = lambda
	man.Metrics = nil // training metrics belong to the donor version
	if label == "" {
		label = "div-" + name
	}
	committed, err := registry.PublishDiversifier(root, label, man)
	if err != nil {
		return err
	}
	log.Printf("rapidserve: published diversifier version %s (diversifier %s, lambda %.2f, geometry from %s)",
		committed, name, lambda, latest)
	fmt.Println(committed)
	return nil
}

// feedbackOpts carries the -feedback-* / -bandit-* flags into registry mode.
type feedbackOpts struct {
	dir         string
	queue       int
	segmentMB   int64
	maxSegments int
	banditPct   float64
	arms        string
	segments    int
	algo        string
	epsilon     float64
}

// runRegistry is the versioned deployment shape: activate the newest
// published version, serve through the registry so versions hot-swap under
// live traffic, expose the lifecycle admin API, and rescan on SIGHUP. With
// -feedback-log it closes the loop: /v1/feedback events land in a crash-safe
// append-only log, and with -bandit-pct a slice of traffic is served by
// bandit-tuned diversifier arms whose values learn from that feedback.
func runRegistry(ctx context.Context, root, addr string, cfg serve.Config, canaryPct float64, shadow bool, faults serve.FaultInjector, fb feedbackOpts) error {
	reg, err := registry.New(registry.Config{
		Root:          root,
		CanaryPercent: canaryPct,
		Shadow:        shadow,
		Registry:      cfg.Registry,
	})
	if err != nil {
		return err
	}
	defer reg.Close()
	active, err := reg.ActivateLatest()
	if err != nil {
		return err
	}
	cfg.Registry = reg.ObsRegistry()
	cfg.Admin = reg

	var provider serve.Provider = reg
	if fb.banditPct > 0 && fb.dir == "" {
		return errors.New("-bandit-pct requires -feedback-log (arms learn from ingested feedback)")
	}
	if fb.dir != "" {
		l, err := feedback.Open(fb.dir, feedback.Options{
			SegmentBytes: fb.segmentMB << 20,
			MaxSegments:  fb.maxSegments,
		})
		if err != nil {
			return err
		}
		var pol *bandit.Policy
		if fb.banditPct > 0 {
			arms, err := bandit.ParseArms(fb.arms)
			if err != nil {
				return err
			}
			pol, err = bandit.NewPolicy(bandit.PolicyConfig{
				Arms:     arms,
				Segments: fb.segments,
				Algo:     fb.algo,
				Epsilon:  fb.epsilon,
			})
			if err != nil {
				return err
			}
			provider, err = feedback.NewBanditProvider(reg, pol, fb.banditPct)
			if err != nil {
				return err
			}
		}
		ing := feedback.NewIngestor(l, pol, feedback.IngestConfig{
			QueueSize: fb.queue,
			Registry:  reg.ObsRegistry(),
		})
		defer func() {
			if err := ing.Close(); err != nil {
				log.Printf("rapidserve: feedback log close: %v", err)
			}
		}()
		cfg.Feedback = ing
		log.Printf("rapidserve: feedback log at %s (queue %d, segment %d MiB, retain %d), bandit %.1f%% (%s over %q, %d segments)",
			fb.dir, fb.queue, fb.segmentMB, fb.maxSegments, fb.banditPct, fb.algo, fb.arms, fb.segments)
	}

	srv := serve.NewProviderServer(provider, cfg)
	srv.Faults = faults
	// Every lifecycle transition flushes the encoded user-state cache: a
	// promoted or rolled-back model must never serve a state encoded by its
	// predecessor (see DESIGN.md on cache invalidation).
	reg.SetOnSwap(srv.FlushStateCache)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if _, err := reg.Rescan(); err != nil {
					log.Printf("rapidserve: SIGHUP rescan: %v", err)
				}
			}
		}
	}()

	guard := "loopback-only"
	if cfg.AdminToken != "" {
		guard = "bearer-token"
	}
	log.Printf("rapidserve: listening on %s (registry %s, active %s, canary %.1f%%, shadow %v, admin API %s, budget %v)",
		addr, root, active, canaryPct, shadow, guard, cfg.Budget)
	return srv.Run(ctx, addr)
}
