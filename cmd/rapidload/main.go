// Command rapidload is an open-loop load generator for the serving fleet:
// it fires re-rank requests at a fixed rate — arrivals do not wait for
// completions, so a slow target builds queueing like real traffic would —
// with user popularity drawn from a Zipf distribution, and reports outcome
// counts and latency percentiles.
//
//	rapidload -target http://127.0.0.1:8090 -manifest model.json \
//	  -rps 200 -duration 30s -benchjson BENCH_PR6.json -scenario hedged
//
// Each synthetic user has a deterministic feature vector, so the same user
// always produces the same route key and lands on the same replica: the
// Zipf skew therefore exercises the router's consistent-hash load shape,
// not just its aggregate throughput. With -benchjson the run is merged into
// a scenario map by name, so consecutive runs (e.g. hedged vs unhedged)
// accumulate into one report.
//
// With -feedback-pct the generator also plays the user: a ground-truth DCM
// simulates clicks over each served ranking and POSTs the click/skip vector
// to /v1/feedback with the response's request_id, closing the online
// feedback loop end to end.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/benchsuite"
	"repro/internal/clickmodel"
	"repro/internal/serve"
	"repro/internal/serve/binproto"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8090", "base URL of the router or replica under load")
		manifest = flag.String("manifest", "", "model manifest JSON (from rapidtrain) supplying the request geometry")
		userDim  = flag.Int("user-dim", 8, "user feature dims when no -manifest is given")
		itemDim  = flag.Int("item-dim", 8, "item feature dims when no -manifest is given")
		topics   = flag.Int("topics", 5, "topic count when no -manifest is given")
		listLen  = flag.Int("list-len", 10, "candidate list length per request")

		rps      = flag.Float64("rps", 100, "open-loop arrival rate, requests per second")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		users    = flag.Int("users", 1000, "synthetic user population")
		zipfS    = flag.Float64("zipf-s", 1.2, "Zipf exponent of user popularity (>1; larger = more skew)")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request timeout")
		seed     = flag.Int64("seed", 1, "user-population and arrival seed")
		repeat   = flag.Float64("repeat-user-pct", 0, "percent of requests that re-issue a previously seen user's exact body (exercises the server's user-state cache)")

		benchJSON = flag.String("benchjson", "", "merge results into this load report (e.g. BENCH_PR6.json)")
		scenario  = flag.String("scenario", "default", "scenario name for -benchjson")
		maxErrRat = flag.Float64("max-error-rate", 1, "exit non-zero if errors/requests exceeds this fraction")
		feedback  = flag.Float64("feedback-pct", 0, "percent of OK responses followed by a DCM-simulated click event POSTed to /v1/feedback")
		binary    = flag.String("binary", "", "fire the fleet-internal binary protocol at this TCP address instead of HTTP POST /v1/rerank (scores are bitwise-identical)")
	)
	flag.Parse()
	if err := run(loadConfig{
		target: *target, manifest: *manifest,
		userDim: *userDim, itemDim: *itemDim, topics: *topics, listLen: *listLen,
		rps: *rps, duration: *duration, users: *users, zipfS: *zipfS,
		timeout: *timeout, seed: *seed, repeatUserPct: *repeat,
		benchJSON: *benchJSON, scenario: *scenario, maxErrRate: *maxErrRat,
		feedbackPct: *feedback, binaryAddr: *binary,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "rapidload: %v\n", err)
		os.Exit(1)
	}
}

type loadConfig struct {
	target, manifest                  string
	userDim, itemDim, topics, listLen int
	rps                               float64
	duration                          time.Duration
	users                             int
	zipfS                             float64
	timeout                           time.Duration
	seed                              int64
	repeatUserPct                     float64
	benchJSON, scenario               string
	maxErrRate                        float64
	feedbackPct                       float64
	binaryAddr                        string
}

// outcome tallies terminal request results under one mutex with the latency
// sample.
type outcome struct {
	mu        sync.Mutex
	ok        int64
	degraded  int64
	shed      int64
	errors    int64
	fbOK      int64
	fbErr     int64
	latencyMS []float64
}

func run(cfg loadConfig) error {
	if cfg.manifest != "" {
		raw, err := os.ReadFile(cfg.manifest)
		if err != nil {
			return err
		}
		var man serve.Manifest
		if err := json.Unmarshal(raw, &man); err != nil {
			return fmt.Errorf("manifest %s: %v", cfg.manifest, err)
		}
		cfg.userDim = man.Config.UserDim
		cfg.itemDim = man.Config.ItemDim
		cfg.topics = man.Config.Topics
	}
	if cfg.rps <= 0 || cfg.users <= 0 || cfg.listLen <= 0 {
		return fmt.Errorf("rps, users and list-len must be positive")
	}
	if cfg.zipfS <= 1 {
		return fmt.Errorf("zipf-s must be > 1")
	}
	if cfg.repeatUserPct < 0 || cfg.repeatUserPct > 100 {
		return fmt.Errorf("repeat-user-pct must be in [0,100]")
	}
	if cfg.feedbackPct < 0 || cfg.feedbackPct > 100 {
		return fmt.Errorf("feedback-pct must be in [0,100]")
	}
	if cfg.binaryAddr != "" && cfg.feedbackPct > 0 {
		return fmt.Errorf("-feedback-pct requires the HTTP surface; drop it or drop -binary")
	}

	bodies := newBodyCache(cfg)
	sim := newClickSim(cfg, bodies)
	var pool *binPool
	if cfg.binaryAddr != "" {
		pool = &binPool{addr: cfg.binaryAddr}
		defer pool.closeAll()
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.users-1))
	client := &http.Client{Timeout: cfg.timeout}
	var res outcome
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / cfg.rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.duration)
	defer deadline.Stop()

	label := cfg.target
	if cfg.binaryAddr != "" {
		label = "binary://" + cfg.binaryAddr
	}
	fmt.Fprintf(os.Stderr, "rapidload: %s at %.0f rps for %v (%d users, zipf %.2f, repeat %.0f%%)\n",
		label, cfg.rps, cfg.duration, cfg.users, cfg.zipfS, cfg.repeatUserPct)
	var issued []int
	start := time.Now()
loop:
	for {
		select {
		case <-deadline.C:
			break loop
		case <-ticker.C:
			// -repeat-user-pct re-issues an already-seen user's byte-identical
			// body (bodyCache is deterministic per user), modelling the
			// returning-user traffic the server's encoded-state cache serves.
			// The repeat pool is the issued history, so popular users repeat
			// proportionally more — Zipf skew carries into the repeats.
			var user int
			if len(issued) > 0 && rng.Float64()*100 < cfg.repeatUserPct {
				user = issued[rng.Intn(len(issued))]
			} else {
				user = int(zipf.Uint64())
			}
			issued = append(issued, user)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if pool != nil {
					fireBinary(pool, bodies.request(user), cfg.timeout, &res)
					return
				}
				fire(client, cfg.target, user, bodies.get(user), &res, sim)
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.mu.Lock()
	defer res.mu.Unlock()
	p50, p90, p99, max := benchsuite.Percentiles(res.latencyMS)
	total := res.ok + res.degraded + res.shed + res.errors
	fmt.Fprintf(os.Stderr,
		"rapidload: %d requests in %v — ok %d, degraded %d, shed %d, errors %d\n"+
			"rapidload: latency p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms\n",
		total, elapsed.Round(time.Millisecond), res.ok, res.degraded, res.shed, res.errors,
		p50, p90, p99, max)
	if sim != nil {
		fmt.Fprintf(os.Stderr, "rapidload: feedback events — accepted %d, failed %d\n", res.fbOK, res.fbErr)
	}

	if cfg.benchJSON != "" {
		sc := benchsuite.LoadScenario{
			Name:      cfg.scenario,
			Generated: time.Now().UTC().Format(time.RFC3339),
			Target:    cfg.target,
			TargetRPS: cfg.rps,
			DurationS: elapsed.Seconds(),
			Requests:  total,
			OK:        res.ok,
			Degraded:  res.degraded,
			Shed:      res.shed,
			Errors:    res.errors,
			P50MS:     p50,
			P90MS:     p90,
			P99MS:     p99,
			MaxMS:     max,
		}
		if err := benchsuite.MergeLoadScenario(cfg.benchJSON, sc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rapidload: merged scenario %q into %s\n", cfg.scenario, cfg.benchJSON)
	}
	if total > 0 && float64(res.errors)/float64(total) > cfg.maxErrRate {
		return fmt.Errorf("error rate %.3f exceeds -max-error-rate %.3f",
			float64(res.errors)/float64(total), cfg.maxErrRate)
	}
	return nil
}

// fire sends one request, classifies the result, and — when click
// simulation is on — follows a successful response with a feedback event.
func fire(client *http.Client, target string, user int, body []byte, res *outcome, sim *clickSim) {
	start := time.Now()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost,
		target+"/v1/rerank", bytes.NewReader(body))
	if err != nil {
		res.add("error", 0)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		res.add("error", time.Since(start))
		return
	}
	defer resp.Body.Close()
	var rr serve.RerankResponse
	dec := json.NewDecoder(resp.Body)
	lat := time.Since(start)
	switch {
	case resp.StatusCode == http.StatusOK:
		decoded := dec.Decode(&rr) == nil
		if decoded && rr.Degraded {
			res.add("degraded", lat)
		} else {
			res.add("ok", lat)
		}
		if decoded && sim != nil {
			sim.maybeSend(client, user, &rr, res)
		}
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		res.add("shed", lat)
	default:
		res.add("error", lat)
	}
}

// binPool reuses binary-protocol connections across the open-loop arrivals:
// each Client serializes its calls on one connection, so concurrency is a
// connection per in-flight request, parked here between uses.
type binPool struct {
	addr string
	mu   sync.Mutex
	free []*binproto.Client
}

func (p *binPool) get() (*binproto.Client, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return binproto.Dial(p.addr)
}

func (p *binPool) put(c *binproto.Client) {
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}

func (p *binPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.free {
		c.Close()
	}
	p.free = nil
}

// fireBinary sends one request over the binary protocol and classifies the
// outcome exactly like the HTTP path: engine error frames map shed codes to
// "shed", transport failures retire the connection.
func fireBinary(pool *binPool, req *serve.RerankRequest, timeout time.Duration, res *outcome) {
	start := time.Now()
	c, err := pool.get()
	if err != nil {
		res.add("error", 0)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	rr, err := c.Rerank(ctx, req)
	lat := time.Since(start)
	if err != nil {
		var re *binproto.RemoteError
		if errors.As(err, &re) {
			pool.put(c) // protocol-level error: the connection stays usable
			if re.Retryable() {
				res.add("shed", lat)
			} else {
				res.add("error", lat)
			}
			return
		}
		c.Close()
		res.add("error", lat)
		return
	}
	pool.put(c)
	if rr.Degraded {
		res.add("degraded", lat)
	} else {
		res.add("ok", lat)
	}
}

// clickSim turns the load generator into the closed feedback loop's user: a
// ground-truth DCM (λ=1 — attraction is the item's own init_score, the same
// signal the server ranked by) scans each served list top-down and the
// resulting click/skip vector is POSTed back to /v1/feedback with the
// response's request_id.
type clickSim struct {
	pct    float64
	dcm    *clickmodel.DCM
	mu     sync.Mutex
	rng    *rand.Rand
	target string
}

func newClickSim(cfg loadConfig, bodies *bodyCache) *clickSim {
	if cfg.feedbackPct <= 0 {
		return nil
	}
	zero := make([]float64, cfg.topics)
	return &clickSim{
		pct:    cfg.feedbackPct,
		target: cfg.target,
		rng:    rand.New(rand.NewSource(cfg.seed + 1)),
		dcm: &clickmodel.DCM{
			Lambda:      1,
			Relevance:   func(_, item int) float64 { return bodies.initScore(item) },
			DivWeight:   func(int) []float64 { return zero },
			Cover:       func(int) []float64 { return zero },
			Termination: clickmodel.DefaultTermination(cfg.listLen, 0.6, 0.85),
			Topics:      cfg.topics,
		},
	}
}

func (s *clickSim) maybeSend(client *http.Client, user int, rr *serve.RerankResponse, res *outcome) {
	if rr.RequestID == "" || len(rr.Ranked) == 0 {
		return
	}
	s.mu.Lock()
	send := s.rng.Float64()*100 < s.pct
	var clicks []bool
	if send {
		clicks, _ = s.dcm.Simulate(user, rr.Ranked, s.rng)
	}
	s.mu.Unlock()
	if !send {
		return
	}
	ev := serve.FeedbackEvent{
		RequestID:    rr.RequestID,
		Items:        rr.Ranked,
		Clicks:       clicks,
		ModelVersion: rr.ModelVersion,
	}
	body, err := json.Marshal(&ev)
	if err != nil {
		res.add("fb-err", 0)
		return
	}
	resp, err := client.Post(s.target+"/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		res.add("fb-err", 0)
		return
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		res.add("fb-ok", 0)
	} else {
		res.add("fb-err", 0)
	}
}

func (o *outcome) add(kind string, lat time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch kind {
	case "ok":
		o.ok++
	case "degraded":
		o.degraded++
	case "shed":
		o.shed++
	case "fb-ok":
		o.fbOK++
	case "fb-err":
		o.fbErr++
	default:
		o.errors++
	}
	if lat > 0 {
		o.latencyMS = append(o.latencyMS, float64(lat)/float64(time.Millisecond))
	}
}

// bodyCache lazily builds one deterministic request body per synthetic user:
// features are seeded by the user id, so user u's body — and therefore its
// route key and owning replica — is identical across runs and processes.
type bodyCache struct {
	cfg    loadConfig
	mu     sync.Mutex
	by     map[int][]byte
	reqs   map[int]*serve.RerankRequest // decoded form, for the binary path
	scores map[int]float64              // item id → init_score, for the click simulator
}

func newBodyCache(cfg loadConfig) *bodyCache {
	return &bodyCache{cfg: cfg, by: make(map[int][]byte),
		reqs: make(map[int]*serve.RerankRequest), scores: make(map[int]float64)}
}

// initScore recalls the init_score a generated item was sent with; the click
// simulator uses it as the item's ground-truth attraction. Unknown ids (never
// generated by this process) read as weakly attractive.
func (c *bodyCache) initScore(item int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.scores[item]; ok {
		return s
	}
	return 0.1
}

func (c *bodyCache) get(user int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.by[user]; ok {
		return b
	}
	b := c.build(user)
	c.by[user] = b
	return b
}

// request returns user's deterministic request in decoded form — the same
// bytes get(user) serializes, for the binary protocol path.
func (c *bodyCache) request(user int) *serve.RerankRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.reqs[user]; ok {
		return r
	}
	c.build(user)
	return c.reqs[user]
}

func (c *bodyCache) build(user int) []byte {
	rng := rand.New(rand.NewSource(int64(user) + 1))
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	req := serve.RerankRequest{
		UserFeatures:   vec(c.cfg.userDim),
		TopicSequences: make([][]serve.SeqItemWire, c.cfg.topics),
	}
	for j := range req.TopicSequences {
		seq := make([]serve.SeqItemWire, 2)
		for k := range seq {
			seq[k] = serve.SeqItemWire{Features: vec(c.cfg.itemDim)}
		}
		req.TopicSequences[j] = seq
	}
	for i := 0; i < c.cfg.listLen; i++ {
		cover := make([]float64, c.cfg.topics)
		for j := range cover {
			cover[j] = rng.Float64() * 0.5
		}
		it := serve.RerankItem{
			ID:        user*1000 + i,
			Features:  vec(c.cfg.itemDim),
			Cover:     cover,
			InitScore: rng.Float64(),
		}
		c.scores[it.ID] = it.InitScore
		req.Items = append(req.Items, it)
	}
	c.reqs[user] = &req
	b, err := json.Marshal(&req)
	if err != nil {
		panic(err) // static shape; cannot fail
	}
	return b
}
