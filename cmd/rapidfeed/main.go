// Command rapidfeed is the offline half of the online feedback loop: it
// replays the crash-safe feedback event log that rapidserve writes, streams
// the sessions into the incremental click-model estimator, picks the
// best-performing diversifier λ from the bandit evidence in the log, and
// republishes it as a canaried registry version through the serving admin
// API — warm-up, canary and auto-rollback gate every online-learned version
// exactly like a hand-published one.
//
// Modes:
//
//	rapidfeed -log /var/feedback -model-root /srv/models -admin http://127.0.0.1:8080
//	    trainer loop (default): replay new events on an interval, re-estimate,
//	    publish div-fb-* versions and promote them after canary traffic.
//	rapidfeed -log /var/feedback -once
//	    one trainer step, then exit (cron shape).
//	rapidfeed -log /var/feedback -dump
//	    replay the log to stdout as canonical JSON lines ("seq<TAB>event");
//	    byte-identical prefixes across crashes are the smoke-test contract.
//	rapidfeed -log /var/feedback -estimate [-check-batch]
//	    replay, fit the incremental DCM and print the parameters;
//	    -check-batch re-fits with the batch MLE over the same sessions and
//	    exits non-zero if the two disagree beyond FP summation noise.
//	rapidfeed -regretjson BENCH_PR9.json
//	    run the bandit-vs-fixed-λ regret study and write the report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/bandit"
	"repro/internal/clickmodel"
	"repro/internal/feedback"
)

func main() {
	var (
		logDir     = flag.String("log", "", "feedback event log directory (written by rapidserve -feedback-log)")
		modelRoot  = flag.String("model-root", "", "registry root to publish online-learned versions into")
		adminURL   = flag.String("admin", "", "base URL of the serving admin API (e.g. http://127.0.0.1:8080)")
		adminToken = flag.String("admin-token", "", "bearer token for the admin API")
		interval   = flag.Duration("interval", 15*time.Second, "trainer re-estimation cadence")
		minEvents  = flag.Int("min-events", 200, "new events required before a re-estimate and republish")
		maxLen     = flag.Int("max-len", 64, "click-model position horizon")
		minPulls   = flag.Int64("min-arm-pulls", 50, "bandit evidence an arm needs before its λ can be published")
		promoteAft = flag.Int64("promote-after", 50, "canary requests a published candidate must serve before promotion")
		promoteTO  = flag.Duration("promote-timeout", 60*time.Second, "how long to watch a canary before leaving it staged")
		once       = flag.Bool("once", false, "run one trainer step and exit")

		dump       = flag.Bool("dump", false, "replay the log as canonical JSON lines to stdout and exit")
		estimate   = flag.Bool("estimate", false, "replay the log, fit the incremental DCM and print parameters")
		checkBatch = flag.Bool("check-batch", false, "with -estimate: verify the incremental fit against the batch MLE")
		tolerance  = flag.Float64("tolerance", 1e-9, "max |incremental − batch| parameter difference for -check-batch")

		regretJSON = flag.String("regretjson", "", "write the bandit-vs-fixed-λ regret study to this JSON file and exit")
		rounds     = flag.Int("rounds", 30000, "simulated rounds for -regretjson")
		segments   = flag.Int("segments", 4, "user segments for -regretjson")
		arms       = flag.String("arms", "mmr@0.2,mmr@0.4,mmr@0.6,mmr@0.8", "λ grid for -regretjson")
		seed       = flag.Int64("seed", 3, "environment/reward seed for -regretjson")
	)
	flag.Parse()
	var err error
	switch {
	case *regretJSON != "":
		err = runRegretStudy(*regretJSON, *arms, *rounds, *segments, *seed)
	case *dump:
		err = runDump(*logDir)
	case *estimate:
		err = runEstimate(*logDir, *maxLen, *checkBatch, *tolerance)
	default:
		err = runTrainer(trainerFlags{
			logDir: *logDir, modelRoot: *modelRoot,
			adminURL: *adminURL, adminToken: *adminToken,
			interval: *interval, minEvents: *minEvents, maxLen: *maxLen,
			minPulls: *minPulls, promoteAfter: *promoteAft, promoteTimeout: *promoteTO,
			once: *once,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidfeed: %v\n", err)
		os.Exit(1)
	}
}

type trainerFlags struct {
	logDir, modelRoot, adminURL, adminToken string
	interval                                time.Duration
	minEvents, maxLen                       int
	minPulls, promoteAfter                  int64
	promoteTimeout                          time.Duration
	once                                    bool
}

func runTrainer(f trainerFlags) error {
	if f.logDir == "" || f.modelRoot == "" || f.adminURL == "" {
		return fmt.Errorf("trainer mode needs -log, -model-root and -admin")
	}
	tr, err := feedback.NewTrainer(feedback.TrainerConfig{
		LogDir:    f.logDir,
		ModelRoot: f.modelRoot,
		Lifecycle: &feedback.AdminClient{BaseURL: f.adminURL, Token: f.adminToken},
		Interval:  f.interval, MinEvents: f.minEvents, MaxLen: f.maxLen,
		MinArmPulls: f.minPulls, PromoteAfter: f.promoteAfter, PromoteTimeout: f.promoteTimeout,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if f.once {
		return tr.Step(ctx)
	}
	return tr.Run(ctx)
}

// runDump replays the log as deterministic "seq<TAB>json" lines. Two dumps
// of the same directory — one before a crash, one after recovery and more
// traffic — must agree byte-for-byte on their common prefix; the smoke test
// holds the loop to that.
func runDump(dir string) error {
	if dir == "" {
		return fmt.Errorf("-dump needs -log")
	}
	out := json.NewEncoder(os.Stdout)
	st, err := feedback.Replay(dir, 0, func(seq uint64, ev feedback.Event) error {
		if _, err := fmt.Printf("%d\t", seq); err != nil {
			return err
		}
		return out.Encode(&ev)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rapidfeed: dumped %d events (corrupt %d, truncated tail %v, next seq %d)\n",
		st.Events, st.Corrupt, st.Truncated, st.NextSeq)
	return nil
}

// runEstimate replays the log into the incremental estimator. With
// -check-batch it also runs the batch MLE over the identical sessions and
// verifies the two fits agree — the cross-process form of the equivalence
// the unit tests assert in-process.
func runEstimate(dir string, maxLen int, checkBatch bool, tol float64) error {
	if dir == "" {
		return fmt.Errorf("-estimate needs -log")
	}
	sessions, st, err := feedback.ReplaySessions(dir)
	if err != nil {
		return err
	}
	inc := clickmodel.NewIncremental(maxLen)
	for _, s := range sessions {
		inc.Add(s)
	}
	est := inc.Estimate(1, nil)
	fmt.Fprintf(os.Stderr, "rapidfeed: %d sessions, %d clicks replayed (corrupt %d, truncated %v)\n",
		inc.Sessions(), inc.Clicks(), st.Corrupt, st.Truncated)
	printEstimate(est)
	if !checkBatch {
		return nil
	}
	batch := clickmodel.Estimate(sessions, 1.0, 1, nil, maxLen)
	var worst float64
	for v, b := range batch.Alpha {
		worst = math.Max(worst, math.Abs(est.Alpha[v]-b))
	}
	for k := range batch.Eps {
		worst = math.Max(worst, math.Abs(est.Eps[k]-batch.Eps[k]))
	}
	if worst > tol {
		return fmt.Errorf("incremental and batch estimates diverge: max |Δ| = %.3e > %.0e", worst, tol)
	}
	fmt.Fprintf(os.Stderr, "rapidfeed: incremental ≡ batch (max |Δ| = %.3e ≤ %.0e)\n", worst, tol)
	return nil
}

func printEstimate(est *clickmodel.Estimated) {
	items := make([]int, 0, len(est.Alpha))
	for v := range est.Alpha {
		items = append(items, v)
	}
	sort.Ints(items)
	show := items
	if len(show) > 10 {
		show = show[:10]
	}
	for _, v := range show {
		fmt.Printf("alpha[%d] = %.6f\n", v, est.Alpha[v])
	}
	if len(items) > len(show) {
		fmt.Printf("… %d more items\n", len(items)-len(show))
	}
	for k, e := range est.Eps {
		if k >= 8 {
			break
		}
		fmt.Printf("eps[%d] = %.6f\n", k, e)
	}
}

// regretReport is the committed BENCH_PR9.json shape: the learned policy's
// regret curve against every fixed-λ baseline over the same environment.
type regretReport struct {
	Study    string                          `json:"study"`
	Rounds   int                             `json:"rounds"`
	Segments int                             `json:"segments"`
	Arms     []string                        `json:"arms"`
	Policy   regretCurveJSON                 `json:"policy"`
	Fixed    map[string]regretCurveJSON      `json:"fixed_lambda"`
	Notes    string                          `json:"notes"`
	Sub      bool                            `json:"policy_sublinear"`
	Curves   map[string][]bandit.RegretPoint `json:"-"`
}

type regretCurveJSON struct {
	FinalRegret float64              `json:"final_regret"`
	Alpha       float64              `json:"fitted_exponent"`
	Points      []bandit.RegretPoint `json:"points,omitempty"`
}

// runRegretStudy simulates the serving-path policy against a
// segment-heterogeneous reward environment and every fixed-λ ablation, then
// writes the committed study: sublinear policy regret (fitted exponent ≪ 1)
// versus linear fixed-λ regret.
func runRegretStudy(path, armSpec string, rounds, segments int, seed int64) error {
	arms, err := bandit.ParseArms(armSpec)
	if err != nil {
		return err
	}
	env := bandit.DefaultPolicyEnv(segments, len(arms), seed)
	pol, err := bandit.NewPolicy(bandit.PolicyConfig{Arms: arms, Segments: segments, Seed: uint64(seed)})
	if err != nil {
		return err
	}
	every := rounds / 30
	if every < 1 {
		every = 1
	}
	policyCurve := bandit.SimulatePolicy(pol, env, rounds, every, seed+1)
	rep := regretReport{
		Study:    "bandit-tuned lambda vs fixed lambda (true cumulative regret)",
		Rounds:   rounds,
		Segments: segments,
		Policy: regretCurveJSON{
			FinalRegret: policyCurve.Final,
			Alpha:       policyCurve.Alpha,
			Points:      policyCurve.Points,
		},
		Fixed: map[string]regretCurveJSON{},
		Sub:   policyCurve.Alpha < 0.9,
		Notes: "Environment: per-segment Bernoulli rewards with segment-dependent best arm " +
			"(DefaultPolicyEnv). The policy sees sampled rewards only, as in live serving; " +
			"regret is measured against the per-segment oracle mean. Fixed-λ baselines " +
			"grow linearly (exponent ≈ 1); the LinUCB policy's fitted exponent shows " +
			"sublinear growth.",
	}
	for i, a := range arms {
		rep.Arms = append(rep.Arms, a.Label())
		c := bandit.SimulateFixedArm(i, env, rounds, every, seed+1)
		rep.Fixed[a.Label()] = regretCurveJSON{FinalRegret: c.Final, Alpha: c.Alpha}
		fmt.Fprintf(os.Stderr, "rapidfeed: fixed %-16s regret %8.1f (exponent %.3f)\n", a.Label(), c.Final, c.Alpha)
	}
	fmt.Fprintf(os.Stderr, "rapidfeed: policy            regret %8.1f (exponent %.3f, sublinear %v)\n",
		policyCurve.Final, policyCurve.Alpha, rep.Sub)
	if !rep.Sub {
		return fmt.Errorf("policy regret exponent %.3f is not sublinear", policyCurve.Alpha)
	}
	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rapidfeed: wrote %s\n", path)
	return nil
}
