package rapid

import (
	"math"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the
// examples do: dataset → initial ranker → environment → RAPID → re-rank →
// metrics, at smoke scale.
func TestPublicAPIEndToEnd(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = 0.02
	opt.Epochs = 1

	cfg := TaobaoLike(opt.Seed)
	rd, err := BuildRankedData(cfg, NewDIN(opt.Seed), opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.9, opt)
	if len(env.Train) == 0 || len(env.Test) == 0 {
		t.Fatal("empty environment")
	}

	model := NewModel(DefaultModelConfig(cfg.UserDim, cfg.ItemDim, cfg.Topics, opt.Seed))
	if err := model.Fit(env.Train); err != nil {
		t.Fatal(err)
	}
	inst := env.Test[0]
	ranked := Apply(model, inst)
	if len(ranked) != inst.L() {
		t.Fatalf("ranked %d items, want %d", len(ranked), inst.L())
	}
	seen := map[int]bool{}
	for _, v := range ranked {
		if seen[v] {
			t.Fatal("re-ranked list contains a duplicate")
		}
		seen[v] = true
	}
	exp := env.DCM.ExpectedClicks(inst.User, ranked)
	if c := ClickAtK(exp, 10); c <= 0 || math.IsNaN(c) {
		t.Fatalf("click@10 = %v", c)
	}
	theta := model.Preference(inst)
	if len(theta) != cfg.Topics {
		t.Fatalf("θ̂ has %d topics", len(theta))
	}
}

// TestPublicBaselineConstructors ensures every exported baseline builds and
// satisfies the Reranker contract against a live instance.
func TestPublicBaselineConstructors(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = 0.02
	cfg := MovieLensLike(opt.Seed)
	rd, err := BuildRankedData(cfg, NewSVMRank(opt.Seed), opt)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(rd, 0.5, opt)
	inst := env.Test[0]
	h := 8
	for _, r := range []Reranker{
		NewDLCM(h, 1), NewPRM(h, 2), NewSetRank(h, 3), NewSRGA(h, 4),
		NewMMR(), NewDPP(), NewDESA(h, 5), NewSSD(), NewAdpMMR(), NewPDGAN(h, 6),
	} {
		s := r.Scores(inst)
		if len(s) != inst.L() {
			t.Fatalf("%s returned %d scores", r.Name(), len(s))
		}
	}
}

// TestPublicRegretAPI exercises the exported Theorem 5.1 surface.
func TestPublicRegretAPI(t *testing.T) {
	opt := DefaultRegretOptions(1)
	opt.Rounds = 200
	opt.Checkpoint = 100
	tbl, curves := RunRegret(opt)
	if tbl == nil || len(curves) == 0 {
		t.Fatal("regret run returned nothing")
	}
}

// TestWelchTTestExported sanity-checks the exported significance test.
func TestWelchTTestExported(t *testing.T) {
	res := WelchTTest([]float64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	if res.P < 0.9 {
		t.Fatalf("identical samples p=%v", res.P)
	}
}
