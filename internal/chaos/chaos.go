// Package chaos is the fault-injection harness for fleet testing: a reverse
// proxy that sits between the router and a replica and misbehaves on
// command. It extends the serving layer's FaultInjector seam (which injects
// faults inside the scoring path) to the network boundary, where a router
// actually experiences failure: added latency, shed and error bursts,
// dropped connections, and whole-replica blackouts.
//
// The proxy is deliberately deterministic — faults come from an Injector the
// test scripts, not from random sampling — so a chaos test asserts exact
// outcomes ("the router retried twice, then the breaker opened") instead of
// statistical ones.
package chaos

import (
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is what to do to one proxied request. The zero value forwards the
// request untouched.
type Fault struct {
	// Delay is added latency before the request is forwarded (or before the
	// synthesized response, if Status is set) — the slow-node fault.
	Delay time.Duration
	// Status, when non-zero, answers the request with this status code
	// without touching the backend — the shed/error-burst fault.
	Status int
	// RetryAfter and ShedReason decorate a synthesized response with the
	// serving layer's shed headers, so the router's shed handling is
	// exercised end to end.
	RetryAfter int    // seconds; 0 omits the header
	ShedReason string // X-Shed-Reason value; empty omits the header
	// Drop severs the connection mid-request with no response at all — the
	// crashed-process fault as seen by an in-flight request.
	Drop bool
}

// Injector decides the fault for each request. Implementations must be safe
// for concurrent use — the proxy calls Fault from every request goroutine.
type Injector interface {
	Fault(r *http.Request) Fault
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(r *http.Request) Fault

// Fault implements Injector.
func (f InjectorFunc) Fault(r *http.Request) Fault { return f(r) }

// Script is a deterministic Injector: request i receives fault i, and
// requests past the end of the script pass through clean. Probe traffic can
// be excluded so a script counts only scoring requests.
type Script struct {
	// Faults is consumed one entry per matching request, in order.
	Faults []Fault
	// Match, when non-nil, selects which requests consume script entries;
	// others pass through clean. Use it to spare /readyz probes.
	Match func(r *http.Request) bool

	mu   sync.Mutex
	next int
}

// Fault implements Injector.
func (s *Script) Fault(r *http.Request) Fault {
	if s.Match != nil && !s.Match(r) {
		return Fault{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.Faults) {
		return Fault{}
	}
	f := s.Faults[s.next]
	s.next++
	return f
}

// Remaining reports how many scripted faults have not fired yet.
func (s *Script) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.Faults) - s.next
}

// ScoringOnly is a Script.Match that spares health probes: only the POST
// scoring endpoints consume script entries.
func ScoringOnly(r *http.Request) bool { return r.Method == http.MethodPost }

// Proxy is a fault-injecting reverse proxy in front of one backend. Mount
// its handler where the router expects the replica; script it with
// SetInjector and SetDown.
type Proxy struct {
	target *url.URL
	rp     *httputil.ReverseProxy
	inj    atomic.Value // injectorBox — one concrete type, so any Injector swaps in
	down   atomic.Bool
}

type injectorBox struct{ i Injector }

// NewProxy builds a proxy forwarding to the backend at target (a base URL).
func NewProxy(target string) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: invalid target %q", target)
	}
	p := &Proxy{target: u, rp: httputil.NewSingleHostReverseProxy(u)}
	// A dead backend must look dead, not like a gateway: abort the
	// connection instead of answering 502.
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		panic(http.ErrAbortHandler)
	}
	p.SetInjector(nil)
	return p, nil
}

// SetInjector replaces the fault source; nil restores the clean pass-through.
func (p *Proxy) SetInjector(i Injector) {
	if i == nil {
		i = InjectorFunc(func(*http.Request) Fault { return Fault{} })
	}
	p.inj.Store(injectorBox{i})
}

// SetDown blackouts the proxy: while down, every request — probes included —
// has its connection severed with no response, exactly what a kill -9 of the
// replica process looks like to callers. SetDown(false) "restarts" it.
func (p *Proxy) SetDown(down bool) { p.down.Store(down) }

// Down reports whether the proxy is blacked out.
func (p *Proxy) Down() bool { return p.down.Load() }

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.down.Load() {
		panic(http.ErrAbortHandler)
	}
	f := p.inj.Load().(injectorBox).i.Fault(r)
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
	if f.Drop || p.down.Load() {
		panic(http.ErrAbortHandler)
	}
	if f.Status != 0 {
		if f.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", f.RetryAfter))
		}
		if f.ShedReason != "" {
			w.Header().Set("X-Shed-Reason", f.ShedReason)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(f.Status)
		fmt.Fprintf(w, "chaos: injected %d\n", f.Status)
		return
	}
	p.rp.ServeHTTP(w, r)
}
