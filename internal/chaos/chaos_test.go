package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func backend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real\n")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func proxyFor(t *testing.T, target string) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := NewProxy(target)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

func get(t *testing.T, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body), nil
}

func TestProxyPassThrough(t *testing.T) {
	p, front := proxyFor(t, backend(t).URL)
	resp, body, err := get(t, front.URL+"/x")
	if err != nil || resp.StatusCode != http.StatusOK || body != "real\n" {
		t.Fatalf("clean pass-through: %v %v %q", err, resp, body)
	}
	p.SetInjector(nil) // nil restores pass-through, must not panic
	if _, _, err := get(t, front.URL+"/x"); err != nil {
		t.Fatal(err)
	}
}

func TestProxyInjectedStatus(t *testing.T) {
	p, front := proxyFor(t, backend(t).URL)
	p.SetInjector(InjectorFunc(func(*http.Request) Fault {
		return Fault{Status: 429, RetryAfter: 2, ShedReason: "backpressure"}
	}))
	resp, _, err := get(t, front.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 429 {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" || resp.Header.Get("X-Shed-Reason") != "backpressure" {
		t.Fatalf("shed headers missing: %v", resp.Header)
	}
}

func TestProxyDelay(t *testing.T) {
	p, front := proxyFor(t, backend(t).URL)
	p.SetInjector(InjectorFunc(func(*http.Request) Fault {
		return Fault{Delay: 50 * time.Millisecond}
	}))
	start := time.Now()
	if _, _, err := get(t, front.URL+"/x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request returned in %v, before the injected delay", d)
	}
}

func TestProxyDropAndDown(t *testing.T) {
	p, front := proxyFor(t, backend(t).URL)
	p.SetInjector(InjectorFunc(func(*http.Request) Fault { return Fault{Drop: true} }))
	if _, _, err := get(t, front.URL+"/x"); err == nil {
		t.Fatal("dropped connection produced a response")
	}
	p.SetInjector(nil)

	p.SetDown(true)
	if !p.Down() {
		t.Fatal("Down not reported")
	}
	if _, _, err := get(t, front.URL+"/x"); err == nil {
		t.Fatal("down proxy produced a response")
	}
	p.SetDown(false)
	if resp, _, err := get(t, front.URL+"/x"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted proxy: %v %v", err, resp)
	}
}

func TestProxyDeadBackendLooksDead(t *testing.T) {
	be := backend(t)
	_, front := proxyFor(t, be.URL)
	be.Close()
	if _, _, err := get(t, front.URL+"/x"); err == nil {
		t.Fatal("dead backend answered through the proxy")
	}
}

func TestScript(t *testing.T) {
	s := &Script{
		Faults: []Fault{{Status: 500}, {Status: 429}},
		Match:  ScoringOnly,
	}
	probe := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	if f := s.Fault(probe); f != (Fault{}) {
		t.Fatalf("probe consumed a script entry: %+v", f)
	}
	score := func() *http.Request {
		return httptest.NewRequest(http.MethodPost, "/rerank", strings.NewReader("{}"))
	}
	if f := s.Fault(score()); f.Status != 500 {
		t.Fatalf("first scripted fault %+v", f)
	}
	if f := s.Fault(score()); f.Status != 429 {
		t.Fatalf("second scripted fault %+v", f)
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining %d, want 0", s.Remaining())
	}
	if f := s.Fault(score()); f != (Fault{}) {
		t.Fatalf("exhausted script still injecting: %+v", f)
	}
}
