package bandit

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file promotes the package from an offline regret study to a serving
// component: Policy is a per-user-segment bandit over the relevance/diversity
// λ of the classic diversifiers (the PR 8 weightless versions), designed to
// sit on the request hot path. Selection is a lock-free read of a precomputed
// copy-on-write score table; all learning (LinUCB via Sherman–Morrison, or
// ε-greedy means) happens in Update, which the feedback ingestor calls off
// the scoring path.

// Arm is one λ choice the policy can pull: a named classic diversifier
// (internal/diversify registry name) at a fixed relevance/diversity λ.
type Arm struct {
	Name   string
	Lambda float64
}

// Label is the version label an arm serves under, e.g. "bandit-mmr@0.30".
// The label doubles as the correlation key: feedback events carry the
// serving version, and ParseArmLabel/ArmIndex recover the arm from it.
func (a Arm) Label() string {
	return fmt.Sprintf("bandit-%s@%.2f", a.Name, a.Lambda)
}

// ParseArmLabel inverts Label. It reports false for any non-arm version
// label (model versions "v…", classic diversifier versions "div-…").
func ParseArmLabel(s string) (Arm, bool) {
	rest, ok := strings.CutPrefix(s, "bandit-")
	if !ok {
		return Arm{}, false
	}
	name, lam, ok := strings.Cut(rest, "@")
	if !ok || name == "" {
		return Arm{}, false
	}
	l, err := strconv.ParseFloat(lam, 64)
	if err != nil || l < 0 || l > 1 {
		return Arm{}, false
	}
	return Arm{Name: name, Lambda: l}, true
}

// ParseArms parses a comma-separated arm list ("mmr@0.2,mmr@0.5,window@0.8").
// A bare name gets λ = 0.5.
func ParseArms(s string) ([]Arm, error) {
	var arms []Arm
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, lam, hasLam := strings.Cut(part, "@")
		a := Arm{Name: name, Lambda: 0.5}
		if hasLam {
			l, err := strconv.ParseFloat(lam, 64)
			if err != nil || l < 0 || l > 1 {
				return nil, fmt.Errorf("bandit: arm %q: λ must be in [0,1]", part)
			}
			a.Lambda = l
		}
		if a.Name == "" {
			return nil, fmt.Errorf("bandit: arm %q has no diversifier name", part)
		}
		arms = append(arms, a)
	}
	if len(arms) == 0 {
		return nil, fmt.Errorf("bandit: empty arm list")
	}
	return arms, nil
}

// PolicyConfig bounds a serving-path policy. The zero value of every field
// falls back to the listed default.
type PolicyConfig struct {
	// Arms is the λ grid (required, at least one arm).
	Arms []Arm
	// Segments partitions users by route key (key % Segments); each segment
	// learns its own arm values so focused and diffuse audiences can settle
	// on different λ. Default 8.
	Segments int
	// Algo selects the learner: "linucb" (default) maintains a disjoint
	// ridge regression per arm over [bias, one-hot(segment)] contexts with a
	// UCB bonus; "eps" keeps plain per-segment empirical means.
	Algo string
	// Epsilon is the forced-exploration rate applied on top of either
	// learner so every arm keeps receiving traffic (default 0.05).
	Epsilon float64
	// UCBScale is the LinUCB confidence multiplier (default 0.5).
	UCBScale float64
	// Seed perturbs the deterministic exploration stream.
	Seed uint64
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.Segments <= 0 {
		c.Segments = 8
	}
	if c.Algo == "" {
		c.Algo = "linucb"
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
	if c.UCBScale <= 0 {
		c.UCBScale = 0.5
	}
	return c
}

// policyTable is the immutable hot-path view: selection scores per
// (segment, arm), rebuilt by Update and swapped in atomically. Select never
// takes a lock and never allocates.
type policyTable struct {
	scores [][]float64 // [segment][arm], higher wins
}

// armStats is the single-writer learning state for one (segment, arm) cell.
type armStats struct {
	pulls  int64
	reward float64
}

// Policy is a per-user-segment bandit over λ arms, safe for one concurrent
// updater (the feedback ingest goroutine) and any number of selectors (the
// request handlers).
type Policy struct {
	cfg     PolicyConfig
	byLabel map[string]int
	table   atomic.Pointer[policyTable]
	selSeq  atomic.Uint64 // exploration stream position

	mu    sync.Mutex
	cells [][]armStats // [segment][arm]
	// LinUCB state: one ridge regression per arm over d = 1+Segments
	// one-hot contexts. ainv is A⁻¹ kept by Sherman–Morrison; bvec is Σ x·y.
	ainv [][]float64 // [arm][d*d]
	bvec [][]float64 // [arm][d]

	updates   atomic.Int64
	cumReward float64
	cumRegret float64 // Σ (best empirical segment mean − reward)
}

// NewPolicy validates the config and builds a policy with a uniform table.
func NewPolicy(cfg PolicyConfig) (*Policy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Arms) == 0 {
		return nil, fmt.Errorf("bandit: policy needs at least one arm")
	}
	if cfg.Algo != "linucb" && cfg.Algo != "eps" {
		return nil, fmt.Errorf("bandit: unknown policy algo %q (linucb|eps)", cfg.Algo)
	}
	p := &Policy{cfg: cfg, byLabel: make(map[string]int, len(cfg.Arms))}
	for i, a := range cfg.Arms {
		if _, dup := p.byLabel[a.Label()]; dup {
			return nil, fmt.Errorf("bandit: duplicate arm %s", a.Label())
		}
		p.byLabel[a.Label()] = i
	}
	p.cells = make([][]armStats, cfg.Segments)
	scores := make([][]float64, cfg.Segments)
	for s := range p.cells {
		p.cells[s] = make([]armStats, len(cfg.Arms))
		scores[s] = make([]float64, len(cfg.Arms))
	}
	d := 1 + cfg.Segments
	p.ainv = make([][]float64, len(cfg.Arms))
	p.bvec = make([][]float64, len(cfg.Arms))
	for a := range cfg.Arms {
		p.ainv[a] = identity(d)
		p.bvec[a] = make([]float64, d)
	}
	p.table.Store(&policyTable{scores: scores})
	return p, nil
}

// Arms returns the λ grid in arm-index order.
func (p *Policy) Arms() []Arm { return p.cfg.Arms }

// ArmIndex resolves a serving version label to its arm, reporting false for
// non-arm labels. The ingestor uses it to credit feedback to arms without
// the serving layer knowing anything about the policy.
func (p *Policy) ArmIndex(label string) (int, bool) {
	i, ok := p.byLabel[label]
	return i, ok
}

// Segment maps a route key to its learning segment.
func (p *Policy) Segment(route uint64) int {
	return int(route % uint64(p.cfg.Segments))
}

// Select picks the arm for a request: the precomputed argmax of its
// segment's scores, with an ε-slice of traffic diverted to a deterministic
// pseudo-random arm so every arm keeps accruing evidence. Lock-free and
// allocation-free — this is the scoring hot path.
func (p *Policy) Select(route uint64) int {
	t := p.table.Load()
	seg := p.Segment(route)
	// The exploration stream mixes the route with a global sequence number:
	// the same user explores different arms over time, but the decision is
	// reproducible from (route, sequence) — no locked RNG on the hot path.
	h := mix64(route ^ (p.selSeq.Add(1) * 0x9e3779b97f4a7c15) ^ p.cfg.Seed)
	nArms := uint64(len(p.cfg.Arms))
	if float64(h>>11)/(1<<53) < p.cfg.Epsilon {
		return int(mix64(h) % nArms)
	}
	best, bestScore := 0, math.Inf(-1)
	for a, s := range t.scores[seg] {
		if s > bestScore {
			best, bestScore = a, s
		}
	}
	return best
}

// Update credits one observed reward (clicked-any ∈ {0,1}, but any bounded
// value works) to an arm pulled for a route, relearns, and publishes a fresh
// score table. Called from the feedback ingest goroutine only — never from
// a request handler — so learning cost (O(arms·d²) for LinUCB) stays off
// the scoring hot path by construction.
func (p *Policy) Update(route uint64, arm int, reward float64) {
	if arm < 0 || arm >= len(p.cfg.Arms) {
		return
	}
	seg := p.Segment(route)
	p.mu.Lock()
	defer p.mu.Unlock()
	// Estimated regret against the best empirical mean of the segment,
	// accumulated before folding in the new sample (the comparator must not
	// include the reward it judges).
	if best, ok := p.bestMeanLocked(seg); ok {
		if r := best - reward; r > 0 {
			p.cumRegret += r
		}
	}
	c := &p.cells[seg][arm]
	c.pulls++
	c.reward += reward
	p.cumReward += reward
	if p.cfg.Algo == "linucb" {
		x := p.context(seg)
		shermanMorrison(p.ainv[arm], x)
		for i, xi := range x {
			p.bvec[arm][i] += xi * reward
		}
	}
	p.publishLocked()
	p.updates.Add(1)
}

// bestMeanLocked returns the best empirical arm mean within a segment.
func (p *Policy) bestMeanLocked(seg int) (float64, bool) {
	best, ok := 0.0, false
	for a := range p.cells[seg] {
		if c := p.cells[seg][a]; c.pulls > 0 {
			if m := c.reward / float64(c.pulls); !ok || m > best {
				best, ok = m, true
			}
		}
	}
	return best, ok
}

// publishLocked rebuilds the immutable score table from the learner state.
func (p *Policy) publishLocked() {
	nSeg, nArms := p.cfg.Segments, len(p.cfg.Arms)
	scores := make([][]float64, nSeg)
	for seg := 0; seg < nSeg; seg++ {
		row := make([]float64, nArms)
		for a := 0; a < nArms; a++ {
			row[a] = p.scoreLocked(seg, a)
		}
		scores[seg] = row
	}
	p.table.Store(&policyTable{scores: scores})
}

// scoreLocked is the selection score of one (segment, arm) cell: a UCB for
// linucb, an optimistic empirical mean for eps (unpulled cells score +1 so
// each arm is tried before exploitation narrows).
func (p *Policy) scoreLocked(seg, arm int) float64 {
	c := p.cells[seg][arm]
	if p.cfg.Algo == "eps" {
		if c.pulls == 0 {
			return 1
		}
		return c.reward / float64(c.pulls)
	}
	x := p.context(seg)
	d := len(x)
	ainv := p.ainv[arm]
	// ŵ = A⁻¹·b, mean = ŵᵀx; with the one-hot context this reduces to two
	// rows of A⁻¹, but keeping the general form documents the algorithm.
	mean := 0.0
	for i := 0; i < d; i++ {
		var wi float64
		for j := 0; j < d; j++ {
			wi += ainv[i*d+j] * p.bvec[arm][j]
		}
		mean += wi * x[i]
	}
	// xᵀA⁻¹x confidence width.
	var q float64
	for i := 0; i < d; i++ {
		var s float64
		for j := 0; j < d; j++ {
			s += ainv[i*d+j] * x[j]
		}
		q += x[i] * s
	}
	if q < 0 {
		q = 0
	}
	return mean + p.cfg.UCBScale*math.Sqrt(q)
}

// context is the LinUCB feature of a segment: bias + one-hot(segment). The
// shared bias row pools evidence across segments, so a cold segment starts
// from the global arm ordering instead of from scratch.
func (p *Policy) context(seg int) []float64 {
	x := make([]float64, 1+p.cfg.Segments)
	x[0] = 1
	x[1+seg] = 1
	return x
}

// ArmSnapshot is one arm's aggregate across all segments.
type ArmSnapshot struct {
	Arm    Arm     `json:"arm"`
	Label  string  `json:"label"`
	Pulls  int64   `json:"pulls"`
	Reward float64 `json:"reward"`
	Mean   float64 `json:"mean"`
}

// PolicySnapshot is a consistent view of the policy's learning state.
type PolicySnapshot struct {
	Arms      []ArmSnapshot `json:"arms"`
	Updates   int64         `json:"updates"`
	CumReward float64       `json:"cum_reward"`
	// CumRegret is the estimated cumulative regret: Σ over updates of
	// (best empirical mean of the segment − observed reward), clamped at 0
	// per update. An observable proxy — true regret needs the unknowable
	// counterfactual reward — whose growth rate is what dashboards watch.
	CumRegret float64 `json:"cum_regret"`
}

// Snapshot aggregates per-arm pulls and rewards across segments.
func (p *Policy) Snapshot() PolicySnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := PolicySnapshot{
		Updates:   p.updates.Load(),
		CumReward: p.cumReward,
		CumRegret: p.cumRegret,
	}
	for a, arm := range p.cfg.Arms {
		as := ArmSnapshot{Arm: arm, Label: arm.Label()}
		for seg := range p.cells {
			as.Pulls += p.cells[seg][a].pulls
			as.Reward += p.cells[seg][a].reward
		}
		if as.Pulls > 0 {
			as.Mean = as.Reward / float64(as.Pulls)
		}
		out.Arms = append(out.Arms, as)
	}
	return out
}

// Best returns the globally best arm by mean reward among arms with at
// least minPulls evidence, or false when nothing qualifies yet. The
// feedback trainer republishes this λ as a canaried diversifier version.
func (p *Policy) Best(minPulls int64) (Arm, bool) {
	snap := p.Snapshot()
	sort.SliceStable(snap.Arms, func(i, j int) bool { return snap.Arms[i].Mean > snap.Arms[j].Mean })
	for _, as := range snap.Arms {
		if as.Pulls >= minPulls {
			return as.Arm, true
		}
	}
	return Arm{}, false
}

// FitExponent exposes the regret-curve growth-exponent fit (log-log
// regression over the second half) for callers outside the package: the
// feedback bench uses it to assert sublinear policy regret.
func FitExponent(points []RegretPoint) float64 { return fitExponent(points) }

func identity(d int) []float64 {
	m := make([]float64, d*d)
	for i := 0; i < d; i++ {
		m[i*d+i] = 1
	}
	return m
}

// shermanMorrison applies A⁻¹ ← A⁻¹ − (A⁻¹xxᵀA⁻¹)/(1+xᵀA⁻¹x) in place on a
// row-major d×d matrix.
func shermanMorrison(ainv []float64, x []float64) {
	d := len(x)
	u := make([]float64, d) // A⁻¹·x
	for i := 0; i < d; i++ {
		var s float64
		for j := 0; j < d; j++ {
			s += ainv[i*d+j] * x[j]
		}
		u[i] = s
	}
	var denom float64 = 1
	for i, xi := range x {
		denom += xi * u[i]
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			ainv[i*d+j] -= u[i] * u[j] / denom
		}
	}
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash for the
// hot-path exploration stream.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
