package bandit

import (
	"math"
	"math/rand"
)

// PolicyEnv is the synthetic reward environment for the serving-path policy
// study: a true mean reward per (segment, arm). Feedback rewards are
// Bernoulli draws from these means, so the environment is exactly the
// clicked-any reward the live ingestor feeds the policy.
type PolicyEnv struct {
	// Means[segment][arm] is the true expected reward.
	Means [][]float64
}

// DefaultPolicyEnv builds a deterministic environment where each segment
// prefers a different region of the λ grid: the true reward of arm a in
// segment s peaks at the arm whose index matches the segment's preferred
// position, with a quadratic falloff. This is the shape that makes a
// per-segment policy strictly better than any fixed λ.
func DefaultPolicyEnv(segments, arms int, seed int64) *PolicyEnv {
	rng := rand.New(rand.NewSource(seed))
	e := &PolicyEnv{Means: make([][]float64, segments)}
	for s := range e.Means {
		row := make([]float64, arms)
		peak := float64(s%arms) + 0.3*rng.Float64()
		for a := range row {
			d := (float64(a) - peak) / float64(arms)
			row[a] = 0.55 - 0.9*d*d + 0.05*rng.Float64()
			if row[a] < 0.05 {
				row[a] = 0.05
			}
		}
		e.Means[s] = row
	}
	return e
}

// bestMean is the per-segment oracle reward.
func (e *PolicyEnv) bestMean(seg int) float64 {
	best := math.Inf(-1)
	for _, m := range e.Means[seg] {
		if m > best {
			best = m
		}
	}
	return best
}

// SimulatePolicy runs the serving-path policy against the environment for n
// rounds and returns its true cumulative regret (per-segment oracle mean
// minus the pulled arm's true mean — the expected, not sampled, shortfall,
// so curves are smooth at small n). The policy sees only sampled Bernoulli
// rewards, exactly as in live serving.
func SimulatePolicy(p *Policy, e *PolicyEnv, n, every int, seed int64) RegretCurve {
	rng := rand.New(rand.NewSource(seed))
	return simulate(e, n, every, rng, func(route uint64, seg int) int {
		arm := p.Select(route)
		reward := 0.0
		if rng.Float64() < e.Means[seg][arm] {
			reward = 1
		}
		p.Update(route, arm, reward)
		return arm
	})
}

// SimulateFixedArm is the baseline: always serve one λ, never learn. Against
// a segment-heterogeneous environment its regret grows linearly — the curve
// the policy must beat.
func SimulateFixedArm(arm int, e *PolicyEnv, n, every int, seed int64) RegretCurve {
	rng := rand.New(rand.NewSource(seed))
	return simulate(e, n, every, rng, func(uint64, int) int { return arm })
}

func simulate(e *PolicyEnv, n, every int, rng *rand.Rand, pull func(route uint64, seg int) int) RegretCurve {
	segments := len(e.Means)
	var curve RegretCurve
	var cum float64
	type pt struct {
		n int
		r float64
	}
	var checkpoints []pt
	for round := 1; round <= n; round++ {
		route := rng.Uint64()
		seg := int(route % uint64(segments))
		arm := pull(route, seg)
		cum += e.bestMean(seg) - e.Means[seg][arm]
		if round%every == 0 || round == n {
			checkpoints = append(checkpoints, pt{round, cum})
		}
	}
	curve.Final = cum
	c := cum / math.Sqrt(float64(n))
	for _, p := range checkpoints {
		curve.Points = append(curve.Points, RegretPoint{
			Round:     p.n,
			CumRegret: p.r,
			SqrtRef:   c * math.Sqrt(float64(p.n)),
		})
	}
	curve.Alpha = fitExponent(curve.Points)
	return curve
}
