package bandit

import (
	"math"
)

// RegretPoint is one checkpoint of a regret curve.
type RegretPoint struct {
	Round     int
	CumRegret float64
	// SqrtRef is c·√n fitted from the final point, plotted alongside to
	// make the Õ(√n) shape visible.
	SqrtRef float64
}

// RegretCurve is the output of one simulation.
type RegretCurve struct {
	Mode   Mode
	Points []RegretPoint
	// Final is the cumulative regret after all rounds.
	Final float64
	// Alpha is the fitted exponent of CumRegret ≈ c·n^α over the second
	// half of the curve; Theorem 5.1 predicts α ≈ 0.5 for UCB.
	Alpha float64
}

// ExplorationScale returns the theorem's s for horizon n and feature
// dimension q0 with σ = 1 and ‖ω*‖ ≤ 1 (a constant-factor-faithful form).
func ExplorationScale(n, k, q0 int) float64 {
	fn, fq := float64(n), float64(q0)
	return math.Sqrt(fq*math.Log(1+fn*float64(k)/fq)+2*math.Log(fn)) + 1
}

// SimulateRegret runs the learner against the environment for n rounds and
// returns the cumulative per-round utility regret
// Σ f(S*_u) − f(S_u), checkpointed every `every` rounds.
func SimulateRegret(e *Env, mode Mode, n, every int, sScale float64) RegretCurve {
	d := e.Q + e.M
	s := sScale * ExplorationScale(n, e.K, d)
	learner := NewLinRAPID(d, s, mode)
	curve := RegretCurve{Mode: mode}
	var cum float64
	type pt struct {
		n int
		r float64
	}
	var checkpoints []pt
	for round := 1; round <= n; round++ {
		r := e.NextRound()
		feats := learner.SelectSlate(e, r)
		slate := learner.LastSlate()
		clicks := e.SimulateClicks(r.User, slate)
		learner.Update(feats, clicks)
		opt := e.OracleSlate(r)
		cum += e.Utility(r.User, opt) - e.Utility(r.User, slate)
		if round%every == 0 || round == n {
			checkpoints = append(checkpoints, pt{round, cum})
		}
	}
	curve.Final = cum
	c := cum / math.Sqrt(float64(n))
	for _, p := range checkpoints {
		curve.Points = append(curve.Points, RegretPoint{
			Round:     p.n,
			CumRegret: p.r,
			SqrtRef:   c * math.Sqrt(float64(p.n)),
		})
	}
	curve.Alpha = fitExponent(curve.Points)
	return curve
}

// fitExponent regresses log regret on log n over the second half of the
// curve, returning the growth exponent α.
func fitExponent(points []RegretPoint) float64 {
	start := len(points) / 2
	var sx, sy, sxx, sxy float64
	n := 0
	for _, p := range points[start:] {
		if p.CumRegret <= 0 || p.Round <= 0 {
			continue
		}
		x := math.Log(float64(p.Round))
		y := math.Log(p.CumRegret)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	denom := fn*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (fn*sxy - sx*sy) / denom
}
