package bandit

import (
	"math"
	"testing"
)

func gridPolicy(t *testing.T, algo string, segments int) *Policy {
	t.Helper()
	arms, err := ParseArms("mmr@0.2,mmr@0.5,mmr@0.8")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicy(PolicyConfig{Arms: arms, Segments: segments, Algo: algo, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArmLabelRoundTrip(t *testing.T) {
	for _, a := range []Arm{{Name: "mmr", Lambda: 0.2}, {Name: "window", Lambda: 0.85}, {Name: "dpp", Lambda: 0}} {
		got, ok := ParseArmLabel(a.Label())
		if !ok {
			t.Fatalf("label %q did not parse", a.Label())
		}
		if got.Name != a.Name || math.Abs(got.Lambda-a.Lambda) > 0.005 {
			t.Fatalf("round-trip %q → %+v, want %+v", a.Label(), got, a)
		}
	}
	for _, bad := range []string{"v12", "div-mmr-0.5", "bandit-", "bandit-mmr", "bandit-@0.5", "bandit-mmr@1.5", "bandit-mmr@x"} {
		if _, ok := ParseArmLabel(bad); ok {
			t.Fatalf("%q parsed as an arm label", bad)
		}
	}
}

func TestParseArms(t *testing.T) {
	arms, err := ParseArms(" mmr@0.2, window , dpp@1.0 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Arm{{"mmr", 0.2}, {"window", 0.5}, {"dpp", 1.0}}
	if len(arms) != len(want) {
		t.Fatalf("parsed %d arms, want %d", len(arms), len(want))
	}
	for i := range want {
		if arms[i] != want[i] {
			t.Fatalf("arm %d = %+v, want %+v", i, arms[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "mmr@2", "@0.5", "mmr@abc"} {
		if _, err := ParseArms(bad); err == nil {
			t.Fatalf("ParseArms(%q) accepted", bad)
		}
	}
}

func TestPolicySelectUpdateConverges(t *testing.T) {
	for _, algo := range []string{"linucb", "eps"} {
		t.Run(algo, func(t *testing.T) {
			p := gridPolicy(t, algo, 1)
			// Deterministic rewards: arm 2 always pays, the rest never do.
			for i := 0; i < 600; i++ {
				arm := p.Select(uint64(i))
				reward := 0.0
				if arm == 2 {
					reward = 1
				}
				p.Update(uint64(i), arm, reward)
			}
			// Past the ε-exploration slice, selection must have locked on.
			hits := 0
			const probes = 1000
			for i := 0; i < probes; i++ {
				if p.Select(uint64(i)) == 2 {
					hits++
				}
			}
			if frac := float64(hits) / probes; frac < 0.85 {
				t.Fatalf("%s picked the paying arm %.2f of the time, want ≥ 0.85", algo, frac)
			}
			snap := p.Snapshot()
			if snap.Updates != 600 {
				t.Fatalf("updates = %d, want 600", snap.Updates)
			}
			if best, ok := p.Best(10); !ok || best.Lambda != 0.8 {
				t.Fatalf("Best = %+v ok=%v, want mmr@0.8", best, ok)
			}
		})
	}
}

func TestPolicyPerSegmentSpecialization(t *testing.T) {
	// Two segments with opposite preferences: even routes pay arm 0, odd
	// routes pay arm 2. A per-segment policy must learn both.
	p := gridPolicy(t, "linucb", 2)
	for i := 0; i < 2000; i++ {
		route := uint64(i)
		arm := p.Select(route)
		paying := 0
		if route%2 == 1 {
			paying = 2
		}
		reward := 0.0
		if arm == paying {
			reward = 1
		}
		p.Update(route, arm, reward)
	}
	for seg, paying := range map[uint64]int{0: 0, 1: 2} {
		hits := 0
		const probes = 500
		for i := 0; i < probes; i++ {
			if p.Select(uint64(i)*2+seg) == paying {
				hits++
			}
		}
		if frac := float64(hits) / probes; frac < 0.8 {
			t.Fatalf("segment %d picked its paying arm %.2f of the time", seg, frac)
		}
	}
}

func TestPolicyUpdateIgnoresBadArm(t *testing.T) {
	p := gridPolicy(t, "linucb", 2)
	p.Update(1, -1, 1)
	p.Update(1, 99, 1)
	if snap := p.Snapshot(); snap.Updates != 0 || snap.CumReward != 0 {
		t.Fatalf("out-of-range arm credited: %+v", snap)
	}
}

func TestPolicyArmIndex(t *testing.T) {
	p := gridPolicy(t, "linucb", 2)
	for i, a := range p.Arms() {
		got, ok := p.ArmIndex(a.Label())
		if !ok || got != i {
			t.Fatalf("ArmIndex(%q) = %d,%v want %d,true", a.Label(), got, ok, i)
		}
	}
	if _, ok := p.ArmIndex("v3"); ok {
		t.Fatal("model version resolved to an arm")
	}
}

func TestPolicyBestRequiresEvidence(t *testing.T) {
	p := gridPolicy(t, "eps", 1)
	p.Update(0, 1, 1)
	if _, ok := p.Best(10); ok {
		t.Fatal("Best with 1 pull cleared a 10-pull floor")
	}
	if best, ok := p.Best(1); !ok || best.Lambda != 0.5 {
		t.Fatalf("Best(1) = %+v ok=%v", best, ok)
	}
}

// TestPolicyRegretSublinear is the headline property the BENCH_PR9 study
// commits: against a segment-heterogeneous environment, the learned policy's
// true cumulative regret grows sublinearly (fitted exponent well below 1)
// while every fixed-λ baseline grows linearly and ends far above it.
func TestPolicyRegretSublinear(t *testing.T) {
	const (
		segments = 4
		rounds   = 30_000
		every    = 1000
	)
	env := DefaultPolicyEnv(segments, 3, 3)
	p := gridPolicy(t, "linucb", segments)
	curve := SimulatePolicy(p, env, rounds, every, 11)
	if curve.Alpha >= 0.9 {
		t.Fatalf("policy regret exponent %.3f, want sublinear (< 0.9)", curve.Alpha)
	}
	for arm := 0; arm < 3; arm++ {
		fixed := SimulateFixedArm(arm, env, rounds, every, 11)
		if fixed.Final <= curve.Final {
			t.Fatalf("fixed arm %d regret %.1f did not exceed policy regret %.1f", arm, fixed.Final, curve.Final)
		}
		if fixed.Alpha < 0.95 {
			t.Fatalf("fixed arm %d regret exponent %.3f, expected ≈1 (linear)", arm, fixed.Alpha)
		}
	}
	// The policy's own estimated regret (what the metrics export) must also
	// be finite and growing slower than the round count.
	if snap := p.Snapshot(); snap.CumRegret <= 0 || snap.CumRegret >= rounds {
		t.Fatalf("estimated regret %.1f out of range", snap.CumRegret)
	}
}

func TestPolicySelectDeterministicStream(t *testing.T) {
	// Two policies with the same seed must produce the same selection
	// sequence — the exploration stream is a counter mix, not a shared RNG.
	a := gridPolicy(t, "eps", 4)
	b := gridPolicy(t, "eps", 4)
	for i := 0; i < 500; i++ {
		if a.Select(uint64(i)) != b.Select(uint64(i)) {
			t.Fatalf("selection stream diverged at %d", i)
		}
	}
}

func TestNewPolicyRejectsEmptyArms(t *testing.T) {
	if _, err := NewPolicy(PolicyConfig{}); err == nil {
		t.Fatal("empty arm list accepted")
	}
}
