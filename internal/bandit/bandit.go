// Package bandit implements the theoretical side of the paper (Section V):
// the linearized RAPID whose re-ranking score is φ_R = ω̂ᵀη with
// η = [relevance features, personalized marginal-diversity features], run
// as a LinUCB-style algorithm against a DCM environment. The simulation
// verifies Theorem 5.1 empirically: the γ-scaled cumulative regret of the
// UCB variant grows as Õ(√n), while ablations (no exploration, no
// personalization) do visibly worse.
package bandit

import (
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/topics"
)

// Env is the linear-DCM environment of the efficacy analysis: at each round
// a user arrives with a candidate pool; the attraction probability of item
// v placed after the set S is the linear form ω*ᵀη(u, v, S); clicks follow
// the DCM with known-order termination probabilities.
type Env struct {
	// Q is the relevance feature dimension; M the number of topics.
	Q, M int
	// K is the slate size; Termination has length K (non-increasing).
	K           int
	Termination []float64
	// OmegaStar = [β*, w*] with ‖ω*‖₂ ≤ 1 (Theorem 5.1's assumption).
	OmegaStar []float64

	// Universe.
	NumUsers, NumItems, PoolSize int
	userPref                     [][]float64 // per-user topic preference
	userFeat, itemFeat           [][]float64 // unit feature vectors
	itemCover                    [][]float64

	rng *rand.Rand
}

// NewEnv builds a deterministic environment.
func NewEnv(q, m, k, users, items, pool int, seed int64) *Env {
	rng := rand.New(rand.NewSource(seed))
	e := &Env{
		Q: q, M: m, K: k,
		Termination: decreasing(k, 0.7, 0.85),
		NumUsers:    users, NumItems: items, PoolSize: pool,
		rng: rng,
	}
	// ω* with positive diversity weights and ‖ω*‖ ≤ 1.
	omega := make([]float64, q+m)
	for i := range omega {
		omega[i] = math.Abs(rng.NormFloat64())
	}
	nrm := mat.NormVec(omega)
	for i := range omega {
		omega[i] /= nrm * 1.05
	}
	e.OmegaStar = omega
	for u := 0; u < users; u++ {
		pref := make([]float64, m)
		if u%2 == 0 {
			pref[rng.Intn(m)] = 1 // focused user
		} else {
			for j := range pref {
				pref[j] = rng.Float64()
			}
			pref = mat.Normalize(pref)
		}
		e.userPref = append(e.userPref, pref)
		e.userFeat = append(e.userFeat, unitVec(q, rng))
	}
	for v := 0; v < items; v++ {
		e.itemFeat = append(e.itemFeat, unitVec(q, rng))
		cov := make([]float64, m)
		cov[rng.Intn(m)] = 1
		e.itemCover = append(e.itemCover, cov)
	}
	return e
}

// Round is one bandit interaction: a user and their candidate pool.
type Round struct {
	User int
	Pool []int
}

// NextRound samples a round.
func (e *Env) NextRound() Round {
	u := e.rng.Intn(e.NumUsers)
	pool := make([]int, e.PoolSize)
	for i := range pool {
		pool[i] = e.rng.Intn(e.NumItems)
	}
	return Round{User: u, Pool: pool}
}

// Feature builds η(u, v | S-coverage tracker): relevance features followed
// by the personalized marginal-diversity features pref_u ⊙ ζ(v).
func (e *Env) Feature(u, v int, ic *topics.IncrementalCoverage) []float64 {
	eta := make([]float64, e.Q+e.M)
	xu, xv := e.userFeat[u], e.itemFeat[v]
	for i := 0; i < e.Q; i++ {
		// Element-wise interaction keeps ‖η‖ bounded by 1.
		eta[i] = xu[i] * xv[i]
	}
	gain := ic.Gain(e.itemCover[v])
	pref := e.userPref[u]
	for j := 0; j < e.M; j++ {
		eta[e.Q+j] = pref[j] * gain[j]
	}
	return eta
}

// Attraction is φ̄ = ω*ᵀη clamped to [0,1].
func (e *Env) Attraction(eta []float64) float64 {
	return mat.Clamp(mat.Dot(e.OmegaStar, eta), 0, 1)
}

// SimulateClicks plays one DCM scan over a chosen slate, returning clicks
// and the per-slot features the learner observed.
func (e *Env) SimulateClicks(u int, slate []int) (clicks []bool) {
	ic := topics.NewIncrementalCoverage(e.M)
	clicks = make([]bool, len(slate))
	for k, v := range slate {
		phi := e.Attraction(e.Feature(u, v, ic))
		ic.Add(e.itemCover[v])
		if e.rng.Float64() < phi {
			clicks[k] = true
			if e.rng.Float64() < e.Termination[k] {
				return clicks
			}
		}
	}
	return clicks
}

// Utility is the DCM satisfaction f(S, ε̄, φ̄) = 1 − Π (1 − ε̄(k)·φ̄(v_k))
// computed with the true parameters.
func (e *Env) Utility(u int, slate []int) float64 {
	ic := topics.NewIncrementalCoverage(e.M)
	prod := 1.0
	for k, v := range slate {
		phi := e.Attraction(e.Feature(u, v, ic))
		ic.Add(e.itemCover[v])
		prod *= 1 - e.Termination[k]*phi
	}
	return 1 - prod
}

// Gamma returns the theorem's greedy approximation ratio
// γ = (1 − 1/e)·max{1/K, 1 − 2·φ̄max/(K−1)} for the given maximum
// attraction probability. The simulation reports plain regret against the
// greedy oracle (the standard empirical comparator); dividing f(S) by this
// γ recovers the exact quantity bounded by Theorem 5.1.
func (e *Env) Gamma(phiMax float64) float64 {
	a := 1.0 / float64(e.K)
	b := 1 - 2*phiMax/float64(e.K-1)
	if b > a {
		a = b
	}
	return (1 - 1/math.E) * a
}

// MaxAttraction estimates φ̄max by sampling rounds and scoring first-slot
// attractions — the quantity entering the γ of Theorem 5.1.
func (e *Env) MaxAttraction(samples int) float64 {
	var mx float64
	for s := 0; s < samples; s++ {
		r := e.NextRound()
		ic := topics.NewIncrementalCoverage(e.M)
		for _, v := range r.Pool {
			if phi := e.Attraction(e.Feature(r.User, v, ic)); phi > mx {
				mx = phi
			}
		}
	}
	return mx
}

// OracleSlate greedily assembles the γ-approximate optimal slate using the
// true ω* (the comparator S*_u of Eq. 12).
func (e *Env) OracleSlate(r Round) []int {
	return greedySlate(r, e.K, func(u, v int, ic *topics.IncrementalCoverage) float64 {
		return e.Attraction(e.Feature(u, v, ic))
	}, e)
}

func greedySlate(r Round, k int, score func(u, v int, ic *topics.IncrementalCoverage) float64, e *Env) []int {
	ic := topics.NewIncrementalCoverage(e.M)
	used := make(map[int]bool, k)
	slate := make([]int, 0, k)
	for len(slate) < k && len(slate) < len(r.Pool) {
		best, bestS := -1, math.Inf(-1)
		for _, v := range r.Pool {
			if used[v] {
				continue
			}
			if s := score(r.User, v, ic); s > bestS {
				best, bestS = v, s
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		slate = append(slate, best)
		ic.Add(e.itemCover[best])
	}
	return slate
}

func unitVec(q int, rng *rand.Rand) []float64 {
	v := make([]float64, q)
	for i := range v {
		v[i] = math.Abs(rng.NormFloat64())
	}
	n := mat.NormVec(v)
	for i := range v {
		v[i] /= n
	}
	return v
}

func decreasing(k int, base, decay float64) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = base * math.Pow(decay, float64(i))
	}
	return out
}
