package bandit

import (
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/topics"
)

// Mode selects the algorithm variant for the regret study.
type Mode int

// Algorithm variants.
const (
	// UCB is linear RAPID with optimism: score = ω̂ᵀη + s·‖η‖_{M⁻¹}.
	UCB Mode = iota
	// Greedy drops exploration (s = 0): the regret baseline showing the
	// confidence term is load-bearing.
	Greedy
	// NoPersonal replaces the user's preference features with the uniform
	// distribution — the "diversify equally for everyone" ablation.
	NoPersonal
	// Thompson replaces the optimism bonus with posterior sampling:
	// ω̃ ~ N(ω̂, s²·M⁻¹), scored by ω̃ᵀη. An alternative exploration
	// strategy with the same Õ(√n) behaviour in linear bandits.
	Thompson
)

func (m Mode) String() string {
	switch m {
	case UCB:
		return "RAPID-UCB"
	case Greedy:
		return "greedy"
	case NoPersonal:
		return "non-personalized"
	case Thompson:
		return "RAPID-TS"
	default:
		return "unknown"
	}
}

// LinRAPID is the linearized RAPID learner: ridge regression over the
// per-position features with a confidence ellipsoid, exactly the object
// analyzed in Theorem 5.1. M⁻¹ is maintained by Sherman–Morrison updates so
// each round costs O(K·pool·d²).
type LinRAPID struct {
	Mode Mode
	// S is the exploration scale s of the theorem.
	S float64
	// Rng drives Thompson posterior sampling (lazily seeded when nil).
	Rng *rand.Rand

	d         int
	minv      *mat.Matrix // M⁻¹, d×d
	bvec      []float64   // Σ η·y
	wHat      []float64   // M⁻¹·b, refreshed lazily
	wHatInit  bool
	dirt      bool
	lastSlate []int
	wSample   []float64 // per-round Thompson sample ω̃
}

// NewLinRAPID creates a learner for feature dimension d.
func NewLinRAPID(d int, s float64, mode Mode) *LinRAPID {
	minv := mat.New(d, d)
	for i := 0; i < d; i++ {
		minv.Set(i, i, 1)
	}
	return &LinRAPID{Mode: mode, S: s, d: d, minv: minv, bvec: make([]float64, d), wHat: make([]float64, d)}
}

// SelectSlate greedily builds the slate by UCB score, mirroring the
// paper's top-K-by-upper-confidence-bound re-ranking.
func (l *LinRAPID) SelectSlate(e *Env, r Round) [][]float64 {
	// Returns the features of the chosen slate in order; the slate item
	// IDs are tracked in lastSlate.
	l.refresh()
	if l.Mode == Thompson {
		l.samplePosterior()
	}
	ic := topics.NewIncrementalCoverage(e.M)
	used := make(map[int]bool, e.K)
	l.lastSlate = l.lastSlate[:0]
	feats := make([][]float64, 0, e.K)
	for len(feats) < e.K && len(feats) < len(r.Pool) {
		best, bestS := -1, math.Inf(-1)
		var bestEta []float64
		for _, v := range r.Pool {
			if used[v] {
				continue
			}
			eta := l.feature(e, r.User, v, ic)
			var score float64
			switch l.Mode {
			case Thompson:
				score = mat.Dot(l.wSample, eta)
			case UCB:
				score = mat.Dot(l.wHat, eta) + l.S*math.Sqrt(l.quad(eta))
			default:
				score = mat.Dot(l.wHat, eta)
			}
			if score > bestS {
				best, bestS, bestEta = v, score, eta
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		l.lastSlate = append(l.lastSlate, best)
		feats = append(feats, bestEta)
		ic.Add(e.itemCover[best])
	}
	return feats
}

// lastSlate holds the item IDs chosen by the most recent SelectSlate.
func (l *LinRAPID) LastSlate() []int { return l.lastSlate }

// Update feeds back the DCM clicks. Under the DCM, positions up to the last
// click are known to be examined; later positions after a terminating click
// carry no attraction signal and are skipped, matching the estimation
// protocol of the analysis.
func (l *LinRAPID) Update(feats [][]float64, clicks []bool) {
	last := -1
	for k, c := range clicks {
		if c {
			last = k
		}
	}
	for k, eta := range feats {
		if last >= 0 && k > last {
			break
		}
		y := 0.0
		if k < len(clicks) && clicks[k] {
			y = 1
		}
		l.rankOne(eta)
		for i, x := range eta {
			l.bvec[i] += x * y
		}
	}
	l.dirt = true
}

func (l *LinRAPID) feature(e *Env, u, v int, ic *topics.IncrementalCoverage) []float64 {
	eta := e.Feature(u, v, ic)
	if l.Mode == NoPersonal {
		// Replace pref_u ⊙ ζ with uniform(1/m) ⊙ ζ.
		gain := ic.Gain(e.itemCover[v])
		for j := 0; j < e.M; j++ {
			eta[e.Q+j] = gain[j] / float64(e.M)
		}
	}
	return eta
}

// rankOne applies the Sherman–Morrison update M⁻¹ ← M⁻¹ − (M⁻¹ηηᵀM⁻¹)/(1+ηᵀM⁻¹η).
func (l *LinRAPID) rankOne(eta []float64) {
	u := make([]float64, l.d) // M⁻¹·η
	for i := 0; i < l.d; i++ {
		row := l.minv.Row(i)
		var s float64
		for j, x := range eta {
			s += row[j] * x
		}
		u[i] = s
	}
	denom := 1 + mat.Dot(eta, u)
	for i := 0; i < l.d; i++ {
		row := l.minv.Row(i)
		for j := 0; j < l.d; j++ {
			row[j] -= u[i] * u[j] / denom
		}
	}
}

func (l *LinRAPID) quad(eta []float64) float64 {
	var q float64
	for i := 0; i < l.d; i++ {
		row := l.minv.Row(i)
		var s float64
		for j, x := range eta {
			s += row[j] * x
		}
		q += eta[i] * s
	}
	if q < 0 {
		return 0
	}
	return q
}

func (l *LinRAPID) refresh() {
	if !l.dirt && l.wHatInit {
		return
	}
	for i := 0; i < l.d; i++ {
		row := l.minv.Row(i)
		var s float64
		for j, b := range l.bvec {
			s += row[j] * b
		}
		l.wHat[i] = s
	}
	l.dirt = false
	l.wHatInit = true
}

// samplePosterior draws ω̃ ~ N(ω̂, (S/3)²·M⁻¹) via the Cholesky factor of
// M⁻¹. The S/3 deflation mirrors common practice: the theorem's s is a
// high-probability envelope, far wider than a posterior standard deviation.
func (l *LinRAPID) samplePosterior() {
	if l.Rng == nil {
		l.Rng = rand.New(rand.NewSource(20260705))
	}
	chol := cholesky(l.minv)
	z := make([]float64, l.d)
	for i := range z {
		z[i] = l.Rng.NormFloat64()
	}
	if l.wSample == nil {
		l.wSample = make([]float64, l.d)
	}
	scale := l.S / 3
	for i := 0; i < l.d; i++ {
		s := l.wHat[i]
		row := chol.Row(i)
		for j := 0; j <= i; j++ {
			s += scale * row[j] * z[j]
		}
		l.wSample[i] = s
	}
}

// cholesky returns the lower-triangular factor L with L·Lᵀ = a. The input
// must be symmetric positive definite (M⁻¹ always is); tiny negative
// pivots from round-off are clamped.
func cholesky(a *mat.Matrix) *mat.Matrix {
	n := a.Rows
	l := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s < 1e-12 {
					s = 1e-12
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l
}
