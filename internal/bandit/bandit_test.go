package bandit

import (
	"math"
	"testing"

	"repro/internal/topics"
)

func testEnv(seed int64) *Env {
	return NewEnv(4, 3, 3, 10, 40, 12, seed)
}

func TestEnvInvariants(t *testing.T) {
	e := testEnv(1)
	if n := len(e.OmegaStar); n != e.Q+e.M {
		t.Fatalf("omega* dimension %d", n)
	}
	var norm float64
	for _, w := range e.OmegaStar {
		if w < 0 {
			t.Fatal("omega* should be non-negative in this environment")
		}
		norm += w * w
	}
	if math.Sqrt(norm) > 1 {
		t.Fatalf("‖ω*‖ = %v > 1 violates the theorem's assumption", math.Sqrt(norm))
	}
	for k := 1; k < e.K; k++ {
		if e.Termination[k] > e.Termination[k-1] {
			t.Fatal("termination not non-increasing")
		}
	}
}

func TestFeatureAndAttractionBounds(t *testing.T) {
	e := testEnv(2)
	for trial := 0; trial < 50; trial++ {
		r := e.NextRound()
		ic := topics.NewIncrementalCoverage(e.M)
		for _, v := range r.Pool[:3] {
			eta := e.Feature(r.User, v, ic)
			if len(eta) != e.Q+e.M {
				t.Fatalf("feature length %d", len(eta))
			}
			phi := e.Attraction(eta)
			if phi < 0 || phi > 1 {
				t.Fatalf("attraction %v", phi)
			}
			ic.Add(e.itemCover[v])
		}
	}
}

func TestUtilityBounds(t *testing.T) {
	e := testEnv(3)
	for trial := 0; trial < 20; trial++ {
		r := e.NextRound()
		slate := e.OracleSlate(r)
		u := e.Utility(r.User, slate)
		if u < 0 || u > 1 {
			t.Fatalf("utility %v", u)
		}
	}
}

func TestOracleBeatsRandomSlate(t *testing.T) {
	e := testEnv(4)
	var oracleU, randomU float64
	for trial := 0; trial < 200; trial++ {
		r := e.NextRound()
		oracleU += e.Utility(r.User, e.OracleSlate(r))
		randomU += e.Utility(r.User, r.Pool[:e.K])
	}
	if oracleU <= randomU {
		t.Fatalf("oracle %v not above random %v", oracleU, randomU)
	}
}

func TestShermanMorrisonMatchesDirectInverse(t *testing.T) {
	l := NewLinRAPID(3, 1, UCB)
	etas := [][]float64{{1, 0, 0.5}, {0.2, 0.7, 0.1}, {0.3, 0.3, 0.3}}
	for _, eta := range etas {
		l.rankOne(eta)
	}
	// M = I + Σ ηηᵀ computed directly, then check M·M⁻¹ ≈ I.
	m := [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for _, eta := range etas {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += eta[i] * eta[j]
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m[i][k] * l.minv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-9 {
				t.Fatalf("M·M⁻¹[%d][%d] = %v", i, j, s)
			}
		}
	}
}

func TestQuadFormNonNegative(t *testing.T) {
	l := NewLinRAPID(4, 1, UCB)
	l.rankOne([]float64{0.5, 0.1, 0.2, 0.9})
	for _, eta := range [][]float64{{1, 0, 0, 0}, {0.3, 0.3, 0.3, 0.3}} {
		if q := l.quad(eta); q < 0 {
			t.Fatalf("quadratic form %v < 0", q)
		}
	}
}

func TestLearnerConvergesToOracle(t *testing.T) {
	e := testEnv(5)
	d := e.Q + e.M
	l := NewLinRAPID(d, 0.5, UCB)
	var early, late float64
	const n = 1200
	for round := 1; round <= n; round++ {
		r := e.NextRound()
		feats := l.SelectSlate(e, r)
		slate := l.LastSlate()
		clicks := e.SimulateClicks(r.User, slate)
		l.Update(feats, clicks)
		gap := e.Utility(r.User, e.OracleSlate(r)) - e.Utility(r.User, slate)
		if round <= n/4 {
			early += gap
		} else if round > 3*n/4 {
			late += gap
		}
	}
	if late >= early {
		t.Fatalf("per-round regret did not shrink: early %v late %v", early, late)
	}
}

func TestRegretSublinearExponent(t *testing.T) {
	if testing.Short() {
		t.Skip("regret simulation is slow")
	}
	e := NewEnv(6, 4, 4, 30, 120, 20, 7)
	curve := SimulateRegret(e, UCB, 3000, 150, 0.1)
	if curve.Alpha > 0.85 {
		t.Fatalf("UCB regret exponent %v looks linear", curve.Alpha)
	}
	if curve.Final <= 0 {
		t.Fatal("regret should be positive while learning")
	}
	// Checkpoints must be non-decreasing... cumulative regret can locally
	// dip only if a chosen slate beats the greedy oracle; allow slack.
	prev := math.Inf(-1)
	for _, p := range curve.Points {
		if p.CumRegret < prev-1.0 {
			t.Fatalf("cumulative regret dropped sharply at %d", p.Round)
		}
		if p.CumRegret > prev {
			prev = p.CumRegret
		}
	}
}

func TestUCBOutperformsAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("regret simulation is slow")
	}
	const n = 2500
	ucb := SimulateRegret(NewEnv(6, 4, 4, 30, 120, 20, 9), UCB, n, n/10, 0.1)
	noPers := SimulateRegret(NewEnv(6, 4, 4, 30, 120, 20, 9), NoPersonal, n, n/10, 0.1)
	if ucb.Final >= noPers.Final {
		t.Fatalf("UCB regret %v not below non-personalized %v", ucb.Final, noPers.Final)
	}
}

func TestExplorationScalePositive(t *testing.T) {
	if s := ExplorationScale(1000, 5, 10); s <= 1 {
		t.Fatalf("exploration scale %v", s)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{UCB: "RAPID-UCB", Greedy: "greedy", NoPersonal: "non-personalized"} {
		if m.String() != want {
			t.Fatalf("Mode %d → %q", m, m.String())
		}
	}
}

func TestGammaBounds(t *testing.T) {
	e := testEnv(11)
	phiMax := e.MaxAttraction(50)
	if phiMax <= 0 || phiMax > 1 {
		t.Fatalf("phiMax %v", phiMax)
	}
	g := e.Gamma(phiMax)
	if g <= 0 || g >= 1 {
		t.Fatalf("gamma %v outside (0,1)", g)
	}
	// γ is non-increasing in φ̄max.
	if e.Gamma(0.9) > e.Gamma(0.1) {
		t.Fatal("gamma should shrink as phiMax grows")
	}
	// Floor at (1−1/e)/K.
	if e.Gamma(1) < (1-1/math.E)/float64(e.K)-1e-12 {
		t.Fatalf("gamma %v below its floor", e.Gamma(1))
	}
}

func TestCholeskyFactorization(t *testing.T) {
	l := NewLinRAPID(3, 1, Thompson)
	l.rankOne([]float64{0.4, 0.2, 0.7})
	l.rankOne([]float64{0.1, 0.9, 0.3})
	ch := cholesky(l.minv)
	// Verify L·Lᵀ = M⁻¹.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += ch.At(i, k) * ch.At(j, k)
			}
			if math.Abs(s-l.minv.At(i, j)) > 1e-9 {
				t.Fatalf("L·Lᵀ[%d][%d] = %v, want %v", i, j, s, l.minv.At(i, j))
			}
		}
	}
}

func TestThompsonLearns(t *testing.T) {
	e := testEnv(13)
	d := e.Q + e.M
	l := NewLinRAPID(d, 1.0, Thompson)
	var early, late float64
	const n = 1200
	for round := 1; round <= n; round++ {
		r := e.NextRound()
		feats := l.SelectSlate(e, r)
		slate := l.LastSlate()
		clicks := e.SimulateClicks(r.User, slate)
		l.Update(feats, clicks)
		gap := e.Utility(r.User, e.OracleSlate(r)) - e.Utility(r.User, slate)
		if round <= n/4 {
			early += gap
		} else if round > 3*n/4 {
			late += gap
		}
	}
	if late >= early {
		t.Fatalf("Thompson per-round regret did not shrink: early %v late %v", early, late)
	}
}
