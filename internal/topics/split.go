package topics

import (
	"math/rand"
)

// SplitByTopic partitions a time-ordered behavior history into m per-topic
// sequences T_1…T_m as in Section III-C. history[i] is the index of the
// i-th (oldest-first) interacted item; cover maps an item index to its topic
// coverage vector.
//
// Membership follows the paper: "whether an item belongs to a topic can be
// sampled according to its given topic coverage". For binary coverage this
// is deterministic; for fractional coverage each topic j admits the item
// with probability τ^j. Each output sequence keeps at most the last maxLen
// items (D in the paper). rng may be nil when all coverage is binary.
func SplitByTopic(history []int, cover func(item int) []float64, m, maxLen int, rng *rand.Rand) [][]int {
	seqs := make([][]int, m)
	for _, item := range history {
		tau := cover(item)
		for j := 0; j < m; j++ {
			t := tau[j]
			if t <= 0 {
				continue
			}
			if t >= 1 || rng == nil || rng.Float64() < t {
				seqs[j] = append(seqs[j], item)
			}
		}
	}
	for j := range seqs {
		if len(seqs[j]) > maxLen {
			seqs[j] = seqs[j][len(seqs[j])-maxLen:]
		}
	}
	return seqs
}

// PreferenceFromHistory computes the empirical topic-preference distribution
// of a history: the normalized accumulated coverage mass per topic. This is
// the non-learned analogue of the paper's θ̂, used by the adpMMR baseline
// and for dataset diagnostics (Figure 5).
func PreferenceFromHistory(history []int, cover func(item int) []float64, m int) []float64 {
	pref := make([]float64, m)
	var total float64
	for _, item := range history {
		for j, t := range cover(item) {
			pref[j] += t
			total += t
		}
	}
	if total > 0 {
		for j := range pref {
			pref[j] /= total
		}
	} else {
		u := 1 / float64(m)
		for j := range pref {
			pref[j] = u
		}
	}
	return pref
}
