package topics

import (
	"fmt"
	"math"
)

// DiversityFunction generalizes the diversity machinery of Eqs. (4)–(5):
// any monotone submodular set function over topic coverage can replace the
// probabilistic coverage, as the paper notes ("the probabilistic coverage
// function can be replaced by other submodular diversity functions
// according to the objective of the recommendation scenario").
// Implementations must return, for each listed item, the per-topic marginal
// contribution f(R) − f(R∖{i}).
type DiversityFunction interface {
	Name() string
	// Marginal returns the L×m leave-one-out marginal diversity.
	Marginal(cover [][]float64, m int) [][]float64
	// Total returns Σ_j f_j(G), the scalar diversity of a set.
	Total(cover [][]float64, m int) float64
}

// ProbCoverage is the paper's default: c_j(G) = 1 − Π (1 − τ^j).
type ProbCoverage struct{}

// Name implements DiversityFunction.
func (ProbCoverage) Name() string { return "prob-coverage" }

// Marginal implements DiversityFunction.
func (ProbCoverage) Marginal(cover [][]float64, m int) [][]float64 {
	return MarginalDiversity(cover, m)
}

// Total implements DiversityFunction.
func (ProbCoverage) Total(cover [][]float64, m int) float64 {
	return CoverageTotal(cover, m)
}

// SaturatedCoverage applies a concave saturation to the accumulated topic
// mass: f_j(G) = log(1 + β·Σ_{v∈G} τ_v^j)/log(1+β). It rewards the first
// items of a topic most and keeps rewarding (diminishingly) afterwards —
// a softer alternative to probabilistic coverage, in the family used by
// Yue & Guestrin's linear submodular bandits.
type SaturatedCoverage struct {
	// Beta controls how quickly the reward saturates (default 4).
	Beta float64
}

func (s SaturatedCoverage) beta() float64 {
	if s.Beta <= 0 {
		return 4
	}
	return s.Beta
}

// Name implements DiversityFunction.
func (s SaturatedCoverage) Name() string { return "saturated-coverage" }

// Total implements DiversityFunction.
func (s SaturatedCoverage) Total(cover [][]float64, m int) float64 {
	b := s.beta()
	var total float64
	for j := 0; j < m; j++ {
		var mass float64
		for _, tau := range cover {
			mass += tau[j]
		}
		total += math.Log1p(b*mass) / math.Log1p(b)
	}
	return total
}

// Marginal implements DiversityFunction.
func (s SaturatedCoverage) Marginal(cover [][]float64, m int) [][]float64 {
	b := s.beta()
	norm := math.Log1p(b)
	sums := make([]float64, m)
	for _, tau := range cover {
		for j, t := range tau {
			sums[j] += t
		}
	}
	out := make([][]float64, len(cover))
	for i, tau := range cover {
		d := make([]float64, m)
		for j, t := range tau {
			with := math.Log1p(b*sums[j]) / norm
			without := math.Log1p(b*(sums[j]-t)) / norm
			d[j] = with - without
		}
		out[i] = d
	}
	return out
}

// FacilityLocation scores each topic by its best single item:
// f_j(G) = max_{v∈G} τ_v^j. An item's marginal contribution is how much it
// raises the per-topic maximum over the rest of the list — the classic
// facility-location submodular objective restricted to topic space.
type FacilityLocation struct{}

// Name implements DiversityFunction.
func (FacilityLocation) Name() string { return "facility-location" }

// Total implements DiversityFunction.
func (FacilityLocation) Total(cover [][]float64, m int) float64 {
	var total float64
	for j := 0; j < m; j++ {
		var mx float64
		for _, tau := range cover {
			if tau[j] > mx {
				mx = tau[j]
			}
		}
		total += mx
	}
	return total
}

// Marginal implements DiversityFunction.
func (FacilityLocation) Marginal(cover [][]float64, m int) [][]float64 {
	l := len(cover)
	out := make([][]float64, l)
	if l == 0 {
		return out
	}
	// Track the largest and second-largest value per topic so each
	// leave-one-out maximum is O(1).
	best := make([]float64, m)
	second := make([]float64, m)
	argbest := make([]int, m)
	for j := 0; j < m; j++ {
		argbest[j] = -1
	}
	for i, tau := range cover {
		for j, t := range tau {
			if t > best[j] {
				second[j] = best[j]
				best[j] = t
				argbest[j] = i
			} else if t > second[j] {
				second[j] = t
			}
		}
	}
	for i := range cover {
		d := make([]float64, m)
		for j := 0; j < m; j++ {
			if argbest[j] == i {
				d[j] = best[j] - second[j]
			}
		}
		out[i] = d
	}
	return out
}

// DiversityFunctionByName resolves the registry used by configs and the
// ablation harness.
func DiversityFunctionByName(name string) (DiversityFunction, error) {
	switch name {
	case "", "prob-coverage":
		return ProbCoverage{}, nil
	case "saturated-coverage":
		return SaturatedCoverage{}, nil
	case "facility-location":
		return FacilityLocation{}, nil
	default:
		return nil, fmt.Errorf("topics: unknown diversity function %q", name)
	}
}
