// Package topics implements the topic machinery of the paper: the
// probabilistic coverage function c(·) of Eq. (4), the marginal diversity of
// Eq. (5), per-topic splitting of behavior histories (Section III-C), and a
// Gaussian-mixture clustering used to derive topic coverage for datasets
// whose raw category space is large (the Taobao setup clusters 9,439
// categories into 5 topics).
package topics

import (
	"fmt"
)

// Coverage computes the probabilistic coverage vector c(G) of a set of
// items, where cover[i] is the m-dimensional topic coverage τ of the i-th
// item: c_j(G) = 1 − Π_{v∈G} (1 − τ_v^j). The result has length m.
//
// Coverage is monotone and submodular in G, the properties the paper's
// greedy analysis (Theorem 5.1) relies on; both are property-tested.
func Coverage(cover [][]float64, m int) []float64 {
	c := make([]float64, m)
	remain := make([]float64, m)
	for j := range remain {
		remain[j] = 1
	}
	for _, tau := range cover {
		if len(tau) != m {
			panic(fmt.Sprintf("topics: item coverage has %d topics, want %d", len(tau), m))
		}
		for j, t := range tau {
			remain[j] *= 1 - t
		}
	}
	for j := range c {
		c[j] = 1 - remain[j]
	}
	return c
}

// CoverageTotal returns Σ_j c_j(G), the expected number of covered topics —
// the div@k quantity of Section IV-B2 for a single list.
func CoverageTotal(cover [][]float64, m int) float64 {
	var s float64
	for _, c := range Coverage(cover, m) {
		s += c
	}
	return s
}

// MarginalDiversity computes d_R(R(i)) of Eq. (5) for every item in the
// list: the per-topic difference between the coverage of the full list and
// the coverage with item i removed. The result is an L×m slice with entries
// in [0, 1].
//
// Rather than recomputing the product for every leave-one-out subset (an
// O(L²m) loop), it uses prefix/suffix products of (1−τ) per topic, which is
// O(Lm) and numerically identical.
func MarginalDiversity(cover [][]float64, m int) [][]float64 {
	l := len(cover)
	out := make([][]float64, l)
	if l == 0 {
		return out
	}
	// prefix[i][j] = Π_{v<i} (1−τ_v^j); suffix[i][j] = Π_{v>i} (1−τ_v^j).
	prefix := make([][]float64, l+1)
	suffix := make([][]float64, l+1)
	prefix[0] = ones(m)
	for i := 0; i < l; i++ {
		p := make([]float64, m)
		for j := 0; j < m; j++ {
			p[j] = prefix[i][j] * (1 - cover[i][j])
		}
		prefix[i+1] = p
	}
	suffix[l] = ones(m)
	for i := l - 1; i >= 0; i-- {
		s := make([]float64, m)
		for j := 0; j < m; j++ {
			s[j] = suffix[i+1][j] * (1 - cover[i][j])
		}
		suffix[i] = s
	}
	for i := 0; i < l; i++ {
		d := make([]float64, m)
		for j := 0; j < m; j++ {
			// c_j(R) − c_j(R∖i) = Π_{v≠i}(1−τ) − Π_v(1−τ)
			without := prefix[i][j] * suffix[i+1][j]
			with := without * (1 - cover[i][j])
			d[j] = without - with // = τ_i^j · Π_{v≠i}(1−τ_v^j)
		}
		out[i] = d
	}
	return out
}

// IncrementalCoverage tracks the coverage of a growing list so greedy
// re-rankers (MMR-family, the bandit oracle) can query the gain of adding an
// item in O(m).
type IncrementalCoverage struct {
	m      int
	remain []float64 // Π (1−τ_v^j) over added items
}

// NewIncrementalCoverage returns an empty tracker over m topics.
func NewIncrementalCoverage(m int) *IncrementalCoverage {
	return &IncrementalCoverage{m: m, remain: ones(m)}
}

// Gain returns the per-topic coverage increase Σ-free vector ζ(v) obtained
// by adding an item with coverage tau: ζ_j = remain_j · τ_j.
func (ic *IncrementalCoverage) Gain(tau []float64) []float64 {
	g := make([]float64, ic.m)
	for j, t := range tau {
		g[j] = ic.remain[j] * t
	}
	return g
}

// GainTotal returns Σ_j Gain(tau)_j.
func (ic *IncrementalCoverage) GainTotal(tau []float64) float64 {
	var s float64
	for j, t := range tau {
		s += ic.remain[j] * t
	}
	return s
}

// Add commits an item to the covered set.
func (ic *IncrementalCoverage) Add(tau []float64) {
	for j, t := range tau {
		ic.remain[j] *= 1 - t
	}
}

// Coverage returns the current coverage vector c(G).
func (ic *IncrementalCoverage) Coverage() []float64 {
	c := make([]float64, ic.m)
	for j, r := range ic.remain {
		c[j] = 1 - r
	}
	return c
}

// Clone returns an independent copy of the tracker.
func (ic *IncrementalCoverage) Clone() *IncrementalCoverage {
	return &IncrementalCoverage{m: ic.m, remain: append([]float64(nil), ic.remain...)}
}

func ones(m int) []float64 {
	o := make([]float64, m)
	for i := range o {
		o[i] = 1
	}
	return o
}
