package topics

import (
	"math"
	"math/rand"
)

// GMM is a Gaussian mixture model with diagonal covariance, fit by
// expectation-maximization. The Taobao experimental setup uses a GMM to
// cluster thousands of raw categories (represented as embedding vectors)
// into m topics; the per-component responsibilities then serve directly as
// the probabilistic topic coverage τ of Eq. (4)'s footnote.
type GMM struct {
	K       int         // number of components (topics)
	Dim     int         // feature dimension
	Weights []float64   // mixing weights, length K
	Means   [][]float64 // K × Dim
	Vars    [][]float64 // K × Dim diagonal variances
}

// FitGMM runs EM on the points (n × dim) for the given number of iterations
// and returns the fitted mixture. Means are initialized by sampling distinct
// points (k-means++-style seeding by distance), variances to the data
// variance. The fit is deterministic given rng.
func FitGMM(points [][]float64, k, iters int, rng *rand.Rand) *GMM {
	n := len(points)
	if n == 0 || k <= 0 {
		panic("topics: FitGMM needs points and k > 0")
	}
	dim := len(points[0])
	g := &GMM{K: k, Dim: dim}
	g.Weights = make([]float64, k)
	g.Means = make([][]float64, k)
	g.Vars = make([][]float64, k)

	// Global variance for initialization and as a variance floor.
	globalVar := make([]float64, dim)
	mean := make([]float64, dim)
	for _, p := range points {
		for d, v := range p {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(n)
	}
	for _, p := range points {
		for d, v := range p {
			diff := v - mean[d]
			globalVar[d] += diff * diff
		}
	}
	for d := range globalVar {
		globalVar[d] = globalVar[d]/float64(n) + 1e-6
	}

	// k-means++ style seeding.
	first := rng.Intn(n)
	g.Means[0] = append([]float64(nil), points[first]...)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(points[i], g.Means[0])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, d := range minDist {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		g.Means[c] = append([]float64(nil), points[pick]...)
		for i := range minDist {
			if d := sqDist(points[i], g.Means[c]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	for c := 0; c < k; c++ {
		g.Weights[c] = 1 / float64(k)
		g.Vars[c] = append([]float64(nil), globalVar...)
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for it := 0; it < iters; it++ {
		// E-step: responsibilities via log-sum-exp.
		for i, p := range points {
			logp := make([]float64, k)
			mx := math.Inf(-1)
			for c := 0; c < k; c++ {
				lp := math.Log(g.Weights[c]+1e-12) + g.logGauss(c, p)
				logp[c] = lp
				if lp > mx {
					mx = lp
				}
			}
			var sum float64
			for c := range logp {
				logp[c] = math.Exp(logp[c] - mx)
				sum += logp[c]
			}
			for c := range logp {
				resp[i][c] = logp[c] / sum
			}
		}
		// M-step.
		for c := 0; c < k; c++ {
			var nc float64
			mu := make([]float64, dim)
			for i, p := range points {
				r := resp[i][c]
				nc += r
				for d, v := range p {
					mu[d] += r * v
				}
			}
			if nc < 1e-9 {
				// Dead component: re-seed on a random point.
				g.Means[c] = append([]float64(nil), points[rng.Intn(n)]...)
				g.Vars[c] = append([]float64(nil), globalVar...)
				g.Weights[c] = 1e-6
				continue
			}
			for d := range mu {
				mu[d] /= nc
			}
			va := make([]float64, dim)
			for i, p := range points {
				r := resp[i][c]
				for d, v := range p {
					diff := v - mu[d]
					va[d] += r * diff * diff
				}
			}
			for d := range va {
				va[d] = va[d]/nc + 1e-6
			}
			g.Means[c] = mu
			g.Vars[c] = va
			g.Weights[c] = nc / float64(n)
		}
	}
	return g
}

// Responsibilities returns the posterior p(component | point) vector, which
// doubles as a probabilistic topic coverage (entries in [0,1], summing to 1).
func (g *GMM) Responsibilities(p []float64) []float64 {
	logp := make([]float64, g.K)
	mx := math.Inf(-1)
	for c := 0; c < g.K; c++ {
		lp := math.Log(g.Weights[c]+1e-12) + g.logGauss(c, p)
		logp[c] = lp
		if lp > mx {
			mx = lp
		}
	}
	var sum float64
	for c := range logp {
		logp[c] = math.Exp(logp[c] - mx)
		sum += logp[c]
	}
	for c := range logp {
		logp[c] /= sum
	}
	return logp
}

// Assign returns the most likely component for p.
func (g *GMM) Assign(p []float64) int {
	r := g.Responsibilities(p)
	best, bestV := 0, r[0]
	for c, v := range r[1:] {
		if v > bestV {
			best, bestV = c+1, v
		}
	}
	return best
}

func (g *GMM) logGauss(c int, p []float64) float64 {
	var lp float64
	mu, va := g.Means[c], g.Vars[c]
	for d, v := range p {
		diff := v - mu[d]
		lp += -0.5*math.Log(2*math.Pi*va[d]) - diff*diff/(2*va[d])
	}
	return lp
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
