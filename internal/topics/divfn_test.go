package topics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allDivFns() []DiversityFunction {
	return []DiversityFunction{ProbCoverage{}, SaturatedCoverage{}, FacilityLocation{}}
}

func TestDiversityFunctionByName(t *testing.T) {
	for _, name := range []string{"", "prob-coverage", "saturated-coverage", "facility-location"} {
		if _, err := DiversityFunctionByName(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := DiversityFunctionByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestMarginalMatchesLeaveOneOut verifies Marginal against the defining
// identity f(R) − f(R∖{i}) computed through Total, for every function.
func TestMarginalMatchesLeaveOneOut(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, fn := range allDivFns() {
		for trial := 0; trial < 25; trial++ {
			m := 1 + rng.Intn(4)
			n := 1 + rng.Intn(7)
			cover := randCover(rng, n, m)
			marg := fn.Marginal(cover, m)
			full := fn.Total(cover, m)
			for i := 0; i < n; i++ {
				without := make([][]float64, 0, n-1)
				without = append(without, cover[:i]...)
				without = append(without, cover[i+1:]...)
				var sum float64
				for _, v := range marg[i] {
					sum += v
				}
				want := full - fn.Total(without, m)
				if math.Abs(sum-want) > 1e-9 {
					t.Fatalf("%s: item %d marginal %v vs leave-one-out %v", fn.Name(), i, sum, want)
				}
			}
		}
	}
}

// TestDivFnMonotone: adding an item never decreases Total.
func TestDivFnMonotone(t *testing.T) {
	for _, fn := range allDivFns() {
		fn := fn
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			m := 1 + rng.Intn(4)
			set := randCover(rng, 1+rng.Intn(5), m)
			extended := append(append([][]float64{}, set...), randCover(rng, 1, m)...)
			return fn.Total(extended, m) >= fn.Total(set, m)-1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", fn.Name(), err)
		}
	}
}

// TestDivFnSubmodular: the gain of an item shrinks as the set grows.
func TestDivFnSubmodular(t *testing.T) {
	for _, fn := range allDivFns() {
		fn := fn
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			m := 1 + rng.Intn(4)
			small := randCover(rng, 1+rng.Intn(4), m)
			big := append(append([][]float64{}, small...), randCover(rng, 1+rng.Intn(3), m)...)
			v := randCover(rng, 1, m)[0]
			gainSmall := fn.Total(append(append([][]float64{}, small...), v), m) - fn.Total(small, m)
			gainBig := fn.Total(append(append([][]float64{}, big...), v), m) - fn.Total(big, m)
			return gainBig <= gainSmall+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", fn.Name(), err)
		}
	}
}

func TestMarginalNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, fn := range allDivFns() {
		for trial := 0; trial < 20; trial++ {
			m := 1 + rng.Intn(4)
			cover := randCover(rng, 1+rng.Intn(6), m)
			for _, row := range fn.Marginal(cover, m) {
				for _, v := range row {
					if v < -1e-12 {
						t.Fatalf("%s: negative marginal %v", fn.Name(), v)
					}
				}
			}
		}
	}
}

func TestFacilityLocationSecondBest(t *testing.T) {
	// Removing the per-topic leader must fall back to the runner-up.
	cover := [][]float64{{0.9, 0.1}, {0.5, 0.8}, {0.2, 0.7}}
	fl := FacilityLocation{}
	marg := fl.Marginal(cover, 2)
	if math.Abs(marg[0][0]-(0.9-0.5)) > 1e-12 {
		t.Fatalf("leader marginal %v, want 0.4", marg[0][0])
	}
	if marg[2][0] != 0 || math.Abs(marg[1][1]-(0.8-0.7)) > 1e-12 {
		t.Fatalf("marginals %v", marg)
	}
}

func TestSaturatedCoverageBetaDefault(t *testing.T) {
	s := SaturatedCoverage{}
	if s.beta() != 4 {
		t.Fatalf("default beta %v", s.beta())
	}
	s2 := SaturatedCoverage{Beta: 9}
	if s2.beta() != 9 {
		t.Fatalf("explicit beta %v", s2.beta())
	}
	// Saturation: the second identical item adds strictly less.
	tau := [][]float64{{0.5}}
	one := s.Total(tau, 1)
	two := s.Total([][]float64{{0.5}, {0.5}}, 1)
	if two-one >= one {
		t.Fatalf("no saturation: first %v second %v", one, two-one)
	}
}
