package topics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randCover(rng *rand.Rand, n, m int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		c := make([]float64, m)
		for j := range c {
			c[j] = rng.Float64()
		}
		out[i] = c
	}
	return out
}

func TestCoverageBasic(t *testing.T) {
	cover := [][]float64{{1, 0}, {0, 0.5}}
	c := Coverage(cover, 2)
	if c[0] != 1 || math.Abs(c[1]-0.5) > 1e-12 {
		t.Fatalf("Coverage = %v", c)
	}
	if got := CoverageTotal(cover, 2); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("CoverageTotal = %v", got)
	}
}

func TestCoverageEmpty(t *testing.T) {
	c := Coverage(nil, 3)
	for _, v := range c {
		if v != 0 {
			t.Fatalf("empty coverage %v", c)
		}
	}
}

func TestCoverageWrongDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong topic dimension did not panic")
		}
	}()
	Coverage([][]float64{{0.5}}, 2)
}

// Property: coverage is monotone — adding an item never decreases any
// component — and bounded in [0, 1].
func TestCoverageMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		set := randCover(rng, 1+rng.Intn(6), m)
		base := Coverage(set, m)
		extended := Coverage(append(set, randCover(rng, 1, m)...), m)
		for j := 0; j < m; j++ {
			if extended[j] < base[j]-1e-12 || extended[j] > 1+1e-12 || base[j] < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: coverage is submodular — the gain of adding an item to a
// superset never exceeds the gain of adding it to a subset.
func TestCoverageSubmodularProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		small := randCover(rng, 1+rng.Intn(4), m)
		extra := randCover(rng, 1+rng.Intn(3), m)
		big := append(append([][]float64{}, small...), extra...)
		v := randCover(rng, 1, m)[0]
		gainSmall := CoverageTotal(append(append([][]float64{}, small...), v), m) - CoverageTotal(small, m)
		gainBig := CoverageTotal(append(append([][]float64{}, big...), v), m) - CoverageTotal(big, m)
		return gainBig <= gainSmall+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalDiversityMatchesDefinition(t *testing.T) {
	// Eq. (5): d_R(R(i)) = c(R) − c(R∖{R(i)}), checked against the naive
	// leave-one-out computation.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(5)
		n := 1 + rng.Intn(8)
		cover := randCover(rng, n, m)
		fast := MarginalDiversity(cover, m)
		full := Coverage(cover, m)
		for i := 0; i < n; i++ {
			without := make([][]float64, 0, n-1)
			without = append(without, cover[:i]...)
			without = append(without, cover[i+1:]...)
			cwo := Coverage(without, m)
			for j := 0; j < m; j++ {
				want := full[j] - cwo[j]
				if math.Abs(fast[i][j]-want) > 1e-9 {
					t.Fatalf("trial %d item %d topic %d: fast %v naive %v", trial, i, j, fast[i][j], want)
				}
			}
		}
	}
}

func TestMarginalDiversityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		cover := randCover(rng, 1+rng.Intn(6), m)
		for _, d := range MarginalDiversity(cover, m) {
			for _, v := range d {
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalDiversityEmpty(t *testing.T) {
	if got := MarginalDiversity(nil, 3); len(got) != 0 {
		t.Fatalf("empty marginal diversity = %v", got)
	}
}

func TestIncrementalCoverageMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := 4
	cover := randCover(rng, 6, m)
	ic := NewIncrementalCoverage(m)
	for i, tau := range cover {
		// Gain must equal the batch coverage difference.
		before := Coverage(cover[:i], m)
		after := Coverage(cover[:i+1], m)
		gain := ic.Gain(tau)
		var wantTotal float64
		for j := 0; j < m; j++ {
			want := after[j] - before[j]
			if math.Abs(gain[j]-want) > 1e-9 {
				t.Fatalf("item %d topic %d: incremental gain %v, batch %v", i, j, gain[j], want)
			}
			wantTotal += want
		}
		if math.Abs(ic.GainTotal(tau)-wantTotal) > 1e-9 {
			t.Fatalf("GainTotal mismatch at %d", i)
		}
		ic.Add(tau)
	}
	final := Coverage(cover, m)
	for j, v := range ic.Coverage() {
		if math.Abs(v-final[j]) > 1e-9 {
			t.Fatalf("final coverage mismatch at topic %d", j)
		}
	}
}

func TestIncrementalCoverageClone(t *testing.T) {
	ic := NewIncrementalCoverage(2)
	ic.Add([]float64{0.5, 0})
	cl := ic.Clone()
	cl.Add([]float64{0.5, 0.5})
	if math.Abs(ic.Coverage()[0]-0.5) > 1e-12 {
		t.Fatal("Clone shares state with source")
	}
}

func TestSplitByTopicBinary(t *testing.T) {
	cover := map[int][]float64{
		0: {1, 0}, 1: {0, 1}, 2: {1, 0}, 3: {1, 0},
	}
	hist := []int{0, 1, 2, 3}
	seqs := SplitByTopic(hist, func(v int) []float64 { return cover[v] }, 2, 10, nil)
	if len(seqs[0]) != 3 || len(seqs[1]) != 1 {
		t.Fatalf("split = %v", seqs)
	}
	// Time order preserved.
	if seqs[0][0] != 0 || seqs[0][2] != 3 {
		t.Fatalf("topic 0 order = %v", seqs[0])
	}
}

func TestSplitByTopicTruncation(t *testing.T) {
	hist := make([]int, 20)
	for i := range hist {
		hist[i] = i
	}
	seqs := SplitByTopic(hist, func(int) []float64 { return []float64{1} }, 1, 5, nil)
	if len(seqs[0]) != 5 {
		t.Fatalf("truncated length %d, want 5", len(seqs[0]))
	}
	// Keeps the most recent entries.
	if seqs[0][0] != 15 || seqs[0][4] != 19 {
		t.Fatalf("kept %v, want the last five", seqs[0])
	}
}

func TestSplitByTopicFractionalSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	hist := make([]int, 2000)
	seqs := SplitByTopic(hist, func(int) []float64 { return []float64{0.3} }, 1, 1<<30, rng)
	frac := float64(len(seqs[0])) / 2000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("τ=0.3 membership rate %v", frac)
	}
}

func TestPreferenceFromHistory(t *testing.T) {
	cover := map[int][]float64{0: {1, 0}, 1: {0, 1}}
	pref := PreferenceFromHistory([]int{0, 0, 0, 1}, func(v int) []float64 { return cover[v] }, 2)
	if math.Abs(pref[0]-0.75) > 1e-12 || math.Abs(pref[1]-0.25) > 1e-12 {
		t.Fatalf("pref = %v", pref)
	}
	// Empty history → uniform.
	uni := PreferenceFromHistory(nil, func(v int) []float64 { return cover[v] }, 2)
	if math.Abs(uni[0]-0.5) > 1e-12 {
		t.Fatalf("empty-history pref = %v", uni)
	}
}

func TestGMMRecoverySeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	centers := [][]float64{{-5, -5}, {5, 5}, {5, -5}}
	var pts [][]float64
	labels := make([]int, 0)
	for c, ctr := range centers {
		for i := 0; i < 60; i++ {
			pts = append(pts, []float64{ctr[0] + rng.NormFloat64()*0.4, ctr[1] + rng.NormFloat64()*0.4})
			labels = append(labels, c)
		}
	}
	gmm := FitGMM(pts, 3, 30, rng)
	// Cluster assignments must be consistent within a true cluster.
	assign := make(map[int]int)
	errors := 0
	for i, p := range pts {
		a := gmm.Assign(p)
		if want, ok := assign[labels[i]]; ok {
			if a != want {
				errors++
			}
		} else {
			assign[labels[i]] = a
		}
	}
	if errors > 5 {
		t.Fatalf("GMM misassigned %d/180 points on well-separated clusters", errors)
	}
	// Distinct clusters map to distinct components.
	seen := map[int]bool{}
	for _, a := range assign {
		if seen[a] {
			t.Fatal("two true clusters mapped to one component")
		}
		seen[a] = true
	}
}

func TestGMMResponsibilitiesAreDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randCover(rng, 50, 3)
	gmm := FitGMM(pts, 4, 10, rng)
	for _, p := range pts {
		r := gmm.Responsibilities(p)
		var sum float64
		for _, v := range r {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("responsibility %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("responsibilities sum to %v", sum)
		}
	}
}

func TestGMMEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FitGMM with no points did not panic")
		}
	}()
	FitGMM(nil, 2, 5, rand.New(rand.NewSource(1)))
}
