package metrics

import "math"

// ILDAtK is the intra-list distance of the top-k items: the mean pairwise
// Euclidean distance between their feature vectors. It is the standard
// content-based diversity measure reported alongside div@k in the
// diversified-ranking literature — higher means the head of the list spreads
// wider in feature space. Lists with fewer than two items have no pairs and
// score 0. Feature vectors of unequal length are compared over their common
// prefix (the caller is expected to pass a rectangular matrix; this just
// keeps the metric total).
func ILDAtK(feats [][]float64, k int) float64 {
	if k > len(feats) {
		k = len(feats)
	}
	if k < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += euclid(feats[i], feats[j])
		}
	}
	pairs := float64(k*(k-1)) / 2
	return sum / pairs
}

func euclid(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AlphaDCGAtK computes the α-DCG of a ranked list given per-item, per-topic
// relevance rel[i][t] ≥ 0. The gain of the item at rank i is
//
//	Σ_t rel[i][t] · (1−α)^{count of topic-t relevance already seen}
//
// discounted by 1/log2(i+2): repeated coverage of a topic decays
// geometrically, so a list that keeps hitting the same topic earns less than
// one that spreads across topics. α=0 degenerates to plain DCG over summed
// relevance; α→1 rewards only the first hit per topic.
func AlphaDCGAtK(rel [][]float64, alpha float64, k int) float64 {
	if k > len(rel) {
		k = len(rel)
	}
	seen := make([]float64, topicCount(rel))
	var dcg float64
	for i := 0; i < k; i++ {
		dcg += alphaGain(rel[i], seen, alpha) / math.Log2(float64(i)+2)
		for t, r := range rel[i] {
			if r > 0 {
				seen[t]++
			}
		}
	}
	return dcg
}

// AlphaNDCGAtK normalizes AlphaDCGAtK by the α-DCG of a greedily built ideal
// ordering of the same items. Computing the exact ideal is NP-hard (it is a
// weighted coverage problem), so — as is standard for this metric — the
// ideal is the greedy one: at each rank pick the remaining item with the
// largest marginal α-gain. Greedy is not guaranteed optimal, so the ratio is
// clamped to 1; the result is always in [0, 1].
func AlphaNDCGAtK(rel [][]float64, alpha float64, k int) float64 {
	if len(rel) == 0 || k <= 0 {
		return 0
	}
	ideal := AlphaDCGAtK(greedyIdeal(rel, alpha, k), alpha, k)
	if ideal == 0 {
		return 0
	}
	v := AlphaDCGAtK(rel, alpha, k) / ideal
	if v > 1 {
		v = 1
	}
	return v
}

// greedyIdeal reorders rel so that each of the first k ranks holds the
// remaining item with the largest marginal α-gain (position discounts are
// monotone, so ranking marginal gains descending is the greedy optimum).
// Ties break toward the earlier original index, which keeps the ideal
// deterministic.
func greedyIdeal(rel [][]float64, alpha float64, k int) [][]float64 {
	if k > len(rel) {
		k = len(rel)
	}
	pool := append([][]float64(nil), rel...)
	seen := make([]float64, topicCount(rel))
	out := make([][]float64, 0, len(rel))
	for len(out) < k {
		best, bestGain := 0, math.Inf(-1)
		for i, item := range pool {
			if g := alphaGain(item, seen, alpha); g > bestGain {
				best, bestGain = i, g
			}
		}
		pick := pool[best]
		pool = append(pool[:best], pool[best+1:]...)
		out = append(out, pick)
		for t, r := range pick {
			if r > 0 {
				seen[t]++
			}
		}
	}
	return append(out, pool...)
}

// alphaGain is one item's novelty-discounted gain given how often each topic
// has already been covered.
func alphaGain(item []float64, seen []float64, alpha float64) float64 {
	var g float64
	for t, r := range item {
		if t < len(seen) {
			g += r * math.Pow(1-alpha, seen[t])
		} else {
			g += r
		}
	}
	return g
}

func topicCount(rel [][]float64) int {
	m := 0
	for _, r := range rel {
		if len(r) > m {
			m = len(r)
		}
	}
	return m
}
