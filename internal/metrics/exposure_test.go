package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGiniKnownValues(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all zero", []float64{0, 0, 0}, 0},
		{"uniform", []float64{3, 3, 3, 3}, 0},
		{"single item", []float64{7}, 0},
		// All exposure on one of n items: G = (n−1)/n.
		{"concentrated", []float64{0, 0, 0, 10}, 0.75},
		// {1,3}: mean-difference form gives 0.25.
		{"two unequal", []float64{1, 3}, 0.25},
	}
	for _, c := range cases {
		if got := Gini(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Gini(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGiniHostileInput(t *testing.T) {
	in := []float64{math.NaN(), math.Inf(1), -5, 2, 2}
	got := Gini(in)
	if math.IsNaN(got) || got < 0 || got > 1 {
		t.Fatalf("Gini on hostile input = %v, want finite in [0,1]", got)
	}
}

func TestGiniRangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		g := Gini(raw)
		return !math.IsNaN(g) && g >= 0 && g <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGiniPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(raw []float64) bool {
		perm := make([]float64, len(raw))
		copy(perm, raw)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		a, b := Gini(raw), Gini(perm)
		return a == b || math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLongTailShare(t *testing.T) {
	isTail := func(v int) bool { return v >= 100 }
	ranked := []int{1, 100, 2, 101, 3}
	if got := LongTailShare(ranked, isTail, 4); got != 0.5 {
		t.Errorf("LongTailShare = %v, want 0.5", got)
	}
	if got := LongTailShare(ranked, isTail, 10); got != 0.4 {
		t.Errorf("LongTailShare k>n = %v, want 0.4", got)
	}
	if got := LongTailShare(nil, isTail, 5); got != 0 {
		t.Errorf("LongTailShare(empty) = %v, want 0", got)
	}
}

func TestNoveltyAtK(t *testing.T) {
	pop := func(v int) float64 {
		switch v {
		case 1:
			return 0.5
		case 2:
			return 0.25
		default:
			return 0 // unknown popularity contributes nothing
		}
	}
	// (−log2 0.5 − log2 0.25)/2 = (1+2)/2.
	if got := NoveltyAtK([]int{1, 2}, pop, 2); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("NoveltyAtK = %v, want 1.5", got)
	}
	if got := NoveltyAtK([]int{3, 3}, pop, 2); got != 0 {
		t.Errorf("NoveltyAtK(zero pop) = %v, want 0", got)
	}
	if got := NoveltyAtK(nil, pop, 3); got != 0 {
		t.Errorf("NoveltyAtK(empty) = %v, want 0", got)
	}
}
