package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// qc runs f as a testing/quick property with a fixed iteration budget; each
// invocation gets an independent seed so failures print a reproducible input.
func qc(t *testing.T, f func(seed int64) bool) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randMatrix(rng *rand.Rand, rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.Float64()
		}
	}
	return m
}

func permuted(rng *rand.Rand, m [][]float64) [][]float64 {
	p := append([][]float64(nil), m...)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// ILD over the full list is a mean over unordered pairs: permuting the items
// must not change it, and it is always non-negative.
func TestILDPermutationInvariant(t *testing.T) {
	qc(t, func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 2+rng.Intn(8), 1+rng.Intn(5)
		feats := randMatrix(rng, n, d)
		a := ILDAtK(feats, n)
		b := ILDAtK(permuted(rng, feats), n)
		return a >= 0 && math.Abs(a-b) < 1e-9
	})
}

// A list of identical items has zero spread at every cutoff.
func TestILDIdenticalItemsZero(t *testing.T) {
	qc(t, func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 2+rng.Intn(8), 1+rng.Intn(5)
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		feats := make([][]float64, n)
		for i := range feats {
			feats[i] = row
		}
		for k := 0; k <= n; k++ {
			if ILDAtK(feats, k) != 0 {
				return false
			}
		}
		return true
	})
}

// div@k over the full list is Eq. (4)'s coverage, a product over items per
// topic — reordering the list must leave it unchanged.
func TestDivPermutationInvariant(t *testing.T) {
	qc(t, func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(8), 1+rng.Intn(6)
		cover := randMatrix(rng, n, m)
		a := DivAtK(cover, m, n)
		b := DivAtK(permuted(rng, cover), m, n)
		return math.Abs(a-b) < 1e-9
	})
}

// α-NDCG is a clamped ratio to the greedy ideal: always in [0, 1], and a
// list already in greedy-ideal order scores exactly 1 (its α-DCG IS the
// normalizer).
func TestAlphaNDCGRange(t *testing.T) {
	qc(t, func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(8), 1+rng.Intn(6)
		rel := randMatrix(rng, n, m)
		alpha := rng.Float64()
		k := 1 + rng.Intn(n)
		v := AlphaNDCGAtK(rel, alpha, k)
		if v < 0 || v > 1 {
			return false
		}
		ideal := greedyIdeal(rel, alpha, k)
		return math.Abs(AlphaNDCGAtK(ideal, alpha, k)-1) < 1e-9
	})
}

// With α = 0 novelty never decays, so the gain of an item is just its summed
// relevance and α-DCG must agree with plain DCG over those sums.
func TestAlphaDCGDegeneratesToDCG(t *testing.T) {
	qc(t, func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(8), 1+rng.Intn(6)
		rel := randMatrix(rng, n, m)
		k := 1 + rng.Intn(n)
		sums := make([]float64, n)
		for i, r := range rel {
			for _, v := range r {
				sums[i] += v
			}
		}
		return math.Abs(AlphaDCGAtK(rel, 0, k)-dcgAtK(sums, k)) < 1e-9
	})
}

// Repeating one fully relevant item: with α ∈ (0,1) the second copy earns
// strictly less than a fresh topic would, so a two-topic spread must beat
// the repeat under α-DCG.
func TestAlphaDCGRewardsSpread(t *testing.T) {
	qc(t, func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.05 + 0.9*rng.Float64()
		repeat := [][]float64{{1, 0}, {1, 0}}
		spread := [][]float64{{1, 0}, {0, 1}}
		return AlphaDCGAtK(spread, alpha, 2) > AlphaDCGAtK(repeat, alpha, 2)
	})
}

// ILDAtK must clamp the cutoff: k beyond the list length scores like the
// full list, and k < 2 has no pairs.
func TestILDCutoffClamps(t *testing.T) {
	feats := [][]float64{{0, 0}, {3, 4}, {6, 8}}
	if got := ILDAtK(feats, 10); got != ILDAtK(feats, 3) {
		t.Fatalf("k>len: got %v, want full-list value", got)
	}
	if got := ILDAtK(feats, 1); got != 0 {
		t.Fatalf("k=1: got %v, want 0", got)
	}
	// 3 pairs with distances 5, 10, 5 → mean 20/3.
	if got, want := ILDAtK(feats, 3), 20.0/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ILD = %v, want %v", got, want)
	}
}
