package metrics

import (
	"math"
)

// TTestResult reports a two-sample comparison.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest runs Welch's unequal-variance t-test between samples a and b
// (two-sided). The paper's tables mark improvements significant at p<0.05.
func WelchTTest(a, b []float64) TTestResult {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return TTestResult{P: 1}
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		if ma == mb {
			return TTestResult{P: 1}
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	return TTestResult{T: t, DF: df, P: studentTwoSidedP(t, df)}
}

// PairedTTest runs a paired t-test on equal-length samples — the right test
// when both systems are evaluated on the same requests.
func PairedTTest(a, b []float64) TTestResult {
	if len(a) != len(b) || len(a) < 2 {
		return TTestResult{P: 1}
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	n := float64(len(diffs))
	m := Mean(diffs)
	v := Variance(diffs)
	if v == 0 {
		if m == 0 {
			return TTestResult{P: 1}
		}
		return TTestResult{T: math.Inf(sign(m)), DF: n - 1, P: 0}
	}
	t := m / math.Sqrt(v/n)
	df := n - 1
	return TTestResult{T: t, DF: df, P: studentTwoSidedP(t, df)}
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTwoSidedP returns P(|T| > |t|) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function:
// p = I_{df/(df+t²)}(df/2, 1/2).
func studentTwoSidedP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes §6.4, Lentz's
// method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	frontSym := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta) / b
	return 1 - frontSym*betaCF(b, a, 1-x)
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-12
		tiny    = 1e-30
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
