// Package metrics implements the evaluation measures of Section IV-B2 —
// click@k, ndcg@k, div@k, satis@k and rev@k — plus the significance test
// the paper's tables annotate (t-test, p < 0.05).
package metrics

import (
	"math"

	"repro/internal/topics"
)

// ClickAtK sums the (expected) clicks over the top-k positions — the
// paper's click@k for one request; callers average over requests.
func ClickAtK(expClicks []float64, k int) float64 {
	if k > len(expClicks) {
		k = len(expClicks)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += expClicks[i]
	}
	return s
}

// NDCGAtK computes ndcg@k with the per-position gains (clicks) of the
// re-ranked list. The ideal DCG uses the same gain multiset sorted
// descending, so the metric is 1 when all click mass is ranked first.
func NDCGAtK(gains []float64, k int) float64 {
	if len(gains) == 0 {
		return 0
	}
	dcg := dcgAtK(gains, k)
	ideal := append([]float64(nil), gains...)
	sortDesc(ideal)
	idcg := dcgAtK(ideal, k)
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func dcgAtK(gains []float64, k int) float64 {
	if k > len(gains) {
		k = len(gains)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += gains[i] / math.Log2(float64(i)+2)
	}
	return s
}

// DivAtK is the expected number of covered topics over the top-k items:
// Σ_j c_j(S_{1:k}) with the probabilistic coverage of Eq. (4).
func DivAtK(cover [][]float64, m, k int) float64 {
	if k > len(cover) {
		k = len(cover)
	}
	return topics.CoverageTotal(cover[:k], m)
}

// RevAtK is Σ_{i≤k} b(v_i)·click_i, the revenue utility of the App Store
// evaluation.
func RevAtK(expClicks, bids []float64, k int) float64 {
	if k > len(expClicks) {
		k = len(expClicks)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += bids[i] * expClicks[i]
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

func sortDesc(xs []float64) {
	// Insertion sort keeps this allocation-free for the short lists (≤20)
	// it is used on.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] < v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
