package metrics

import (
	"math"
	"sort"
)

// Gini returns the Gini coefficient of an item-exposure distribution: 0 when
// every item gets identical exposure, approaching 1 as exposure concentrates
// on a single item. Exposure counts are non-negative by construction;
// negative or non-finite entries read as 0 so a hostile histogram cannot push
// the coefficient outside [0,1]. Empty and all-zero distributions return 0
// (perfect equality of nothing).
func Gini(exposure []float64) float64 {
	n := len(exposure)
	if n == 0 {
		return 0
	}
	xs := make([]float64, n)
	var max float64
	for i, v := range exposure {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			v = 0
		}
		xs[i] = v
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 0
	}
	sort.Float64s(xs)
	// Gini is scale-invariant; dividing by the max keeps the sums finite for
	// arbitrarily large exposure counts, and summing in sorted order makes the
	// result exactly permutation-invariant.
	var total float64
	for i := range xs {
		xs[i] /= max
		total += xs[i]
	}
	// Mean-difference form over the sorted sample:
	// G = Σ_i (2i − n − 1)·x_(i) / (n·Σx), i 1-based.
	var num float64
	for i, v := range xs {
		num += float64(2*(i+1)-n-1) * v
	}
	return num / (float64(n) * total)
}

// LongTailShare returns the fraction of an exposed top-k slate occupied by
// long-tail items, where isTail classifies an item (by ID). It measures how
// much shelf space a re-ranker gives to unpopular inventory.
func LongTailShare(ranked []int, isTail func(int) bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	tail := 0
	for _, v := range ranked[:k] {
		if isTail(v) {
			tail++
		}
	}
	return float64(tail) / float64(k)
}

// NoveltyAtK returns the mean self-information −log2 p(v) of the top-k items,
// where pop gives each item's popularity as a probability in (0,1]. Higher is
// more novel: recommending rarely-interacted items carries more information.
// Items with non-positive or non-finite popularity contribute 0 rather than
// an unbounded surprise.
func NoveltyAtK(ranked []int, pop func(int) float64, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	var sum float64
	for _, v := range ranked[:k] {
		p := pop(v)
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			continue
		}
		if p > 1 {
			p = 1
		}
		sum += -math.Log2(p)
	}
	return sum / float64(k)
}
