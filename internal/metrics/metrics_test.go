package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClickAtK(t *testing.T) {
	exp := []float64{0.5, 0.3, 0.2, 0.1}
	if got := ClickAtK(exp, 2); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("click@2 = %v", got)
	}
	if got := ClickAtK(exp, 10); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("click@10 beyond length = %v", got)
	}
	if ClickAtK(nil, 5) != 0 {
		t.Fatal("empty clicks should be 0")
	}
}

func TestNDCGPerfectAndReversed(t *testing.T) {
	sorted := []float64{3, 2, 1, 0}
	if got := NDCGAtK(sorted, 4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect ndcg = %v", got)
	}
	reversed := []float64{0, 1, 2, 3}
	got := NDCGAtK(reversed, 4)
	if got >= 1 || got <= 0 {
		t.Fatalf("reversed ndcg = %v, want in (0,1)", got)
	}
	if NDCGAtK([]float64{0, 0}, 2) != 0 {
		t.Fatal("all-zero gains should give 0")
	}
	if NDCGAtK(nil, 5) != 0 {
		t.Fatal("empty gains should give 0")
	}
}

// Property: ndcg ∈ [0,1] and equals 1 for non-increasing gains.
func TestNDCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		g := make([]float64, n)
		for i := range g {
			g[i] = rng.Float64()
		}
		v := NDCGAtK(g, n)
		if v < 0 || v > 1+1e-12 {
			return false
		}
		// Sorted copy must score exactly 1.
		sorted := append([]float64(nil), g...)
		sortDesc(sorted)
		return math.Abs(NDCGAtK(sorted, n)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivAtK(t *testing.T) {
	cover := [][]float64{{1, 0}, {1, 0}, {0, 1}}
	if got := DivAtK(cover, 2, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("div@2 = %v (duplicate topic should not add)", got)
	}
	if got := DivAtK(cover, 2, 3); math.Abs(got-2) > 1e-12 {
		t.Fatalf("div@3 = %v", got)
	}
}

func TestRevAtK(t *testing.T) {
	exp := []float64{0.5, 0.5}
	bids := []float64{2, 4}
	if got := RevAtK(exp, bids, 2); math.Abs(got-3) > 1e-12 {
		t.Fatalf("rev@2 = %v", got)
	}
	if got := RevAtK(exp, bids, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rev@1 = %v", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if math.Abs(Variance(xs)-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestWelchTTestSeparatedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = 1 + rng.NormFloat64()*0.1
		b[i] = 0 + rng.NormFloat64()*0.1
	}
	res := WelchTTest(a, b)
	if res.P > 1e-6 {
		t.Fatalf("clearly separated samples gave p=%v", res.P)
	}
	if res.T < 0 {
		t.Fatal("t statistic should be positive for a > b")
	}
}

func TestWelchTTestIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Under H0, p-values should rarely be tiny.
	small := 0
	for trial := 0; trial < 50; trial++ {
		a := make([]float64, 40)
		b := make([]float64, 40)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		if WelchTTest(a, b).P < 0.01 {
			small++
		}
	}
	if small > 5 {
		t.Fatalf("%d/50 false positives at p<0.01", small)
	}
}

func TestPairedTTest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		base := rng.NormFloat64() * 5 // large shared variance
		a[i] = base + 0.2 + rng.NormFloat64()*0.05
		b[i] = base + rng.NormFloat64()*0.05
	}
	paired := PairedTTest(a, b)
	welch := WelchTTest(a, b)
	if paired.P > 0.001 {
		t.Fatalf("paired test missed a consistent difference: p=%v", paired.P)
	}
	// The paired test must be far more sensitive here.
	if paired.P > welch.P {
		t.Fatalf("paired p=%v not below welch p=%v despite pairing structure", paired.P, welch.P)
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	if got := PairedTTest([]float64{1, 2}, []float64{1}); got.P != 1 {
		t.Fatal("length mismatch should give p=1")
	}
	if got := PairedTTest([]float64{1, 1, 1}, []float64{1, 1, 1}); got.P != 1 {
		t.Fatal("identical samples should give p=1")
	}
	res := PairedTTest([]float64{2, 2, 2}, []float64{1, 1, 1})
	if res.P != 0 {
		t.Fatalf("constant difference should give p=0, got %v", res.P)
	}
}

func TestStudentPAgainstKnownValues(t *testing.T) {
	// Reference values from standard t tables: P(|T| > 2.086) ≈ 0.05 at
	// df=20; P(|T| > 1.96) ≈ 0.05 at df=∞ (use df=10000).
	cases := []struct {
		t, df, want, tol float64
	}{
		{2.086, 20, 0.05, 0.002},
		{1.96, 10000, 0.05, 0.002},
		{0, 10, 1.0, 1e-9},
		{12.706, 1, 0.05, 0.002},
	}
	for _, c := range cases {
		if got := studentTwoSidedP(c.t, c.df); math.Abs(got-c.want) > c.tol {
			t.Fatalf("P(|T|>%v; df=%v) = %v, want ≈%v", c.t, c.df, got, c.want)
		}
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := regIncBeta(2, 3, 0.3) + regIncBeta(3, 2, 0.7); math.Abs(got-1) > 1e-9 {
		t.Fatalf("symmetry violated: %v", got)
	}
	if regIncBeta(2, 2, 0) != 0 || regIncBeta(2, 2, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
}
