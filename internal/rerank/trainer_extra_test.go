package rerank

import (
	"testing"
)

func TestValidationLoss(t *testing.T) {
	insts := testInstances(t, 6, true)
	m := newLinearModel(insts[0].FeatureDim(), 9)
	vl := ValidationLoss(m, insts)
	if vl <= 0 {
		t.Fatalf("validation loss %v", vl)
	}
	if got := ValidationLoss(m, nil); got != 0 {
		t.Fatalf("empty validation loss %v", got)
	}
}

func TestEarlyStoppingRestoresBest(t *testing.T) {
	// With a destructively large learning rate, later epochs make the model
	// worse; early stopping must restore the best-validation parameters and
	// therefore end with a validation loss no worse than the free-running
	// twin.
	insts := testInstances(t, 24, true)
	valid := insts[18:]

	free := newLinearModel(insts[0].FeatureDim(), 10)
	cfgFree := TrainConfig{Epochs: 12, LR: 0.8, BatchSize: 2, Seed: 5}
	if _, err := TrainListwise(free, insts, cfgFree); err != nil {
		t.Fatal(err)
	}

	stopped := newLinearModel(insts[0].FeatureDim(), 10)
	cfgStop := cfgFree
	cfgStop.ValidFrac = 0.25 // uses the same tail instances as `valid`
	cfgStop.Patience = 2
	if _, err := TrainListwise(stopped, insts, cfgStop); err != nil {
		t.Fatal(err)
	}

	lFree := ValidationLoss(free, valid)
	lStop := ValidationLoss(stopped, valid)
	if lStop > lFree+1e-9 {
		t.Fatalf("early stopping ended worse: %v vs free-running %v", lStop, lFree)
	}
}

func TestEarlyStoppingSmallSetsDisabled(t *testing.T) {
	// Fewer than 4 instances: the validation split is skipped silently.
	insts := testInstances(t, 3, true)
	m := newLinearModel(insts[0].FeatureDim(), 11)
	cfg := TrainConfig{Epochs: 2, LR: 0.01, BatchSize: 1, Seed: 1, ValidFrac: 0.5}
	if _, err := TrainListwise(m, insts, cfg); err != nil {
		t.Fatal(err)
	}
}
