package rerank

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/nn"
)

// ListwiseModel is the contract between a neural re-ranker and the shared
// training loop: build the score logits for one instance on a fresh tape.
type ListwiseModel interface {
	// Logits returns an L×1 node of pre-sigmoid re-ranking scores for the
	// instance. train distinguishes stochastic behavior (e.g. RAPID-pro
	// samples ξ during training but uses the UCB at inference).
	Logits(t *nn.Tape, inst *Instance, train bool) *nn.Node
	// Params exposes the trainable parameters.
	Params() *nn.ParamSet
}

// TrainConfig bundles the optimization hyper-parameters shared by all
// neural re-rankers (paper Section IV-C: Adam, BCE loss of Eq. 11).
type TrainConfig struct {
	Epochs    int
	LR        float64
	BatchSize int     // gradient-accumulation batch; ≥1
	ClipNorm  float64 // global-norm gradient clip; 0 disables
	Seed      int64
	// OnEpoch, when non-nil, receives (epoch, mean loss) after each epoch —
	// used by the efficiency study and for convergence tests.
	OnEpoch func(epoch int, loss float64)
	// ValidFrac, when positive, holds out that fraction of the training
	// instances (the tail, deterministically) as a validation split and
	// enables early stopping: training halts once the validation loss has
	// not improved for Patience consecutive epochs, and the best-epoch
	// parameters are restored.
	ValidFrac float64
	// Patience is the early-stopping patience in epochs (default 2 when
	// ValidFrac > 0).
	Patience int
	// Stats, when non-nil, accumulates robustness counters: instances whose
	// loss came out NaN/Inf (backward skipped) and optimizer steps dropped
	// because the accumulated gradient was non-finite. Both guards protect
	// Adam's moment estimates — a single NaN gradient would otherwise poison
	// the moving averages for every subsequent step.
	Stats *TrainStats
}

// TrainStats counts training anomalies survived by the numerical guards.
type TrainStats struct {
	// SkippedInstances is the number of instances whose forward loss was
	// NaN/Inf; their backward pass was skipped entirely.
	SkippedInstances int
	// DroppedSteps is the number of optimizer steps abandoned because the
	// accumulated batch gradient contained NaN/Inf; the gradients were
	// zeroed and Adam state left untouched.
	DroppedSteps int
}

// DefaultTrainConfig returns the configuration used across the experiment
// harness unless a table overrides it.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Epochs: 8, LR: 0.005, BatchSize: 8, ClipNorm: 5, Seed: seed}
}

// TrainListwise optimizes the model's BCE loss (Eq. 11) over the training
// instances with Adam, accumulating gradients over BatchSize instances per
// step. It returns the final epoch's mean loss.
func TrainListwise(m ListwiseModel, train []*Instance, cfg TrainConfig) (float64, error) {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	for _, inst := range train {
		if inst.Labels == nil {
			return 0, fmt.Errorf("rerank: training instance without labels (user %d)", inst.User)
		}
	}
	// Optional validation split for early stopping.
	var valid []*Instance
	if cfg.ValidFrac > 0 && len(train) >= 4 {
		n := int(float64(len(train)) * cfg.ValidFrac)
		if n < 1 {
			n = 1
		}
		valid = train[len(train)-n:]
		train = train[:len(train)-n]
	}
	patience := cfg.Patience
	if patience <= 0 {
		patience = 2
	}

	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := m.Params()
	var lastLoss float64
	bestValid := math.Inf(1)
	var bestSnapshot [][]float64
	bad := 0
	for e := 0; e < cfg.Epochs; e++ {
		perm := rng.Perm(len(train))
		var epochLoss float64
		pending, counted := 0, 0
		for _, pi := range perm {
			inst := train[pi]
			t := nn.NewTape()
			logits := m.Logits(t, inst, true)
			loss := t.SigmoidBCE(logits, inst.Labels)
			lv := loss.Value.Data[0]
			if math.IsNaN(lv) || math.IsInf(lv, 0) {
				// Poisoned forward pass: skip backward so the garbage never
				// reaches the gradient buffers, and count the casualty.
				if cfg.Stats != nil {
					cfg.Stats.SkippedInstances++
				}
				continue
			}
			t.Backward(loss)
			epochLoss += lv
			counted++
			pending++
			if pending == cfg.BatchSize {
				step(ps, opt, cfg, pending)
				pending = 0
			}
		}
		if pending > 0 {
			step(ps, opt, cfg, pending)
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		} else {
			lastLoss = math.NaN()
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(e, lastLoss)
		}
		if valid != nil {
			vl := ValidationLoss(m, valid)
			if vl < bestValid-1e-6 {
				bestValid = vl
				bestSnapshot = snapshotValues(ps)
				bad = 0
			} else {
				bad++
				if bad >= patience {
					break
				}
			}
		}
	}
	if bestSnapshot != nil {
		restoreValues(ps, bestSnapshot)
	}
	return lastLoss, nil
}

// ValidationLoss computes the deterministic (inference-mode) mean BCE over
// labeled instances without touching gradients.
func ValidationLoss(m ListwiseModel, insts []*Instance) float64 {
	var total float64
	for _, inst := range insts {
		t := nn.NewTape()
		logits := m.Logits(t, inst, false)
		total += t.SigmoidBCE(logits, inst.Labels).Value.Data[0]
	}
	if len(insts) == 0 {
		return 0
	}
	return total / float64(len(insts))
}

func snapshotValues(ps *nn.ParamSet) [][]float64 {
	params := ps.All()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Value.Data...)
	}
	return out
}

func restoreValues(ps *nn.ParamSet, snap [][]float64) {
	for i, p := range ps.All() {
		copy(p.Value.Data, snap[i])
	}
}

func step(ps *nn.ParamSet, opt nn.Optimizer, cfg TrainConfig, batch int) {
	if batch > 1 {
		inv := 1 / float64(batch)
		for _, p := range ps.All() {
			p.Grad.ScaleInPlace(inv)
		}
	}
	if !gradsFinite(ps) {
		// A finite loss can still backpropagate into NaN/Inf gradients (e.g.
		// a saturated softplus). Dropping the step and zeroing the buffers
		// keeps Adam's moment estimates clean; applying it would corrupt
		// them permanently.
		ps.ZeroGrad()
		if cfg.Stats != nil {
			cfg.Stats.DroppedSteps++
		}
		return
	}
	if cfg.ClipNorm > 0 {
		ps.ClipGradNorm(cfg.ClipNorm)
	}
	opt.Step(ps.All())
}

func gradsFinite(ps *nn.ParamSet) bool {
	for _, p := range ps.All() {
		for _, g := range p.Grad.Data {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return false
			}
		}
	}
	return true
}

// ScoreWithSigmoid evaluates the model on one instance (inference mode) and
// returns per-item probabilities — the φ_R of Eq. (7).
func ScoreWithSigmoid(m ListwiseModel, inst *Instance) []float64 {
	t := nn.NewTape()
	logits := m.Logits(t, inst, false)
	out := make([]float64, logits.Value.Rows)
	for i := range out {
		out[i] = mat.Sigmoid(logits.Value.Data[i])
	}
	return out
}
