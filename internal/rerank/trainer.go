package rerank

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/mat"
	"repro/internal/nn"
)

// ListwiseModel is the contract between a neural re-ranker and the shared
// training loop: build the score logits for one instance on a fresh tape.
type ListwiseModel interface {
	// Logits returns an L×1 node of pre-sigmoid re-ranking scores for the
	// instance. train distinguishes stochastic behavior (e.g. RAPID-pro
	// samples ξ during training but uses the UCB at inference).
	//
	// The parallel trainer calls Logits from multiple goroutines at once
	// (distinct tapes, distinct instances), so the method must not mutate
	// shared model state. Models with train-time randomness implement
	// BatchPreparer to move their random draws onto the trainer goroutine.
	Logits(t *nn.Tape, inst *Instance, train bool) *nn.Node
	// Params exposes the trainable parameters.
	Params() *nn.ParamSet
}

// BatchPreparer is an optional ListwiseModel extension for models whose
// training-time forward pass is stochastic. The trainer calls
// PrepareInstance sequentially — in batch order, before any worker touches
// the batch — so the model can pre-draw its random numbers from its own RNG
// in a deterministic order and stash them per instance. Logits(train=true)
// then consumes the stashed draws instead of the RNG, which keeps the
// forward pass read-only (race-free) and the RNG stream independent of
// worker scheduling.
type BatchPreparer interface {
	PrepareInstance(inst *Instance)
}

// TapeSized is an optional ListwiseModel extension reporting an estimate of
// the number of tape nodes one Logits call records, so the trainer can
// pre-size its tapes (nn.NewTapeCap) and skip arena growth entirely.
type TapeSized interface {
	TapeCapHint() int
}

// TrainConfig bundles the optimization hyper-parameters shared by all
// neural re-rankers (paper Section IV-C: Adam, BCE loss of Eq. 11).
type TrainConfig struct {
	Epochs    int
	LR        float64
	BatchSize int     // gradient-accumulation batch; ≥1
	ClipNorm  float64 // global-norm gradient clip; 0 disables
	Seed      int64
	// Workers caps the goroutines that evaluate forward/backward passes in
	// parallel within one gradient-accumulation batch. 0 means
	// GOMAXPROCS(0); it is further clamped to BatchSize. Any value yields
	// bitwise-identical training to Workers=1 for the same seed: each batch
	// slot accumulates into its own gradient shadow and the shadows are
	// reduced in slot order, so float summation order never depends on
	// scheduling.
	Workers int
	// OnEpoch, when non-nil, receives (epoch, mean loss) after each epoch —
	// used by the efficiency study and for convergence tests.
	OnEpoch func(epoch int, loss float64)
	// Observer, when non-nil, receives a full EpochStats record after each
	// epoch — the training-telemetry hook behind rapidtrain's progress
	// lines and /metrics debug port. It fires exactly once per epoch, after
	// OnEpoch, with the same loss value, on the trainer goroutine (never a
	// worker), so an implementation may read model state without locking.
	// A nil observer costs nothing on the hot path.
	Observer EpochObserver
	// ValidFrac, when positive, holds out that fraction of the training
	// instances (the tail, deterministically) as a validation split and
	// enables early stopping: training halts once the validation loss has
	// not improved for Patience consecutive epochs, and the best-epoch
	// parameters are restored.
	ValidFrac float64
	// Patience is the early-stopping patience in epochs (default 2 when
	// ValidFrac > 0).
	Patience int
	// Stats, when non-nil, accumulates robustness counters: instances whose
	// loss came out NaN/Inf (backward skipped) and optimizer steps dropped
	// because the accumulated gradient was non-finite. Both guards protect
	// Adam's moment estimates — a single NaN gradient would otherwise poison
	// the moving averages for every subsequent step.
	Stats *TrainStats
}

// EpochStats is the per-epoch telemetry record handed to
// TrainConfig.Observer. Counts are per-epoch deltas (not running totals);
// the observer owns any accumulation.
type EpochStats struct {
	// Epoch is the zero-based epoch index; Epochs the configured total
	// (early stopping may end the run before Epoch reaches Epochs-1).
	Epoch, Epochs int
	// Loss is the epoch's mean training loss — bitwise the value OnEpoch
	// received.
	Loss float64
	// ValidLoss is the held-out validation loss, NaN when the run has no
	// validation split.
	ValidLoss float64
	// Duration is the epoch's wall-clock time, including validation.
	Duration time.Duration
	// Steps is the number of optimizer steps applied; DroppedSteps the
	// steps abandoned by the non-finite-gradient guard.
	Steps, DroppedSteps int
	// Instances is the number of instances whose loss entered the epoch
	// mean; SkippedInstances the instances the NaN/Inf loss guard skipped.
	Instances, SkippedInstances int
}

// EpochObserver receives per-epoch training telemetry. Implementations must
// not retain the EpochStats value's address across calls (it is passed by
// value precisely so the trainer never allocates for it).
type EpochObserver interface {
	ObserveEpoch(EpochStats)
}

// emitEpoch dispatches one epoch record. Split out so the allocation guard
// (TestObserverNilZeroAllocs) can pin that a nil observer costs zero
// allocations, matching the tape-reuse guarantees of the parallel trainer.
func emitEpoch(o EpochObserver, es EpochStats) {
	if o != nil {
		o.ObserveEpoch(es)
	}
}

// TrainStats counts training anomalies survived by the numerical guards.
type TrainStats struct {
	// SkippedInstances is the number of instances whose forward loss was
	// NaN/Inf; their backward pass was skipped entirely.
	SkippedInstances int
	// DroppedSteps is the number of optimizer steps abandoned because the
	// accumulated batch gradient contained NaN/Inf; the gradients were
	// zeroed and Adam state left untouched.
	DroppedSteps int
}

// DefaultTrainConfig returns the configuration used across the experiment
// harness unless a table overrides it.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Epochs: 8, LR: 0.005, BatchSize: 8, ClipNorm: 5, Seed: seed}
}

// slotState is the per-batch-slot worker state: a reusable tape whose
// parameter gradients are redirected into a private shadow. Slot i always
// processes the i-th instance of a batch, regardless of which worker
// goroutine picks the job up, so the reduction over slots is stable.
type slotState struct {
	tape   *nn.Tape
	shadow *nn.GradShadow
	loss   float64
	ok     bool
}

type slotJob struct {
	slot int
	inst *Instance
}

// TrainListwise optimizes the model's BCE loss (Eq. 11) over the training
// instances with Adam, accumulating gradients over BatchSize instances per
// step. Within a batch the forward/backward passes run on up to
// cfg.Workers goroutines; gradients land in per-slot shadows that are
// folded into the parameters in slot order, so results are bitwise
// independent of the worker count. It returns the final epoch's mean loss.
func TrainListwise(m ListwiseModel, train []*Instance, cfg TrainConfig) (float64, error) {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	for _, inst := range train {
		if inst.Labels == nil {
			return 0, fmt.Errorf("rerank: training instance without labels (user %d)", inst.User)
		}
	}
	// Optional validation split for early stopping.
	var valid []*Instance
	if cfg.ValidFrac > 0 && len(train) >= 4 {
		n := int(float64(len(train)) * cfg.ValidFrac)
		if n < 1 {
			n = 1
		}
		valid = train[len(train)-n:]
		train = train[:len(train)-n]
	}
	patience := cfg.Patience
	if patience <= 0 {
		patience = 2
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}

	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := m.Params()
	prep, _ := m.(BatchPreparer)

	slots := make([]*slotState, cfg.BatchSize)
	for i := range slots {
		s := &slotState{tape: newModelTape(m), shadow: nn.NewGradShadow(ps)}
		s.tape.WithGrads(s.shadow)
		slots[i] = s
	}

	// A persistent worker pool for the whole run: jobs carry a slot index,
	// wg marks batch completion. Channel send/receive orders the trainer's
	// sequential work (instance prep, previous-batch reduction) before the
	// worker's forward pass; wg.Wait orders all backward passes before the
	// reduction that reads the shadows.
	jobs := make(chan slotJob)
	var wg sync.WaitGroup
	defer close(jobs)
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				runSlot(m, slots[j.slot], j.inst)
				wg.Done()
			}
		}()
	}

	var lastLoss float64
	bestValid := math.Inf(1)
	var bestSnapshot [][]float64
	bad := 0
	for e := 0; e < cfg.Epochs; e++ {
		epochStart := time.Now()
		perm := rng.Perm(len(train))
		var epochLoss float64
		counted, skipped, steps, dropped := 0, 0, 0, 0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(perm))
			if prep != nil {
				// Sequential, in batch order: the model draws its
				// training-time randomness here so workers stay read-only.
				for _, pi := range perm[start:end] {
					prep.PrepareInstance(train[pi])
				}
			}
			n := end - start
			wg.Add(n)
			for s := 0; s < n; s++ {
				jobs <- slotJob{slot: s, inst: train[perm[start+s]]}
			}
			wg.Wait()
			// Reduce in slot order — never in completion order.
			ok := 0
			for s := 0; s < n; s++ {
				sl := slots[s]
				if sl.ok {
					epochLoss += sl.loss
					counted++
					ok++
					sl.shadow.AddInto()
					sl.shadow.Zero()
				} else {
					skipped++
					if cfg.Stats != nil {
						cfg.Stats.SkippedInstances++
					}
				}
			}
			if ok > 0 {
				if step(ps, opt, cfg, ok) {
					steps++
				} else {
					dropped++
					if cfg.Stats != nil {
						cfg.Stats.DroppedSteps++
					}
				}
			}
		}
		if counted > 0 {
			lastLoss = epochLoss / float64(counted)
		} else {
			lastLoss = math.NaN()
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(e, lastLoss)
		}
		// Validation runs before the observer so one record carries both
		// losses; the same value then drives early stopping.
		vl := math.NaN()
		if valid != nil {
			vl = ValidationLoss(m, valid)
		}
		emitEpoch(cfg.Observer, EpochStats{
			Epoch: e, Epochs: cfg.Epochs,
			Loss: lastLoss, ValidLoss: vl,
			Duration: time.Since(epochStart),
			Steps:    steps, DroppedSteps: dropped,
			Instances: counted, SkippedInstances: skipped,
		})
		if valid != nil {
			if vl < bestValid-1e-6 {
				bestValid = vl
				bestSnapshot = snapshotValues(ps)
				bad = 0
			} else {
				bad++
				if bad >= patience {
					break
				}
			}
		}
	}
	if bestSnapshot != nil {
		restoreValues(ps, bestSnapshot)
	}
	return lastLoss, nil
}

// runSlot executes one instance's forward/backward on the slot's private
// tape and shadow. A NaN/Inf forward loss skips backward entirely so the
// garbage never reaches the gradient shadows.
func runSlot(m ListwiseModel, s *slotState, inst *Instance) {
	s.tape.Reset()
	logits := m.Logits(s.tape, inst, true)
	loss := s.tape.SigmoidBCE(logits, inst.Labels)
	lv := loss.Value.Data[0]
	if math.IsNaN(lv) || math.IsInf(lv, 0) {
		s.loss, s.ok = 0, false
		return
	}
	s.tape.Backward(loss)
	s.loss, s.ok = lv, true
}

// newModelTape builds a tape sized to the model's per-instance graph when
// the model reports an estimate.
func newModelTape(m ListwiseModel) *nn.Tape {
	if ts, ok := m.(TapeSized); ok {
		if hint := ts.TapeCapHint(); hint > 0 {
			return nn.NewTapeCap(hint)
		}
	}
	return nn.NewTape()
}

// ValidationLoss computes the deterministic (inference-mode) mean BCE over
// labeled instances without touching gradients. One tape is reused across
// instances; losses are summed in instance order.
func ValidationLoss(m ListwiseModel, insts []*Instance) float64 {
	if len(insts) == 0 {
		return 0
	}
	t := newModelTape(m)
	var total float64
	for _, inst := range insts {
		t.Reset()
		logits := m.Logits(t, inst, false)
		total += t.SigmoidBCE(logits, inst.Labels).Value.Data[0]
	}
	return total / float64(len(insts))
}

func snapshotValues(ps *nn.ParamSet) [][]float64 {
	params := ps.All()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Value.Data...)
	}
	return out
}

func restoreValues(ps *nn.ParamSet, snap [][]float64) {
	for i, p := range ps.All() {
		copy(p.Value.Data, snap[i])
	}
}

// step applies one accumulated optimizer step, reporting whether it was
// applied (false: the non-finite-gradient guard dropped it; the caller owns
// the counting).
func step(ps *nn.ParamSet, opt nn.Optimizer, cfg TrainConfig, batch int) bool {
	if batch > 1 {
		inv := 1 / float64(batch)
		for _, p := range ps.All() {
			p.Grad.ScaleInPlace(inv)
		}
	}
	if !gradsFinite(ps) {
		// A finite loss can still backpropagate into NaN/Inf gradients (e.g.
		// a saturated softplus). Dropping the step and zeroing the buffers
		// keeps Adam's moment estimates clean; applying it would corrupt
		// them permanently.
		ps.ZeroGrad()
		return false
	}
	if cfg.ClipNorm > 0 {
		ps.ClipGradNorm(cfg.ClipNorm)
	}
	opt.Step(ps.All())
	return true
}

func gradsFinite(ps *nn.ParamSet) bool {
	for _, p := range ps.All() {
		for _, g := range p.Grad.Data {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return false
			}
		}
	}
	return true
}

// ScoreWithSigmoid evaluates the model on one instance (inference mode) and
// returns per-item probabilities — the φ_R of Eq. (7).
func ScoreWithSigmoid(m ListwiseModel, inst *Instance) []float64 {
	t := nn.NewTape()
	logits := m.Logits(t, inst, false)
	out := make([]float64, logits.Value.Rows)
	for i := range out {
		out[i] = mat.Sigmoid(logits.Value.Data[i])
	}
	return out
}
