package rerank

import (
	"math"
	"testing"
	"time"
)

// recordingObserver accumulates every EpochStats it receives.
type recordingObserver struct {
	got []EpochStats
}

func (r *recordingObserver) ObserveEpoch(es EpochStats) { r.got = append(r.got, es) }

// TestObserverMatchesOnEpoch is the contract table for TrainConfig.Observer:
// across batch shapes, worker counts and validation settings, the observer
// fires exactly once per completed epoch, in order, with bitwise the same
// loss OnEpoch received, per-epoch instance accounting that covers the
// training set, and a validation loss exactly when a split is configured.
func TestObserverMatchesOnEpoch(t *testing.T) {
	cases := []struct {
		name      string
		epochs    int
		batch     int
		workers   int
		validFrac float64
	}{
		{"batch1 sequential", 3, 1, 1, 0},
		{"batch4 parallel", 3, 4, 4, 0},
		{"batch exceeds set", 2, 64, 0, 0},
		{"with validation", 4, 4, 2, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			insts := testInstances(t, 16, true)
			m := newLinearModel(insts[0].FeatureDim(), 7)
			var fromOnEpoch []float64
			rec := &recordingObserver{}
			cfg := TrainConfig{
				Epochs: tc.epochs, LR: 0.01, BatchSize: tc.batch,
				Workers: tc.workers, Seed: 3, ValidFrac: tc.validFrac,
				OnEpoch:  func(_ int, loss float64) { fromOnEpoch = append(fromOnEpoch, loss) },
				Observer: rec,
			}
			if _, err := TrainListwise(m, insts, cfg); err != nil {
				t.Fatal(err)
			}
			// Early stopping may end the run short; both hooks must have
			// fired in lockstep however far it got.
			if len(rec.got) == 0 || len(rec.got) != len(fromOnEpoch) {
				t.Fatalf("observer fired %d times, OnEpoch %d", len(rec.got), len(fromOnEpoch))
			}
			trainN := 16
			if tc.validFrac > 0 {
				trainN -= int(float64(trainN) * tc.validFrac)
			}
			for i, es := range rec.got {
				if es.Epoch != i || es.Epochs != tc.epochs {
					t.Fatalf("epoch numbering %d/%d at position %d", es.Epoch, es.Epochs, i)
				}
				if es.Loss != fromOnEpoch[i] {
					t.Fatalf("epoch %d: observer loss %v != OnEpoch loss %v", i, es.Loss, fromOnEpoch[i])
				}
				if es.Instances != trainN || es.SkippedInstances != 0 {
					t.Fatalf("epoch %d: instances=%d skipped=%d, want %d/0", i, es.Instances, es.SkippedInstances, trainN)
				}
				wantSteps := (trainN + tc.batch - 1) / tc.batch
				if es.Steps+es.DroppedSteps != wantSteps {
					t.Fatalf("epoch %d: steps=%d dropped=%d, want %d total", i, es.Steps, es.DroppedSteps, wantSteps)
				}
				if es.Duration <= 0 {
					t.Fatalf("epoch %d: non-positive duration %v", i, es.Duration)
				}
				if hasValid := !math.IsNaN(es.ValidLoss); hasValid != (tc.validFrac > 0) {
					t.Fatalf("epoch %d: ValidLoss=%v with ValidFrac=%v", i, es.ValidLoss, tc.validFrac)
				}
			}
		})
	}
}

// TestObserverSkipAccounting: the NaN-loss guard's per-epoch deltas must
// reach the observer (one poisoned instance per epoch here).
func TestObserverSkipAccounting(t *testing.T) {
	insts := testInstances(t, 8, true)
	poisoned := insts[2]
	orig := poisoned.ItemFeat
	poisoned.ItemFeat = func(id int) []float64 {
		f := append([]float64(nil), orig(id)...)
		f[0] = math.NaN()
		return f
	}
	m := newLinearModel(insts[0].FeatureDim(), 13)
	rec := &recordingObserver{}
	cfg := TrainConfig{Epochs: 2, LR: 0.01, BatchSize: 4, Seed: 9, Observer: rec}
	if _, err := TrainListwise(m, insts, cfg); err != nil {
		t.Fatal(err)
	}
	for i, es := range rec.got {
		if es.SkippedInstances != 1 || es.Instances != 7 {
			t.Fatalf("epoch %d: skipped=%d instances=%d, want 1/7", i, es.SkippedInstances, es.Instances)
		}
	}
}

// TestObserverPassive: attaching an observer must not perturb training —
// same seed, same trained parameters, bitwise.
func TestObserverPassive(t *testing.T) {
	insts := testInstances(t, 12, true)
	cfg := TrainConfig{Epochs: 3, LR: 0.02, BatchSize: 4, ClipNorm: 5, Seed: 21}

	plain := newLinearModel(insts[0].FeatureDim(), 4)
	if _, err := TrainListwise(plain, insts, cfg); err != nil {
		t.Fatal(err)
	}
	observed := newLinearModel(insts[0].FeatureDim(), 4)
	cfg.Observer = &recordingObserver{}
	if _, err := TrainListwise(observed, insts, cfg); err != nil {
		t.Fatal(err)
	}
	pa, pb := plain.Params().All(), observed.Params().All()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatalf("observer changed training: param %s[%d]", pa[i].Name, j)
			}
		}
	}
}

// TestObserverNilZeroAllocs pins that the nil-observer dispatch allocates
// nothing — the telemetry hook must be free when unused, matching the
// steady-state zero-alloc guarantees of the tape (PR2's
// TestTapeReuseSteadyStateAllocs).
func TestObserverNilZeroAllocs(t *testing.T) {
	es := EpochStats{Epoch: 1, Epochs: 8, Loss: 0.5, Duration: time.Second}
	if n := testing.AllocsPerRun(1000, func() { emitEpoch(nil, es) }); n != 0 {
		t.Fatalf("nil observer dispatch allocates %v per call", n)
	}
	// A pointer-receiver observer stored once in the interface also stays
	// alloc-free per call: EpochStats travels by value.
	rec := &recordingObserver{got: make([]EpochStats, 0, 2048)}
	var o EpochObserver = rec
	if n := testing.AllocsPerRun(1000, func() { emitEpoch(o, es) }); n != 0 {
		t.Fatalf("live observer dispatch allocates %v per call", n)
	}
}
