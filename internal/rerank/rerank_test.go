package rerank

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/nn"
)

func testInstances(t *testing.T, n int, withLabels bool) []*Instance {
	t.Helper()
	cfg := dataset.TaobaoLike(11)
	cfg.NumUsers = 20
	cfg.NumItems = 60
	cfg.Categories = 15
	cfg.RerankRequests = n
	cfg.TestRequests = 1
	cfg.ListLen = 6
	cfg.PoolSize = 10
	d := dataset.MustGenerate(cfg)
	rng := rand.New(rand.NewSource(5))
	var out []*Instance
	for i := 0; i < n; i++ {
		p := d.RerankPools[i%len(d.RerankPools)]
		items := append([]int(nil), p.Candidates[:cfg.ListLen]...)
		req := dataset.Request{User: p.User, Items: items, InitScores: descending(len(items))}
		if withLabels {
			req.Clicks = make([]bool, len(items))
			for k := range req.Clicks {
				req.Clicks[k] = rng.Float64() < d.Relevance(p.User, items[k])
			}
		}
		out = append(out, NewInstance(d, req, rng))
	}
	return out
}

func descending(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(n - i)
	}
	return s
}

func TestOrderByScores(t *testing.T) {
	items := []int{10, 20, 30}
	got := OrderByScores(items, []float64{0.1, 0.9, 0.5})
	want := []int{20, 30, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OrderByScores = %v", got)
		}
	}
	// Stable on ties: original order preserved.
	tie := OrderByScores(items, []float64{1, 1, 1})
	for i, v := range items {
		if tie[i] != v {
			t.Fatal("tie order not stable")
		}
	}
}

func TestIdentityReranker(t *testing.T) {
	inst := testInstances(t, 1, false)[0]
	id := Identity{}
	got := Apply(id, inst)
	for i, v := range inst.Items {
		if got[i] != v {
			t.Fatal("Identity changed the order")
		}
	}
	// Scores must be a copy, not an alias.
	s := id.Scores(inst)
	s[0] = -999
	if inst.InitScores[0] == -999 {
		t.Fatal("Identity.Scores aliases InitScores")
	}
}

func TestInstanceGeometry(t *testing.T) {
	inst := testInstances(t, 1, true)[0]
	lf := inst.ListFeatures()
	if lf.Rows != inst.L() || lf.Cols != inst.FeatureDim() {
		t.Fatalf("ListFeatures %dx%d", lf.Rows, lf.Cols)
	}
	// Last column is the initial score.
	for i := 0; i < inst.L(); i++ {
		if lf.At(i, lf.Cols-1) != inst.InitScores[i] {
			t.Fatal("init score column misplaced")
		}
	}
	// Topic-coverage block matches.
	qu := len(inst.UserFeat)
	qv := len(inst.ItemFeat(inst.Items[0]))
	for j := 0; j < inst.M; j++ {
		if lf.At(0, qu+qv+j) != inst.Cover[0][j] {
			t.Fatal("coverage block misplaced")
		}
	}
}

func TestTopicSeqFeatures(t *testing.T) {
	inst := testInstances(t, 1, false)[0]
	for j := 0; j < inst.M; j++ {
		seq := inst.TopicSeqFeatures(j, 3)
		if seq.Rows > 3 {
			t.Fatalf("topic %d sequence longer than D", j)
		}
		if seq.Rows > 0 {
			qu := len(inst.UserFeat)
			for k := 0; k < qu; k++ {
				if seq.At(0, k) != inst.UserFeat[k] {
					t.Fatal("user features not prefixed on sequence rows")
				}
			}
		}
	}
}

func TestMarginalDiversityConsistency(t *testing.T) {
	inst := testInstances(t, 1, false)[0]
	md := inst.MarginalDiversity()
	if len(md) != inst.L() {
		t.Fatalf("marginal diversity length %d", len(md))
	}
	for _, row := range md {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("marginal diversity %v out of range", v)
			}
		}
	}
}

// linearModel is a minimal ListwiseModel for trainer tests: one dense layer
// over the instance features.
type linearModel struct {
	ps *nn.ParamSet
	d  *nn.Dense
}

func newLinearModel(featDim int, seed int64) *linearModel {
	ps := nn.NewParamSet()
	return &linearModel{
		ps: ps,
		d:  nn.NewDense(ps, "lin", featDim, 1, nn.Linear, rand.New(rand.NewSource(seed))),
	}
}

func (m *linearModel) Params() *nn.ParamSet { return m.ps }
func (m *linearModel) Logits(t *nn.Tape, inst *Instance, _ bool) *nn.Node {
	return m.d.Forward(t, t.Constant(inst.ListFeatures()))
}

func TestTrainListwiseReducesLoss(t *testing.T) {
	train := testInstances(t, 30, true)
	m := newLinearModel(train[0].FeatureDim(), 3)
	var first, last float64
	cfg := TrainConfig{
		Epochs: 10, LR: 0.02, BatchSize: 4, ClipNorm: 5, Seed: 3,
		OnEpoch: func(e int, loss float64) {
			if e == 0 {
				first = loss
			}
			last = loss
		},
	}
	if _, err := TrainListwise(m, train, cfg); err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestTrainListwiseRejectsUnlabeled(t *testing.T) {
	train := testInstances(t, 2, false)
	m := newLinearModel(train[0].FeatureDim(), 4)
	if _, err := TrainListwise(m, train, DefaultTrainConfig(1)); err == nil {
		t.Fatal("training on unlabeled instances should error")
	}
}

func TestScoreWithSigmoidRange(t *testing.T) {
	inst := testInstances(t, 1, false)[0]
	m := newLinearModel(inst.FeatureDim(), 5)
	scores := ScoreWithSigmoid(m, inst)
	if len(scores) != inst.L() {
		t.Fatalf("scores length %d", len(scores))
	}
	for _, s := range scores {
		if s <= 0 || s >= 1 || math.IsNaN(s) {
			t.Fatalf("sigmoid score %v out of (0,1)", s)
		}
	}
}

func TestHistoryPreferenceIsDistribution(t *testing.T) {
	inst := testInstances(t, 1, false)[0]
	p := inst.HistoryPreference()
	if math.Abs(mat.SumVec(p)-1) > 1e-9 {
		t.Fatalf("history preference sums to %v", mat.SumVec(p))
	}
}
