package rerank

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
)

// noisyModel is a stochastic ListwiseModel for parallel-trainer tests: a
// dense layer whose training-time logits add Gaussian noise, mirroring
// RAPID-pro's reparameterization trick. It implements BatchPreparer (noise
// is pre-drawn on the trainer goroutine) and TapeSized.
type noisyModel struct {
	ps    *nn.ParamSet
	d     *nn.Dense
	noise *rand.Rand
	pre   map[*Instance]*mat.Matrix
}

func newNoisyModel(featDim int, seed int64) *noisyModel {
	ps := nn.NewParamSet()
	return &noisyModel{
		ps:    ps,
		d:     nn.NewDense(ps, "noisy", featDim, 1, nn.Linear, rand.New(rand.NewSource(seed))),
		noise: rand.New(rand.NewSource(seed + 7)),
	}
}

func (m *noisyModel) Params() *nn.ParamSet { return m.ps }
func (m *noisyModel) TapeCapHint() int     { return 16 }

func (m *noisyModel) PrepareInstance(inst *Instance) {
	if m.pre == nil {
		m.pre = make(map[*Instance]*mat.Matrix)
	}
	xi := m.pre[inst]
	if xi == nil || xi.Rows != inst.L() {
		xi = mat.New(inst.L(), 1)
		m.pre[inst] = xi
	}
	for i := range xi.Data {
		xi.Data[i] = m.noise.NormFloat64()
	}
}

func (m *noisyModel) Logits(t *nn.Tape, inst *Instance, train bool) *nn.Node {
	out := m.d.Forward(t, t.Constant(inst.ListFeatures()))
	if train {
		xi := m.pre[inst]
		if xi == nil {
			xi = mat.New(inst.L(), 1)
			for i := range xi.Data {
				xi.Data[i] = m.noise.NormFloat64()
			}
		}
		out = t.Add(out, t.Constant(xi))
	}
	return out
}

func paramsBitwiseEqual(t *testing.T, a, b *nn.ParamSet) {
	t.Helper()
	ap, bp := a.All(), b.All()
	if len(ap) != len(bp) {
		t.Fatalf("param count %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		for k, v := range ap[i].Value.Data {
			if v != bp[i].Value.Data[k] {
				t.Fatalf("param %s[%d] diverges: %v vs %v", ap[i].Name, k, v, bp[i].Value.Data[k])
			}
		}
	}
}

// trainWithWorkers trains a fresh model on the given instances and returns
// its parameters and final loss.
func trainWithWorkers(t *testing.T, train []*Instance, modelSeed int64, workers int, noisy bool) (*nn.ParamSet, float64) {
	t.Helper()
	var m ListwiseModel
	if noisy {
		m = newNoisyModel(train[0].FeatureDim(), modelSeed)
	} else {
		m = newLinearModel(train[0].FeatureDim(), modelSeed)
	}
	cfg := TrainConfig{
		Epochs: 4, LR: 0.01, BatchSize: 4, ClipNorm: 5, Seed: 17,
		Workers: workers, ValidFrac: 0.2, Patience: 3,
	}
	loss, err := TrainListwise(m, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Params(), loss
}

// TestParallelTrainSameSeedDeterministic is the tentpole determinism
// guarantee: any worker count produces bitwise-identical parameters to the
// sequential (Workers=1) path, because gradients land in per-slot shadows
// reduced in slot order.
func TestParallelTrainSameSeedDeterministic(t *testing.T) {
	train := testInstances(t, 25, true)
	for _, noisy := range []bool{false, true} {
		seqPS, seqLoss := trainWithWorkers(t, train, 3, 1, noisy)
		for _, workers := range []int{2, 4, 8} {
			ps, loss := trainWithWorkers(t, train, 3, workers, noisy)
			if loss != seqLoss {
				t.Fatalf("noisy=%v workers=%d: loss %v != sequential %v", noisy, workers, loss, seqLoss)
			}
			paramsBitwiseEqual(t, seqPS, ps)
		}
		// Workers=0 (GOMAXPROCS default) must take the same path.
		ps, _ := trainWithWorkers(t, train, 3, 0, noisy)
		paramsBitwiseEqual(t, seqPS, ps)
	}
}

// TestParallelTrainRepeatedRunsIdentical guards against residual
// nondeterminism (map iteration, pool reuse) across full runs in the same
// process.
func TestParallelTrainRepeatedRunsIdentical(t *testing.T) {
	train := testInstances(t, 15, true)
	first, _ := trainWithWorkers(t, train, 5, 4, true)
	second, _ := trainWithWorkers(t, train, 5, 4, true)
	paramsBitwiseEqual(t, first, second)
}

// TestParallelTrainRaceStress drives many workers over shared parameters,
// pooled matrices and pre-drawn noise. Run with -race this is the trainer's
// data-race canary (CI runs it that way; see .github/workflows/ci.yml).
func TestParallelTrainRaceStress(t *testing.T) {
	train := testInstances(t, 40, true)
	m := newNoisyModel(train[0].FeatureDim(), 9)
	cfg := TrainConfig{
		Epochs: 3, LR: 0.01, BatchSize: 8, ClipNorm: 5, Seed: 23,
		Workers: 8, ValidFrac: 0.25,
	}
	if _, err := TrainListwise(m, train, cfg); err != nil {
		t.Fatal(err)
	}
	finiteParams(t, m)
}
