package rerank

import (
	"math"
	"testing"
)

func finiteParams(t *testing.T, m ListwiseModel) {
	t.Helper()
	for _, p := range m.Params().All() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("parameter %s contains non-finite value", p.Name)
			}
		}
	}
}

// TestTrainSkipsNonFiniteLoss: an instance whose features are poisoned with
// NaN must be skipped and counted, without corrupting the parameters or the
// reported epoch loss.
func TestTrainSkipsNonFiniteLoss(t *testing.T) {
	train := testInstances(t, 12, true)
	poisoned := train[3]
	orig := poisoned.ItemFeat
	poisoned.ItemFeat = func(id int) []float64 {
		f := append([]float64(nil), orig(id)...)
		f[0] = math.NaN()
		return f
	}
	m := newLinearModel(train[0].FeatureDim(), 17)
	stats := &TrainStats{}
	cfg := TrainConfig{Epochs: 3, LR: 0.02, BatchSize: 4, ClipNorm: 5, Seed: 9, Stats: stats}
	loss, err := TrainListwise(m, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedInstances != cfg.Epochs {
		t.Fatalf("skipped %d instances, want %d (one per epoch)", stats.SkippedInstances, cfg.Epochs)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("final loss %v not finite", loss)
	}
	finiteParams(t, m)
}

// TestTrainDropsNonFiniteStep: a non-finite accumulated gradient must drop
// the optimizer step (leaving values untouched) rather than poisoning Adam
// state.
func TestTrainDropsNonFiniteStep(t *testing.T) {
	train := testInstances(t, 4, true)
	m := newLinearModel(train[0].FeatureDim(), 21)
	before := append([]float64(nil), m.Params().All()[0].Value.Data...)
	// Pre-poison the gradient buffer: the first accumulation step inherits
	// the NaN and must be dropped wholesale.
	m.Params().All()[0].Grad.Data[0] = math.NaN()
	stats := &TrainStats{}
	cfg := TrainConfig{Epochs: 1, LR: 0.02, BatchSize: len(train), Seed: 9, Stats: stats}
	if _, err := TrainListwise(m, train, cfg); err != nil {
		t.Fatal(err)
	}
	if stats.DroppedSteps != 1 {
		t.Fatalf("dropped %d steps, want 1", stats.DroppedSteps)
	}
	after := m.Params().All()[0].Value.Data
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("dropped step still mutated parameters")
		}
	}
	finiteParams(t, m)
	// The guard must have zeroed the buffers so the next run is clean.
	for _, g := range m.Params().All()[0].Grad.Data {
		if g != 0 {
			t.Fatalf("gradient buffer not zeroed after dropped step: %v", g)
		}
	}
}
