// Package rerank defines the shared abstractions of the re-ranking stage:
// the Instance type (one initial list with everything a re-ranker may look
// at), the Reranker interface implemented by RAPID and all baselines, and a
// generic listwise training loop used by every neural model.
package rerank

import (
	"sort"
)

// Reranker scores the items of an instance; the re-ranked list is the
// instance's items sorted by descending score. Implementations must not
// mutate the instance.
type Reranker interface {
	Name() string
	Scores(inst *Instance) []float64
}

// Trainable is implemented by re-rankers that learn from the re-ranking
// training split (instances with click labels).
type Trainable interface {
	Fit(train []*Instance) error
}

// Apply returns the instance's items reordered by r's scores, best first.
// Ties preserve the initial order, keeping results deterministic.
func Apply(r Reranker, inst *Instance) []int {
	scores := r.Scores(inst)
	return OrderByScores(inst.Items, scores)
}

// OrderByScores sorts items by descending score with stable ties.
func OrderByScores(items []int, scores []float64) []int {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	out := make([]int, len(items))
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}

// Identity is the no-op re-ranker that returns the initial scores — the
// "Init" row of every table.
type Identity struct{}

// Name implements Reranker.
func (Identity) Name() string { return "Init" }

// Scores implements Reranker.
func (Identity) Scores(inst *Instance) []float64 {
	return append([]float64(nil), inst.InitScores...)
}
