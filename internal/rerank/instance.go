package rerank

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/topics"
)

// TopicSeqCap is the maximum per-topic behavior-sequence length stored on an
// instance. Models with a smaller D (the paper's default is 5) take the most
// recent D entries; 10 is the largest D studied (Table V).
const TopicSeqCap = 10

// Instance is one re-ranking request with all model-visible information:
// the initial list R with its scores, the user's features and per-topic
// behavior sequences, per-item features and topic coverage, click labels
// when the instance belongs to the training split, and bids when the
// dataset carries revenue.
type Instance struct {
	User       int
	UserFeat   []float64
	Items      []int       // initial list R, best-first
	InitScores []float64   // aligned with Items
	Labels     []float64   // click labels on R; nil for test instances
	Cover      [][]float64 // L×m topic coverage of the listed items
	Bids       []float64   // per-item bid, nil unless the dataset has bids
	History    []int       // raw behavior history, oldest first
	TopicSeqs  [][]int     // m per-topic sequences (item IDs), each ≤ TopicSeqCap
	M          int         // number of topics

	// ItemFeat resolves any item ID (listed or historical) to its feature
	// vector x_v.
	ItemFeat func(item int) []float64
	// CoverOf resolves any item ID to its topic coverage τ_v (the listed
	// items' coverage is also cached in Cover).
	CoverOf func(item int) []float64
}

// NewInstance assembles an instance from a prepared request. rng drives the
// topic-membership sampling for fractional coverage (Section III-C); pass
// a seeded source for determinism.
func NewInstance(d *dataset.Dataset, req dataset.Request, rng *rand.Rand) *Instance {
	l := len(req.Items)
	cover := make([][]float64, l)
	for i, v := range req.Items {
		cover[i] = d.Cover(v)
	}
	var bids []float64
	if d.Cfg.WithBids {
		bids = make([]float64, l)
		for i, v := range req.Items {
			bids[i] = d.Bid(v)
		}
	}
	var labels []float64
	if req.Clicks != nil {
		labels = make([]float64, l)
		for i, c := range req.Clicks {
			if c {
				labels[i] = 1
			}
		}
	}
	hist := d.Users[req.User].History
	seqs := topics.SplitByTopic(hist, d.Cover, d.M(), TopicSeqCap, rng)
	return &Instance{
		User:       req.User,
		UserFeat:   d.UserFeatures(req.User),
		Items:      req.Items,
		InitScores: req.InitScores,
		Labels:     labels,
		Cover:      cover,
		Bids:       bids,
		History:    hist,
		TopicSeqs:  seqs,
		M:          d.M(),
		ItemFeat:   d.ItemFeatures,
		CoverOf:    d.Cover,
	}
}

// L returns the list length.
func (in *Instance) L() int { return len(in.Items) }

// FeatureDim returns the per-position feature width of ListFeatures.
func (in *Instance) FeatureDim() int {
	return len(in.UserFeat) + len(in.ItemFeat(in.Items[0])) + in.M + 1
}

// ListFeatures builds the listwise input matrix: row i is
// e_{R(i)} = [x_u, x_{R(i)}, τ_{R(i)}, initScore_i], the paper's per-item
// embedding (Section III-B) extended with the initial score, which every
// neural baseline also consumes.
func (in *Instance) ListFeatures() *mat.Matrix {
	l := in.L()
	out := mat.New(l, in.FeatureDim())
	for i := 0; i < l; i++ {
		row := out.Row(i)
		off := copy(row, in.UserFeat)
		off += copy(row[off:], in.ItemFeat(in.Items[i]))
		off += copy(row[off:], in.Cover[i])
		row[off] = in.InitScores[i]
	}
	return out
}

// TopicSeqFeatures builds the per-topic behavior sequence input for topic j
// truncated to the last d entries: row t is [x_u, x_{T_j(t)}] as in Section
// III-C. It returns a 0-row matrix for an empty sequence.
func (in *Instance) TopicSeqFeatures(j, d int) *mat.Matrix {
	seq := in.TopicSeqs[j]
	if len(seq) > d {
		seq = seq[len(seq)-d:]
	}
	qu := len(in.UserFeat)
	var qv int
	if len(in.Items) > 0 {
		qv = len(in.ItemFeat(in.Items[0]))
	}
	out := mat.New(len(seq), qu+qv)
	for t, item := range seq {
		row := out.Row(t)
		off := copy(row, in.UserFeat)
		copy(row[off:], in.ItemFeat(item))
	}
	return out
}

// MarginalDiversity returns d_R(R(i)) for every listed item (Eq. 5).
func (in *Instance) MarginalDiversity() [][]float64 {
	return topics.MarginalDiversity(in.Cover, in.M)
}

// HistoryPreference returns the empirical topic-preference distribution of
// the user's history — the non-learned θ used by heuristic baselines such
// as adpMMR.
func (in *Instance) HistoryPreference() []float64 {
	return topics.PreferenceFromHistory(in.History, in.CoverOf, in.M)
}
