package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/rerank"
)

func TestSeq2SlateTrainsAndScores(t *testing.T) {
	train := fixture(t, 20)
	m := NewSeq2Slate(8, 3)
	m.Epochs = 2
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, inst := range fixture(t, 3) {
		s := checkScores(t, m, inst)
		// Greedy decoding yields a strict ranking.
		seen := map[float64]bool{}
		for _, v := range s {
			if seen[v] {
				t.Fatal("duplicate pointer scores")
			}
			seen[v] = true
		}
	}
}

func TestSeq2SlateLearnsToFrontloadClicks(t *testing.T) {
	// With consistent click patterns, the decoder should learn to point at
	// clicked items before unclicked ones on the training data.
	train := fixture(t, 30)
	m := NewSeq2Slate(8, 5)
	m.Epochs = 6
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	var clickedRank, unclickedRank, nc, nu float64
	for _, inst := range train {
		order := rerank.Apply(m, inst)
		pos := map[int]int{}
		for i, v := range order {
			pos[v] = i
		}
		for i, v := range inst.Items {
			if inst.Labels[i] > 0.5 {
				clickedRank += float64(pos[v])
				nc++
			} else {
				unclickedRank += float64(pos[v])
				nu++
			}
		}
	}
	if nc == 0 || nu == 0 {
		t.Skip("degenerate click pattern")
	}
	if clickedRank/nc >= unclickedRank/nu {
		t.Fatalf("clicked items not front-loaded: clicked mean rank %.2f vs unclicked %.2f",
			clickedRank/nc, unclickedRank/nu)
	}
}

func TestTargetOrder(t *testing.T) {
	inst := fixture(t, 1)[0]
	inst.Labels = []float64{0, 1, 0, 1, 0, 0, 0, 0}
	order := targetOrder(inst)
	if order[0] != 1 || order[1] != 3 {
		t.Fatalf("clicked items should lead: %v", order)
	}
	// Stability within groups: unclicked keep initial order.
	if order[2] != 0 || order[3] != 2 {
		t.Fatalf("unclicked tail not stable: %v", order)
	}
}

func TestSeq2SlateDecodePermutation(t *testing.T) {
	inst := fixture(t, 1)[0]
	m := NewSeq2Slate(8, rand.Int63())
	m.build(inst.FeatureDim())
	order := m.decode(inst)
	if len(order) != inst.L() {
		t.Fatalf("decode length %d", len(order))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatal("decode repeated an index")
		}
		seen[i] = true
	}
}
