package baselines

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rerank"
)

// SSD is Sliding Spectrum Decomposition (Huang et al., KDD'21): items are
// embedded as vectors and selected greedily to maximize relevance times the
// volume they add to the space spanned by the recently selected items. The
// "sliding" part keeps only a window of past selections in the basis,
// matching how users perceive diversity over a scrolling feed. The volume
// gain of a candidate is the norm of its residual after Gram–Schmidt
// projection onto the windowed basis.
type SSD struct {
	// Window is the sliding-window size w.
	Window int
	// RelWeight trades off relevance against the residual volume term.
	RelWeight float64
}

// NewSSD returns an SSD re-ranker with the harness defaults.
func NewSSD() *SSD { return &SSD{Window: 5, RelWeight: 0.7} }

// Name implements rerank.Reranker.
func (m *SSD) Name() string { return "SSD" }

// Scores implements rerank.Reranker.
func (m *SSD) Scores(inst *rerank.Instance) []float64 {
	l := inst.L()
	rel := normalizeRelevance(inst.InitScores)
	// Item vectors: topic coverage concatenated with unit-normalized
	// features, so both topical and latent similarity shrink the volume.
	vecs := make([][]float64, l)
	for i := 0; i < l; i++ {
		f := inst.ItemFeat(inst.Items[i])
		v := make([]float64, inst.M+len(f))
		copy(v, inst.Cover[i])
		copy(v[inst.M:], f)
		unit(v)
		vecs[i] = v
	}
	selected := make([]bool, l)
	var basis [][]float64 // orthonormal, windowed
	order := make([]int, 0, l)
	for len(order) < l {
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < l; i++ {
			if selected[i] {
				continue
			}
			res := residualNorm(vecs[i], basis)
			s := m.RelWeight*rel[i] + (1-m.RelWeight)*res
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		selected[best] = true
		order = append(order, best)
		// Extend the basis with the residual direction of the pick.
		r := residual(vecs[best], basis)
		if n := mat.NormVec(r); n > 1e-9 {
			for j := range r {
				r[j] /= n
			}
			basis = append(basis, r)
			if len(basis) > m.Window {
				basis = basis[1:]
			}
		}
	}
	return greedyScores(order, l)
}

// residual returns v minus its projection onto the orthonormal basis.
func residual(v []float64, basis [][]float64) []float64 {
	r := append([]float64(nil), v...)
	for _, b := range basis {
		d := mat.Dot(r, b)
		for j := range r {
			r[j] -= d * b[j]
		}
	}
	return r
}

func residualNorm(v []float64, basis [][]float64) float64 {
	return mat.NormVec(residual(v, basis))
}

func unit(v []float64) {
	n := mat.NormVec(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
