package baselines

import (
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
)

// PDGAN reproduces PD-GAN (Wu et al., IJCAI'19): a personalized DPP kernel
// whose quality side is a learned relevance generator and whose similarity
// side is modulated per user, trained adversarially against a discriminator
// that judges whether a set of items looks like something the user actually
// engaged with.
//
// As the paper under reproduction points out, PD-GAN (i) targets the
// ranking stage, scoring items independently of the listwise context, and
// (ii) expresses personalization only through a coarse per-user statistic —
// here, the fraction of topics the user has meaningfully favored, which
// scales the similarity kernel's strength. Both limitations are kept
// intact, since they are what Table II/III measures against.
//
// Training follows the original's two phases in compact form: the quality
// generator is pre-trained pointwise on clicks, then refined with REINFORCE
// against the discriminator's judgment of generated vs clicked item sets.
type PDGAN struct {
	Hidden    int
	K         int // generated-set size during adversarial training
	AdvRounds int
	Seed      int64

	ps    *nn.ParamSet
	gen   *nn.MLP // quality generator over [x_u, x_v, τ_v]
	disc  *nn.MLP // discriminator over pooled set representation
	built bool
	rng   *rand.Rand
}

// NewPDGAN returns a PD-GAN with small-scale defaults.
func NewPDGAN(qh int, seed int64) *PDGAN {
	return &PDGAN{Hidden: qh, K: 10, AdvRounds: 1, Seed: seed}
}

// Name implements rerank.Reranker.
func (m *PDGAN) Name() string { return "PD-GAN" }

func (m *PDGAN) build(inst *rerank.Instance) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.rng = rand.New(rand.NewSource(m.Seed + 1))
	m.ps = nn.NewParamSet()
	qu := len(inst.UserFeat)
	qv := len(inst.ItemFeat(inst.Items[0]))
	genIn := qu + qv + inst.M
	m.gen = nn.NewMLP(m.ps, "pdgan.gen", []int{genIn, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	discIn := qu + qv + inst.M
	m.disc = nn.NewMLP(m.ps, "pdgan.disc", []int{discIn, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	m.built = true
}

// qualityLogits scores every listed item independently (ranking-stage
// scoring: no cross-item interactions).
func (m *PDGAN) qualityLogits(t *nn.Tape, inst *rerank.Instance) *nn.Node {
	l := inst.L()
	qu := len(inst.UserFeat)
	qv := len(inst.ItemFeat(inst.Items[0]))
	in := mat.New(l, qu+qv+inst.M)
	for i := 0; i < l; i++ {
		row := in.Row(i)
		off := copy(row, inst.UserFeat)
		off += copy(row[off:], inst.ItemFeat(inst.Items[i]))
		copy(row[off:], inst.Cover[i])
	}
	return m.gen.Forward(t, t.Constant(in))
}

// discLogit scores a pooled set representation: mean item features and
// coverage of the set, concatenated with the user features.
func (m *PDGAN) discLogit(t *nn.Tape, inst *rerank.Instance, set []int) *nn.Node {
	qu := len(inst.UserFeat)
	qv := len(inst.ItemFeat(inst.Items[0]))
	pooled := mat.New(1, qu+qv+inst.M)
	row := pooled.Row(0)
	copy(row, inst.UserFeat)
	if len(set) > 0 {
		inv := 1 / float64(len(set))
		for _, idx := range set {
			f := inst.ItemFeat(inst.Items[idx])
			for j, v := range f {
				row[qu+j] += v * inv
			}
			for j, v := range inst.Cover[idx] {
				row[qu+qv+j] += v * inv
			}
		}
	}
	return m.disc.Forward(t, t.Constant(pooled))
}

// diversityStrength is PD-GAN's coarse personalization signal: the fraction
// of topics the user's history favors above the uniform level.
func diversityStrength(inst *rerank.Instance) float64 {
	pref := inst.HistoryPreference()
	thresh := 0.5 / float64(inst.M)
	n := 0
	for _, p := range pref {
		if p > thresh {
			n++
		}
	}
	return float64(n) / float64(inst.M)
}

// personalKernel builds the user-modulated DPP kernel from quality scores.
func (m *PDGAN) personalKernel(inst *rerank.Instance, quality []float64) *mat.Matrix {
	l := inst.L()
	w := diversityStrength(inst)
	k := mat.New(l, l)
	for i := 0; i < l; i++ {
		fi := inst.ItemFeat(inst.Items[i])
		for j := i; j < l; j++ {
			fj := inst.ItemFeat(inst.Items[j])
			sim := mat.Clamp(0.7*cosine(inst.Cover[i], inst.Cover[j])+0.3*cosine(fi, fj), 0, 1)
			// Diverse users (large w) keep the full similarity penalty;
			// focused users have it attenuated.
			v := quality[i] * quality[j] * math.Pow(sim, 1-w+1e-3)
			if i == j {
				v = quality[i]*quality[i] + 1e-6
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	return k
}

func (m *PDGAN) qualities(inst *rerank.Instance) []float64 {
	t := nn.NewTape()
	logits := m.qualityLogits(t, inst)
	q := make([]float64, inst.L())
	for i := range q {
		q[i] = math.Exp(mat.Sigmoid(logits.Value.Data[i]))
	}
	return q
}

// Fit implements rerank.Trainable.
func (m *PDGAN) Fit(train []*rerank.Instance) error {
	if len(train) == 0 {
		return nil
	}
	if !m.built {
		m.build(train[0])
	}
	genParams := paramsWithPrefix(m.ps, "pdgan.gen")
	discParams := paramsWithPrefix(m.ps, "pdgan.disc")
	genOpt := nn.NewAdam(0.003)
	discOpt := nn.NewAdam(0.003)

	// Phase 1: pointwise pre-training of the generator on clicks.
	for epoch := 0; epoch < 2; epoch++ {
		for _, idx := range m.rng.Perm(len(train)) {
			inst := train[idx]
			t := nn.NewTape()
			logits := m.qualityLogits(t, inst)
			loss := t.SigmoidBCE(logits, inst.Labels)
			t.Backward(loss)
			genOpt.Step(genParams)
		}
	}

	// Phase 2: adversarial refinement with REINFORCE.
	baseline := 0.0
	for round := 0; round < m.AdvRounds; round++ {
		for _, idx := range m.rng.Perm(len(train)) {
			inst := train[idx]
			real := clickedSet(inst)
			if len(real) == 0 {
				continue
			}
			fake := GreedyMAP(m.personalKernel(inst, m.qualities(inst)), m.K)
			// Discriminator step: real 1, fake 0.
			for _, ex := range []struct {
				set   []int
				label float64
			}{{real, 1}, {fake, 0}} {
				t := nn.NewTape()
				logit := m.discLogit(t, inst, ex.set)
				loss := t.SigmoidBCE(logit, []float64{ex.label})
				t.Backward(loss)
				discOpt.Step(discParams)
			}
			// Generator step: REINFORCE with reward = log D(fake).
			t := nn.NewTape()
			dval := mat.Sigmoid(m.discLogit(t, inst, fake).Value.Data[0])
			reward := math.Log(dval + 1e-6)
			baseline = 0.9*baseline + 0.1*reward
			advantage := reward - baseline
			tg := nn.NewTape()
			logits := m.qualityLogits(tg, inst)
			// Surrogate loss: −advantage · Σ_{i∈fake} log σ(logit_i).
			targets := make([]float64, inst.L())
			for _, i := range fake {
				targets[i] = 1
			}
			loss := tg.Scale(tg.SigmoidBCE(logits, targets), advantage)
			tg.Backward(loss)
			genOpt.Step(genParams)
		}
	}
	return nil
}

// Scores implements rerank.Reranker.
func (m *PDGAN) Scores(inst *rerank.Instance) []float64 {
	if !m.built {
		m.build(inst)
	}
	order := GreedyMAP(m.personalKernel(inst, m.qualities(inst)), inst.L())
	return greedyScores(order, inst.L())
}

func clickedSet(inst *rerank.Instance) []int {
	var out []int
	for i, y := range inst.Labels {
		if y > 0.5 {
			out = append(out, i)
		}
	}
	return out
}

func paramsWithPrefix(ps *nn.ParamSet, prefix string) []*nn.Param {
	var out []*nn.Param
	for _, p := range ps.All() {
		if len(p.Name) >= len(prefix) && p.Name[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	return out
}
