package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/rerank"
)

// fixture builds small labeled instances shared by the baseline tests.
func fixture(t *testing.T, n int) []*rerank.Instance {
	t.Helper()
	cfg := dataset.TaobaoLike(21)
	cfg.NumUsers = 25
	cfg.NumItems = 70
	cfg.Categories = 15
	cfg.RerankRequests = n
	cfg.TestRequests = 1
	cfg.ListLen = 8
	cfg.PoolSize = 12
	d := dataset.MustGenerate(cfg)
	rng := rand.New(rand.NewSource(9))
	var out []*rerank.Instance
	for i := 0; i < n; i++ {
		p := d.RerankPools[i%len(d.RerankPools)]
		items := append([]int(nil), p.Candidates[:cfg.ListLen]...)
		scores := make([]float64, len(items))
		clicks := make([]bool, len(items))
		for k, v := range items {
			scores[k] = d.Relevance(p.User, v) + rng.NormFloat64()*0.1
			clicks[k] = rng.Float64() < d.Relevance(p.User, v)
		}
		req := dataset.Request{User: p.User, Items: items, InitScores: scores, Clicks: clicks}
		out = append(out, rerank.NewInstance(d, req, rng))
	}
	return out
}

// checkScores verifies the Reranker contract: right length, no NaNs, and
// the instance untouched.
func checkScores(t *testing.T, r rerank.Reranker, inst *rerank.Instance) []float64 {
	t.Helper()
	before := append([]float64(nil), inst.InitScores...)
	s := r.Scores(inst)
	if len(s) != inst.L() {
		t.Fatalf("%s: %d scores for %d items", r.Name(), len(s), inst.L())
	}
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: invalid score %v", r.Name(), v)
		}
	}
	for i := range before {
		if inst.InitScores[i] != before[i] {
			t.Fatalf("%s mutated the instance", r.Name())
		}
	}
	return s
}

func TestNeuralBaselinesTrainAndScore(t *testing.T) {
	train := fixture(t, 24)
	test := fixture(t, 4)
	models := []rerank.Reranker{
		NewDLCM(8, 1),
		NewPRM(8, 2),
		NewSetRank(8, 3),
		NewSRGA(8, 4),
		NewDESA(8, 5),
	}
	for _, m := range models {
		tr := m.(rerank.Trainable)
		cfg := rerank.TrainConfig{Epochs: 2, LR: 0.005, BatchSize: 4, ClipNorm: 5, Seed: 1}
		switch mm := m.(type) {
		case *DLCM:
			mm.TrainCfg = cfg
		case *PRM:
			mm.TrainCfg = cfg
		case *SetRank:
			mm.TrainCfg = cfg
		case *SRGA:
			mm.TrainCfg = cfg
		case *DESA:
			mm.TrainCfg = cfg
		}
		if err := tr.Fit(train); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, inst := range test {
			checkScores(t, m, inst)
		}
	}
}

func TestNeuralBaselineLearnsClicks(t *testing.T) {
	// After training, PRM must score clicked items above unclicked ones on
	// the training set more often than chance.
	train := fixture(t, 40)
	m := NewPRM(8, 7)
	m.TrainCfg = rerank.TrainConfig{Epochs: 8, LR: 0.01, BatchSize: 4, ClipNorm: 5, Seed: 7}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, inst := range train {
		s := m.Scores(inst)
		for i := range s {
			for j := range s {
				if inst.Labels[i] > inst.Labels[j] {
					total++
					if s[i] > s[j] {
						correct++
					}
				}
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.55 {
		t.Fatalf("PRM train pairwise accuracy %v, want > 0.55", acc)
	}
}

func TestMMRFirstPickIsTopScore(t *testing.T) {
	inst := fixture(t, 1)[0]
	m := &MMR{Theta: 1.0} // pure relevance: must reproduce the init order
	s := m.Scores(inst)
	order := rerank.OrderByScores(inst.Items, s)
	want := rerank.OrderByScores(inst.Items, inst.InitScores)
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("θ=1 MMR deviates from relevance order at %d", i)
		}
	}
}

func TestMMRDiversifies(t *testing.T) {
	inst := fixture(t, 1)[0]
	divAt := func(order []int) float64 {
		idx := map[int]int{}
		for pos, v := range inst.Items {
			idx[v] = pos
		}
		cover := make([][]float64, 0, 5)
		for _, v := range order[:5] {
			cover = append(cover, inst.Cover[idx[v]])
		}
		var sum float64
		for _, c := range coverage(cover, inst.M) {
			sum += c
		}
		return sum
	}
	pureRel := rerank.Apply(&MMR{Theta: 1.0}, inst)
	diversified := rerank.Apply(&MMR{Theta: 0.2}, inst)
	if divAt(diversified) < divAt(pureRel)-1e-9 {
		t.Fatalf("θ=0.2 MMR top-5 coverage %v below pure relevance %v", divAt(diversified), divAt(pureRel))
	}
}

func coverage(cover [][]float64, m int) []float64 {
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		rem := 1.0
		for _, c := range cover {
			rem *= 1 - c[j]
		}
		out[j] = 1 - rem
	}
	return out
}

func TestAdpMMRPropensityDirection(t *testing.T) {
	insts := fixture(t, 20)
	// The most entropic user should get a more diverse list than the most
	// focused one, relative to their own pure-relevance lists.
	adp := NewAdpMMR()
	for _, inst := range insts {
		s := checkScores(t, adp, inst)
		if len(s) != inst.L() {
			t.Fatal("bad score length")
		}
	}
}

func TestGreedyScoresEncodeOrder(t *testing.T) {
	s := greedyScores([]int{2, 0, 1}, 3)
	// Item 2 picked first → highest score.
	if !(s[2] > s[0] && s[0] > s[1]) {
		t.Fatalf("greedyScores = %v", s)
	}
}

func TestNormalizeRelevance(t *testing.T) {
	out := normalizeRelevance([]float64{2, 4, 6})
	if out[0] != 0 || out[2] != 1 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Fatalf("normalizeRelevance = %v", out)
	}
	flat := normalizeRelevance([]float64{3, 3})
	if flat[0] != 0.5 || flat[1] != 0.5 {
		t.Fatalf("constant input = %v", flat)
	}
}

func TestDPPGreedyMatchesExhaustive(t *testing.T) {
	// On a tiny kernel, the first greedy pick must be the max-determinant
	// singleton and each greedy step must maximize the log-det gain.
	rng := rand.New(rand.NewSource(33))
	n := 6
	// Build a PSD kernel L = B·Bᵀ + εI.
	b := mat.RandNormal(n, 3, 0, 1, rng)
	kernel := b.MatMul(b.T())
	for i := 0; i < n; i++ {
		kernel.Set(i, i, kernel.At(i, i)+0.1)
	}
	order := GreedyMAP(kernel, 3)
	if len(order) != 3 {
		t.Fatalf("greedy returned %d items", len(order))
	}
	// Verify each prefix beats all single-swap alternatives of the last pick.
	for k := 1; k <= 3; k++ {
		base := LogDet(kernel, order[:k])
		for alt := 0; alt < n; alt++ {
			if contains(order[:k], alt) {
				continue
			}
			cand := append(append([]int{}, order[:k-1]...), alt)
			if LogDet(kernel, cand) > base+1e-9 {
				t.Fatalf("greedy step %d suboptimal: swap %v for %v gains", k, order[k-1], alt)
			}
		}
	}
}

func TestDPPKernelSymmetricPositiveDiagonal(t *testing.T) {
	inst := fixture(t, 1)[0]
	k := NewDPP().Kernel(inst)
	for i := 0; i < k.Rows; i++ {
		if k.At(i, i) <= 0 {
			t.Fatal("non-positive kernel diagonal")
		}
		for j := 0; j < k.Cols; j++ {
			if math.Abs(k.At(i, j)-k.At(j, i)) > 1e-12 {
				t.Fatal("kernel not symmetric")
			}
		}
	}
}

func TestDPPScoresFullRanking(t *testing.T) {
	inst := fixture(t, 1)[0]
	s := checkScores(t, NewDPP(), inst)
	seen := map[float64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate greedy scores — not a full ranking")
		}
		seen[v] = true
	}
}

func TestSSDResidualShrinks(t *testing.T) {
	basis := [][]float64{{1, 0, 0}}
	v := []float64{1, 1, 0}
	r := residualNorm(v, basis)
	if math.Abs(r-1) > 1e-9 {
		t.Fatalf("residual norm %v, want 1", r)
	}
	if rn := residualNorm([]float64{1, 0, 0}, basis); rn > 1e-9 {
		t.Fatalf("in-span residual %v, want 0", rn)
	}
}

func TestSSDWindowSlides(t *testing.T) {
	inst := fixture(t, 1)[0]
	s := NewSSD()
	s.Window = 2
	checkScores(t, s, inst)
}

func TestPDGANTrainsAndScores(t *testing.T) {
	train := fixture(t, 20)
	m := NewPDGAN(8, 11)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, inst := range fixture(t, 3) {
		checkScores(t, m, inst)
	}
}

func TestDiversityStrengthRange(t *testing.T) {
	for _, inst := range fixture(t, 10) {
		w := diversityStrength(inst)
		if w < 0 || w > 1 {
			t.Fatalf("diversity strength %v", w)
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Property: every greedy re-ranker returns scores encoding a permutation.
func TestGreedyRerankersPermutationProperty(t *testing.T) {
	insts := fixture(t, 8)
	rers := []rerank.Reranker{NewMMR(), NewDPP(), NewSSD(), NewAdpMMR()}
	for _, inst := range insts {
		for _, r := range rers {
			order := rerank.Apply(r, inst)
			seen := map[int]bool{}
			for _, v := range order {
				if seen[v] {
					t.Fatalf("%s repeated item %d", r.Name(), v)
				}
				seen[v] = true
			}
			if len(order) != inst.L() {
				t.Fatalf("%s dropped items", r.Name())
			}
		}
	}
}

// Property: GreedyMAP returns distinct indices within range for random
// PSD kernels.
func TestGreedyMAPPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		b := mat.RandNormal(n, 3, 0, 1, rng)
		kernel := b.MatMul(b.T())
		for i := 0; i < n; i++ {
			kernel.Set(i, i, kernel.At(i, i)+0.2)
		}
		k := 1 + rng.Intn(n)
		order := GreedyMAP(kernel, k)
		if len(order) != k {
			return false
		}
		seen := map[int]bool{}
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
