package baselines

import (
	"math"

	"repro/internal/diversify"
	"repro/internal/mat"
	"repro/internal/rerank"
)

// greedyScores converts a greedy selection order (indices into the
// instance's items, best first) into a score vector aligned with the
// original positions, so greedy re-rankers satisfy the Reranker contract.
// The implementation lives in internal/diversify (the servable home of the
// greedy family); this alias keeps the package's other greedy baselines
// (seq2slate, SSD, PD-GAN) on their historical helper.
func greedyScores(order []int, l int) []float64 {
	return diversify.GreedyScores(order, l)
}

// normalizeRelevance min-max scales initial scores into [0,1] so the
// relevance and coverage-gain terms of MMR-style objectives are comparable.
// Lifted into internal/diversify; identical on the finite scores every
// instance here carries.
func normalizeRelevance(init []float64) []float64 {
	return diversify.NormalizeRelevance(init)
}

// MMR is Carbonell & Goldstein's Maximal Marginal Relevance, instantiated
// with the probabilistic-coverage gain as the novelty term: items are
// selected greedily by θ·rel + (1−θ)·coverage-gain. The tradeoff θ is
// global — identical for every user — which is exactly the limitation
// RAPID addresses.
type MMR struct {
	// Theta is the relevance weight θ ∈ [0,1].
	Theta float64
}

// NewMMR returns MMR with the harness default θ = 0.7.
func NewMMR() *MMR { return &MMR{Theta: 0.7} }

// Name implements rerank.Reranker.
func (m *MMR) Name() string { return "MMR" }

// Scores implements rerank.Reranker.
func (m *MMR) Scores(inst *rerank.Instance) []float64 {
	return mmrScores(inst, m.Theta, nil)
}

// mmrScores runs the greedy MMR loop. topicWeights, when non-nil, weights
// the per-topic coverage gain (adpMMR's personalization). The loop itself
// was lifted into diversify.MMRSelect so the same selection serves behind
// /v1/rerank; the equivalence tests pin this delegation against a frozen
// copy of the pre-refactor loop.
func mmrScores(inst *rerank.Instance, theta float64, topicWeights []float64) []float64 {
	rel := normalizeRelevance(inst.InitScores)
	order := diversify.MMRSelect(rel, inst.Cover, inst.M, theta, topicWeights)
	return greedyScores(order, inst.L())
}

// AdpMMR is the adaptive-diversity heuristic of Di Noia et al.: the user's
// propensity toward diversity — the normalized entropy of their historical
// topic distribution — sets the MMR tradeoff per user. Only the *degree* of
// diversification is personalized; the diversity term itself stays the
// global coverage gain, exactly as in the original (and as the paper
// criticizes: "rule-based and non-learnable").
type AdpMMR struct {
	// MaxDiversityWeight caps how much of the objective the diversity term
	// can claim for a maximally-entropic user.
	MaxDiversityWeight float64
}

// NewAdpMMR returns adpMMR with the harness default cap 0.5.
func NewAdpMMR() *AdpMMR { return &AdpMMR{MaxDiversityWeight: 0.5} }

// Name implements rerank.Reranker.
func (m *AdpMMR) Name() string { return "adpMMR" }

// Scores implements rerank.Reranker.
func (m *AdpMMR) Scores(inst *rerank.Instance) []float64 {
	pref := inst.HistoryPreference()
	propensity := 0.0
	if inst.M > 1 {
		propensity = mat.Entropy(pref) / math.Log(float64(inst.M))
	}
	theta := 1 - m.MaxDiversityWeight*propensity
	return mmrScores(inst, theta, nil)
}
