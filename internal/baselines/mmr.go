package baselines

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rerank"
	"repro/internal/topics"
)

// greedyScores converts a greedy selection order (indices into the
// instance's items, best first) into a score vector aligned with the
// original positions, so greedy re-rankers satisfy the Reranker contract.
func greedyScores(order []int, l int) []float64 {
	scores := make([]float64, l)
	for rank, idx := range order {
		scores[idx] = float64(l - rank)
	}
	return scores
}

// normalizeRelevance min-max scales initial scores into [0,1] so the
// relevance and coverage-gain terms of MMR-style objectives are comparable.
func normalizeRelevance(init []float64) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range init {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	out := make([]float64, len(init))
	if hi-lo < 1e-12 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, s := range init {
		out[i] = (s - lo) / (hi - lo)
	}
	return out
}

// MMR is Carbonell & Goldstein's Maximal Marginal Relevance, instantiated
// with the probabilistic-coverage gain as the novelty term: items are
// selected greedily by θ·rel + (1−θ)·coverage-gain. The tradeoff θ is
// global — identical for every user — which is exactly the limitation
// RAPID addresses.
type MMR struct {
	// Theta is the relevance weight θ ∈ [0,1].
	Theta float64
}

// NewMMR returns MMR with the harness default θ = 0.7.
func NewMMR() *MMR { return &MMR{Theta: 0.7} }

// Name implements rerank.Reranker.
func (m *MMR) Name() string { return "MMR" }

// Scores implements rerank.Reranker.
func (m *MMR) Scores(inst *rerank.Instance) []float64 {
	return mmrScores(inst, m.Theta, nil)
}

// mmrScores runs the greedy MMR loop. topicWeights, when non-nil, weights
// the per-topic coverage gain (adpMMR's personalization).
func mmrScores(inst *rerank.Instance, theta float64, topicWeights []float64) []float64 {
	l := inst.L()
	rel := normalizeRelevance(inst.InitScores)
	ic := topics.NewIncrementalCoverage(inst.M)
	selected := make([]bool, l)
	order := make([]int, 0, l)
	for len(order) < l {
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < l; i++ {
			if selected[i] {
				continue
			}
			var gain float64
			if topicWeights == nil {
				gain = ic.GainTotal(inst.Cover[i])
			} else {
				g := ic.Gain(inst.Cover[i])
				gain = mat.Dot(topicWeights, g) * float64(inst.M)
			}
			s := theta*rel[i] + (1-theta)*gain
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		selected[best] = true
		ic.Add(inst.Cover[best])
		order = append(order, best)
	}
	return greedyScores(order, l)
}

// AdpMMR is the adaptive-diversity heuristic of Di Noia et al.: the user's
// propensity toward diversity — the normalized entropy of their historical
// topic distribution — sets the MMR tradeoff per user. Only the *degree* of
// diversification is personalized; the diversity term itself stays the
// global coverage gain, exactly as in the original (and as the paper
// criticizes: "rule-based and non-learnable").
type AdpMMR struct {
	// MaxDiversityWeight caps how much of the objective the diversity term
	// can claim for a maximally-entropic user.
	MaxDiversityWeight float64
}

// NewAdpMMR returns adpMMR with the harness default cap 0.5.
func NewAdpMMR() *AdpMMR { return &AdpMMR{MaxDiversityWeight: 0.5} }

// Name implements rerank.Reranker.
func (m *AdpMMR) Name() string { return "adpMMR" }

// Scores implements rerank.Reranker.
func (m *AdpMMR) Scores(inst *rerank.Instance) []float64 {
	pref := inst.HistoryPreference()
	propensity := 0.0
	if inst.M > 1 {
		propensity = mat.Entropy(pref) / math.Log(float64(inst.M))
	}
	theta := 1 - m.MaxDiversityWeight*propensity
	return mmrScores(inst, theta, nil)
}
