package baselines

import (
	"math/rand"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
)

// SetRank (Pang et al., SIGIR'20) learns a permutation-invariant ranking
// model with induced multi-head self-attention blocks (IMSAB): attention is
// routed through a small set of learned inducing points, which removes the
// positional dependence of ordinary stacked self-attention and keeps the
// cost linear in the list length.
type SetRank struct {
	Hidden  int
	Blocks  int
	Heads   int
	Induced int // number of inducing points per block
	Seed    int64

	ps    *nn.ParamSet
	proj  *nn.Dense
	imsab []*imsabBlock
	score *nn.MLP
	built bool

	TrainCfg rerank.TrainConfig
}

// imsabBlock is one induced multi-head self-attention block:
// H = MHA(I, X); Y = MHA(X, H) with learned inducing points I.
type imsabBlock struct {
	induce      *nn.Param
	toInduced   *nn.MultiHeadAttention
	fromInduced *nn.MultiHeadAttention
	norm        *nn.LayerNorm
}

// NewSetRank returns a SetRank with hidden width qh.
func NewSetRank(qh int, seed int64) *SetRank {
	return &SetRank{Hidden: qh, Blocks: 2, Heads: 2, Induced: 4, Seed: seed}
}

// Name implements rerank.Reranker.
func (m *SetRank) Name() string { return "SetRank" }

func (m *SetRank) build(featDim int) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	dim := 2 * m.Hidden
	m.proj = nn.NewDense(m.ps, "setrank.proj", featDim, dim, nn.Linear, rng)
	for b := 0; b < m.Blocks; b++ {
		prefix := "setrank.b" + itoa(b)
		m.imsab = append(m.imsab, &imsabBlock{
			induce:      m.ps.New(prefix+".I", mat.RandNormal(m.Induced, dim, 0, 0.1, rng)),
			toInduced:   nn.NewMultiHeadAttention(m.ps, prefix+".to", dim, m.Heads, rng),
			fromInduced: nn.NewMultiHeadAttention(m.ps, prefix+".from", dim, m.Heads, rng),
			norm:        nn.NewLayerNorm(m.ps, prefix+".ln", dim),
		})
	}
	m.score = nn.NewMLP(m.ps, "setrank.score", []int{dim, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	m.built = true
}

func (b *imsabBlock) forward(t *nn.Tape, x *nn.Node) *nn.Node {
	// Cross-attention through the inducing points. A MultiHeadAttention's
	// heads expose CrossForward for the (queries, keys/values) split.
	ind := t.Use(b.induce)
	h := crossMHA(t, b.toInduced, ind, x)
	y := crossMHA(t, b.fromInduced, x, h)
	return b.norm.Forward(t, t.Add(x, y))
}

func crossMHA(t *nn.Tape, mha *nn.MultiHeadAttention, q, kv *nn.Node) *nn.Node {
	outs := make([]*nn.Node, len(mha.Heads))
	for i, h := range mha.Heads {
		outs[i] = h.CrossForward(t, q, kv)
	}
	return t.MatMul(t.ConcatCols(outs...), t.Use(mha.Wo))
}

// Params implements rerank.ListwiseModel.
func (m *SetRank) Params() *nn.ParamSet { return m.ps }

// TapeCapHint implements rerank.TapeSized: each IMSAB block runs two
// multi-head cross-attentions through the inducing points.
func (m *SetRank) TapeCapHint() int { return 64 + m.Blocks*(m.Heads*32+32) }

// Logits implements rerank.ListwiseModel.
func (m *SetRank) Logits(t *nn.Tape, inst *rerank.Instance, _ bool) *nn.Node {
	if !m.built {
		m.build(inst.FeatureDim())
	}
	h := m.proj.Forward(t, t.Constant(inst.ListFeatures()))
	for _, b := range m.imsab {
		h = b.forward(t, h)
	}
	return m.score.Forward(t, h)
}

// Fit implements rerank.Trainable.
func (m *SetRank) Fit(train []*rerank.Instance) error {
	if !m.built && len(train) > 0 {
		m.build(train[0].FeatureDim())
	}
	cfg := m.TrainCfg
	if cfg.Epochs == 0 {
		cfg = rerank.DefaultTrainConfig(m.Seed)
	}
	_, err := rerank.TrainListwise(m, train, cfg)
	return err
}

// Scores implements rerank.Reranker.
func (m *SetRank) Scores(inst *rerank.Instance) []float64 {
	return rerank.ScoreWithSigmoid(m, inst)
}
