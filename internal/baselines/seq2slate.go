package baselines

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
)

// Seq2Slate is a pointer-network re-ranker in the spirit of Bello et al.'s
// Seq2Slate (cited in the paper's introduction as the RNN slate-optimization
// line of work): an LSTM encoder reads the initial list, an LSTM decoder
// emits the output slate one position at a time, and at each step an
// additive-attention pointer distributes probability over the not-yet-
// selected items.
//
// Training uses the supervised variant: the target permutation places
// clicked items first (ties broken by the initial order) and the loss is
// the stepwise pointer cross-entropy. Inference decodes greedily.
type Seq2Slate struct {
	Hidden int
	Epochs int
	LR     float64
	Seed   int64

	ps      *nn.ParamSet
	encoder *nn.LSTM
	decoder *nn.LSTMCell
	w1, w2  *nn.Param // additive attention projections
	vAttn   *nn.Param // attention score vector
	built   bool
}

// NewSeq2Slate returns a Seq2Slate with hidden width qh.
func NewSeq2Slate(qh int, seed int64) *Seq2Slate {
	return &Seq2Slate{Hidden: qh, Epochs: 8, LR: 0.005, Seed: seed}
}

// Name implements rerank.Reranker.
func (m *Seq2Slate) Name() string { return "Seq2Slate" }

func (m *Seq2Slate) build(featDim int) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	h := m.Hidden
	m.encoder = nn.NewLSTM(m.ps, "s2s.enc", featDim, h, rng)
	// Decoder input is the encoded representation of the last picked item.
	m.decoder = nn.NewLSTMCell(m.ps, "s2s.dec", h, h, rng)
	m.w1 = m.ps.New("s2s.W1", mat.XavierUniform(h, h, rng))
	m.w2 = m.ps.New("s2s.W2", mat.XavierUniform(h, h, rng))
	m.vAttn = m.ps.New("s2s.v", mat.XavierUniform(h, 1, rng))
	m.built = true
}

// pointerScores computes the 1×L additive-attention scores of decoder state
// h over the encoded items enc (L×h), with selected positions masked out.
func (m *Seq2Slate) pointerScores(t *nn.Tape, enc, h *nn.Node, selected []bool) *nn.Node {
	l := enc.Value.Rows
	proj := t.MatMul(enc, t.Use(m.w1)) // L×h
	dec := t.MatMul(h, t.Use(m.w2))    // 1×h
	decRows := make([]*nn.Node, l)
	for i := range decRows {
		decRows[i] = dec
	}
	combined := t.Tanh(t.Add(proj, t.ConcatRows(decRows...)))
	scores := t.Transpose(t.MatMul(combined, t.Use(m.vAttn))) // 1×L
	mask := mat.New(1, l)
	for i, s := range selected {
		if s {
			mask.Data[i] = -1e9
		}
	}
	return t.Add(scores, t.Constant(mask))
}

// decode runs greedy pointer decoding, returning the selection order.
func (m *Seq2Slate) decode(inst *rerank.Instance) []int {
	t := nn.NewTape()
	enc := m.encoder.Forward(t, t.Constant(inst.ListFeatures()))
	l := inst.L()
	h, c := m.decoder.InitState(t)
	input := t.Constant(mat.New(1, m.Hidden))
	selected := make([]bool, l)
	order := make([]int, 0, l)
	for len(order) < l {
		h, c = m.decoder.Step(t, input, h, c)
		scores := m.pointerScores(t, enc, h, selected)
		best, bestV := -1, math.Inf(-1)
		for i, s := range selected {
			if !s && scores.Value.Data[i] > bestV {
				best, bestV = i, scores.Value.Data[i]
			}
		}
		selected[best] = true
		order = append(order, best)
		input = t.SliceRows(enc, best, best+1)
	}
	return order
}

// targetOrder places clicked items first, preserving the initial order
// within each label group — the supervised pointer target.
func targetOrder(inst *rerank.Instance) []int {
	idx := make([]int, inst.L())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return inst.Labels[idx[a]] > inst.Labels[idx[b]] })
	return idx
}

// Fit implements rerank.Trainable with the stepwise pointer cross-entropy.
func (m *Seq2Slate) Fit(train []*rerank.Instance) error {
	if len(train) == 0 {
		return nil
	}
	if !m.built {
		m.build(train[0].FeatureDim())
	}
	opt := nn.NewAdam(m.LR)
	rng := rand.New(rand.NewSource(m.Seed + 1))
	for e := 0; e < m.Epochs; e++ {
		for _, pi := range rng.Perm(len(train)) {
			inst := train[pi]
			target := targetOrder(inst)
			t := nn.NewTape()
			enc := m.encoder.Forward(t, t.Constant(inst.ListFeatures()))
			h, c := m.decoder.InitState(t)
			input := t.Constant(mat.New(1, m.Hidden))
			selected := make([]bool, inst.L())
			var loss *nn.Node
			// Teacher forcing along the target permutation; steps beyond
			// the clicked prefix carry little signal, so training stops at
			// the last click + 1 (or a minimum of 5 steps).
			steps := clickedCount(inst) + 1
			if steps < 5 {
				steps = 5
			}
			if steps > inst.L() {
				steps = inst.L()
			}
			for s := 0; s < steps; s++ {
				h, c = m.decoder.Step(t, input, h, c)
				scores := m.pointerScores(t, enc, h, selected)
				stepLoss := t.SoftmaxCrossEntropy(scores, target[s])
				if loss == nil {
					loss = stepLoss
				} else {
					loss = t.Add(loss, stepLoss)
				}
				selected[target[s]] = true
				input = t.SliceRows(enc, target[s], target[s]+1)
			}
			t.Backward(t.Scale(loss, 1/float64(steps)))
			m.ps.ClipGradNorm(5)
			opt.Step(m.ps.All())
		}
	}
	return nil
}

func clickedCount(inst *rerank.Instance) int {
	n := 0
	for _, y := range inst.Labels {
		if y > 0.5 {
			n++
		}
	}
	return n
}

// Scores implements rerank.Reranker via greedy decoding.
func (m *Seq2Slate) Scores(inst *rerank.Instance) []float64 {
	if !m.built {
		m.build(inst.FeatureDim())
	}
	return greedyScores(m.decode(inst), inst.L())
}
