// Package baselines implements the ten re-ranking baselines the paper
// compares RAPID against (Section IV-B3): the relevance-oriented neural
// models DLCM, PRM, SetRank and SRGA; the diversity-aware MMR, DPP, DESA
// and SSD; the personalized-diversity adpMMR and PD-GAN; plus a
// pointer-network Seq2Slate as an extra cited baseline. Neural models
// share the listwise BCE training loop in internal/rerank.
package baselines

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/rerank"
)

// DLCM is Ai et al.'s Deep Listwise Context Model: a recurrent encoder
// (GRU, as in the original) consumes the initial list and its final state
// serves as a local context vector; each item is scored against that
// context.
type DLCM struct {
	Hidden int
	Seed   int64

	ps    *nn.ParamSet
	gru   *nn.GRU
	score *nn.MLP
	built bool

	TrainCfg rerank.TrainConfig
}

// NewDLCM returns a DLCM with hidden width qh.
func NewDLCM(qh int, seed int64) *DLCM { return &DLCM{Hidden: qh, Seed: seed} }

// Name implements rerank.Reranker.
func (m *DLCM) Name() string { return "DLCM" }

func (m *DLCM) build(featDim int) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	m.gru = nn.NewGRU(m.ps, "dlcm.gru", featDim, m.Hidden, rng)
	// Score each item from its recurrent state and the list-level context.
	m.score = nn.NewMLP(m.ps, "dlcm.score", []int{2 * m.Hidden, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	m.built = true
}

// Params implements rerank.ListwiseModel.
func (m *DLCM) Params() *nn.ParamSet { return m.ps }

// TapeCapHint implements rerank.TapeSized: the GRU recurrence dominates at
// ~15 nodes per list position.
func (m *DLCM) TapeCapHint() int { return 64*16 + 64 }

// Logits implements rerank.ListwiseModel.
func (m *DLCM) Logits(t *nn.Tape, inst *rerank.Instance, _ bool) *nn.Node {
	if !m.built {
		m.build(inst.FeatureDim())
	}
	x := t.Constant(inst.ListFeatures())
	states := m.gru.Forward(t, x) // L×qh
	l := inst.L()
	context := t.SliceRows(states, l-1, l) // final state, 1×qh
	ctxRows := make([]*nn.Node, l)
	for i := range ctxRows {
		ctxRows[i] = context
	}
	joint := t.ConcatCols(states, t.ConcatRows(ctxRows...))
	return m.score.Forward(t, joint)
}

// Fit implements rerank.Trainable.
func (m *DLCM) Fit(train []*rerank.Instance) error {
	if !m.built && len(train) > 0 {
		m.build(train[0].FeatureDim())
	}
	cfg := m.TrainCfg
	if cfg.Epochs == 0 {
		cfg = rerank.DefaultTrainConfig(m.Seed)
	}
	_, err := rerank.TrainListwise(m, train, cfg)
	return err
}

// Scores implements rerank.Reranker.
func (m *DLCM) Scores(inst *rerank.Instance) []float64 {
	return rerank.ScoreWithSigmoid(m, inst)
}
