package baselines

import (
	"math"

	"repro/internal/diversify"
	"repro/internal/mat"
	"repro/internal/rerank"
)

// DPP re-ranks with a Determinantal Point Process (Wilhelm et al., CIKM'18)
// using the fast greedy MAP inference of Chen et al. (NeurIPS'18). The
// kernel is L_ij = q_i·S_ij·q_j with quality q from the initial scores and
// similarity S from the items' topic coverage and feature vectors; greedy
// MAP maximizes log det of the selected submatrix incrementally via a
// Cholesky-style update, O(K²·L) overall.
type DPP struct {
	// QualityWeight scales how sharply quality (relevance) enters the
	// kernel: q_i = exp(QualityWeight · rel_i).
	QualityWeight float64
	// FeatureMix blends feature-cosine into the coverage-cosine similarity.
	FeatureMix float64
}

// NewDPP returns a DPP re-ranker with the harness defaults.
func NewDPP() *DPP { return &DPP{QualityWeight: 1.0, FeatureMix: 0.3} }

// Name implements rerank.Reranker.
func (m *DPP) Name() string { return "DPP" }

// Scores implements rerank.Reranker.
func (m *DPP) Scores(inst *rerank.Instance) []float64 {
	l := inst.L()
	kernel := m.Kernel(inst)
	order := GreedyMAP(kernel, l)
	return greedyScores(order, l)
}

// Kernel builds the L-ensemble kernel matrix for an instance.
func (m *DPP) Kernel(inst *rerank.Instance) *mat.Matrix {
	l := inst.L()
	rel := normalizeRelevance(inst.InitScores)
	q := make([]float64, l)
	for i := range q {
		q[i] = math.Exp(m.QualityWeight * rel[i])
	}
	k := mat.New(l, l)
	for i := 0; i < l; i++ {
		fi := inst.ItemFeat(inst.Items[i])
		for j := i; j < l; j++ {
			fj := inst.ItemFeat(inst.Items[j])
			sim := (1-m.FeatureMix)*cosine(inst.Cover[i], inst.Cover[j]) + m.FeatureMix*cosine(fi, fj)
			// Clamp into [0,1] so the kernel stays PSD-friendly; add a
			// diagonal jitter for numerical stability of the greedy update.
			sim = mat.Clamp(sim, 0, 1)
			v := q[i] * sim * q[j]
			if i == j {
				v = q[i]*q[i] + 1e-6
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	return k
}

// GreedyMAP returns the greedy MAP selection order over the kernel,
// selecting up to k items. The Chen et al. incremental-Cholesky loop was
// lifted verbatim into internal/diversify (where it also serves behind
// /v1/rerank); this alias keeps PD-GAN and the benchmark suite on their
// historical entry point.
func GreedyMAP(kernel *mat.Matrix, k int) []int {
	return diversify.GreedyMAP(kernel, k)
}

// LogDet returns log det of the kernel submatrix indexed by sel, computed
// by Cholesky. It exists for tests verifying the greedy objective.
func LogDet(kernel *mat.Matrix, sel []int) float64 {
	return diversify.LogDet(kernel, sel)
}

func cosine(a, b []float64) float64 {
	na, nb := mat.NormVec(a), mat.NormVec(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return mat.Dot(a, b) / (na * nb)
}
