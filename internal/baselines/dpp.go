package baselines

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rerank"
)

// DPP re-ranks with a Determinantal Point Process (Wilhelm et al., CIKM'18)
// using the fast greedy MAP inference of Chen et al. (NeurIPS'18). The
// kernel is L_ij = q_i·S_ij·q_j with quality q from the initial scores and
// similarity S from the items' topic coverage and feature vectors; greedy
// MAP maximizes log det of the selected submatrix incrementally via a
// Cholesky-style update, O(K²·L) overall.
type DPP struct {
	// QualityWeight scales how sharply quality (relevance) enters the
	// kernel: q_i = exp(QualityWeight · rel_i).
	QualityWeight float64
	// FeatureMix blends feature-cosine into the coverage-cosine similarity.
	FeatureMix float64
}

// NewDPP returns a DPP re-ranker with the harness defaults.
func NewDPP() *DPP { return &DPP{QualityWeight: 1.0, FeatureMix: 0.3} }

// Name implements rerank.Reranker.
func (m *DPP) Name() string { return "DPP" }

// Scores implements rerank.Reranker.
func (m *DPP) Scores(inst *rerank.Instance) []float64 {
	l := inst.L()
	kernel := m.Kernel(inst)
	order := GreedyMAP(kernel, l)
	return greedyScores(order, l)
}

// Kernel builds the L-ensemble kernel matrix for an instance.
func (m *DPP) Kernel(inst *rerank.Instance) *mat.Matrix {
	l := inst.L()
	rel := normalizeRelevance(inst.InitScores)
	q := make([]float64, l)
	for i := range q {
		q[i] = math.Exp(m.QualityWeight * rel[i])
	}
	k := mat.New(l, l)
	for i := 0; i < l; i++ {
		fi := inst.ItemFeat(inst.Items[i])
		for j := i; j < l; j++ {
			fj := inst.ItemFeat(inst.Items[j])
			sim := (1-m.FeatureMix)*cosine(inst.Cover[i], inst.Cover[j]) + m.FeatureMix*cosine(fi, fj)
			// Clamp into [0,1] so the kernel stays PSD-friendly; add a
			// diagonal jitter for numerical stability of the greedy update.
			sim = mat.Clamp(sim, 0, 1)
			v := q[i] * sim * q[j]
			if i == j {
				v = q[i]*q[i] + 1e-6
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	return k
}

// GreedyMAP returns the greedy MAP selection order over the kernel,
// selecting up to k items. It implements Chen et al.'s incremental update:
// after selecting j, every remaining candidate i updates
// e_i = (L_ji − ⟨c_j, c_i⟩)/d_j, appends e_i to its Cholesky row c_i, and
// decreases its marginal gain d_i² by e_i².
func GreedyMAP(kernel *mat.Matrix, k int) []int {
	n := kernel.Rows
	if k > n {
		k = n
	}
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = kernel.At(i, i)
	}
	cvecs := make([][]float64, n)
	selected := make([]bool, n)
	order := make([]int, 0, k)
	for len(order) < k {
		best, bestGain := -1, 0.0
		for i := 0; i < n; i++ {
			if !selected[i] && (best < 0 || d2[i] > bestGain) {
				best, bestGain = i, d2[i]
			}
		}
		if best < 0 || d2[best] <= 1e-12 {
			// Remaining items add no volume; fall back to index order so
			// the returned order is still a full ranking.
			for i := 0; i < n && len(order) < k; i++ {
				if !selected[i] {
					selected[i] = true
					order = append(order, i)
				}
			}
			break
		}
		j := best
		selected[j] = true
		order = append(order, j)
		dj := math.Sqrt(d2[j])
		cj := cvecs[j]
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			var dot float64
			ci := cvecs[i]
			for t := 0; t < len(cj) && t < len(ci); t++ {
				dot += cj[t] * ci[t]
			}
			e := (kernel.At(j, i) - dot) / dj
			cvecs[i] = append(cvecs[i], e)
			d2[i] -= e * e
			if d2[i] < 0 {
				d2[i] = 0
			}
		}
	}
	return order
}

// LogDet returns log det of the kernel submatrix indexed by sel, computed
// by Cholesky. It exists for tests verifying the greedy objective.
func LogDet(kernel *mat.Matrix, sel []int) float64 {
	n := len(sel)
	sub := mat.New(n, n)
	for a, i := range sel {
		for b, j := range sel {
			sub.Set(a, b, kernel.At(i, j))
		}
	}
	// In-place Cholesky.
	var logdet float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := sub.At(i, j)
			for t := 0; t < j; t++ {
				s -= sub.At(i, t) * sub.At(j, t)
			}
			if i == j {
				if s <= 0 {
					return math.Inf(-1)
				}
				sub.Set(i, i, math.Sqrt(s))
				logdet += 2 * math.Log(sub.At(i, i))
			} else {
				sub.Set(i, j, s/sub.At(j, j))
			}
		}
	}
	return logdet
}

func cosine(a, b []float64) float64 {
	na, nb := mat.NormVec(a), mat.NormVec(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return mat.Dot(a, b) / (na * nb)
}
