package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rerank"
)

// permuteInstance returns a copy of inst with its items reordered by perm.
func permuteInstance(inst *rerank.Instance, perm []int) *rerank.Instance {
	out := *inst
	out.Items = make([]int, inst.L())
	out.InitScores = make([]float64, inst.L())
	out.Cover = make([][]float64, inst.L())
	if inst.Labels != nil {
		out.Labels = make([]float64, inst.L())
	}
	for i, p := range perm {
		out.Items[i] = inst.Items[p]
		out.InitScores[i] = inst.InitScores[p]
		out.Cover[i] = inst.Cover[p]
		if inst.Labels != nil {
			out.Labels[i] = inst.Labels[p]
		}
	}
	return &out
}

// TestSetRankPermutationEquivariance checks SetRank's defining property:
// permuting the input list permutes the scores identically, because the
// induced attention blocks carry no positional information.
func TestSetRankPermutationEquivariance(t *testing.T) {
	insts := fixture(t, 1)
	inst := insts[0]
	m := NewSetRank(8, 5)
	// Force parameter build with a first call.
	base := m.Scores(inst)
	perm := rand.New(rand.NewSource(4)).Perm(inst.L())
	permuted := permuteInstance(inst, perm)
	got := m.Scores(permuted)
	for i, p := range perm {
		if math.Abs(got[i]-base[p]) > 1e-9 {
			t.Fatalf("SetRank not permutation-equivariant: pos %d score %v vs source %v", i, got[i], base[p])
		}
	}
}

// TestPRMPositionSensitivity checks the converse for PRM: its positional
// embeddings make scores order-dependent (by design).
func TestPRMPositionSensitivity(t *testing.T) {
	inst := fixture(t, 1)[0]
	m := NewPRM(8, 6)
	base := m.Scores(inst)
	perm := make([]int, inst.L())
	for i := range perm {
		perm[i] = inst.L() - 1 - i
	}
	got := m.Scores(permuteInstance(inst, perm))
	same := true
	for i, p := range perm {
		if math.Abs(got[i]-base[p]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("PRM scores are permutation-equivariant — positional embeddings inactive")
	}
}

// TestDLCMContextDependence: DLCM scores depend on the other items in the
// list (the listwise context), not just the item itself.
func TestDLCMContextDependence(t *testing.T) {
	insts := fixture(t, 2)
	a, b := insts[0], insts[1]
	m := NewDLCM(8, 7)
	sa := m.Scores(a)
	// Replace the tail of a's list with b's items: the score of position 0
	// must change even though the item at position 0 is identical.
	mixed := *a
	mixed.Items = append([]int{a.Items[0]}, b.Items[1:]...)
	mixed.InitScores = append([]float64{a.InitScores[0]}, b.InitScores[1:]...)
	mixed.Cover = append([][]float64{a.Cover[0]}, b.Cover[1:]...)
	mixed.Labels = nil
	sm := m.Scores(&mixed)
	if math.Abs(sa[0]-sm[0]) < 1e-12 {
		t.Fatal("DLCM score ignores listwise context")
	}
}

// TestSRGAUsesHistoryFreeInputs ensures the relevance-oriented baselines
// never touch the behavior history (their defining limitation vs RAPID).
func TestSRGAUsesHistoryFreeInputs(t *testing.T) {
	inst := fixture(t, 1)[0]
	m := NewSRGA(8, 8)
	base := m.Scores(inst)
	altered := *inst
	altered.History = nil
	altered.TopicSeqs = make([][]int, inst.M)
	got := m.Scores(&altered)
	for i := range base {
		if math.Abs(base[i]-got[i]) > 1e-12 {
			t.Fatal("SRGA consumed the behavior history")
		}
	}
}

// TestDPPQualityWeightSharpness: raising the quality weight should push the
// greedy order toward the relevance order.
func TestDPPQualityWeightSharpness(t *testing.T) {
	inst := fixture(t, 1)[0]
	sharp := &DPP{QualityWeight: 8, FeatureMix: 0.3}
	order := rerank.Apply(sharp, inst)
	relOrder := rerank.OrderByScores(inst.Items, inst.InitScores)
	if order[0] != relOrder[0] {
		t.Fatalf("sharp DPP first pick %d, relevance first %d", order[0], relOrder[0])
	}
}

// TestMMRThetaMonotonicity: decreasing θ can only hold or increase the
// coverage of the selected prefix.
func TestMMRThetaMonotonicity(t *testing.T) {
	inst := fixture(t, 1)[0]
	prevDiv := -1.0
	for _, theta := range []float64{1.0, 0.7, 0.4, 0.1} {
		order := rerank.Apply(&MMR{Theta: theta}, inst)
		idx := map[int]int{}
		for pos, v := range inst.Items {
			idx[v] = pos
		}
		var cov [][]float64
		for _, v := range order[:5] {
			cov = append(cov, inst.Cover[idx[v]])
		}
		var div float64
		for _, c := range coverage(cov, inst.M) {
			div += c
		}
		if div < prevDiv-0.3 { // mild slack: greedy is not strictly nested
			t.Fatalf("coverage dropped sharply as θ decreased: %v → %v", prevDiv, div)
		}
		if div > prevDiv {
			prevDiv = div
		}
	}
}

// TestAdpMMRFocusedVsDiverse: a user with concentrated history gets a more
// relevance-like θ than a user with spread history.
func TestAdpMMRFocusedVsDiverse(t *testing.T) {
	cfg := dataset.TaobaoLike(77)
	cfg.NumUsers = 40
	cfg.NumItems = 80
	cfg.Categories = 15
	cfg.RerankRequests = 8
	cfg.TestRequests = 4
	d := dataset.MustGenerate(cfg)
	rng := rand.New(rand.NewSource(1))
	// Find the most and least entropic users by history.
	var lo, hi *rerank.Instance
	var loH, hiH = math.Inf(1), math.Inf(-1)
	for _, p := range d.RerankPools {
		items := p.Candidates[:10]
		req := dataset.Request{User: p.User, Items: items, InitScores: make([]float64, 10)}
		inst := rerank.NewInstance(d, req, rng)
		h := entropyOf(inst.HistoryPreference())
		if h < loH {
			loH, lo = h, inst
		}
		if h > hiH {
			hiH, hi = h, inst
		}
	}
	if lo == nil || hi == nil || loH == hiH {
		t.Skip("degenerate population")
	}
	// The diverse user's effective diversity weight must exceed the
	// focused user's — verified through the internal propensity formula.
	adp := NewAdpMMR()
	wLo := adp.MaxDiversityWeight * loH / math.Log(float64(lo.M))
	wHi := adp.MaxDiversityWeight * hiH / math.Log(float64(hi.M))
	if wHi <= wLo {
		t.Fatalf("diverse propensity %v not above focused %v", wHi, wLo)
	}
}

func entropyOf(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}
