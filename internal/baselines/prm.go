package baselines

import (
	"math/rand"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
)

// PRM is Pei et al.'s Personalized Re-ranking Model: item features (with
// the personalized initial-ranker score) pass through transformer encoder
// blocks whose self-attention models the cross-item interactions, followed
// by a position-wise scoring layer. Learned positional embeddings are added
// to the projected inputs as in the original.
type PRM struct {
	Hidden int
	Blocks int
	Heads  int
	MaxLen int
	Seed   int64

	ps     *nn.ParamSet
	proj   *nn.Dense
	posEmb *nn.Param
	blocks []*nn.TransformerBlock
	score  *nn.MLP
	built  bool

	TrainCfg rerank.TrainConfig
}

// NewPRM returns a PRM with hidden width qh.
func NewPRM(qh int, seed int64) *PRM {
	return &PRM{Hidden: qh, Blocks: 2, Heads: 2, MaxLen: 64, Seed: seed}
}

// Name implements rerank.Reranker.
func (m *PRM) Name() string { return "PRM" }

func (m *PRM) build(featDim int) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	dim := 2 * m.Hidden
	m.proj = nn.NewDense(m.ps, "prm.proj", featDim, dim, nn.Linear, rng)
	m.posEmb = m.ps.New("prm.pos", mat.RandNormal(m.MaxLen, dim, 0, 0.02, rng))
	for b := 0; b < m.Blocks; b++ {
		m.blocks = append(m.blocks, nn.NewTransformerBlock(m.ps, "prm.block"+itoa(b), dim, m.Heads, 2*dim, rng))
	}
	m.score = nn.NewMLP(m.ps, "prm.score", []int{dim, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	m.built = true
}

// Params implements rerank.ListwiseModel.
func (m *PRM) Params() *nn.ParamSet { return m.ps }

// TapeCapHint implements rerank.TapeSized: transformer blocks record a
// bounded number of (matrix-level) nodes regardless of list length.
func (m *PRM) TapeCapHint() int { return 64 + m.Blocks*(m.Heads*16+32) }

// Logits implements rerank.ListwiseModel.
func (m *PRM) Logits(t *nn.Tape, inst *rerank.Instance, _ bool) *nn.Node {
	if !m.built {
		m.build(inst.FeatureDim())
	}
	x := t.Constant(inst.ListFeatures())
	h := m.proj.Forward(t, x)
	l := inst.L()
	if l > m.MaxLen {
		panic("baselines: PRM list longer than MaxLen")
	}
	pos := t.SliceRows(t.Use(m.posEmb), 0, l)
	h = t.Add(h, pos)
	for _, b := range m.blocks {
		h = b.Forward(t, h, nil)
	}
	return m.score.Forward(t, h)
}

// Fit implements rerank.Trainable.
func (m *PRM) Fit(train []*rerank.Instance) error {
	if !m.built && len(train) > 0 {
		m.build(train[0].FeatureDim())
	}
	cfg := m.TrainCfg
	if cfg.Epochs == 0 {
		cfg = rerank.DefaultTrainConfig(m.Seed)
	}
	_, err := rerank.TrainListwise(m, train, cfg)
	return err
}

// Scores implements rerank.Reranker.
func (m *PRM) Scores(inst *rerank.Instance) []float64 {
	return rerank.ScoreWithSigmoid(m, inst)
}

func itoa(i int) string {
	const digits = "0123456789"
	if i < 10 {
		return digits[i : i+1]
	}
	return itoa(i/10) + digits[i%10:i%10+1]
}
