package baselines

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/rerank"
)

// SRGA (Qian et al., WSDM'22) augments listwise attention with two
// structural priors of feed browsing: unidirectionality (users scan
// top-down, so attention is causal) and locality (neighboring items
// interact most). A learned gate mixes the unidirectional and the local
// attention views per position.
type SRGA struct {
	Hidden int
	Radius int // locality radius of the banded attention
	Seed   int64

	ps    *nn.ParamSet
	proj  *nn.Dense
	uni   *nn.AttentionHead
	local *nn.AttentionHead
	gate  *nn.Dense
	norm  *nn.LayerNorm
	score *nn.MLP
	built bool

	TrainCfg rerank.TrainConfig
}

// NewSRGA returns an SRGA with hidden width qh.
func NewSRGA(qh int, seed int64) *SRGA {
	return &SRGA{Hidden: qh, Radius: 2, Seed: seed}
}

// Name implements rerank.Reranker.
func (m *SRGA) Name() string { return "SRGA" }

func (m *SRGA) build(featDim int) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	dim := 2 * m.Hidden
	m.proj = nn.NewDense(m.ps, "srga.proj", featDim, dim, nn.Linear, rng)
	m.uni = nn.NewAttentionHead(m.ps, "srga.uni", dim, dim, rng)
	m.local = nn.NewAttentionHead(m.ps, "srga.local", dim, dim, rng)
	m.gate = nn.NewDense(m.ps, "srga.gate", dim, dim, nn.SigmoidAct, rng)
	m.norm = nn.NewLayerNorm(m.ps, "srga.ln", dim)
	m.score = nn.NewMLP(m.ps, "srga.score", []int{dim, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	m.built = true
}

// Params implements rerank.ListwiseModel.
func (m *SRGA) Params() *nn.ParamSet { return m.ps }

// TapeCapHint implements rerank.TapeSized: global + local attention views,
// gate, norm and scorer — all matrix-level ops.
func (m *SRGA) TapeCapHint() int { return 256 }

// Logits implements rerank.ListwiseModel.
func (m *SRGA) Logits(t *nn.Tape, inst *rerank.Instance, _ bool) *nn.Node {
	if !m.built {
		m.build(inst.FeatureDim())
	}
	h := m.proj.Forward(t, t.Constant(inst.ListFeatures()))
	l := inst.L()
	uni := m.uni.Forward(t, h, nn.CausalMask(l))
	loc := m.local.Forward(t, h, nn.BandMask(l, m.Radius))
	g := m.gate.Forward(t, h)
	one := t.Constant(onesMat(l, g.Value.Cols))
	mixed := t.Add(t.Mul(g, uni), t.Mul(t.Sub(one, g), loc))
	out := m.norm.Forward(t, t.Add(h, mixed))
	return m.score.Forward(t, out)
}

// Fit implements rerank.Trainable.
func (m *SRGA) Fit(train []*rerank.Instance) error {
	if !m.built && len(train) > 0 {
		m.build(train[0].FeatureDim())
	}
	cfg := m.TrainCfg
	if cfg.Epochs == 0 {
		cfg = rerank.DefaultTrainConfig(m.Seed)
	}
	_, err := rerank.TrainListwise(m, train, cfg)
	return err
}

// Scores implements rerank.Reranker.
func (m *SRGA) Scores(inst *rerank.Instance) []float64 {
	return rerank.ScoreWithSigmoid(m, inst)
}
