package baselines

import (
	"math/rand"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
)

// DESA (Qin et al., CIKM'20) jointly estimates relevance and diversity with
// self-attention: one encoder attends over the item representations (the
// relevance view) and a second attends over the items' topic-coverage
// vectors (the explicit-novelty view); the two are fused per position.
// Unlike RAPID, the diversity view is identical for all users.
type DESA struct {
	Hidden int
	Seed   int64

	ps      *nn.ParamSet
	relProj *nn.Dense
	relAttn *nn.MultiHeadAttention
	relNorm *nn.LayerNorm
	divProj *nn.Dense
	divAttn *nn.AttentionHead
	score   *nn.MLP
	built   bool

	TrainCfg rerank.TrainConfig
}

// NewDESA returns a DESA with hidden width qh.
func NewDESA(qh int, seed int64) *DESA { return &DESA{Hidden: qh, Seed: seed} }

// Name implements rerank.Reranker.
func (m *DESA) Name() string { return "DESA" }

func (m *DESA) build(featDim, topicsN int) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	dim := 2 * m.Hidden
	m.relProj = nn.NewDense(m.ps, "desa.rel.proj", featDim, dim, nn.Linear, rng)
	m.relAttn = nn.NewMultiHeadAttention(m.ps, "desa.rel.attn", dim, 2, rng)
	m.relNorm = nn.NewLayerNorm(m.ps, "desa.rel.ln", dim)
	m.divProj = nn.NewDense(m.ps, "desa.div.proj", 2*topicsN, m.Hidden, nn.Tanh, rng)
	m.divAttn = nn.NewAttentionHead(m.ps, "desa.div.attn", m.Hidden, m.Hidden, rng)
	m.score = nn.NewMLP(m.ps, "desa.score", []int{dim + m.Hidden, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	m.built = true
}

// Params implements rerank.ListwiseModel.
func (m *DESA) Params() *nn.ParamSet { return m.ps }

// TapeCapHint implements rerank.TapeSized: two attention views plus the
// scoring MLP, all matrix-level ops.
func (m *DESA) TapeCapHint() int { return 192 }

// Logits implements rerank.ListwiseModel.
func (m *DESA) Logits(t *nn.Tape, inst *rerank.Instance, _ bool) *nn.Node {
	if !m.built {
		m.build(inst.FeatureDim(), inst.M)
	}
	// Relevance view.
	h := m.relProj.Forward(t, t.Constant(inst.ListFeatures()))
	h = m.relNorm.Forward(t, t.Add(h, m.relAttn.Forward(t, h, nil)))
	// Diversity view: coverage plus marginal diversity, attended across
	// the list — the novelty of an item relative to its peers.
	l := inst.L()
	divFeat := mat.New(l, 2*inst.M)
	md := inst.MarginalDiversity()
	for i := 0; i < l; i++ {
		row := divFeat.Row(i)
		copy(row, inst.Cover[i])
		copy(row[inst.M:], md[i])
	}
	d := m.divProj.Forward(t, t.Constant(divFeat))
	d = m.divAttn.Forward(t, d, nil)
	return m.score.Forward(t, t.ConcatCols(h, d))
}

// Fit implements rerank.Trainable.
func (m *DESA) Fit(train []*rerank.Instance) error {
	if !m.built && len(train) > 0 {
		m.build(train[0].FeatureDim(), train[0].M)
	}
	cfg := m.TrainCfg
	if cfg.Epochs == 0 {
		cfg = rerank.DefaultTrainConfig(m.Seed)
	}
	_, err := rerank.TrainListwise(m, train, cfg)
	return err
}

// Scores implements rerank.Reranker.
func (m *DESA) Scores(inst *rerank.Instance) []float64 {
	return rerank.ScoreWithSigmoid(m, inst)
}

func onesMat(r, c int) *mat.Matrix {
	o := mat.New(r, c)
	o.Fill(1)
	return o
}
