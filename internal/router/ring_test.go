package router

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("replica-%d", i)
	}
	return ids
}

func TestRingValidation(t *testing.T) {
	if _, err := newRing(nil, 64); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := newRing([]string{"a", ""}, 64); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := newRing([]string{"a", "b", "a"}, 64); err == nil {
		t.Error("duplicate id accepted")
	}
}

// TestRingSequence: the fallback sequence is deterministic, starts at the
// owner, and enumerates every replica exactly once.
func TestRingSequence(t *testing.T) {
	r, err := newRing(ringIDs(5), 64)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 1000; key += 37 {
		seq := r.sequence(key)
		if len(seq) != 5 {
			t.Fatalf("key %d: sequence has %d entries, want 5", key, len(seq))
		}
		if seq[0] != r.owner(key) {
			t.Fatalf("key %d: sequence starts at %d, owner is %d", key, seq[0], r.owner(key))
		}
		seen := map[int]bool{}
		for _, i := range seq {
			if seen[i] {
				t.Fatalf("key %d: replica %d repeated in %v", key, i, seq)
			}
			seen[i] = true
		}
		again := r.sequence(key)
		for i := range seq {
			if seq[i] != again[i] {
				t.Fatalf("key %d: sequence not deterministic: %v vs %v", key, seq, again)
			}
		}
	}
}

// TestRingBalance: with 64 vnodes the keyspace split across 5 replicas is
// roughly even — no replica owns less than half or more than double its
// fair share over a large key sample.
func TestRingBalance(t *testing.T) {
	const replicas, keys = 5, 20000
	r, err := newRing(ringIDs(replicas), 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, replicas)
	// A multiplicative walk spreads keys across the hash space.
	key := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < keys; i++ {
		counts[r.owner(key)]++
		key = key*0x9e3779b97f4a7c15 + 1
	}
	fair := keys / replicas
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("replica %d owns %d of %d keys (fair share %d): %v", i, c, keys, fair, counts)
		}
	}
}

// TestRingConsistency: removing one replica only moves the keys it owned —
// every other key keeps its owner. This is the property that makes ejection
// cheap: the survivors' caches stay warm.
func TestRingConsistency(t *testing.T) {
	ids := ringIDs(5)
	full, err := newRing(ids, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last replica; the survivors keep their indices.
	reduced, err := newRing(ids[:4], 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	key := uint64(0x9e3779b97f4a7c15)
	const keys = 10000
	for i := 0; i < keys; i++ {
		was := full.owner(key)
		if was != 4 && reduced.owner(key) != was {
			moved++
		}
		key = key*0x9e3779b97f4a7c15 + 1
	}
	if moved != 0 {
		t.Errorf("%d of %d keys owned by survivors changed owner on removal", moved, keys)
	}
}
