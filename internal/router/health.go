package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// HealthConfig bounds the per-replica readiness prober. The zero value is
// usable: every field falls back to the listed default.
type HealthConfig struct {
	// Interval is the steady-state probe period while a replica is healthy
	// (default 1s).
	Interval time.Duration
	// Timeout bounds one probe round trip (default 500ms).
	Timeout time.Duration
	// MaxBackoff caps the probe backoff while a replica stays unhealthy
	// (default 10s). Probes of a failing replica back off exponentially from
	// Interval so a dead node costs the router almost nothing, but the first
	// successful probe re-admits it immediately.
	MaxBackoff time.Duration
	// Ejections is how many consecutive probe failures eject a replica
	// (default 2): one lost probe packet must not drain a healthy node.
	Ejections int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Second
	}
	if c.Ejections <= 0 {
		c.Ejections = 2
	}
	return c
}

// replicaState is the router's live view of one replica: its breaker, the
// prober's verdicts, and the model version it last advertised.
type replicaState struct {
	id   string
	base string // normalized base URL, no trailing slash
	br   *breaker

	mu       sync.Mutex
	healthy  bool
	draining bool
	version  string
	lastErr  string
	failures int // consecutive probe failures
}

// snapshot returns the mutable fields under one lock acquisition.
func (rs *replicaState) snapshot() (healthy, draining bool, version, lastErr string, failures int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.healthy, rs.draining, rs.version, rs.lastErr, rs.failures
}

// eligible reports whether the forward path may try this replica at all
// (the breaker is consulted separately, because allow() has side effects).
func (rs *replicaState) eligible() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.healthy && !rs.draining
}

// markDraining records an in-band draining shed (the replica answered 503
// with X-Shed-Reason: draining) so the forward path stops picking it before
// the next probe confirms.
func (rs *replicaState) markDraining() {
	rs.mu.Lock()
	rs.draining = true
	rs.mu.Unlock()
}

// probeLoop is one replica's prober goroutine: GET /readyz at Interval while
// healthy, exponential backoff up to MaxBackoff while not.
func (r *Router) probeLoop(rs *replicaState) {
	defer r.wg.Done()
	timer := time.NewTimer(0) // first probe immediately
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-timer.C:
		}
		timer.Reset(r.probeOnce(rs))
	}
}

// probeOnce runs one readiness probe, applies the verdict, and returns the
// delay until the next probe.
func (r *Router) probeOnce(rs *replicaState) time.Duration {
	h := r.cfg.Health
	st, err := r.probe(rs)
	switch {
	case err != nil:
		return r.probeFailed(rs, err.Error())
	case st.Draining:
		// Draining is a clean goodbye, not a failure: eject without
		// penalizing the replica's breaker and keep probing at the steady
		// interval — the replaced process reuses the address.
		rs.mu.Lock()
		rs.draining = true
		rs.healthy = false
		rs.lastErr = ""
		rs.failures = 0
		rs.mu.Unlock()
		r.refreshFleetGauges()
		return h.Interval
	case !st.Ready:
		return r.probeFailed(rs, "not ready")
	default:
		rs.mu.Lock()
		wasHealthy := rs.healthy
		rs.healthy = true
		rs.draining = false
		rs.version = st.ModelVersion
		rs.lastErr = ""
		rs.failures = 0
		rs.mu.Unlock()
		if !wasHealthy {
			// Re-admission: a fresh process behind the same address starts
			// with a clean slate — the old process's error window is not
			// evidence against the new one.
			rs.br.reset()
			r.logf("router: replica %s re-admitted (version %q)", rs.id, st.ModelVersion)
		}
		r.refreshFleetGauges()
		return h.Interval
	}
}

// probeFailed applies one probe failure and returns the backed-off delay.
func (r *Router) probeFailed(rs *replicaState, reason string) time.Duration {
	h := r.cfg.Health
	rs.mu.Lock()
	rs.failures++
	rs.lastErr = reason
	eject := rs.failures >= h.Ejections && rs.healthy
	if rs.failures >= h.Ejections {
		rs.healthy = false
	}
	failures := rs.failures
	rs.mu.Unlock()
	if eject {
		// Stop in-band traffic immediately rather than waiting for request
		// failures to accumulate in the breaker window.
		rs.br.forceOpen()
		r.logf("router: replica %s ejected: %s", rs.id, reason)
		r.refreshFleetGauges()
	}
	// Exponential backoff from Interval, capped: 1s, 2s, 4s, ... MaxBackoff.
	delay := h.Interval
	for i := h.Ejections; i < failures && delay < h.MaxBackoff; i++ {
		delay *= 2
	}
	if delay > h.MaxBackoff {
		delay = h.MaxBackoff
	}
	return delay
}

// probe issues one GET /readyz and decodes the body. The status-code
// contract (200 ready / 503 not) is authoritative; the JSON body refines it
// with the draining flag and the pinned model version when present.
func (r *Router) probe(rs *replicaState) (serve.ReadyStatus, error) {
	req, err := http.NewRequest(http.MethodGet, rs.base+"/readyz", nil)
	if err != nil {
		return serve.ReadyStatus{}, err
	}
	resp, err := r.probeClient.Do(req)
	if err != nil {
		return serve.ReadyStatus{}, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var st serve.ReadyStatus
	if json.Unmarshal(body, &st) != nil {
		// Pre-body replicas answer plain text; fall back to the status code.
		st = serve.ReadyStatus{}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		st.Ready = true
		return st, nil
	case http.StatusServiceUnavailable:
		st.Ready = false
		return st, nil
	default:
		return serve.ReadyStatus{}, fmt.Errorf("readyz status %d", resp.StatusCode)
	}
}

// refreshFleetGauges recomputes the cross-replica gauges: per-replica health
// and the version-skew indicator (more than one distinct model version
// advertised by healthy replicas — expected transiently during a rollout,
// an alert if it persists).
func (r *Router) refreshFleetGauges() {
	versions := map[string]bool{}
	for _, rs := range r.replicas {
		healthy, _, version, _, _ := rs.snapshot()
		if healthy {
			r.met.healthy.With(rs.id).Set(1)
			if version != "" {
				versions[version] = true
			}
		} else {
			r.met.healthy.With(rs.id).Set(0)
		}
	}
	r.met.versions.Set(float64(len(versions)))
	if len(versions) > 1 {
		r.met.skew.Set(1)
	} else {
		r.met.skew.Set(0)
	}
}
