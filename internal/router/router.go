package router

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Replica names one rapidserve backend.
type Replica struct {
	// ID is the stable identity hashed onto the ring. It must survive
	// restarts and address changes — keyspace ownership follows the ID, not
	// the URL.
	ID string `json:"id"`
	// URL is the replica's base URL, e.g. "http://10.0.0.3:8080".
	URL string `json:"url"`
}

// RetryConfig bounds the retry path. The zero value is usable: every field
// falls back to the listed default.
type RetryConfig struct {
	// MaxAttempts is the total tries per request including the primary
	// (default 3). Draining failovers — the replica said "go elsewhere", not
	// "I failed" — do not count against it.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff between retries (default
	// 25ms); MaxBackoff caps it (default 1s). The sleep is jittered to half
	// its nominal value and stretched to honor an upstream Retry-After.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BudgetRatio is the retry-budget earn rate: each primary request
	// deposits this many tokens and each retry or hedge withdraws one
	// (default 0.1 — retries may add at most ~10% load). BudgetCap bounds
	// the burst (default 100 tokens).
	BudgetRatio float64
	BudgetCap   float64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.BudgetRatio <= 0 {
		c.BudgetRatio = 0.1
	}
	if c.BudgetCap <= 0 {
		c.BudgetCap = 100
	}
	return c
}

// Config assembles a Router.
type Config struct {
	// Replicas is the fleet; at least one is required.
	Replicas []Replica
	// VNodes is the virtual-node count per replica on the hash ring
	// (default 64).
	VNodes int
	// HedgeDelay, when positive, arms request hedging: if the owning replica
	// has not answered within this delay, a second attempt starts on the
	// next replica in the key's fallback sequence and the first response
	// wins. Hedges withdraw from the same retry budget, so a slow fleet
	// cannot be buried under its own hedges. Zero disables hedging.
	HedgeDelay time.Duration
	// AttemptTimeout bounds one proxied attempt (default 5s).
	AttemptTimeout time.Duration

	Health  HealthConfig
	Breaker BreakerConfig
	Retry   RetryConfig

	// Client issues proxied requests; nil means a default client. The probe
	// path always uses its own short-timeout client.
	Client *http.Client
	// Registry receives the router metrics; nil means a private registry.
	Registry *obs.Registry
	// Log receives operational one-liners; nil means silent.
	Log func(format string, args ...any)
}

// Router shards /rerank traffic across replicas by consistent hash and keeps
// serving through replica failures. See the package comment for the design.
type Router struct {
	cfg         Config
	ring        *ring
	replicas    []*replicaState
	client      *http.Client
	probeClient *http.Client
	reg         *obs.Registry
	met         *routerMetrics
	budget      *retryBudget
	now         func() time.Time
	jitter      func() float64 // uniform [0,1) for backoff spread

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// New validates cfg and assembles a Router. Call Start to launch the health
// probers and Close to stop them.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: no replicas")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 5 * time.Second
	}
	cfg.Health = cfg.Health.withDefaults()
	cfg.Breaker = cfg.Breaker.withDefaults()
	cfg.Retry = cfg.Retry.withDefaults()

	ids := make([]string, len(cfg.Replicas))
	for i, rep := range cfg.Replicas {
		ids[i] = rep.ID
		u, err := url.Parse(rep.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: replica %q has invalid URL %q", rep.ID, rep.URL)
		}
	}
	rg, err := newRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}

	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		cfg:         cfg,
		ring:        rg,
		client:      cfg.Client,
		probeClient: &http.Client{Timeout: cfg.Health.Timeout},
		reg:         reg,
		met:         newRouterMetrics(reg),
		budget: &retryBudget{
			ratio: cfg.Retry.BudgetRatio,
			cap:   cfg.Retry.BudgetCap,
			// Start full so a cold router can retry from its first request.
			tokens: cfg.Retry.BudgetCap,
		},
		now:    time.Now,
		jitter: rand.Float64,
		stop:   make(chan struct{}),
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	for _, rep := range cfg.Replicas {
		rs := &replicaState{
			id:      rep.ID,
			base:    strings.TrimRight(rep.URL, "/"),
			healthy: true, // optimistic until the first probe says otherwise
		}
		rs.br = newBreaker(cfg.Breaker, func() time.Time { return r.now() })
		id := rep.ID
		rs.br.onTransition = func(_, to BreakerState) {
			r.met.breakerState.With(id).Set(float64(to))
			r.met.breakerTransitions.With(to.String()).Inc()
		}
		r.replicas = append(r.replicas, rs)
		// Eager series: every replica visible on /metrics from the start.
		r.met.healthy.With(id).Set(1)
		r.met.breakerState.With(id).Set(float64(BreakerClosed))
	}
	for _, to := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		r.met.breakerTransitions.With(to.String())
	}
	return r, nil
}

// Start launches one health-prober goroutine per replica. Safe to skip in
// tests that drive the forward path directly.
func (r *Router) Start() {
	r.startOnce.Do(func() {
		for _, rs := range r.replicas {
			r.wg.Add(1)
			go r.probeLoop(rs)
		}
	})
}

// Close stops the probers and waits for them.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Registry returns the metrics registry serving /metrics.
func (r *Router) Registry() *obs.Registry { return r.reg }

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		r.cfg.Log(format, args...)
	}
}

// Handler returns the router's HTTP surface: the three proxied scoring
// endpoints plus the router's own health, metrics and fleet-introspection
// endpoints.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rerank", func(w http.ResponseWriter, req *http.Request) { r.handleProxy(w, req, false) })
	mux.HandleFunc("POST /v1/rerank", func(w http.ResponseWriter, req *http.Request) { r.handleProxy(w, req, false) })
	mux.HandleFunc("POST /v1/rerank:batch", func(w http.ResponseWriter, req *http.Request) { r.handleProxy(w, req, true) })
	mux.Handle("GET /metrics", r.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		for _, rs := range r.replicas {
			if rs.eligible() {
				w.WriteHeader(http.StatusOK)
				io.WriteString(w, "ok\n")
				return
			}
		}
		http.Error(w, "no healthy replica", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("GET /admin/fleet", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.FleetStatus())
	})
	return mux
}

// maxBodyBytes mirrors the serving layer's request cap.
const maxBodyBytes = 8 << 20

// handleProxy is the data path: derive the routing key, run the forward
// loop, relay the winning response.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request, batch bool) {
	r.met.requests.Inc()
	start := r.now()
	defer func() { r.met.latency.ObserveDuration(r.now().Sub(start)) }()

	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		r.met.responses.With("bad_input").Inc()
		http.Error(w, "body too large or unreadable", http.StatusBadRequest)
		return
	}
	key, err := routeKeyFor(body, batch)
	if err != nil {
		// Reject malformed JSON here: no replica could serve it, so spending
		// retries on it would only burn budget.
		r.met.responses.With("bad_input").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	res := r.forward(req.Context(), key, req.URL.Path, body, req.Header.Get("Content-Type"))
	if res != nil && res.class == attemptCanceled {
		// The client hung up; there is no one to answer.
		r.met.responses.With("canceled").Inc()
		return
	}
	if res == nil || res.err != nil {
		// Nothing relayable: no admitted replica, or every attempt died
		// without a complete HTTP exchange (timeout / connection reset).
		r.met.responses.With("unavailable").Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no healthy replica", http.StatusServiceUnavailable)
		return
	}
	r.met.responses.With(responseClass(res.status)).Inc()
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	for _, h := range []string{"Retry-After", serve.ShedReasonHeader} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Router-Replica", res.replica.id)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func responseClass(status int) string {
	switch {
	case status < 300:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status < 500:
		return "bad_input"
	case status == http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "error"
	}
}

// routeKeyFor derives the consistent-hash key from the request body using
// the same serve.RouteKey the serving layer uses for canary splits: requests
// for the same user land on the same replica across retries and restarts. A
// batch hashes its members' keys together, so a stable batch is also stable.
func routeKeyFor(body []byte, batch bool) (uint64, error) {
	if batch {
		var breq serve.RerankBatchRequest
		if err := json.Unmarshal(body, &breq); err != nil {
			return 0, fmt.Errorf("malformed batch request: %v", err)
		}
		h := fnv.New64a()
		var buf [8]byte
		for i := range breq.Requests {
			binary.LittleEndian.PutUint64(buf[:], serve.RouteKey(&breq.Requests[i]))
			h.Write(buf[:])
		}
		return h.Sum64(), nil
	}
	var rreq serve.RerankRequest
	if err := json.Unmarshal(body, &rreq); err != nil {
		return 0, fmt.Errorf("malformed request: %v", err)
	}
	return serve.RouteKey(&rreq), nil
}

// Attempt classifications, used both as metric label values and as the
// forward loop's dispatch.
const (
	attemptOK           = "ok"
	attemptTransport    = "transport_error"
	attemptTimeout      = "timeout"
	attemptCanceled     = "canceled"
	attempt5xx          = "http_5xx"
	attemptShedBack     = "shed_backpressure"
	attemptShedDraining = "shed_draining"
)

// attemptResult is one proxied attempt's outcome, body fully read.
type attemptResult struct {
	replica    *replicaState
	status     int
	header     http.Header
	body       []byte
	err        error
	class      string
	retryAfter time.Duration
}

// relayable reports whether this result should be sent to the client if it
// wins: any complete HTTP exchange that is not a shed or server error.
func (a *attemptResult) relayable() bool {
	return a.err == nil && a.class == attemptOK
}

// forward runs the retry/hedge loop for one request and returns the winning
// result, or nil if no replica could serve it. All scoring endpoints are
// idempotent reads (re-ranking mutates nothing), which is what licenses both
// retrying after an ambiguous failure and hedging in the first place.
func (r *Router) forward(ctx context.Context, key uint64, path string, body []byte, contentType string) *attemptResult {
	r.budget.deposit()
	seq := r.ring.sequence(key)
	tried := make([]bool, len(r.replicas))

	// pick returns the first untried, eligible replica in the key's fallback
	// sequence whose breaker admits a request, marking it tried.
	pick := func() *replicaState {
		for _, i := range seq {
			if tried[i] {
				continue
			}
			rs := r.replicas[i]
			if !rs.eligible() {
				tried[i] = true
				continue
			}
			if !rs.br.allow() {
				tried[i] = true
				continue
			}
			tried[i] = true
			return rs
		}
		return nil
	}

	attempts := 0 // budgeted attempts; draining failovers are free
	var last *attemptResult
	var lastRetryAfter time.Duration
	// The loop is doubly bounded: MaxAttempts caps the budgeted tries and
	// pick() exhausts each replica once, so draining failovers terminate too.
	for attempts < r.cfg.Retry.MaxAttempts {
		if attempts > 0 {
			if !r.budget.withdraw() {
				r.met.budgetExhausted.Inc()
				break
			}
			r.met.retries.Inc()
			if !r.sleepBackoff(ctx, attempts, lastRetryAfter) {
				return last // client gone; nothing to relay anyway
			}
		}
		rs := pick()
		if rs == nil {
			break
		}
		var hedgePick func() *replicaState
		if attempts == 0 && r.cfg.HedgeDelay > 0 {
			hedgePick = pick
		}
		res := r.attemptHedged(ctx, rs, hedgePick, path, body, contentType)
		if res.relayable() {
			return res
		}
		last = res
		lastRetryAfter = res.retryAfter
		switch res.class {
		case attemptShedDraining:
			// The replica asked us to go elsewhere — a redirect, not a
			// failure: free failover, no backoff, no budget charge.
			res.replica.markDraining()
			r.refreshFleetGauges()
		case attemptCanceled:
			return last // the client hung up; stop trying
		default:
			attempts++
		}
	}
	return last
}

// sleepBackoff waits the capped, jittered exponential backoff before retry
// n, stretched to honor an upstream Retry-After. Returns false if the client
// context ended first.
func (r *Router) sleepBackoff(ctx context.Context, n int, retryAfter time.Duration) bool {
	c := r.cfg.Retry
	d := c.BaseBackoff << (n - 1)
	if d > c.MaxBackoff || d <= 0 {
		d = c.MaxBackoff
	}
	// Full jitter on the top half keeps retried requests from re-colliding.
	d = d/2 + time.Duration(r.jitter()*float64(d/2))
	if retryAfter > d {
		d = retryAfter
		if d > c.MaxBackoff {
			d = c.MaxBackoff
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// attemptHedged runs one budgeted attempt with optional hedging: if the
// primary has not answered within HedgeDelay, a hedge starts on the next
// replica in the fallback sequence and the first relayable response wins;
// the loser's request context is canceled. Breaker accounting happens
// inside attempt, in the attempt's own goroutine, so a canceled loser never
// counts against its replica.
func (r *Router) attemptHedged(ctx context.Context, primary *replicaState, hedgePick func() *replicaState, path string, body []byte, contentType string) *attemptResult {
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser once the winner returns

	ch := make(chan *attemptResult, 2)
	launch := func(rs *replicaState) {
		go func() { ch <- r.attempt(actx, rs, path, body, contentType) }()
	}
	launch(primary)
	inFlight := 1

	var hedgeC <-chan time.Time
	if hedgePick != nil {
		t := time.NewTimer(r.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}

	var first *attemptResult
	for {
		select {
		case res := <-ch:
			inFlight--
			if res.relayable() {
				if res.replica != primary {
					r.met.hedgeWins.Inc()
				}
				return res
			}
			if inFlight == 0 {
				// Both lost (or no hedge was running): surface the primary's
				// failure — its class is what the retry loop should react to.
				if first != nil {
					return first
				}
				return res
			}
			first = res
		case <-hedgeC:
			hedgeC = nil
			// Hedges amplify load exactly like retries, so they pay from the
			// same budget.
			if !r.budget.withdraw() {
				r.met.budgetExhausted.Inc()
				continue
			}
			hrs := hedgePick()
			if hrs == nil {
				continue
			}
			r.met.hedges.Inc()
			launch(hrs)
			inFlight++
		}
	}
}

// attempt proxies one request to one replica, classifies the outcome, and
// feeds the replica's breaker. It runs in its own goroutine under hedging;
// everything it touches is either local or thread-safe.
func (r *Router) attempt(ctx context.Context, rs *replicaState, path string, body []byte, contentType string) *attemptResult {
	actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	defer cancel()
	res := &attemptResult{replica: rs}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rs.base+path, bytes.NewReader(body))
	if err != nil {
		res.err = err
		res.class = attemptTransport
	} else {
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := r.client.Do(req)
		if err != nil {
			res.err = err
			switch {
			case ctx.Err() != nil:
				// The parent context ended: the client hung up or the hedge
				// winner canceled us. Not the replica's fault.
				res.class = attemptCanceled
			case errors.Is(err, context.DeadlineExceeded):
				res.class = attemptTimeout
			default:
				res.class = attemptTransport
			}
		} else {
			res.status = resp.StatusCode
			res.header = resp.Header
			res.body, err = io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
			resp.Body.Close()
			switch {
			case err != nil && ctx.Err() != nil:
				res.err = err
				res.class = attemptCanceled
			case err != nil:
				res.err = err
				res.class = attemptTransport
			default:
				res.class = classifyStatus(resp.StatusCode, resp.Header.Get(serve.ShedReasonHeader))
				res.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			}
		}
	}
	r.met.attempts.With(res.class).Inc()
	// Breaker accounting: transport errors and 5xx are failures; sheds mean
	// the replica is alive and protecting itself — success, not failure; a
	// canceled attempt is evidence of nothing.
	switch res.class {
	case attemptCanceled:
		rs.br.cancelProbe()
	case attemptTransport, attemptTimeout, attempt5xx:
		rs.br.record(false)
	default:
		rs.br.record(true)
	}
	return res
}

func classifyStatus(status int, shedReason string) string {
	switch {
	case status == http.StatusTooManyRequests:
		return attemptShedBack
	case status == http.StatusServiceUnavailable && shedReason == serve.ShedDraining:
		return attemptShedDraining
	case status >= 500:
		return attempt5xx
	default:
		return attemptOK
	}
}

func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryBudget is a token bucket limiting retry+hedge amplification: each
// primary request earns ratio tokens, each retry or hedge spends one. Under
// a fleet-wide outage the bucket drains and retries stop, so the router
// cannot multiply an overload.
type retryBudget struct {
	ratio float64
	cap   float64

	mu     sync.Mutex
	tokens float64
}

func (b *retryBudget) deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

func (b *retryBudget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (b *retryBudget) balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// routerMetrics is the rapid_router_* metric set.
type routerMetrics struct {
	requests           *obs.Counter
	responses          *obs.CounterVec
	attempts           *obs.CounterVec
	retries            *obs.Counter
	budgetExhausted    *obs.Counter
	hedges             *obs.Counter
	hedgeWins          *obs.Counter
	healthy            *obs.GaugeVec
	breakerState       *obs.GaugeVec
	breakerTransitions *obs.CounterVec
	versions           *obs.Gauge
	skew               *obs.Gauge
	latency            *obs.Histogram
}

func newRouterMetrics(r *obs.Registry) *routerMetrics {
	m := &routerMetrics{
		requests: r.Counter("rapid_router_requests_total",
			"Requests accepted by the router."),
		responses: r.CounterVec("rapid_router_responses_total",
			"Responses relayed to clients by outcome class.", "status"),
		attempts: r.CounterVec("rapid_router_attempts_total",
			"Proxied attempts by outcome.", "result"),
		retries: r.Counter("rapid_router_retries_total",
			"Budgeted retry attempts."),
		budgetExhausted: r.Counter("rapid_router_retry_budget_exhausted_total",
			"Retries or hedges suppressed by an empty retry budget."),
		hedges: r.Counter("rapid_router_hedges_total",
			"Hedge attempts launched."),
		hedgeWins: r.Counter("rapid_router_hedge_wins_total",
			"Requests won by the hedge instead of the primary."),
		healthy: r.GaugeVec("rapid_router_replica_healthy",
			"Replica health by id: 1 admitted, 0 ejected.", "replica"),
		breakerState: r.GaugeVec("rapid_router_breaker_state",
			"Replica breaker state by id: 0 closed, 1 open, 2 half-open.", "replica"),
		breakerTransitions: r.CounterVec("rapid_router_breaker_transitions_total",
			"Breaker state entries by destination state.", "state"),
		versions: r.Gauge("rapid_router_model_versions",
			"Distinct model versions advertised by healthy replicas."),
		skew: r.Gauge("rapid_router_version_skew",
			"1 while healthy replicas advertise more than one model version."),
		latency: r.Histogram("rapid_router_request_latency_seconds",
			"End-to-end router latency including retries and hedges.", nil),
	}
	for _, v := range []string{attemptOK, attemptTransport, attemptTimeout,
		attemptCanceled, attempt5xx, attemptShedBack, attemptShedDraining} {
		m.attempts.With(v)
	}
	for _, v := range []string{"ok", "shed", "bad_input", "unavailable", "error"} {
		m.responses.With(v)
	}
	return m
}

// FleetStatus is the GET /admin/fleet introspection document.
type FleetStatus struct {
	Replicas []ReplicaStatus `json:"replicas"`
	// Versions are the distinct model versions advertised by healthy
	// replicas; VersionSkew is true while there is more than one — expected
	// during a rollout window, an incident if it persists.
	Versions    []string `json:"versions"`
	VersionSkew bool     `json:"version_skew"`
	// RetryBudget is the current token balance of the shared retry budget.
	RetryBudget float64 `json:"retry_budget"`
}

// ReplicaStatus is one replica's row in FleetStatus.
type ReplicaStatus struct {
	ID            string `json:"id"`
	URL           string `json:"url"`
	Healthy       bool   `json:"healthy"`
	Draining      bool   `json:"draining,omitempty"`
	Breaker       string `json:"breaker"`
	ModelVersion  string `json:"model_version,omitempty"`
	LastError     string `json:"last_error,omitempty"`
	ProbeFailures int    `json:"probe_failures,omitempty"`
}

// FleetStatus snapshots the fleet for /admin/fleet.
func (r *Router) FleetStatus() FleetStatus {
	st := FleetStatus{RetryBudget: r.budget.balance()}
	seen := map[string]bool{}
	for _, rs := range r.replicas {
		healthy, draining, version, lastErr, failures := rs.snapshot()
		st.Replicas = append(st.Replicas, ReplicaStatus{
			ID:            rs.id,
			URL:           rs.base,
			Healthy:       healthy,
			Draining:      draining,
			Breaker:       rs.br.currentState().String(),
			ModelVersion:  version,
			LastError:     lastErr,
			ProbeFailures: failures,
		})
		if healthy && version != "" && !seen[version] {
			seen[version] = true
			st.Versions = append(st.Versions, version)
		}
	}
	st.VersionSkew = len(st.Versions) > 1
	return st
}
