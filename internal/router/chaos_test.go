package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/rerank"
	"repro/internal/serve"
)

// echoScorer returns the initial scores — a fast, deterministic model for
// fleet tests that exercise the routing layer, not ranking quality.
type echoScorer struct{}

func (echoScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return inst.InitScores, nil
}
func (echoScorer) Name() string { return "echo" }

// fleetGeometry is the tiny model geometry every fleet-test request matches.
var fleetGeometry = core.Config{UserDim: 3, ItemDim: 2, Topics: 2}

// fleetBody builds a geometry-valid request whose route key varies with n.
func fleetBody(n int) []byte {
	return []byte(fmt.Sprintf(`{
		"user_features": [%d, 0.5, -0.25],
		"items": [
			{"id": 1, "features": [0.1, 0.2], "cover": [0.3, 0.1], "init_score": 0.9},
			{"id": 2, "features": [0.4, 0.1], "cover": [0.1, 0.5], "init_score": 0.7}
		],
		"topic_sequences": [[], []]
	}`, n))
}

// fleet is three real in-process serve.Servers, each behind a chaos proxy,
// behind one router.
type fleet struct {
	router  *Router
	proxies []*chaos.Proxy
	handler http.Handler
}

func newFleet(t *testing.T, cfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < 3; i++ {
		srv := serve.NewServer(echoScorer{},
			serve.Manifest{Dataset: "fleet-test", Config: fleetGeometry},
			serve.Config{Budget: time.Second, QueueWait: 200 * time.Millisecond})
		srv.Log = func(string, ...any) {}
		backend := httptest.NewServer(srv.Handler())
		t.Cleanup(backend.Close)
		p, err := chaos.NewProxy(backend.URL)
		if err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(p)
		t.Cleanup(front.Close)
		f.proxies = append(f.proxies, p)
		cfg.Replicas = append(cfg.Replicas, Replica{ID: fmt.Sprintf("r%d", i), URL: front.URL})
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	f.router = r
	f.handler = r.Handler()
	return f
}

// send posts one request and returns the recorder.
func (f *fleet) send(body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/rerank", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	f.handler.ServeHTTP(w, req)
	return w
}

// bodiesOwnedBy returns distinct request bodies whose hash owner is the
// given replica.
func (f *fleet) bodiesOwnedBy(t *testing.T, replica, count int) [][]byte {
	t.Helper()
	var out [][]byte
	for n := 0; len(out) < count && n < 100000; n++ {
		body := fleetBody(n)
		key, err := routeKeyFor(body, false)
		if err != nil {
			t.Fatal(err)
		}
		if f.router.ring.owner(key) == replica {
			out = append(out, body)
		}
	}
	if len(out) < count {
		t.Fatalf("found only %d/%d bodies owned by replica %d", len(out), count, replica)
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (f *fleet) replicaStatus(id string) ReplicaStatus {
	for _, rs := range f.router.FleetStatus().Replicas {
		if rs.ID == id {
			return rs
		}
	}
	return ReplicaStatus{}
}

// TestChaosFleet is the acceptance scenario from the fleet-routing work:
// three live replicas behind the router, then — under continuous load — one
// replica is killed and restarted, one is slowed 10x, and one burns an error
// burst through its circuit breaker. Every request sent while at least one
// healthy replica existed must succeed; the breaker must walk
// open → half-open → closed exactly as scripted. CI runs this under -race.
func TestChaosFleet(t *testing.T) {
	f := newFleet(t, Config{
		HedgeDelay:     25 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		Health: HealthConfig{
			Interval:   20 * time.Millisecond,
			Timeout:    300 * time.Millisecond,
			MaxBackoff: 100 * time.Millisecond,
			Ejections:  2,
		},
		Breaker: BreakerConfig{
			Window:            2 * time.Second,
			MinSamples:        4,
			FailureRate:       0.5,
			OpenFor:           150 * time.Millisecond,
			HalfOpenProbes:    1,
			HalfOpenSuccesses: 2,
		},
		Retry: RetryConfig{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
		},
	})
	f.router.Start()
	waitFor(t, "initial probes", func() bool {
		for _, rs := range f.router.FleetStatus().Replicas {
			if !rs.Healthy {
				return false
			}
		}
		return true
	})

	mustOK := func(phase string, body []byte) *httptest.ResponseRecorder {
		t.Helper()
		w := f.send(body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: dropped request with a healthy replica available: status %d %s (fleet %+v)",
				phase, w.Code, w.Body.String(), f.router.FleetStatus())
		}
		return w
	}

	// Phase 1 — steady state: every request lands, ownership is sticky.
	for n := 0; n < 30; n++ {
		mustOK("steady", fleetBody(n))
	}

	// Phase 2 — kill replica 0 mid-load. Requests keep succeeding through
	// transport-error retries while the prober ejects it.
	victim := f.bodiesOwnedBy(t, 0, 10)
	f.proxies[0].SetDown(true)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := f.send(victim[i])
			if w.Code != http.StatusOK {
				t.Errorf("kill phase: dropped request: status %d %s", w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, "replica 0 ejection", func() bool { return !f.replicaStatus("r0").Healthy })
	for i := 0; i < 5; i++ {
		w := mustOK("while-dead", victim[i])
		if got := w.Header().Get("X-Router-Replica"); got == "r0" {
			t.Fatalf("ejected replica served a request")
		}
	}

	// Phase 3 — restart it. The prober re-admits with a clean breaker and
	// the keyspace snaps back to the owner.
	f.proxies[0].SetDown(false)
	waitFor(t, "replica 0 re-admission", func() bool {
		rs := f.replicaStatus("r0")
		return rs.Healthy && rs.Breaker == "closed"
	})
	waitFor(t, "traffic back on replica 0", func() bool {
		return mustOK("post-restart", victim[0]).Header().Get("X-Router-Replica") == "r0"
	})

	// Phase 4 — slow node: replica 1 answers 10x slow; hedging keeps its
	// keyspace fast via the fallback replica, and the abandoned primary is
	// accounted as canceled, not failed.
	slow := f.bodiesOwnedBy(t, 1, 8)
	f.proxies[1].SetInjector(&chaos.Script{
		Faults: repeatFault(chaos.Fault{Delay: 400 * time.Millisecond}, 64),
		Match:  chaos.ScoringOnly,
	})
	hedgesBefore := f.router.met.hedges.Value()
	for _, body := range slow {
		w := mustOK("slow-node", body)
		if got := w.Header().Get("X-Router-Replica"); got == "r1" {
			t.Fatalf("slow replica won a hedged request in %s", w.Result().Header)
		}
	}
	if f.router.met.hedges.Value() <= hedgesBefore {
		t.Fatal("slow-node phase launched no hedges")
	}
	waitFor(t, "canceled-loser accounting", func() bool {
		return f.router.met.attempts.With(attemptCanceled).Value() > 0
	})
	if n := f.router.met.attempts.With(attempt5xx).Value(); n != 0 {
		t.Fatalf("slow node was accounted as %d server errors", n)
	}
	f.proxies[1].SetInjector(nil)

	// Phase 5 — error burst on replica 2: the breaker opens after the
	// windowed error rate trips, half-opens after OpenFor, and closes after
	// the scripted probe successes. Clients never see the burst.
	bad := f.bodiesOwnedBy(t, 2, 12)
	f.proxies[2].SetInjector(&chaos.Script{
		Faults: repeatFault(chaos.Fault{Status: 500}, 256),
		Match:  chaos.ScoringOnly,
	})
	// Keep the burst flowing until the windowed failure rate overwhelms the
	// successes recorded during the earlier phases and trips the breaker.
	waitFor(t, "breaker open on r2", func() bool {
		mustOK("error-burst", bad[0])
		st := f.replicaStatus("r2").Breaker
		return st == "open" || st == "half-open"
	})
	f.proxies[2].SetInjector(nil)
	time.Sleep(160 * time.Millisecond) // OpenFor elapses → half-open
	waitFor(t, "breaker re-close on r2", func() bool {
		mustOK("probe-traffic", bad[6])
		return f.replicaStatus("r2").Breaker == "closed"
	})
	if w := mustOK("recovered", bad[7]); w.Header().Get("X-Router-Replica") != "r2" {
		t.Fatalf("recovered replica not serving its keyspace: %s", w.Header().Get("X-Router-Replica"))
	}

	// The whole scenario relayed zero 5xx and synthesized zero 503s.
	if n := f.router.met.responses.With("unavailable").Value(); n != 0 {
		t.Fatalf("router synthesized %d unavailable responses", n)
	}
	if n := f.router.met.responses.With("error").Value(); n != 0 {
		t.Fatalf("router relayed %d upstream errors", n)
	}
	if f.router.met.breakerTransitions.With("open").Value() == 0 ||
		f.router.met.breakerTransitions.With("half-open").Value() == 0 ||
		f.router.met.breakerTransitions.With("closed").Value() == 0 {
		t.Fatalf("breaker did not walk the scripted open/half-open/closed circle")
	}
}

// TestChaosAttemptTimeout: a replica slower than the per-attempt timeout is
// accounted as timeouts (opening its breaker), and with no healthy fallback
// the client gets a clean 503 with Retry-After rather than a hang.
func TestChaosAttemptTimeout(t *testing.T) {
	f := newFleet(t, Config{
		AttemptTimeout: 50 * time.Millisecond,
		Breaker:        BreakerConfig{MinSamples: 2, FailureRate: 0.5, OpenFor: time.Minute},
		Retry:          RetryConfig{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	// Every replica is slow: no healthy fallback exists, so a 503 here is
	// correct, not a drop.
	for _, p := range f.proxies {
		p.SetInjector(chaos.InjectorFunc(func(r *http.Request) chaos.Fault {
			if r.Method != http.MethodPost {
				return chaos.Fault{}
			}
			return chaos.Fault{Delay: 300 * time.Millisecond}
		}))
	}
	// Two passes: the first gives every replica one timeout sample, the
	// second pushes each past MinSamples and trips its breaker.
	var w *httptest.ResponseRecorder
	for i := 0; i < 2; i++ {
		w = f.send(fleetBody(1))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503 when every attempt times out", w.Code)
		}
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if n := f.router.met.attempts.With(attemptTimeout).Value(); n == 0 {
		t.Fatal("no timeout attempts accounted")
	}
	if n := f.router.met.attempts.With(attempt5xx).Value(); n != 0 {
		t.Fatalf("timeouts misaccounted as %d server errors", n)
	}
	// The timeouts opened at least one breaker.
	opened := false
	for _, rs := range f.router.FleetStatus().Replicas {
		if rs.Breaker != "closed" {
			opened = true
		}
	}
	if !opened {
		t.Fatal("repeated timeouts left every breaker closed")
	}
}

// TestChaosDrainingReplica: a replica that begins draining (in-band 503 +
// X-Shed-Reason) loses its keyspace without a single failed client request
// and without opening its breaker.
func TestChaosDrainingReplica(t *testing.T) {
	f := newFleet(t, Config{
		Health: HealthConfig{Interval: time.Hour}, // probers idle: in-band detection only
	})
	body := f.bodiesOwnedBy(t, 0, 1)[0]
	f.proxies[0].SetInjector(chaos.InjectorFunc(func(r *http.Request) chaos.Fault {
		if r.Method != http.MethodPost {
			return chaos.Fault{}
		}
		return chaos.Fault{Status: 503, RetryAfter: 5, ShedReason: serve.ShedDraining}
	}))
	w := f.send(body)
	if w.Code != http.StatusOK {
		t.Fatalf("draining failover status %d: %s", w.Code, w.Body.String())
	}
	if got := f.replicaStatus("r0"); !got.Draining || got.Breaker != "closed" {
		t.Fatalf("draining replica state %+v, want draining with closed breaker", got)
	}
	if n := f.router.met.attempts.With(attemptShedDraining).Value(); n != 1 {
		t.Fatalf("shed_draining attempts = %d, want 1", n)
	}
}

func repeatFault(fl chaos.Fault, n int) []chaos.Fault {
	out := make([]chaos.Fault, n)
	for i := range out {
		out[i] = fl
	}
	return out
}

// TestChaosFleetMetricsExposed: the router's /metrics surface carries the
// fleet series a dashboard needs — spot-check names and label shapes.
func TestChaosFleetMetricsExposed(t *testing.T) {
	f := newFleet(t, Config{})
	f.send(fleetBody(1))
	w := httptest.NewRecorder()
	f.handler.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	text := w.Body.String()
	for _, want := range []string{
		"rapid_router_requests_total 1",
		`rapid_router_responses_total{status="ok"} 1`,
		`rapid_router_replica_healthy{replica="r0"}`,
		`rapid_router_breaker_state{replica="r2"}`,
		`rapid_router_breaker_transitions_total{state="open"} 0`,
		"rapid_router_version_skew 0",
		"rapid_router_request_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	var fs FleetStatus
	w = httptest.NewRecorder()
	f.handler.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/admin/fleet", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &fs); err != nil {
		t.Fatalf("/admin/fleet: %v", err)
	}
	if len(fs.Replicas) != 3 {
		t.Fatalf("fleet document has %d replicas", len(fs.Replicas))
	}
}
