package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// fakeReplica is a scriptable stand-in for a rapidserve process.
type fakeReplica struct {
	srv   *httptest.Server
	hits  atomic.Int64
	serve atomic.Value // func(w http.ResponseWriter, r *http.Request)
}

func okJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ranked":[1],"scores":[1],"latency_ms":0.1}`)
}

func newFakeReplica(t *testing.T, h http.HandlerFunc) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.serve.Store(h)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(serve.ReadyStatus{Ready: true, ModelVersion: "v1"})
			return
		}
		f.hits.Add(1)
		f.serve.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) set(h http.HandlerFunc) { f.serve.Store(h) }

func testRouter(t *testing.T, cfg Config, handlers ...http.HandlerFunc) (*Router, []*fakeReplica) {
	t.Helper()
	var reps []*fakeReplica
	for i, h := range handlers {
		f := newFakeReplica(t, h)
		reps = append(reps, f)
		cfg.Replicas = append(cfg.Replicas, Replica{ID: fmt.Sprintf("r%d", i), URL: f.srv.URL})
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	r.jitter = func() float64 { return 0 } // deterministic minimal backoff
	return r, reps
}

// reqBody builds a decodable rerank request whose route key varies with n.
func reqBody(n int) []byte {
	return []byte(fmt.Sprintf(
		`{"user_features":[%d],"items":[{"id":1,"features":[],"cover":[],"init_score":1}],"topic_sequences":[]}`, n))
}

// bodyOwnedBy searches for a request body whose consistent-hash owner is the
// given replica index.
func bodyOwnedBy(t *testing.T, r *Router, want int) []byte {
	t.Helper()
	for n := 0; n < 10000; n++ {
		body := reqBody(n)
		key, err := routeKeyFor(body, false)
		if err != nil {
			t.Fatal(err)
		}
		if r.ring.owner(key) == want {
			return body
		}
	}
	t.Fatal("no body found owned by replica")
	return nil
}

func post(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(w, req)
	return w
}

// TestRouterStickyRouting: the same request body always lands on the same
// replica, and different bodies spread across the fleet.
func TestRouterStickyRouting(t *testing.T) {
	r, reps := testRouter(t, Config{}, okJSON, okJSON, okJSON)
	h := r.Handler()

	body := reqBody(7)
	var firstReplica string
	for i := 0; i < 5; i++ {
		w := post(h, "/rerank", body)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		rep := w.Header().Get("X-Router-Replica")
		if firstReplica == "" {
			firstReplica = rep
		} else if rep != firstReplica {
			t.Fatalf("request moved from %s to %s", firstReplica, rep)
		}
	}
	// A spread of keys reaches more than one replica.
	for n := 0; n < 40; n++ {
		post(h, "/v1/rerank", reqBody(n))
	}
	busy := 0
	for _, f := range reps {
		if f.hits.Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("40 distinct keys reached only %d replicas", busy)
	}
}

// TestRouterRetriesFailedOwner: a 500 from the owner fails over to the next
// replica in the key's sequence and the client sees a clean 200.
func TestRouterRetriesFailedOwner(t *testing.T) {
	r, reps := testRouter(t, Config{
		Retry: RetryConfig{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	}, okJSON, okJSON)
	body := bodyOwnedBy(t, r, 0)
	reps[0].set(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})

	w := post(r.Handler(), "/rerank", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 after failover: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Router-Replica"); got != "r1" {
		t.Fatalf("served by %s, want fallback r1", got)
	}
	if n := r.met.retries.Value(); n != 1 {
		t.Fatalf("retries = %d, want 1", n)
	}
	if n := r.met.attempts.With(attempt5xx).Value(); n != 1 {
		t.Fatalf("5xx attempts = %d, want 1", n)
	}
}

// TestRouterBackpressureRetry: a 429 shed is retried with backoff (honoring
// Retry-After via the capped sleep) and succeeds on the fallback replica.
func TestRouterBackpressureRetry(t *testing.T) {
	r, reps := testRouter(t, Config{
		Retry: RetryConfig{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	}, okJSON, okJSON)
	body := bodyOwnedBy(t, r, 0)
	reps[0].set(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1") // capped to MaxBackoff by the router
		w.Header().Set(serve.ShedReasonHeader, serve.ShedBackpressure)
		http.Error(w, "shed", http.StatusTooManyRequests)
	})

	w := post(r.Handler(), "/rerank", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", w.Code, w.Body.String())
	}
	if n := r.met.attempts.With(attemptShedBack).Value(); n != 1 {
		t.Fatalf("shed_backpressure attempts = %d, want 1", n)
	}
}

// TestRouterDrainingFailover: a draining shed fails over immediately — no
// budget charge, no retry counted — and the replica is skipped afterwards.
func TestRouterDrainingFailover(t *testing.T) {
	r, reps := testRouter(t, Config{}, okJSON, okJSON)
	body := bodyOwnedBy(t, r, 0)
	reps[0].set(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(serve.ShedReasonHeader, serve.ShedDraining)
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	})

	h := r.Handler()
	w := post(h, "/rerank", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", w.Code, w.Body.String())
	}
	if n := r.met.retries.Value(); n != 0 {
		t.Fatalf("draining failover consumed %d retries, want 0", n)
	}
	if bal := r.budget.balance(); bal != r.cfg.Retry.BudgetCap {
		t.Fatalf("draining failover charged the budget: %v", bal)
	}
	// The drained replica is now skipped without being asked.
	before := reps[0].hits.Load()
	if w := post(h, "/rerank", body); w.Code != http.StatusOK {
		t.Fatalf("second request status %d", w.Code)
	}
	if reps[0].hits.Load() != before {
		t.Fatal("drained replica was picked again")
	}
}

// TestRouterRetryBudgetExhaustion: with the budget drained and every replica
// failing, the router stops retrying and relays the failure.
func TestRouterRetryBudgetExhaustion(t *testing.T) {
	fail := func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}
	r, _ := testRouter(t, Config{
		Retry: RetryConfig{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  2 * time.Millisecond,
			BudgetRatio: 0.001,
			BudgetCap:   1,
		},
	}, fail, fail, fail)

	h := r.Handler()
	// First request: primary fails, one budgeted retry fails, then the
	// bucket (cap 1) is empty.
	if w := post(h, "/rerank", reqBody(1)); w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want relayed 500", w.Code)
	}
	if n := r.met.retries.Value(); n != 1 {
		t.Fatalf("retries = %d, want 1", n)
	}
	if n := r.met.budgetExhausted.Value(); n != 1 {
		t.Fatalf("budget exhausted = %d, want 1", n)
	}
	// Second request: no tokens left at all — zero retries.
	post(h, "/rerank", reqBody(2))
	if n := r.met.retries.Value(); n != 1 {
		t.Fatalf("retries after empty budget = %d, want still 1", n)
	}
}

// TestRouterHedging: a slow owner is hedged after HedgeDelay and the fast
// fallback's response wins; the slow attempt is canceled, not failed.
func TestRouterHedging(t *testing.T) {
	r, reps := testRouter(t, Config{HedgeDelay: 10 * time.Millisecond}, okJSON, okJSON)
	body := bodyOwnedBy(t, r, 0)
	release := make(chan struct{})
	reps[0].set(func(w http.ResponseWriter, req *http.Request) {
		select {
		case <-release:
		case <-req.Context().Done():
			return
		}
		okJSON(w, req)
	})
	defer close(release)

	start := time.Now()
	w := post(r.Handler(), "/rerank", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Router-Replica"); got != "r1" {
		t.Fatalf("served by %s, want hedge winner r1", got)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("hedged request took %v", d)
	}
	if n := r.met.hedges.Value(); n != 1 {
		t.Fatalf("hedges = %d, want 1", n)
	}
	if n := r.met.hedgeWins.Value(); n != 1 {
		t.Fatalf("hedge wins = %d, want 1", n)
	}
}

// TestRouterBadInput: undecodable JSON is rejected at the router without
// burning replica work or retry budget.
func TestRouterBadInput(t *testing.T) {
	r, reps := testRouter(t, Config{}, okJSON)
	w := post(r.Handler(), "/rerank", []byte("{not json"))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if reps[0].hits.Load() != 0 {
		t.Fatal("malformed request reached a replica")
	}
	if w := post(r.Handler(), "/v1/rerank:batch", []byte(`{"requests":[{}]}`)); w.Code != http.StatusOK {
		t.Fatalf("batch status %d, want 200", w.Code)
	}
}

// TestRouterNoHealthyReplica: with every replica's breaker forced open the
// router answers 503 with Retry-After rather than hanging.
func TestRouterNoHealthyReplica(t *testing.T) {
	r, _ := testRouter(t, Config{}, okJSON, okJSON)
	for _, rs := range r.replicas {
		rs.br.forceOpen()
	}
	w := post(r.Handler(), "/rerank", reqBody(1))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if n := r.met.responses.With("unavailable").Value(); n != 1 {
		t.Fatalf("unavailable responses = %d, want 1", n)
	}
}

// TestProbeEjectionAndReadmission drives probeOnce directly: consecutive
// probe failures eject the replica and open its breaker; a later successful
// probe re-admits it with a clean breaker.
func TestProbeEjectionAndReadmission(t *testing.T) {
	r, reps := testRouter(t, Config{
		Health: HealthConfig{Interval: 10 * time.Millisecond, Timeout: 100 * time.Millisecond, Ejections: 2},
	}, okJSON)
	rs := r.replicas[0]

	reps[0].srv.Close() // replica dies
	d1 := r.probeOnce(rs)
	if !rs.eligible() {
		t.Fatal("ejected after a single probe failure")
	}
	d2 := r.probeOnce(rs)
	if rs.eligible() {
		t.Fatal("still eligible after Ejections consecutive failures")
	}
	if rs.br.currentState() != BreakerOpen {
		t.Fatalf("breaker %v after ejection, want open", rs.br.currentState())
	}
	d3 := r.probeOnce(rs)
	if !(d1 <= d2 && d2 <= d3) {
		t.Fatalf("probe delays not backing off: %v %v %v", d1, d2, d3)
	}

	// Replica restarts on a fresh listener; point the state at it.
	f2 := newFakeReplica(t, okJSON)
	rs.mu.Lock()
	rs.base = f2.srv.URL
	rs.mu.Unlock()
	if d := r.probeOnce(rs); d != r.cfg.Health.Interval {
		t.Fatalf("post-recovery probe delay %v, want steady interval", d)
	}
	if !rs.eligible() {
		t.Fatal("successful probe did not re-admit the replica")
	}
	if rs.br.currentState() != BreakerClosed {
		t.Fatalf("breaker %v after re-admission, want closed", rs.br.currentState())
	}
}

// TestProbeDraining: a draining /readyz ejects without opening the breaker.
func TestProbeDraining(t *testing.T) {
	f := &fakeReplica{}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(serve.ReadyStatus{Ready: false, Draining: true, ModelVersion: "v1"})
	}))
	t.Cleanup(f.srv.Close)
	r, err := New(Config{Replicas: []Replica{{ID: "r0", URL: f.srv.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	rs := r.replicas[0]
	r.probeOnce(rs)
	if rs.eligible() {
		t.Fatal("draining replica still eligible")
	}
	if rs.br.currentState() != BreakerClosed {
		t.Fatalf("draining opened the breaker: %v", rs.br.currentState())
	}
}

// TestFleetStatusAndSkew: /admin/fleet reports per-replica state and flags
// a mixed-version window.
func TestFleetStatusAndSkew(t *testing.T) {
	versioned := func(v string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				json.NewEncoder(w).Encode(serve.ReadyStatus{Ready: true, ModelVersion: v})
				return
			}
			okJSON(w, r)
		}
	}
	fa := httptest.NewServer(versioned("v1"))
	fb := httptest.NewServer(versioned("v2"))
	t.Cleanup(fa.Close)
	t.Cleanup(fb.Close)
	r, err := New(Config{Replicas: []Replica{{ID: "a", URL: fa.URL}, {ID: "b", URL: fb.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	r.probeOnce(r.replicas[0])
	r.probeOnce(r.replicas[1])

	st := r.FleetStatus()
	if !st.VersionSkew || len(st.Versions) != 2 {
		t.Fatalf("skew not detected: %+v", st)
	}
	if got := r.met.skew.Value(); got != 1 {
		t.Fatalf("skew gauge = %v, want 1", got)
	}

	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/admin/fleet", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/admin/fleet status %d", w.Code)
	}
	var decoded FleetStatus
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/admin/fleet not JSON: %v", err)
	}
	if len(decoded.Replicas) != 2 || !decoded.VersionSkew {
		t.Fatalf("fleet document %+v", decoded)
	}
}
