package router

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *breaker {
	return newBreaker(BreakerConfig{
		Window:            10 * time.Second,
		MinSamples:        4,
		FailureRate:       0.5,
		OpenFor:           2 * time.Second,
		HalfOpenProbes:    1,
		HalfOpenSuccesses: 2,
	}, clk.now)
}

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// circle.
func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)

	// Closed: passes traffic, absorbs scattered failures below MinSamples.
	if !b.allow() {
		t.Fatal("closed breaker rejected")
	}
	b.record(false)
	b.record(false)
	b.record(false)
	if b.currentState() != BreakerClosed {
		t.Fatalf("tripped below MinSamples: %v", b.currentState())
	}
	// Fourth sample pushes the window to 4 failures / 4 samples ≥ 50%.
	b.record(false)
	if b.currentState() != BreakerOpen {
		t.Fatalf("state after error burst = %v, want open", b.currentState())
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request")
	}

	// After OpenFor the breaker half-opens and admits exactly one probe.
	clk.advance(2 * time.Second)
	if b.currentState() != BreakerHalfOpen {
		t.Fatalf("state after OpenFor = %v, want half-open", b.currentState())
	}
	if !b.allow() {
		t.Fatal("half-open rejected the first probe")
	}
	if b.allow() {
		t.Fatal("half-open admitted a second concurrent probe")
	}

	// One success is not enough to close; the second is.
	b.record(true)
	if b.currentState() != BreakerHalfOpen {
		t.Fatalf("closed after 1 of 2 successes: %v", b.currentState())
	}
	if !b.allow() {
		t.Fatal("half-open rejected the second probe")
	}
	b.record(true)
	if b.currentState() != BreakerClosed {
		t.Fatalf("state after probe successes = %v, want closed", b.currentState())
	}
	// The error window restarts clean: old failures are gone.
	b.record(false)
	if b.currentState() != BreakerClosed {
		t.Fatal("re-closed breaker tripped on first failure")
	}
}

// TestBreakerHalfOpenFailureReopens: any probe failure slams the breaker
// shut again for a fresh OpenFor interval.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.record(false)
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("half-open rejected probe")
	}
	b.record(false)
	if b.currentState() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.currentState())
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
	clk.advance(time.Second)
	if b.allow() {
		t.Fatal("re-opened breaker admitted before a full OpenFor")
	}
}

// TestBreakerWindowExpiry: failures older than Window stop counting, so a
// burst of old errors cannot trip a now-healthy replica.
func TestBreakerWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	b.record(false)
	b.record(false)
	b.record(false)
	clk.advance(11 * time.Second) // past the 10s window
	b.record(true)
	b.record(true)
	b.record(true)
	b.record(false)
	// Window now holds 3 ok + 1 fail = 25% < 50%: must stay closed.
	if b.currentState() != BreakerClosed {
		t.Fatalf("expired failures still tripped the breaker: %v", b.currentState())
	}
}

// TestBreakerCancelProbe: an abandoned half-open probe releases its slot.
func TestBreakerCancelProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.record(false)
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("half-open rejected probe")
	}
	b.cancelProbe()
	if !b.allow() {
		t.Fatal("canceled probe did not release its slot")
	}
}

// TestBreakerForceOpenAndReset: the prober's out-of-band controls.
func TestBreakerForceOpenAndReset(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	var transitions []string
	b.onTransition = func(_, to BreakerState) { transitions = append(transitions, to.String()) }

	b.forceOpen()
	if b.currentState() != BreakerOpen || b.allow() {
		t.Fatal("forceOpen did not open the breaker")
	}
	b.reset()
	if b.currentState() != BreakerClosed || !b.allow() {
		t.Fatal("reset did not close the breaker")
	}
	if len(transitions) != 2 || transitions[0] != "open" || transitions[1] != "closed" {
		t.Fatalf("transitions = %v, want [open closed]", transitions)
	}
}
