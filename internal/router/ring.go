// Package router is the fleet layer above internal/serve: a consistent-hash
// request router that shards users across N rapidserve replicas and keeps
// serving through the failures a real fleet sees — crashed replicas, slow
// nodes, shed load and mixed-version rollout windows.
//
// Requests are routed by the same deterministic FNV key the serving layer
// already uses for canary splits (serve.RouteKey), so a user's requests land
// on the same replica across retries and rollouts — the property that makes
// per-replica user-state caches and reproducible debugging possible. Around
// that stable ownership the router layers the robustness machinery:
//
//   - health probing via GET /readyz: ejection on probe failure, re-probe
//     with exponential backoff, re-admission through the circuit breaker's
//     half-open state;
//   - per-replica circuit breakers (closed → open on error-rate excess →
//     half-open probes → closed) so a sick-but-responsive replica is starved
//     of traffic before it drags the fleet's tail;
//   - retry on shed and failure with a capped, jittered backoff, honoring
//     Retry-After, bounded by a retry *budget* (a token bucket earning
//     credit per primary request) so retries cannot amplify an outage;
//   - hedged requests: when the owner has not answered within the hedge
//     delay, a second attempt starts on the next replica and the first
//     response wins (the loser is canceled). Hedging is restricted to the
//     scoring endpoints, which are idempotent reads;
//   - version-skew detection: replicas advertise their pinned model version
//     in the /readyz body; the router exposes mixed-version windows on
//     /metrics and GET /admin/fleet during rollouts.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is an immutable consistent-hash ring: each replica is placed at
// vnodes pseudo-random points (FNV-1a of "id#i"), and a key is owned by the
// first point clockwise from the key's hash. Virtual nodes smooth the load
// split (with tens of points per replica the imbalance is a few percent)
// and, when a replica is ejected, spread its keyspace across the survivors
// instead of dumping it all on one neighbor.
type ring struct {
	points []ringPoint
	n      int // replica count
}

type ringPoint struct {
	hash    uint64
	replica int // index into the router's replica slice
}

func newRing(ids []string, vnodes int) (*ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("router: no replicas")
	}
	seen := make(map[string]bool, len(ids))
	r := &ring{points: make([]ringPoint, 0, len(ids)*vnodes), n: len(ids)}
	for ri, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("router: empty replica id")
		}
		if seen[id] {
			return nil, fmt.Errorf("router: duplicate replica %q", id)
		}
		seen[id] = true
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", id, v)
			// FNV over near-identical strings clusters on the ring; the
			// splitmix64 finalizer spreads the points so 64 vnodes actually
			// buy an even keyspace split.
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), replica: ri})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// owner returns the replica index owning key.
func (r *ring) owner(key uint64) int {
	return r.points[r.search(key)].replica
}

// sequence returns every replica index in ring order starting from the
// key's owner, deduplicated — the owner first, then the fallback order used
// for retries and hedges. The order is a deterministic function of the key,
// so a request's fallback replica is as stable as its owner.
func (r *ring) sequence(key uint64) []int {
	seq := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i, n := r.search(key), 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, p.replica)
			if len(seq) == r.n {
				break
			}
		}
	}
	return seq
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche over the
// raw FNV hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// search finds the first ring point at or clockwise of key's hash.
func (r *ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the smallest point owns the top of the hash space
	}
	return i
}
