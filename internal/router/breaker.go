package router

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the open interval elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; their
	// outcomes decide between re-closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig bounds one replica's circuit breaker. The zero value is
// usable: every field falls back to the listed default.
type BreakerConfig struct {
	// Window is the sliding error-rate window (default 10s). Outcomes older
	// than Window no longer influence the trip decision.
	Window time.Duration
	// MinSamples is the fewest outcomes in the window before the error rate
	// is trusted (default 8): one failure on an idle replica must not open
	// the circuit.
	MinSamples int
	// FailureRate is the windowed failure fraction at or above which the
	// breaker opens (default 0.5).
	FailureRate float64
	// OpenFor is how long an open breaker rejects before moving to
	// half-open (default 2s).
	OpenFor time.Duration
	// HalfOpenProbes is how many concurrent trial requests half-open admits
	// (default 1); HalfOpenSuccesses consecutive successes re-close the
	// circuit (default 3), any failure re-opens it.
	HalfOpenProbes    int
	HalfOpenSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 3
	}
	return c
}

// breakerBuckets is the number of rotating sub-windows the sliding error
// window is tracked in. More buckets mean a smoother expiry of old outcomes
// at slightly more bookkeeping; 10 keeps the granularity at Window/10.
const breakerBuckets = 10

// breaker is one replica's circuit breaker: a time-bucketed sliding window
// of outcomes drives closed → open, a timer drives open → half-open, and
// metered trial traffic drives half-open → closed (or back to open). All
// methods are safe for concurrent use.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	state     BreakerState
	buckets   [breakerBuckets]bucket
	openedAt  time.Time
	inFlight  int // half-open trial requests currently admitted
	successes int // consecutive half-open successes

	// onTransition, if non-nil, observes every state change (metrics).
	onTransition func(from, to BreakerState)
}

type bucket struct {
	start    time.Time
	ok, fail int
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// allow reports whether a request may be sent to this replica now. In the
// half-open state an allowed request occupies one of the bounded trial
// slots; the caller must report its outcome via record (or release via
// cancelProbe if the attempt was never made).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.inFlight = 1
		return true
	default: // half-open
		if b.inFlight >= b.cfg.HalfOpenProbes {
			return false
		}
		b.inFlight++
		return true
	}
}

// cancelProbe releases a half-open trial slot taken by allow when the
// attempt was abandoned before producing an outcome.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.inFlight > 0 {
		b.inFlight--
	}
}

// record feeds one attempt outcome into the breaker.
func (b *breaker) record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		if !success {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.transition(BreakerClosed)
			b.resetWindow()
		}
	case BreakerClosed:
		bk := b.currentBucket()
		if success {
			bk.ok++
		} else {
			bk.fail++
			ok, fail := b.windowTotals()
			if ok+fail >= b.cfg.MinSamples &&
				float64(fail) >= b.cfg.FailureRate*float64(ok+fail) {
				b.trip()
			}
		}
	default: // open: outcomes of straggling attempts are ignored
	}
}

// forceOpen trips the breaker from outside the data path — the health
// prober calls it when a replica's probe fails hard, so traffic stops
// immediately instead of waiting for in-band failures to accumulate.
func (b *breaker) forceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		b.trip()
	}
}

// reset closes the breaker and clears its window — used when the process
// behind a replica address is known to have been replaced, so the old
// process's failures are not held against the new one.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.transition(BreakerClosed)
	b.inFlight = 0
	b.successes = 0
	b.resetWindow()
}

// currentState reports the state, advancing open → half-open if the open
// interval has elapsed (so observers see the same state allow would).
func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// trip moves to open and stamps the time. Callers hold b.mu.
func (b *breaker) trip() {
	b.transition(BreakerOpen)
	b.openedAt = b.now()
	b.successes = 0
	b.inFlight = 0
	b.resetWindow()
}

// transition changes state and notifies the observer. Callers hold b.mu.
func (b *breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if from == BreakerOpen || from == BreakerHalfOpen {
		b.successes = 0
	}
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

func (b *breaker) resetWindow() {
	for i := range b.buckets {
		b.buckets[i] = bucket{}
	}
}

// currentBucket rotates the bucket ring to now and returns the live bucket.
// Callers hold b.mu.
func (b *breaker) currentBucket() *bucket {
	span := b.cfg.Window / breakerBuckets
	now := b.now()
	start := now.Truncate(span)
	i := int(start.UnixNano()/int64(span)) % breakerBuckets
	if i < 0 {
		i += breakerBuckets
	}
	if !b.buckets[i].start.Equal(start) {
		b.buckets[i] = bucket{start: start}
	}
	return &b.buckets[i]
}

// windowTotals sums outcomes still inside the window. Callers hold b.mu.
func (b *breaker) windowTotals() (ok, fail int) {
	span := b.cfg.Window / breakerBuckets
	cutoff := b.now().Add(-b.cfg.Window)
	for i := range b.buckets {
		bk := &b.buckets[i]
		if bk.start.IsZero() || !bk.start.Add(span).After(cutoff) {
			continue
		}
		ok += bk.ok
		fail += bk.fail
	}
	return ok, fail
}
