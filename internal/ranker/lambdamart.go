package ranker

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// LambdaMART is gradient-boosted regression trees trained with LambdaRank
// gradients (Burges' λ-gradients weighted by |ΔNDCG|), the listwise initial
// ranker of the paper's RQ2 comparison. Trees are grown by exact
// variance-style split search on the λ statistics and leaves take Newton
// steps Σλ/(Σw+reg).
type LambdaMART struct {
	Trees     int
	Depth     int
	LR        float64
	MinLeaf   int
	Leaves    float64 // L2 regularization on leaf values
	Sigma     float64 // logistic steepness in the pairwise gradient
	ensemble  []*regTree
	baseScore float64
}

// NewLambdaMART returns a LambdaMART with small-scale defaults.
func NewLambdaMART() *LambdaMART {
	return &LambdaMART{Trees: 30, Depth: 3, LR: 0.1, MinLeaf: 10, Leaves: 1.0, Sigma: 1.0}
}

// Name implements Ranker.
func (m *LambdaMART) Name() string { return "LambdaMART" }

// Fit trains the ensemble on the dataset's RankerTrain split grouped by user.
func (m *LambdaMART) Fit(d *dataset.Dataset) error {
	groups := groupByUser(d.RankerTrain)
	// Flatten documents, remembering group boundaries.
	var feats [][]float64
	var labels []float64
	var groupOf []int
	for gi, g := range groups {
		for _, it := range g {
			feats = append(feats, pairFeatures(d, it.User, it.Item))
			labels = append(labels, it.Label)
			groupOf = append(groupOf, gi)
		}
	}
	n := len(feats)
	if n == 0 {
		return nil
	}
	scores := make([]float64, n)
	lambdas := make([]float64, n)
	hessians := make([]float64, n)

	// Per-group document index lists.
	groupDocs := make([][]int, len(groups))
	for i, g := range groupOf {
		groupDocs[g] = append(groupDocs[g], i)
	}

	for round := 0; round < m.Trees; round++ {
		for i := range lambdas {
			lambdas[i], hessians[i] = 0, 0
		}
		for _, docs := range groupDocs {
			m.accumulateLambdas(docs, labels, scores, lambdas, hessians)
		}
		tree := growTree(feats, lambdas, hessians, m.Depth, m.MinLeaf, m.Leaves)
		m.ensemble = append(m.ensemble, tree)
		for i := range scores {
			scores[i] += m.LR * tree.predict(feats[i])
		}
	}
	return nil
}

// accumulateLambdas adds the LambdaRank gradients for one query group.
func (m *LambdaMART) accumulateLambdas(docs []int, labels, scores, lambdas, hessians []float64) {
	// Ideal DCG for ΔNDCG normalization.
	ls := make([]float64, len(docs))
	for i, d := range docs {
		ls[i] = labels[d]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ls)))
	var idcg float64
	for i, l := range ls {
		idcg += (math.Pow(2, l) - 1) / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return
	}
	// Current ranking positions by score.
	order := make([]int, len(docs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[docs[order[a]]] > scores[docs[order[b]]] })
	rank := make([]int, len(docs)) // rank[i] = 0-based position of docs[i]
	for pos, oi := range order {
		rank[oi] = pos
	}
	for i := 0; i < len(docs); i++ {
		for j := 0; j < len(docs); j++ {
			di, dj := docs[i], docs[j]
			if labels[di] <= labels[dj] {
				continue
			}
			sDiff := scores[di] - scores[dj]
			rho := 1 / (1 + math.Exp(m.Sigma*sDiff))
			// |ΔNDCG| of swapping positions of i and j.
			gi := math.Pow(2, labels[di]) - 1
			gj := math.Pow(2, labels[dj]) - 1
			inv := func(pos int) float64 { return 1 / math.Log2(float64(pos)+2) }
			delta := math.Abs((gi - gj) * (inv(rank[i]) - inv(rank[j])) / idcg)
			l := m.Sigma * rho * delta
			h := m.Sigma * m.Sigma * rho * (1 - rho) * delta
			lambdas[di] += l
			lambdas[dj] -= l
			hessians[di] += h
			hessians[dj] += h
		}
	}
}

// Score implements Ranker.
func (m *LambdaMART) Score(d *dataset.Dataset, user, item int) float64 {
	f := pairFeatures(d, user, item)
	s := m.baseScore
	for _, t := range m.ensemble {
		s += m.LR * t.predict(f)
	}
	return s
}

// regTree is a binary regression tree over dense features.
type regTree struct {
	feature     int
	threshold   float64
	left, right *regTree
	value       float64
	leaf        bool
}

func (t *regTree) predict(f []float64) float64 {
	for !t.leaf {
		if f[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// growTree fits a depth-bounded tree to the λ targets with Newton leaves.
func growTree(feats [][]float64, grad, hess []float64, depth, minLeaf int, reg float64) *regTree {
	idx := make([]int, len(feats))
	for i := range idx {
		idx[i] = i
	}
	return growNode(feats, grad, hess, idx, depth, minLeaf, reg)
}

func growNode(feats [][]float64, grad, hess []float64, idx []int, depth, minLeaf int, reg float64) *regTree {
	leaf := func() *regTree {
		var g, h float64
		for _, i := range idx {
			g += grad[i]
			h += hess[i]
		}
		return &regTree{leaf: true, value: g / (h + reg)}
	}
	if depth <= 0 || len(idx) < 2*minLeaf {
		return leaf()
	}
	var sumG, sumH float64
	for _, i := range idx {
		sumG += grad[i]
		sumH += hess[i]
	}
	parentGain := sumG * sumG / (sumH + reg)
	bestGain := 0.0
	bestFeat, bestPos := -1, 0
	dims := len(feats[idx[0]])
	sorted := make([]int, len(idx))
	var bestSorted []int
	for f := 0; f < dims; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return feats[sorted[a]][f] < feats[sorted[b]][f] })
		var gl, hl float64
		for p := 0; p < len(sorted)-1; p++ {
			i := sorted[p]
			gl += grad[i]
			hl += hess[i]
			if p+1 < minLeaf || len(sorted)-p-1 < minLeaf {
				continue
			}
			if feats[sorted[p]][f] == feats[sorted[p+1]][f] {
				continue // cannot split between equal values
			}
			gr, hr := sumG-gl, sumH-hl
			gain := gl*gl/(hl+reg) + gr*gr/(hr+reg) - parentGain
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestPos = p
				bestSorted = append(bestSorted[:0], sorted...)
			}
		}
	}
	if bestFeat < 0 || bestGain < 1e-10 {
		return leaf()
	}
	thr := (feats[bestSorted[bestPos]][bestFeat] + feats[bestSorted[bestPos+1]][bestFeat]) / 2
	leftIdx := append([]int(nil), bestSorted[:bestPos+1]...)
	rightIdx := append([]int(nil), bestSorted[bestPos+1:]...)
	return &regTree{
		feature:   bestFeat,
		threshold: thr,
		left:      growNode(feats, grad, hess, leftIdx, depth-1, minLeaf, reg),
		right:     growNode(feats, grad, hess, rightIdx, depth-1, minLeaf, reg),
	}
}
