package ranker

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/nn"
)

// DIN is a compact Deep Interest Network (Zhou et al., KDD'18): the user's
// behavior history is pooled by an attention unit conditioned on the
// candidate item, and the pooled interest vector joins the user and item
// features in an MLP trained pointwise with BCE. It is the paper's default
// initial ranker.
type DIN struct {
	Hidden     int
	HistoryCap int // most recent history items attended over
	Epochs     int
	LR         float64
	Seed       int64

	ps    *nn.ParamSet
	att   *nn.MLP // attention unit over [x_h, x_v, x_h⊙x_v]
	head  *nn.MLP // final scorer over [x_u, x_v, pooled]
	built bool
}

// NewDIN returns a DIN with sensible small-scale defaults.
func NewDIN(seed int64) *DIN {
	return &DIN{Hidden: 16, HistoryCap: 10, Epochs: 3, LR: 0.01, Seed: seed}
}

// Name implements Ranker.
func (m *DIN) Name() string { return "DIN" }

func (m *DIN) build(d *dataset.Dataset) {
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	qv := d.Cfg.ItemDim
	qu := d.Cfg.UserDim
	m.att = nn.NewMLP(m.ps, "din.att", []int{3 * qv, m.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	m.head = nn.NewMLP(m.ps, "din.head", []int{qu + 2*qv, m.Hidden, m.Hidden / 2, 1}, nn.ReLU, nn.Linear, rng)
	m.built = true
}

// forward scores one (user, item) pair on the tape, returning a 1×1 logit.
func (m *DIN) forward(t *nn.Tape, d *dataset.Dataset, user, item int) *nn.Node {
	xu := t.Constant(mat.RowVector(d.UserFeatures(user)))
	xv := t.Constant(mat.RowVector(d.ItemFeatures(item)))
	hist := d.Users[user].History
	if len(hist) > m.HistoryCap {
		hist = hist[len(hist)-m.HistoryCap:]
	}
	var pooled *nn.Node
	if len(hist) == 0 {
		pooled = t.Constant(mat.New(1, d.Cfg.ItemDim))
	} else {
		rows := make([]*nn.Node, len(hist))
		for i, h := range hist {
			rows[i] = t.Constant(mat.RowVector(d.ItemFeatures(h)))
		}
		histMat := t.ConcatRows(rows...) // H×qv
		// Attention unit: weight_i = MLP([x_h, x_v, x_h⊙x_v]).
		vRep := t.ConcatRows(repeat(t, xv, len(hist))...)
		attIn := t.ConcatCols(histMat, vRep, t.Mul(histMat, vRep))
		w := t.SoftmaxRows(t.Transpose(m.att.Forward(t, attIn))) // 1×H
		pooled = t.MatMul(w, histMat)                            // 1×qv
	}
	return m.head.Forward(t, t.ConcatCols(xu, xv, pooled))
}

func repeat(t *nn.Tape, row *nn.Node, n int) []*nn.Node {
	out := make([]*nn.Node, n)
	for i := range out {
		out[i] = row
	}
	return out
}

// Fit trains on the dataset's RankerTrain split.
func (m *DIN) Fit(d *dataset.Dataset) error {
	m.build(d)
	opt := nn.NewAdam(m.LR)
	rng := rand.New(rand.NewSource(m.Seed + 1))
	inter := d.RankerTrain
	for e := 0; e < m.Epochs; e++ {
		for _, i := range shuffled(len(inter), rng) {
			ex := inter[i]
			t := nn.NewTape()
			logit := m.forward(t, d, ex.User, ex.Item)
			loss := t.SigmoidBCE(logit, []float64{ex.Label})
			t.Backward(loss)
			m.ps.ClipGradNorm(5)
			opt.Step(m.ps.All())
		}
	}
	return nil
}

// Score implements Ranker.
func (m *DIN) Score(d *dataset.Dataset, user, item int) float64 {
	if !m.built {
		panic("ranker: DIN.Score before Fit")
	}
	t := nn.NewTape()
	return mat.Sigmoid(m.forward(t, d, user, item).Value.Data[0])
}
