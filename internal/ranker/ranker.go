// Package ranker implements the three initial rankers the paper feeds into
// the re-ranking stage (Section IV-B3): DIN (pointwise deep model with
// attention over the behavior history), SVMRank (pairwise linear) and
// LambdaMART (listwise gradient-boosted trees). The experiment harness
// trains one of these on the initial-ranker split and uses its scores to
// build the initial lists R.
package ranker

import (
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Ranker scores a (user, item) pair; higher is better. Implementations are
// trained by Fit on the dataset's RankerTrain split.
type Ranker interface {
	Name() string
	Fit(d *dataset.Dataset) error
	Score(d *dataset.Dataset, user, item int) float64
}

// RankPool scores a candidate pool with r and returns the top-l items
// best-first along with their scores — the initial list R of the paper.
func RankPool(r Ranker, d *dataset.Dataset, p dataset.Pool, l int) (items []int, scores []float64) {
	type sv struct {
		item  int
		score float64
	}
	svs := make([]sv, len(p.Candidates))
	for i, v := range p.Candidates {
		svs[i] = sv{v, r.Score(d, p.User, v)}
	}
	sort.SliceStable(svs, func(a, b int) bool { return svs[a].score > svs[b].score })
	if l > len(svs) {
		l = len(svs)
	}
	items = make([]int, l)
	scores = make([]float64, l)
	for i := 0; i < l; i++ {
		items[i] = svs[i].item
		scores[i] = svs[i].score
	}
	return items, scores
}

// pairFeatures builds the shared hand-crafted feature vector for the linear
// and tree rankers: user features, item features, their element-wise
// product (truncated to the shorter), and the item's topic coverage.
func pairFeatures(d *dataset.Dataset, u, v int) []float64 {
	xu := d.UserFeatures(u)
	xv := d.ItemFeatures(v)
	n := len(xu)
	if len(xv) < n {
		n = len(xv)
	}
	f := make([]float64, 0, len(xu)+len(xv)+n+d.M())
	f = append(f, xu...)
	f = append(f, xv...)
	for i := 0; i < n; i++ {
		f = append(f, xu[i]*xv[i])
	}
	f = append(f, d.Cover(v)...)
	return f
}

// groupByUser splits interactions into per-user groups (the "queries" for
// pairwise/listwise training), with deterministic ordering.
func groupByUser(inter []dataset.Interaction) [][]dataset.Interaction {
	byU := make(map[int][]dataset.Interaction)
	var users []int
	for _, it := range inter {
		if _, ok := byU[it.User]; !ok {
			users = append(users, it.User)
		}
		byU[it.User] = append(byU[it.User], it)
	}
	sort.Ints(users)
	out := make([][]dataset.Interaction, 0, len(users))
	for _, u := range users {
		out = append(out, byU[u])
	}
	return out
}

// shuffled returns a shuffled copy of idx using rng.
func shuffled(n int, rng *rand.Rand) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}
