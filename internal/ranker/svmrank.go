package ranker

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// SVMRank is the pairwise linear ranking SVM (Joachims, 2006): it learns a
// weight vector w minimizing hinge loss over preference pairs
// max(0, 1 − w·(f⁺ − f⁻)) with L2 regularization, optimized here by
// sub-gradient descent (Pegasos-style).
type SVMRank struct {
	Epochs int
	LR     float64
	C      float64 // inverse regularization strength
	Seed   int64

	w []float64
}

// NewSVMRank returns an SVMRank with small-scale defaults.
func NewSVMRank(seed int64) *SVMRank {
	return &SVMRank{Epochs: 8, LR: 0.05, C: 1.0, Seed: seed}
}

// Name implements Ranker.
func (m *SVMRank) Name() string { return "SVMRank" }

// Fit trains on preference pairs formed within each user's interactions.
func (m *SVMRank) Fit(d *dataset.Dataset) error {
	groups := groupByUser(d.RankerTrain)
	dim := len(pairFeatures(d, 0, 0))
	m.w = make([]float64, dim)
	rng := rand.New(rand.NewSource(m.Seed))

	type pair struct{ u, pos, neg int }
	var pairs []pair
	for _, g := range groups {
		var ps, ns []int
		for _, it := range g {
			if it.Label > 0.5 {
				ps = append(ps, it.Item)
			} else {
				ns = append(ns, it.Item)
			}
		}
		for _, p := range ps {
			for _, n := range ns {
				pairs = append(pairs, pair{g[0].User, p, n})
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	lambda := 1 / (m.C * float64(len(pairs)))
	for e := 0; e < m.Epochs; e++ {
		lr := m.LR / (1 + 0.5*float64(e))
		for _, i := range shuffled(len(pairs), rng) {
			pr := pairs[i]
			fp := pairFeatures(d, pr.u, pr.pos)
			fn := pairFeatures(d, pr.u, pr.neg)
			var margin float64
			for j := range fp {
				margin += m.w[j] * (fp[j] - fn[j])
			}
			for j := range m.w {
				g := lambda * m.w[j]
				if margin < 1 {
					g -= fp[j] - fn[j]
				}
				m.w[j] -= lr * g
			}
		}
	}
	return nil
}

// Score implements Ranker.
func (m *SVMRank) Score(d *dataset.Dataset, user, item int) float64 {
	if m.w == nil {
		panic("ranker: SVMRank.Score before Fit")
	}
	return mat.Dot(m.w, pairFeatures(d, user, item))
}
