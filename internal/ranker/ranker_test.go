package ranker

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func testData(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.TaobaoLike(seed)
	cfg.NumUsers = 40
	cfg.NumItems = 100
	cfg.Categories = 20
	cfg.RankerTrainPerUser = 10
	cfg.RerankRequests = 10
	cfg.TestRequests = 5
	return dataset.MustGenerate(cfg)
}

// rankingQuality measures how well the ranker orders random item pairs by
// true relevance (pairwise accuracy over the ground truth).
func rankingQuality(d *dataset.Dataset, r Ranker, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		u := rng.Intn(len(d.Users))
		a, b := rng.Intn(len(d.Items)), rng.Intn(len(d.Items))
		ra, rb := d.Relevance(u, a), d.Relevance(u, b)
		// Near-ties are unresolvable from noisy features at this training
		// size; quality is measured on clearly ordered pairs.
		if ra-rb < 0.15 && rb-ra < 0.15 {
			continue
		}
		sa, sb := r.Score(d, u, a), r.Score(d, u, b)
		if (ra > rb) == (sa > sb) {
			correct++
		}
		total++
	}
	return float64(correct) / float64(total)
}

func TestDINLearnsRelevance(t *testing.T) {
	d := testData(t, 1)
	din := NewDIN(1)
	if err := din.Fit(d); err != nil {
		t.Fatal(err)
	}
	if q := rankingQuality(d, din, 2); q < 0.62 {
		t.Fatalf("DIN pairwise accuracy %v, want > 0.62", q)
	}
}

func TestDINScoreBeforeFitPanics(t *testing.T) {
	d := testData(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Score before Fit did not panic")
		}
	}()
	NewDIN(1).Score(d, 0, 0)
}

func TestSVMRankLearnsRelevance(t *testing.T) {
	d := testData(t, 3)
	svm := NewSVMRank(3)
	if err := svm.Fit(d); err != nil {
		t.Fatal(err)
	}
	if q := rankingQuality(d, svm, 4); q < 0.60 {
		t.Fatalf("SVMRank pairwise accuracy %v, want > 0.60", q)
	}
}

func TestLambdaMARTLearnsRelevance(t *testing.T) {
	d := testData(t, 5)
	lm := NewLambdaMART()
	if err := lm.Fit(d); err != nil {
		t.Fatal(err)
	}
	if q := rankingQuality(d, lm, 6); q < 0.60 {
		t.Fatalf("LambdaMART pairwise accuracy %v, want > 0.60", q)
	}
}

func TestRankPool(t *testing.T) {
	d := testData(t, 7)
	din := NewDIN(7)
	if err := din.Fit(d); err != nil {
		t.Fatal(err)
	}
	pool := d.RerankPools[0]
	items, scores := RankPool(din, d, pool, 8)
	if len(items) != 8 || len(scores) != 8 {
		t.Fatalf("RankPool returned %d items, %d scores", len(items), len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1]+1e-12 {
			t.Fatal("RankPool scores not descending")
		}
	}
	// All items must come from the pool.
	in := map[int]bool{}
	for _, v := range pool.Candidates {
		in[v] = true
	}
	for _, v := range items {
		if !in[v] {
			t.Fatalf("RankPool returned item %d outside the pool", v)
		}
	}
	// Requesting more than available truncates gracefully.
	items2, _ := RankPool(din, d, pool, len(pool.Candidates)+10)
	if len(items2) != len(pool.Candidates) {
		t.Fatalf("oversized RankPool gave %d items", len(items2))
	}
}

func TestRegTreePrediction(t *testing.T) {
	// A hand-built stump must route correctly.
	tree := &regTree{
		feature:   0,
		threshold: 0.5,
		left:      &regTree{leaf: true, value: -1},
		right:     &regTree{leaf: true, value: 2},
	}
	if tree.predict([]float64{0.2}) != -1 || tree.predict([]float64{0.9}) != 2 {
		t.Fatal("stump misroutes")
	}
}

func TestGrowTreeFitsStep(t *testing.T) {
	// A step function in one feature should be recovered by a depth-1 tree
	// trained on unit hessians.
	var feats [][]float64
	var grad, hess []float64
	for i := 0; i < 100; i++ {
		x := float64(i) / 100
		feats = append(feats, []float64{x})
		g := -1.0
		if x > 0.5 {
			g = 1.0
		}
		grad = append(grad, g)
		hess = append(hess, 1.0)
	}
	tree := growTree(feats, grad, hess, 2, 5, 0.01)
	if v := tree.predict([]float64{0.1}); v > -0.8 {
		t.Fatalf("left leaf %v, want ≈ -1", v)
	}
	if v := tree.predict([]float64{0.9}); v < 0.8 {
		t.Fatalf("right leaf %v, want ≈ +1", v)
	}
}

func TestGrowTreeConstantTarget(t *testing.T) {
	feats := [][]float64{{1}, {2}, {3}, {4}}
	grad := []float64{1, 1, 1, 1}
	hess := []float64{1, 1, 1, 1}
	tree := growTree(feats, grad, hess, 3, 1, 1)
	// No split gain on constant targets → single leaf with Newton value.
	if !tree.leaf {
		t.Fatal("constant target should yield a leaf")
	}
	if v := tree.value; v < 0.7 || v > 0.9 { // 4/(4+1)
		t.Fatalf("leaf value %v", v)
	}
}

func TestGroupByUserDeterministic(t *testing.T) {
	inter := []dataset.Interaction{
		{User: 3, Item: 1}, {User: 1, Item: 2}, {User: 3, Item: 3}, {User: 2, Item: 4},
	}
	groups := groupByUser(inter)
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	if groups[0][0].User != 1 || groups[1][0].User != 2 || groups[2][0].User != 3 {
		t.Fatal("groups not sorted by user")
	}
	if len(groups[2]) != 2 {
		t.Fatal("user 3 should have 2 interactions")
	}
}
