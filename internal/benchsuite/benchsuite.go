// Package benchsuite holds the benchmark bodies shared by the repository's
// `go test -bench` wrappers (bench_test.go) and the machine-readable perf
// harness (`rapidbench -benchjson`, `make bench-json`). Keeping one
// implementation means the numbers in BENCH_PR2.json are produced by
// exactly the code the named benchmarks run.
package benchsuite

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rerank"
	"repro/internal/topics"
)

// reg, when non-nil, receives benchmark telemetry: an inference-latency
// histogram from RAPIDInference and the training metric set from
// TrainListwise. It stays nil under plain `go test -bench` so the named
// benchmarks measure exactly the uninstrumented hot path; rapidbench sets it
// so BENCH_*.json can carry histogram snapshots next to ns/op.
var reg *obs.Registry

// SetRegistry attaches (or with nil detaches) the telemetry registry.
func SetRegistry(r *obs.Registry) { reg = r }

// telObserver feeds rerank epoch stats into the obs training telemetry.
type telObserver struct{ tel *obs.TrainTelemetry }

func (t telObserver) ObserveEpoch(es rerank.EpochStats) {
	t.tel.RecordEpoch(es.Loss, es.ValidLoss, es.Duration, es.Steps, es.Instances, es.SkippedInstances, es.DroppedSteps)
}

// Entry names one benchmark for the JSON harness. InstancesPerOp, when
// non-zero, is the number of training instances one op processes, so
// train-instances/sec can be derived from ns/op.
type Entry struct {
	Name           string
	F              func(*testing.B)
	InstancesPerOp int
}

// Entries returns the benchmarks emitted into BENCH_PR2.json, cheapest
// first. Table2a (a full end-to-end experiment, minutes at scale 0.08) is
// last so a watcher sees the micro numbers early.
func Entries() []Entry {
	return []Entry{
		{Name: "MatMul32", F: MatMul32},
		{Name: "LSTMStep", F: LSTMStep},
		{Name: "BiLSTMList20", F: BiLSTMList20},
		{Name: "RAPIDInference", F: RAPIDInference},
		{Name: "DPPGreedyMAP", F: DPPGreedyMAP},
		{Name: "MarginalDiversity", F: MarginalDiversity},
		{Name: "TrainListwise", F: TrainListwise, InstancesPerOp: trainBenchInstances * trainBenchEpochs},
		{Name: "Table2a", F: Table2a},
	}
}

// BatchEntries returns the batched-inference comparison emitted into
// BENCH_PR5.json: the legacy single-request path next to ScoreBatch at
// batch sizes 1, 4 and 16 over the same model and instance geometry.
func BatchEntries() []Entry {
	return []Entry{
		{Name: "RAPIDInference", F: RAPIDInference, InstancesPerOp: 1},
		{Name: "RAPIDInferenceBatch1", F: RAPIDInferenceBatch1, InstancesPerOp: 1},
		{Name: "RAPIDInferenceBatch4", F: RAPIDInferenceBatch4, InstancesPerOp: 4},
		{Name: "RAPIDInferenceBatch16", F: RAPIDInferenceBatch16, InstancesPerOp: 16},
	}
}

// PR7Entries returns the comparison emitted into BENCH_PR7.json: a GEMM
// size sweep, serial vs panel-parallel (sizes straddling the parallel
// dispatch cutoff, so the report shows both the large-shape speedup and the
// absence of a small-shape regression), followed by the cold vs warm
// encoded-user-state scoring pair.
func PR7Entries() []Entry {
	es := []Entry{}
	for _, n := range []int{32, 128, 256, 384} {
		n := n
		es = append(es,
			Entry{Name: fmt.Sprintf("GEMM%dSerial", n), F: gemmBench(n, 1)},
			Entry{Name: fmt.Sprintf("GEMM%dParallel", n), F: gemmBench(n, 0)},
		)
	}
	return append(es,
		Entry{Name: "StateScoreCold", F: StateScoreCold, InstancesPerOp: stateBenchInstances},
		Entry{Name: "StateScoreWarm", F: StateScoreWarm, InstancesPerOp: stateBenchInstances},
	)
}

// gemmBench benches one n×n·n×n MatMulInto under the given worker setting
// (1 = serial kernel, 0 = GOMAXPROCS panels), restoring the knob after.
// 32³ sits below the parallel cutoff, so its "parallel" run measures the
// dispatch check alone — the no-regression guard for small recurrence GEMMs.
func gemmBench(n, workers int) func(*testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(int64(n)))
		x := mat.RandNormal(n, n, 0, 1, rng)
		y := mat.RandNormal(n, n, 0, 1, rng)
		out := mat.New(n, n)
		prev := mat.Workers()
		mat.SetWorkers(workers)
		defer mat.SetWorkers(prev)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mat.MatMulInto(out, x, y)
		}
	}
}

// stateBenchInstances is the batch size of the cold/warm state comparison —
// the serving layer's default MaxBatch 16 is the shape repeat-user traffic
// actually coalesces into.
const stateBenchInstances = 16

// StateScoreCold measures ScoreBatchStates with no cached states: every
// instance pays the full user-preference pass (the first request of each
// user). Identical arithmetic to RAPIDInferenceBatch16.
func StateScoreCold(b *testing.B) { stateScore(b, false) }

// StateScoreWarm measures ScoreBatchStates with every user state cached —
// the repeat-user steady state the serving cache produces. The gap to
// StateScoreCold is exactly the preference pass the cache elides.
func StateScoreWarm(b *testing.B) { stateScore(b, true) }

func stateScore(b *testing.B, warm bool) {
	cfg := dataset.TaobaoLike(1).Scaled(0.05)
	d := dataset.MustGenerate(cfg)
	opt := tableOptions(1)
	rng := rand.New(rand.NewSource(4))
	insts := make([]*rerank.Instance, stateBenchInstances)
	for i := range insts {
		pool := d.RerankPools[i%len(d.RerankPools)]
		items := pool.Candidates[:cfg.ListLen]
		req := dataset.Request{User: pool.User, Items: items, InitScores: make([]float64, len(items))}
		insts[i] = rerank.NewInstance(d, req, rng)
	}
	env := &experiments.Env{Data: d}
	m := experiments.NewRAPID(env, opt, 1, nil)
	ctx := context.Background()
	var states []*core.UserState
	if warm {
		var err error
		if _, states, err = m.ScoreBatchStates(ctx, insts, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.ScoreBatchStates(ctx, insts, states); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*stateBenchInstances)/b.Elapsed().Seconds(), "instances/s")
}

// MatMul32 measures the dense 32×32 matrix multiply kernel.
func MatMul32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := mat.RandNormal(32, 32, 0, 1, rng)
	y := mat.RandNormal(32, 32, 0, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}

// LSTMStep measures one LSTM cell step on a reused tape — the trainer's
// steady state, where every buffer comes from the tape's free-list.
func LSTMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ps := nn.NewParamSet()
	cell := nn.NewLSTMCell(ps, "c", 24, 16, rng)
	x := mat.RandNormal(1, 24, 0, 1, rng)
	t := nn.NewTape()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset()
		h, c := cell.InitState(t)
		cell.Step(t, t.Constant(x), h, c)
	}
}

// BiLSTMList20 measures a bidirectional LSTM encoding of a 20-item list on
// a reused tape.
func BiLSTMList20(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ps := nn.NewParamSet()
	bi := nn.NewBiLSTM(ps, "b", 30, 16, rng)
	seq := mat.RandNormal(20, 30, 0, 1, rng)
	t := nn.NewTape()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset()
		bi.Forward(t, t.Constant(seq))
	}
}

// RAPIDInference measures one full RAPID forward pass over a 20-item list —
// the quantity the paper's efficiency analysis (Section V-B) bounds by
// ~50 ms.
func RAPIDInference(b *testing.B) {
	cfg := dataset.TaobaoLike(1).Scaled(0.05)
	d := dataset.MustGenerate(cfg)
	opt := tableOptions(1)
	rng := rand.New(rand.NewSource(4))
	pool := d.RerankPools[0]
	items := pool.Candidates[:cfg.ListLen]
	scores := make([]float64, len(items))
	req := dataset.Request{User: pool.User, Items: items, InitScores: scores}
	inst := rerank.NewInstance(d, req, rng)
	env := &experiments.Env{Data: d}
	m := experiments.NewRAPID(env, opt, 1, nil)
	var h *obs.Histogram
	if reg != nil {
		h = reg.Histogram("rapid_bench_inference_seconds",
			"Latency of one RAPID forward pass over a 20-item list.", nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h != nil {
			start := time.Now()
			m.Scores(inst)
			h.ObserveDuration(time.Since(start))
		} else {
			m.Scores(inst)
		}
	}
}

// RAPIDInferenceBatch1 measures ScoreBatch with a single instance — the
// batched engine's fixed overhead relative to the legacy Scores path.
func RAPIDInferenceBatch1(b *testing.B) { rapidInferenceBatch(b, 1) }

// RAPIDInferenceBatch4 measures ScoreBatch over 4 coalesced instances.
func RAPIDInferenceBatch4(b *testing.B) { rapidInferenceBatch(b, 4) }

// RAPIDInferenceBatch16 measures ScoreBatch over 16 coalesced instances —
// the serving layer's default MaxBatch.
func RAPIDInferenceBatch16(b *testing.B) { rapidInferenceBatch(b, 16) }

// rapidInferenceBatch scores k distinct 20-item instances in one batched
// forward pass per op and reports instances/s, so batch sizes compare by
// throughput rather than per-op latency.
func rapidInferenceBatch(b *testing.B, k int) {
	cfg := dataset.TaobaoLike(1).Scaled(0.05)
	d := dataset.MustGenerate(cfg)
	opt := tableOptions(1)
	rng := rand.New(rand.NewSource(4))
	insts := make([]*rerank.Instance, k)
	for i := range insts {
		pool := d.RerankPools[i%len(d.RerankPools)]
		items := pool.Candidates[:cfg.ListLen]
		req := dataset.Request{User: pool.User, Items: items, InitScores: make([]float64, len(items))}
		insts[i] = rerank.NewInstance(d, req, rng)
	}
	env := &experiments.Env{Data: d}
	var m *core.Model = experiments.NewRAPID(env, opt, 1, nil)
	var h *obs.Histogram
	if reg != nil {
		h = reg.Histogram(fmt.Sprintf("rapid_bench_inference_batch%d_seconds", k),
			fmt.Sprintf("Latency of one batched RAPID forward pass over %d 20-item lists.", k), nil)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := m.ScoreBatch(ctx, insts); err != nil {
			b.Fatal(err)
		}
		if h != nil {
			h.ObserveDuration(time.Since(start))
		}
	}
	b.ReportMetric(float64(b.N*k)/b.Elapsed().Seconds(), "instances/s")
}

// DPPGreedyMAP measures the DPP baseline's greedy MAP selection.
func DPPGreedyMAP(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	base := mat.RandNormal(20, 8, 0, 1, rng)
	// base·baseᵀ through the fused kernel: no transposed copy, no extra
	// allocation (same Gram-matrix arithmetic the old MatMul(T()) produced).
	kernel := mat.New(base.Rows, base.Rows)
	mat.AddMatMulABT(kernel, base, base)
	for i := 0; i < 20; i++ {
		kernel.Set(i, i, kernel.At(i, i)+0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.GreedyMAP(kernel, 10)
	}
}

// MarginalDiversity measures the coverage-gain computation shared by RAPID
// and the diversity metrics.
func MarginalDiversity(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	cover := make([][]float64, 20)
	for i := range cover {
		c := make([]float64, 20)
		for j := range c {
			c[j] = rng.Float64() * 0.3
		}
		cover[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMD = topics.MarginalDiversity(cover, 20)
	}
}

var sinkMD [][]float64

const (
	trainBenchInstances = 60
	trainBenchEpochs    = 3
)

// TrainListwise measures end-to-end RAPID-pro training (forward, backward,
// Adam) over a fixed synthetic set — the trainer hot path the data-parallel
// refactor targets. It reports train-instances/sec alongside ns/op.
func TrainListwise(b *testing.B) {
	cfg := dataset.TaobaoLike(9).Scaled(0.05)
	d := dataset.MustGenerate(cfg)
	rng := rand.New(rand.NewSource(9))
	train := make([]*rerank.Instance, trainBenchInstances)
	for i := range train {
		pool := d.RerankPools[i%len(d.RerankPools)]
		items := append([]int(nil), pool.Candidates[:cfg.ListLen]...)
		req := dataset.Request{User: pool.User, Items: items, InitScores: make([]float64, len(items))}
		req.Clicks = make([]bool, len(items))
		for k := range req.Clicks {
			req.Clicks[k] = rng.Float64() < d.Relevance(pool.User, items[k])
		}
		train[i] = rerank.NewInstance(d, req, rng)
	}
	env := &experiments.Env{Data: d}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := experiments.NewRAPID(env, tableOptions(int64(9+i)), int64(i), nil)
		m.TrainCfg = rerank.TrainConfig{
			Epochs: trainBenchEpochs, LR: 0.005, BatchSize: 8, ClipNorm: 5, Seed: int64(9 + i),
		}
		if reg != nil {
			m.TrainCfg.Observer = telObserver{tel: obs.NewTrainTelemetry(reg)}
		}
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*trainBenchInstances*trainBenchEpochs)/b.Elapsed().Seconds(), "instances/s")
}

// tableScale keeps one experiment iteration in the tens of seconds.
const tableScale = 0.08

func tableOptions(seed int64) experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Scale = tableScale
	opt.Seed = seed
	opt.Epochs = 4
	return opt
}

// Table2a runs the complete Table II(a) experiment — dataset generation,
// initial-ranker training, click simulation, re-ranker training for RAPID
// and every baseline, evaluation — once per op.
func Table2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(0.5, tableOptions(int64(42+i))); err != nil {
			b.Fatal(err)
		}
	}
}
