package benchsuite

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rerank"
)

// TestRegistryHook: with a registry attached, RAPIDInference must record one
// latency observation per executed op into rapid_bench_inference_seconds —
// this is the seam rapidbench -benchjson uses to put a full latency
// distribution (not just mean ns/op) into BENCH_*.json.
func TestRegistryHook(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark; skipped in -short")
	}
	reg := obs.NewRegistry()
	SetRegistry(reg)
	defer SetRegistry(nil)
	r := testing.Benchmark(RAPIDInference)
	for _, m := range reg.Snapshot() {
		if m.Name != "rapid_bench_inference_seconds" {
			continue
		}
		// testing.Benchmark calls the body several times with growing N;
		// the histogram accumulates across calls, so at least the final
		// run's ops must be present.
		if m.Hist == nil || m.Hist.Count < int64(r.N) || m.Hist.Count == 0 {
			t.Fatalf("inference histogram = %+v, want >= %d observations", m.Hist, r.N)
		}
		return
	}
	t.Fatal("rapid_bench_inference_seconds not registered")
}

// TestTelObserver: the rerank→obs adapter must forward every EpochStats
// field to the training telemetry.
func TestTelObserver(t *testing.T) {
	reg := obs.NewRegistry()
	tel := obs.NewTrainTelemetry(reg)
	o := telObserver{tel: tel}
	o.ObserveEpoch(rerank.EpochStats{
		Epoch: 0, Epochs: 2, Loss: 0.5, ValidLoss: math.NaN(),
		Duration: 80 * time.Millisecond, Steps: 3, Instances: 8, SkippedInstances: 1, DroppedSteps: 2,
	})
	o.ObserveEpoch(rerank.EpochStats{
		Epoch: 1, Epochs: 2, Loss: 0.25, ValidLoss: 0.3,
		Duration: 90 * time.Millisecond, Steps: 4, Instances: 8,
	})
	if tel.Epochs.Value() != 2 || tel.Steps.Value() != 7 || tel.Instances.Value() != 16 {
		t.Fatalf("counters: epochs=%d steps=%d instances=%d",
			tel.Epochs.Value(), tel.Steps.Value(), tel.Instances.Value())
	}
	if tel.SkippedInstances.Value() != 1 || tel.DroppedSteps.Value() != 2 {
		t.Fatalf("guard counters: skipped=%d dropped=%d",
			tel.SkippedInstances.Value(), tel.DroppedSteps.Value())
	}
	if tel.Loss.Value() != 0.25 || tel.ValidLoss.Value() != 0.3 {
		t.Fatalf("gauges: loss=%v valid=%v", tel.Loss.Value(), tel.ValidLoss.Value())
	}
	if got := tel.EpochSeconds.Snapshot(); got.Count != 2 {
		t.Fatalf("epoch duration observations = %d, want 2", got.Count)
	}
}
