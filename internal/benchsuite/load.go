package benchsuite

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// LoadScenario is one rapidload run's measurements: an open-loop load test
// against a serving target, summarized as outcome counts and latency
// percentiles. Scenarios are merged by name into one LoadFile, so a script
// can run "unhedged" and "hedged" passes and land both in BENCH_PR6.json.
type LoadScenario struct {
	Name      string  `json:"-"`
	Generated string  `json:"generated"`
	Target    string  `json:"target"`
	TargetRPS float64 `json:"target_rps"`
	DurationS float64 `json:"duration_s"`

	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Degraded int64 `json:"degraded"`
	Shed     int64 `json:"shed"`
	Errors   int64 `json:"errors"`

	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// LoadEnv mirrors the bench harness's environment block.
type LoadEnv struct {
	Go         string `json:"go"`
	CPU        int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Arch       string `json:"goarch"`
}

// LoadFile is the on-disk shape of BENCH_PR6.json.
type LoadFile struct {
	Generated string                  `json:"generated"`
	Env       LoadEnv                 `json:"env"`
	Scenarios map[string]LoadScenario `json:"scenarios"`
}

// Percentiles summarizes a latency sample in milliseconds. The slice is
// sorted in place.
func Percentiles(ms []float64) (p50, p90, p99, max float64) {
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return at(0.50), at(0.90), at(0.99), ms[len(ms)-1]
}

// MergeLoadScenario reads the LoadFile at path (tolerating a missing file),
// upserts the scenario under its name, and writes the file back. Sequential
// runs from one script accumulate into a single report.
func MergeLoadScenario(path string, sc LoadScenario) error {
	if sc.Name == "" {
		return fmt.Errorf("benchsuite: load scenario needs a name")
	}
	out := LoadFile{Scenarios: map[string]LoadScenario{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &out); err != nil {
			return fmt.Errorf("benchsuite: %s exists but is not a load report: %v", path, err)
		}
		if out.Scenarios == nil {
			out.Scenarios = map[string]LoadScenario{}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	out.Generated = time.Now().UTC().Format(time.RFC3339)
	out.Env = LoadEnv{
		Go:         runtime.Version(),
		CPU:        runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Arch:       runtime.GOARCH,
	}
	out.Scenarios[sc.Name] = sc
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
