package dataset

// Config controls dataset generation. The three paper datasets are provided
// as preset constructors (TaobaoLike, MovieLensLike, AppStoreLike); Scale
// lets experiments shrink or grow every count uniformly.
type Config struct {
	Name string
	Seed int64

	// Universe sizes.
	NumUsers int
	NumItems int

	// Topics is m, the number of topics.
	Topics int
	// CoverageKind selects the geometry of τ_v per dataset:
	// GMM (Taobao), multi-hot normalized (MovieLens), one-hot (App Store).
	CoverageKind CoverageKind
	// Categories is the raw category count clustered by GMM when
	// CoverageKind == CoverGMM (the Taobao path).
	Categories int
	// MaxGenres bounds how many genres a multi-hot item may carry.
	MaxGenres int

	// LatentDim is the dimension of the ground-truth user/item vectors.
	LatentDim int
	// UserDim / ItemDim are observable feature dimensions (q_u, q_v).
	UserDim, ItemDim int
	// FeatureNoise is the std of the Gaussian noise separating observable
	// features from latent vectors.
	FeatureNoise float64

	// Relevance model coefficients (see Dataset.Relevance).
	RelAffinity, RelTopical, RelBias float64

	// FocusedFrac is the fraction of users with narrow interests.
	FocusedFrac float64
	// FocusedTopics is how many topics a focused user concentrates on.
	FocusedTopics int
	// HistoryLen is the number of behavior-history events per user.
	HistoryLen int

	// RankerTrainPerUser is the number of pointwise interactions sampled
	// per user for initial-ranker training.
	RankerTrainPerUser int
	// NegativesPerPositive controls the sampled negative rate.
	NegativesPerPositive int

	// RerankRequests / TestRequests are the number of re-ranking requests
	// in the re-rank training and test splits.
	RerankRequests, TestRequests int
	// PoolSize is how many candidates are retrieved per request before the
	// initial ranker keeps the top ListLen.
	PoolSize int
	// ListLen is L, the initial list length fed to re-rankers.
	ListLen int

	// WithBids enables per-item bid prices (App Store / rev@k).
	WithBids bool
}

// CoverageKind enumerates the topic-coverage geometries used by the three
// datasets.
type CoverageKind int

// Coverage geometries.
const (
	// CoverGMM derives probabilistic coverage by clustering raw category
	// embeddings with a Gaussian mixture (Taobao: 9,439 categories → 5
	// topics in the paper).
	CoverGMM CoverageKind = iota
	// CoverMultiHot assigns 1–MaxGenres genres and normalizes the
	// indicator vector (MovieLens genre vectors).
	CoverMultiHot
	// CoverOneHot assigns exactly one category (App Store).
	CoverOneHot
)

// TaobaoLike mirrors the Taobao setup: m=5 topics from GMM-clustered
// categories, purchase-like sparse relevance.
func TaobaoLike(seed int64) Config {
	return Config{
		Name: "taobao", Seed: seed,
		NumUsers: 600, NumItems: 1200,
		Topics: 5, CoverageKind: CoverGMM, Categories: 120,
		LatentDim: 8, UserDim: 13, ItemDim: 8, FeatureNoise: 0.2,
		RelAffinity: 2.6, RelTopical: 3.2, RelBias: -2.8,
		FocusedFrac: 0.5, FocusedTopics: 1, HistoryLen: 40,
		RankerTrainPerUser: 6, NegativesPerPositive: 3,
		RerankRequests: 1500, TestRequests: 600,
		PoolSize: 32, ListLen: 20,
	}
}

// MovieLensLike mirrors MovieLens-20M: m=20 genres, items carry 1–3 genres
// normalized, denser relevance.
func MovieLensLike(seed int64) Config {
	return Config{
		Name: "movielens", Seed: seed,
		NumUsers: 600, NumItems: 1200,
		Topics: 20, CoverageKind: CoverMultiHot, MaxGenres: 3,
		LatentDim: 8, UserDim: 28, ItemDim: 8, FeatureNoise: 0.2,
		RelAffinity: 2.4, RelTopical: 3.5, RelBias: -2.6,
		FocusedFrac: 0.4, FocusedTopics: 2, HistoryLen: 48,
		RankerTrainPerUser: 6, NegativesPerPositive: 3,
		RerankRequests: 1500, TestRequests: 600,
		PoolSize: 32, ListLen: 20,
	}
}

// AppStoreLike mirrors the Huawei App Store: m=23 one-hot categories,
// per-item bids, revenue objective.
func AppStoreLike(seed int64) Config {
	return Config{
		Name: "appstore", Seed: seed,
		NumUsers: 600, NumItems: 800,
		Topics: 23, CoverageKind: CoverOneHot,
		LatentDim: 8, UserDim: 31, ItemDim: 8, FeatureNoise: 0.2,
		RelAffinity: 2.6, RelTopical: 3.0, RelBias: -2.6,
		FocusedFrac: 0.45, FocusedTopics: 2, HistoryLen: 40,
		RankerTrainPerUser: 6, NegativesPerPositive: 3,
		RerankRequests: 1500, TestRequests: 600,
		PoolSize: 32, ListLen: 20,
		WithBids: true,
	}
}

// Scaled returns a copy of c with every count multiplied by f (minimum 1
// user/item, 8 requests). Used by benches and tests to shrink experiments.
func (c Config) Scaled(f float64) Config {
	scale := func(n int, lo int) int {
		v := int(float64(n) * f)
		if v < lo {
			v = lo
		}
		return v
	}
	c.NumUsers = scale(c.NumUsers, 8)
	// Keep at least a full pool's worth of items so retrieval can always
	// fill a candidate set.
	c.NumItems = scale(c.NumItems, c.PoolSize)
	c.RerankRequests = scale(c.RerankRequests, 8)
	c.TestRequests = scale(c.TestRequests, 8)
	if c.Categories > 0 {
		c.Categories = scale(c.Categories, c.Topics)
	}
	return c
}
