// Package dataset generates the synthetic user/item universes that stand in
// for the paper's Taobao, MovieLens-20M and Huawei App Store datasets.
//
// The paper's public-dataset evaluation is itself semi-synthetic — clicks
// are produced by a DCM fitted to the logs — so what a faithful
// reproduction needs from the data is (a) a relevance signal recoverable
// from user/item features, (b) per-item topic coverage with the right
// geometry per dataset, and (c) heterogeneous, *hidden* per-user diversity
// preferences expressed through behavior histories. The generators here
// construct exactly those, seeded and deterministic.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// Item is a recommendable item.
type Item struct {
	ID int
	// Features is the observable feature vector x_v (latent vector plus
	// noise), of dimension Config.ItemDim.
	Features []float64
	// Cover is the topic coverage τ_v ∈ [0,1]^m.
	Cover []float64
	// Bid is the per-click revenue b(v); zero unless the config enables
	// bids (App Store).
	Bid float64
	// latent is the ground-truth item vector used by the relevance model.
	latent []float64
}

// User is a platform user.
type User struct {
	ID int
	// Features is the observable feature vector x_u of dimension
	// Config.UserDim.
	Features []float64
	// History is the time-ordered behavior history (item IDs the user
	// positively interacted with), oldest first.
	History []int
	// Pref is the ground-truth topic preference distribution (sums to 1).
	// Models never see it directly; it shapes History and the DCM.
	Pref []float64
	// BehaviorDist is the tempered preference p_u ∝ Pref^(1/(0.4+appetite))
	// that actually drives the behavior history and the DCM diversity
	// weights. High-appetite users browse more broadly than their raw
	// preference; low-appetite users browse more narrowly. Because ρ̄ is a
	// function of this distribution, a model can in principle recover the
	// diversity preference from the history — the paper's core premise.
	BehaviorDist []float64
	// DivAppetite ∈ [0,1] scales how much diversity drives this user's
	// clicks; focused users have low appetite.
	DivAppetite float64
	// latent is the ground-truth user vector for the relevance model.
	latent []float64
}

// Interaction is a pointwise training example for the initial rankers.
type Interaction struct {
	User, Item int
	Label      float64 // 1 = positive (click/purchase), 0 = negative
}

// Pool is a re-ranking request before initial ranking: a user and the
// candidate items retrieved for them.
type Pool struct {
	User       int
	Candidates []int
}

// Request is a fully prepared re-ranking instance: the initial ranking list
// R (already ordered by the initial ranker), its scores, and — for training
// requests — the DCM-simulated clicks on R.
type Request struct {
	User       int
	Items      []int     // initial list R, best-first, length L
	InitScores []float64 // initial ranker scores aligned with Items
	Clicks     []bool    // click labels on R (training only; nil for test)
}

// Dataset is a complete generated universe with its experiment splits.
type Dataset struct {
	Name  string
	Cfg   Config
	Users []*User
	Items []*Item

	// RankerTrain holds pointwise interactions for initial-ranker training
	// (the paper's "initial ranker training set").
	RankerTrain []Interaction
	// RerankPools / TestPools are the candidate pools from which the
	// "re-ranking training set" and "test set" requests are built once an
	// initial ranker is available.
	RerankPools []Pool
	TestPools   []Pool
}

// M returns the number of topics.
func (d *Dataset) M() int { return d.Cfg.Topics }

// Cover returns item v's topic coverage; it is the function handed to the
// click model and the re-rankers.
func (d *Dataset) Cover(v int) []float64 { return d.Items[v].Cover }

// Relevance returns the ground-truth attraction relevance ᾱ(u, v) ∈ [0,1]:
// a logistic link over the latent affinity plus the topical match. This is
// the quantity the DCM environment uses; models must estimate it from
// features and clicks.
func (d *Dataset) Relevance(u, v int) float64 {
	usr, itm := d.Users[u], d.Items[v]
	aff := mat.Dot(usr.latent, itm.latent)
	topical := mat.Dot(usr.Pref, itm.Cover)
	return mat.Sigmoid(d.Cfg.RelAffinity*aff + d.Cfg.RelTopical*topical + d.Cfg.RelBias)
}

// DivWeight returns the user's ground-truth DCM diversity weights
// ρ̄(u) = appetite·p_u/max(p_u), where p_u is the tempered behavior
// distribution (see User.BehaviorDist): the shape users reveal through
// their histories, rescaled so its largest component equals the appetite.
// Since every
// coverage geometry in this package has Σ_j τ_v^j ≤ 1, the incremental
// coverage gain satisfies Σ_j ζ_j ≤ 1 and hence ρ̄ᵀζ ≤ appetite ≤ 1,
// keeping φ̄ a probability without clamping while letting the diversity
// term move clicks materially (the paper's ρ̄ is fitted from logs and is of
// comparable magnitude to relevance).
func (d *Dataset) DivWeight(u int) []float64 {
	usr := d.Users[u]
	src := usr.BehaviorDist
	if src == nil {
		src = usr.Pref
	}
	mx := 0.0
	for _, p := range src {
		if p > mx {
			mx = p
		}
	}
	if mx == 0 {
		return make([]float64, len(src))
	}
	return mat.ScaleVec(usr.DivAppetite/mx, src)
}

// UserFeatures and ItemFeatures expose observable features.
func (d *Dataset) UserFeatures(u int) []float64 { return d.Users[u].Features }

// ItemFeatures returns x_v.
func (d *Dataset) ItemFeatures(v int) []float64 { return d.Items[v].Features }

// Bid returns the bid price of item v.
func (d *Dataset) Bid(v int) float64 { return d.Items[v].Bid }

// Validate performs internal consistency checks and returns the first
// problem found, or nil. Generators call it before returning.
func (d *Dataset) Validate() error {
	m := d.Cfg.Topics
	for _, it := range d.Items {
		if len(it.Cover) != m {
			return fmt.Errorf("dataset %s: item %d has %d topics, want %d", d.Name, it.ID, len(it.Cover), m)
		}
		for j, t := range it.Cover {
			if t < 0 || t > 1 {
				return fmt.Errorf("dataset %s: item %d coverage[%d]=%f outside [0,1]", d.Name, it.ID, j, t)
			}
		}
	}
	for _, u := range d.Users {
		s := mat.SumVec(u.Pref)
		if s < 0.99 || s > 1.01 {
			return fmt.Errorf("dataset %s: user %d preference sums to %f", d.Name, u.ID, s)
		}
		for _, v := range u.History {
			if v < 0 || v >= len(d.Items) {
				return fmt.Errorf("dataset %s: user %d history references item %d", d.Name, u.ID, v)
			}
		}
	}
	return nil
}

// rngFor derives a namespaced deterministic RNG from the dataset seed so
// that independent generation stages don't perturb each other.
func rngFor(seed int64, stage string) *rand.Rand {
	h := int64(1469598103934665603)
	for _, c := range stage {
		h ^= int64(c)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}
