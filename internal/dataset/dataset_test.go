package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func tinyConfig(seed int64) Config {
	cfg := TaobaoLike(seed)
	cfg.NumUsers = 30
	cfg.NumItems = 80
	cfg.Categories = 20
	cfg.RerankRequests = 12
	cfg.TestRequests = 6
	return cfg
}

func TestGenerateValid(t *testing.T) {
	for _, cfg := range []Config{tinyConfig(1), MovieLensLike(1).Scaled(0.05), AppStoreLike(1).Scaled(0.05)} {
		d, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(d.Users) == 0 || len(d.Items) == 0 || len(d.RankerTrain) == 0 {
			t.Fatalf("%s: empty universe", cfg.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(tinyConfig(7))
	b := MustGenerate(tinyConfig(7))
	for v := range a.Items {
		if !mat.RowVector(a.Items[v].Features).EqualApprox(mat.RowVector(b.Items[v].Features), 0) {
			t.Fatal("item features differ across identical configs")
		}
	}
	for u := range a.Users {
		for i, h := range a.Users[u].History {
			if b.Users[u].History[i] != h {
				t.Fatal("histories differ across identical configs")
			}
		}
	}
	if a.RerankPools[0].User != b.RerankPools[0].User {
		t.Fatal("pools differ across identical configs")
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := MustGenerate(tinyConfig(1))
	b := MustGenerate(tinyConfig(2))
	same := true
	for v := range a.Items {
		if !mat.RowVector(a.Items[v].Features).EqualApprox(mat.RowVector(b.Items[v].Features), 1e-12) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical items")
	}
}

func TestRelevanceBounds(t *testing.T) {
	d := MustGenerate(tinyConfig(3))
	f := func(ui, vi uint8) bool {
		u := int(ui) % len(d.Users)
		v := int(vi) % len(d.Items)
		r := d.Relevance(u, v)
		return r >= 0 && r <= 1 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivWeightInvariants(t *testing.T) {
	d := MustGenerate(tinyConfig(4))
	for u := range d.Users {
		rho := d.DivWeight(u)
		mx := 0.0
		for _, r := range rho {
			if r < 0 || r > 1 {
				t.Fatalf("user %d rho out of range: %v", u, rho)
			}
			if r > mx {
				mx = r
			}
		}
		// The max component equals the appetite by construction.
		if math.Abs(mx-d.Users[u].DivAppetite) > 1e-9 {
			t.Fatalf("user %d: max rho %v != appetite %v", u, mx, d.Users[u].DivAppetite)
		}
	}
}

func TestBehaviorDistTempering(t *testing.T) {
	d := MustGenerate(tinyConfig(5))
	for _, u := range d.Users {
		if math.Abs(mat.SumVec(u.BehaviorDist)-1) > 1e-9 {
			t.Fatalf("behavior dist not normalized: %v", u.BehaviorDist)
		}
		// Tempering flattens: behavior entropy ≥ preference entropy when
		// appetite is high (exponent < 1).
		if 1/(0.4+u.DivAppetite) < 1 {
			if mat.Entropy(u.BehaviorDist) < mat.Entropy(u.Pref)-1e-9 {
				t.Fatalf("high-appetite user %d: behavior entropy below preference entropy", u.ID)
			}
		}
	}
}

func TestHistoryReflectsPreference(t *testing.T) {
	// Aggregate check: users' histories must concentrate on their preferred
	// topics far above the uniform share.
	d := MustGenerate(tinyConfig(6))
	var onPref, total float64
	for _, u := range d.Users {
		best := 0
		for j, p := range u.Pref {
			if p > u.Pref[best] {
				best = j
			}
		}
		for _, v := range u.History {
			total++
			onPref += d.Items[v].Cover[best]
		}
	}
	share := onPref / total
	if share < 1.2/float64(d.M()) {
		t.Fatalf("history topical share %v barely above uniform %v", share, 1.0/float64(d.M()))
	}
}

func TestCoverageGeometries(t *testing.T) {
	oneHot := MustGenerate(AppStoreLike(1).Scaled(0.05))
	for _, it := range oneHot.Items {
		ones, zeros := 0, 0
		for _, c := range it.Cover {
			switch c {
			case 1:
				ones++
			case 0:
				zeros++
			}
		}
		if ones != 1 || zeros != len(it.Cover)-1 {
			t.Fatalf("one-hot coverage violated: %v", it.Cover)
		}
	}
	multi := MustGenerate(MovieLensLike(1).Scaled(0.05))
	for _, it := range multi.Items {
		if math.Abs(mat.SumVec(it.Cover)-1) > 1e-9 {
			t.Fatalf("multi-hot coverage not normalized: %v", it.Cover)
		}
	}
	gmm := MustGenerate(tinyConfig(8))
	for _, it := range gmm.Items {
		if math.Abs(mat.SumVec(it.Cover)-1) > 1e-6 {
			t.Fatalf("GMM coverage not a distribution: %v", it.Cover)
		}
	}
}

func TestBidsOnlyWithFlag(t *testing.T) {
	app := MustGenerate(AppStoreLike(1).Scaled(0.05))
	hasBid := false
	for _, it := range app.Items {
		if it.Bid > 0 {
			hasBid = true
		}
		if it.Bid < 0 {
			t.Fatal("negative bid")
		}
	}
	if !hasBid {
		t.Fatal("app store items carry no bids")
	}
	tb := MustGenerate(tinyConfig(9))
	for _, it := range tb.Items {
		if it.Bid != 0 {
			t.Fatal("taobao items should not carry bids")
		}
	}
}

func TestPoolsAreValid(t *testing.T) {
	d := MustGenerate(tinyConfig(10))
	for _, p := range append(append([]Pool{}, d.RerankPools...), d.TestPools...) {
		if p.User < 0 || p.User >= len(d.Users) {
			t.Fatalf("pool user %d out of range", p.User)
		}
		if len(p.Candidates) != d.Cfg.PoolSize {
			t.Fatalf("pool size %d, want %d", len(p.Candidates), d.Cfg.PoolSize)
		}
		seen := map[int]bool{}
		for _, v := range p.Candidates {
			if v < 0 || v >= len(d.Items) {
				t.Fatalf("candidate %d out of range", v)
			}
			if seen[v] {
				t.Fatal("duplicate candidate in pool")
			}
			seen[v] = true
		}
	}
}

func TestScaled(t *testing.T) {
	cfg := TaobaoLike(1)
	half := cfg.Scaled(0.5)
	if half.NumUsers != cfg.NumUsers/2 || half.RerankRequests != cfg.RerankRequests/2 {
		t.Fatalf("Scaled(0.5) users %d requests %d", half.NumUsers, half.RerankRequests)
	}
	tiny := cfg.Scaled(0.0001)
	if tiny.NumUsers < 8 || tiny.NumItems < 16 || tiny.RerankRequests < 8 {
		t.Fatalf("Scaled floor violated: %+v", tiny)
	}
	if tiny.ListLen != cfg.ListLen || tiny.Topics != cfg.Topics {
		t.Fatal("Scaled changed structural dims")
	}
}

func TestFocusedVsDiverseAppetite(t *testing.T) {
	d := MustGenerate(tinyConfig(11))
	var focusedApp, diverseApp []float64
	for _, u := range d.Users {
		h := mat.Entropy(u.Pref) / math.Log(float64(d.M()))
		if h < 0.5 {
			focusedApp = append(focusedApp, u.DivAppetite)
		} else {
			diverseApp = append(diverseApp, u.DivAppetite)
		}
	}
	if len(focusedApp) == 0 || len(diverseApp) == 0 {
		t.Skip("population too small to split")
	}
	mf := mat.SumVec(focusedApp) / float64(len(focusedApp))
	md := mat.SumVec(diverseApp) / float64(len(diverseApp))
	if md <= mf {
		t.Fatalf("diverse users should have larger appetite: focused %v diverse %v", mf, md)
	}
}
