package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/topics"
)

// Generate builds a complete dataset from a config. Generation is
// deterministic for a given config (including seed).
func Generate(cfg Config) (*Dataset, error) {
	d := &Dataset{Name: cfg.Name, Cfg: cfg}
	genItems(d)
	genUsers(d)
	genHistories(d)
	genRankerTrain(d)
	d.RerankPools = genPools(d, cfg.RerankRequests, rngFor(cfg.Seed, "pools-rerank"))
	d.TestPools = genPools(d, cfg.TestRequests, rngFor(cfg.Seed, "pools-test"))
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: generated universe invalid: %w", err)
	}
	return d, nil
}

// MustGenerate is Generate, panicking on error. Generation errors indicate
// an inconsistent Config, which is a programming mistake in callers.
func MustGenerate(cfg Config) *Dataset {
	d, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func genItems(d *Dataset) {
	cfg := d.Cfg
	rng := rngFor(cfg.Seed, "items")
	// Topic anchors in latent space tie an item's latent vector to its
	// dominant topic, so relevance and topical interest correlate the way
	// they do in real catalogues.
	anchors := make([][]float64, cfg.Topics)
	for j := range anchors {
		a := make([]float64, cfg.LatentDim)
		for dmn := range a {
			a[dmn] = rng.NormFloat64()
		}
		anchors[j] = a
	}
	covers := genCoverage(cfg, rng)
	d.Items = make([]*Item, cfg.NumItems)
	for v := 0; v < cfg.NumItems; v++ {
		cover := covers[v]
		latent := make([]float64, cfg.LatentDim)
		for j, t := range cover {
			for dmn := range latent {
				latent[dmn] += t * anchors[j][dmn]
			}
		}
		for dmn := range latent {
			latent[dmn] = latent[dmn]*0.6 + 0.4*rng.NormFloat64()
		}
		normalize(latent)
		feats := make([]float64, cfg.ItemDim)
		for dmn := range feats {
			base := 0.0
			if dmn < len(latent) {
				base = latent[dmn]
			}
			feats[dmn] = base + rng.NormFloat64()*cfg.FeatureNoise
		}
		it := &Item{ID: v, Features: feats, Cover: cover, latent: latent}
		if cfg.WithBids {
			// Log-normal bids concentrated around 1 with a heavy tail,
			// roughly how app-install bids distribute.
			it.Bid = math.Exp(rng.NormFloat64() * 0.5) // median 1
		}
		d.Items[v] = it
	}
}

// genCoverage produces per-item topic coverage according to the config's
// coverage kind.
func genCoverage(cfg Config, rng *rand.Rand) [][]float64 {
	covers := make([][]float64, cfg.NumItems)
	switch cfg.CoverageKind {
	case CoverOneHot:
		for v := range covers {
			c := make([]float64, cfg.Topics)
			c[rng.Intn(cfg.Topics)] = 1
			covers[v] = c
		}
	case CoverMultiHot:
		maxG := cfg.MaxGenres
		if maxG < 1 {
			maxG = 1
		}
		for v := range covers {
			c := make([]float64, cfg.Topics)
			k := 1 + rng.Intn(maxG)
			for g := 0; g < k; g++ {
				c[rng.Intn(cfg.Topics)] = 1
			}
			covers[v] = mat.Normalize(c)
		}
	case CoverGMM:
		// Raw categories are points in a 2·Topics-dimensional embedding
		// space drawn around per-topic centers; a GMM recovers the topic
		// structure and its responsibilities become probabilistic coverage
		// — the Taobao pipeline (9,439 categories → 5 GMM topics).
		dim := 2 * cfg.Topics
		centers := make([][]float64, cfg.Topics)
		for j := range centers {
			c := make([]float64, dim)
			for dmn := range c {
				c[dmn] = rng.NormFloat64() * 2
			}
			centers[j] = c
		}
		cats := make([][]float64, cfg.Categories)
		for i := range cats {
			base := centers[rng.Intn(cfg.Topics)]
			p := make([]float64, dim)
			for dmn := range p {
				p[dmn] = base[dmn] + rng.NormFloat64()*0.6
			}
			cats[i] = p
		}
		gmm := topics.FitGMM(cats, cfg.Topics, 25, rng)
		catCover := make([][]float64, len(cats))
		for i, p := range cats {
			catCover[i] = gmm.Responsibilities(p)
		}
		for v := range covers {
			covers[v] = catCover[rng.Intn(len(cats))]
		}
	default:
		panic(fmt.Sprintf("dataset: unknown coverage kind %d", cfg.CoverageKind))
	}
	return covers
}

func genUsers(d *Dataset) {
	cfg := d.Cfg
	rng := rngFor(cfg.Seed, "users")
	d.Users = make([]*User, cfg.NumUsers)
	for u := 0; u < cfg.NumUsers; u++ {
		pref := make([]float64, cfg.Topics)
		focused := rng.Float64() < cfg.FocusedFrac
		if focused {
			// Mass on a few topics with a little leakage elsewhere.
			k := cfg.FocusedTopics
			if k < 1 {
				k = 1
			}
			for t := 0; t < k; t++ {
				pref[rng.Intn(cfg.Topics)] += 1 + rng.Float64()
			}
			for j := range pref {
				pref[j] += 0.02
			}
		} else {
			// Diverse user: smooth Dirichlet-like preference.
			for j := range pref {
				pref[j] = 0.4 + rng.Float64()
			}
		}
		pref = mat.Normalize(pref)
		appetite := 0.25 + 0.3*rng.Float64()
		if !focused {
			appetite = 0.6 + 0.4*rng.Float64()
		}
		latent := make([]float64, cfg.LatentDim)
		for dmn := range latent {
			latent[dmn] = rng.NormFloat64()
		}
		normalize(latent)
		// Observable user features carry the latent vector and the raw
		// topic preference (both noised) — so every model can in principle
		// learn the topical-relevance component, while the diversity
		// appetite remains recoverable only from the behavior history.
		feats := make([]float64, cfg.UserDim)
		for dmn := range feats {
			base := 0.0
			switch {
			case dmn < len(latent):
				base = latent[dmn]
			case dmn-len(latent) < len(pref):
				base = pref[dmn-len(latent)] * float64(cfg.Topics) / 2
			}
			feats[dmn] = base + rng.NormFloat64()*cfg.FeatureNoise
		}
		// Tempered behavior distribution: high appetite flattens browsing
		// across topics, low appetite sharpens it. This is the signal the
		// history carries about the user's diversity preference.
		bd := make([]float64, cfg.Topics)
		exp := 1 / (0.4 + appetite)
		for j, p := range pref {
			bd[j] = math.Pow(p+1e-6, exp)
		}
		bd = mat.Normalize(bd)
		d.Users[u] = &User{
			ID: u, Features: feats, Pref: pref, BehaviorDist: bd,
			DivAppetite: appetite, latent: latent,
		}
	}
}

// genHistories samples each user's behavior history: items drawn with
// probability proportional to relevance × topical preference, which is how
// positively-interacted histories concentrate on the user's true topics.
func genHistories(d *Dataset) {
	cfg := d.Cfg
	rng := rngFor(cfg.Seed, "history")
	for _, u := range d.Users {
		weights := make([]float64, len(d.Items))
		for v := range d.Items {
			rel := d.Relevance(u.ID, v)
			topical := mat.Dot(u.BehaviorDist, d.Items[v].Cover)
			weights[v] = rel * (0.1 + topical)
		}
		cum := cumulative(weights)
		u.History = make([]int, cfg.HistoryLen)
		for i := range u.History {
			u.History[i] = sampleCum(cum, rng)
		}
	}
}

func genRankerTrain(d *Dataset) {
	cfg := d.Cfg
	rng := rngFor(cfg.Seed, "rankertrain")
	for _, u := range d.Users {
		for i := 0; i < cfg.RankerTrainPerUser; i++ {
			v := rng.Intn(len(d.Items))
			label := 0.0
			if rng.Float64() < d.Relevance(u.ID, v) {
				label = 1
			}
			d.RankerTrain = append(d.RankerTrain, Interaction{User: u.ID, Item: v, Label: label})
			for n := 0; n < cfg.NegativesPerPositive; n++ {
				nv := rng.Intn(len(d.Items))
				nl := 0.0
				if rng.Float64() < d.Relevance(u.ID, nv)*0.5 {
					nl = 1
				}
				d.RankerTrain = append(d.RankerTrain, Interaction{User: u.ID, Item: nv, Label: nl})
			}
		}
	}
}

// genPools retrieves candidate sets per request: a recall-stage mixture of
// topically matched items and random exploration, as the multi-stage
// pipeline of Section I would produce.
func genPools(d *Dataset, n int, rng *rand.Rand) []Pool {
	cfg := d.Cfg
	poolSize := cfg.PoolSize
	if poolSize > len(d.Items) {
		// A heavily scaled-down universe can have fewer items than the
		// configured pool; retrieval then returns the whole catalogue.
		poolSize = len(d.Items)
	}
	pools := make([]Pool, n)
	for i := 0; i < n; i++ {
		u := rng.Intn(len(d.Users))
		usr := d.Users[u]
		seen := make(map[int]bool, poolSize)
		cands := make([]int, 0, poolSize)
		weights := make([]float64, len(d.Items))
		for v := range d.Items {
			// Squared topical match makes recall sharply redundant — the
			// near-duplicate candidate sets the paper's intro motivates.
			t := mat.Dot(usr.Pref, d.Items[v].Cover)
			weights[v] = 0.01 + t*t
		}
		cum := cumulative(weights)
		for len(cands) < poolSize {
			var v int
			if rng.Float64() < 0.6 {
				v = sampleCum(cum, rng)
			} else {
				v = rng.Intn(len(d.Items))
			}
			if !seen[v] {
				seen[v] = true
				cands = append(cands, v)
			}
		}
		pools[i] = Pool{User: u, Candidates: cands}
	}
	return pools
}

func normalize(v []float64) {
	n := mat.NormVec(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func cumulative(w []float64) []float64 {
	cum := make([]float64, len(w))
	var s float64
	for i, x := range w {
		s += x
		cum[i] = s
	}
	return cum
}

func sampleCum(cum []float64, rng *rand.Rand) int {
	total := cum[len(cum)-1]
	r := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
