package obs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHistogramProperties checks the histogram invariants over random
// observation sets (testing/quick):
//
//  1. per-bucket counts sum to the total count;
//  2. each observation lands in the unique bucket whose bound interval
//     contains it (le semantics: first bound >= v);
//  3. the cumulative rendering is monotone non-decreasing and ends at count;
//  4. the sum equals the sequential float sum of the observations.
func TestHistogramProperties(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bounds := []float64{0.01, 0.1, 1, 10}
		r := NewRegistry()
		h := r.Histogram("p_seconds", "", bounds)
		want := make([]int64, len(bounds)+1)
		var wantSum float64
		for i := 0; i < int(n); i++ {
			// Log-uniform across and beyond the bucket range, including
			// exact bound hits.
			v := math.Pow(10, rng.Float64()*6-4) // 1e-4 .. 1e2
			if rng.Intn(8) == 0 {
				v = bounds[rng.Intn(len(bounds))]
			}
			h.Observe(v)
			wantSum += v
			b := 0
			for b < len(bounds) && v > bounds[b] {
				b++
			}
			want[b]++
		}
		s := h.Snapshot()
		var bucketSum, cum int64
		prev := int64(-1)
		for i, c := range s.Counts {
			if c != want[i] {
				return false
			}
			bucketSum += c
			cum += c
			if cum < prev {
				return false
			}
			prev = cum
		}
		return bucketSum == s.Count && cum == s.Count && s.Sum == wantSum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGaugeAddProperty: a sequence of Adds must equal the sequential float
// sum regardless of magnitudes (the CAS loop preserves ordinary float64
// addition semantics on a single goroutine).
func TestGaugeAddProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		var g Gauge
		var want float64
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			g.Add(v)
			want += v
		}
		return g.Value() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
