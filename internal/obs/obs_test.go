package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "other help"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	v := r.CounterVec("v_total", "help", "reason")
	v.With("a").Inc()
	v.With("b").Add(2)
	v.With("a").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 2 || v.Total() != 4 {
		t.Fatalf("vec a=%d b=%d total=%d", v.With("a").Value(), v.With("b").Value(), v.Total())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

// TestGaugeVec covers the labeled-gauge family: per-value isolation,
// idempotent With, eager series creation at zero, snapshot ordering and the
// text exposition (float samples, unlike CounterVec's integers).
func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("replica_up", "by replica", "replica")
	if gv.With("a") != gv.With("a") {
		t.Fatal("With not idempotent")
	}
	gv.With("b") // eager creation: must appear in the snapshot at zero
	gv.With("a").Set(1)
	gv.With("c").Set(0.5)

	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Kind != KindGauge || snaps[0].Label != "replica" {
		t.Fatalf("snapshot %+v", snaps)
	}
	lg := snaps[0].LabeledGauges
	if len(lg) != 3 || lg[0].Value != "a" || lg[1].Value != "b" || lg[2].Value != "c" {
		t.Fatalf("labeled gauges %+v", lg)
	}
	if lg[0].Gauge != 1 || lg[1].Gauge != 0 || lg[2].Gauge != 0.5 {
		t.Fatalf("labeled gauge values %+v", lg)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`replica_up{replica="a"} 1`,
		`replica_up{replica="b"} 0`,
		`replica_up{replica="c"} 0.5`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper bounds are inclusive (Prometheus le semantics): 0.1 lands in the
	// first bucket; 100 lands in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 || s.Sum != 0.05+0.1+0.5+2+100 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if got := h.Snapshot(); got.Counts[0] != 3 {
		t.Fatalf("ObserveDuration(50ms) missed the 0.1 bucket: %+v", got)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil)
	if len(h.bounds) != len(LatencyBuckets) {
		t.Fatalf("nil bounds did not default to LatencyBuckets: %v", h.bounds)
	}
}

func TestTrainTelemetry(t *testing.T) {
	r := NewRegistry()
	tel := NewTrainTelemetry(r)
	tel.RecordEpoch(0.7, 0.8, 2*time.Second, 5, 40, 1, 0)
	tel.RecordEpoch(0.6, nan(), time.Second, 5, 40, 0, 2)
	if tel.Epochs.Value() != 2 || tel.Steps.Value() != 10 || tel.Instances.Value() != 80 {
		t.Fatalf("epochs=%d steps=%d instances=%d", tel.Epochs.Value(), tel.Steps.Value(), tel.Instances.Value())
	}
	if tel.SkippedInstances.Value() != 1 || tel.DroppedSteps.Value() != 2 {
		t.Fatalf("skipped=%d dropped=%d", tel.SkippedInstances.Value(), tel.DroppedSteps.Value())
	}
	if tel.Loss.Value() != 0.6 {
		t.Fatalf("loss gauge = %v", tel.Loss.Value())
	}
	// A NaN validation loss must not clobber the last real value.
	if tel.ValidLoss.Value() != 0.8 {
		t.Fatalf("valid loss gauge = %v", tel.ValidLoss.Value())
	}
	if s := tel.EpochSeconds.Snapshot(); s.Count != 2 {
		t.Fatalf("epoch histogram count = %d", s.Count)
	}
}

func nan() float64 { var z float64; return z / z }

// TestConcurrentExactTotals hammers every metric type from many goroutines
// and checks the totals exactly — the lock-free paths must not lose updates.
// CI runs this package under -race.
func TestConcurrentExactTotals(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	r := NewRegistry()
	c := r.Counter("c_total", "")
	v := r.CounterVec("v_total", "", "kind")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5, 1.5})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A concurrent scraper: rendering while writers run must be safe and
	// every observed counter value monotone.
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			if now := c.Value(); now < last {
				t.Errorf("counter went backwards: %d -> %d", last, now)
				return
			} else {
				last = now
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := "even"
			if id%2 == 1 {
				lbl = "odd"
			}
			for j := 0; j < perG; j++ {
				c.Inc()
				v.With(lbl).Inc()
				g.Add(1)
				h.Observe(1) // integral values keep the float sum exact
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	total := int64(goroutines * perG)
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if v.Total() != total || v.With("even").Value() != total/2 || v.With("odd").Value() != total/2 {
		t.Fatalf("vec total=%d even=%d odd=%d", v.Total(), v.With("even").Value(), v.With("odd").Value())
	}
	if g.Value() != float64(total) {
		t.Fatalf("gauge = %v, want %d", g.Value(), total)
	}
	s := h.Snapshot()
	if s.Count != total || s.Sum != float64(total) {
		t.Fatalf("histogram count=%d sum=%v, want %d", s.Count, s.Sum, total)
	}
	var bucketSum int64
	for _, n := range s.Counts {
		bucketSum += n
	}
	if bucketSum != total {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, total)
	}
}

// TestHistogramVec covers the labeled-histogram family: per-value isolation,
// idempotent With, eager series creation, snapshot ordering and exact totals
// under concurrent observation from many goroutines.
func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("hv_seconds", "by version", "version", []float64{1, 2})
	if hv.With("a") != hv.With("a") {
		t.Fatal("With not idempotent")
	}
	hv.With("b") // eager creation: must appear in the snapshot at zero

	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				hv.With("a").Observe(1)
			}
		}()
	}
	wg.Wait()

	if s := hv.With("a").Snapshot(); s.Count != goroutines*perG || s.Sum != float64(goroutines*perG) {
		t.Fatalf("labeled histogram count=%d sum=%v", s.Count, s.Sum)
	}
	if s := hv.With("b").Snapshot(); s.Count != 0 {
		t.Fatalf("untouched label observed %d", s.Count)
	}

	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Kind != KindHistogram || snaps[0].Label != "version" {
		t.Fatalf("snapshot %+v", snaps)
	}
	lh := snaps[0].LabeledHists
	if len(lh) != 2 || lh[0].Value != "a" || lh[1].Value != "b" {
		t.Fatalf("labeled hists %+v", lh)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hv_seconds_bucket{version="a",le="1"} 40000`,
		`hv_seconds_count{version="a"} 40000`,
		`hv_seconds_count{version="b"} 0`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}
