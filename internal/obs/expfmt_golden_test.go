package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// goldenRegistry builds a registry with one metric of every kind and fully
// deterministic values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("rapid_requests_total", "Re-rank requests received.")
	c.Add(42)
	v := r.CounterVec("rapid_degraded_total", "Degraded responses by reason.", "reason")
	v.With("deadline").Add(3)
	v.With("error").Add(1)
	v.With("panic").Inc()
	g := r.Gauge("rapid_inflight_scoring", "Scoring passes currently executing.")
	g.Set(2)
	h := r.Histogram("rapid_scoring_latency_seconds", "Model scoring latency.", []float64{0.005, 0.05, 0.5})
	for _, obs := range []float64{0.001, 0.004, 0.03, 0.2, 4} {
		h.Observe(obs)
	}
	hv := r.HistogramVec("rapid_model_request_latency_seconds", "Request latency by model version.", "version", []float64{0.01, 0.1})
	for _, obs := range []float64{0.002, 0.05, 0.3} {
		hv.With("v1").Observe(obs)
	}
	hv.With("v2") // registered but never observed: must render at zero
	return r
}

// TestExpositionGolden pins the /metrics exposition byte-for-byte: metric
// names, sort order, HELP/TYPE lines, label rendering, cumulative buckets.
// A rename or format drift fails loudly here; refresh intentionally with
//
//	go test ./internal/obs -run Golden -update
func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestMetricsHandler(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}
