package obs

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/. It is deliberately opt-in (a flag on the serving binaries):
// profiling endpoints expose heap contents and must never ship enabled on an
// internet-facing listener by accident.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux bundles a registry's /metrics endpoint with the pprof handlers —
// the debug listener a training run exposes with rapidtrain -debug-addr.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", r.Handler())
	RegisterPprof(mux)
	return mux
}
