// Package obs is the repository's zero-dependency observability layer: an
// atomic metrics registry (counters, labeled counters, gauges, fixed-bucket
// histograms) with a Prometheus-text-format exposition handler and opt-in
// net/http/pprof wiring.
//
// The serving layer (internal/serve) and the training CLIs instrument their
// hot paths against this package; a production re-ranking stage that cannot
// report its degrade rate, shed rate and tail latency is not operable, and
// pulling in a client library would break the repo's stdlib-only contract.
// Every metric operation is a single atomic op (plus one CAS loop for float
// accumulation), so instrumenting a path costs nanoseconds and never locks.
//
// Concurrency model: metric updates are lock-free and safe from any
// goroutine. A Snapshot (and therefore a /metrics scrape) reads each atomic
// individually — counters are monotone and exact, but a histogram's sum,
// count and buckets are read as separate atomics, so a scrape racing an
// Observe may see a histogram whose parts differ by the in-flight
// observation. That is the standard scrape-consistency contract; totals
// reconcile on the next scrape.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types in a Snapshot.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// LatencyBuckets are the default histogram bounds for request latencies, in
// seconds. They bracket the paper's 50 ms industrial budget (Section V-B)
// with decade resolution on both sides.
var LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a counter partitioned by the values of one label (e.g.
// degraded_total{reason="deadline"}). Label values are created on first use
// and live for the registry's lifetime, so the cardinality must be small and
// bounded — reasons and statuses, never user ids.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	by    map[string]*Counter
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.by[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.by[value]; c == nil {
		c = &Counter{}
		v.by[value] = c
	}
	return c
}

// Total sums the counter across all label values.
func (v *CounterVec) Total() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var t int64
	for _, c := range v.by {
		t += c.Value()
	}
	return t
}

// HistogramVec is a histogram partitioned by the values of one label (e.g.
// request latency keyed by model version). Like CounterVec, label values are
// created on first use and live for the registry's lifetime, so the
// cardinality must stay small and bounded — model versions and stages, never
// user ids.
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.RWMutex
	by     map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first use.
// Creating a value eagerly (before any Observe) is deliberate: it makes the
// series visible on /metrics at zero, so dashboards see a new model version
// the moment it is registered rather than at its first request.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.by[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.by[value]; h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), v.bounds...),
			counts: make([]atomic.Int64, len(v.bounds)+1),
		}
		v.by[value] = h
	}
	return h
}

// GaugeVec is a gauge partitioned by the values of one label (e.g. replica
// health keyed by replica id). Like CounterVec, label values are created on
// first use and live for the registry's lifetime, so the cardinality must
// stay small and bounded — replica ids and states, never user ids.
type GaugeVec struct {
	label string
	mu    sync.RWMutex
	by    map[string]*Gauge
}

// With returns the gauge for one label value, creating it on first use.
// Creating a value eagerly (before any Set) is deliberate: it makes the
// series visible on /metrics at zero, so dashboards see a new replica the
// moment the router learns of it rather than at its first state change.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g := v.by[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.by[value]; g == nil {
		g = &Gauge{}
		v.by[value] = g
	}
	return g
}

// Gauge is an instantaneous float64 value (in-flight requests, last epoch
// loss). Add uses a CAS loop so concurrent deltas never lose updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size histogram: counts per upper
// bound (plus an implicit +Inf bucket), a total count and a value sum. The
// bucket layout is fixed at registration, so Observe is a linear scan over a
// handful of bounds plus three atomic ops — no locks, no allocation.
type Histogram struct {
	bounds []float64 // sorted ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a consistent-enough copy of a histogram's state (see
// the package comment for the scrape-consistency contract).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// entry for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// LabeledValue is one label value of a CounterVec in a snapshot.
type LabeledValue struct {
	Value string `json:"value"`
	Count int64  `json:"count"`
}

// LabeledGauge is one label value of a GaugeVec in a snapshot.
type LabeledGauge struct {
	Value string  `json:"value"`
	Gauge float64 `json:"gauge"`
}

// LabeledHist is one label value of a HistogramVec in a snapshot.
type LabeledHist struct {
	Value string            `json:"value"`
	Hist  HistogramSnapshot `json:"histogram"`
}

// MetricSnapshot is one metric's state in Registry.Snapshot — the common
// currency of the /metrics renderer, the golden tests and the benchmark
// harness's JSON output.
type MetricSnapshot struct {
	Name          string             `json:"name"`
	Help          string             `json:"help"`
	Kind          Kind               `json:"kind"`
	Value         float64            `json:"value,omitempty"`          // counter, gauge
	Label         string             `json:"label,omitempty"`          // labeled counter, gauge or histogram
	Labeled       []LabeledValue     `json:"labeled,omitempty"`        // sorted by label value
	LabeledGauges []LabeledGauge     `json:"labeled_gauges,omitempty"` // sorted by label value
	Hist          *HistogramSnapshot `json:"histogram,omitempty"`
	LabeledHists  []LabeledHist      `json:"labeled_histograms,omitempty"` // sorted by label value
}

// metric is one registered metric with its metadata.
type metric struct {
	name string
	help string
	impl any // *Counter | *CounterVec | *Gauge | *GaugeVec | *Histogram | *HistogramVec
}

// Registry owns a flat namespace of metrics. Registration is idempotent:
// re-registering a name returns the existing metric (and panics if the kind
// disagrees — that is a programming error, not an operational condition).
// The zero Registry is not usable; call NewRegistry.
type Registry struct {
	mu sync.Mutex
	by map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: map[string]*metric{}}
}

// register returns the existing metric under name or claims the name with
// make's result, panicking when the existing metric has a different type.
func register[T any](r *Registry, name, help string, make func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.by[name]; ok {
		impl, ok := m.impl.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as %T, was %T", name, *new(T), m.impl))
		}
		return impl
	}
	impl := make()
	r.by[name] = &metric{name: name, help: help, impl: impl}
	return impl
}

// Counter registers (or fetches) a monotone counter.
func (r *Registry) Counter(name, help string) *Counter {
	return register(r, name, help, func() *Counter { return &Counter{} })
}

// CounterVec registers (or fetches) a counter partitioned by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return register(r, name, help, func() *CounterVec {
		return &CounterVec{label: label, by: map[string]*Counter{}}
	})
}

// Gauge registers (or fetches) a float gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return register(r, name, help, func() *Gauge { return &Gauge{} })
}

// GaugeVec registers (or fetches) a gauge partitioned by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return register(r, name, help, func() *GaugeVec {
		return &GaugeVec{label: label, by: map[string]*Gauge{}}
	})
}

// Histogram registers (or fetches) a fixed-bucket histogram. bounds must be
// sorted ascending; nil means LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return register(r, name, help, func() *Histogram {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not sorted: %v", name, bounds))
			}
		}
		return &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	})
}

// HistogramVec registers (or fetches) a fixed-bucket histogram partitioned
// by one label. bounds must be sorted ascending; nil means LatencyBuckets.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return register(r, name, help, func() *HistogramVec {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not sorted: %v", name, bounds))
			}
		}
		return &HistogramVec{
			label:  label,
			bounds: append([]float64(nil), bounds...),
			by:     map[string]*Histogram{},
		}
	})
}

// Snapshot captures every registered metric, sorted by name so the output
// order is stable regardless of registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.by))
	for _, m := range r.by {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Help: m.help}
		switch impl := m.impl.(type) {
		case *Counter:
			s.Kind = KindCounter
			s.Value = float64(impl.Value())
		case *Gauge:
			s.Kind = KindGauge
			s.Value = impl.Value()
		case *CounterVec:
			s.Kind = KindCounter
			s.Label = impl.label
			impl.mu.RLock()
			for v, c := range impl.by {
				s.Labeled = append(s.Labeled, LabeledValue{Value: v, Count: c.Value()})
			}
			impl.mu.RUnlock()
			sort.Slice(s.Labeled, func(i, j int) bool { return s.Labeled[i].Value < s.Labeled[j].Value })
		case *GaugeVec:
			s.Kind = KindGauge
			s.Label = impl.label
			impl.mu.RLock()
			for v, g := range impl.by {
				s.LabeledGauges = append(s.LabeledGauges, LabeledGauge{Value: v, Gauge: g.Value()})
			}
			impl.mu.RUnlock()
			sort.Slice(s.LabeledGauges, func(i, j int) bool { return s.LabeledGauges[i].Value < s.LabeledGauges[j].Value })
		case *Histogram:
			s.Kind = KindHistogram
			h := impl.Snapshot()
			s.Hist = &h
		case *HistogramVec:
			s.Kind = KindHistogram
			s.Label = impl.label
			impl.mu.RLock()
			for v, h := range impl.by {
				s.LabeledHists = append(s.LabeledHists, LabeledHist{Value: v, Hist: h.Snapshot()})
			}
			impl.mu.RUnlock()
			sort.Slice(s.LabeledHists, func(i, j int) bool { return s.LabeledHists[i].Value < s.LabeledHists[j].Value })
		}
		out = append(out, s)
	}
	return out
}
