package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per metric,
// metrics sorted by name, labeled counters sorted by label value, histograms
// as cumulative _bucket{le="..."} series plus _sum and _count. The output is
// fully deterministic for a given registry state — the golden test pins it.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if err := writeMetricText(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writeMetricText(w io.Writer, m MetricSnapshot) error {
	if m.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
		return err
	}
	switch {
	case m.Hist != nil:
		var cum int64
		for i, c := range m.Hist.Counts {
			cum += c
			le := "+Inf"
			if i < len(m.Hist.Bounds) {
				le = formatFloat(m.Hist.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatFloat(m.Hist.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", m.Name, m.Hist.Count)
		return err
	case m.Kind == KindHistogram && m.Label != "":
		for _, lh := range m.LabeledHists {
			var cum int64
			for i, c := range lh.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(lh.Hist.Bounds) {
					le = formatFloat(lh.Hist.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", m.Name, m.Label, lh.Value, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", m.Name, m.Label, lh.Value, formatFloat(lh.Hist.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count{%s=%q} %d\n", m.Name, m.Label, lh.Value, lh.Hist.Count); err != nil {
				return err
			}
		}
		return nil
	case m.Kind == KindGauge && m.Label != "":
		for _, lg := range m.LabeledGauges {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", m.Name, m.Label, lg.Value, formatFloat(lg.Gauge)); err != nil {
				return err
			}
		}
		return nil
	case m.Label != "":
		for _, lv := range m.Labeled {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", m.Name, m.Label, lv.Value, lv.Count); err != nil {
				return err
			}
		}
		return nil
	default:
		_, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value))
		return err
	}
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// exact decimal, with the special spellings for infinities and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp keeps HELP lines single-line per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in the text exposition format — mount it on
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
