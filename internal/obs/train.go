package obs

import (
	"math"
	"time"
)

// EpochSecondsBuckets are the default histogram bounds for epoch wall-clock
// time; epochs range from sub-second (tests, tiny scales) to minutes.
var EpochSecondsBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300}

// TrainTelemetry is the training-side metric set: per-epoch loss and
// validation loss gauges, epoch-duration histogram, and monotone counters
// for optimizer steps and the numerical-guard events
// (rerank.TrainStats.SkippedInstances / DroppedSteps). It is deliberately
// typed on plain values so obs stays free of model-layer imports; the
// binaries adapt it to rerank's epoch-observer hook.
type TrainTelemetry struct {
	Epochs           *Counter
	Steps            *Counter
	Instances        *Counter
	SkippedInstances *Counter
	DroppedSteps     *Counter
	Loss             *Gauge
	ValidLoss        *Gauge
	EpochSeconds     *Histogram
}

// NewTrainTelemetry registers the training metric set on r.
func NewTrainTelemetry(r *Registry) *TrainTelemetry {
	return &TrainTelemetry{
		Epochs:           r.Counter("rapid_train_epochs_total", "Completed training epochs."),
		Steps:            r.Counter("rapid_train_steps_total", "Optimizer steps applied (dropped steps excluded)."),
		Instances:        r.Counter("rapid_train_instances_total", "Training instances whose loss entered the epoch mean."),
		SkippedInstances: r.Counter("rapid_train_skipped_instances_total", "Instances skipped by the NaN/Inf loss guard."),
		DroppedSteps:     r.Counter("rapid_train_dropped_steps_total", "Optimizer steps dropped by the non-finite gradient guard."),
		Loss:             r.Gauge("rapid_train_loss", "Mean training loss of the last completed epoch."),
		ValidLoss:        r.Gauge("rapid_train_valid_loss", "Validation loss of the last completed epoch (NaN without a validation split)."),
		EpochSeconds:     r.Histogram("rapid_train_epoch_seconds", "Wall-clock time per training epoch.", EpochSecondsBuckets),
	}
}

// RecordEpoch folds one epoch's statistics into the metric set. validLoss
// may be NaN when the run has no validation split; the gauge then keeps its
// previous value.
func (t *TrainTelemetry) RecordEpoch(loss, validLoss float64, dur time.Duration, steps, instances, skipped, dropped int) {
	t.Epochs.Inc()
	t.Steps.Add(int64(steps))
	t.Instances.Add(int64(instances))
	t.SkippedInstances.Add(int64(skipped))
	t.DroppedSteps.Add(int64(dropped))
	t.Loss.Set(loss)
	if !math.IsNaN(validLoss) {
		t.ValidLoss.Set(validLoss)
	}
	t.EpochSeconds.ObserveDuration(dur)
}
