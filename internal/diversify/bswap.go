package diversify

import "math"

// BSwap is the bounded greedy-exchange diversifier (the BSwap strategy of
// the DivSuite taxonomy): start from the K most relevant items, then
// hill-climb single swaps — evict the selected item contributing least
// pairwise distance, admit the outsider that most improves the blended set
// objective F(S) = (1−λ)·mean-relevance(S) + λ·mean-pairwise-distance(S) —
// until no swap strictly improves F. Strict improvement makes λ=0 a no-op
// (the relevance top-K is already mean-relevance optimal), so the degenerate
// contract holds by construction.
type BSwap struct {
	// K is the exchange-set size — the list head being diversified (default
	// 10, the cross-evaluation cutoff). Capped at the list length.
	K int
	// MaxSweeps bounds the hill-climb (default 2·K swaps); greedy exchange
	// converges long before this on real lists, the cap is a hostile-input
	// guarantee.
	MaxSweeps int
}

// NewBSwap returns a BSwap diversifier with the serving defaults.
func NewBSwap() *BSwap { return &BSwap{K: 10} }

// Name implements Diversifier.
func (*BSwap) Name() string { return "bswap" }

// Rerank implements Diversifier.
func (b *BSwap) Rerank(l List, lambda float64) []int {
	n := l.Len()
	lambda = clampLambda(lambda)
	rel := sanitizedRel(l)
	byRel := relevanceOrder(rel)
	k := b.K
	if k <= 0 {
		k = 10
	}
	if k > n {
		k = n
	}
	if n == 0 || k < 2 || lambda == 0 {
		return byRel
	}
	maxSweeps := b.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 2 * k
	}

	dist := pairwiseDistances(l, n)
	inSet := make([]bool, n)
	set := make([]int, k)
	copy(set, byRel[:k])
	for _, i := range set {
		inSet[i] = true
	}
	// Incremental objective state: Σ rel over S and Σ pairwise distance
	// within S; each candidate swap is evaluated in O(K) from per-member
	// distance sums.
	var relSum, distSum float64
	for a := 0; a < k; a++ {
		relSum += rel[set[a]]
		for c := a + 1; c < k; c++ {
			distSum += dist[set[a]][set[c]]
		}
	}
	pairs := float64(k*(k-1)) / 2
	objective := func(rs, ds float64) float64 {
		return (1-lambda)*(rs/float64(k)) + lambda*(ds/pairs)
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Victim: the member contributing least distance to the rest of S.
		victim, victimDist := -1, math.Inf(1)
		for a, i := range set {
			var d float64
			for c, j := range set {
				if c != a {
					d += dist[i][j]
				}
			}
			if d < victimDist {
				victim, victimDist = a, d
			}
		}
		// Best replacement: the outsider maximizing the post-swap objective.
		out := set[victim]
		bestF := objective(relSum, distSum)
		bestIn, bestInDist := -1, 0.0
		for i := 0; i < n; i++ {
			if inSet[i] {
				continue
			}
			var d float64
			for a, j := range set {
				if a != victim {
					d += dist[i][j]
				}
			}
			f := objective(relSum-rel[out]+rel[i], distSum-victimDist+d)
			if f > bestF+1e-12 {
				bestF, bestIn, bestInDist = f, i, d
			}
		}
		if bestIn < 0 {
			break // local optimum: no strict improvement left
		}
		relSum += rel[bestIn] - rel[out]
		distSum += bestInDist - victimDist
		inSet[out], inSet[bestIn] = false, true
		set[victim] = bestIn
	}

	// Selected head by relevance, then the rest by relevance: within each
	// block the initial ordering semantics are preserved.
	order := make([]int, 0, n)
	for _, i := range byRel {
		if inSet[i] {
			order = append(order, i)
		}
	}
	for _, i := range byRel {
		if !inSet[i] {
			order = append(order, i)
		}
	}
	return order
}

// pairwiseDistances precomputes the item distance matrix the exchange
// objective uses: cosine distance over topic coverage blended (50/50) with
// cosine distance over features when the list carries them. Entries land in
// [0, 2] and non-finite inputs read as maximally similar (distance 0), so a
// hostile list can never fake diversity.
func pairwiseDistances(l List, n int) [][]float64 {
	m := l.Topics()
	cover := sanitizedCover(l, m)
	hasFeats := len(l.Feats) > 0
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 1 - cosineSim(cover[i], cover[j])
			if hasFeats {
				d = 0.5*d + 0.5*(1-cosineSim(l.feat(i), l.feat(j)))
			}
			if math.IsNaN(d) || d < 0 {
				d = 0
			}
			dist[i][j], dist[j][i] = d, d
		}
	}
	return dist
}
