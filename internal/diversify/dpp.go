package diversify

import (
	"math"

	"repro/internal/mat"
)

// DPP re-ranks with a determinantal point process (Wilhelm et al., CIKM'18)
// solved by Chen et al.'s fast greedy MAP inference — the lifted core of the
// internal/baselines DPP reference, which now delegates its selection loop
// here. The kernel is L_ij = q_i·S_ij·q_j with quality q_i = exp(w·rel_i)
// and similarity S blended from coverage-cosine and feature-cosine.
//
// λ steers the quality sharpness w = QualityWeight·(1−λ)/λ: λ=0.5 reproduces
// the legacy baseline kernel exactly (w = QualityWeight), λ→1 flattens
// quality into pure-similarity volume maximization, and λ=0 short-circuits
// to the relevance order (the uniform degenerate contract of this package).
type DPP struct {
	// QualityWeight scales how sharply relevance enters the kernel at the
	// λ=0.5 midpoint.
	QualityWeight float64
	// FeatureMix blends feature-cosine into the coverage-cosine similarity.
	FeatureMix float64
	// K caps how many items the DPP objective selects; the remainder is
	// appended by relevance. 0 selects through the whole list.
	K int
}

// maxQualitySharpness caps w as λ→0: exp(30)² ≈ 1e26 keeps the kernel and
// its Cholesky update finite, and the λ=0 case never reaches the kernel
// at all.
const maxQualitySharpness = 30

// NewDPP returns a DPP diversifier with the baseline-matching defaults.
func NewDPP() *DPP { return &DPP{QualityWeight: 1.0, FeatureMix: 0.3} }

// Name implements Diversifier.
func (*DPP) Name() string { return "dpp" }

// Rerank implements Diversifier.
func (d *DPP) Rerank(l List, lambda float64) []int {
	n := l.Len()
	lambda = clampLambda(lambda)
	rel := sanitizedRel(l)
	if lambda == 0 || n == 0 {
		return relevanceOrder(rel)
	}
	w := d.QualityWeight * (1 - lambda) / lambda
	if w > maxQualitySharpness {
		w = maxQualitySharpness
	}
	m := l.Topics()
	cover := sanitizedCover(l, m)
	q := make([]float64, n)
	for i := range q {
		q[i] = math.Exp(w * rel[i])
	}
	kernel := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			sim := (1-d.FeatureMix)*cosineSim(cover[i], cover[j]) + d.FeatureMix*cosineSim(l.feat(i), l.feat(j))
			// Clamp into [0,1] so the kernel stays PSD-friendly; the jittered
			// diagonal keeps the greedy Cholesky update numerically stable.
			sim = mat.Clamp(sim, 0, 1)
			v := q[i] * sim * q[j]
			if i == j {
				v = q[i]*q[i] + 1e-6
			}
			kernel.Set(i, j, v)
			kernel.Set(j, i, v)
		}
	}
	k := d.K
	if k <= 0 || k > n {
		k = n
	}
	order := GreedyMAP(kernel, k)
	return appendRemainder(order, rel, n)
}

// feat returns item i's feature vector, or nil when the list carries none.
func (l List) feat(i int) []float64 {
	if i < len(l.Feats) {
		return l.Feats[i]
	}
	return nil
}

// appendRemainder extends a partial selection to a full permutation, ranking
// the unselected tail by relevance descending (earlier index on ties).
func appendRemainder(order []int, rel []float64, n int) []int {
	if len(order) >= n {
		return order
	}
	selected := make([]bool, n)
	for _, i := range order {
		selected[i] = true
	}
	rest := make([]int, 0, n-len(order))
	for _, i := range relevanceOrder(rel) {
		if !selected[i] {
			rest = append(rest, i)
		}
	}
	return append(order, rest...)
}

// GreedyMAP returns the greedy MAP selection order over the kernel,
// selecting up to k items. It implements Chen et al.'s incremental update:
// after selecting j, every remaining candidate i updates
// e_i = (L_ji − ⟨c_j, c_i⟩)/d_j, appends e_i to its Cholesky row c_i, and
// decreases its marginal gain d_i² by e_i². Lifted verbatim from the
// baselines package (which delegates here).
func GreedyMAP(kernel *mat.Matrix, k int) []int {
	n := kernel.Rows
	if k > n {
		k = n
	}
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = kernel.At(i, i)
	}
	cvecs := make([][]float64, n)
	selected := make([]bool, n)
	order := make([]int, 0, k)
	for len(order) < k {
		best, bestGain := -1, 0.0
		for i := 0; i < n; i++ {
			if !selected[i] && (best < 0 || d2[i] > bestGain) {
				best, bestGain = i, d2[i]
			}
		}
		if best < 0 || d2[best] <= 1e-12 {
			// Remaining items add no volume; fall back to index order so
			// the returned order is still a full ranking.
			for i := 0; i < n && len(order) < k; i++ {
				if !selected[i] {
					selected[i] = true
					order = append(order, i)
				}
			}
			break
		}
		j := best
		selected[j] = true
		order = append(order, j)
		dj := math.Sqrt(d2[j])
		cj := cvecs[j]
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			var dot float64
			ci := cvecs[i]
			for t := 0; t < len(cj) && t < len(ci); t++ {
				dot += cj[t] * ci[t]
			}
			e := (kernel.At(j, i) - dot) / dj
			cvecs[i] = append(cvecs[i], e)
			d2[i] -= e * e
			if d2[i] < 0 {
				d2[i] = 0
			}
		}
	}
	return order
}

// LogDet returns log det of the kernel submatrix indexed by sel, computed
// by Cholesky. It exists for tests verifying the greedy objective.
func LogDet(kernel *mat.Matrix, sel []int) float64 {
	n := len(sel)
	sub := mat.New(n, n)
	for a, i := range sel {
		for b, j := range sel {
			sub.Set(a, b, kernel.At(i, j))
		}
	}
	// In-place Cholesky.
	var logdet float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := sub.At(i, j)
			for t := 0; t < j; t++ {
				s -= sub.At(i, t) * sub.At(j, t)
			}
			if i == j {
				if s <= 0 {
					return math.Inf(-1)
				}
				sub.Set(i, i, math.Sqrt(s))
				logdet += 2 * math.Log(sub.At(i, i))
			} else {
				sub.Set(i, j, s/sub.At(j, j))
			}
		}
	}
	return logdet
}

// cosineSim is the cosine similarity with zero-vector and non-finite guards.
// Equal-length finite vectors reproduce the legacy baselines arithmetic
// bitwise (same accumulation order); ragged hostile input compares over the
// common prefix instead of panicking.
func cosineSim(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, sa, sb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
	}
	for _, v := range a {
		sa += v * v
	}
	for _, v := range b {
		sb += v * v
	}
	na, nb := math.Sqrt(sa), math.Sqrt(sb)
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / (na * nb)
	if math.IsNaN(c) {
		return 0
	}
	return c
}
