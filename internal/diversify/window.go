package diversify

import "math"

// SlidingWindow is the Huawei live-recommender heuristic ("Personalized
// Re-ranking for Improving Diversity in Live Recommender Systems"): a greedy
// pass where the diversity term only looks at the last W already-placed
// items instead of the whole prefix. The insight is positional — users
// consume a feed through a viewport of a few items, so only local repetition
// hurts, and forgetting items older than the window frees late positions to
// re-use good topics instead of being forced ever further afield.
//
// Each position picks the unselected item maximizing
// (1−λ)·rel + λ·windowed coverage gain, where the gain is the topic-coverage
// increase relative to the window's items only. The window product is
// recomputed per position (O(W·m)), keeping the whole pass O(n²·m) worst
// case with a small constant — this is why it is the cheap-serving default
// among the suite (see DESIGN.md).
type SlidingWindow struct {
	// W is the window size (default 5 — a feed viewport).
	W int
}

// NewSlidingWindow returns the heuristic with the serving default window.
func NewSlidingWindow() *SlidingWindow { return &SlidingWindow{W: 5} }

// Name implements Diversifier.
func (*SlidingWindow) Name() string { return "window" }

// Rerank implements Diversifier.
func (s *SlidingWindow) Rerank(l List, lambda float64) []int {
	n := l.Len()
	lambda = clampLambda(lambda)
	rel := sanitizedRel(l)
	w := s.W
	if w <= 0 {
		w = 5
	}
	m := l.Topics()
	cover := sanitizedCover(l, m)
	selected := make([]bool, n)
	order := make([]int, 0, n)
	remain := make([]float64, m)
	for len(order) < n {
		// remain_j = Π_{v ∈ last-W selected} (1 − τ_v^j): coverage survival
		// within the window. Unlike the full-prefix greedy (MMR), items that
		// scrolled out of the window stop suppressing their topics.
		for j := range remain {
			remain[j] = 1
		}
		lo := len(order) - w
		if lo < 0 {
			lo = 0
		}
		for _, v := range order[lo:] {
			for j, t := range cover[v] {
				remain[j] *= 1 - t
			}
		}
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			var gain float64
			for j, t := range cover[i] {
				gain += remain[j] * t
			}
			score := (1-lambda)*rel[i] + lambda*gain
			if best < 0 || score > bestScore {
				best, bestScore = i, score
			}
		}
		selected[best] = true
		order = append(order, best)
	}
	return order
}
