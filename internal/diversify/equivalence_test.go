package diversify_test

// Equivalence harness for the baselines→diversify lift: the MMR and DPP
// selection loops below are frozen, verbatim copies of the pre-lift
// internal/baselines implementations. The tests drive both the refactored
// baselines re-rankers and the diversify-package cores over randomized
// instances and demand item-for-item identical output, so the lift can never
// silently change a published baseline number.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/diversify"
	"repro/internal/mat"
	"repro/internal/rerank"
	"repro/internal/topics"
)

// --- frozen legacy copies (internal/baselines @ pre-lift HEAD) ---

func legacyGreedyScores(order []int, l int) []float64 {
	scores := make([]float64, l)
	for rank, idx := range order {
		scores[idx] = float64(l - rank)
	}
	return scores
}

func legacyNormalizeRelevance(init []float64) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range init {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	out := make([]float64, len(init))
	if hi-lo < 1e-12 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, s := range init {
		out[i] = (s - lo) / (hi - lo)
	}
	return out
}

func legacyMMRScores(inst *rerank.Instance, theta float64, topicWeights []float64) []float64 {
	l := inst.L()
	rel := legacyNormalizeRelevance(inst.InitScores)
	ic := topics.NewIncrementalCoverage(inst.M)
	selected := make([]bool, l)
	order := make([]int, 0, l)
	for len(order) < l {
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < l; i++ {
			if selected[i] {
				continue
			}
			var gain float64
			if topicWeights == nil {
				gain = ic.GainTotal(inst.Cover[i])
			} else {
				g := ic.Gain(inst.Cover[i])
				gain = mat.Dot(topicWeights, g) * float64(inst.M)
			}
			s := theta*rel[i] + (1-theta)*gain
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		selected[best] = true
		ic.Add(inst.Cover[best])
		order = append(order, best)
	}
	return legacyGreedyScores(order, l)
}

func legacyCosine(a, b []float64) float64 {
	na, nb := mat.NormVec(a), mat.NormVec(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return mat.Dot(a, b) / (na * nb)
}

func legacyDPPKernel(inst *rerank.Instance, qualityWeight, featureMix float64) *mat.Matrix {
	l := inst.L()
	rel := legacyNormalizeRelevance(inst.InitScores)
	q := make([]float64, l)
	for i := range q {
		q[i] = math.Exp(qualityWeight * rel[i])
	}
	k := mat.New(l, l)
	for i := 0; i < l; i++ {
		fi := inst.ItemFeat(inst.Items[i])
		for j := i; j < l; j++ {
			fj := inst.ItemFeat(inst.Items[j])
			sim := (1-featureMix)*legacyCosine(inst.Cover[i], inst.Cover[j]) + featureMix*legacyCosine(fi, fj)
			sim = mat.Clamp(sim, 0, 1)
			v := q[i] * sim * q[j]
			if i == j {
				v = q[i]*q[i] + 1e-6
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	return k
}

func legacyGreedyMAP(kernel *mat.Matrix, k int) []int {
	n := kernel.Rows
	if k > n {
		k = n
	}
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = kernel.At(i, i)
	}
	cvecs := make([][]float64, n)
	selected := make([]bool, n)
	order := make([]int, 0, k)
	for len(order) < k {
		best, bestGain := -1, 0.0
		for i := 0; i < n; i++ {
			if !selected[i] && (best < 0 || d2[i] > bestGain) {
				best, bestGain = i, d2[i]
			}
		}
		if best < 0 || d2[best] <= 1e-12 {
			for i := 0; i < n && len(order) < k; i++ {
				if !selected[i] {
					selected[i] = true
					order = append(order, i)
				}
			}
			break
		}
		j := best
		selected[j] = true
		order = append(order, j)
		dj := math.Sqrt(d2[j])
		cj := cvecs[j]
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			var dot float64
			ci := cvecs[i]
			for t := 0; t < len(cj) && t < len(ci); t++ {
				dot += cj[t] * ci[t]
			}
			e := (kernel.At(j, i) - dot) / dj
			cvecs[i] = append(cvecs[i], e)
			d2[i] -= e * e
			if d2[i] < 0 {
				d2[i] = 0
			}
		}
	}
	return order
}

// --- randomized instance builder ---

// randomInstance builds a well-formed re-rank instance: n items with ids
// 0..n-1 in random initial order, rectangular [0,1] m-topic coverage, dense
// feature vectors and a short history for adpMMR's preference entropy.
func randomInstance(rng *rand.Rand, n, m, f int) *rerank.Instance {
	feats := make([][]float64, n)
	covers := make([][]float64, n)
	for v := 0; v < n; v++ {
		feats[v] = make([]float64, f)
		for j := range feats[v] {
			feats[v][j] = rng.NormFloat64()
		}
		covers[v] = make([]float64, m)
		for j := range covers[v] {
			if rng.Intn(3) > 0 {
				covers[v][j] = rng.Float64()
			}
		}
	}
	items := rng.Perm(n)
	inst := &rerank.Instance{
		User:       rng.Intn(100),
		Items:      items,
		InitScores: make([]float64, n),
		Cover:      make([][]float64, n),
		M:          m,
		ItemFeat:   func(v int) []float64 { return feats[v] },
		CoverOf:    func(v int) []float64 { return covers[v] },
	}
	for i, v := range items {
		inst.InitScores[i] = rng.NormFloat64()
		inst.Cover[i] = covers[v]
	}
	for h := 0; h < 3+rng.Intn(10); h++ {
		inst.History = append(inst.History, rng.Intn(n))
	}
	return inst
}

const equivTrials = 60

// TestMMREquivalence: the refactored baselines.MMR (delegating to
// diversify.MMRSelect) matches the frozen legacy loop score-for-score.
func TestMMREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := baselines.NewMMR()
	for trial := 0; trial < equivTrials; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(24), 1+rng.Intn(6), 4)
		got := m.Scores(inst)
		want := legacyMMRScores(inst, m.Theta, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MMR scores diverged from legacy\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestAdpMMREquivalence: the per-user θ path (entropy-adaptive trade-off)
// also survives the lift unchanged.
func TestAdpMMREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := baselines.NewAdpMMR()
	for trial := 0; trial < equivTrials; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(24), 2+rng.Intn(5), 4)
		pref := inst.HistoryPreference()
		theta := 1 - m.MaxDiversityWeight*mat.Entropy(pref)/math.Log(float64(inst.M))
		got := m.Scores(inst)
		want := legacyMMRScores(inst, theta, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: adpMMR scores diverged from legacy\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestDPPEquivalence: the refactored baselines.DPP kernel + the lifted
// greedy MAP reproduce the frozen legacy selection exactly, and the
// diversify-native DPP at λ=0.5 (where the quality sharpness w equals the
// legacy QualityWeight) yields the identical permutation through the
// Diversifier interface.
func TestDPPEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := baselines.NewDPP()
	nd := diversify.NewDPP()
	for trial := 0; trial < equivTrials; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(24), 1+rng.Intn(6), 4)
		legacyKernel := legacyDPPKernel(inst, d.QualityWeight, d.FeatureMix)
		want := legacyGreedyScores(legacyGreedyMAP(legacyKernel, inst.L()), inst.L())
		if got := d.Scores(inst); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: baselines DPP diverged from legacy\n got %v\nwant %v", trial, got, want)
		}
		order := nd.Rerank(diversify.FromInstance(inst), 0.5)
		if got := diversify.GreedyScores(order, inst.L()); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: diversify DPP@λ=0.5 diverged from legacy\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestGreedyMAPEquivalence drives the exported MAP solvers over random PSD
// kernels directly, independent of instance plumbing.
func TestGreedyMAPEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < equivTrials; trial++ {
		n := 2 + rng.Intn(20)
		// Gram matrix of random vectors: PSD by construction.
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = make([]float64, 6)
			for j := range vecs[i] {
				vecs[i][j] = rng.NormFloat64()
			}
		}
		kernel := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := mat.Dot(vecs[i], vecs[j])
				if i == j {
					v += 1e-6
				}
				kernel.Set(i, j, v)
			}
		}
		k := 1 + rng.Intn(n)
		want := legacyGreedyMAP(kernel, k)
		if got := diversify.GreedyMAP(kernel, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: diversify.GreedyMAP diverged\n got %v\nwant %v", trial, got, want)
		}
		if got := baselines.GreedyMAP(kernel, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: baselines.GreedyMAP diverged\n got %v\nwant %v", trial, got, want)
		}
		if sel := want; len(sel) > 0 {
			lg, dg := baselines.LogDet(kernel, sel), diversify.LogDet(kernel, sel)
			if lg != dg && !(math.IsNaN(lg) && math.IsNaN(dg)) {
				t.Fatalf("trial %d: LogDet diverged: baselines %v, diversify %v", trial, lg, dg)
			}
		}
	}
}

// TestMMRSelectEquivalence drives the lifted selection loop directly with
// the exact legacy θ, bypassing the λ→θ mapping, so the shared core is
// pinned independently of the adapter arithmetic.
func TestMMRSelectEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < equivTrials; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(24), 1+rng.Intn(6), 4)
		theta := rng.Float64()
		rel := legacyNormalizeRelevance(inst.InitScores)
		order := diversify.MMRSelect(rel, inst.Cover, inst.M, theta, nil)
		got := diversify.GreedyScores(order, inst.L())
		want := legacyMMRScores(inst, theta, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (θ=%v): MMRSelect diverged from legacy\n got %v\nwant %v", trial, theta, got, want)
		}
	}
}
