// Package diversify is the classic diversified re-ranking family behind one
// interface: given a scored candidate list, re-rank it under an explicit
// relevance/diversity trade-off λ. The paper positions RAPID inside exactly
// this family (Section II); real deployments pick per-surface between a
// learned re-ranker and one of these heuristics, so every Diversifier here is
// also servable through the serving layer's Scorer seam (see Scorer in
// adapter.go) — registered, pinned, canaried and shadow-compared exactly like
// a RAPID model version.
//
// The λ convention is uniform across implementations: λ=0 degenerates to the
// initial relevance order, λ=1 ignores relevance entirely, and intermediate
// values trade list diversity (ILD@k, topic coverage) up against relevance —
// properties the package property-tests.
package diversify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rerank"
)

// List is one scored candidate list, the diversifier-side view of a re-rank
// request: per-item relevance (initial-ranker scores), topic coverage rows
// and feature vectors. Cover and Feats may be nil or ragged — missing entries
// read as zero vectors — so hostile wire-level inputs can be driven straight
// through (the fuzz harness does).
type List struct {
	Rel   []float64
	Cover [][]float64
	Feats [][]float64
}

// Len is the candidate count; Rel defines it, Cover/Feats rows beyond it are
// ignored.
func (l List) Len() int { return len(l.Rel) }

// Topics returns the topic dimensionality: the widest coverage row within
// the list (0 when no item carries coverage).
func (l List) Topics() int {
	m := 0
	for i := 0; i < l.Len() && i < len(l.Cover); i++ {
		if len(l.Cover[i]) > m {
			m = len(l.Cover[i])
		}
	}
	return m
}

// Diversifier re-ranks a scored candidate list under the trade-off λ∈[0,1]
// and returns a permutation of [0, l.Len()) in best-first order. Every
// implementation is deterministic, total on hostile input (empty lists,
// non-finite scores, ragged coverage) and degenerates to the relevance order
// at λ=0.
type Diversifier interface {
	Name() string
	Rerank(l List, lambda float64) []int
}

// New returns a fresh diversifier with its serving defaults by registry name:
// "mmr", "dpp", "bswap" or "window".
func New(name string) (Diversifier, error) {
	switch name {
	case "mmr":
		return &MMR{}, nil
	case "dpp":
		return NewDPP(), nil
	case "bswap":
		return NewBSwap(), nil
	case "window":
		return NewSlidingWindow(), nil
	}
	return nil, fmt.Errorf("diversify: unknown diversifier %q (have %v)", name, Names())
}

// Names lists the registered diversifier names, sorted.
func Names() []string { return []string{"bswap", "dpp", "mmr", "window"} }

// Known reports whether name is a registered diversifier — the manifest
// validation hook of the serving layer.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// FromInstance projects a re-rank instance onto the diversifier-side List:
// positional relevance, coverage and feature rows. Slices are referenced, not
// copied; diversifiers never mutate them.
func FromInstance(inst *rerank.Instance) List {
	n := inst.L()
	l := List{Rel: inst.InitScores, Cover: inst.Cover}
	if len(l.Rel) > n {
		l.Rel = l.Rel[:n]
	} else if len(l.Rel) < n {
		// A malformed instance (wire-level fuzz) may carry fewer scores than
		// items; pad with zeros so the permutation still spans every item.
		padded := make([]float64, n)
		copy(padded, l.Rel)
		l.Rel = padded
	}
	if inst.ItemFeat != nil {
		l.Feats = make([][]float64, n)
		for i := 0; i < n; i++ {
			l.Feats[i] = inst.ItemFeat(inst.Items[i])
		}
	}
	return l
}

// AsReranker bridges a Diversifier into the rerank.Reranker contract at a
// fixed λ, so the experiment harness evaluates it beside RAPID and the
// baselines. The name matches the registry's version labels ("div-mmr", …).
func AsReranker(d Diversifier, lambda float64) rerank.Reranker {
	return &divReranker{d: d, lambda: lambda}
}

type divReranker struct {
	d      Diversifier
	lambda float64
}

func (r *divReranker) Name() string { return "div-" + r.d.Name() }

func (r *divReranker) Scores(inst *rerank.Instance) []float64 {
	return GreedyScores(r.d.Rerank(FromInstance(inst), r.lambda), inst.L())
}

// GreedyScores converts a selection order (indices, best first) into a score
// vector aligned with the original positions, so greedy re-rankers satisfy
// the descending-score Reranker contract.
func GreedyScores(order []int, l int) []float64 {
	scores := make([]float64, l)
	for rank, idx := range order {
		scores[idx] = float64(l - rank)
	}
	return scores
}

// NormalizeRelevance min-max scales initial scores into [0,1] so relevance
// and diversity-gain terms are comparable inside one objective. All-equal
// input maps to 0.5; non-finite entries are ignored for the range and map to
// 0 (hostile input must not poison every other item's scale).
func NormalizeRelevance(init []float64) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range init {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	out := make([]float64, len(init))
	if !(hi-lo >= 1e-12) { // also catches the no-finite-entries case
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, s := range init {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		out[i] = (s - lo) / (hi - lo)
	}
	return out
}

// clampLambda pins the trade-off into [0,1]; NaN reads as 0 (pure relevance
// is the safe serving default for a nonsense manifest value).
func clampLambda(lambda float64) float64 {
	if !(lambda > 0) {
		return 0
	}
	if lambda > 1 {
		return 1
	}
	return lambda
}

// sanitizedRel is the per-implementation relevance preprocessing: min-max
// normalized and clamped finite, so every greedy objective below works on a
// [0,1] scale regardless of what the wire delivered.
func sanitizedRel(l List) []float64 {
	rel := NormalizeRelevance(l.Rel)
	for i, r := range rel {
		switch {
		case math.IsNaN(r) || r < 0:
			rel[i] = 0
		case r > 1:
			rel[i] = 1
		}
	}
	return rel
}

// sanitizedCover returns the list's coverage rows padded to rectangular m
// columns with every entry clamped into [0,1] (non-finite → 0). The copy
// keeps diversifiers from mutating caller state.
func sanitizedCover(l List, m int) [][]float64 {
	n := l.Len()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, m)
		if i < len(l.Cover) {
			for j, t := range l.Cover[i] {
				if j >= m {
					break
				}
				switch {
				case math.IsNaN(t) || t < 0:
					row[j] = 0
				case t > 1:
					row[j] = 1
				default:
					row[j] = t
				}
			}
		}
		out[i] = row
	}
	return out
}

// relevanceOrder is the λ=0 degenerate ranking: indices sorted by relevance
// descending, ties keeping the earlier index (matching
// rerank.OrderByScores' stable tie-breaking).
func relevanceOrder(rel []float64) []int {
	order := make([]int, len(rel))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rel[order[a]] > rel[order[b]]
	})
	return order
}
