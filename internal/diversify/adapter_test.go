package diversify_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/diversify"
	"repro/internal/rerank"
	"repro/internal/serve"
)

// The adapter must satisfy the serving layer's contracts structurally.
var (
	_ serve.Scorer      = (*diversify.Scorer)(nil)
	_ serve.BatchScorer = (*diversify.Scorer)(nil)
)

// TestNewScorerRegistry: every registered name builds a serving adapter with
// the registry-label naming convention; unknown names are rejected.
func TestNewScorerRegistry(t *testing.T) {
	for _, name := range diversify.Names() {
		sc, err := diversify.NewScorer(name, 0.5)
		if err != nil {
			t.Fatalf("NewScorer(%q): %v", name, err)
		}
		if sc.Name() != "div-"+name {
			t.Errorf("NewScorer(%q).Name() = %q, want %q", name, sc.Name(), "div-"+name)
		}
		if sc.DiversifierName() != name {
			t.Errorf("NewScorer(%q).DiversifierName() = %q, want %q", name, sc.DiversifierName(), name)
		}
	}
	if _, err := diversify.NewScorer("nope", 0.5); err == nil {
		t.Fatal("NewScorer accepted an unregistered diversifier name")
	}
}

// TestScorerRankScores: Score returns a rank-score vector — a permutation of
// 1..n — so the serving layer's descending-score ordering reproduces the
// diversified ranking exactly.
func TestScorerRankScores(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, name := range diversify.Names() {
		sc, err := diversify.NewScorer(name, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			inst := randomInstance(rng, 1+rng.Intn(16), 1+rng.Intn(5), 3)
			scores, err := sc.Score(context.Background(), inst)
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			if len(scores) != inst.L() {
				t.Fatalf("%s trial %d: %d scores for %d items", name, trial, len(scores), inst.L())
			}
			sorted := append([]float64(nil), scores...)
			sort.Float64s(sorted)
			for i, s := range sorted {
				if s != float64(i+1) {
					t.Fatalf("%s trial %d: scores %v are not a permutation of 1..%d", name, trial, scores, inst.L())
				}
			}
		}
	}
}

// TestScorerContextCanceled: a canceled context fails fast on both the
// single and the batch path — the coalescer relies on it.
func TestScorerContextCanceled(t *testing.T) {
	sc, err := diversify.NewScorer("mmr", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inst := randomInstance(rand.New(rand.NewSource(1)), 5, 3, 3)
	if _, err := sc.Score(ctx, inst); err != context.Canceled {
		t.Fatalf("Score on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := sc.ScoreBatch(ctx, []*rerank.Instance{inst}); err != context.Canceled {
		t.Fatalf("ScoreBatch on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestScoreBatchMatchesScore: the batch path is exactly the per-instance
// path — no cross-instance state leaks through the shared diversifier.
func TestScoreBatchMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, name := range diversify.Names() {
		sc, err := diversify.NewScorer(name, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		insts := make([]*rerank.Instance, 8)
		for i := range insts {
			insts[i] = randomInstance(rng, 2+rng.Intn(12), 1+rng.Intn(4), 3)
		}
		batch, err := sc.ScoreBatch(context.Background(), insts)
		if err != nil {
			t.Fatalf("%s: ScoreBatch: %v", name, err)
		}
		for i, inst := range insts {
			single, err := sc.Score(context.Background(), inst)
			if err != nil {
				t.Fatalf("%s: Score: %v", name, err)
			}
			if !reflect.DeepEqual(batch[i], single) {
				t.Fatalf("%s inst %d: batch %v != single %v", name, i, batch[i], single)
			}
		}
	}
}

// TestScorerHostileInstances: wire-shaped malformed instances (empty list,
// fewer scores than items, NaN scores, missing feature resolver) must score
// without error and still return a rank permutation.
func TestScorerHostileInstances(t *testing.T) {
	hostile := []*rerank.Instance{
		{M: 3},
		{Items: []int{0, 1, 2}, InitScores: []float64{1}, Cover: [][]float64{{0.2}, {0.9}, {0.4}}, M: 1},
		{Items: []int{0, 1}, InitScores: []float64{math.NaN(), math.Inf(1)}, Cover: [][]float64{{0.5, 0.1}, {0.3, 0.7}}, M: 2},
	}
	for _, name := range diversify.Names() {
		sc, err := diversify.NewScorer(name, math.NaN()) // hostile λ too
		if err != nil {
			t.Fatal(err)
		}
		for i, inst := range hostile {
			scores, err := sc.Score(context.Background(), inst)
			if err != nil {
				t.Fatalf("%s hostile %d: %v", name, i, err)
			}
			if len(scores) != len(inst.Items) {
				t.Fatalf("%s hostile %d: %d scores for %d items", name, i, len(scores), len(inst.Items))
			}
		}
	}
}
