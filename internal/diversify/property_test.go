package diversify

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

// hostileList is a quick generator producing adversarial candidate lists:
// non-finite relevance, ragged/missing coverage and feature rows, zero-length
// lists. Every diversifier must stay total and deterministic on these.
type hostileList struct {
	l      List
	lambda float64
}

func (hostileList) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(14)
	h := hostileList{lambda: pickLambda(r)}
	h.l.Rel = make([]float64, n)
	for i := range h.l.Rel {
		h.l.Rel[i] = hostileFloat(r)
	}
	m := r.Intn(6)
	if r.Intn(4) > 0 { // sometimes no coverage at all
		rows := n
		if r.Intn(3) == 0 && n > 0 {
			rows = r.Intn(n) // fewer rows than items
		}
		h.l.Cover = make([][]float64, rows)
		for i := range h.l.Cover {
			w := m
			if r.Intn(3) == 0 {
				w = r.Intn(m + 2) // ragged rows
			}
			h.l.Cover[i] = make([]float64, w)
			for j := range h.l.Cover[i] {
				h.l.Cover[i][j] = hostileFloat(r)
			}
		}
	}
	if r.Intn(2) == 0 {
		h.l.Feats = make([][]float64, n)
		for i := range h.l.Feats {
			h.l.Feats[i] = make([]float64, r.Intn(5))
			for j := range h.l.Feats[i] {
				h.l.Feats[i][j] = hostileFloat(r)
			}
		}
	}
	return reflect.ValueOf(h)
}

func hostileFloat(r *rand.Rand) float64 {
	switch r.Intn(8) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return 1e308
	default:
		return r.NormFloat64()
	}
}

func pickLambda(r *rand.Rand) float64 {
	switch r.Intn(6) {
	case 0:
		return math.NaN()
	case 1:
		return -3
	case 2:
		return 7
	default:
		return r.Float64()
	}
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// allDiversifiers returns one fresh instance per registered name, plus
// non-default parameterizations that exercise the k>n and tiny-window paths.
func allDiversifiers(t *testing.T) map[string]Diversifier {
	t.Helper()
	out := make(map[string]Diversifier)
	for _, name := range Names() {
		d, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out[name] = d
	}
	out["dpp-k3"] = &DPP{QualityWeight: 1, FeatureMix: 0.3, K: 3}
	out["bswap-k300"] = &BSwap{K: 300}
	out["window-w1"] = &SlidingWindow{W: 1}
	return out
}

// TestRerankPermutationProperty: every diversifier returns a permutation of
// [0, n) for any input, however hostile.
func TestRerankPermutationProperty(t *testing.T) {
	for name, d := range allDiversifiers(t) {
		f := func(h hostileList) bool {
			return isPermutation(d.Rerank(h.l, h.lambda), h.l.Len())
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestRerankDeterministic: re-running the same input yields the identical
// permutation — diversifiers carry no hidden state or randomness.
func TestRerankDeterministic(t *testing.T) {
	for name, d := range allDiversifiers(t) {
		f := func(h hostileList) bool {
			a := d.Rerank(h.l, h.lambda)
			b := d.Rerank(h.l, h.lambda)
			return reflect.DeepEqual(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestLambdaZeroIsRelevanceOrder: λ=0 must reproduce the pure relevance
// ranking (stable descending, matching rerank.OrderByScores ties).
func TestLambdaZeroIsRelevanceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, d := range allDiversifiers(t) {
		for trial := 0; trial < 60; trial++ {
			l := randomFiniteList(rng, rng.Intn(16), 4, 3)
			want := relevanceOrder(sanitizedRel(l))
			got := d.Rerank(l, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: λ=0 order %v, want relevance order %v (rel %v)",
					name, trial, got, want, l.Rel)
			}
		}
	}
}

// randomFiniteList builds a well-formed list: finite scores, rectangular
// [0,1] coverage, unit-scale features.
func randomFiniteList(rng *rand.Rand, n, m, f int) List {
	l := List{Rel: make([]float64, n), Cover: make([][]float64, n), Feats: make([][]float64, n)}
	for i := 0; i < n; i++ {
		l.Rel[i] = rng.NormFloat64()
		l.Cover[i] = make([]float64, m)
		for j := range l.Cover[i] {
			if rng.Intn(2) == 0 {
				l.Cover[i][j] = rng.Float64()
			}
		}
		l.Feats[i] = make([]float64, f)
		for j := range l.Feats[i] {
			l.Feats[i][j] = rng.NormFloat64()
		}
	}
	return l
}

// TestLambdaTradesILDUp: averaged over a fixed corpus, pushing λ up never
// trades top-k intra-list diversity down by more than noise, and the λ=1
// endpoint is strictly more diverse than λ=0. Diversity is measured as ILD
// over topic-coverage rows — the space every objective in the suite
// diversifies — with features generated as noisy copies of coverage so the
// blended-distance heuristics (BSwap, DPP) optimize a correlated signal.
// Per-list monotonicity is not guaranteed for the swap/kernel heuristics;
// the corpus mean over the canonical four is the contract. The non-default
// parameterizations are excluded deliberately: BSwap with K ≥ n is a
// documented no-op and a W=1 window forgets too fast to hold a mean trend.
func TestLambdaTradesILDUp(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const k, corpusN = 10, 30
	corpus := make([]List, corpusN)
	for c := range corpus {
		l := randomFiniteList(rng, 20, 5, 5)
		for i := range l.Cover {
			// Unit-norm coverage rows (entries stay in [0,1]) make cosine
			// distance — the space BSwap/DPP diversify — monotonically
			// equivalent to the Euclidean distance ILD measures:
			// ‖a−b‖² = 2−2·cos(a,b) on the unit sphere.
			var norm float64
			for _, v := range l.Cover[i] {
				norm += v * v
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				l.Cover[i][rng.Intn(len(l.Cover[i]))] = 1
				norm = 1
			}
			for j := range l.Cover[i] {
				l.Cover[i][j] /= norm
			}
		}
		// Relevance follows alignment with one "popular topic" profile per
		// list, so the λ=0 head is topically homogeneous (low ILD) and any
		// diversification has headroom to raise it. Uncorrelated relevance
		// would make the λ=0 slate a coverage-random — hence already
		// near-maximally diverse — selection, leaving the trend unmeasurable.
		popular := l.Cover[rng.Intn(len(l.Cover))]
		for i := range l.Rel {
			var dot float64
			for j := range popular {
				dot += popular[j] * l.Cover[i][j]
			}
			l.Rel[i] = dot + 0.05*rng.NormFloat64()
		}
		for i := range l.Feats {
			for j := range l.Feats[i] {
				l.Feats[i][j] = l.Cover[i][j] + 0.05*rng.NormFloat64()
			}
		}
		corpus[c] = l
	}
	lambdas := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, name := range Names() {
		d, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		means := make([]float64, len(lambdas))
		for li, lambda := range lambdas {
			var sum float64
			for _, l := range corpus {
				order := d.Rerank(l, lambda)
				cover := make([][]float64, 0, k)
				for _, i := range order[:min(k, len(order))] {
					cover = append(cover, l.Cover[i])
				}
				sum += metrics.ILDAtK(cover, k)
			}
			means[li] = sum / corpusN
		}
		for li := 1; li < len(means); li++ {
			if means[li] < means[li-1]-1e-3 {
				t.Errorf("%s: mean ILD@%d dropped from %.5f (λ=%.2f) to %.5f (λ=%.2f): %v",
					name, k, means[li-1], lambdas[li-1], means[li], lambdas[li], means)
			}
		}
		if !(means[len(means)-1] > means[0]) {
			t.Errorf("%s: λ=1 mean ILD %.5f not above λ=0 %.5f", name, means[len(means)-1], means[0])
		}
	}
}

// TestNormalizeRelevance pins the scale contract: finite input maps into
// [0,1] order-preservingly, degenerate input maps to 0.5.
func TestNormalizeRelevance(t *testing.T) {
	out := NormalizeRelevance([]float64{2, 4, 3})
	want := []float64{0, 1, 0.5}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("NormalizeRelevance = %v, want %v", out, want)
	}
	for _, degenerate := range [][]float64{{7, 7, 7}, {math.NaN(), math.Inf(1)}, {}} {
		out := NormalizeRelevance(degenerate)
		for _, v := range out {
			if v != 0.5 {
				t.Fatalf("NormalizeRelevance(%v) = %v, want all 0.5", degenerate, out)
			}
		}
	}
}
