package diversify

import (
	"context"
	"fmt"

	"repro/internal/rerank"
)

// Scorer adapts a Diversifier to the serving layer's context-aware
// Scorer/BatchScorer contract (structurally — this package does not import
// serve), so a diversifier version can be loaded, warm-up validated,
// canaried, shadow-compared and batched exactly like a RAPID model. The
// scores it returns are rank scores (n..1 over the diversified order), which
// the serving layer's descending-score ordering turns back into the
// diversified ranking.
//
// Scorer is a pointer type on purpose: the micro-batching coalescer groups
// in-flight jobs by scorer identity, which requires comparability.
type Scorer struct {
	Diversifier Diversifier
	// Lambda is the relevance/diversity trade-off this serving instance
	// runs at (manifest field "diversifier_lambda").
	Lambda float64
}

// NewScorer builds a serving adapter for a registered diversifier name.
func NewScorer(name string, lambda float64) (*Scorer, error) {
	d, err := New(name)
	if err != nil {
		return nil, err
	}
	return &Scorer{Diversifier: d, Lambda: lambda}, nil
}

// Name implements serve.Scorer; it matches the registry's version-label
// convention for weightless diversifier versions.
func (s *Scorer) Name() string { return "div-" + s.Diversifier.Name() }

// DiversifierName exposes the registry name so the serving layer can label
// the per-diversifier rapid_diversifier_* metric series.
func (s *Scorer) DiversifierName() string { return s.Diversifier.Name() }

// Score implements serve.Scorer.
func (s *Scorer) Score(ctx context.Context, inst *rerank.Instance) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := inst.L()
	order := s.Diversifier.Rerank(FromInstance(inst), s.Lambda)
	if err := validOrder(order, n); err != nil {
		// Defensive: the built-in diversifiers always return permutations;
		// a custom implementation that does not must degrade the request,
		// never corrupt the ranking silently.
		return nil, fmt.Errorf("diversifier %s: %w", s.Diversifier.Name(), err)
	}
	return GreedyScores(order, n), nil
}

// ScoreBatch implements serve.BatchScorer: a per-instance loop (greedy
// re-ranking has no cross-instance batching win) that checks the context
// between instances, so batch scoring still observes cancellation at
// instance granularity.
func (s *Scorer) ScoreBatch(ctx context.Context, insts []*rerank.Instance) ([][]float64, error) {
	out := make([][]float64, len(insts))
	for i, inst := range insts {
		scores, err := s.Score(ctx, inst)
		if err != nil {
			return nil, err
		}
		out[i] = scores
	}
	return out, nil
}

// validOrder checks that order is a permutation of [0, n).
func validOrder(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("returned %d positions for %d items", len(order), n)
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("order %v is not a permutation of [0,%d)", order, n)
		}
		seen[i] = true
	}
	return nil
}
