package diversify

import (
	"math"

	"repro/internal/mat"
	"repro/internal/topics"
)

// MMR is Carbonell & Goldstein's Maximal Marginal Relevance with the paper's
// probabilistic topic-coverage gain as the novelty term: items are selected
// greedily by (1−λ)·rel + λ·coverage-gain. It is the lifted core of the
// internal/baselines MMR/adpMMR reference implementations, which now
// delegate here (equivalence-tested item for item).
type MMR struct{}

// Name implements Diversifier.
func (*MMR) Name() string { return "mmr" }

// Rerank implements Diversifier.
func (*MMR) Rerank(l List, lambda float64) []int {
	m := l.Topics()
	return MMRSelect(sanitizedRel(l), sanitizedCover(l, m), m, 1-clampLambda(lambda), nil)
}

// MMRSelect is the greedy MMR selection loop shared with the baselines
// package: at each position pick the unselected item maximizing
// θ·rel + (1−θ)·gain, where gain is the incremental coverage total — or,
// with non-nil topicWeights, the weighted per-topic gain (adpMMR's
// personalization). cover rows may be shorter than m (missing topics read
// as zero) but never longer. Ties keep the earliest index, matching the
// stable ordering contract of rerank.OrderByScores; the returned slice is a
// permutation of [0, len(rel)) even when every score is non-finite.
func MMRSelect(rel []float64, cover [][]float64, m int, theta float64, topicWeights []float64) []int {
	l := len(rel)
	ic := topics.NewIncrementalCoverage(m)
	selected := make([]bool, l)
	order := make([]int, 0, l)
	for len(order) < l {
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < l; i++ {
			if selected[i] {
				continue
			}
			var gain float64
			if topicWeights == nil {
				gain = ic.GainTotal(cover[i])
			} else {
				g := ic.Gain(cover[i])
				gain = mat.Dot(topicWeights, g) * float64(m)
			}
			s := theta*rel[i] + (1-theta)*gain
			if best < 0 || s > bestScore {
				best, bestScore = i, s
			}
		}
		selected[best] = true
		ic.Add(cover[best])
		order = append(order, best)
	}
	return order
}
