package diversify_test

import (
	"context"
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"repro/internal/diversify"
	"repro/internal/rerank"
)

// FuzzDiversifierAdapter drives arbitrary bytes through the serving adapter
// of every registered diversifier: the raw data is decoded into a hostile
// instance (duplicate item IDs, non-finite scores, ragged coverage, score
// vectors shorter than the item list) and the selection cap is fuzzed past
// the list length. The contract under fuzz: Score never panics, never
// errors on any instance shape the wire can deliver, and its output always
// encodes a full permutation of the ranks 1..n — the invariant the serving
// layer's descending-score ordering depends on.
//
// Seed corpus committed under testdata/fuzz/FuzzDiversifierAdapter; CI runs
// a -fuzztime smoke on top (make fuzz).
func FuzzDiversifierAdapter(f *testing.F) {
	f.Add(byte(0), 0.5, byte(0), []byte{})                      // empty list
	f.Add(byte(1), 0.3, byte(9), []byte{2, 2, 2, 2, 2, 2})      // duplicate ids
	f.Add(byte(2), math.NaN(), byte(4), nanPayload())           // NaN scores, NaN λ
	f.Add(byte(3), 1.0, byte(255), []byte{9, 1, 2, 3, 4, 5, 6}) // k >> n

	f.Fuzz(func(t *testing.T, which byte, lambda float64, kb byte, data []byte) {
		names := diversify.Names()
		name := names[int(which)%len(names)]
		d, err := diversify.New(name)
		if err != nil {
			t.Fatal(err)
		}
		// Fuzz the selection caps too: K past the list length must be a
		// clean no-op/truncation, never a panic.
		switch d := d.(type) {
		case *diversify.DPP:
			d.K = int(kb)
		case *diversify.BSwap:
			d.K = int(kb)
		case *diversify.SlidingWindow:
			d.W = int(kb)
		}
		sc := &diversify.Scorer{Diversifier: d, Lambda: lambda}

		inst := fuzzInstance(data)
		scores, err := sc.Score(context.Background(), inst)
		if err != nil {
			t.Fatalf("%s: Score errored on wire-shaped instance: %v", name, err)
		}
		if len(scores) != inst.L() {
			t.Fatalf("%s: %d scores for %d items", name, len(scores), inst.L())
		}
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		for i, s := range sorted {
			if s != float64(i+1) {
				t.Fatalf("%s: scores %v are not a permutation of ranks 1..%d", name, scores, inst.L())
			}
		}
	})
}

// fuzzInstance decodes arbitrary bytes into a wire-shaped instance: the
// first byte picks the list length, then 8-byte chunks become raw float64
// scores (any bit pattern, so NaN/Inf/denormals appear naturally), item IDs
// collide via %8, and coverage rows are ragged on purpose.
func fuzzInstance(data []byte) *rerank.Instance {
	n := 0
	if len(data) > 0 {
		n = int(data[0]) % 24
		data = data[1:]
	}
	inst := &rerank.Instance{M: 3}
	for i := 0; i < n; i++ {
		inst.Items = append(inst.Items, int(byteAt(data, i))%8) // duplicates
		if len(data) >= (i+1)*8 {
			bits := binary.LittleEndian.Uint64(data[i*8 : (i+1)*8])
			inst.InitScores = append(inst.InitScores, math.Float64frombits(bits))
		} // else: scores shorter than items — FromInstance must pad
		row := make([]float64, int(byteAt(data, i+1))%5) // ragged
		for j := range row {
			row[j] = float64(byteAt(data, i+j)) / 255
		}
		inst.Cover = append(inst.Cover, row)
	}
	if n > 0 && byteAt(data, n)%2 == 0 {
		feats := [][]float64{{0.1, 0.9}, {0.5, 0.5}, nil}
		inst.ItemFeat = func(v int) []float64 { return feats[((v%3)+3)%3] }
	}
	return inst
}

func byteAt(data []byte, i int) byte {
	if i < len(data) {
		return data[i]
	}
	return byte(i * 37)
}

func nanPayload() []byte {
	out := []byte{3}
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	for i := 0; i < 3; i++ {
		out = append(out, nan...)
	}
	return out
}
