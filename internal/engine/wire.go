package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rerank"
)

// MaxListLength caps the number of candidates in one re-rank request.
// Re-ranking operates on the final stage's short list (the paper's lists are
// tens of items); a four-digit list is a malformed or hostile request, and
// the Bi-LSTM's O(L) step chain would blow the budget anyway.
const MaxListLength = 1024

// Request is one re-rank request, transport-neutral: the HTTP frontend
// decodes it from JSON, the binary frontend from length-prefixed frames, and
// embedded callers build it directly. It must carry everything the model
// consumes (features, topic coverage, per-topic behavior sequences),
// mirroring rerank.Instance.
type Request struct {
	UserFeatures   []float64   `json:"user_features"`
	Items          []Item      `json:"items"`
	TopicSequences [][]SeqItem `json:"topic_sequences"`
	// Tenant names the resident scorer that should serve this request; empty
	// selects the default tenant (the engine's own provider), which keeps
	// every pre-multi-tenant client working unchanged.
	Tenant string `json:"tenant,omitempty"`
}

// Item is one candidate of the initial list.
type Item struct {
	ID        int       `json:"id"`
	Features  []float64 `json:"features"`
	Cover     []float64 `json:"cover"`
	InitScore float64   `json:"init_score"`
}

// SeqItem is one entry of a per-topic behavior sequence.
type SeqItem struct {
	Features []float64 `json:"features"`
}

// Response is one re-rank answer. Degraded marks the graceful-degradation
// contract: the engine could not produce model scores inside the request
// budget (deadline overrun, scoring error or recovered scoring panic) and
// fell back to the initial-ranker ordering instead of failing the request.
// DegradedReason says why ("deadline", "error", "panic").
type Response struct {
	Ranked         []int     `json:"ranked"`
	Scores         []float64 `json:"scores"` // aligned with Ranked
	Degraded       bool      `json:"degraded,omitempty"`
	DegradedReason string    `json:"degraded_reason,omitempty"`
	// ModelVersion labels the registry version that served the request
	// (empty in the single-model deployment shape); Canary marks requests
	// routed to a candidate under canary evaluation.
	ModelVersion string  `json:"model_version,omitempty"`
	Canary       bool    `json:"canary,omitempty"`
	LatencyMS    float64 `json:"latency_ms"`
	// RequestID uniquely labels this served response; clients echo it in
	// feedback events so impressions and clicks join deterministically. Per
	// item inside a batch. Empty only on per-item validation errors (Error
	// set), which served no ranking.
	RequestID string `json:"request_id,omitempty"`
	// Error reports a per-item validation failure inside a batch (the
	// single-item path returns a typed error instead). An item with Error
	// set has no ranking.
	Error string `json:"error,omitempty"`
}

// ToInstance validates the wire request against the model geometry and
// assembles a rerank.Instance.
func ToInstance(cfg core.Config, req *Request) (*rerank.Instance, error) {
	if len(req.UserFeatures) != cfg.UserDim {
		return nil, fmt.Errorf("user_features has %d dims, model wants %d", len(req.UserFeatures), cfg.UserDim)
	}
	if len(req.Items) == 0 {
		return nil, fmt.Errorf("no items to re-rank")
	}
	if len(req.Items) > MaxListLength {
		return nil, fmt.Errorf("request has %d items, limit is %d", len(req.Items), MaxListLength)
	}
	if len(req.TopicSequences) != cfg.Topics {
		return nil, fmt.Errorf("topic_sequences has %d topics, model wants %d", len(req.TopicSequences), cfg.Topics)
	}
	items := make([]int, len(req.Items))
	scores := make([]float64, len(req.Items))
	cover := make([][]float64, len(req.Items))
	feats := make(map[int][]float64, len(req.Items))
	coverByID := make(map[int][]float64, len(req.Items))
	for i, it := range req.Items {
		if len(it.Features) != cfg.ItemDim {
			return nil, fmt.Errorf("item %d has %d feature dims, model wants %d", it.ID, len(it.Features), cfg.ItemDim)
		}
		if len(it.Cover) != cfg.Topics {
			return nil, fmt.Errorf("item %d has %d cover dims, model wants %d", it.ID, len(it.Cover), cfg.Topics)
		}
		items[i] = it.ID
		scores[i] = it.InitScore
		cover[i] = it.Cover
		feats[it.ID] = it.Features
		coverByID[it.ID] = it.Cover
	}
	// Behavior-sequence items are addressed with synthetic negative IDs so
	// they cannot collide with list items.
	seqs := make([][]int, cfg.Topics)
	nextID := -1
	for j, seq := range req.TopicSequences {
		for _, si := range seq {
			if len(si.Features) != cfg.ItemDim {
				return nil, fmt.Errorf("topic %d sequence item has %d feature dims, model wants %d", j, len(si.Features), cfg.ItemDim)
			}
			feats[nextID] = si.Features
			seqs[j] = append(seqs[j], nextID)
			nextID--
		}
		if len(seqs[j]) > rerank.TopicSeqCap {
			seqs[j] = seqs[j][len(seqs[j])-rerank.TopicSeqCap:]
		}
	}
	// Unknown-id coverage lookups (historical items outside the list) share
	// one zero vector; callers treat coverage as read-only.
	zeroCover := make([]float64, cfg.Topics)
	return &rerank.Instance{
		UserFeat:   req.UserFeatures,
		Items:      items,
		InitScores: scores,
		Cover:      cover,
		TopicSeqs:  seqs,
		M:          cfg.Topics,
		ItemFeat:   func(id int) []float64 { return feats[id] },
		CoverOf: func(id int) []float64 {
			if c, ok := coverByID[id]; ok {
				return c
			}
			return zeroCover
		},
	}, nil
}

// FallbackOrder is the graceful-degradation ranking: the initial ranker's
// ordering by its own scores (stable on ties), exactly what the upstream
// stage would have shown had the re-ranker not existed.
func FallbackOrder(inst *rerank.Instance) ([]int, []float64) {
	order := rerank.OrderByScores(inst.Items, inst.InitScores)
	pos := make(map[int]int, len(inst.Items))
	for i, id := range inst.Items {
		pos[id] = i
	}
	ordered := make([]float64, len(order))
	for i, id := range order {
		ordered[i] = inst.InitScores[pos[id]]
	}
	return order, ordered
}
