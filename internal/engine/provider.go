package engine

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/rerank"
)

// Pinned is one coherent serving assignment: the scorer, its manifest and
// its version label, captured together from a single provider snapshot. A
// request pins exactly one Pinned and uses it end to end — geometry
// validation, scoring and response labeling all read the same triple, so a
// version swap concurrent with the request can never produce a torn read
// (scores from one model attributed to another).
type Pinned struct {
	Scorer   Scorer
	Manifest Manifest
	// Version labels the model version serving this request; empty for the
	// single-model deployment shape (then it is omitted from the response).
	Version string
	// Canary marks a request routed to a candidate version under canary
	// evaluation rather than the active model.
	Canary bool
	// Observe, if non-nil, receives the request's terminal outcome for this
	// version — "ok" or a degrade reason ("deadline", "error", "panic") —
	// with the end-to-end latency. The model lifecycle layer feeds its
	// per-version metrics and canary auto-rollback decision from here.
	Observe func(outcome string, latency time.Duration)
	// ShadowBatch, if non-nil, is invoked after a successful scoring pass
	// with the request instances and the primary model's scores (each
	// aligned with its instance's Items). The engine forwards whole scored
	// batches, so shadow scoring reuses the batch shape instead of
	// re-splitting per item. Implementations must not block: shadow work is
	// scored asynchronously off the request path and shed under pressure.
	ShadowBatch func(insts []*rerank.Instance, scores [][]float64)
	// ShadowVersion labels the candidate ShadowBatch feeds; the coalescer
	// only merges jobs whose pins shadow the same candidate.
	ShadowVersion string
}

// Provider hands the engine a model per request. It is the seam between the
// scoring data plane and the model lifecycle control plane: a provider may
// be a fixed single model (StaticProvider) or a versioned registry that
// routes a deterministic traffic fraction to a canary candidate while
// versions hot-swap underneath (internal/registry).
//
// Both methods must be safe for concurrent use and must return a coherent
// triple assembled from one atomic snapshot of the provider's state.
type Provider interface {
	// Active returns the current active model — the one health surfaces
	// report and warm paths should assume.
	Active() Pinned
	// Pick returns the model that serves the request with the given routing
	// key: the active model, or the canary candidate for the configured
	// fraction of the key space.
	Pick(key uint64) Pinned
}

// StaticProvider wraps one fixed pin as a Provider — the original
// single-model deployment shape, kept as the New default so a process
// without a registry pays zero lifecycle overhead.
func StaticProvider(pin Pinned) Provider { return staticProvider{pin: pin} }

type staticProvider struct{ pin Pinned }

func (p staticProvider) Active() Pinned     { return p.pin }
func (p staticProvider) Pick(uint64) Pinned { return p.pin }

// RouteKey derives the deterministic canary routing key for a request:
// FNV-1a over the user feature vector and the candidate item ids. The same
// logical request always lands on the same side of the canary split, so a
// user's experience is stable across retries and a misbehaving canary is
// reproducible from its request alone — the properties coin-flip routing
// gives up.
func RouteKey(req *Request) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range req.UserFeatures {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	for _, it := range req.Items {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(it.ID)))
		h.Write(buf[:])
	}
	return h.Sum64()
}
