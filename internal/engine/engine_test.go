package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rerank"
)

func testConfig() core.Config {
	return core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2,
		Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
}

func validRequest() *Request {
	return &Request{
		UserFeatures: []float64{0.1, 0.2, 0.3},
		Items: []Item{
			{ID: 7, Features: []float64{0.5, 0.1}, Cover: []float64{1, 0}, InitScore: 0.9},
			{ID: 8, Features: []float64{0.2, 0.7}, Cover: []float64{0, 1}, InitScore: 0.4},
			{ID: 9, Features: []float64{0.3, 0.3}, Cover: []float64{1, 0}, InitScore: 0.2},
		},
		TopicSequences: [][]SeqItem{
			{{Features: []float64{0.5, 0.2}}},
			{},
		},
	}
}

// stubScorer echoes the initial scores: fast and deterministic for tests
// that exercise the engine envelope rather than model quality.
type stubScorer struct{}

func (stubScorer) Name() string { return "stub" }
func (stubScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return inst.InitScores, nil
}

func stubEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := NewStatic(stubScorer{}, Manifest{Dataset: "test", Config: testConfig()}, cfg)
	e.Log = t.Logf
	return e
}

// offsetStub is a comparable Scorer+BatchScorer whose output encodes which
// scorer produced it, so a batch that mixed pins would be visible in the
// scores themselves.
type offsetStub struct{ offset float64 }

func (o offsetStub) Name() string { return fmt.Sprintf("offset-%v", o.offset) }
func (o offsetStub) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	out := make([]float64, len(inst.Items))
	for i := range out {
		out[i] = o.offset + inst.InitScores[i]
	}
	return out, nil
}
func (o offsetStub) ScoreBatch(ctx context.Context, insts []*rerank.Instance) ([][]float64, error) {
	out := make([][]float64, len(insts))
	for i, inst := range insts {
		s, err := o.Score(ctx, inst)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// funcScorer's func field makes its dynamic type non-comparable: using it
// in a batchKey (map key or ==) would panic at runtime.
type funcScorer struct {
	fn func(*rerank.Instance) []float64
}

func (f funcScorer) Name() string { return "func-scorer" }
func (f funcScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return f.fn(inst), nil
}

// TestCoalescerMaxWaitBound: with the engine busy (idle fast path
// defeated), a lone request dispatches when its MaxWait window closes —
// never sooner than the window, never later than window + slack.
func TestCoalescerMaxWaitBound(t *testing.T) {
	const maxWait = 20 * time.Millisecond
	e := stubEngine(t, Config{
		MaxInFlight: 16,
		Batch:       BatchConfig{MaxBatch: 16, MaxWait: maxWait},
	})
	// Two occupied slots defeat the idle fast path (len(sem) > 1).
	e.sem <- struct{}{}
	e.sem <- struct{}{}
	inst, err := ToInstance(testConfig(), validRequest())
	if err != nil {
		t.Fatal(err)
	}
	pin := Pinned{Scorer: offsetStub{offset: 1}, Version: "v1"}

	e.sem <- struct{}{} // the job's own slot, released by the worker
	start := time.Now()
	done := e.batch.submit(context.Background(), pin, inst)
	select {
	case out := <-done:
		elapsed := time.Since(start)
		if out.err != nil {
			t.Fatal(out.err)
		}
		if elapsed < maxWait/2 {
			t.Fatalf("partial batch dispatched after %v, before the %v wait window", elapsed, maxWait)
		}
		if elapsed > maxWait+time.Second {
			t.Fatalf("request waited %v, far past MaxWait %v", elapsed, maxWait)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never completed")
	}
}

// TestCoalescerFullBatchDispatchesEarly: MaxBatch jobs in hand dispatch
// immediately — nobody waits out a long MaxWait window once the batch is
// full.
func TestCoalescerFullBatchDispatchesEarly(t *testing.T) {
	const batch = 4
	e := stubEngine(t, Config{
		MaxInFlight: 16,
		Batch:       BatchConfig{MaxBatch: batch, MaxWait: 5 * time.Second},
	})
	e.sem <- struct{}{}
	e.sem <- struct{}{}
	inst, err := ToInstance(testConfig(), validRequest())
	if err != nil {
		t.Fatal(err)
	}
	pin := Pinned{Scorer: offsetStub{offset: 1}, Version: "v1"}

	start := time.Now()
	dones := make([]<-chan scoreOutcome, batch)
	for i := range dones {
		e.sem <- struct{}{}
		dones[i] = e.batch.submit(context.Background(), pin, inst)
	}
	for i, done := range dones {
		select {
		case out := <-done:
			if out.err != nil {
				t.Fatalf("job %d: %v", i, out.err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("job %d still waiting %v after the batch filled", i, time.Since(start))
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("full batch took %v; it must not wait out MaxWait", elapsed)
	}
}

// TestCoalescerChurnExactlyOneOutcome is the coalescer's property test; run
// with -race. Many goroutines submit against two distinct (scorer, version)
// pins at once. Every submission must receive exactly one outcome, and the
// scores must carry its own pin's offset — a batch that mixed pins or a
// dropped/duplicated delivery would fail here.
func TestCoalescerChurnExactlyOneOutcome(t *testing.T) {
	e := stubEngine(t, Config{
		MaxInFlight: 64,
		Batch:       BatchConfig{MaxBatch: 4, MaxWait: time.Millisecond},
	})
	// Keep the engine permanently "busy" so submissions coalesce.
	e.sem <- struct{}{}
	e.sem <- struct{}{}
	inst, err := ToInstance(testConfig(), validRequest())
	if err != nil {
		t.Fatal(err)
	}
	pins := []Pinned{
		{Scorer: offsetStub{offset: 100}, Version: "v1"},
		{Scorer: offsetStub{offset: 200}, Version: "v2"},
	}

	const (
		workers = 8
		perW    = 50
	)
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				pin := pins[(g+i)%len(pins)]
				e.sem <- struct{}{}
				done := e.batch.submit(context.Background(), pin, inst)
				select {
				case out := <-done:
					if out.err != nil {
						t.Errorf("worker %d job %d: %v", g, i, out.err)
						return
					}
					wantOffset := 100.0 * float64(1+(g+i)%len(pins))
					if out.scores[0] != wantOffset+inst.InitScores[0] {
						t.Errorf("pin mixed into foreign batch: got %v, want offset %v",
							out.scores[0], wantOffset)
						return
					}
					delivered.Add(1)
				case <-time.After(5 * time.Second):
					t.Errorf("worker %d job %d: outcome never delivered", g, i)
					return
				}
				// done is buffered with capacity 1; a duplicate delivery
				// would be waiting here.
				select {
				case out := <-done:
					t.Errorf("worker %d job %d: duplicate outcome %+v", g, i, out)
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
	if got := delivered.Load(); got != workers*perW {
		t.Fatalf("%d of %d submissions answered", got, workers*perW)
	}
	// The two sentinel tokens are all that remain once every job released
	// its slot: no slot was leaked or double-released.
	if got := len(e.sem); got != 2 {
		t.Fatalf("%d slots still held after drain, want the 2 sentinels", got)
	}
}

// TestNonComparableScorerCoalescePath: a scorer whose dynamic type does not
// support == must dispatch solo on the coalescing path (map keyed by
// scorer) instead of panicking. The frontend-visible fallback lives in
// internal/serve's tests; this pins the submit path proper.
func TestNonComparableScorerCoalescePath(t *testing.T) {
	fs := funcScorer{fn: func(inst *rerank.Instance) []float64 { return inst.InitScores }}
	e := NewStatic(fs, Manifest{Dataset: "test", Config: testConfig()}, Config{MaxInFlight: 16})
	e.Log = t.Logf
	e.sem <- struct{}{}
	e.sem <- struct{}{}
	inst, err := ToInstance(testConfig(), validRequest())
	if err != nil {
		t.Fatal(err)
	}
	e.sem <- struct{}{}
	done := e.batch.submit(context.Background(), Pinned{Scorer: fs, Version: "v1"}, inst)
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("coalesced submit with non-comparable scorer: %v", out.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("non-comparable scorer job never completed")
	}
}

// TestRetryAfterDerivedFromPressure: the Retry-After hint scales with
// semaphore occupancy — idle engines hint a short retry, saturated engines
// back retries off harder.
func TestRetryAfterDerivedFromPressure(t *testing.T) {
	e := stubEngine(t, Config{MaxInFlight: 4})
	for i := 0; i < 50; i++ {
		sec := e.RetryAfterS()
		if sec < 1 {
			t.Fatalf("idle Retry-After %d", sec)
		}
		if sec > 2 { // base 1 ± 1s jitter
			t.Fatalf("idle Retry-After %d too far out", sec)
		}
	}
	// Saturated engine: the base rises to 4, so even the lowest jitter
	// stays above the idle hint — retries back off harder when pressure is
	// real.
	for i := 0; i < 4; i++ {
		e.sem <- struct{}{}
	}
	for i := 0; i < 50; i++ {
		if sec := e.RetryAfterS(); sec < 3 || sec > 5 {
			t.Fatalf("saturated Retry-After %d, want 3..5", sec)
		}
	}
}

// stateOfSize builds a UserState whose SizeBytes is exactly 96 + 8*topics.
func stateOfSize(topics int) *core.UserState {
	return core.NewUserState(make([]float64, topics))
}

// TestStateCacheLRU pins the cache's budget accounting: inserts beyond the
// byte budget evict in LRU order, a Get refreshes recency, and replacing a
// key's entry adjusts bytes instead of double-charging.
func TestStateCacheLRU(t *testing.T) {
	one := int64(stateOfSize(4).SizeBytes())
	c := newStateCache(3*one, NewMetrics(obs.NewRegistry())) // room for exactly three entries
	key := func(i int) StateKey { return StateKey{Route: uint64(i), Version: "v1"} }
	for i := 0; i < 3; i++ {
		c.Put(key(i), stateOfSize(4))
	}
	if n, b := c.Stats(); n != 3 || b != 3*one {
		t.Fatalf("after 3 puts: %d entries / %d bytes, want 3 / %d", n, b, 3*one)
	}
	// Touch key 0 so key 1 is now the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("resident entry missing")
	}
	c.Put(key(3), stateOfSize(4))
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU victim survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	// Replacing a resident key must not double-charge the budget.
	c.Put(key(0), stateOfSize(4))
	if n, b := c.Stats(); n != 3 || b != 3*one {
		t.Fatalf("after replace: %d entries / %d bytes, want 3 / %d", n, b, 3*one)
	}
	// An entry larger than the whole budget is refused outright.
	c.Put(StateKey{Route: 99}, stateOfSize(1024))
	if _, ok := c.Get(StateKey{Route: 99}); ok {
		t.Fatal("over-budget state was admitted")
	}
	c.Flush()
	if n, b := c.Stats(); n != 0 || b != 0 {
		t.Fatalf("after flush: %d entries / %d bytes", n, b)
	}
}
