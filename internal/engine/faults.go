package engine

import (
	"context"

	"repro/internal/rerank"
)

// FaultInjector is the chaos-testing seam on the scoring path. Production
// engines leave it nil (a nil injector costs one pointer compare per
// request); tests install an implementation to simulate the failure modes a
// live re-ranker must survive:
//
//   - latency spikes — BeforeScore sleeps past the request budget, forcing
//     the deadline-degradation path;
//   - scoring errors — BeforeScore returns a non-nil error, standing in for
//     a remote feature store or embedding service failing;
//   - model bugs — BeforeScore panics, standing in for an out-of-range index
//     or corrupted weight inside the forward pass.
//
// BeforeScore runs on the scoring goroutine, inside the panic-recovery and
// deadline envelope, immediately before the model is invoked. Any non-nil
// error (and any panic) triggers the degraded fallback, never a hard error.
type FaultInjector interface {
	BeforeScore(ctx context.Context, inst *rerank.Instance) error
}

// AfterScoreInjector is the optional post-scoring half of the chaos seam.
// AfterScore runs on the scoring goroutine after the model produced scores,
// still inside the panic-recovery envelope and the request deadline. A
// non-nil error (or a panic) replaces the job's successful outcome and
// degrades the response; an implementation that sleeps (honoring ctx)
// simulates the slow-response failure mode — the model answered but the
// reply is late, which is how an overloaded or GC-pausing replica actually
// looks from a fleet router. Injectors that only implement FaultInjector
// keep their exact previous behavior.
type AfterScoreInjector interface {
	AfterScore(ctx context.Context, inst *rerank.Instance, scores []float64) error
}

// FaultFunc adapts a plain function to the FaultInjector interface.
type FaultFunc func(ctx context.Context, inst *rerank.Instance) error

// BeforeScore implements FaultInjector.
func (f FaultFunc) BeforeScore(ctx context.Context, inst *rerank.Instance) error {
	return f(ctx, inst)
}

// AfterScoreFunc is the signature of the post-scoring fault hook.
type AfterScoreFunc func(ctx context.Context, inst *rerank.Instance, scores []float64) error

// FaultHooks bundles both halves of the chaos seam; either half may be nil.
// It is the injector shape the chaos harness uses: Before for pre-score
// errors and panics, After for latency injection on the response path.
type FaultHooks struct {
	Before FaultFunc
	After  AfterScoreFunc
}

// BeforeScore implements FaultInjector; a nil Before is a no-op.
func (h FaultHooks) BeforeScore(ctx context.Context, inst *rerank.Instance) error {
	if h.Before == nil {
		return nil
	}
	return h.Before(ctx, inst)
}

// AfterScore implements AfterScoreInjector; a nil After is a no-op.
func (h FaultHooks) AfterScore(ctx context.Context, inst *rerank.Instance, scores []float64) error {
	if h.After == nil {
		return nil
	}
	return h.After(ctx, inst, scores)
}
