package engine

import (
	"container/list"
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/rerank"
)

// StateScorer is the optional encoded-user-state contract: score a batch
// where states[i], when non-nil, replaces instance i's user-preference
// encoding, and return the states actually used so the caller can cache the
// fresh ones. *core.Model implements it; the coalescer routes through it
// whenever the engine's state cache is enabled and the pinned scorer
// supports it.
type StateScorer interface {
	BatchScorer
	ScoreBatchStates(ctx context.Context, insts []*rerank.Instance, states []*core.UserState) ([][]float64, []*core.UserState, error)
}

// StateKey identifies one cached user state: the tenant that served the
// request, the request's deterministic route key, a hash of the user's
// behavior history, and the model version that encoded the state. The
// version component makes canary traffic and post-promote traffic miss
// cleanly rather than read a state encoded by a different model; the history
// hash makes any change in the user's features or behavior sequences a miss
// (a stale state is never served); the tenant component keeps states of
// distinct resident scorers apart even when their version labels collide.
type StateKey struct {
	Tenant  string
	Route   uint64
	History uint64
	Version string
}

// HistoryKey hashes exactly the inputs the user-preference encoder consumes:
// the user feature vector and every per-topic behavior-sequence feature
// vector, with topic and length framing so permuted or split sequences
// cannot collide. Two requests with equal HistoryKey (and equal model
// version) are guaranteed the same encoded state.
func HistoryKey(req *Request) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	for _, f := range req.UserFeatures {
		w(f)
	}
	for j, seq := range req.TopicSequences {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(j))<<32|uint64(uint32(len(seq))))
		h.Write(buf[:])
		for _, it := range seq {
			for _, f := range it.Features {
				w(f)
			}
		}
	}
	return h.Sum64()
}

// cacheEntry is one resident state with its budget charge.
type cacheEntry struct {
	key  StateKey
	st   *core.UserState
	size int64
}

// StateCache is a memory-budgeted LRU of encoded user states shared by all
// scoring workers. All operations take one short mutex hold; the cached
// *core.UserState values are immutable, so readers share them without
// copying. Eviction is strict LRU by total SizeBytes against the budget.
type StateCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	by     map[StateKey]*list.Element

	met *Metrics // hit/miss/eviction/invalidation counters, size gauges
}

// newStateCache builds a cache bounded to budget bytes of encoded states.
func newStateCache(budget int64, met *Metrics) *StateCache {
	return &StateCache{budget: budget, ll: list.New(), by: map[StateKey]*list.Element{}, met: met}
}

// Get returns the cached state for key, marking it most recently used.
func (c *StateCache) Get(key StateKey) (*core.UserState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.by[key]
	if !ok {
		c.met.CacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.met.CacheHits.Inc()
	return el.Value.(*cacheEntry).st, true
}

// Put installs (or refreshes) key's state and evicts least-recently-used
// entries until the cache fits its budget. A state larger than the whole
// budget is not admitted.
func (c *StateCache) Put(key StateKey, st *core.UserState) {
	if st == nil {
		return
	}
	size := int64(st.SizeBytes())
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.by[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.st, ent.size = st, size
		c.ll.MoveToFront(el)
	} else {
		c.by[key] = c.ll.PushFront(&cacheEntry{key: key, st: st, size: size})
		c.bytes += size
	}
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.by, ent.key)
		c.bytes -= ent.size
		c.met.CacheEvictions.Inc()
	}
	c.met.CacheEntries.Set(float64(c.ll.Len()))
	c.met.CacheBytes.Set(float64(c.bytes))
}

// Flush drops every entry. It is the model-lifecycle invalidation hook:
// wired to the registry's state transitions (load/promote/rollback), so no
// request can ever read a state across a model swap — even when a version
// label is reused for different artifacts.
func (c *StateCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.by = map[StateKey]*list.Element{}
	c.bytes = 0
	if n > 0 {
		c.met.CacheInvalidations.Inc()
	}
	c.met.CacheEntries.Set(0)
	c.met.CacheBytes.Set(0)
}

// Stats reports the cache's resident entry count and byte size.
func (c *StateCache) Stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

// stateKeyFor derives a request's state-cache key: set only when the cache
// is enabled and the pinned scorer can consume encoded states, so the
// scoring workers never hash or probe the cache in vain. route is the
// request's RouteKey, already computed for provider pinning; tenant is the
// resolved tenant label.
func (e *Engine) stateKeyFor(req *Request, tenant string, route uint64, pin Pinned) (StateKey, bool) {
	if e.stateCache == nil {
		return StateKey{}, false
	}
	if _, ok := pin.Scorer.(StateScorer); !ok {
		return StateKey{}, false
	}
	return StateKey{Tenant: tenant, Route: route, History: HistoryKey(req), Version: pin.Version}, true
}

// StateCache exposes the engine's state cache (nil when disabled) so a
// binary can wire lifecycle invalidation and report stats.
func (e *Engine) StateCache() *StateCache { return e.stateCache }

// FlushStateCache invalidates every cached user state; safe to call at any
// time, including with no cache configured. Wire it to the model registry's
// OnSwap hook so promote/rollback can never serve a stale encoded state.
func (e *Engine) FlushStateCache() {
	if e.stateCache != nil {
		e.stateCache.Flush()
	}
}
