package engine

import (
	"context"

	"repro/internal/rerank"
)

// Scorer is the model-side contract the engine needs: score an instance
// under a context, name the model. Score must honor ctx — when the deadline
// fires or the caller cancels, it stops working and returns ctx's error
// rather than burning CPU on an abandoned request. *core.Model implements
// it; tests substitute stubs; Adapt wraps legacy context-free rerankers.
//
// Scorer implementations should be comparable (pointer receivers or small
// value types): the micro-batching coalescer groups in-flight requests by
// (scorer, version) identity. A scorer whose dynamic type does not support
// == is detected at submission and scored unbatched instead.
type Scorer interface {
	Score(ctx context.Context, inst *rerank.Instance) ([]float64, error)
	Name() string
}

// BatchScorer is the optional batched contract: score B instances in one
// pass, returning one score slice per instance in input order. The engine
// batches through this interface when a coalesced batch holds more than one
// request; scorers without it are scored per instance.
type BatchScorer interface {
	Scorer
	ScoreBatch(ctx context.Context, insts []*rerank.Instance) ([][]float64, error)
}

// Adapt wraps a legacy context-free reranker (the rerank.Reranker contract)
// as a Scorer. The adapter checks the context between instances, so batch
// scoring through it still observes cancellation at instance granularity.
func Adapt(r rerank.Reranker) Scorer { return &adapter{r: r} }

type adapter struct{ r rerank.Reranker }

func (a *adapter) Name() string { return a.r.Name() }

func (a *adapter) Score(ctx context.Context, inst *rerank.Instance) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.r.Scores(inst), nil
}

func (a *adapter) ScoreBatch(ctx context.Context, insts []*rerank.Instance) ([][]float64, error) {
	out := make([][]float64, len(insts))
	for i, inst := range insts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = a.r.Scores(inst)
	}
	return out, nil
}
