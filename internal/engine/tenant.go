package engine

// DefaultTenant is the metric label for requests that name no tenant — they
// are served by the engine's own provider.
const DefaultTenant = "default"

// TenantSource resolves tenant names to providers. It is the multi-tenancy
// seam: registry.Multi implements it with lazily opened per-tenant
// sub-registries under an LRU memory budget; StaticTenants pins a fixed map
// for embedded use. Implementations must be safe for concurrent use and
// should return an error (wrapped or plain) for names they cannot serve —
// the engine converts any failure into *UnknownTenantError.
//
// A returned Provider must stay usable for the duration of the request that
// resolved it even if the source later evicts the tenant: providers hand out
// immutable Pinned snapshots, so an in-flight request keeps scoring against
// its pin while the tenant's registry is closed underneath.
type TenantSource interface {
	Tenant(name string) (Provider, error)
}

// StaticTenants is a fixed tenant table, the embedded-deployment shape
// (rapid.WithTenant builds one). The zero value resolves nothing.
type StaticTenants map[string]Provider

// Tenant implements TenantSource.
func (t StaticTenants) Tenant(name string) (Provider, error) {
	p, ok := t[name]
	if !ok {
		return nil, &UnknownTenantError{Tenant: name}
	}
	return p, nil
}
