package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rerank"
)

// BatchConfig bounds the micro-batching coalescer that sits between the
// request frontends and the scorers. Concurrent in-flight requests pinned to
// the same (scorer, version) are gathered into one ScoreBatch call, which
// amortizes the recurrence GEMMs that dominate inference cost.
type BatchConfig struct {
	// MaxBatch is the most instances one dispatched batch may carry
	// (default 16). 1 disables coalescing: every request scores alone.
	MaxBatch int
	// MaxWait is the longest a request waits for batch-mates before its
	// partial batch dispatches anyway (default 2ms). A request therefore
	// never sits in the coalescer past MaxWait — its worst case is
	// MaxWait + its own scoring time, still bounded by the Budget deadline.
	MaxWait time.Duration
	// Workers is the number of scoring worker goroutines draining dispatched
	// batches (default max(2, GOMAXPROCS)).
	Workers int
}

// scoreJob is one instance waiting to be scored. done is buffered so the
// worker's delivery never blocks on a departed waiter; ownsSlot marks jobs
// whose MaxInFlight slot must be released when scoring truly ends (single
// requests own one slot each; batch-envelope items share the envelope's
// slot, which the envelope path releases itself).
type scoreJob struct {
	ctx      context.Context
	inst     *rerank.Instance
	pin      Pinned
	done     chan scoreOutcome
	ownsSlot bool
	// key identifies this request's encoded user state in the engine's state
	// cache; hasKey is set only when the cache is enabled and the pinned
	// scorer can consume states (so workers never hash or look up in vain).
	key    StateKey
	hasKey bool
}

// diversifierNamer is the metric-labeling hook a weightless diversifier
// scorer (internal/diversify.Scorer) implements: the bare registry name
// ("mmr", "window", …) that labels its rapid_diversifier_* series.
type diversifierNamer interface{ DiversifierName() string }

// batchKey groups coalesced jobs: only requests pinned to the same scorer
// instance and version label may share a batch, so a canary/candidate split
// or a mid-flight promote can never mix models inside one ScoreBatch call.
type batchKey struct {
	scorer  Scorer
	version string
}

// comparableScorer reports whether s's dynamic type supports ==, the
// precondition for using it in a batchKey (map key / group comparison). A
// user-supplied scorer with slice, map or func fields fails this; such
// scorers score unbatched instead of panicking in the coalescer.
func comparableScorer(s Scorer) bool {
	t := reflect.TypeOf(s)
	return t != nil && t.Comparable()
}

type pendingBatch struct {
	jobs  []*scoreJob
	timer *time.Timer
}

// coalescer gathers in-flight scoring jobs into batches and hands them to a
// worker pool. The Engine owns exactly one coalescer for its whole life;
// workers start lazily on first submission and stop when Close is called.
// An engine used without Close (short-lived tests) leaves the bounded
// worker pool parked, which is harmless.
type coalescer struct {
	e        *Engine
	dispatch chan []*scoreJob // nil element = worker stop sentinel

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
	closed  bool

	started sync.Once
	wg      sync.WaitGroup
}

func newCoalescer(e *Engine) *coalescer {
	buf := e.cfg.MaxInFlight + 4*e.cfg.Batch.Workers + 16
	return &coalescer{
		e:        e,
		pending:  make(map[batchKey]*pendingBatch),
		dispatch: make(chan []*scoreJob, buf),
	}
}

func (c *coalescer) start() {
	c.started.Do(func() {
		for i := 0; i < c.e.cfg.Batch.Workers; i++ {
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				for jobs := range c.dispatch {
					if jobs == nil {
						return
					}
					c.e.runBatch(jobs)
				}
			}()
		}
	})
}

// submit enqueues one single-request job (which owns its MaxInFlight slot)
// and returns its result channel. When the engine is effectively idle — at
// most this request holds a scoring slot — there are no batch-mates worth
// waiting for, so the job dispatches immediately; the idle fast path keeps
// single-request latency at the pre-batching baseline.
func (c *coalescer) submit(ctx context.Context, pin Pinned, inst *rerank.Instance) <-chan scoreOutcome {
	return c.submitJob(&scoreJob{ctx: ctx, inst: inst, pin: pin, done: make(chan scoreOutcome, 1), ownsSlot: true})
}

// submitJob is submit for a caller-built job (the rerank path attaches a
// state-cache key before submitting).
func (c *coalescer) submitJob(j *scoreJob) <-chan scoreOutcome {
	c.start()
	pin := j.pin
	if c.e.cfg.Batch.MaxBatch <= 1 || len(c.e.sem) <= 1 || !comparableScorer(pin.Scorer) {
		c.dispatch <- []*scoreJob{j}
		return j.done
	}
	key := batchKey{scorer: pin.Scorer, version: pin.Version}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.dispatch <- []*scoreJob{j}
		return j.done
	}
	pb := c.pending[key]
	if pb == nil {
		pb = &pendingBatch{}
		c.pending[key] = pb
		pb.timer = time.AfterFunc(c.e.cfg.Batch.MaxWait, func() { c.flush(key, pb) })
	}
	pb.jobs = append(pb.jobs, j)
	var ready []*scoreJob
	if len(pb.jobs) >= c.e.cfg.Batch.MaxBatch {
		delete(c.pending, key)
		pb.timer.Stop()
		ready = pb.jobs
	}
	c.mu.Unlock()
	if ready != nil {
		c.dispatch <- ready
	}
	return j.done
}

// flush dispatches a partial batch when its MaxWait timer fires. The
// pointer-identity check drops stale timers whose batch already dispatched
// full (a new pending batch may live under the same key by then).
func (c *coalescer) flush(key batchKey, pb *pendingBatch) {
	c.mu.Lock()
	if c.pending[key] != pb {
		c.mu.Unlock()
		return
	}
	delete(c.pending, key)
	jobs := pb.jobs
	c.mu.Unlock()
	c.dispatch <- jobs
}

// enqueue hands a pre-grouped batch straight to the worker pool — the
// batch path already holds a whole envelope, so coalescing would only add
// wait.
func (c *coalescer) enqueue(jobs []*scoreJob) {
	c.start()
	c.dispatch <- jobs
}

// close flushes every pending batch and stops the workers after the queue
// drains. Called by Engine.Close once the frontends have stopped
// submitting.
func (c *coalescer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var stale [][]*scoreJob
	for key, pb := range c.pending {
		pb.timer.Stop()
		stale = append(stale, pb.jobs)
		delete(c.pending, key)
	}
	c.mu.Unlock()
	for _, jobs := range stale {
		c.dispatch <- jobs
	}
	c.started.Do(func() {}) // a never-started pool has nothing to stop
	for i := 0; i < c.e.cfg.Batch.Workers; i++ {
		c.dispatch <- nil
	}
	c.wg.Wait()
}

// runBatch scores one dispatched batch on a worker goroutine: jobs whose
// context already ended finish early without scoring, fault injection runs
// per job, live jobs score in one pass, and results (or the batch-wide
// error) fan back to each job's waiter.
//
// The filtered slices are fresh allocations, never compactions of jobs:
// the batch path enqueues subslices of a jobs array it keeps ranging over
// to collect results, so writing into jobs' backing array here would race
// with the envelope path and shift its job pointers.
func (e *Engine) runBatch(jobs []*scoreJob) {
	live := make([]*scoreJob, 0, len(jobs))
	for _, j := range jobs {
		if err := j.ctx.Err(); err != nil {
			e.finish(j, scoreOutcome{err: err})
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	n := len(live)
	e.met.BatchSize.Observe(float64(n))
	e.met.Inflight.Add(float64(n))
	sstart := time.Now()
	// Fault injection counts as part of scoring: a request degraded by
	// BeforeScore still lands in the scoring histogram and the in-flight
	// gauge, exactly as it did when each request scored on its own goroutine.
	var faulted []*scoreJob
	var fouts []scoreOutcome
	pass := make([]*scoreJob, 0, len(live))
	for _, j := range live {
		if out := e.beforeScore(j); out.err != nil {
			faulted = append(faulted, j)
			fouts = append(fouts, out)
			continue
		}
		pass = append(pass, j)
	}
	var outs []scoreOutcome
	if len(pass) > 0 {
		outs = e.scoreJobs(pass)
		// The post-scoring fault seam runs inside the timing window: injected
		// response latency lands in the scoring histogram exactly as a truly
		// slow forward pass would.
		for i, j := range pass {
			outs[i] = e.afterScore(j, outs[i])
		}
	}
	elapsed := time.Since(sstart)
	for i := 0; i < n; i++ {
		// Observed to true completion: a deadline-abandoned pass still lands
		// its real latency here, which is what the tail of this histogram is
		// for. Every batched job shares the batch's wall-clock cost.
		e.met.Scoring.ObserveDuration(elapsed)
	}
	e.met.Inflight.Add(float64(-n))
	// Per-diversifier serving metrics: jobs pinned to a classic diversifier
	// version land in the rapid_diversifier_* family, labeled with the
	// registry name, so canary/shadow dashboards can compare heuristics
	// against model versions series-by-series.
	for i, j := range pass {
		dn, ok := j.pin.Scorer.(diversifierNamer)
		if !ok || outs[i].err != nil {
			continue
		}
		name := dn.DiversifierName()
		e.met.DivRequests.With(name).Inc()
		e.met.DivItems.With(name).Add(int64(j.inst.L()))
		e.met.DivLatency.With(name).ObserveDuration(elapsed)
	}
	for i, j := range faulted {
		e.finish(j, fouts[i])
	}
	for i, j := range pass {
		e.finish(j, outs[i])
	}
	e.shadowFanout(pass, outs)
}

// beforeScore runs the fault-injection seam for one job, recovering
// injected panics so they degrade only that job's response.
func (e *Engine) beforeScore(j *scoreJob) (out scoreOutcome) {
	f := e.Faults
	if f == nil {
		return scoreOutcome{}
	}
	defer func() {
		if p := recover(); p != nil {
			e.met.Panics.Inc()
			e.Log("engine: recovered scoring panic: %v", p)
			out = scoreOutcome{err: fmt.Errorf("scoring panic: %v", p), panicked: true}
		}
	}()
	if err := f.BeforeScore(j.ctx, j.inst); err != nil {
		return scoreOutcome{err: err}
	}
	return scoreOutcome{}
}

// afterScore runs the post-scoring fault seam for one successfully scored
// job, recovering injected panics so they degrade only that job's response.
// Jobs that already failed pass through untouched.
func (e *Engine) afterScore(j *scoreJob, in scoreOutcome) (out scoreOutcome) {
	out = in
	as, ok := e.Faults.(AfterScoreInjector)
	if !ok || in.err != nil {
		return out
	}
	defer func() {
		if p := recover(); p != nil {
			e.met.Panics.Inc()
			e.Log("engine: recovered post-scoring panic: %v", p)
			out = scoreOutcome{err: fmt.Errorf("post-scoring panic: %v", p), panicked: true}
		}
	}()
	if err := as.AfterScore(j.ctx, j.inst, out.scores); err != nil {
		return scoreOutcome{err: err}
	}
	return out
}

// scoreJobs produces one outcome per job. A single job scores under its own
// request context (full per-request cancellation); a multi-job batch scores
// through BatchScorer when available, under a context detached from the
// individual requests (one client disconnecting must not cancel its
// batch-mates) but bounded by the latest member deadline. Scorers without
// ScoreBatch fall back to a per-job loop.
func (e *Engine) scoreJobs(jobs []*scoreJob) (outs []scoreOutcome) {
	outs = make([]scoreOutcome, len(jobs))
	landed := 0
	defer func() {
		if p := recover(); p != nil {
			e.met.Panics.Inc()
			e.Log("engine: recovered scoring panic: %v", p)
			out := scoreOutcome{err: fmt.Errorf("scoring panic: %v", p), panicked: true}
			for i := landed; i < len(outs); i++ {
				outs[i] = out
			}
		}
	}()
	scorer := jobs[0].pin.Scorer
	if ss, ok := scorer.(StateScorer); ok && e.stateCache != nil {
		return e.scoreJobsStates(ss, jobs, outs, &landed)
	}
	if bs, ok := scorer.(BatchScorer); ok && len(jobs) > 1 {
		insts := make([]*rerank.Instance, len(jobs))
		for i, j := range jobs {
			insts[i] = j.inst
		}
		bctx, cancel := batchContext(jobs)
		res, err := bs.ScoreBatch(bctx, insts)
		cancel()
		if err == nil && len(res) != len(jobs) {
			err = fmt.Errorf("scorer %s returned %d score sets for %d instances", scorer.Name(), len(res), len(jobs))
		}
		if err != nil {
			for i := range outs {
				outs[i] = scoreOutcome{err: err}
			}
		} else {
			for i := range outs {
				outs[i] = scoreOutcome{scores: res[i]}
			}
		}
		landed = len(outs)
		return outs
	}
	for i, j := range jobs {
		scores, err := scorer.Score(j.ctx, j.inst)
		outs[i] = scoreOutcome{scores: scores, err: err}
		landed = i + 1
	}
	return outs
}

// scoreJobsStates is the repeat-user fast path: jobs carrying a state-cache
// key look up their encoded user state first, and the batch scores through
// ScoreBatchStates so hits skip the preference pass entirely. Fresh states
// come back from the same call and are installed for the next request — the
// cache fills from scoring work the engine already paid for, never from
// extra encoding passes. Runs for single jobs too (under the job's own
// request context, preserving per-request cancellation); a batch uses the
// detached latest-deadline context like the plain batch path.
//
// Called under scoreJobs's recover, with its outs/landed so a scorer panic
// degrades the jobs exactly as on the uncached path.
func (e *Engine) scoreJobsStates(ss StateScorer, jobs []*scoreJob, outs []scoreOutcome, landed *int) []scoreOutcome {
	insts := make([]*rerank.Instance, len(jobs))
	states := make([]*core.UserState, len(jobs))
	for i, j := range jobs {
		insts[i] = j.inst
		if j.hasKey {
			states[i], _ = e.stateCache.Get(j.key)
		}
	}
	bctx, cancel := jobs[0].ctx, func() {}
	if len(jobs) > 1 {
		bctx, cancel = batchContext(jobs)
	}
	res, used, err := ss.ScoreBatchStates(bctx, insts, states)
	cancel()
	if err == nil && len(res) != len(jobs) {
		err = fmt.Errorf("scorer %s returned %d score sets for %d instances", ss.Name(), len(res), len(jobs))
	}
	if err != nil {
		for i := range outs {
			outs[i] = scoreOutcome{err: err}
		}
	} else {
		for i := range outs {
			outs[i] = scoreOutcome{scores: res[i]}
		}
		// Install only fresh misses: a hit's entry is already resident (Get
		// bumped its recency), and used is nil for diversity-free models,
		// which have no state worth caching.
		for i, j := range jobs {
			if j.hasKey && states[i] == nil && i < len(used) && used[i] != nil {
				e.stateCache.Put(j.key, used[i])
			}
		}
	}
	*landed = len(outs)
	return outs
}

// batchContext derives the shared scoring context for a multi-request
// batch: the latest member deadline, or no deadline if any member has none.
func batchContext(jobs []*scoreJob) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, j := range jobs {
		d, ok := j.ctx.Deadline()
		if !ok {
			return context.WithCancel(context.Background())
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// finish delivers a job's outcome and releases its scoring slot if it owns
// one. Exactly one finish per job: the buffered done channel makes delivery
// non-blocking even when the waiter already gave up on its deadline.
func (e *Engine) finish(j *scoreJob, out scoreOutcome) {
	j.done <- out
	if j.ownsSlot {
		<-e.sem
	}
}

// shadowFanout forwards successfully scored jobs to their pins' shadow
// hooks, grouping contiguous runs that shadow the same candidate version so
// shadow scoring reuses the batch shape instead of re-splitting per item.
func (e *Engine) shadowFanout(jobs []*scoreJob, outs []scoreOutcome) {
	for i := 0; i < len(jobs); {
		j := jobs[i]
		if j.pin.ShadowBatch == nil || outs[i].err != nil {
			i++
			continue
		}
		insts := []*rerank.Instance{j.inst}
		scores := [][]float64{outs[i].scores}
		k := i + 1
		for k < len(jobs) && jobs[k].pin.ShadowBatch != nil && outs[k].err == nil &&
			jobs[k].pin.ShadowVersion == j.pin.ShadowVersion {
			insts = append(insts, jobs[k].inst)
			scores = append(scores, outs[k].scores)
			k++
		}
		// Off-path shadow scoring: submit and move on; the shadow pool sheds
		// under pressure rather than delaying responses.
		j.pin.ShadowBatch(insts, scores)
		i = k
	}
}
