package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/topics"
)

// MaxDim caps every geometry dimension a manifest may declare. The paper's
// grid tops out at hidden size 64 and 23 topics; a five-digit dimension is a
// corrupt or hostile manifest, and building it would allocate gigabytes
// before the weights load could fail. Startup is the place to reject it.
const MaxDim = 4096

// Manifest describes a saved model so a server can rebuild the architecture
// before loading weights. rapidtrain writes it alongside the weights file;
// rapidserve reads it back. Metrics carries the training run's held-out
// evaluation for operator sanity checks.
type Manifest struct {
	Dataset string             `json:"dataset"`
	Lambda  float64            `json:"lambda"`
	Config  core.Config        `json:"config"`
	Metrics map[string]float64 `json:"Metrics,omitempty"`

	// Diversifier, when non-empty, marks a weightless version: instead of
	// loading model weights the server instantiates the named classic
	// diversifier (internal/diversify) at DiversifierLambda. The Config
	// geometry still describes the surface the version serves, so warm-up
	// validation and request shaping work unchanged.
	Diversifier       string  `json:"diversifier,omitempty"`
	DiversifierLambda float64 `json:"diversifier_lambda,omitempty"`
}

// ManifestPath derives the manifest's path from the weights path
// (model.gob → model.json).
func ManifestPath(modelPath string) string {
	return strings.TrimSuffix(modelPath, ".gob") + ".json"
}

// ValidateConfig rejects a manifest config the model constructor would
// panic on or that could never describe a servable model. Startup is the
// place to fail: a bad geometry discovered at the first request takes the
// serving chain down with it.
func ValidateConfig(cfg core.Config) error {
	switch {
	case cfg.UserDim <= 0:
		return fmt.Errorf("UserDim %d must be positive", cfg.UserDim)
	case cfg.ItemDim <= 0:
		return fmt.Errorf("ItemDim %d must be positive", cfg.ItemDim)
	case cfg.Topics <= 0:
		return fmt.Errorf("Topics %d must be positive", cfg.Topics)
	case cfg.Hidden <= 0:
		return fmt.Errorf("Hidden %d must be positive", cfg.Hidden)
	case cfg.D <= 0:
		return fmt.Errorf("D %d must be positive", cfg.D)
	case cfg.UserDim > MaxDim, cfg.ItemDim > MaxDim, cfg.Topics > MaxDim,
		cfg.Hidden > MaxDim, cfg.D > MaxDim:
		return fmt.Errorf("geometry (%d,%d,%d,%d,%d) exceeds the %d dimension cap",
			cfg.UserDim, cfg.ItemDim, cfg.Topics, cfg.Hidden, cfg.D, MaxDim)
	}
	if cfg.Output != core.Deterministic && cfg.Output != core.Probabilistic {
		return fmt.Errorf("unknown output mode %d", cfg.Output)
	}
	if cfg.Encoder != core.BiLSTMEncoder && cfg.Encoder != core.TransformerEncoder {
		return fmt.Errorf("unknown list encoder %d", cfg.Encoder)
	}
	if cfg.Agg != core.LSTMAgg && cfg.Agg != core.MeanAgg {
		return fmt.Errorf("unknown topic aggregator %d", cfg.Agg)
	}
	if cfg.Encoder == core.TransformerEncoder && cfg.Heads <= 0 {
		return fmt.Errorf("transformer encoder needs Heads > 0, got %d", cfg.Heads)
	}
	if _, err := topics.DiversityFunctionByName(cfg.DiversityFn); err != nil {
		return err
	}
	return nil
}

// LoadModel reads the manifest next to modelPath, validates its geometry,
// rebuilds the architecture and loads the weights strictly: every model
// parameter must be present in the weights file with a matching shape. Any
// disagreement between weights and manifest is a startup error with the
// offending parameter named — never a panic (or silently random weights) at
// the first request.
func LoadModel(modelPath string) (*core.Model, Manifest, error) {
	mf, err := os.Open(ManifestPath(modelPath))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("open manifest: %w", err)
	}
	defer mf.Close()
	man, err := DecodeManifest(mf)
	if err != nil {
		return nil, man, fmt.Errorf("manifest %s: %w", ManifestPath(modelPath), err)
	}
	m, err := buildModel(man.Config)
	if err != nil {
		return nil, man, err
	}
	wf, err := os.Open(modelPath)
	if err != nil {
		return nil, man, fmt.Errorf("open model: %w", err)
	}
	defer wf.Close()
	if err := m.ParamSet().LoadStrict(wf); err != nil {
		return nil, man, fmt.Errorf("weights %s disagree with manifest config: %w", modelPath, err)
	}
	return m, man, nil
}

// DecodeManifest is the manifest parsing stage LoadModel runs before
// touching any weights: JSON decode plus geometry validation. It is split
// out so the fuzz harness (FuzzManifest) can drive arbitrary bytes through
// exactly the code a hostile manifest would reach, without building models.
func DecodeManifest(r io.Reader) (Manifest, error) {
	var man Manifest
	if err := json.NewDecoder(r).Decode(&man); err != nil {
		return man, fmt.Errorf("decode manifest: %w", err)
	}
	if err := ValidateConfig(man.Config); err != nil {
		return man, fmt.Errorf("invalid model config: %w", err)
	}
	if man.Diversifier != "" && !diversify.Known(man.Diversifier) {
		return man, fmt.Errorf("unknown diversifier %q", man.Diversifier)
	}
	return man, nil
}

// ReadManifest reads and validates the manifest next to modelPath without
// touching weights — callers that only need the declared geometry (publishing
// a diversifier version for an existing surface) stop here.
func ReadManifest(modelPath string) (Manifest, error) {
	mf, err := os.Open(ManifestPath(modelPath))
	if err != nil {
		return Manifest{}, fmt.Errorf("open manifest: %w", err)
	}
	defer mf.Close()
	man, err := DecodeManifest(mf)
	if err != nil {
		return man, fmt.Errorf("manifest %s: %w", ManifestPath(modelPath), err)
	}
	return man, nil
}

// LoadScorer is the version-agnostic load path the registry uses: it reads
// the manifest and returns either the neural model (LoadModel) or, when the
// manifest names a diversifier, the weightless diversify adapter. Both come
// back behind the same Scorer seam, so everything downstream — warm-up,
// canary, shadow, batching, metrics — treats a classic heuristic exactly
// like a learned model version.
func LoadScorer(modelPath string) (Scorer, Manifest, error) {
	man, err := ReadManifest(modelPath)
	if err != nil {
		return nil, man, err
	}
	if man.Diversifier != "" {
		ds, err := diversify.NewScorer(man.Diversifier, man.DiversifierLambda)
		if err != nil {
			return nil, man, err
		}
		return ds, man, nil
	}
	m, man, err := LoadModel(modelPath)
	if err != nil {
		return nil, man, err
	}
	return m, man, nil
}

// WriteManifestFileAtomic writes a manifest with the same atomic discipline
// as the weights (temp file, fsync, rename, fsync the directory): the
// (weights, manifest) pair on disk is only ever replaced by a complete file,
// never observed half-written by a concurrently starting server, and the
// rename survives a crash. rapidtrain and the registry store both publish
// through this.
func WriteManifestFileAtomic(path string, man Manifest) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("manifest temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err = enc.Encode(man); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("open dir for sync: %w", err)
	}
	defer d.Close()
	return d.Sync()
}

// buildModel constructs the architecture, converting any constructor panic
// (core.New panics on configs it cannot build) into an error.
func buildModel(cfg core.Config) (m *core.Model, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("build model from manifest config: %v", p)
		}
	}()
	return core.New(cfg), nil
}
