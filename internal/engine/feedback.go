package engine

import (
	"errors"
	"fmt"
)

// MaxRequestIDLen caps the request_id echoed in feedback events; engine-issued
// ids are far shorter, so anything longer is a hostile or corrupted client.
const MaxRequestIDLen = 128

// FeedbackEvent is one observed outcome for a previously served re-rank
// response, transport-neutral (the HTTP frontend decodes it from POST
// /v1/feedback). Items is the displayed order (normally the response's
// Ranked); Clicks is aligned with Items and may be shorter (missing
// positions are skips). An event with no true click is an impression —
// skip/abandon signal matters to the click model too.
type FeedbackEvent struct {
	// RequestID echoes the request_id of the rerank response the event
	// reports on; the ingestor joins it back to the served (route, version).
	RequestID string `json:"request_id"`
	Items     []int  `json:"items"`
	Clicks    []bool `json:"clicks,omitempty"`
	// ModelVersion optionally echoes the response's model_version; the
	// server-side correlation wins when both are present (the client copy is
	// advisory and unauthenticated).
	ModelVersion string `json:"model_version,omitempty"`
}

// FeedbackSink is the seam between the scoring data plane and the feedback
// subsystem (internal/feedback implements it). Both methods are called on
// the request path and must not block: Track records which (route, version)
// a response was served from, Submit enqueues an ingested event and reports
// ErrFeedbackBusy when the bounded ingest queue is full — frontends shed the
// event (HTTP 429), mirroring the rerank backpressure contract.
type FeedbackSink interface {
	Track(requestID string, route uint64, version string)
	Submit(ev FeedbackEvent) error
}

// ErrFeedbackBusy is returned by FeedbackSink.Submit when the ingest queue
// is full; frontends shed the event with their retryable-error shape.
var ErrFeedbackBusy = errors.New("feedback ingest queue full")

// Validate applies the wire-level invariants shared by the HTTP handler and
// the decode fuzz target.
func (ev *FeedbackEvent) Validate() error {
	switch {
	case ev.RequestID == "":
		return fmt.Errorf("request_id is required")
	case len(ev.RequestID) > MaxRequestIDLen:
		return fmt.Errorf("request_id exceeds %d bytes", MaxRequestIDLen)
	case len(ev.Items) == 0:
		return fmt.Errorf("items is required")
	case len(ev.Items) > MaxListLength:
		return fmt.Errorf("event has %d items, limit is %d", len(ev.Items), MaxListLength)
	case len(ev.Clicks) > len(ev.Items):
		return fmt.Errorf("clicks has %d entries for %d items", len(ev.Clicks), len(ev.Items))
	}
	return nil
}
