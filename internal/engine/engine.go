// Package engine is the transport-neutral scoring engine for a trained
// RAPID model (and for the weightless diversifier suite served through the
// same seam). The paper's efficiency analysis (Section V-B) positions
// re-ranking as a stage inside an industrial response budget (~50 ms); a
// stage in that position must degrade, shed or drain — never stall or crash
// the chain it sits in. The engine therefore enforces, per request:
//
//   - a scoring deadline (Config.Budget) with graceful degradation: on
//     overrun, scoring error or recovered scoring panic the response falls
//     back to the initial-ranker ordering and is marked "degraded" instead
//     of erroring;
//   - bounded concurrency: a semaphore with a bounded queue wait sheds
//     excess load (*ShedError) rather than queueing unboundedly;
//   - micro-batching: concurrent in-flight requests pinned to the same
//     (scorer, version) coalesce into one ScoreBatch call;
//   - an optional encoded user-state cache (the repeat-user fast path);
//   - multi-tenancy: a request may name a resident tenant scorer
//     (Config.Tenants), with per-tenant quotas and metrics.
//
// The engine knows nothing about HTTP: frontends (internal/serve for JSON
// over HTTP, internal/serve/binproto for the length-prefixed binary
// protocol) decode their wire format into Request, call Rerank/RerankBatch,
// and map the typed errors (*BadInputError, *ShedError,
// *UnknownTenantError, ErrCanceled) onto their protocol's status shapes.
// Every hot-path event lands in an internal/obs registry shared with the
// frontends.
//
// The engine scores through a Provider — a per-request (model, manifest,
// version) pin — so a model lifecycle layer (internal/registry) can swap,
// canary and shadow versions underneath live traffic; NewStatic wraps a
// fixed model in a static provider for the single-model shape.
package engine

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rerank"
)

// Config bounds the engine's resource envelope. The zero value is usable:
// every field falls back to the listed default.
type Config struct {
	// Budget is the per-request scoring deadline (default 50ms, the
	// industrial response budget of Section V-B). On overrun the request
	// degrades to the initial-ranker ordering.
	Budget time.Duration
	// MaxInFlight bounds concurrently executing scoring passes (default
	// 4×GOMAXPROCS). Scoring is CPU-bound; admitting more than a small
	// multiple of the cores only grows tail latency.
	MaxInFlight int
	// QueueWait is how long an admission may wait for a scoring slot before
	// the request is shed (default 10ms).
	QueueWait time.Duration
	// DrainTimeout is the graceful-shutdown window frontends advertise in
	// draining sheds' Retry-After hints (default 10s).
	DrainTimeout time.Duration
	// Registry receives the engine's metrics; nil means a private registry
	// (read it back with Engine.Registry). Passing one lets a process share
	// a single /metrics namespace across subsystems.
	Registry *obs.Registry
	// Batch bounds the micro-batching coalescer; see BatchConfig. The zero
	// value enables batching with the defaults (16 / 2ms); set MaxBatch to 1
	// to score strictly per request.
	Batch BatchConfig
	// StateCacheBytes is the memory budget for the encoded user-state cache
	// (the repeat-user fast path). 0, the default, disables the cache. The
	// cache only engages for scorers implementing StateScorer; wire
	// Engine.FlushStateCache to the model lifecycle (Registry.SetOnSwap) so a
	// promote or rollback can never serve a stale state.
	StateCacheBytes int64
	// Feedback, when set, receives a Track call correlating every rerank
	// response's request_id to its served (route, version) pair. Frontends
	// additionally route submitted feedback events to the same sink. nil
	// disables correlation; responses still carry request ids either way.
	Feedback FeedbackSink
	// Tenants resolves the Request.Tenant field to additional resident
	// providers. nil (the default) rejects every named tenant; requests with
	// an empty tenant always go to the engine's own provider.
	Tenants TenantSource
	// TenantMaxInFlight, when positive, bounds concurrently admitted
	// single-rerank requests per tenant (the default tenant included).
	// Saturation sheds with reason ShedTenantQuota instead of queueing, so
	// one hot tenant cannot occupy every scoring slot. Batch envelopes are
	// bounded by MaxInFlight/MaxBatchRequests only.
	TenantMaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 50 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Batch.MaxBatch <= 0 {
		c.Batch.MaxBatch = 16
	}
	if c.Batch.MaxWait <= 0 {
		c.Batch.MaxWait = 2 * time.Millisecond
	}
	if c.Batch.Workers <= 0 {
		c.Batch.Workers = max(2, runtime.GOMAXPROCS(0))
	}
	return c
}

// Stats are the engine's operational counters. The same numbers back the
// /metrics exposition: both views read the one set of registry atomics, so
// they can never disagree.
type Stats struct {
	Requests  int64 `json:"requests"`
	Degraded  int64 `json:"degraded"`
	Shed      int64 `json:"shed"`
	Panics    int64 `json:"panics_recovered"`
	BadInput  int64 `json:"bad_input"`
	Responses int64 `json:"responses_ok"`
}

// Shed reasons, exported so a fleet router can match the X-Shed-Reason
// header without restating the strings. A backpressure shed means "come
// back shortly — a slot will free"; a draining shed means "this replica is
// going away — re-route, do not retry here"; a tenant-quota shed means
// "this tenant's own concurrency bound is saturated".
const (
	ShedBackpressure = "backpressure"
	ShedDraining     = "draining"
	ShedTenantQuota  = "tenant_quota"
)

// MaxBatchRequests caps the instances one RerankBatch call may carry. The
// batch is admitted as one unit against MaxInFlight; an unbounded envelope
// would let a single caller monopolize the scoring pool.
const MaxBatchRequests = 64

// Engine owns the scoring data plane behind a transport-neutral API.
type Engine struct {
	cfg        Config
	provider   Provider
	sem        chan struct{}
	draining   atomic.Bool
	reg        *obs.Registry
	met        *Metrics
	batch      *coalescer
	stateCache *StateCache // nil when Config.StateCacheBytes == 0
	idPrefix   string      // per-process request-id prefix
	reqSeq     atomic.Uint64

	tenantMu   sync.Mutex
	tenantSems map[string]chan struct{} // per-tenant quota, lazily created

	// Faults is the chaos-testing seam; nil in production.
	Faults FaultInjector
	// Log receives operational messages; defaults to log.Printf.
	Log func(format string, args ...any)
}

// NewStatic wraps a single fixed scorer as an engine. man.Config must
// describe the scorer's instance geometry (it validates incoming requests).
// For hot-swappable versions use New with a Provider.
func NewStatic(model Scorer, man Manifest, cfg Config) *Engine {
	return New(staticProvider{pin: Pinned{Scorer: model, Manifest: man}}, cfg)
}

// New builds an engine that asks p for the (model, manifest, version)
// triple of every request — the deployment shape where a registry swaps,
// canaries and shadows model versions underneath live traffic.
func New(p Provider, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:        cfg,
		provider:   p,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		reg:        reg,
		met:        NewMetrics(reg),
		idPrefix:   newIDPrefix(),
		tenantSems: make(map[string]chan struct{}),
		Log:        log.Printf,
	}
	e.batch = newCoalescer(e)
	if cfg.StateCacheBytes > 0 {
		e.stateCache = newStateCache(cfg.StateCacheBytes, e.met)
	}
	e.met.MatWorkers.Set(float64(mat.Workers()))
	return e
}

// Registry exposes the engine's metric registry so a binary can add its own
// metrics to the same /metrics namespace.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Metrics exposes the engine's metric set so frontends can account their
// own pre-engine failures (decode errors, oversized bodies) in the same
// counters the dashboards read.
func (e *Engine) Metrics() *Metrics { return e.met }

// Provider exposes the engine's default-tenant provider (health surfaces
// report its active pin).
func (e *Engine) Provider() Provider { return e.provider }

// Budget reports the per-request scoring deadline after defaulting.
func (e *Engine) Budget() time.Duration { return e.cfg.Budget }

// DrainWindow reports the configured drain timeout after defaulting.
func (e *Engine) DrainWindow() time.Duration { return e.cfg.DrainTimeout }

// FeedbackSink reports the configured feedback sink (nil when unset).
func (e *Engine) FeedbackSink() FeedbackSink { return e.cfg.Feedback }

// SetDraining flips the engine's drain flag. A draining engine finishes
// what it admitted but sheds everything new with reason ShedDraining, so a
// fleet router re-routes now and stops retrying a replica that is going
// away.
func (e *Engine) SetDraining(v bool) { e.draining.Store(v) }

// Draining reports whether the engine is refusing new work.
func (e *Engine) Draining() bool { return e.draining.Load() }

// Close flushes the coalescer's pending batches and stops the scoring
// workers. Call it after every frontend has stopped submitting (an HTTP
// frontend calls it once Shutdown returns). Idempotent.
func (e *Engine) Close() { e.batch.close() }

// newIDPrefix draws the per-process request-id prefix. Randomness makes ids
// unique across replicas and restarts without coordination; crypto/rand
// failure (no entropy device) falls back to a pid-free constant — ids are
// then unique only within the process, which the correlation table is.
func newIDPrefix() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "local"
	}
	return hex.EncodeToString(b[:])
}

// newRequestID issues the response's request_id: process prefix + sequence.
// Cheap (one atomic add, one small allocation) because every response pays
// it; the id is opaque to clients — its only contract is echoing it back in
// feedback events.
func (e *Engine) newRequestID() string {
	return e.idPrefix + "-" + strconv.FormatUint(e.reqSeq.Add(1), 36)
}

// Stats snapshots the operational counters from the metric registry. Each
// field is one atomic load; the struct is a consistent-enough scrape (see
// the obs package comment), and every field is individually exact.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:  e.met.Requests.Value(),
		Degraded:  e.met.Degraded.Total(),
		Shed:      e.met.Shed.Total(),
		Panics:    e.met.Panics.Value(),
		BadInput:  e.met.BadInput.Value(),
		Responses: e.met.ResponsesOK.Value(),
	}
}

// RetryAfterS derives a backpressure backoff hint (in whole seconds) from
// current pressure instead of a constant: an idle-but-bursty engine
// suggests 1s, a saturated one up to 4s, and ±1s of jitter spreads the
// retries of a shed wave so the clients do not come back in lockstep and
// shed again.
func (e *Engine) RetryAfterS() int {
	base := 1 + (3*len(e.sem))/cap(e.sem)
	sec := base + rand.IntN(3) - 1
	if sec < 1 {
		sec = 1
	}
	return sec
}

// shed accounts a refused request and builds its typed error. tenant labels
// tenant-quota sheds only.
func (e *Engine) shed(reason, tenant string) *ShedError {
	e.met.Responses.With("shed").Inc()
	switch reason {
	case ShedDraining:
		e.met.ShedDrain.Inc()
		return &ShedError{Reason: reason, RetryAfterS: max(1, int(e.cfg.DrainTimeout/time.Second))}
	case ShedTenantQuota:
		e.met.Shed.With(ShedTenantQuota).Inc()
		e.met.TenantShed.With(tenant).Inc()
		return &ShedError{Reason: reason, RetryAfterS: e.RetryAfterS()}
	default:
		e.met.ShedBack.Inc()
		return &ShedError{Reason: ShedBackpressure, RetryAfterS: e.RetryAfterS()}
	}
}

// shedReason classifies a queue-wait shed: a drain that began while the
// request waited for a slot is a draining shed (the slot will never free for
// new work), anything else is ordinary backpressure.
func (e *Engine) shedReason() string {
	if e.draining.Load() {
		return ShedDraining
	}
	return ShedBackpressure
}

// providerFor resolves a request's tenant field to (metric label, provider).
func (e *Engine) providerFor(name string) (string, Provider, error) {
	if name == "" {
		return DefaultTenant, e.provider, nil
	}
	if e.cfg.Tenants == nil {
		return name, nil, &UnknownTenantError{Tenant: name}
	}
	p, err := e.cfg.Tenants.Tenant(name)
	if err != nil {
		var ut *UnknownTenantError
		if errors.As(err, &ut) {
			return name, nil, err
		}
		return name, nil, &UnknownTenantError{Tenant: name, Cause: err}
	}
	return name, p, nil
}

// tenantAcquire takes the tenant's quota slot (when quotas are configured).
// Non-blocking: a saturated tenant sheds immediately rather than queueing —
// the global QueueWait already absorbs bursts, and waiting here would let a
// hot tenant's backlog delay everyone behind it in the handler. The
// returned release covers the request's stay inside Rerank.
func (e *Engine) tenantAcquire(tenant string) (release func(), ok bool) {
	if e.cfg.TenantMaxInFlight <= 0 {
		return func() {}, true
	}
	e.tenantMu.Lock()
	sem := e.tenantSems[tenant]
	if sem == nil {
		sem = make(chan struct{}, e.cfg.TenantMaxInFlight)
		e.tenantSems[tenant] = sem
	}
	e.tenantMu.Unlock()
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, true
	default:
		return nil, false
	}
}

type scoreOutcome struct {
	scores   []float64
	err      error
	panicked bool
}

// Rerank scores one request end to end: tenant resolution, provider
// pinning, geometry validation, admission, coalesced scoring, graceful
// degradation and response labeling. It returns a typed error —
// *BadInputError, *ShedError, *UnknownTenantError or ErrCanceled — when no
// response was produced; degradation is not an error (the Response carries
// Degraded/DegradedReason instead).
func (e *Engine) Rerank(ctx context.Context, req *Request) (Response, error) {
	start := time.Now()
	e.met.Requests.Inc()
	defer func() { e.met.Request.ObserveDuration(time.Since(start)) }()

	// A draining engine finishes what it admitted but takes nothing new.
	if e.draining.Load() {
		return Response{}, e.shed(ShedDraining, "")
	}

	tenant, prov, terr := e.providerFor(req.Tenant)
	if terr != nil {
		e.met.BadInput.Inc()
		e.met.Responses.With("bad_input").Inc()
		return Response{}, terr
	}
	e.met.TenantRequests.With(tenant).Inc()

	// Pin one coherent (model, manifest, version) triple before validating:
	// the pinned version's geometry is the contract the request must meet,
	// and the same pin serves scoring and response labeling, so a version
	// swap mid-request can never mix models.
	route := RouteKey(req)
	pin := prov.Pick(route)
	inst, err := ToInstance(pin.Manifest.Config, req)
	if err != nil {
		e.met.BadInput.Inc()
		e.met.Responses.With("bad_input").Inc()
		return Response{}, badInput(err)
	}

	tenantRelease, admitted := e.tenantAcquire(tenant)
	if !admitted {
		return Response{}, e.shed(ShedTenantQuota, tenant)
	}
	defer tenantRelease()

	// Admission: wait at most QueueWait for a scoring slot, then shed. The
	// slot is released by the scoring goroutine when scoring truly ends, not
	// when Rerank returns — an abandoned (deadline-overrun) scorer still
	// occupies CPU, and only this accounting keeps the concurrency bound
	// honest.
	admit := time.NewTimer(e.cfg.QueueWait)
	defer admit.Stop()
	qstart := time.Now()
	select {
	case e.sem <- struct{}{}:
		e.met.QueueWait.ObserveDuration(time.Since(qstart))
	case <-admit.C:
		return Response{}, e.shed(e.shedReason(), tenant)
	case <-ctx.Done():
		e.met.Responses.With("canceled").Inc()
		return Response{}, ErrCanceled
	}

	// Scoring is delegated to the micro-batching coalescer: the request's
	// job either rides a coalesced batch with other in-flight requests of
	// the same (scorer, version) pin or dispatches alone when the engine is
	// idle.
	sctx, cancel := context.WithTimeout(ctx, e.cfg.Budget)
	defer cancel()
	key, hasKey := e.stateKeyFor(req, tenant, route, pin)
	done := e.batch.submitJob(&scoreJob{
		ctx: sctx, inst: inst, pin: pin,
		done: make(chan scoreOutcome, 1), ownsSlot: true,
		key: key, hasKey: hasKey,
	})

	var resp Response
	outcome := "ok"
	select {
	case out := <-done:
		if out.err != nil {
			// A caller disconnect surfaces as context.Canceled with the
			// caller context done; count it as canceled (matching the
			// admission path) and skip building a response nobody reads —
			// it is not a budget overrun.
			if errors.Is(out.err, context.Canceled) && ctx.Err() != nil {
				e.met.Responses.With("canceled").Inc()
				return Response{}, ErrCanceled
			}
			outcome = degradeReason(out)
			resp = e.degrade(inst, outcome)
		} else {
			resp = okResponse(inst, out.scores)
			e.met.ResponsesOK.Inc()
		}
	case <-sctx.Done():
		if ctx.Err() != nil {
			e.met.Responses.With("canceled").Inc()
			return Response{}, ErrCanceled
		}
		resp = e.degrade(inst, "deadline")
		outcome = "deadline"
	}
	resp.ModelVersion = pin.Version
	resp.Canary = pin.Canary
	resp.LatencyMS = float64(time.Since(start).Microseconds()) / 1000
	// The request id is issued only for responses that actually reach the
	// caller (canceled paths return above), and tracked before the response
	// is handed back so a feedback event can never race ahead of its
	// correlation entry.
	resp.RequestID = e.newRequestID()
	if e.cfg.Feedback != nil {
		e.cfg.Feedback.Track(resp.RequestID, route, pin.Version)
	}
	if pin.Observe != nil {
		pin.Observe(outcome, time.Since(start))
	}
	return resp, nil
}

// RerankBatch scores up to MaxBatchRequests independent requests as one
// envelope. Each item is pinned, validated and answered independently
// (per-item degraded flags and error strings); the envelope occupies one
// MaxInFlight slot and one Budget deadline as a whole. Envelope-level
// counters observe the request once; per-item degradations still land in
// the per-reason degraded counters. The returned slice is in request order;
// a typed error means no responses were produced at all.
func (e *Engine) RerankBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	start := time.Now()
	e.met.Requests.Inc()
	e.met.BatchRequests.Inc()
	defer func() { e.met.Request.ObserveDuration(time.Since(start)) }()

	if e.draining.Load() {
		return nil, e.shed(ShedDraining, "")
	}
	n := len(reqs)
	if n == 0 || n > MaxBatchRequests {
		e.met.BadInput.Inc()
		e.met.Responses.With("bad_input").Inc()
		return nil, badInput(fmt.Errorf("batch must carry 1..%d requests, got %d", MaxBatchRequests, n))
	}
	e.met.BatchItems.Add(int64(n))

	// Pin and validate each item independently: one malformed item (or one
	// unknown tenant) yields a per-item error, not a rejected envelope.
	pins := make([]Pinned, n)
	insts := make([]*rerank.Instance, n)
	resps := make([]Response, n)
	outcomes := make([]string, n)
	valid := 0
	routes := make([]uint64, n)
	tenants := make([]string, n)
	for i := range reqs {
		tenant, prov, terr := e.providerFor(reqs[i].Tenant)
		tenants[i] = tenant
		if terr != nil {
			e.met.BadInput.Inc()
			resps[i] = Response{Error: terr.Error()}
			continue
		}
		e.met.TenantRequests.With(tenant).Inc()
		routes[i] = RouteKey(&reqs[i])
		pins[i] = prov.Pick(routes[i])
		inst, err := ToInstance(pins[i].Manifest.Config, &reqs[i])
		if err != nil {
			e.met.BadInput.Inc()
			resps[i] = Response{Error: err.Error()}
			continue
		}
		insts[i] = inst
		valid++
	}

	if valid > 0 {
		// Admission: the whole envelope takes one scoring slot.
		admit := time.NewTimer(e.cfg.QueueWait)
		defer admit.Stop()
		qstart := time.Now()
		select {
		case e.sem <- struct{}{}:
			e.met.QueueWait.ObserveDuration(time.Since(qstart))
		case <-admit.C:
			return nil, e.shed(e.shedReason(), "")
		case <-ctx.Done():
			e.met.Responses.With("canceled").Inc()
			return nil, ErrCanceled
		}
		// Release the envelope's slot on every exit — including a panic
		// recovered by a frontend's wrapper — or one MaxInFlight slot would
		// leak until restart. The straight-line path releases the slot
		// early, before response labeling, so a slow client never holds
		// scoring capacity.
		held := true
		defer func() {
			if held {
				<-e.sem
			}
		}()
		sctx, cancel := context.WithTimeout(ctx, e.cfg.Budget)
		defer cancel()
		jobs := make([]*scoreJob, 0, valid)
		idxs := make([]int, 0, valid)
		for i := range reqs {
			if insts[i] == nil {
				continue
			}
			key, hasKey := e.stateKeyFor(&reqs[i], tenants[i], routes[i], pins[i])
			jobs = append(jobs, &scoreJob{
				ctx: sctx, inst: insts[i], pin: pins[i],
				done: make(chan scoreOutcome, 1),
				key:  key, hasKey: hasKey,
			})
			idxs = append(idxs, i)
		}
		// The envelope is already a batch in hand: enqueue contiguous
		// same-pin runs (split at MaxBatch) directly, skipping the MaxWait
		// coalescing window. A non-comparable scorer cannot form a batchKey,
		// so its jobs enqueue one by one.
		for from := 0; from < len(jobs); {
			to := from + 1
			if comparableScorer(jobs[from].pin.Scorer) {
				key := batchKey{jobs[from].pin.Scorer, jobs[from].pin.Version}
				for to < len(jobs) && to-from < e.cfg.Batch.MaxBatch &&
					comparableScorer(jobs[to].pin.Scorer) &&
					(batchKey{jobs[to].pin.Scorer, jobs[to].pin.Version}) == key {
					to++
				}
			}
			e.batch.enqueue(jobs[from:to:to])
			from = to
		}
		for k, j := range jobs {
			i := idxs[k]
			var out scoreOutcome
			select {
			case out = <-j.done:
			case <-sctx.Done():
				out = scoreOutcome{err: sctx.Err()}
			}
			if out.err != nil {
				// A caller disconnect cancels ctx for every remaining item;
				// count the envelope once as canceled and produce nothing.
				// The deferred release frees the slot; workers still drain
				// the buffered done channels.
				if errors.Is(out.err, context.Canceled) && ctx.Err() != nil {
					e.met.Responses.With("canceled").Inc()
					return nil, ErrCanceled
				}
				outcomes[i] = degradeReason(out)
				e.met.Degraded.With(outcomes[i]).Inc()
				resps[i] = degradedResponse(insts[i], outcomes[i])
			} else {
				outcomes[i] = "ok"
				resps[i] = okResponse(insts[i], out.scores)
			}
		}
		held = false
		<-e.sem // release the envelope's slot
	}

	elapsed := time.Since(start)
	ms := float64(elapsed.Microseconds()) / 1000
	for i := range resps {
		if insts[i] == nil {
			continue
		}
		resps[i].ModelVersion = pins[i].Version
		resps[i].Canary = pins[i].Canary
		resps[i].LatencyMS = ms
		// Each batch item gets its own request id: feedback joins per
		// impression, and an envelope is just transport.
		resps[i].RequestID = e.newRequestID()
		if e.cfg.Feedback != nil {
			e.cfg.Feedback.Track(resps[i].RequestID, routes[i], pins[i].Version)
		}
		if pins[i].Observe != nil {
			pins[i].Observe(outcomes[i], elapsed)
		}
	}
	// The envelope's terminal status reflects its items: ok if any item
	// scored, degraded if any item at least reached scoring, bad_input when
	// every item failed validation. Counting every envelope as ok would hide
	// batch-path failures from ok-rate dashboards.
	status := "bad_input"
	for i := range resps {
		if outcomes[i] == "ok" {
			status = "ok"
			break
		}
		if insts[i] != nil {
			status = "degraded"
		}
	}
	e.met.Responses.With(status).Inc()
	return resps, nil
}

// degrade builds the graceful-degradation response: the initial ranker's
// ordering, marked degraded. A re-ranking stage that cannot answer in budget
// must hand back the list it was given — the upstream ranking is always a
// valid (if less diverse) answer, while an error would cost the impression.
func (e *Engine) degrade(inst *rerank.Instance, reason string) Response {
	e.met.Degraded.With(reason).Inc()
	e.met.Responses.With("degraded").Inc()
	return degradedResponse(inst, reason)
}

func degradedResponse(inst *rerank.Instance, reason string) Response {
	order, scores := FallbackOrder(inst)
	return Response{Ranked: order, Scores: scores, Degraded: true, DegradedReason: reason}
}

// degradeReason maps a scoring outcome's error to the degradation label:
// panic for recovered panics, deadline for context expiry/cancellation
// (a scorer that honored ctx reports the same reason the engine's own
// timeout path would), error for everything else. Caller disconnects are
// filtered out before this mapping — a canceled caller context counts as
// "canceled", not a degradation.
func degradeReason(out scoreOutcome) string {
	switch {
	case out.panicked:
		return "panic"
	case errors.Is(out.err, context.DeadlineExceeded), errors.Is(out.err, context.Canceled):
		return "deadline"
	default:
		return "error"
	}
}

// okResponse orders the list by the model's scores and aligns the score
// slice with the returned ranking.
func okResponse(inst *rerank.Instance, scores []float64) Response {
	order := rerank.OrderByScores(inst.Items, scores)
	pos := make(map[int]int, len(inst.Items))
	for i, id := range inst.Items {
		pos[id] = i
	}
	ordered := make([]float64, len(order))
	for i, id := range order {
		ordered[i] = scores[pos[id]]
	}
	return Response{Ranked: order, Scores: ordered}
}
