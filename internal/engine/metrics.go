package engine

import "repro/internal/obs"

// Metrics is the engine's metric set, registered on one obs.Registry. The
// counters are the source of truth for Stats. Fields are exported because
// the transport frontends account their own pre-engine failures (a request
// that fails JSON decoding never reaches Rerank, yet must land in the same
// request/response counters the dashboards read).
type Metrics struct {
	Requests    *obs.Counter
	Responses   *obs.CounterVec // terminal status per request
	ResponsesOK *obs.Counter    // cached Responses.With("ok")
	Degraded    *obs.CounterVec // degradation reason
	Shed        *obs.CounterVec // shed reason: backpressure vs draining
	ShedBack    *obs.Counter    // cached Shed.With(ShedBackpressure)
	ShedDrain   *obs.Counter    // cached Shed.With(ShedDraining)
	Panics      *obs.Counter
	BadInput    *obs.Counter
	Inflight    *obs.Gauge
	QueueWait   *obs.Histogram
	Scoring     *obs.Histogram
	Request     *obs.Histogram

	BatchRequests *obs.Counter   // rerank-batch envelopes
	BatchItems    *obs.Counter   // instances carried by those envelopes
	BatchSize     *obs.Histogram // instances per dispatched scoring batch

	DivRequests *obs.CounterVec   // scored jobs per diversifier
	DivItems    *obs.CounterVec   // candidates re-ranked per diversifier
	DivLatency  *obs.HistogramVec // batch wall-clock per diversifier

	Feedback   *obs.CounterVec // feedback events by terminal status
	FeedbackOK *obs.Counter    // cached Feedback.With("accepted")

	CacheHits          *obs.Counter // encoded user-state cache
	CacheMisses        *obs.Counter
	CacheEvictions     *obs.Counter
	CacheInvalidations *obs.Counter
	CacheEntries       *obs.Gauge
	CacheBytes         *obs.Gauge
	MatWorkers         *obs.Gauge // GEMM worker knob, for perf forensics

	TenantRequests *obs.CounterVec // requests by resolved tenant
	TenantShed     *obs.CounterVec // tenant-quota sheds by tenant
}

// NewMetrics registers the engine metric families on r. Registration is
// idempotent per registry (obs re-registration returns the existing metric),
// so an engine and its frontends may share one registry freely.
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{
		Requests: r.Counter("rapid_http_requests_total",
			"Re-rank requests received (any outcome)."),
		Responses: r.CounterVec("rapid_http_responses_total",
			"Finished re-rank requests by terminal status: ok, degraded, bad_input, too_large, shed, canceled.", "status"),
		Degraded: r.CounterVec("rapid_degraded_total",
			"Degraded (initial-order fallback) responses by reason: deadline, error, panic.", "reason"),
		Shed: r.CounterVec("rapid_shed_total",
			"Requests shed by reason: backpressure (429, no scoring slot freed within the queue wait) or draining (503, the server is going away).", "reason"),
		Panics: r.Counter("rapid_panics_recovered_total",
			"Panics recovered in the handler chain or the scoring goroutine."),
		BadInput: r.Counter("rapid_bad_input_total",
			"Requests rejected with 4xx for malformed or geometry-mismatched input."),
		Inflight: r.Gauge("rapid_inflight_scoring",
			"Scoring passes currently executing (includes deadline-abandoned passes until they finish)."),
		QueueWait: r.Histogram("rapid_queue_wait_seconds",
			"Time an admitted request waited for a scoring slot.", nil),
		Scoring: r.Histogram("rapid_scoring_latency_seconds",
			"Model scoring wall-clock time, measured to completion even past the budget.", nil),
		Request: r.Histogram("rapid_request_latency_seconds",
			"End-to-end /rerank handler latency.", nil),
		BatchRequests: r.Counter("rapid_batch_requests_total",
			"Multi-instance /v1/rerank:batch envelopes received."),
		BatchItems: r.Counter("rapid_batch_items_total",
			"Instances carried by /v1/rerank:batch envelopes."),
		BatchSize: r.Histogram("rapid_batch_size",
			"Instances per dispatched scoring batch (single requests count as 1).",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		// The diversifier family is registered even when only neural versions
		// are resident, so a canary dashboard can tell "no diversifier traffic"
		// (series at zero) from "metrics missing" — same eager-visibility rule
		// as the cache family below.
		DivRequests: r.CounterVec("rapid_diversifier_requests_total",
			"Requests scored by a classic diversifier version, by diversifier name.", "diversifier"),
		DivItems: r.CounterVec("rapid_diversifier_items_total",
			"Candidates re-ranked by a classic diversifier version, by diversifier name.", "diversifier"),
		DivLatency: r.HistogramVec("rapid_diversifier_latency_seconds",
			"Scoring wall-clock of batches served by a classic diversifier version, by diversifier name.", "diversifier", nil),
		// The feedback family is registered even without a sink so dashboards
		// can tell "feedback surface off" from "metrics missing" — the same
		// eager-visibility rule as the cache family below.
		Feedback: r.CounterVec("rapid_feedback_requests_total",
			"POST /v1/feedback requests by terminal status: accepted, bad_input, shed, error.", "status"),
		// The state-cache family is registered even with the cache disabled so
		// dashboards can tell "cache off" (all-zero series) from "metrics
		// missing" — the same eager-visibility rule as the shed series below.
		CacheHits: r.Counter("rapid_state_cache_hits_total",
			"Scoring passes that reused a cached encoded user state."),
		CacheMisses: r.Counter("rapid_state_cache_misses_total",
			"State-cache lookups that found no usable entry."),
		CacheEvictions: r.Counter("rapid_state_cache_evictions_total",
			"Encoded user states evicted by the cache's memory budget (LRU)."),
		CacheInvalidations: r.Counter("rapid_state_cache_invalidations_total",
			"Whole-cache flushes triggered by model lifecycle transitions."),
		CacheEntries: r.Gauge("rapid_state_cache_entries",
			"Encoded user states currently resident in the cache."),
		CacheBytes: r.Gauge("rapid_state_cache_bytes",
			"Estimated bytes of encoded user states resident in the cache."),
		MatWorkers: r.Gauge("rapid_mat_workers",
			"GEMM worker goroutines the matrix kernels may use (1 = serial)."),
		// Tenant families are eagerly registered with the default label so a
		// single-tenant deployment still exposes the series at zero.
		TenantRequests: r.CounterVec("rapid_tenant_requests_total",
			"Re-rank requests by resolved tenant (the default tenant serves requests with no tenant field).", "tenant"),
		TenantShed: r.CounterVec("rapid_tenant_shed_total",
			"Requests shed by a per-tenant quota, by tenant.", "tenant"),
	}
	// Eager label creation: both shed series are visible on /metrics at zero,
	// so a router's dashboards can tell "never shed" from "series missing".
	m.ShedBack = m.Shed.With(ShedBackpressure)
	m.ShedDrain = m.Shed.With(ShedDraining)
	m.ResponsesOK = m.Responses.With("ok")
	m.FeedbackOK = m.Feedback.With("accepted")
	m.Feedback.With("shed")
	m.TenantRequests.With(DefaultTenant)
	m.TenantShed.With(DefaultTenant)
	return m
}
