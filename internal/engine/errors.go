package engine

import (
	"errors"
	"fmt"
)

// ErrCanceled reports that the caller abandoned the request (its context was
// canceled) before a response could be produced. Frontends drop the request
// without serializing a reply — there is nobody left to read it. The engine
// has already counted the request as "canceled".
var ErrCanceled = errors.New("request canceled by caller")

// BadInputError reports a request the engine rejected before scoring:
// geometry mismatches, empty lists, oversized batches. Frontends map it to
// their protocol's client-error shape (HTTP 400, binary code bad_input).
type BadInputError struct {
	Msg string
}

func (e *BadInputError) Error() string { return e.Msg }

// badInput wraps a validation error from ToInstance (or a batch-shape
// violation) as a *BadInputError.
func badInput(err error) error { return &BadInputError{Msg: err.Error()} }

// ShedError reports that the engine refused to admit the request. Reason is
// ShedBackpressure (a slot should free shortly — retry after RetryAfterS),
// ShedDraining (the process is going away — re-route, do not retry here) or
// ShedTenantQuota (this tenant's own concurrency bound is saturated).
// Frontends map it to their protocol's retryable-error shape (HTTP 429/503
// with Retry-After, binary codes overloaded/draining).
type ShedError struct {
	Reason      string
	RetryAfterS int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("request shed (%s), retry after %ds", e.Reason, e.RetryAfterS)
}

// UnknownTenantError reports a request naming a tenant the engine's tenant
// source cannot resolve (or any named tenant when no tenant source is
// configured). Frontends map it to not-found.
type UnknownTenantError struct {
	Tenant string
	// Cause carries the tenant source's own error, if any.
	Cause error
}

func (e *UnknownTenantError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("unknown tenant %q: %v", e.Tenant, e.Cause)
	}
	return fmt.Sprintf("unknown tenant %q", e.Tenant)
}

func (e *UnknownTenantError) Unwrap() error { return e.Cause }
