package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rerank"
)

func fixture(t *testing.T, n int, seed int64) ([]*rerank.Instance, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.TaobaoLike(seed)
	cfg.NumUsers = 25
	cfg.NumItems = 70
	cfg.Categories = 15
	cfg.RerankRequests = n
	cfg.TestRequests = 1
	cfg.ListLen = 8
	cfg.PoolSize = 12
	d := dataset.MustGenerate(cfg)
	rng := rand.New(rand.NewSource(seed + 1))
	var out []*rerank.Instance
	for i := 0; i < n; i++ {
		p := d.RerankPools[i%len(d.RerankPools)]
		items := append([]int(nil), p.Candidates[:cfg.ListLen]...)
		scores := make([]float64, len(items))
		clicks := make([]bool, len(items))
		for k, v := range items {
			scores[k] = d.Relevance(p.User, v) + rng.NormFloat64()*0.1
			clicks[k] = rng.Float64() < d.Relevance(p.User, v)
		}
		req := dataset.Request{User: p.User, Items: items, InitScores: scores, Clicks: clicks}
		out = append(out, rerank.NewInstance(d, req, rng))
	}
	return out, d
}

func testConfig(d *dataset.Dataset, seed int64) Config {
	cfg := DefaultConfig(d.Cfg.UserDim, d.Cfg.ItemDim, d.M(), seed)
	cfg.Hidden = 8
	return cfg
}

func TestNames(t *testing.T) {
	base := Config{UserDim: 2, ItemDim: 2, Topics: 2, Hidden: 4, D: 3, UseDiversity: true, Heads: 2, Output: Probabilistic}
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) {}, "RAPID-pro"},
		{func(c *Config) { c.Output = Deterministic }, "RAPID-det"},
		{func(c *Config) { c.UseDiversity = false }, "RAPID-RNN"},
		{func(c *Config) { c.Agg = MeanAgg }, "RAPID-mean"},
		{func(c *Config) { c.Encoder = TransformerEncoder }, "RAPID-trans"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if got := New(cfg).Name(); got != tc.want {
			t.Fatalf("Name = %s, want %s", got, tc.want)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero hidden size did not panic")
		}
	}()
	New(Config{UserDim: 2, ItemDim: 2, Topics: 2, Hidden: 0, D: 3})
}

func TestAllVariantsForwardAndTrain(t *testing.T) {
	train, d := fixture(t, 16, 31)
	test, _ := fixture(t, 3, 32)
	variants := []func(*Config){
		nil,
		func(c *Config) { c.Output = Deterministic },
		func(c *Config) { c.UseDiversity = false },
		func(c *Config) { c.Agg = MeanAgg },
		func(c *Config) { c.Encoder = TransformerEncoder },
	}
	for i, mutate := range variants {
		cfg := testConfig(d, int64(40+i))
		if mutate != nil {
			mutate(&cfg)
		}
		m := New(cfg)
		m.TrainCfg = rerank.TrainConfig{Epochs: 2, LR: 0.005, BatchSize: 4, ClipNorm: 5, Seed: 1}
		if err := m.Fit(train); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, inst := range test {
			s := m.Scores(inst)
			if len(s) != inst.L() {
				t.Fatalf("%s: %d scores", m.Name(), len(s))
			}
			for _, v := range s {
				if math.IsNaN(v) || v <= 0 || v >= 1 {
					t.Fatalf("%s: score %v outside (0,1)", m.Name(), v)
				}
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	train, d := fixture(t, 30, 33)
	m := New(testConfig(d, 50))
	var first, last float64
	m.TrainCfg = rerank.TrainConfig{
		Epochs: 6, LR: 0.01, BatchSize: 4, ClipNorm: 5, Seed: 2,
		OnEpoch: func(e int, loss float64) {
			if e == 0 {
				first = loss
			}
			last = loss
		},
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Fatalf("RAPID loss did not decrease: %v → %v", first, last)
	}
}

func TestGradCheckRapidDet(t *testing.T) {
	// End-to-end gradient check of the full RAPID graph (deterministic
	// head so the loss is a deterministic function of the parameters).
	train, d := fixture(t, 1, 34)
	inst := train[0]
	cfg := testConfig(d, 60)
	cfg.Hidden = 4
	cfg.Output = Deterministic
	m := New(cfg)
	build := func() float64 {
		tp := nn.NewTape()
		return tp.SigmoidBCE(m.Logits(tp, inst, false), inst.Labels).Value.Data[0]
	}
	buildBackward := func() {
		tp := nn.NewTape()
		tp.Backward(tp.SigmoidBCE(m.Logits(tp, inst, false), inst.Labels))
	}
	if _, err := nn.GradCheck(m.Params().All(), build, buildBackward, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilisticHeads(t *testing.T) {
	train, d := fixture(t, 4, 35)
	inst := train[0]
	m := New(testConfig(d, 70))
	// Training mode is stochastic: two passes differ.
	t1 := nn.NewTape()
	l1 := m.Logits(t1, inst, true)
	t2 := nn.NewTape()
	l2 := m.Logits(t2, inst, true)
	if l1.Value.EqualApprox(l2.Value, 1e-12) {
		t.Fatal("training logits identical across samples — reparameterization inactive")
	}
	// Inference is deterministic and equals μ + Σ ≥ μ.
	t3 := nn.NewTape()
	ucb := m.Logits(t3, inst, false)
	t4 := nn.NewTape()
	ucb2 := m.Logits(t4, inst, false)
	if !ucb.Value.EqualApprox(ucb2.Value, 1e-12) {
		t.Fatal("inference logits not deterministic")
	}
	t5 := nn.NewTape()
	mu := m.headMu.Forward(t5, m.headInput(t5, inst))
	for i := range ucb.Value.Data {
		if ucb.Value.Data[i] < mu.Value.Data[i] {
			t.Fatal("UCB below the mean — Σ not positive")
		}
	}
}

func TestPreferencePersonalization(t *testing.T) {
	// θ̂ must differ across users with different histories.
	train, d := fixture(t, 10, 36)
	m := New(testConfig(d, 80))
	m.TrainCfg = rerank.TrainConfig{Epochs: 1, LR: 0.005, BatchSize: 4, ClipNorm: 5, Seed: 3}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	var distinct bool
	base := m.Preference(train[0])
	for _, inst := range train[1:] {
		p := m.Preference(inst)
		for j := range p {
			if math.Abs(p[j]-base[j]) > 1e-6 {
				distinct = true
			}
		}
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("θ̂ component %v outside [0,1]", v)
			}
		}
	}
	if !distinct {
		t.Fatal("θ̂ identical for all users — personalization inactive")
	}
}

func TestPreferenceWithoutDiversityIsZero(t *testing.T) {
	train, d := fixture(t, 2, 37)
	cfg := testConfig(d, 90)
	cfg.UseDiversity = false
	m := New(cfg)
	p := m.Preference(train[0])
	for _, v := range p {
		if v != 0 {
			t.Fatal("RAPID-RNN should report a zero preference")
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	train, d := fixture(t, 8, 38)
	m := New(testConfig(d, 100))
	m.TrainCfg = rerank.TrainConfig{Epochs: 1, LR: 0.005, BatchSize: 4, ClipNorm: 5, Seed: 4}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.ParamSet().Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(testConfig(d, 100))
	if err := m2.ParamSet().Load(&buf); err != nil {
		t.Fatal(err)
	}
	s1 := m.Scores(train[0])
	s2 := m2.Scores(train[0])
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-12 {
			t.Fatalf("restored model scores differ at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

// headInput exposes the fused [H, Δ] input for the head tests.
func (m *Model) headInput(t *nn.Tape, inst *rerank.Instance) *nn.Node {
	x := t.Constant(inst.ListFeatures())
	h := m.relevance(t, x)
	if !m.Cfg.UseDiversity {
		return h
	}
	theta := m.preference(t, inst)
	return t.ConcatCols(h, m.diversityGain(t, inst, theta))
}

func TestDiversityFunctionVariants(t *testing.T) {
	train, d := fixture(t, 10, 39)
	for _, name := range []string{"prob-coverage", "saturated-coverage", "facility-location"} {
		cfg := testConfig(d, 110)
		cfg.DiversityFn = name
		m := New(cfg)
		m.TrainCfg = rerank.TrainConfig{Epochs: 1, LR: 0.005, BatchSize: 4, ClipNorm: 5, Seed: 1}
		if err := m.Fit(train); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := m.Scores(train[0])
		for _, v := range s {
			if math.IsNaN(v) {
				t.Fatalf("%s produced NaN score", name)
			}
		}
	}
}

func TestUnknownDiversityFunctionPanics(t *testing.T) {
	_, d := fixture(t, 1, 40)
	cfg := testConfig(d, 120)
	cfg.DiversityFn = "nope"
	defer func() {
		if recover() == nil {
			t.Fatal("unknown diversity function did not panic")
		}
	}()
	New(cfg)
}
