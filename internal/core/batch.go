package core

import (
	"context"
	"sort"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
)

// This file implements the batched inference path: ScoreBatch runs B
// instances through one tape pass, stacking the per-step recurrence inputs
// of all instances into single GEMMs. Every operation either acts row-wise
// (dense layers, gates, elementwise ops) or is kept per-instance (self
// attention, which mixes rows), so each instance's row sees exactly the
// arithmetic — in the same order — as the legacy single-instance path.
// Batch output is bitwise identical to Scores; the equivalence suite in
// batch_test.go enforces this for every model variant.

// Score implements serve.Scorer: a context-aware single-instance scoring
// call, equivalent to ScoreBatch with a batch of one.
func (m *Model) Score(ctx context.Context, inst *rerank.Instance) ([]float64, error) {
	out, err := m.ScoreBatch(ctx, []*rerank.Instance{inst})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// ScoreBatch implements serve.BatchScorer: it scores B instances in one
// tape pass. Instances may differ in list length and behavior-sequence
// lengths; the recurrences are grouped (by list length) or length-packed
// (topic sequences) so state rows always line up. The context is checked
// between recurrence steps, so cancellation actually stops the work.
func (m *Model) ScoreBatch(ctx context.Context, insts []*rerank.Instance) ([][]float64, error) {
	out, _, err := m.ScoreBatchStates(ctx, insts, nil)
	return out, err
}

// ScoreBatchStates is ScoreBatch with the user-preference prefix factored
// out: states[b], when non-nil and produced by this model, replaces instance
// b's entire preference pass (per-topic LSTMs, self-attention, preference
// MLP) — the repeat-user fast path. Instances whose state is nil (or whose
// states slice is nil/short) are encoded inline, batched together exactly
// as ScoreBatch would.
//
// The second return value holds the state actually used per instance —
// supplied states passed through, freshly encoded ones for the misses — so
// a serving-layer cache can install new entries from the scoring pass it
// already paid for. Scores are bitwise identical with and without supplied
// states: θ̂'s arithmetic is row-private per instance (see EncodeUserState).
func (m *Model) ScoreBatchStates(ctx context.Context, insts []*rerank.Instance, states []*UserState) ([][]float64, []*UserState, error) {
	if len(insts) == 0 {
		return nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	t := m.tape()
	defer m.releaseTape(t)

	relDim := 2 * m.Cfg.Hidden
	headIn := relDim
	if m.Cfg.UseDiversity {
		headIn += m.Cfg.Topics
	}

	// z stacks every instance's fusion input [H_R | Δ_R] row-contiguously:
	// instance b owns rows offs[b]..offs[b+1].
	offs := make([]int, len(insts)+1)
	for b, inst := range insts {
		offs[b+1] = offs[b] + inst.L()
	}
	z := mat.New(offs[len(insts)], headIn)

	if err := m.batchRelevance(ctx, t, insts, z, offs); err != nil {
		return nil, nil, err
	}
	var used []*UserState
	if m.Cfg.UseDiversity {
		// Split the batch into state hits and misses; only the misses run
		// the preference pass, packed together like a plain ScoreBatch of
		// just those instances (per-instance θ̂ is batch-composition
		// independent, so the split is invisible in the output).
		used = make([]*UserState, len(insts))
		var missIdx []int
		var missInsts []*rerank.Instance
		for b := range insts {
			if b < len(states) && states[b].validFor(m) {
				used[b] = states[b]
				continue
			}
			missIdx = append(missIdx, b)
			missInsts = append(missInsts, insts[b])
		}
		if len(missInsts) > 0 {
			theta, err := m.batchPreference(ctx, t, missInsts)
			if err != nil {
				return nil, nil, err
			}
			for k, b := range missIdx {
				used[b] = &UserState{theta: theta[k]}
			}
		}
		// Δ_R in plain floats, preserving the legacy Mul-then-Scale order:
		// s·(θ̂_j · d_ij), never (s·θ̂_j)·d_ij.
		s := float64(m.Cfg.Topics) / 2
		for b, inst := range insts {
			theta := used[b].theta
			d := m.divFn.Marginal(inst.Cover, inst.M)
			for i := 0; i < inst.L(); i++ {
				row := z.Row(offs[b] + i)[relDim:]
				for j := 0; j < m.Cfg.Topics; j++ {
					row[j] = s * (theta[j] * d[i][j])
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// One stacked head pass over all ΣL rows (UCB inference, Eq. 10).
	zn := t.Constant(z)
	var logits *nn.Node
	if m.Cfg.Output == Deterministic {
		logits = m.headDet.Forward(t, zn)
	} else {
		logits = t.Add(m.headMu.Forward(t, zn), t.Softplus(m.headSigma.Forward(t, zn)))
	}
	out := make([][]float64, len(insts))
	for b := range insts {
		rows := logits.Value.Data[offs[b]:offs[b+1]] // column vector: 1 col per row
		scores := make([]float64, len(rows))
		for i, v := range rows {
			scores[i] = mat.Sigmoid(v)
		}
		out[b] = scores
	}
	return out, used, nil
}

// tape borrows a reusable tape from the model's pool; releaseTape resets it
// (recycling its value buffers) and returns it. Callers must copy results
// out of node values before releasing.
func (m *Model) tape() *nn.Tape {
	if v := m.tapes.Get(); v != nil {
		return v.(*nn.Tape)
	}
	return nn.NewTapeCap(2 * m.TapeCapHint())
}

func (m *Model) releaseTape(t *nn.Tape) {
	t.Reset()
	m.tapes.Put(t)
}

// batchRelevance fills z[:, :2·hidden] with each instance's listwise
// relevance representation H_R. For the Bi-LSTM encoder, instances are
// grouped by list length and each group advances both directions in
// lockstep with G-row states, so every step's gate projection is one
// G-row GEMM instead of G single-row ones. The transformer encoder mixes
// rows across the list (self-attention), so it stays per-instance.
func (m *Model) batchRelevance(ctx context.Context, t *nn.Tape, insts []*rerank.Instance, z *mat.Matrix, offs []int) error {
	relDim := 2 * m.Cfg.Hidden
	if m.Cfg.Encoder == TransformerEncoder {
		for b, inst := range insts {
			if err := ctx.Err(); err != nil {
				return err
			}
			h := m.relevance(t, t.Constant(inst.ListFeatures()))
			for i := 0; i < inst.L(); i++ {
				copy(z.Row(offs[b] + i)[:relDim], h.Value.Row(i))
			}
		}
		return nil
	}
	groups := make(map[int][]int)
	lens := make([]int, 0, 4)
	for b, inst := range insts {
		l := inst.L()
		if _, ok := groups[l]; !ok {
			lens = append(lens, l)
		}
		groups[l] = append(groups[l], b)
	}
	sort.Ints(lens)
	for _, l := range lens {
		if err := m.batchBiLSTM(ctx, t, insts, groups[l], l, z, offs); err != nil {
			return err
		}
	}
	return nil
}

// batchBiLSTM runs the Bi-LSTM over a group of instances sharing list
// length L. State row g belongs to instance idxs[g]; per-step hidden rows
// are copied straight into the group's z rows (forward halves first, then
// backward), reproducing ConcatCols(fwd[i], bwd[i]) per instance.
func (m *Model) batchBiLSTM(ctx context.Context, t *nn.Tape, insts []*rerank.Instance, idxs []int, l int, z *mat.Matrix, offs []int) error {
	g := len(idxs)
	hid := m.Cfg.Hidden
	feats := make([]*mat.Matrix, g)
	for k, b := range idxs {
		feats[k] = insts[b].ListFeatures()
	}
	featDim := feats[0].Cols
	xs := make([]*nn.Node, l)
	for i := 0; i < l; i++ {
		xi := mat.New(g, featDim)
		for k := range idxs {
			copy(xi.Row(k), feats[k].Row(i))
		}
		xs[i] = t.Constant(xi)
	}
	fh, fc := m.bilstm.Fwd.InitStateRows(t, g)
	for i := 0; i < l; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		fh, fc = m.bilstm.Fwd.Step(t, xs[i], fh, fc)
		for k, b := range idxs {
			copy(z.Row(offs[b] + i)[:hid], fh.Value.Row(k))
		}
	}
	bh, bc := m.bilstm.Bwd.InitStateRows(t, g)
	for i := l - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return err
		}
		bh, bc = m.bilstm.Bwd.Step(t, xs[i], bh, bc)
		for k, b := range idxs {
			copy(z.Row(offs[b] + i)[hid:2*hid], bh.Value.Row(k))
		}
	}
	return nil
}

// batchPreference computes θ̂ for every instance (Eqs. 2–3), returning one
// m-vector per instance. The per-topic recurrences run length-packed
// across the whole batch; self-attention stays per-instance (it mixes topic
// rows within one user); the preference MLP runs once over the stacked
// (B·m)-row attended representations.
func (m *Model) batchPreference(ctx context.Context, t *nn.Tape, insts []*rerank.Instance) ([][]float64, error) {
	b := len(insts)
	topicsN, hid := m.Cfg.Topics, m.Cfg.Hidden
	sums := make([]*mat.Matrix, b) // per-instance m×hidden topic summaries
	for i := range sums {
		sums[i] = mat.New(topicsN, hid)
	}
	switch m.Cfg.Agg {
	case MeanAgg:
		for i, inst := range insts {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for j := 0; j < topicsN; j++ {
				seq := inst.TopicSeqFeatures(j, m.Cfg.D)
				if seq.Rows == 0 {
					continue // zero summary, matching the legacy zero constant
				}
				mean := t.MeanRows(m.meanEmbed.Forward(t, t.Constant(seq)))
				copy(sums[i].Row(j), mean.Value.Data)
			}
		}
	case LSTMAgg:
		for j := 0; j < topicsN; j++ {
			if err := m.batchTopicLSTM(ctx, t, insts, j, sums); err != nil {
				return nil, err
			}
		}
	}
	att := make([]*nn.Node, b)
	for i := range insts {
		att[i] = nn.SelfAttention(t, t.Constant(sums[i])) // Eq. (2), per instance
	}
	pref := m.prefMLP.Forward(t, t.ConcatRows(att...)) // (B·m)×1, Eq. (3)
	theta := make([][]float64, b)
	for i := range theta {
		theta[i] = append([]float64(nil), pref.Value.Data[i*topicsN:(i+1)*topicsN]...)
	}
	return theta, nil
}

// batchTopicLSTM advances topic j's behavior recurrence for all instances
// at once. Sequences are sorted by descending length so each step operates
// on a packed prefix of the state: rows whose sequence has ended keep their
// final state untouched (an untouched zero row reproduces LSTM.Last's
// zero-state result for an empty sequence).
func (m *Model) batchTopicLSTM(ctx context.Context, t *nn.Tape, insts []*rerank.Instance, j int, sums []*mat.Matrix) error {
	g := len(insts)
	type seqOf struct {
		b int
		f *mat.Matrix
	}
	seqs := make([]seqOf, g)
	for b, inst := range insts {
		seqs[b] = seqOf{b, inst.TopicSeqFeatures(j, m.Cfg.D)}
	}
	sort.SliceStable(seqs, func(a, c int) bool { return seqs[a].f.Rows > seqs[c].f.Rows })
	cell := m.topicLSTM.Cell
	h, c := cell.InitStateRows(t, g)
	seqDim := m.Cfg.UserDim + m.Cfg.ItemDim
	for step := 0; step < seqs[0].f.Rows; step++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		k := 0
		for k < g && seqs[k].f.Rows > step {
			k++
		}
		x := mat.New(k, seqDim)
		for r := 0; r < k; r++ {
			copy(x.Row(r), seqs[r].f.Row(step))
		}
		if k == g {
			h, c = cell.Step(t, t.Constant(x), h, c)
		} else {
			hNew, cNew := cell.Step(t, t.Constant(x), t.SliceRows(h, 0, k), t.SliceRows(c, 0, k))
			h = t.ConcatRows(hNew, t.SliceRows(h, k, g))
			c = t.ConcatRows(cNew, t.SliceRows(c, k, g))
		}
	}
	for r, s := range seqs {
		copy(sums[s.b].Row(j), h.Value.Row(r))
	}
	return nil
}
