// Package core implements RAPID — Re-ranking with Personalized
// Diversification (Liu, Xi, et al., ICDE 2023). The model has three parts
// (Figure 2 of the paper):
//
//   - a listwise relevance estimator: a Bi-LSTM over the initial list's
//     per-item embeddings e_{R(i)} = [x_u, x_{R(i)}, τ_{R(i)}] capturing
//     cross-item interactions (Section III-B);
//   - a personalized diversity estimator: per-topic LSTMs over the user's
//     split behavior sequences (intra-topic interactions), self-attention
//     across the topic summaries (inter-topic interactions, Eq. 2), an MLP
//     producing the preference distribution θ̂ (Eq. 3), and the
//     personalized diversity gain Δ_R(R(i)) = θ̂ ⊙ d_R(R(i)) (Eqs. 4–6);
//   - a re-ranker fusing both signals with an MLP, either deterministically
//     (Eq. 7) or probabilistically with a reparameterized Gaussian score
//     and UCB inference (Eqs. 8–10).
//
// Training minimizes the click cross-entropy of Eq. (11) end-to-end, so the
// relevance–diversity tradeoff is learned rather than hand-tuned.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rerank"
	"repro/internal/topics"
)

// OutputMode selects the re-ranker head.
type OutputMode int

// Output modes.
const (
	// Deterministic is Eq. (7): a single MLP producing φ_R.
	Deterministic OutputMode = iota
	// Probabilistic is Eqs. (8)–(10): mean and std heads, reparameterized
	// sampling in training, UCB (μ + Σ) at inference.
	Probabilistic
)

// ListEncoder selects the listwise relevance estimator.
type ListEncoder int

// List encoders.
const (
	// BiLSTMEncoder is the paper's default (Section III-B).
	BiLSTMEncoder ListEncoder = iota
	// TransformerEncoder is the RAPID-trans ablation.
	TransformerEncoder
)

// TopicAgg selects how per-topic behavior sequences are summarized.
type TopicAgg int

// Topic aggregators.
const (
	// LSTMAgg encodes each topical sequence with an LSTM and keeps the
	// final state (the paper's design).
	LSTMAgg TopicAgg = iota
	// MeanAgg is the RAPID-mean ablation: mean pooling of embedded items.
	MeanAgg
)

// Config parameterizes a RAPID model.
type Config struct {
	// UserDim, ItemDim and Topics describe the instance geometry
	// (q_u, q_v, m).
	UserDim, ItemDim, Topics int
	// Hidden is q_h, the paper's grid {8, 16, 32, 64}.
	Hidden int
	// D is the maximum per-topic behavior-sequence length (default 5).
	D int
	// Output selects RAPID-det vs RAPID-pro.
	Output OutputMode
	// Encoder selects Bi-LSTM vs transformer listwise context.
	Encoder ListEncoder
	// Agg selects LSTM vs mean intra-topic aggregation.
	Agg TopicAgg
	// UseDiversity disables the entire personalized diversity estimator
	// when false (the RAPID-RNN ablation).
	UseDiversity bool
	// Heads is the attention head count for the transformer encoder.
	Heads int
	// Seed drives parameter init and the training-time Gaussian noise ξ.
	Seed int64
	// DiversityFn selects the submodular diversity function behind
	// Eqs. (4)–(5): "prob-coverage" (default, the paper's choice),
	// "saturated-coverage" or "facility-location". The paper notes the
	// coverage function is replaceable by any submodular alternative.
	DiversityFn string
}

// DefaultConfig mirrors the paper's chosen hyper-parameters (hidden 16,
// D = 5, probabilistic output).
func DefaultConfig(userDim, itemDim, topics int, seed int64) Config {
	return Config{
		UserDim: userDim, ItemDim: itemDim, Topics: topics,
		Hidden: 16, D: 5,
		Output: Probabilistic, Encoder: BiLSTMEncoder, Agg: LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: seed,
	}
}

// Model is a trainable RAPID re-ranker. It implements rerank.Reranker,
// rerank.Trainable and rerank.ListwiseModel.
type Model struct {
	Cfg Config

	ps *nn.ParamSet

	// Listwise relevance estimator.
	bilstm    *nn.BiLSTM
	transProj *nn.Dense
	trans     *nn.TransformerBlock
	transOut  *nn.Dense

	// Personalized diversity estimator.
	topicLSTM *nn.LSTM
	meanEmbed *nn.Dense
	prefMLP   *nn.MLP

	// Re-ranker heads.
	headDet   *nn.MLP
	headMu    *nn.MLP
	headSigma *nn.MLP

	divFn topics.DiversityFunction
	noise *rand.Rand
	// tapes recycles inference tapes across Score/ScoreBatch calls; each
	// call borrows one for the duration of its forward pass.
	tapes sync.Pool
	// preNoise holds the ξ vectors pre-drawn by PrepareInstance for the
	// parallel trainer. It is written only between batches (on the trainer
	// goroutine) and read by Logits inside the batch, so no lock is needed.
	preNoise map[*rerank.Instance]*mat.Matrix
	// TrainCfg is used by Fit; zero value means rerank.DefaultTrainConfig.
	TrainCfg rerank.TrainConfig
}

// New constructs a RAPID model from the config.
func New(cfg Config) *Model {
	if cfg.Hidden <= 0 || cfg.Topics <= 0 || cfg.D <= 0 {
		panic(fmt.Sprintf("core: invalid config %+v", cfg))
	}
	divFn, err := topics.DiversityFunctionByName(cfg.DiversityFn)
	if err != nil {
		panic(err)
	}
	m := &Model{Cfg: cfg, ps: nn.NewParamSet(), divFn: divFn, noise: rand.New(rand.NewSource(cfg.Seed + 7))}
	rng := rand.New(rand.NewSource(cfg.Seed))
	featDim := cfg.UserDim + cfg.ItemDim + cfg.Topics + 1 // + initial score
	relDim := 2 * cfg.Hidden
	switch cfg.Encoder {
	case BiLSTMEncoder:
		m.bilstm = nn.NewBiLSTM(m.ps, "rapid.rel", featDim, cfg.Hidden, rng)
	case TransformerEncoder:
		m.transProj = nn.NewDense(m.ps, "rapid.rel.proj", featDim, relDim, nn.Linear, rng)
		m.trans = nn.NewTransformerBlock(m.ps, "rapid.rel.trans", relDim, cfg.Heads, 2*relDim, rng)
		m.transOut = nn.NewDense(m.ps, "rapid.rel.out", relDim, relDim, nn.Tanh, rng)
	}
	if cfg.UseDiversity {
		seqDim := cfg.UserDim + cfg.ItemDim
		switch cfg.Agg {
		case LSTMAgg:
			m.topicLSTM = nn.NewLSTM(m.ps, "rapid.div.lstm", seqDim, cfg.Hidden, rng)
		case MeanAgg:
			m.meanEmbed = nn.NewDense(m.ps, "rapid.div.embed", seqDim, cfg.Hidden, nn.Tanh, rng)
		}
		// MLP_θ of Eq. (3) maps the attended topic representations
		// [a_1 … a_m] to the m-dimensional preference. We apply it with
		// weights shared across topic rows (a_j ↦ θ̂_j) rather than on the
		// flattened concatenation: at the paper's data scale both are
		// equivalent in capacity, but at this reproduction's scale the
		// flattened variant (m·q_h inputs per topic) cannot be estimated
		// from thousands — rather than millions — of requests. The
		// substitution is documented in DESIGN.md.
		m.prefMLP = nn.NewMLP(m.ps, "rapid.div.pref",
			[]int{cfg.Hidden, cfg.Hidden, 1}, nn.ReLU, nn.SigmoidAct, rng)
	}
	headIn := relDim
	if cfg.UseDiversity {
		headIn += cfg.Topics
	}
	switch cfg.Output {
	case Deterministic:
		m.headDet = nn.NewMLP(m.ps, "rapid.head", []int{headIn, cfg.Hidden, 1}, nn.ReLU, nn.Linear, rng)
	case Probabilistic:
		m.headMu = nn.NewMLP(m.ps, "rapid.head.mu", []int{headIn, cfg.Hidden, 1}, nn.ReLU, nn.Linear, rng)
		m.headSigma = nn.NewMLP(m.ps, "rapid.head.sigma", []int{headIn, cfg.Hidden, 1}, nn.ReLU, nn.Linear, rng)
		// Start the uncertainty head small (softplus(−2) ≈ 0.13): a large
		// initial Σ is an uncalibrated optimism bonus that corrupts the
		// UCB ordering early in training.
		last := m.headSigma.Layers[len(m.headSigma.Layers)-1]
		last.B.Value.Fill(-2)
	}
	return m
}

// Name implements rerank.Reranker.
func (m *Model) Name() string {
	switch {
	case !m.Cfg.UseDiversity:
		return "RAPID-RNN"
	case m.Cfg.Agg == MeanAgg:
		return "RAPID-mean"
	case m.Cfg.Encoder == TransformerEncoder:
		return "RAPID-trans"
	case m.Cfg.Output == Deterministic:
		return "RAPID-det"
	default:
		return "RAPID-pro"
	}
}

// Params implements rerank.ListwiseModel.
func (m *Model) Params() *nn.ParamSet { return m.ps }

// relevance builds H_R, the L×2q_h listwise relevance representation.
func (m *Model) relevance(t *nn.Tape, x *nn.Node) *nn.Node {
	if m.Cfg.Encoder == BiLSTMEncoder {
		return m.bilstm.Forward(t, x)
	}
	h := m.transProj.Forward(t, x)
	h = m.trans.Forward(t, h, nil)
	return m.transOut.Forward(t, h)
}

// preference builds θ̂, the 1×m personalized preference distribution, from
// the instance's per-topic behavior sequences (Eqs. 2–3).
func (m *Model) preference(t *nn.Tape, inst *rerank.Instance) *nn.Node {
	summaries := make([]*nn.Node, m.Cfg.Topics)
	for j := 0; j < m.Cfg.Topics; j++ {
		seq := t.Constant(inst.TopicSeqFeatures(j, m.Cfg.D))
		switch m.Cfg.Agg {
		case LSTMAgg:
			summaries[j] = m.topicLSTM.Last(t, seq)
		case MeanAgg:
			if seq.Value.Rows == 0 {
				summaries[j] = t.Constant(mat.New(1, m.Cfg.Hidden))
			} else {
				summaries[j] = t.MeanRows(m.meanEmbed.Forward(t, seq))
			}
		}
	}
	v := t.ConcatRows(summaries...) // m×q_h
	a := nn.SelfAttention(t, v)     // Eq. (2)
	// Eq. (3): map the attended rows to the preference distribution
	// θ̂ ∈ ℝ^m (row-shared application; see the construction note).
	return t.Transpose(m.prefMLP.Forward(t, a)) // 1×m
}

// diversityGain builds Δ_R, the L×m personalized diversity gain matrix
// (Eq. 6): each row i is θ̂ ⊙ d_R(R(i)). The constant m/2 rescaling is an
// input-conditioning detail: marginal-diversity entries shrink as 1/m
// (coverage mass is spread over m topics), and without the rescaling the
// fusion MLP sees Δ an order of magnitude below H_R and underuses it early
// in training. It does not change Eq. (6) up to the head's first weight
// layer.
func (m *Model) diversityGain(t *nn.Tape, inst *rerank.Instance, theta *nn.Node) *nn.Node {
	d := mat.FromRows(m.divFn.Marginal(inst.Cover, inst.M)) // L×m constant
	thetaRows := make([]*nn.Node, inst.L())
	for i := range thetaRows {
		thetaRows[i] = theta
	}
	gain := t.Mul(t.ConcatRows(thetaRows...), t.Constant(d))
	return t.Scale(gain, float64(m.Cfg.Topics)/2)
}

// Logits implements rerank.ListwiseModel, producing the pre-sigmoid φ_R.
func (m *Model) Logits(t *nn.Tape, inst *rerank.Instance, train bool) *nn.Node {
	x := t.Constant(inst.ListFeatures())
	h := m.relevance(t, x)
	z := h
	if m.Cfg.UseDiversity {
		theta := m.preference(t, inst)
		z = t.ConcatCols(h, m.diversityGain(t, inst, theta))
	}
	if m.Cfg.Output == Deterministic {
		return m.headDet.Forward(t, z)
	}
	mu := m.headMu.Forward(t, z)
	sigma := t.Softplus(m.headSigma.Forward(t, z))
	if train {
		// Reparameterization trick (Eq. 9): φ = μ + ξ·Σ, ξ ~ N(0,1).
		// Under the parallel trainer ξ was pre-drawn by PrepareInstance on
		// the trainer goroutine; drawing here is the single-threaded
		// fallback (direct Logits calls outside TrainListwise).
		xi := m.preNoise[inst]
		if xi == nil || xi.Rows != inst.L() {
			xi = mat.New(inst.L(), 1)
			for i := range xi.Data {
				xi.Data[i] = m.noise.NormFloat64()
			}
		}
		return t.Add(mu, t.Mul(t.Constant(xi), sigma))
	}
	// UCB inference (Eq. 10): φ = μ + Σ.
	return t.Add(mu, sigma)
}

// PrepareInstance implements rerank.BatchPreparer: it draws the instance's
// reparameterization noise ξ from the model's RNG ahead of the concurrent
// forward passes. The trainer calls it sequentially in batch order, so the
// noise stream is consumed in a deterministic order no matter how many
// workers later evaluate the batch, and Logits stays read-only.
func (m *Model) PrepareInstance(inst *rerank.Instance) {
	if m.Cfg.Output != Probabilistic {
		return
	}
	if m.preNoise == nil {
		m.preNoise = make(map[*rerank.Instance]*mat.Matrix)
	}
	xi := m.preNoise[inst]
	if xi == nil || xi.Rows != inst.L() {
		xi = mat.New(inst.L(), 1)
		m.preNoise[inst] = xi
	}
	for i := range xi.Data {
		xi.Data[i] = m.noise.NormFloat64()
	}
}

// TapeCapHint implements rerank.TapeSized: a generous estimate of the tape
// nodes one Logits call records, so trainer tapes never grow mid-pass. The
// dominant terms are the encoder recurrence over the list and the per-topic
// behavior recurrences.
func (m *Model) TapeCapHint() int {
	const maxList = 64 // harness lists are ≤ ~50 items
	n := 128           // heads, fusion, loss
	if m.Cfg.Encoder == BiLSTMEncoder {
		n += 2 * maxList * 20
	} else {
		n += 40 * m.Cfg.Heads
	}
	if m.Cfg.UseDiversity {
		n += m.Cfg.Topics*(m.Cfg.D*20+8) + 64
	}
	return n
}

// Fit implements rerank.Trainable.
func (m *Model) Fit(train []*rerank.Instance) error {
	cfg := m.TrainCfg
	if cfg.Epochs == 0 {
		cfg = rerank.DefaultTrainConfig(m.Cfg.Seed)
	}
	_, err := rerank.TrainListwise(m, train, cfg)
	return err
}

// Scores implements rerank.Reranker: the estimated utility φ_R (probability
// scale; for RAPID-pro this is the sigmoid of the UCB, which preserves the
// UCB ordering).
func (m *Model) Scores(inst *rerank.Instance) []float64 {
	return rerank.ScoreWithSigmoid(m, inst)
}

// Preference exposes the learned θ̂ for an instance — used by the case
// study (Figure 5) and the personalization tests.
func (m *Model) Preference(inst *rerank.Instance) []float64 {
	if !m.Cfg.UseDiversity {
		return make([]float64, m.Cfg.Topics)
	}
	t := nn.NewTape()
	theta := m.preference(t, inst)
	return append([]float64(nil), theta.Value.Data...)
}

// ParamSet exposes the parameters for serialization.
func (m *Model) ParamSet() *nn.ParamSet { return m.ps }
