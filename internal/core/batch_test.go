package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rerank"
)

// truncated shallow-copies an instance down to its first l items, giving
// the batch fixtures heterogeneous list lengths.
func truncated(inst *rerank.Instance, l int) *rerank.Instance {
	cp := *inst
	cp.Items = inst.Items[:l]
	cp.InitScores = inst.InitScores[:l]
	cp.Cover = inst.Cover[:l]
	if inst.Labels != nil {
		cp.Labels = inst.Labels[:l]
	}
	if inst.Bids != nil {
		cp.Bids = inst.Bids[:l]
	}
	return &cp
}

// batchFixture builds a batch with mixed list lengths (8, 5, 3, 8, 1) and
// at least one empty per-topic behavior sequence, so grouping, packing and
// the zero-state paths are all exercised.
func batchFixture(t *testing.T) ([]*rerank.Instance, *dataset.Dataset) {
	t.Helper()
	insts, d := fixture(t, 6, 91)
	out := []*rerank.Instance{
		insts[0],
		truncated(insts[1], 5),
		truncated(insts[2], 3),
		insts[3],
		truncated(insts[4], 1),
	}
	seqs := append([][]int(nil), out[2].TopicSeqs...)
	seqs[0] = nil
	out[2].TopicSeqs = seqs
	return out, d
}

func modelVariants(d *dataset.Dataset) []*Model {
	variants := []func(*Config){
		nil,
		func(c *Config) { c.Output = Deterministic },
		func(c *Config) { c.UseDiversity = false },
		func(c *Config) { c.Agg = MeanAgg },
		func(c *Config) { c.Encoder = TransformerEncoder },
	}
	out := make([]*Model, 0, len(variants))
	for i, mutate := range variants {
		cfg := testConfig(d, int64(70+i))
		if mutate != nil {
			mutate(&cfg)
		}
		out = append(out, New(cfg))
	}
	return out
}

// TestScoreBatchBitwiseEqualsSingle is the core equivalence guarantee: for
// every model variant, Score (batch of one) and ScoreBatch (heterogeneous
// batch) must be bitwise identical to the legacy Scores path.
func TestScoreBatchBitwiseEqualsSingle(t *testing.T) {
	insts, d := batchFixture(t)
	ctx := context.Background()
	for _, m := range modelVariants(d) {
		want := make([][]float64, len(insts))
		for i, inst := range insts {
			want[i] = m.Scores(inst)
		}
		for i, inst := range insts {
			got, err := m.Score(ctx, inst)
			if err != nil {
				t.Fatalf("%s: Score: %v", m.Name(), err)
			}
			assertBitwise(t, m.Name()+" batch-of-1", want[i], got)
		}
		got, err := m.ScoreBatch(ctx, insts)
		if err != nil {
			t.Fatalf("%s: ScoreBatch: %v", m.Name(), err)
		}
		if len(got) != len(insts) {
			t.Fatalf("%s: %d results for %d instances", m.Name(), len(got), len(insts))
		}
		for i := range insts {
			assertBitwise(t, m.Name()+" batched", want[i], got[i])
		}
	}
}

func assertBitwise(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: score[%d] = %v, want exactly %v", label, i, got[i], want[i])
		}
	}
}

// TestScoreBatchCancellation: an already-canceled context must stop the
// work before any scoring happens.
func TestScoreBatchCancellation(t *testing.T) {
	insts, d := batchFixture(t)
	m := New(testConfig(d, 75))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ScoreBatch(ctx, insts); err != context.Canceled {
		t.Fatalf("ScoreBatch on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := m.Score(ctx, insts[0]); err != context.Canceled {
		t.Fatalf("Score on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestScoreBatchConcurrent hammers the pooled-tape path from many
// goroutines (run with -race): results must stay bitwise identical.
func TestScoreBatchConcurrent(t *testing.T) {
	insts, d := batchFixture(t)
	m := New(testConfig(d, 76))
	want := make([][]float64, len(insts))
	for i, inst := range insts {
		want[i] = m.Scores(inst)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got, err := m.ScoreBatch(ctx, insts)
				if err != nil {
					errs <- err
					return
				}
				for i := range insts {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							errs <- &mismatchErr{i, j}
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchErr struct{ i, j int }

func (e *mismatchErr) Error() string {
	return "concurrent ScoreBatch diverged from single-path scores"
}
