package core

import (
	"context"

	"repro/internal/rerank"
)

// UserState is the encoded, immutable result of the model's user-preference
// prefix: the personalized topic-preference distribution θ̂ (Eqs. 2–3),
// produced by the per-topic behavior LSTMs, the inter-topic self-attention
// and the preference MLP. θ̂ depends only on the user's features and behavior
// sequences — not on the candidate list — so it is the request-invariant
// prefix of scoring: for a returning user whose history has not changed,
// a cached UserState replaces the entire diversity-estimator forward pass.
//
// (The listwise relevance encoder, by contrast, runs over the candidate
// list itself and is different for every request; it is re-run on both the
// cold and the warm path.)
//
// A UserState is immutable after construction and safe to share across
// goroutines, batches and caches; holders must never mutate Theta. It is
// only valid for the exact model that produced it — the serving layer keys
// cached states by model version and flushes on every lifecycle transition
// (see internal/serve and DESIGN.md).
type UserState struct {
	theta []float64 // θ̂, length Cfg.Topics; nil for a diversity-free model
}

// NewUserState wraps a θ̂ vector as a state, taking ownership of the slice.
// It exists for tests and tooling that need synthetic states; production
// states come from EncodeUserState or ScoreBatchStates, whose floats are the
// model's own — a hand-built state only "fits" a model whose Topics matches
// the slice length.
func NewUserState(theta []float64) *UserState { return &UserState{theta: theta} }

// Theta exposes the encoded preference distribution. The returned slice is
// the state's backing storage: callers must treat it as read-only.
func (s *UserState) Theta() []float64 { return s.theta }

// Topics reports the preference dimensionality (0 for a diversity-free
// model's empty state).
func (s *UserState) Topics() int { return len(s.theta) }

// SizeBytes estimates the state's resident size for cache budget accounting:
// the float64 payload plus the struct, slice header and cache bookkeeping
// overhead of one entry.
func (s *UserState) SizeBytes() int { return 8*len(s.theta) + 96 }

// validFor reports whether the state can stand in for m's preference pass.
func (s *UserState) validFor(m *Model) bool {
	return s != nil && len(s.theta) == m.Cfg.Topics
}

// EncodeUserState runs only the user-preference prefix for one instance and
// returns its immutable encoded state. For a diversity-free model (the
// RAPID-RNN ablation) the state is empty: there is no user-dependent prefix
// to cache, and ScoreBatchStates ignores the states it is given.
//
// The returned state is bitwise identical to the θ̂ an uncached
// Score/ScoreBatch call would compute internally: every arithmetic step of
// the preference pass is row-private per instance, so encoding alone, in a
// batch, or inline during scoring yields the same floats (pinned by
// TestUserStateCachedScoresBitwise).
func (m *Model) EncodeUserState(ctx context.Context, inst *rerank.Instance) (*UserState, error) {
	if !m.Cfg.UseDiversity {
		return &UserState{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := m.tape()
	defer m.releaseTape(t)
	theta, err := m.batchPreference(ctx, t, []*rerank.Instance{inst})
	if err != nil {
		return nil, err
	}
	return &UserState{theta: theta[0]}, nil
}
