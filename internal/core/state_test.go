package core

import (
	"context"
	"testing"
)

// TestUserStateCachedScoresBitwise is the cache-correctness guarantee: for
// every model variant, scoring with pre-encoded user states must be bitwise
// identical to the uncached ScoreBatch path — the encoded θ̂ stands in for
// the preference pass without changing a single float.
func TestUserStateCachedScoresBitwise(t *testing.T) {
	insts, d := batchFixture(t)
	ctx := context.Background()
	for _, m := range modelVariants(d) {
		want, err := m.ScoreBatch(ctx, insts)
		if err != nil {
			t.Fatalf("%s: ScoreBatch: %v", m.Name(), err)
		}
		states := make([]*UserState, len(insts))
		for i, inst := range insts {
			st, err := m.EncodeUserState(ctx, inst)
			if err != nil {
				t.Fatalf("%s: EncodeUserState: %v", m.Name(), err)
			}
			if m.Cfg.UseDiversity && st.Topics() != m.Cfg.Topics {
				t.Fatalf("%s: state has %d topics, want %d", m.Name(), st.Topics(), m.Cfg.Topics)
			}
			states[i] = st
		}
		got, used, err := m.ScoreBatchStates(ctx, insts, states)
		if err != nil {
			t.Fatalf("%s: ScoreBatchStates: %v", m.Name(), err)
		}
		for b := range insts {
			for i := range want[b] {
				if got[b][i] != want[b][i] {
					t.Fatalf("%s: instance %d item %d: cached %v != uncached %v",
						m.Name(), b, i, got[b][i], want[b][i])
				}
			}
		}
		if m.Cfg.UseDiversity {
			for b := range insts {
				if used[b] != states[b] {
					t.Fatalf("%s: instance %d: supplied state not passed through", m.Name(), b)
				}
			}
		}
	}
}

// TestUserStateMixedBatch: a batch mixing state hits and misses must score
// every instance bitwise identically to the all-miss path, and the returned
// states must cover the misses (fresh) and hits (passed through).
func TestUserStateMixedBatch(t *testing.T) {
	insts, d := batchFixture(t)
	ctx := context.Background()
	m := New(testConfig(d, 70))
	want, err := m.ScoreBatch(ctx, insts)
	if err != nil {
		t.Fatal(err)
	}
	// States for even instances only; odd slots stay nil (cache misses).
	states := make([]*UserState, len(insts))
	for i := 0; i < len(insts); i += 2 {
		if states[i], err = m.EncodeUserState(ctx, insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, used, err := m.ScoreBatchStates(ctx, insts, states)
	if err != nil {
		t.Fatal(err)
	}
	for b := range insts {
		for i := range want[b] {
			if got[b][i] != want[b][i] {
				t.Fatalf("instance %d item %d: mixed-batch score %v != uncached %v", b, i, got[b][i], want[b][i])
			}
		}
		if used[b] == nil || used[b].Topics() != m.Cfg.Topics {
			t.Fatalf("instance %d: no usable state returned", b)
		}
	}
	// A miss's fresh state must itself be reusable: round-trip it.
	got2, _, err := m.ScoreBatchStates(ctx, insts[1:2], used[1:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[1] {
		if got2[0][i] != want[1][i] {
			t.Fatalf("round-tripped state diverges at item %d", i)
		}
	}
}

// TestUserStateWrongShapeIgnored: a state from a different geometry (wrong
// topic count) must be ignored, not trusted — the instance re-encodes.
func TestUserStateWrongShapeIgnored(t *testing.T) {
	insts, d := batchFixture(t)
	ctx := context.Background()
	m := New(testConfig(d, 70))
	want, err := m.ScoreBatch(ctx, insts[:1])
	if err != nil {
		t.Fatal(err)
	}
	bad := &UserState{theta: make([]float64, m.Cfg.Topics+3)}
	got, used, err := m.ScoreBatchStates(ctx, insts[:1], []*UserState{bad})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if got[0][i] != want[0][i] {
			t.Fatalf("wrong-shape state corrupted score at item %d", i)
		}
	}
	if used[0] == bad {
		t.Fatal("wrong-shape state was passed through as used")
	}
}

// TestEncodeUserStateNoDiversity: the RAPID-RNN ablation has no preference
// pass; its state is empty and supplying it changes nothing.
func TestEncodeUserStateNoDiversity(t *testing.T) {
	insts, d := batchFixture(t)
	ctx := context.Background()
	cfg := testConfig(d, 70)
	cfg.UseDiversity = false
	m := New(cfg)
	st, err := m.EncodeUserState(ctx, insts[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Topics() != 0 {
		t.Fatalf("diversity-free state has %d topics", st.Topics())
	}
	want, err := m.ScoreBatch(ctx, insts[:1])
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := m.ScoreBatchStates(ctx, insts[:1], []*UserState{st})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if got[0][i] != want[0][i] {
			t.Fatalf("empty state changed a diversity-free score at item %d", i)
		}
	}
}

// TestEncodeUserStateHonorsContext: a canceled context stops the encoder.
func TestEncodeUserStateHonorsContext(t *testing.T) {
	insts, d := batchFixture(t)
	m := New(testConfig(d, 70))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.EncodeUserState(ctx, insts[0]); err == nil {
		t.Fatal("EncodeUserState ignored canceled context")
	}
}
