package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// stubAdmin scripts the lifecycle control plane so the handler tests cover
// only what serve owns: routing, guarding and error mapping.
type stubAdmin struct {
	loadErr    error
	promoteErr error
	loaded     []string
}

func (a *stubAdmin) Versions() ([]VersionStatus, error) {
	return []VersionStatus{{Version: "v1", State: "active", Requests: 7}}, nil
}
func (a *stubAdmin) Load(v string) error {
	if a.loadErr != nil {
		return a.loadErr
	}
	a.loaded = append(a.loaded, v)
	return nil
}
func (a *stubAdmin) Promote(v string) error { return a.promoteErr }
func (a *stubAdmin) Rollback() (string, error) {
	return "aborted candidate v2; active stays v1", nil
}

func adminServer(t *testing.T, admin Admin, token string) http.Handler {
	t.Helper()
	s := NewServer(stubScorer{}, Manifest{Dataset: "test", Config: testConfig()},
		Config{Admin: admin, AdminToken: token})
	s.Log = t.Logf
	return s.Handler()
}

func adminRequest(method, path, body, bearer, remoteAddr string) *http.Request {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if bearer != "" {
		req.Header.Set("Authorization", "Bearer "+bearer)
	}
	if remoteAddr != "" {
		req.RemoteAddr = remoteAddr
	}
	return req
}

func TestAdminTokenGuard(t *testing.T) {
	h := adminServer(t, &stubAdmin{}, "sekrit")
	cases := []struct {
		name   string
		bearer string
		want   int
	}{
		{"no token", "", http.StatusForbidden},
		{"wrong token", "guess", http.StatusForbidden},
		{"right token", "sekrit", http.StatusOK},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		// A non-loopback peer: only the token may admit it.
		h.ServeHTTP(w, adminRequest(http.MethodGet, "/admin/models", "", tc.bearer, "203.0.113.9:4711"))
		if w.Code != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, w.Code, tc.want)
		}
	}
}

func TestAdminLoopbackGuard(t *testing.T) {
	// With no token configured, loopback peers are allowed and everyone else
	// is rejected — model swapping is never open to the network by default.
	h := adminServer(t, &stubAdmin{}, "")
	cases := []struct {
		remote string
		want   int
	}{
		{"127.0.0.1:4711", http.StatusOK},
		{"[::1]:4711", http.StatusOK},
		{"203.0.113.9:4711", http.StatusForbidden},
		{"not-an-addr", http.StatusForbidden},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, adminRequest(http.MethodGet, "/admin/models", "", "", tc.remote))
		if w.Code != tc.want {
			t.Fatalf("peer %s: status %d, want %d", tc.remote, w.Code, tc.want)
		}
	}
}

func TestAdminListVersions(t *testing.T) {
	h := adminServer(t, &stubAdmin{}, "")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, adminRequest(http.MethodGet, "/admin/models", "", "", "127.0.0.1:1"))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Versions []VersionStatus `json:"versions"`
	}
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Versions) != 1 || resp.Versions[0].Version != "v1" || resp.Versions[0].Requests != 7 {
		t.Fatalf("versions %+v", resp.Versions)
	}
}

func TestAdminErrorMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"unknown version", fmt.Errorf("wrap: %w", ErrUnknownVersion), http.StatusNotFound},
		{"lifecycle conflict", fmt.Errorf("wrap: %w", ErrLifecycleConflict), http.StatusConflict},
		{"warm-up failure", fmt.Errorf("warm-up of v2 failed: non-finite score"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		h := adminServer(t, &stubAdmin{loadErr: tc.err}, "")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, adminRequest(http.MethodPost, "/admin/models/load",
			`{"version":"v2"}`, "", "127.0.0.1:1"))
		if w.Code != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, w.Code, tc.want)
		}
		// The lifecycle error must reach the operator verbatim.
		if !strings.Contains(w.Body.String(), tc.err.Error()) {
			t.Fatalf("%s: body %q does not carry the error", tc.name, w.Body)
		}
	}
}

func TestAdminBadRequests(t *testing.T) {
	admin := &stubAdmin{}
	h := adminServer(t, admin, "")
	for name, body := range map[string]string{
		"not json":        "{",
		"missing version": `{}`,
		"empty version":   `{"version":""}`,
	} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, adminRequest(http.MethodPost, "/admin/models/load", body, "", "127.0.0.1:1"))
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, w.Code)
		}
	}
	if len(admin.loaded) != 0 {
		t.Fatalf("bad requests reached the control plane: %v", admin.loaded)
	}
}

func TestAdminAbsentWithoutConfig(t *testing.T) {
	// A server without Config.Admin must expose no admin surface at all.
	s := testServer(t, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, adminRequest(http.MethodGet, "/admin/models", "", "", "127.0.0.1:1"))
	if w.Code != http.StatusNotFound {
		t.Fatalf("admin surface present without Config.Admin: status %d", w.Code)
	}
}
func TestRouteKeyDeterministicAndSensitive(t *testing.T) {
	a := validRequest()
	b := validRequest()
	if RouteKey(a) != RouteKey(b) {
		t.Fatal("identical requests produced different routing keys")
	}
	b.UserFeatures[0] += 0.5
	if RouteKey(a) == RouteKey(b) {
		t.Fatal("routing key ignores user features")
	}
	c := validRequest()
	c.Items[0].ID = 99
	if RouteKey(a) == RouteKey(c) {
		t.Fatal("routing key ignores item ids")
	}
}

func TestProviderPinFlowsToResponse(t *testing.T) {
	// A provider-labeled pin must surface in the response wire format and
	// reach the Observe hook with the terminal outcome.
	var observed []string
	p := StaticProvider(Pinned{
		Scorer:   stubScorer{},
		Manifest: Manifest{Dataset: "test", Config: testConfig()},
		Version:  "v7",
		Canary:   true,
		Observe: func(outcome string, d time.Duration) {
			observed = append(observed, outcome)
		},
	})
	s := NewProviderServer(p, Config{})
	s.Log = t.Logf
	body, _ := json.Marshal(validRequest())
	w := postRerank(t, s.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp RerankResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != "v7" || !resp.Canary {
		t.Fatalf("response labels %q canary %v", resp.ModelVersion, resp.Canary)
	}
	if len(observed) != 1 || observed[0] != "ok" {
		t.Fatalf("observed outcomes %v", observed)
	}
}
