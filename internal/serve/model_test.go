package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func writeArtifacts(t *testing.T, modelCfg core.Config, manCfg core.Config) string {
	t.Helper()
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	m := core.New(modelCfg)
	if err := m.ParamSet().SaveFileAtomic(modelPath); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Manifest{Dataset: "test", Config: manCfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ManifestPath(modelPath), b, 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath
}

func TestLoadModelRoundTrip(t *testing.T) {
	cfg := testConfig()
	path := writeArtifacts(t, cfg, cfg)
	m, man, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.Dataset != "test" || m.Cfg.Topics != cfg.Topics {
		t.Fatalf("loaded %+v", man)
	}
	inst, err := ToInstance(cfg, validRequest())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Scores(inst); len(got) != 3 {
		t.Fatalf("scores %v", got)
	}
}

// TestLoadModelGeometryMismatch: weights written for one architecture must
// be rejected at startup when the manifest claims another — with an error
// naming the disagreement, not a panic at the first request.
func TestLoadModelGeometryMismatch(t *testing.T) {
	small := testConfig()
	big := small
	big.Hidden = 8 // shapes disagree with the saved weights
	path := writeArtifacts(t, small, big)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("shape mismatch accepted")
	}

	// Weights that cover only part of the model (trained without the
	// diversity head) must also fail strictly, not serve random weights.
	noDiv := testConfig()
	noDiv.UseDiversity = false
	full := testConfig()
	path = writeArtifacts(t, noDiv, full)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("partial weights accepted")
	}
}

func TestLoadModelInvalidManifest(t *testing.T) {
	cfg := testConfig()
	for name, mutate := range map[string]func(*core.Config){
		"zero hidden":       func(c *core.Config) { c.Hidden = 0 },
		"negative topics":   func(c *core.Config) { c.Topics = -1 },
		"zero user dim":     func(c *core.Config) { c.UserDim = 0 },
		"zero item dim":     func(c *core.Config) { c.ItemDim = 0 },
		"zero D":            func(c *core.Config) { c.D = 0 },
		"bad output":        func(c *core.Config) { c.Output = 99 },
		"bad encoder":       func(c *core.Config) { c.Encoder = 99 },
		"bad agg":           func(c *core.Config) { c.Agg = 99 },
		"bad diversity fn":  func(c *core.Config) { c.DiversityFn = "nope" },
		"transformer heads": func(c *core.Config) { c.Encoder = core.TransformerEncoder; c.Heads = 0 },
	} {
		bad := cfg
		mutate(&bad)
		if err := ValidateConfig(bad); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if err := ValidateConfig(cfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	// A syntactically valid manifest with an unbuildable config must fail at
	// LoadModel time.
	bad := cfg
	bad.Hidden = 0
	path := writeArtifacts(t, cfg, bad)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("unbuildable manifest accepted")
	}
}

func TestLoadModelMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadModel(filepath.Join(dir, "none.gob")); err == nil {
		t.Fatal("missing manifest accepted")
	}
	// Manifest present, weights missing.
	cfg := testConfig()
	modelPath := filepath.Join(dir, "model.gob")
	b, _ := json.Marshal(Manifest{Config: cfg})
	if err := os.WriteFile(ManifestPath(modelPath), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModel(modelPath); err == nil {
		t.Fatal("missing weights accepted")
	}
	// Corrupt weights.
	if err := os.WriteFile(modelPath, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModel(modelPath); err == nil {
		t.Fatal("corrupt weights accepted")
	}
}
