package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func writeArtifacts(t *testing.T, modelCfg core.Config, manCfg core.Config) string {
	t.Helper()
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	m := core.New(modelCfg)
	if err := m.ParamSet().SaveFileAtomic(modelPath); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Manifest{Dataset: "test", Config: manCfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ManifestPath(modelPath), b, 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath
}

func TestLoadModelRoundTrip(t *testing.T) {
	cfg := testConfig()
	path := writeArtifacts(t, cfg, cfg)
	m, man, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.Dataset != "test" || m.Cfg.Topics != cfg.Topics {
		t.Fatalf("loaded %+v", man)
	}
	inst, err := ToInstance(cfg, validRequest())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Scores(inst); len(got) != 3 {
		t.Fatalf("scores %v", got)
	}
}

// TestLoadModelGeometryMismatch: weights written for one architecture must
// be rejected at startup when the manifest claims another — with an error
// naming the disagreement, not a panic at the first request.
func TestLoadModelGeometryMismatch(t *testing.T) {
	small := testConfig()
	big := small
	big.Hidden = 8 // shapes disagree with the saved weights
	path := writeArtifacts(t, small, big)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("shape mismatch accepted")
	}

	// Weights that cover only part of the model (trained without the
	// diversity head) must also fail strictly, not serve random weights.
	noDiv := testConfig()
	noDiv.UseDiversity = false
	full := testConfig()
	path = writeArtifacts(t, noDiv, full)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("partial weights accepted")
	}
}

func TestLoadModelInvalidManifest(t *testing.T) {
	cfg := testConfig()
	for name, mutate := range map[string]func(*core.Config){
		"zero hidden":       func(c *core.Config) { c.Hidden = 0 },
		"negative topics":   func(c *core.Config) { c.Topics = -1 },
		"zero user dim":     func(c *core.Config) { c.UserDim = 0 },
		"zero item dim":     func(c *core.Config) { c.ItemDim = 0 },
		"zero D":            func(c *core.Config) { c.D = 0 },
		"bad output":        func(c *core.Config) { c.Output = 99 },
		"bad encoder":       func(c *core.Config) { c.Encoder = 99 },
		"bad agg":           func(c *core.Config) { c.Agg = 99 },
		"bad diversity fn":  func(c *core.Config) { c.DiversityFn = "nope" },
		"transformer heads": func(c *core.Config) { c.Encoder = core.TransformerEncoder; c.Heads = 0 },
	} {
		bad := cfg
		mutate(&bad)
		if err := ValidateConfig(bad); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if err := ValidateConfig(cfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	// A syntactically valid manifest with an unbuildable config must fail at
	// LoadModel time.
	bad := cfg
	bad.Hidden = 0
	path := writeArtifacts(t, cfg, bad)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("unbuildable manifest accepted")
	}
}

func TestLoadModelMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadModel(filepath.Join(dir, "none.gob")); err == nil {
		t.Fatal("missing manifest accepted")
	}
	// Manifest present, weights missing.
	cfg := testConfig()
	modelPath := filepath.Join(dir, "model.gob")
	b, _ := json.Marshal(Manifest{Config: cfg})
	if err := os.WriteFile(ManifestPath(modelPath), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModel(modelPath); err == nil {
		t.Fatal("missing weights accepted")
	}
	// Corrupt weights.
	if err := os.WriteFile(modelPath, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModel(modelPath); err == nil {
		t.Fatal("corrupt weights accepted")
	}
}

// TestLoadModelCorruptArtifacts covers the ways a weights file goes bad on
// real disks — truncation mid-write, zero-byte files from a crashed create,
// bit rot past the header — and requires a descriptive startup error for
// each, never a panic or a silently half-loaded model.
func TestLoadModelCorruptArtifacts(t *testing.T) {
	cfg := testConfig()
	path := writeArtifacts(t, cfg, cfg)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("zero-byte weights", func(t *testing.T) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadModel(path); err == nil {
			t.Fatal("zero-byte weights accepted")
		}
	})
	// Truncation at any point — inside the gob header, mid-stream, and one
	// byte short of complete — must fail cleanly.
	for _, frac := range []float64{0.01, 0.5, 0.95} {
		cut := int(float64(len(whole)) * frac)
		t.Run(fmt.Sprintf("truncated at %d/%d bytes", cut, len(whole)), func(t *testing.T) {
			if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := LoadModel(path); err == nil {
				t.Fatal("truncated weights accepted")
			}
		})
	}
	t.Run("truncated by one byte", func(t *testing.T) {
		if err := os.WriteFile(path, whole[:len(whole)-1], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadModel(path); err == nil {
			t.Fatal("almost-complete weights accepted")
		}
	})
	t.Run("zero-byte manifest", func(t *testing.T) {
		if err := os.WriteFile(path, whole, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ManifestPath(path), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadModel(path); err == nil {
			t.Fatal("zero-byte manifest accepted")
		}
	})
}

// TestLoadModelErrorsAreDescriptive pins the operator experience: each
// failure class must name what disagreed — the file, the parameter or the
// dimension — because "load failed" at 3am is not actionable.
func TestLoadModelErrorsAreDescriptive(t *testing.T) {
	small := testConfig()
	big := small
	big.Hidden = 8
	path := writeArtifacts(t, small, big)
	_, _, err := LoadModel(path)
	if err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// The error must name the disagreeing parameter and both shapes.
	for _, want := range []string{"manifest", "shape mismatch", "parameter", "snapshot"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error %q does not mention %q", err, want)
		}
	}

	cfg := testConfig()
	path = writeArtifacts(t, cfg, cfg)
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadModel(path)
	if err == nil {
		t.Fatal("empty weights accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("corruption error %q does not name the file", err)
	}

	bad := cfg
	bad.Topics = -3
	path = writeArtifacts(t, cfg, bad)
	_, _, err = LoadModel(path)
	if err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if !strings.Contains(err.Error(), "Topics") {
		t.Fatalf("geometry error %q does not name the bad dimension", err)
	}
}
