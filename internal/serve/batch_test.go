package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/rerank"
)

// TestV1RerankAliasIdenticalBodies: POST /rerank and POST /v1/rerank are the
// same endpoint — identical request, identical response body (modulo the
// measured latency_ms field).
func TestV1RerankAliasIdenticalBodies(t *testing.T) {
	s := stubServer(t, Config{})
	h := s.Handler()
	body, _ := json.Marshal(validRequest())

	decode := func(path string) map[string]any {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s status %d: %s", path, w.Code, w.Body.String())
		}
		var m map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		delete(m, "latency_ms")
		// request_id is unique per served response by contract; the alias
		// guarantee covers everything else about the body.
		if id, ok := m["request_id"].(string); !ok || id == "" {
			t.Fatalf("%s: missing request_id", path)
		}
		delete(m, "request_id")
		return m
	}
	legacy := decode("/rerank")
	v1 := decode("/v1/rerank")
	if !reflect.DeepEqual(legacy, v1) {
		t.Fatalf("alias bodies diverge:\n/rerank:    %v\n/v1/rerank: %v", legacy, v1)
	}
}

// TestHandleRerankBatchEnvelope: a mixed envelope answers every item — valid
// items score exactly like the single endpoint, malformed items carry a
// per-item error without rejecting the envelope.
func TestHandleRerankBatchEnvelope(t *testing.T) {
	s := stubServer(t, Config{})
	h := s.Handler()

	single := postRerank(t, h, mustJSON(t, validRequest()))
	var want RerankResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	bad := validRequest()
	bad.UserFeatures = []float64{0.1} // wrong geometry
	env := RerankBatchRequest{Requests: []RerankRequest{*validRequest(), *bad, *validRequest()}}

	w := postBatch(t, h, mustJSON(t, env))
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var resp RerankBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != 3 {
		t.Fatalf("got %d responses for 3 requests", len(resp.Responses))
	}
	for _, i := range []int{0, 2} {
		got := resp.Responses[i]
		if got.Error != "" || got.Degraded {
			t.Fatalf("valid item %d: %+v", i, got)
		}
		if !reflect.DeepEqual(got.Ranked, want.Ranked) || !reflect.DeepEqual(got.Scores, want.Scores) {
			t.Fatalf("item %d diverges from single endpoint:\nbatch:  %v %v\nsingle: %v %v",
				i, got.Ranked, got.Scores, want.Ranked, want.Scores)
		}
		if got.ModelVersion != want.ModelVersion {
			t.Fatalf("item %d version %q, single %q", i, got.ModelVersion, want.ModelVersion)
		}
	}
	if resp.Responses[1].Error == "" {
		t.Fatal("malformed item did not carry a per-item error")
	}
	if len(resp.Responses[1].Ranked) != 0 {
		t.Fatalf("malformed item still ranked: %+v", resp.Responses[1])
	}
}

// TestHandleRerankBatchLimits: an empty envelope and one over
// MaxBatchRequests are both rejected whole with 400.
func TestHandleRerankBatchLimits(t *testing.T) {
	s := stubServer(t, Config{})
	h := s.Handler()

	if w := postBatch(t, h, []byte(`{"requests":[]}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("empty envelope status %d", w.Code)
	}
	big := RerankBatchRequest{Requests: make([]RerankRequest, MaxBatchRequests+1)}
	for i := range big.Requests {
		big.Requests[i] = *validRequest()
	}
	if w := postBatch(t, h, mustJSON(t, big)); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized envelope status %d", w.Code)
	}
}

// TestHandleRerankBatchPerItemDegraded: a fault that hits one item degrades
// only that item — its batch-mates still get real scores.
func TestHandleRerankBatchPerItemDegraded(t *testing.T) {
	s := stubServer(t, Config{})
	s.Faults = FaultFunc(func(_ context.Context, inst *rerank.Instance) error {
		if inst.Items[0] == 17 {
			return fmt.Errorf("injected: item 17 feature store down")
		}
		return nil
	})
	h := s.Handler()

	marked := validRequest()
	marked.Items[0].ID = 17
	env := RerankBatchRequest{Requests: []RerankRequest{*validRequest(), *marked}}

	w := postBatch(t, h, mustJSON(t, env))
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var resp RerankBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Responses[0].Degraded {
		t.Fatalf("healthy batch-mate degraded: %+v", resp.Responses[0])
	}
	got := resp.Responses[1]
	if !got.Degraded || got.DegradedReason != "error" {
		t.Fatalf("faulted item not degraded-by-error: %+v", got)
	}
	// Degradation contract per item: initial order, init scores.
	if got.Ranked[0] != 17 || got.Scores[0] != 0.9 {
		t.Fatalf("degraded item did not fall back to initial order: %+v", got)
	}
}

// TestAdaptBaselinesBatchBitwise: for every baseline reranker, the
// context-aware adapter's Score and ScoreBatch reproduce the legacy Scores
// path bitwise — batch-of-1 and a mixed batch alike.
func TestAdaptBaselinesBatchBitwise(t *testing.T) {
	rerankers := []rerank.Reranker{
		baselines.NewMMR(),
		baselines.NewDPP(),
		baselines.NewSSD(),
		baselines.NewAdpMMR(),
		baselines.NewDESA(8, 11),
		baselines.NewDLCM(8, 12),
		baselines.NewPDGAN(8, 13),
		baselines.NewPRM(8, 14),
		baselines.NewSeq2Slate(8, 15),
		baselines.NewSetRank(8, 16),
		baselines.NewSRGA(8, 17),
	}
	short := validRequest()
	short.Items = short.Items[:2]
	var insts []*rerank.Instance
	for _, req := range []*RerankRequest{validRequest(), short, validRequest()} {
		inst, err := ToInstance(testConfig(), req)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}

	for _, r := range rerankers {
		t.Run(r.Name(), func(t *testing.T) {
			want := make([][]float64, len(insts))
			for i, inst := range insts {
				want[i] = r.Scores(inst)
			}
			sc := Adapt(r)
			for i, inst := range insts {
				got, err := sc.Score(context.Background(), inst)
				if err != nil {
					t.Fatal(err)
				}
				assertBitwiseEq(t, fmt.Sprintf("Score(inst %d)", i), got, want[i])
			}
			batch, err := sc.(BatchScorer).ScoreBatch(context.Background(), insts)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(insts) {
				t.Fatalf("ScoreBatch returned %d score sets for %d instances", len(batch), len(insts))
			}
			for i := range insts {
				assertBitwiseEq(t, fmt.Sprintf("ScoreBatch[%d]", i), batch[i], want[i])
			}
			one, err := sc.(BatchScorer).ScoreBatch(context.Background(), insts[:1])
			if err != nil {
				t.Fatal(err)
			}
			assertBitwiseEq(t, "batch-of-1", one[0], want[0])
		})
	}
}

// TestAdaptCancellation: a canceled context stops adapted scoring before any
// work happens.
func TestAdaptCancellation(t *testing.T) {
	inst, err := ToInstance(testConfig(), validRequest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := Adapt(baselines.NewMMR())
	if _, err := sc.Score(ctx, inst); err != context.Canceled {
		t.Fatalf("Score under canceled ctx: %v", err)
	}
	if _, err := sc.(BatchScorer).ScoreBatch(ctx, []*rerank.Instance{inst}); err != context.Canceled {
		t.Fatalf("ScoreBatch under canceled ctx: %v", err)
	}
}

// TestBatchEnvelopeFaultAttribution: a fault on an EARLIER envelope item
// must not shift the scores of later items onto the wrong responses. This
// is the regression test for runBatch compacting the dispatched slice in
// place: the envelope handler keeps ranging over the same backing array, so
// the compaction both raced (visible under -race) and could misattribute
// one item's scores to another.
func TestBatchEnvelopeFaultAttribution(t *testing.T) {
	s := stubServer(t, Config{})
	s.Faults = FaultFunc(func(_ context.Context, inst *rerank.Instance) error {
		if inst.Items[0] == 17 {
			return fmt.Errorf("injected: item 17 feature store down")
		}
		return nil
	})
	h := s.Handler()

	// Item k carries init score 0.9+k on its lead item; the stub scorer
	// echoes init scores, so each response's top score names its request.
	marked := validRequest()
	marked.Items[0].ID = 17
	env := RerankBatchRequest{Requests: []RerankRequest{*marked}}
	for k := 1; k < 4; k++ {
		req := validRequest()
		req.Items[0].InitScore = 0.9 + float64(k)
		env.Requests = append(env.Requests, *req)
	}

	w := postBatch(t, h, mustJSON(t, env))
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var resp RerankBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Responses[0].Degraded {
		t.Fatalf("faulted lead item not degraded: %+v", resp.Responses[0])
	}
	for k := 1; k < 4; k++ {
		got := resp.Responses[k]
		if got.Degraded || got.Error != "" {
			t.Fatalf("item %d caught its batch-mate's fault: %+v", k, got)
		}
		if want := 0.9 + float64(k); got.Scores[0] != want {
			t.Fatalf("item %d got score %v, want %v — scores attributed to the wrong request", k, got.Scores[0], want)
		}
	}
}

// funcScorer's func field makes its dynamic type non-comparable: using it in
// a batchKey (map key or ==) would panic at runtime.
type funcScorer struct {
	fn func(*rerank.Instance) []float64
}

func (f funcScorer) Name() string { return "func-scorer" }
func (f funcScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return f.fn(inst), nil
}

// TestNonComparableScorerFallsBack: a scorer whose dynamic type does not
// support == must score unbatched instead of panicking in the coalescer —
// on the submit path (map key) and on the envelope grouping path (==).
func TestNonComparableScorerFallsBack(t *testing.T) {
	fs := funcScorer{fn: func(inst *rerank.Instance) []float64 { return inst.InitScores }}
	s := NewServer(fs, Manifest{Dataset: "test", Config: testConfig()}, Config{MaxInFlight: 16})
	s.Log = t.Logf
	h := s.Handler()

	if w := postRerank(t, h, mustJSON(t, validRequest())); w.Code != http.StatusOK {
		t.Fatalf("single request with non-comparable scorer: status %d: %s", w.Code, w.Body.String())
	}
	env := RerankBatchRequest{Requests: []RerankRequest{*validRequest(), *validRequest()}}
	w := postBatch(t, h, mustJSON(t, env))
	if w.Code != http.StatusOK {
		t.Fatalf("batch envelope with non-comparable scorer: status %d: %s", w.Code, w.Body.String())
	}
	var resp RerankBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, item := range resp.Responses {
		if item.Degraded || item.Error != "" {
			t.Fatalf("item %d did not score: %+v", i, item)
		}
	}
}

// TestBatchEnvelopeTerminalStatus: the envelope's responses_total status
// reflects its items — all-invalid counts bad_input, all-degraded counts
// degraded, and only an envelope with at least one scored item counts ok.
func TestBatchEnvelopeTerminalStatus(t *testing.T) {
	s := stubServer(t, Config{})
	h := s.Handler()
	ok := s.met.Responses.With("ok")
	badInput := s.met.Responses.With("bad_input")
	degraded := s.met.Responses.With("degraded")

	bad := validRequest()
	bad.UserFeatures = []float64{0.1} // wrong geometry
	if w := postBatch(t, h, mustJSON(t, RerankBatchRequest{Requests: []RerankRequest{*bad, *bad}})); w.Code != http.StatusOK {
		t.Fatalf("all-invalid envelope status %d", w.Code)
	}
	if ok.Value() != 0 || badInput.Value() != 1 {
		t.Fatalf("all-invalid envelope counted ok=%d bad_input=%d, want 0/1", ok.Value(), badInput.Value())
	}

	s.Faults = FaultFunc(func(context.Context, *rerank.Instance) error {
		return fmt.Errorf("injected: everything is down")
	})
	if w := postBatch(t, h, mustJSON(t, RerankBatchRequest{Requests: []RerankRequest{*validRequest()}})); w.Code != http.StatusOK {
		t.Fatalf("all-degraded envelope status %d", w.Code)
	}
	if ok.Value() != 0 || degraded.Value() != 1 {
		t.Fatalf("all-degraded envelope counted ok=%d degraded=%d, want 0/1", ok.Value(), degraded.Value())
	}

	s.Faults = nil
	if w := postBatch(t, h, mustJSON(t, RerankBatchRequest{Requests: []RerankRequest{*validRequest(), *bad}})); w.Code != http.StatusOK {
		t.Fatalf("mixed envelope status %d", w.Code)
	}
	if ok.Value() != 1 {
		t.Fatalf("mixed envelope with a scored item counted ok=%d, want 1", ok.Value())
	}
}

// blockScorer parks in Score until its context ends; the chan field keeps
// the type comparable and signals the test that scoring has begun.
type blockScorer struct{ started chan struct{} }

func (b blockScorer) Name() string { return "block" }
func (b blockScorer) Score(ctx context.Context, _ *rerank.Instance) ([]float64, error) {
	b.started <- struct{}{}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestClientCancelCountsCanceled: a client that disconnects mid-scoring is
// counted as canceled (matching the admission path), not as a deadline
// degradation, and no response body is serialized for it.
func TestClientCancelCountsCanceled(t *testing.T) {
	bs := blockScorer{started: make(chan struct{}, 1)}
	s := NewServer(bs, Manifest{Dataset: "test", Config: testConfig()}, Config{Budget: 5 * time.Second})
	s.Log = t.Logf
	h := s.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-bs.started
		cancel()
	}()
	req := httptest.NewRequest(http.MethodPost, "/v1/rerank", bytes.NewReader(mustJSON(t, validRequest()))).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)

	if got := s.met.Responses.With("canceled").Value(); got != 1 {
		t.Fatalf("responses{canceled} = %d, want 1", got)
	}
	if got := s.met.Degraded.Total(); got != 0 {
		t.Fatalf("client cancel recorded %d degradations, want 0", got)
	}
	if w.Body.Len() != 0 {
		t.Fatalf("response body serialized for a departed client: %s", w.Body.String())
	}
}

func assertBitwiseEq(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: score %d = %v, legacy %v (not bitwise identical)", label, i, got[i], want[i])
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postBatch(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/rerank:batch", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}
