package serve

import (
	"context"

	"repro/internal/rerank"
)

// FaultInjector is the chaos-testing seam on the scoring path. Production
// servers leave it nil (a nil injector costs one pointer compare per
// request); tests install an implementation to simulate the failure modes a
// live re-ranker must survive:
//
//   - latency spikes — BeforeScore sleeps past the request budget, forcing
//     the deadline-degradation path;
//   - scoring errors — BeforeScore returns a non-nil error, standing in for
//     a remote feature store or embedding service failing;
//   - model bugs — BeforeScore panics, standing in for an out-of-range index
//     or corrupted weight inside the forward pass.
//
// BeforeScore runs on the scoring goroutine, inside the panic-recovery and
// deadline envelope, immediately before the model is invoked. Any non-nil
// error (and any panic) triggers the degraded fallback, never a 5xx.
type FaultInjector interface {
	BeforeScore(ctx context.Context, inst *rerank.Instance) error
}

// FaultFunc adapts a plain function to the FaultInjector interface.
type FaultFunc func(ctx context.Context, inst *rerank.Instance) error

// BeforeScore implements FaultInjector.
func (f FaultFunc) BeforeScore(ctx context.Context, inst *rerank.Instance) error {
	return f(ctx, inst)
}
