package serve

import (
	"context"
	"fmt"
	"net"

	"repro/internal/serve/binproto"
)

// serveBinary mounts the fleet-internal binary frontend (binproto) on ln,
// backed by the same engine as the HTTP routes — one set of models, limits
// and metrics regardless of which protocol a request arrived on. The
// returned stop function closes the listener and drains the protocol's
// connections within ctx's deadline; fatal serve errors surface on errc so
// Serve fails the same way it would for the HTTP listener.
func (s *Server) serveBinary(ln net.Listener, errc chan<- error) func(context.Context) {
	bs := &binproto.Server{Eng: s.Engine, Log: s.Log, IdleTimeout: s.cfg.IdleTimeout}
	go func() {
		if err := bs.Serve(ln); err != nil {
			errc <- fmt.Errorf("serve: binary frontend: %w", err)
		}
	}()
	return func(ctx context.Context) {
		ln.Close()
		bs.Shutdown(ctx)
	}
}
