package serve

// HTTP-only wire types. The request/response bodies themselves are the
// engine's transport-neutral types (see aliases.go); what remains here is
// the envelope shapes that exist only on the HTTP surface.

// ReadyStatus is the JSON body of GET /readyz. The bare status-code
// contract is unchanged — 200 while accepting traffic, 503 once drain has
// begun — so probes that only check the code keep working; the body carries
// what a fleet router additionally needs from one probe: the pinned model
// version (its skew detector flags mixed-version windows during rollouts)
// and the draining flag (eject without penalizing the replica's breaker).
type ReadyStatus struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining,omitempty"`
	// ModelVersion is the active registry version label; empty (and omitted)
	// in the single-model deployment shape.
	ModelVersion string `json:"model_version,omitempty"`
}

// RerankBatchRequest is the wire format of POST /v1/rerank:batch: up to
// MaxBatchRequests independent re-rank requests scored as one envelope.
type RerankBatchRequest struct {
	Requests []RerankRequest `json:"requests"`
}

// RerankBatchResponse carries one response per request, in request order.
// Items degrade independently: inspect each response's Degraded/Error
// rather than an envelope-level status.
type RerankBatchResponse struct {
	Responses []RerankResponse `json:"responses"`
}
