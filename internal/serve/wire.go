package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rerank"
)

// RerankRequest is the wire format of POST /rerank. It must carry everything
// the model consumes (features, topic coverage, per-topic behavior
// sequences), mirroring rerank.Instance.
type RerankRequest struct {
	UserFeatures   []float64       `json:"user_features"`
	Items          []RerankItem    `json:"items"`
	TopicSequences [][]SeqItemWire `json:"topic_sequences"`
}

// RerankItem is one candidate of the initial list.
type RerankItem struct {
	ID        int       `json:"id"`
	Features  []float64 `json:"features"`
	Cover     []float64 `json:"cover"`
	InitScore float64   `json:"init_score"`
}

// SeqItemWire is one entry of a per-topic behavior sequence.
type SeqItemWire struct {
	Features []float64 `json:"features"`
}

// RerankResponse is the wire format of a /rerank reply. Degraded marks the
// graceful-degradation contract: the server could not produce model scores
// inside the request budget (deadline overrun, scoring error or recovered
// scoring panic) and fell back to the initial-ranker ordering instead of
// failing the request. DegradedReason says why ("deadline", "error",
// "panic").
type RerankResponse struct {
	Ranked         []int     `json:"ranked"`
	Scores         []float64 `json:"scores"` // aligned with Ranked
	Degraded       bool      `json:"degraded,omitempty"`
	DegradedReason string    `json:"degraded_reason,omitempty"`
	// ModelVersion labels the registry version that served the request
	// (empty in the single-model deployment shape); Canary marks requests
	// routed to a candidate under canary evaluation.
	ModelVersion string  `json:"model_version,omitempty"`
	Canary       bool    `json:"canary,omitempty"`
	LatencyMS    float64 `json:"latency_ms"`
	// RequestID uniquely labels this served response; clients echo it in
	// POST /v1/feedback events so impressions and clicks join
	// deterministically. Per item inside a batch envelope. Empty only on
	// per-item validation errors (Error set), which served no ranking.
	RequestID string `json:"request_id,omitempty"`
	// Error reports a per-item validation failure inside a batch envelope
	// (the single-item routes answer 4xx instead). An item with Error set
	// has no ranking.
	Error string `json:"error,omitempty"`
}

// ReadyStatus is the JSON body of GET /readyz. The bare status-code
// contract is unchanged — 200 while accepting traffic, 503 once drain has
// begun — so probes that only check the code keep working; the body carries
// what a fleet router additionally needs from one probe: the pinned model
// version (its skew detector flags mixed-version windows during rollouts)
// and the draining flag (eject without penalizing the replica's breaker).
type ReadyStatus struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining,omitempty"`
	// ModelVersion is the active registry version label; empty (and omitted)
	// in the single-model deployment shape.
	ModelVersion string `json:"model_version,omitempty"`
}

// RerankBatchRequest is the wire format of POST /v1/rerank:batch: up to
// MaxBatchRequests independent re-rank requests scored as one envelope.
type RerankBatchRequest struct {
	Requests []RerankRequest `json:"requests"`
}

// RerankBatchResponse carries one response per request, in request order.
// Items degrade independently: inspect each response's Degraded/Error
// rather than an envelope-level status.
type RerankBatchResponse struct {
	Responses []RerankResponse `json:"responses"`
}

// ToInstance validates the wire request against the model geometry and
// assembles a rerank.Instance.
func ToInstance(cfg core.Config, req *RerankRequest) (*rerank.Instance, error) {
	if len(req.UserFeatures) != cfg.UserDim {
		return nil, fmt.Errorf("user_features has %d dims, model wants %d", len(req.UserFeatures), cfg.UserDim)
	}
	if len(req.Items) == 0 {
		return nil, fmt.Errorf("no items to re-rank")
	}
	if len(req.Items) > MaxListLength {
		return nil, fmt.Errorf("request has %d items, limit is %d", len(req.Items), MaxListLength)
	}
	if len(req.TopicSequences) != cfg.Topics {
		return nil, fmt.Errorf("topic_sequences has %d topics, model wants %d", len(req.TopicSequences), cfg.Topics)
	}
	items := make([]int, len(req.Items))
	scores := make([]float64, len(req.Items))
	cover := make([][]float64, len(req.Items))
	feats := make(map[int][]float64, len(req.Items))
	coverByID := make(map[int][]float64, len(req.Items))
	for i, it := range req.Items {
		if len(it.Features) != cfg.ItemDim {
			return nil, fmt.Errorf("item %d has %d feature dims, model wants %d", it.ID, len(it.Features), cfg.ItemDim)
		}
		if len(it.Cover) != cfg.Topics {
			return nil, fmt.Errorf("item %d has %d cover dims, model wants %d", it.ID, len(it.Cover), cfg.Topics)
		}
		items[i] = it.ID
		scores[i] = it.InitScore
		cover[i] = it.Cover
		feats[it.ID] = it.Features
		coverByID[it.ID] = it.Cover
	}
	// Behavior-sequence items are addressed with synthetic negative IDs so
	// they cannot collide with list items.
	seqs := make([][]int, cfg.Topics)
	nextID := -1
	for j, seq := range req.TopicSequences {
		for _, si := range seq {
			if len(si.Features) != cfg.ItemDim {
				return nil, fmt.Errorf("topic %d sequence item has %d feature dims, model wants %d", j, len(si.Features), cfg.ItemDim)
			}
			feats[nextID] = si.Features
			seqs[j] = append(seqs[j], nextID)
			nextID--
		}
		if len(seqs[j]) > rerank.TopicSeqCap {
			seqs[j] = seqs[j][len(seqs[j])-rerank.TopicSeqCap:]
		}
	}
	// Unknown-id coverage lookups (historical items outside the list) share
	// one zero vector; callers treat coverage as read-only.
	zeroCover := make([]float64, cfg.Topics)
	return &rerank.Instance{
		UserFeat:   req.UserFeatures,
		Items:      items,
		InitScores: scores,
		Cover:      cover,
		TopicSeqs:  seqs,
		M:          cfg.Topics,
		ItemFeat:   func(id int) []float64 { return feats[id] },
		CoverOf: func(id int) []float64 {
			if c, ok := coverByID[id]; ok {
				return c
			}
			return zeroCover
		},
	}, nil
}

// FallbackOrder is the graceful-degradation ranking: the initial ranker's
// ordering by its own scores (stable on ties), exactly what the upstream
// stage would have shown had the re-ranker not existed.
func FallbackOrder(inst *rerank.Instance) ([]int, []float64) {
	order := rerank.OrderByScores(inst.Items, inst.InitScores)
	pos := make(map[int]int, len(inst.Items))
	for i, id := range inst.Items {
		pos[id] = i
	}
	ordered := make([]float64, len(order))
	for i, id := range order {
		ordered[i] = inst.InitScores[pos[id]]
	}
	return order, ordered
}
