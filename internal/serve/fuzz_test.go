package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzRerankRequest drives arbitrary bytes through the full /rerank wire
// path — JSON decode, ToInstance geometry validation, admission, scoring,
// encode. The contract under fuzz: the handler never panics (a panic would
// surface as a 500 from the recovery middleware) and malformed input is
// always a 4xx, never a 5xx and never an OK with a broken instance.
//
// Seed corpus: a valid request plus the known-tricky shapes (committed under
// testdata/fuzz/FuzzRerankRequest; CI runs a -fuzztime smoke on top).
func FuzzRerankRequest(f *testing.F) {
	valid, err := json.Marshal(validRequest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("{"))
	f.Add([]byte(`{"user_features":"nope"}`))
	f.Add([]byte(`{"user_features":[0.1,0.2,0.3],"items":[],"topic_sequences":[[],[]]}`))
	f.Add([]byte(`{"user_features":[1e308,-1e308,0],"items":[{"id":-1,"features":[null,2],"cover":[1,0]}],"topic_sequences":[[],[]]}`))
	f.Add([]byte(`{"topic_sequences":[[{"features":[]}]]}`))

	s := NewServer(stubScorer{}, Manifest{Dataset: "fuzz", Config: testConfig()}, Config{
		Budget:    time.Second,
		QueueWait: time.Second,
	})
	s.Log = func(string, ...any) {}
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/rerank", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK:
			// An accepted request must round-trip to a complete response.
			var resp RerankResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", w.Body.String(), err)
			}
			if len(resp.Ranked) == 0 || len(resp.Ranked) != len(resp.Scores) {
				t.Fatalf("200 with malformed ranking: %+v", resp)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
			// Rejected cleanly.
		default:
			t.Fatalf("status %d on input %q: %s", w.Code, body, w.Body.String())
		}
	})
}

// FuzzManifest drives arbitrary bytes through the manifest parsing stage a
// server runs at startup (decodeManifest = JSON decode + ValidateConfig).
// The contract: never panic, and any manifest that parses must carry a
// geometry the serving tier can actually build — positive and capped
// dimensions, known enum values — because LoadModel constructs the model
// from it unconditionally.
func FuzzManifest(f *testing.F) {
	valid, err := json.Marshal(Manifest{Dataset: "taobao", Lambda: 0.9, Config: testConfig()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("{"))
	f.Add([]byte(`{"config":{"UserDim":-1}}`))
	f.Add([]byte(`{"config":{"UserDim":3,"ItemDim":2,"Topics":1000000,"Hidden":4,"D":3}}`))
	f.Add([]byte(`{"dataset":"x","config":{"UserDim":1e9}}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := decodeManifest(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking or accepting garbage is not
		}
		cfg := man.Config
		for _, d := range []int{cfg.UserDim, cfg.ItemDim, cfg.Topics, cfg.Hidden, cfg.D} {
			if d <= 0 || d > MaxDim {
				t.Fatalf("accepted manifest with out-of-range dimension %d: %+v", d, cfg)
			}
		}
		if err := ValidateConfig(cfg); err != nil {
			t.Fatalf("decodeManifest accepted a config ValidateConfig rejects: %v", err)
		}
	})
}
