// Package binproto is the fleet-internal binary frontend for the RAPID
// scoring engine: the same engine.Engine the HTTP frontend serves, behind a
// length-prefixed binary protocol over TCP. It exists for the fleet-internal
// hop (router → replica, batch backfill → replica) where both ends are this
// codebase and JSON's encode/decode cost — float formatting, reflection,
// per-field allocations — is pure overhead inside a ~50 ms budget.
//
// Scores cross the wire as raw IEEE-754 bits, so a response is bitwise
// identical to the same request served over HTTP (the JSON path round-trips
// float64s losslessly via strconv; the binary path never leaves binary).
// The parity suite in internal/serve asserts this.
//
// # Framing
//
// Every message is one frame:
//
//	u32 LE payload length | u8 frame type | payload
//
// Frame types: 1 = rerank request, 2 = rerank response, 3 = error. Payloads
// are packed little-endian: integers as fixed-width u32/u64, floats as
// Float64bits, strings and slices length-prefixed. A frame longer than
// MaxFrame is a protocol error and closes the connection — the cap bounds
// what a hostile or corrupted peer can make the server allocate.
//
// Errors mirror the HTTP error envelope: a stable machine-readable code
// (same strings as the v1 JSON surface: bad_input, overloaded, draining,
// unknown_tenant, internal), a human message and a retry-after hint for the
// retryable codes.
package binproto

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/engine"
)

// Frame types.
const (
	FrameRerankRequest  = 1
	FrameRerankResponse = 2
	FrameError          = 3
)

// MaxFrame caps one frame's payload. It is sized to the HTTP frontend's
// default body cap (8 MiB): the binary encoding of any request the HTTP
// surface would admit fits comfortably.
const MaxFrame = 8 << 20

// headerSize is the frame prefix: u32 payload length + u8 type.
const headerSize = 5

// Error codes carried in error frames, aligned with the v1 HTTP envelope.
const (
	CodeBadInput      = "bad_input"
	CodeOverloaded    = "overloaded"
	CodeDraining      = "draining"
	CodeUnknownTenant = "unknown_tenant"
	CodeInternal      = "internal"
)

// RemoteError is an error frame surfaced to the client caller. Retryable
// reports whether backing off RetryAfterS seconds and retrying can succeed
// (overloaded, draining); bad_input and unknown_tenant errors are permanent
// for the request that caused them.
type RemoteError struct {
	Code        string
	Message     string
	RetryAfterS int
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("binproto: remote error %s: %s", e.Code, e.Message)
}

// Retryable reports whether the same request may succeed after a backoff.
func (e *RemoteError) Retryable() bool {
	return e.Code == CodeOverloaded || e.Code == CodeDraining
}

// --- encoding ------------------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendFloats(b []byte, fs []float64) []byte {
	b = appendU32(b, uint32(len(fs)))
	for _, f := range fs {
		b = appendF64(b, f)
	}
	return b
}

// AppendRequest encodes req as a rerank-request payload (no frame header).
func AppendRequest(b []byte, req *engine.Request) []byte {
	b = appendString(b, req.Tenant)
	b = appendFloats(b, req.UserFeatures)
	b = appendU32(b, uint32(len(req.Items)))
	for i := range req.Items {
		it := &req.Items[i]
		b = appendU64(b, uint64(int64(it.ID)))
		b = appendFloats(b, it.Features)
		b = appendFloats(b, it.Cover)
		b = appendF64(b, it.InitScore)
	}
	b = appendU32(b, uint32(len(req.TopicSequences)))
	for _, seq := range req.TopicSequences {
		b = appendU32(b, uint32(len(seq)))
		for i := range seq {
			b = appendFloats(b, seq[i].Features)
		}
	}
	return b
}

// AppendResponse encodes resp as a rerank-response payload (no frame
// header). Scores travel as raw Float64bits: the decoded response is
// bitwise identical to the encoded one.
func AppendResponse(b []byte, resp *engine.Response) []byte {
	b = appendU32(b, uint32(len(resp.Ranked)))
	for _, id := range resp.Ranked {
		b = appendU64(b, uint64(int64(id)))
	}
	b = appendFloats(b, resp.Scores)
	if resp.Degraded {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendString(b, resp.DegradedReason)
	b = appendString(b, resp.ModelVersion)
	if resp.Canary {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendF64(b, resp.LatencyMS)
	b = appendString(b, resp.RequestID)
	b = appendString(b, resp.Error)
	return b
}

// AppendError encodes an error payload (no frame header).
func AppendError(b []byte, code, msg string, retryAfterS int) []byte {
	b = appendString(b, code)
	b = appendString(b, msg)
	b = appendU32(b, uint32(retryAfterS))
	return b
}

// --- decoding ------------------------------------------------------------

// reader is a bounds-checked cursor over one frame payload. Every length
// prefix is validated against the bytes actually remaining before any
// allocation, so a hostile frame can claim giant counts without making the
// decoder allocate more than the frame it already paid for.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("binproto: truncated frame at %s (offset %d of %d)", what, r.off, len(r.b))
	}
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

// boolean accepts exactly 0 or 1 — any other byte means framing desync, and
// tolerating it would give one message multiple wire forms.
func (r *reader) boolean(what string) bool {
	switch r.u8(what) {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(what)
		return false
	}
}

func (r *reader) u8(what string) byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// count reads a length prefix for elements of elemSize bytes minimum and
// rejects counts the remaining payload cannot possibly hold.
func (r *reader) count(what string, elemSize int) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || elemSize > 0 && n > (len(r.b)-r.off)/elemSize {
		r.fail(what)
		return 0
	}
	return n
}

func (r *reader) str(what string) string {
	n := r.count(what, 1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) floats(what string) []float64 {
	n := r.count(what, 8)
	if r.err != nil || n == 0 {
		return nil
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = r.f64(what)
	}
	return fs
}

// DecodeRequest decodes a rerank-request payload. Trailing bytes after a
// complete request are a protocol error — they mean framing desync.
func DecodeRequest(payload []byte) (*engine.Request, error) {
	r := &reader{b: payload}
	req := &engine.Request{}
	req.Tenant = r.str("tenant")
	req.UserFeatures = r.floats("user_features")
	nItems := r.count("items", 8)
	if r.err == nil && nItems > 0 {
		req.Items = make([]engine.Item, nItems)
		for i := range req.Items {
			it := &req.Items[i]
			it.ID = int(int64(r.u64("item id")))
			it.Features = r.floats("item features")
			it.Cover = r.floats("item cover")
			it.InitScore = r.f64("item init_score")
		}
	}
	nTopics := r.count("topic_sequences", 4)
	if r.err == nil && nTopics > 0 {
		req.TopicSequences = make([][]engine.SeqItem, nTopics)
		for j := range req.TopicSequences {
			nSeq := r.count("sequence", 4)
			if r.err != nil {
				break
			}
			if nSeq > 0 {
				req.TopicSequences[j] = make([]engine.SeqItem, nSeq)
				for k := range req.TopicSequences[j] {
					req.TopicSequences[j][k].Features = r.floats("sequence features")
				}
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("binproto: %d trailing bytes after request", len(payload)-r.off)
	}
	return req, nil
}

// DecodeResponse decodes a rerank-response payload.
func DecodeResponse(payload []byte) (engine.Response, error) {
	r := &reader{b: payload}
	var resp engine.Response
	nRanked := r.count("ranked", 8)
	if r.err == nil && nRanked > 0 {
		resp.Ranked = make([]int, nRanked)
		for i := range resp.Ranked {
			resp.Ranked[i] = int(int64(r.u64("ranked id")))
		}
	}
	resp.Scores = r.floats("scores")
	resp.Degraded = r.boolean("degraded")
	resp.DegradedReason = r.str("degraded_reason")
	resp.ModelVersion = r.str("model_version")
	resp.Canary = r.boolean("canary")
	resp.LatencyMS = r.f64("latency_ms")
	resp.RequestID = r.str("request_id")
	resp.Error = r.str("error")
	if r.err != nil {
		return engine.Response{}, r.err
	}
	if r.off != len(payload) {
		return engine.Response{}, fmt.Errorf("binproto: %d trailing bytes after response", len(payload)-r.off)
	}
	return resp, nil
}

// DecodeError decodes an error payload into a *RemoteError.
func DecodeError(payload []byte) (*RemoteError, error) {
	r := &reader{b: payload}
	e := &RemoteError{}
	e.Code = r.str("error code")
	e.Message = r.str("error message")
	e.RetryAfterS = int(r.u32("retry_after_s"))
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("binproto: %d trailing bytes after error", len(payload)-r.off)
	}
	return e, nil
}
