package binproto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// writeFrame writes one frame: u32 LE payload length, u8 type, payload.
// scratch, when non-nil, is reused for the header+payload assembly so a
// steady-state connection writes frames without allocating.
func writeFrame(w io.Writer, scratch *[]byte, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("binproto: frame payload %d exceeds %d", len(payload), MaxFrame)
	}
	buf := (*scratch)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	*scratch = buf
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame into scratch (grown as needed, reused across
// calls) and returns its type and payload. The payload aliases scratch and
// is valid until the next readFrame on the same scratch.
func readFrame(r io.Reader, scratch *[]byte) (byte, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("binproto: frame payload %d exceeds %d", n, MaxFrame)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("binproto: truncated payload: %w", err)
	}
	return hdr[4], payload, nil
}
