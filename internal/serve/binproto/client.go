package binproto

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
)

// Client is one binary-protocol connection. Rerank calls are serialized on
// the connection (the protocol answers in order); callers that want
// concurrency hold a Client per in-flight stream, which is how the load
// generator and the router's replica pools already shape their connections.
// Encode and read buffers are reused across calls, so a steady-state client
// allocates only what the decoded response itself needs.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte // frame assembly
	pbuf []byte // payload assembly
	rbuf []byte // frame read
}

// Dial connects to a binary-protocol listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests use net.Pipe or an
// in-process listener).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Rerank sends one request and waits for its answer. Engine-level failures
// come back as *RemoteError; transport failures as plain errors (the
// connection is then unusable). ctx's deadline bounds the round trip.
func (c *Client) Rerank(ctx context.Context, req *engine.Request) (engine.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Time{}
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		return engine.Response{}, err
	}
	c.pbuf = AppendRequest(c.pbuf[:0], req)
	if err := writeFrame(c.conn, &c.wbuf, FrameRerankRequest, c.pbuf); err != nil {
		return engine.Response{}, fmt.Errorf("binproto: send request: %w", err)
	}
	typ, payload, err := readFrame(c.br, &c.rbuf)
	if err != nil {
		return engine.Response{}, fmt.Errorf("binproto: read response: %w", err)
	}
	switch typ {
	case FrameRerankResponse:
		return DecodeResponse(payload)
	case FrameError:
		re, derr := DecodeError(payload)
		if derr != nil {
			return engine.Response{}, derr
		}
		return engine.Response{}, re
	default:
		return engine.Response{}, fmt.Errorf("binproto: unexpected frame type %d", typ)
	}
}
