package binproto

import (
	"bufio"
	"context"
	"errors"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
)

// Server serves the binary protocol from an engine. One goroutine per
// connection, requests on a connection answered in order — the protocol is
// fleet-internal, and its clients (the router's replica pool, rapidload)
// hold a connection per concurrent stream instead of multiplexing.
type Server struct {
	// Eng is the engine requests are scored on; shared with the HTTP
	// frontend when both are mounted, so both speak for the same models,
	// metrics and admission limits.
	Eng *engine.Engine
	// Log receives operational messages; defaults to log.Printf.
	Log func(format string, args ...any)
	// IdleTimeout bounds how long a connection may sit between requests
	// (default 60s, matching the HTTP frontend's idle timeout).
	IdleTimeout time.Duration

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

func (s *Server) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Serve accepts connections on ln until the listener is closed (Shutdown
// closes it). It returns nil on clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown waits for in-flight connections to finish their current request,
// up to ctx's deadline, then force-closes the stragglers. The caller closes
// the listener first (Shutdown does not own it).
func (s *Server) Shutdown(ctx context.Context) {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// serveConn answers request frames until the peer hangs up or desyncs.
// Engine-level failures (shed, bad input, unknown tenant) answer an error
// frame and keep the connection; framing failures answer one error frame
// and close — after a desync nothing on the stream can be trusted.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	var rbuf, wbuf, payload []byte
	met := s.Eng.Metrics()
	idle := s.IdleTimeout
	if idle <= 0 {
		idle = 60 * time.Second
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		typ, body, err := readFrame(br, &rbuf)
		if err != nil {
			return // peer closed, timed out or sent an oversized frame
		}
		s.mu.Lock()
		draining := s.closed
		s.mu.Unlock()
		if draining {
			payload = AppendError(payload[:0], CodeDraining, "draining, replica going away", 1)
			_ = writeFrame(conn, &wbuf, FrameError, payload)
			return
		}
		if typ != FrameRerankRequest {
			payload = AppendError(payload[:0], CodeBadInput, "unexpected frame type", 0)
			_ = writeFrame(conn, &wbuf, FrameError, payload)
			return
		}
		start := time.Now()
		req, derr := DecodeRequest(body)
		if derr != nil {
			// Mirror the HTTP frontend's decode-failure accounting so the
			// request totals cover both frontends identically.
			met.Requests.Inc()
			met.BadInput.Inc()
			met.Responses.With("bad_input").Inc()
			met.Request.ObserveDuration(time.Since(start))
			payload = AppendError(payload[:0], CodeBadInput, derr.Error(), 0)
			_ = writeFrame(conn, &wbuf, FrameError, payload)
			return
		}
		resp, rerr := s.Eng.Rerank(context.Background(), req)
		if rerr != nil {
			code, msg, retry := mapEngineError(rerr)
			if code == "" {
				return // caller-side cancel; nothing to answer
			}
			payload = AppendError(payload[:0], code, msg, retry)
			if writeFrame(conn, &wbuf, FrameError, payload) != nil {
				return
			}
			continue
		}
		payload = AppendResponse(payload[:0], &resp)
		_ = conn.SetWriteDeadline(time.Now().Add(idle))
		if err := writeFrame(conn, &wbuf, FrameRerankResponse, payload); err != nil {
			s.logf("binproto: write response: %v", err)
			return
		}
	}
}

// mapEngineError converts the engine's typed errors to wire codes; an empty
// code means "answer nothing" (canceled).
func mapEngineError(err error) (code, msg string, retryAfterS int) {
	var bad *engine.BadInputError
	var shed *engine.ShedError
	var tenant *engine.UnknownTenantError
	switch {
	case errors.Is(err, engine.ErrCanceled):
		return "", "", 0
	case errors.As(err, &bad):
		return CodeBadInput, bad.Msg, 0
	case errors.As(err, &tenant):
		return CodeUnknownTenant, err.Error(), 0
	case errors.As(err, &shed):
		if shed.Reason == engine.ShedDraining {
			return CodeDraining, "draining, replica going away", shed.RetryAfterS
		}
		return CodeOverloaded, "overloaded, retry later", shed.RetryAfterS
	default:
		return CodeInternal, "internal error", 0
	}
}
