package binproto

import (
	"bytes"
	"testing"

	"repro/internal/engine"
)

// FuzzBinaryFrame drives arbitrary bytes through all three payload decoders
// — the exact surface a hostile or corrupted fleet peer controls. The
// robustness contract: never panic, never allocate for counts the payload
// cannot back, and on success the encoding is canonical: re-encoding the
// decoded message reproduces the input byte-for-byte (anything else means
// two wire forms decode to the same message, which breaks framing-desync
// detection). Seeds live in testdata/fuzz/FuzzBinaryFrame; CI runs a
// -fuzztime smoke on top.
func FuzzBinaryFrame(f *testing.F) {
	f.Add(AppendRequest(nil, &engine.Request{
		UserFeatures: []float64{0.1, 0.2, 0.3},
		Items: []engine.Item{
			{ID: 7, Features: []float64{0.5, 0.1}, Cover: []float64{1, 0}, InitScore: 0.9},
			{ID: 8, Features: []float64{0.2, 0.7}, Cover: []float64{0, 1}, InitScore: 0.4},
		},
		TopicSequences: [][]engine.SeqItem{{{Features: []float64{0.5, 0.2}}}, {}},
	}))
	f.Add(AppendRequest(nil, &engine.Request{Tenant: "acme"}))
	f.Add(AppendResponse(nil, &engine.Response{
		Ranked: []int{8, 7}, Scores: []float64{0.9, 0.4},
		ModelVersion: "v1", LatencyMS: 1.5, RequestID: "r-1",
	}))
	f.Add(AppendError(nil, CodeOverloaded, "busy", 2))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := DecodeRequest(payload); err == nil {
			if re := AppendRequest(nil, req); !bytes.Equal(re, payload) {
				t.Fatalf("request encoding not canonical: %x decoded then re-encoded to %x", payload, re)
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			if re := AppendResponse(nil, &resp); !bytes.Equal(re, payload) {
				t.Fatalf("response encoding not canonical: %x re-encoded to %x", payload, re)
			}
		}
		if e, err := DecodeError(payload); err == nil {
			if re := AppendError(nil, e.Code, e.Message, e.RetryAfterS); !bytes.Equal(re, payload) {
				t.Fatalf("error encoding not canonical: %x re-encoded to %x", payload, re)
			}
		}
	})
}
