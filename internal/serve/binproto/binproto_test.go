package binproto

import (
	"bytes"
	"context"
	"math"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rerank"
)

func testConfig() core.Config {
	return core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2,
		Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
}

func validRequest() *engine.Request {
	return &engine.Request{
		UserFeatures: []float64{0.1, 0.2, 0.3},
		Items: []engine.Item{
			{ID: 7, Features: []float64{0.5, 0.1}, Cover: []float64{1, 0}, InitScore: 0.9},
			{ID: 8, Features: []float64{0.2, 0.7}, Cover: []float64{0, 1}, InitScore: 0.4},
			{ID: 9, Features: []float64{0.3, 0.3}, Cover: []float64{1, 0}, InitScore: 0.2},
		},
		TopicSequences: [][]engine.SeqItem{
			{{Features: []float64{0.5, 0.2}}},
			{},
		},
	}
}

// stubScorer echoes the initial scores; the frontend contract under test is
// framing and error mapping, not model quality.
type stubScorer struct{}

func (stubScorer) Name() string { return "stub" }
func (stubScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return inst.InitScores, nil
}

// startServer mounts a binproto.Server over a stub engine on loopback and
// returns a connected client.
func startServer(t *testing.T, cfg engine.Config) (*Server, *Client) {
	t.Helper()
	e := engine.NewStatic(stubScorer{}, engine.Manifest{Dataset: "test", Config: testConfig()}, cfg)
	e.Log = t.Logf
	s := &Server{Eng: e, Log: t.Logf}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

// TestRequestCodecRoundTrip: encode→decode reproduces the request exactly,
// and re-encoding the decoded request reproduces the payload byte-for-byte —
// the encoding is canonical (there is exactly one wire form per request).
func TestRequestCodecRoundTrip(t *testing.T) {
	cases := map[string]*engine.Request{
		"full":     validRequest(),
		"tenant":   {Tenant: "acme", UserFeatures: []float64{1}, Items: []engine.Item{{ID: -3, InitScore: math.Inf(1)}}},
		"empty":    {},
		"nil-seqs": {UserFeatures: []float64{0.5}, Items: []engine.Item{{ID: 1 << 40, Features: []float64{math.NaN()}}}},
	}
	for name, req := range cases {
		t.Run(name, func(t *testing.T) {
			wire := AppendRequest(nil, req)
			got, err := DecodeRequest(wire)
			if err != nil {
				t.Fatal(err)
			}
			rewire := AppendRequest(nil, got)
			if !bytes.Equal(wire, rewire) {
				t.Fatalf("re-encode differs: %x vs %x", wire, rewire)
			}
			// NaN-safe field comparison: compare through the canonical bytes
			// (done above) plus the shape that matters for scoring.
			if len(got.Items) != len(req.Items) || got.Tenant != req.Tenant {
				t.Fatalf("decoded %+v, want %+v", got, req)
			}
		})
	}
}

// TestResponseCodecRoundTrip: every response field survives, scores bitwise.
func TestResponseCodecRoundTrip(t *testing.T) {
	resp := engine.Response{
		Ranked:         []int{9, 7, 8},
		Scores:         []float64{0.3, math.Copysign(0, -1), 1.0 / 3.0},
		Degraded:       true,
		DegradedReason: "deadline",
		ModelVersion:   "v2",
		Canary:         true,
		LatencyMS:      12.5,
		RequestID:      "r-123",
		Error:          "item 2: bad cover",
	}
	wire := AppendResponse(nil, &resp)
	got, err := DecodeResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ranked, resp.Ranked) {
		t.Fatalf("ranked %v want %v", got.Ranked, resp.Ranked)
	}
	for i := range resp.Scores {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(resp.Scores[i]) {
			t.Fatalf("score[%d] bits %x want %x", i, math.Float64bits(got.Scores[i]), math.Float64bits(resp.Scores[i]))
		}
	}
	got.Scores, resp.Scores = nil, nil
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("decoded %+v, want %+v", got, resp)
	}
}

// TestErrorCodecRoundTrip: error frames carry code, message and retry hint.
func TestErrorCodecRoundTrip(t *testing.T) {
	wire := AppendError(nil, CodeOverloaded, "busy", 3)
	e, err := DecodeError(wire)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeOverloaded || e.Message != "busy" || e.RetryAfterS != 3 {
		t.Fatalf("decoded %+v", e)
	}
	if !e.Retryable() {
		t.Fatal("overloaded not retryable")
	}
	if (&RemoteError{Code: CodeBadInput}).Retryable() {
		t.Fatal("bad_input retryable")
	}
}

// TestDecodeTruncatedNeverPanics: every proper prefix of a valid payload
// must produce an error, never a panic or a silent partial decode.
func TestDecodeTruncatedNeverPanics(t *testing.T) {
	reqWire := AppendRequest(nil, validRequest())
	respWire := AppendResponse(nil, &engine.Response{Ranked: []int{1}, Scores: []float64{0.5}, RequestID: "x"})
	errWire := AppendError(nil, CodeInternal, "boom", 0)
	for n := 0; n < len(reqWire); n++ {
		if _, err := DecodeRequest(reqWire[:n]); err == nil {
			t.Fatalf("request prefix %d decoded", n)
		}
	}
	for n := 0; n < len(respWire); n++ {
		if _, err := DecodeResponse(respWire[:n]); err == nil {
			t.Fatalf("response prefix %d decoded", n)
		}
	}
	for n := 0; n < len(errWire); n++ {
		if _, err := DecodeError(errWire[:n]); err == nil {
			t.Fatalf("error prefix %d decoded", n)
		}
	}
}

// TestDecodeTrailingBytesRejected: framing desync (extra bytes after a
// complete message) is a protocol error, not silently ignored.
func TestDecodeTrailingBytesRejected(t *testing.T) {
	wire := append(AppendRequest(nil, validRequest()), 0xFF)
	if _, err := DecodeRequest(wire); err == nil {
		t.Fatal("trailing bytes accepted on request")
	}
	wire = append(AppendResponse(nil, &engine.Response{}), 0x00)
	if _, err := DecodeResponse(wire); err == nil {
		t.Fatal("trailing bytes accepted on response")
	}
}

// TestDecodeHostileCounts: a frame claiming a giant element count backed by
// a tiny payload must fail before allocating for the claimed count.
func TestDecodeHostileCounts(t *testing.T) {
	// user_features claims 2^32-1 floats inside an 12-byte payload.
	hostile := appendU32(nil, 0)             // empty tenant
	hostile = appendU32(hostile, 0xFFFFFFFF) // features count
	hostile = append(hostile, 0, 0, 0, 0)    // 4 stray bytes
	if _, err := DecodeRequest(hostile); err == nil {
		t.Fatal("hostile count accepted")
	}
	// ranked claims 2^31 ids with no backing bytes.
	hostileResp := appendU32(nil, 1<<31)
	if _, err := DecodeResponse(hostileResp); err == nil {
		t.Fatal("hostile ranked count accepted")
	}
}

// TestFrameOversizedRejected: the reader refuses frames whose header claims
// more than MaxFrame before reading the body.
func TestFrameOversizedRejected(t *testing.T) {
	var hdr [headerSize]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0x7F // ~2 GiB claim
	hdr[4] = FrameRerankRequest
	var scratch []byte
	if _, _, err := readFrame(bytes.NewReader(hdr[:]), &scratch); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestServerRerank: the happy path over a real TCP connection — scores come
// back bitwise equal to the stub's echo of the initial scores, and a second
// request reuses the connection.
func TestServerRerank(t *testing.T) {
	_, c := startServer(t, engine.Config{Budget: time.Second})
	for i := 0; i < 2; i++ {
		resp, err := c.Rerank(context.Background(), validRequest())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("degraded: %s", resp.DegradedReason)
		}
		want := []int{7, 8, 9} // init scores are already descending
		if !reflect.DeepEqual(resp.Ranked, want) {
			t.Fatalf("ranked %v want %v", resp.Ranked, want)
		}
		wantScores := []float64{0.9, 0.4, 0.2}
		for j := range wantScores {
			if math.Float64bits(resp.Scores[j]) != math.Float64bits(wantScores[j]) {
				t.Fatalf("score[%d] = %v want %v", j, resp.Scores[j], wantScores[j])
			}
		}
		if resp.RequestID == "" {
			t.Fatal("no request id")
		}
	}
}

// TestServerBadInputKeepsConnection: an engine-level validation failure
// answers an error frame and keeps the connection serving — only framing
// desync is fatal to the stream.
func TestServerBadInputKeepsConnection(t *testing.T) {
	_, c := startServer(t, engine.Config{Budget: time.Second})
	bad := validRequest()
	bad.UserFeatures = []float64{1} // wrong geometry
	_, err := c.Rerank(context.Background(), bad)
	re, ok := err.(*RemoteError)
	if !ok || re.Code != CodeBadInput {
		t.Fatalf("err %v, want bad_input RemoteError", err)
	}
	if re.Retryable() {
		t.Fatal("bad_input marked retryable")
	}
	if _, err := c.Rerank(context.Background(), validRequest()); err != nil {
		t.Fatalf("connection dead after bad input: %v", err)
	}
}

// TestServerUnknownTenant: a tenant name with no TenantSource behind it maps
// to the unknown_tenant code, mirroring the HTTP 404.
func TestServerUnknownTenant(t *testing.T) {
	_, c := startServer(t, engine.Config{Budget: time.Second})
	req := validRequest()
	req.Tenant = "ghost"
	_, err := c.Rerank(context.Background(), req)
	re, ok := err.(*RemoteError)
	if !ok || re.Code != CodeUnknownTenant {
		t.Fatalf("err %v, want unknown_tenant RemoteError", err)
	}
}

// TestServerDraining: a draining server answers one draining error frame and
// closes; the error is retryable with a backoff hint, matching HTTP's 503 +
// Retry-After.
func TestServerDraining(t *testing.T) {
	s, c := startServer(t, engine.Config{Budget: time.Second})
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	_, err := c.Rerank(context.Background(), validRequest())
	re, ok := err.(*RemoteError)
	if !ok || re.Code != CodeDraining {
		t.Fatalf("err %v, want draining RemoteError", err)
	}
	if !re.Retryable() || re.RetryAfterS < 1 {
		t.Fatalf("draining not retryable with hint: %+v", re)
	}
}

// TestServerGarbageFrameCloses: a frame of the wrong type answers bad_input
// and closes the connection — after a desync nothing on the stream can be
// trusted.
func TestServerGarbageFrameCloses(t *testing.T) {
	_, c := startServer(t, engine.Config{Budget: time.Second})
	var wbuf []byte
	if err := writeFrame(c.conn, &wbuf, FrameError, AppendError(nil, "x", "y", 0)); err != nil {
		t.Fatal(err)
	}
	var rbuf []byte
	typ, payload, err := readFrame(c.br, &rbuf)
	if err != nil || typ != FrameError {
		t.Fatalf("typ %d err %v, want error frame", typ, err)
	}
	re, err := DecodeError(payload)
	if err != nil || re.Code != CodeBadInput {
		t.Fatalf("decoded %+v err %v, want bad_input", re, err)
	}
	if _, _, err := readFrame(c.br, &rbuf); err == nil {
		t.Fatal("connection still open after desync")
	}
}
