package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

)

// TestHistoryKeyDiscriminates: the history hash must change whenever any
// encoder input changes — user features, sequence features, or which topic a
// behavior belongs to — and must be stable for identical requests.
func TestHistoryKeyDiscriminates(t *testing.T) {
	base := HistoryKey(validRequest())
	if base != HistoryKey(validRequest()) {
		t.Fatal("HistoryKey not deterministic")
	}
	user := validRequest()
	user.UserFeatures[0] += 0.5
	if HistoryKey(user) == base {
		t.Fatal("user-feature change did not change the key")
	}
	seq := validRequest()
	seq.TopicSequences[0][0].Features[1] += 0.5
	if HistoryKey(seq) == base {
		t.Fatal("sequence-feature change did not change the key")
	}
	moved := validRequest()
	moved.TopicSequences[0], moved.TopicSequences[1] = moved.TopicSequences[1], moved.TopicSequences[0]
	if HistoryKey(moved) == base {
		t.Fatal("moving a behavior to another topic did not change the key")
	}
	// Items are deliberately NOT part of the history hash: the candidate list
	// does not feed the user-preference encoder.
	items := validRequest()
	items.Items[0].Features[0] += 0.5
	if HistoryKey(items) != base {
		t.Fatal("candidate-item change leaked into the history key")
	}
}

// TestStateCacheServesRepeatUser is the end-to-end warm path: the second
// identical request must hit the cache and return byte-identical scores, and
// a lifecycle flush must both count an invalidation and leave scores exactly
// reproducible (the re-encoded state matches the evicted one).
func TestStateCacheServesRepeatUser(t *testing.T) {
	s := testServer(t, Config{StateCacheBytes: 1 << 20})
	h := s.Handler()
	body := mustJSON(t, validRequest())

	scoresOf := func(raw []byte) []float64 {
		t.Helper()
		var resp RerankResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("degraded response: %s", resp.DegradedReason)
		}
		return resp.Scores
	}
	w1 := postRerank(t, h, body)
	if w1.Code != http.StatusOK {
		t.Fatalf("cold request status %d", w1.Code)
	}
	cold := scoresOf(w1.Body.Bytes())
	if hits, misses := s.met.CacheHits.Value(), s.met.CacheMisses.Value(); hits != 0 || misses != 1 {
		t.Fatalf("after cold request: hits=%d misses=%d, want 0/1", hits, misses)
	}
	if n, _ := s.StateCache().Stats(); n != 1 {
		t.Fatalf("cold request cached %d states, want 1", n)
	}

	w2 := postRerank(t, h, body)
	if w2.Code != http.StatusOK {
		t.Fatalf("warm request status %d", w2.Code)
	}
	warm := scoresOf(w2.Body.Bytes())
	if hits := s.met.CacheHits.Value(); hits != 1 {
		t.Fatalf("warm request did not hit the cache (hits=%d)", hits)
	}
	if len(warm) != len(cold) {
		t.Fatalf("score count changed: %d vs %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("warm score %d diverged: %v vs %v", i, warm[i], cold[i])
		}
	}

	// Lifecycle invalidation: flush, then the same request re-encodes (a new
	// miss) and still reproduces the cold scores exactly.
	s.FlushStateCache()
	if inv := s.met.CacheInvalidations.Value(); inv != 1 {
		t.Fatalf("flush counted %d invalidations, want 1", inv)
	}
	w3 := postRerank(t, h, body)
	reenc := scoresOf(w3.Body.Bytes())
	if misses := s.met.CacheMisses.Value(); misses != 2 {
		t.Fatalf("post-flush request should miss (misses=%d, want 2)", misses)
	}
	for i := range reenc {
		if reenc[i] != cold[i] {
			t.Fatalf("post-flush score %d diverged: %v vs %v", i, reenc[i], cold[i])
		}
	}
}

// TestStateCacheBatchEnvelope: repeat users inside a /v1/rerank:batch
// envelope ride the cache too — the second envelope of the same requests
// must produce hits and identical scores.
func TestStateCacheBatchEnvelope(t *testing.T) {
	s := testServer(t, Config{StateCacheBytes: 1 << 20})
	h := s.Handler()
	env := RerankBatchRequest{Requests: []RerankRequest{*validRequest(), *validRequest()}}
	body := mustJSON(t, env)

	first := postBatch(t, h, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first envelope status %d", first.Code)
	}
	// Both items share one (route, history, version) key: the first miss
	// encodes and installs, and within one batch the second identical item is
	// a second miss (the lookup happens before scoring) — so the cache holds
	// one entry either way.
	second := postBatch(t, h, body)
	if second.Code != http.StatusOK {
		t.Fatalf("second envelope status %d", second.Code)
	}
	if hits := s.met.CacheHits.Value(); hits < 2 {
		t.Fatalf("second envelope produced %d hits, want >= 2", hits)
	}
	var r1, r2 RerankBatchResponse
	if err := json.Unmarshal(first.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	for k := range r1.Responses {
		a, b := r1.Responses[k], r2.Responses[k]
		for i := range a.Scores {
			if a.Scores[i] != b.Scores[i] {
				t.Fatalf("envelope item %d score %d diverged", k, i)
			}
		}
	}
}

// TestStateCacheConcurrentStress races scoring against cache reads, writes,
// evictions (tiny budget) and whole-cache flushes. Run under -race in CI; the
// correctness assertion is that every response matches the serially computed
// expectation for its user, hit or miss.
func TestStateCacheConcurrentStress(t *testing.T) {
	// Budget sized for ~2 states: concurrent users constantly evict each other.
	s := testServer(t, Config{StateCacheBytes: 256, Budget: 10 * time.Second})
	h := s.Handler()

	const users = 4
	bodies := make([][]byte, users)
	want := make([][]float64, users)
	for u := 0; u < users; u++ {
		req := validRequest()
		req.UserFeatures[0] = 0.1 * float64(u+1)
		bodies[u] = mustJSON(t, req)
		w := postRerank(t, h, bodies[u])
		if w.Code != http.StatusOK {
			t.Fatalf("seed request for user %d: status %d", u, w.Code)
		}
		var resp RerankResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want[u] = resp.Scores
	}

	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.FlushStateCache()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				u := (g + iter) % users
				w := postRerank(t, h, bodies[u])
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("user %d: status %d", u, w.Code)
					return
				}
				var resp RerankResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errc <- err
					return
				}
				if resp.Degraded {
					errc <- fmt.Errorf("user %d degraded: %s", u, resp.DegradedReason)
					return
				}
				for i := range resp.Scores {
					if resp.Scores[i] != want[u][i] {
						errc <- fmt.Errorf("user %d score %d diverged under concurrency", u, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	flusher.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
