package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// handleFeedback serves POST /v1/feedback. Mounted only when Config.Feedback
// is set. Contract mirrors the v1 rerank surface: draining answers 503,
// malformed input 400, a full ingest queue 429 + Retry-After — all in the
// unified error envelope — and an accepted event 202. Acceptance means
// durably queued for ingestion, not yet applied to the click model.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.met.Feedback.With("shed").Inc()
		w.Header().Set(ShedReasonHeader, ShedDraining)
		w.Header().Set("Retry-After", strconv.Itoa(max(1, int(s.DrainWindow()/time.Second))))
		s.writeError(w, false, http.StatusServiceUnavailable, ErrCodeDraining,
			"draining, replica going away", max(1, int(s.DrainWindow()/time.Second)))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var ev FeedbackEvent
	if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
		s.met.Feedback.With("bad_input").Inc()
		s.writeError(w, false, http.StatusBadRequest, ErrCodeBadInput, "bad request: "+err.Error(), 0)
		return
	}
	if err := ev.Validate(); err != nil {
		s.met.Feedback.With("bad_input").Inc()
		s.writeError(w, false, http.StatusBadRequest, ErrCodeBadInput, err.Error(), 0)
		return
	}
	if err := s.cfg.Feedback.Submit(ev); err != nil {
		if errors.Is(err, ErrFeedbackBusy) {
			s.met.Feedback.With("shed").Inc()
			retry := s.RetryAfterS()
			w.Header().Set(ShedReasonHeader, ShedBackpressure)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			s.writeError(w, false, http.StatusTooManyRequests, ErrCodeOverloaded,
				"feedback ingestion overloaded, retry later", retry)
			return
		}
		s.met.Feedback.With("error").Inc()
		s.writeError(w, false, http.StatusInternalServerError, ErrCodeInternal, "feedback ingestion failed", 0)
		return
	}
	s.met.FeedbackOK.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_, _ = w.Write([]byte("{\"accepted\":true}\n"))
}
