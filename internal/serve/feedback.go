package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// MaxRequestIDLen caps the request_id echoed in feedback events; server-issued
// ids are far shorter, so anything longer is a hostile or corrupted client.
const MaxRequestIDLen = 128

// FeedbackEvent is the wire format of POST /v1/feedback: one observed
// outcome for a previously served re-rank response. Items is the displayed
// order (normally the response's Ranked); Clicks is aligned with Items and
// may be shorter (missing positions are skips). An event with no true click
// is an impression — skip/abandon signal matters to the click model too.
type FeedbackEvent struct {
	// RequestID echoes the request_id of the /v1/rerank response the event
	// reports on; the ingestor joins it back to the served (route, version).
	RequestID string `json:"request_id"`
	Items     []int  `json:"items"`
	Clicks    []bool `json:"clicks,omitempty"`
	// ModelVersion optionally echoes the response's model_version; the
	// server-side correlation wins when both are present (the client copy is
	// advisory and unauthenticated).
	ModelVersion string `json:"model_version,omitempty"`
}

// FeedbackSink is the seam between the serving data plane and the feedback
// subsystem (internal/feedback implements it). Both methods are called on
// request handlers and must not block: Track records which (route, version)
// a response was served from, Submit enqueues an ingested event and reports
// ErrFeedbackBusy when the bounded ingest queue is full — the handler
// answers 429, mirroring the rerank backpressure contract.
type FeedbackSink interface {
	Track(requestID string, route uint64, version string)
	Submit(ev FeedbackEvent) error
}

// ErrFeedbackBusy is returned by FeedbackSink.Submit when the ingest queue
// is full; the handler sheds the event with 429 + Retry-After.
var ErrFeedbackBusy = errors.New("feedback ingest queue full")

// Validate applies the wire-level invariants shared by the HTTP handler and
// the decode fuzz target.
func (ev *FeedbackEvent) Validate() error {
	switch {
	case ev.RequestID == "":
		return fmt.Errorf("request_id is required")
	case len(ev.RequestID) > MaxRequestIDLen:
		return fmt.Errorf("request_id exceeds %d bytes", MaxRequestIDLen)
	case len(ev.Items) == 0:
		return fmt.Errorf("items is required")
	case len(ev.Items) > MaxListLength:
		return fmt.Errorf("event has %d items, limit is %d", len(ev.Items), MaxListLength)
	case len(ev.Clicks) > len(ev.Items):
		return fmt.Errorf("clicks has %d entries for %d items", len(ev.Clicks), len(ev.Items))
	}
	return nil
}

// handleFeedback serves POST /v1/feedback. Mounted only when Config.Feedback
// is set. Contract mirrors the v1 rerank surface: draining answers 503,
// malformed input 400, a full ingest queue 429 + Retry-After, and an
// accepted event 202 — acceptance means durably queued for ingestion, not
// yet applied to the click model.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.met.feedback.With("shed").Inc()
		w.Header().Set(ShedReasonHeader, ShedDraining)
		http.Error(w, "draining, replica going away", http.StatusServiceUnavailable)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var ev FeedbackEvent
	if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
		s.met.feedback.With("bad_input").Inc()
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := ev.Validate(); err != nil {
		s.met.feedback.With("bad_input").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.cfg.Feedback.Submit(ev); err != nil {
		if errors.Is(err, ErrFeedbackBusy) {
			s.met.feedback.With("shed").Inc()
			w.Header().Set(ShedReasonHeader, ShedBackpressure)
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, "feedback ingestion overloaded, retry later", http.StatusTooManyRequests)
			return
		}
		s.met.feedback.With("error").Inc()
		http.Error(w, "feedback ingestion failed", http.StatusInternalServerError)
		return
	}
	s.met.feedbackOK.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_, _ = w.Write([]byte("{\"accepted\":true}\n"))
}
