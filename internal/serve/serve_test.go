package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rerank"
)

func testConfig() core.Config {
	return core.Config{
		UserDim: 3, ItemDim: 2, Topics: 2,
		Hidden: 4, D: 3,
		Output: core.Probabilistic, Encoder: core.BiLSTMEncoder, Agg: core.LSTMAgg,
		UseDiversity: true, Heads: 2, Seed: 1,
	}
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	mc := testConfig()
	s := NewServer(core.New(mc), Manifest{Dataset: "test", Config: mc}, cfg)
	s.Log = t.Logf
	return s
}

func validRequest() *RerankRequest {
	return &RerankRequest{
		UserFeatures: []float64{0.1, 0.2, 0.3},
		Items: []RerankItem{
			{ID: 7, Features: []float64{0.5, 0.1}, Cover: []float64{1, 0}, InitScore: 0.9},
			{ID: 8, Features: []float64{0.2, 0.7}, Cover: []float64{0, 1}, InitScore: 0.4},
			{ID: 9, Features: []float64{0.3, 0.3}, Cover: []float64{1, 0}, InitScore: 0.2},
		},
		TopicSequences: [][]SeqItemWire{
			{{Features: []float64{0.5, 0.2}}},
			{},
		},
	}
}

func postRerank(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/rerank", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestToInstanceValid(t *testing.T) {
	inst, err := ToInstance(testConfig(), validRequest())
	if err != nil {
		t.Fatal(err)
	}
	if inst.L() != 3 || inst.M != 2 {
		t.Fatalf("instance geometry L=%d M=%d", inst.L(), inst.M)
	}
	if len(inst.TopicSeqs[0]) != 1 {
		t.Fatalf("topic 0 sequence %v", inst.TopicSeqs[0])
	}
	if f := inst.ItemFeat(inst.TopicSeqs[0][0]); f[0] != 0.5 {
		t.Fatal("sequence item features unresolved")
	}
	// CoverOf resolves listed items via the per-request map and unknown ids
	// to a zero vector.
	if c := inst.CoverOf(8); c[1] != 1 {
		t.Fatalf("CoverOf(8) = %v", c)
	}
	if c := inst.CoverOf(12345); c[0] != 0 || c[1] != 0 {
		t.Fatalf("CoverOf(unknown) = %v", c)
	}
	scores := core.New(testConfig()).Scores(inst)
	if len(scores) != 3 {
		t.Fatalf("scores %v", scores)
	}
}

func TestToInstanceValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RerankRequest)
	}{
		{"wrong user dims", func(r *RerankRequest) { r.UserFeatures = []float64{1} }},
		{"no items", func(r *RerankRequest) { r.Items = nil }},
		{"wrong item dims", func(r *RerankRequest) { r.Items[0].Features = []float64{1, 2, 3} }},
		{"wrong cover dims", func(r *RerankRequest) { r.Items[1].Cover = []float64{1} }},
		{"wrong topic count", func(r *RerankRequest) { r.TopicSequences = r.TopicSequences[:1] }},
		{"wrong seq dims", func(r *RerankRequest) {
			r.TopicSequences[0] = []SeqItemWire{{Features: []float64{1}}}
		}},
		{"oversized list", func(r *RerankRequest) {
			it := r.Items[0]
			r.Items = make([]RerankItem, MaxListLength+1)
			for i := range r.Items {
				it.ID = i
				r.Items[i] = it
			}
		}},
	}
	for _, tc := range cases {
		req := validRequest()
		tc.mutate(req)
		if _, err := ToInstance(testConfig(), req); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
}

func TestHandleRerank(t *testing.T) {
	s := testServer(t, Config{})
	body, _ := json.Marshal(validRequest())
	w := postRerank(t, s.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp RerankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Ranked) != 3 || len(resp.Scores) != 3 {
		t.Fatalf("response %+v", resp)
	}
	if resp.Degraded {
		t.Fatalf("healthy request degraded: %+v", resp)
	}
	for i := 1; i < len(resp.Scores); i++ {
		if resp.Scores[i] > resp.Scores[i-1]+1e-12 {
			t.Fatalf("scores not sorted: %v", resp.Scores)
		}
	}
	seen := map[int]bool{}
	for _, id := range resp.Ranked {
		seen[id] = true
	}
	for _, id := range []int{7, 8, 9} {
		if !seen[id] {
			t.Fatalf("item %d missing from ranking", id)
		}
	}
	if st := s.Stats(); st.Responses != 1 || st.Requests != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestHandleRerankBadInput is the wire-layer table: every malformed input
// must be rejected with a 4xx, never crash or hang.
func TestHandleRerankBadInput(t *testing.T) {
	s := testServer(t, Config{MaxBodyBytes: 2048})
	h := s.Handler()
	cases := []struct {
		name string
		body func() []byte
		want int
	}{
		{"malformed json", func() []byte { return []byte("{") }, http.StatusBadRequest},
		{"wrong type", func() []byte { return []byte(`{"user_features": "nope"}`) }, http.StatusBadRequest},
		{"empty body", func() []byte { return nil }, http.StatusBadRequest},
		{"empty items", func() []byte {
			r := validRequest()
			r.Items = nil
			b, _ := json.Marshal(r)
			return b
		}, http.StatusBadRequest},
		{"dimension mismatch", func() []byte {
			r := validRequest()
			r.UserFeatures = []float64{1, 2}
			b, _ := json.Marshal(r)
			return b
		}, http.StatusBadRequest},
		{"oversized body", func() []byte {
			return []byte(`{"user_features": [` + strings.Repeat("0.1,", 4096) + `0.1]}`)
		}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if w := postRerank(t, h, tc.body()); w.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}
	if st := s.Stats(); st.BadInput != int64(len(cases)) {
		t.Fatalf("bad-input counter %d, want %d", st.BadInput, len(cases))
	}
}

func wantDegraded(t *testing.T, w *httptest.ResponseRecorder, reason string) RerankResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp RerankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.DegradedReason != reason {
		t.Fatalf("want degraded %q, got %+v", reason, resp)
	}
	// The degradation contract: the initial-ranker ordering by init score.
	if len(resp.Ranked) != 3 || resp.Ranked[0] != 7 || resp.Ranked[1] != 8 || resp.Ranked[2] != 9 {
		t.Fatalf("degraded ranking %v is not the initial order", resp.Ranked)
	}
	if resp.Scores[0] != 0.9 || resp.Scores[1] != 0.4 || resp.Scores[2] != 0.2 {
		t.Fatalf("degraded scores %v are not the init scores", resp.Scores)
	}
	return resp
}

func TestDegradedOnScoringError(t *testing.T) {
	s := testServer(t, Config{})
	s.Faults = FaultFunc(func(context.Context, *rerank.Instance) error {
		return errors.New("feature store down")
	})
	body, _ := json.Marshal(validRequest())
	wantDegraded(t, postRerank(t, s.Handler(), body), "error")
	if st := s.Stats(); st.Degraded != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDegradedOnScoringPanic(t *testing.T) {
	s := testServer(t, Config{})
	s.Faults = FaultFunc(func(context.Context, *rerank.Instance) error {
		panic("index out of range in model")
	})
	body, _ := json.Marshal(validRequest())
	wantDegraded(t, postRerank(t, s.Handler(), body), "panic")
	if st := s.Stats(); st.Panics != 1 || st.Degraded != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDegradedOnDeadline(t *testing.T) {
	s := testServer(t, Config{Budget: 10 * time.Millisecond})
	s.Faults = FaultFunc(func(ctx context.Context, _ *rerank.Instance) error {
		<-ctx.Done() // latency spike that outlives the budget
		return ctx.Err()
	})
	body, _ := json.Marshal(validRequest())
	wantDegraded(t, postRerank(t, s.Handler(), body), "deadline")
}

// TestSheddingUnderLoad verifies the backpressure path: with one scoring
// slot occupied, a second request exhausts its queue wait and is shed with
// 429 + Retry-After.
func TestSheddingUnderLoad(t *testing.T) {
	s := testServer(t, Config{
		MaxInFlight: 1,
		QueueWait:   5 * time.Millisecond,
		Budget:      2 * time.Second,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.Faults = FaultFunc(func(context.Context, *rerank.Instance) error {
		close(entered)
		<-release
		return nil
	})
	h := s.Handler()
	body, _ := json.Marshal(validRequest())
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postRerank(t, h, body) }()
	<-entered // slot now held by the first request
	w := postRerank(t, h, body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("first request status %d", w.Code)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRecoveryMiddleware: a panic outside the scoring goroutine (a handler
// bug) must surface as a 500, never kill the process.
func TestRecoveryMiddleware(t *testing.T) {
	s := testServer(t, Config{})
	h := s.recovered(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/anything", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHealthAndReady(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["status"] != "ok" || m["model"] != "RAPID-pro" {
		t.Fatalf("health payload %v", m)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("readyz status %d", w.Code)
	}
	// A draining server reports unready but stays live.
	s.SetDraining(true)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("draining healthz status %d, want 200", w.Code)
	}
}

// TestReadyzBody pins the /readyz JSON contract a fleet router probes: the
// pinned model version and the draining flag ride the existing endpoint, and
// the bare 200/503 status-code contract is unchanged.
func TestReadyzBody(t *testing.T) {
	pin := Pinned{Scorer: stubScorer{}, Manifest: Manifest{Dataset: "test", Config: testConfig()}, Version: "v42"}
	s := NewProviderServer(StaticProvider(pin), Config{})
	s.Log = t.Logf
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("readyz status %d", w.Code)
	}
	var st ReadyStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Draining || st.ModelVersion != "v42" {
		t.Fatalf("ready body %+v", st)
	}

	s.SetDraining(true)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || !st.Draining || st.ModelVersion != "v42" {
		t.Fatalf("draining body %+v", st)
	}
}

// TestDrainingShedDistinguishable: a draining replica answers new scoring
// requests with 503 + X-Shed-Reason: draining (never a generic 429), so a
// router stops retrying a replica that is going away; backpressure sheds
// keep 429 and carry X-Shed-Reason: backpressure. The two land in separate
// rapid_shed_total series.
func TestDrainingShedDistinguishable(t *testing.T) {
	s := stubServer(t, Config{})
	h := s.Handler()
	body, _ := json.Marshal(validRequest())

	s.SetDraining(true)
	w := postRerank(t, h, body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining rerank status %d, want 503 (%s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get(ShedReasonHeader); got != ShedDraining {
		t.Fatalf("%s = %q, want %q", ShedReasonHeader, got, ShedDraining)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("draining shed without Retry-After")
	}
	// The batch envelope route sheds identically.
	bb, _ := json.Marshal(RerankBatchRequest{Requests: []RerankRequest{*validRequest()}})
	req := httptest.NewRequest(http.MethodPost, "/v1/rerank:batch", bytes.NewReader(bb))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get(ShedReasonHeader) != ShedDraining {
		t.Fatalf("draining batch status %d reason %q", w.Code, w.Header().Get(ShedReasonHeader))
	}
	if got := s.met.ShedDrain.Value(); got != 2 {
		t.Fatalf("draining shed counter = %d, want 2", got)
	}
	if got := s.met.ShedBack.Value(); got != 0 {
		t.Fatalf("backpressure shed counter = %d, want 0", got)
	}
	if st := s.Stats(); st.Shed != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestAfterScoreHook exercises the post-scoring half of the chaos seam:
// errors, injected response latency past the budget, and panics must each
// degrade the response (never 5xx), and a FaultHooks with only a Before half
// must behave exactly like the legacy FaultFunc.
func TestAfterScoreHook(t *testing.T) {
	body, _ := json.Marshal(validRequest())

	t.Run("error degrades", func(t *testing.T) {
		s := stubServer(t, Config{})
		s.Faults = FaultHooks{After: func(context.Context, *rerank.Instance, []float64) error {
			return errors.New("response path wedged")
		}}
		wantDegraded(t, postRerank(t, s.Handler(), body), "error")
	})
	t.Run("latency degrades on deadline", func(t *testing.T) {
		s := stubServer(t, Config{Budget: 10 * time.Millisecond})
		s.Faults = FaultHooks{After: func(ctx context.Context, _ *rerank.Instance, _ []float64) error {
			<-ctx.Done() // slow response that outlives the budget
			return ctx.Err()
		}}
		wantDegraded(t, postRerank(t, s.Handler(), body), "deadline")
	})
	t.Run("panic degrades", func(t *testing.T) {
		s := stubServer(t, Config{})
		s.Log = func(string, ...any) {}
		s.Faults = FaultHooks{After: func(context.Context, *rerank.Instance, []float64) error {
			panic("post-scoring bug")
		}}
		wantDegraded(t, postRerank(t, s.Handler(), body), "panic")
		if st := s.Stats(); st.Panics != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("before-only hooks stay compatible", func(t *testing.T) {
		s := stubServer(t, Config{})
		s.Faults = FaultHooks{Before: func(context.Context, *rerank.Instance) error {
			return errors.New("feature store down")
		}}
		wantDegraded(t, postRerank(t, s.Handler(), body), "error")
	})
	t.Run("nil hooks pass through", func(t *testing.T) {
		s := stubServer(t, Config{})
		s.Faults = FaultHooks{}
		w := postRerank(t, s.Handler(), body)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp RerankResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("empty hooks degraded the response: %+v", resp)
		}
	})
}

func TestManifestPath(t *testing.T) {
	if got := ManifestPath("model.gob"); got != "model.json" {
		t.Fatalf("ManifestPath = %s", got)
	}
	if got := ManifestPath("weird"); got != "weird.json" {
		t.Fatalf("ManifestPath = %s", got)
	}
}
