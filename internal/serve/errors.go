package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/engine"
)

// ErrorBody is the unified v1 error envelope: every non-2xx answer on
// /v1/rerank, /v1/rerank:batch, /v1/feedback and the admin routes carries
// {"error": {"code", "message", "retry_after_s"}}. Code is a stable
// machine-readable label (see the ErrCode* constants); Message is for
// humans and may change; RetryAfterS mirrors the Retry-After header on
// retryable (shed) errors so programmatic clients need not parse headers.
// The deprecated /rerank alias keeps its original plain-text bodies.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the envelope payload.
type ErrorDetail struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// Stable error codes of the v1 surface.
const (
	ErrCodeBadInput       = "bad_input"       // malformed or geometry-mismatched request (400)
	ErrCodeTooLarge       = "too_large"       // body over MaxBodyBytes (413)
	ErrCodeOverloaded     = "overloaded"      // shed: backpressure or tenant quota (429)
	ErrCodeDraining       = "draining"        // shed: replica going away (503)
	ErrCodeUnknownTenant  = "unknown_tenant"  // request named a tenant the server cannot serve (404)
	ErrCodeUnknownVersion = "unknown_version" // admin: version not found (404)
	ErrCodeConflict       = "conflict"        // admin: lifecycle state conflict (409)
	ErrCodeUnprocessable  = "unprocessable"   // admin: artifact or state cannot be processed (422)
	ErrCodeForbidden      = "forbidden"       // admin guard rejected the caller (403)
	ErrCodeInternal       = "internal"        // recovered handler bug (500)
)

// writeError answers with the v1 envelope, or — on the deprecated /rerank
// alias — the pre-envelope plain-text body, byte-identical to what the
// alias has always returned.
func (s *Server) writeError(w http.ResponseWriter, legacy bool, status int, code, msg string, retryAfterS int) {
	if legacy {
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: code, Message: msg, RetryAfterS: retryAfterS}})
}

// writeEngineError maps the engine's typed errors onto the HTTP surface:
// *BadInputError → 400, *UnknownTenantError → 404, *ShedError → 429/503
// with Retry-After and X-Shed-Reason, ErrCanceled → nothing (the client is
// gone), anything else → 500. The engine has already accounted the request;
// this only shapes the answer.
func (s *Server) writeEngineError(w http.ResponseWriter, legacy bool, err error) {
	var bad *engine.BadInputError
	var shed *engine.ShedError
	var tenant *engine.UnknownTenantError
	switch {
	case errors.Is(err, engine.ErrCanceled):
		// Client disconnected mid-request; nothing to answer.
	case errors.As(err, &bad):
		s.writeError(w, legacy, http.StatusBadRequest, ErrCodeBadInput, bad.Msg, 0)
	case errors.As(err, &tenant):
		s.writeError(w, legacy, http.StatusNotFound, ErrCodeUnknownTenant, err.Error(), 0)
	case errors.As(err, &shed):
		w.Header().Set(ShedReasonHeader, shed.Reason)
		w.Header().Set("Retry-After", strconv.Itoa(shed.RetryAfterS))
		if shed.Reason == ShedDraining {
			s.writeError(w, legacy, http.StatusServiceUnavailable, ErrCodeDraining,
				"draining, replica going away", shed.RetryAfterS)
			return
		}
		s.writeError(w, legacy, http.StatusTooManyRequests, ErrCodeOverloaded,
			"overloaded, retry later", shed.RetryAfterS)
	default:
		s.Log("serve: unexpected engine error: %v", err)
		s.writeError(w, legacy, http.StatusInternalServerError, ErrCodeInternal, "internal error", 0)
	}
}
