package serve

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rerank"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// stubScorer is a fast deterministic Scorer for wire-level tests that do not
// care about model quality: it echoes the initial scores.
type stubScorer struct{}

func (stubScorer) Score(_ context.Context, inst *rerank.Instance) ([]float64, error) {
	return inst.InitScores, nil
}
func (stubScorer) Name() string { return "stub" }

func stubServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := NewServer(stubScorer{}, Manifest{Dataset: "test", Config: testConfig()}, cfg)
	s.Log = t.Logf
	return s
}

func getMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	return w.Body.String()
}

// TestMetricsExposition drives one request down each terminal path and
// checks the /metrics exposition: the HELP/TYPE inventory is pinned by a
// golden file (renaming a metric must break loudly — dashboards and alerts
// key on these names), and the deterministic counter samples are asserted
// exactly.
func TestMetricsExposition(t *testing.T) {
	s := stubServer(t, Config{})
	h := s.Handler()
	body, _ := json.Marshal(validRequest())

	// Two ok, one malformed, one degraded-by-error.
	for i := 0; i < 2; i++ {
		if w := postRerank(t, h, body); w.Code != http.StatusOK {
			t.Fatalf("ok request status %d", w.Code)
		}
	}
	if w := postRerank(t, h, []byte("{")); w.Code != http.StatusBadRequest {
		t.Fatalf("bad request status %d", w.Code)
	}
	s.Faults = FaultFunc(func(context.Context, *rerank.Instance) error {
		return errors.New("feature store down")
	})
	wantDegraded(t, postRerank(t, h, body), "error")
	s.Faults = nil

	// The scoring goroutine's deferred bookkeeping (latency observation,
	// in-flight decrement, slot release) can outlive the handler by a few
	// microseconds; wait for quiescence so the scrape below is exact.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if s.met.Inflight.Value() == 0 && s.met.Scoring.Snapshot().Count == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scoring metrics did not quiesce: inflight=%v count=%d",
				s.met.Inflight.Value(), s.met.Scoring.Snapshot().Count)
		}
		time.Sleep(time.Millisecond)
	}

	text := getMetrics(t, h)

	// The metric-name inventory: every # HELP / # TYPE line, in exposition
	// order. Refresh intentionally with
	//
	//	go test ./internal/serve -run Exposition -update
	var header []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# ") {
			header = append(header, line)
		}
	}
	got := strings.Join(header, "\n") + "\n"
	path := filepath.Join("testdata", "metrics_names.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("metric inventory drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}

	// Deterministic samples: counters and histogram counts (bucket
	// distributions depend on wall-clock latency and are not pinned).
	for _, line := range []string{
		`rapid_http_requests_total 4`,
		`rapid_http_responses_total{status="bad_input"} 1`,
		`rapid_http_responses_total{status="degraded"} 1`,
		`rapid_http_responses_total{status="ok"} 2`,
		`rapid_degraded_total{reason="error"} 1`,
		`rapid_bad_input_total 1`,
		`rapid_shed_total{reason="backpressure"} 0`,
		`rapid_shed_total{reason="draining"} 0`,
		`rapid_panics_recovered_total 0`,
		`rapid_inflight_scoring 0`,
		`rapid_request_latency_seconds_count 4`,
		`rapid_scoring_latency_seconds_count 3`,
		`rapid_queue_wait_seconds_count 3`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("exposition missing %q\n%s", line, text)
		}
	}
}

// TestMetricsSharedRegistry: a caller-supplied registry receives the serve
// metrics (one process, one /metrics namespace).
func TestMetricsSharedRegistry(t *testing.T) {
	s := stubServer(t, Config{})
	if s.Registry() == nil {
		t.Fatal("default registry missing")
	}
	shared := s.Registry()
	s2 := NewServer(stubScorer{}, Manifest{Dataset: "test", Config: testConfig()}, Config{Registry: shared})
	if s2.Registry() != shared {
		t.Fatal("Config.Registry not adopted")
	}
}

// TestPprofOptIn: /debug/pprof/ must 404 by default and serve only when
// Config.Pprof is set.
func TestPprofOptIn(t *testing.T) {
	probe := func(h http.Handler) int {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
		return w.Code
	}
	if code := probe(stubServer(t, Config{}).Handler()); code != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: %d", code)
	}
	if code := probe(stubServer(t, Config{Pprof: true}).Handler()); code != http.StatusOK {
		t.Fatalf("opt-in pprof status %d", code)
	}
}

// TestStatsSnapshotConcurrent is the regression test for the Stats audit:
// Stats() must be safe to call while requests are in flight (it now reads
// the same registry atomics the handlers write — no unsynchronized fields),
// every field must be monotone under observation, and the final totals must
// be exact. CI runs this package under -race.
func TestStatsSnapshotConcurrent(t *testing.T) {
	const (
		clients = 8
		perC    = 50
	)
	s := stubServer(t, Config{
		MaxInFlight: 64,
		QueueWait:   time.Second, // never shed: totals must be exact
		Budget:      time.Second,
	})
	s.Log = func(string, ...any) {}
	h := s.Handler()
	good, _ := json.Marshal(validRequest())

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var last Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.Requests < last.Requests || st.Responses < last.Responses ||
				st.BadInput < last.BadInput || st.Degraded < last.Degraded ||
				st.Shed < last.Shed || st.Panics < last.Panics {
				t.Errorf("stats went backwards: %+v -> %+v", last, st)
				return
			}
			last = st
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				if (c+i)%2 == 0 {
					postRerank(t, h, good)
				} else {
					postRerank(t, h, []byte("not json"))
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	st := s.Stats()
	total := int64(clients * perC)
	if st.Requests != total {
		t.Fatalf("requests = %d, want %d", st.Requests, total)
	}
	if st.Responses != total/2 || st.BadInput != total/2 {
		t.Fatalf("responses=%d bad_input=%d, want %d each", st.Responses, st.BadInput, total/2)
	}
	if st.Responses+st.BadInput+st.Degraded+st.Shed != st.Requests {
		t.Fatalf("outcome counters do not partition requests: %+v", st)
	}
}
