package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rerank"
)

// TestChaos hammers the full handler chain with 32 concurrent clients while
// the fault injector fires scoring panics, scoring errors and latency
// spikes beyond the budget. The robustness contract under fire:
//
//   - the process never dies (any injected panic escaping would fail the
//     test run itself);
//   - zero 5xx — scoring failures degrade, they do not error;
//   - every status is 200 or 429 (shed under overload);
//   - every degraded 200 carries the exact initial-ranker ordering.
func TestChaos(t *testing.T) {
	s := testServer(t, Config{
		Budget:      15 * time.Millisecond,
		MaxInFlight: 8,
		QueueWait:   2 * time.Millisecond,
	})
	s.Log = func(string, ...any) {} // recovered-panic logs would swamp the output
	var calls atomic.Int64
	s.Faults = FaultFunc(func(ctx context.Context, _ *rerank.Instance) error {
		switch calls.Add(1) % 10 {
		case 0:
			panic("injected model bug")
		case 1:
			return errors.New("injected scoring error")
		case 2, 3:
			// Latency spike past the budget; bail out once abandoned so the
			// scoring slot frees promptly.
			spike := time.NewTimer(40 * time.Millisecond)
			defer spike.Stop()
			select {
			case <-spike.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		default:
			return nil
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(validRequest())

	const clients, perClient = 32, 15
	var (
		mu       sync.Mutex
		status   = map[int]int{}
		degraded int
		failures []string
	)
	record := func(f string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 10 {
			failures = append(failures, fmt.Sprintf(f, args...))
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/rerank", "application/json", bytes.NewReader(body))
				if err != nil {
					record("transport error: %v", err)
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					record("read body: %v", err)
					continue
				}
				mu.Lock()
				status[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					var rr RerankResponse
					if err := json.Unmarshal(raw, &rr); err != nil {
						record("bad 200 body: %v", err)
						continue
					}
					if len(rr.Ranked) != 3 {
						record("200 with %d ranked items", len(rr.Ranked))
					}
					if rr.Degraded {
						if rr.Ranked[0] != 7 || rr.Ranked[1] != 8 || rr.Ranked[2] != 9 {
							record("degraded ranking %v is not the initial order", rr.Ranked)
						}
						mu.Lock()
						degraded++
						mu.Unlock()
					}
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						record("429 without Retry-After")
					}
				default:
					record("unexpected status %d: %s", resp.StatusCode, raw)
				}
			}
		}()
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	for code := range status {
		if code >= 500 {
			t.Errorf("saw %d responses with status %d", status[code], code)
		}
	}
	if degraded == 0 {
		t.Error("no degraded responses despite injected faults")
	}
	// The server must still be fully alive after the storm.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v %v", resp, err)
	}
	resp.Body.Close()
	st := s.Stats()
	t.Logf("chaos: status=%v degraded=%d stats=%+v", status, degraded, st)
	if st.Panics == 0 {
		t.Error("no panics recovered despite injection")
	}
}

// TestServeDrainsInFlight simulates SIGTERM (context cancel) while a
// request is mid-scoring: the server must flip unready, stop accepting, and
// still complete the in-flight request before Serve returns.
func TestServeDrainsInFlight(t *testing.T) {
	s := testServer(t, Config{Budget: 2 * time.Second, DrainTimeout: 5 * time.Second})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.Faults = FaultFunc(func(context.Context, *rerank.Instance) error {
		close(entered)
		<-release
		return nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	body, _ := json.Marshal(validRequest())
	url := "http://" + ln.Addr().String()
	type result struct {
		resp *http.Response
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/rerank", "application/json", bytes.NewReader(body))
		inflight <- result{resp, err}
	}()
	<-entered // the request is mid-scoring
	cancel()  // SIGTERM arrives

	// Give Shutdown a moment to begin, then let scoring finish.
	time.Sleep(20 * time.Millisecond)
	if !s.Draining() {
		t.Error("server still ready while draining")
	}
	close(release)

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	defer r.resp.Body.Close()
	if r.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status %d during drain", r.resp.StatusCode)
	}
	var rr RerankResponse
	if err := json.NewDecoder(r.resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Ranked) != 3 {
		t.Fatalf("drained response %+v", rr)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}
