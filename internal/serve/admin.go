package serve

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
)

// ErrUnknownVersion marks a lifecycle operation naming a version the
// registry cannot find (on disk or in memory). Admin handlers map it to 404;
// lifecycle implementations wrap it so the distinction survives the
// serve↔registry package boundary.
var ErrUnknownVersion = errors.New("unknown model version")

// ErrLifecycleConflict marks a lifecycle operation that is invalid in the
// current state (promoting when no candidate is staged, rolling back with no
// history). Admin handlers map it to 409.
var ErrLifecycleConflict = errors.New("lifecycle conflict")

// VersionStatus is one row of GET /admin/models: a version on disk or in
// memory and its place in the lifecycle.
type VersionStatus struct {
	Version string `json:"version"`
	// State is "active", "candidate", "previous" (the rollback target) or
	// "available" (on disk, not loaded).
	State   string `json:"state"`
	Dataset string `json:"dataset,omitempty"`
	// Requests and Degraded are the version's served-traffic counters since
	// it was loaded (zero for available versions).
	Requests int64 `json:"requests"`
	Degraded int64 `json:"degraded"`
}

// Admin is the model lifecycle control plane the server exposes under
// /admin/models when Config.Admin is set. The registry implements it; the
// server only routes, guards and serializes — policy lives behind the
// interface.
type Admin interface {
	// Versions lists every version on disk and in memory with its state.
	Versions() ([]VersionStatus, error)
	// Load reads a version from disk, warm-up validates it and stages it as
	// the canary candidate (or activates it when nothing is active yet).
	Load(version string) error
	// Promote makes the named candidate the active model.
	Promote(version string) error
	// Rollback aborts the candidate canary, or — with no candidate staged —
	// reverts the active model to the previous one. It returns a
	// human-readable description of what was rolled back.
	Rollback() (string, error)
}

// adminAllowed gates the lifecycle endpoints. With Config.AdminToken set the
// caller must present it as a bearer token (compared in constant time);
// without a token only loopback peers are allowed — an internet-facing
// listener must never expose model swapping unauthenticated.
func (s *Server) adminAllowed(r *http.Request) bool {
	if tok := s.cfg.AdminToken; tok != "" {
		auth := r.Header.Get("Authorization")
		return subtle.ConstantTimeCompare([]byte(auth), []byte("Bearer "+tok)) == 1
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return false
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

func (s *Server) adminGuard(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.adminAllowed(r) {
			s.writeError(w, false, http.StatusForbidden, ErrCodeForbidden,
				"admin endpoints require the admin token or a loopback peer", 0)
			return
		}
		next(w, r)
	}
}

// adminError maps lifecycle errors onto the envelope: unknown versions are
// 404, invalid-state operations 409, everything else (warm-up failures,
// corrupt artifacts) 422 — the request was well-formed but the artifact or
// state cannot be processed.
func (s *Server) adminError(w http.ResponseWriter, err error) {
	status, code := http.StatusUnprocessableEntity, ErrCodeUnprocessable
	switch {
	case errors.Is(err, ErrUnknownVersion):
		status, code = http.StatusNotFound, ErrCodeUnknownVersion
	case errors.Is(err, ErrLifecycleConflict):
		status, code = http.StatusConflict, ErrCodeConflict
	}
	s.writeError(w, false, status, code, err.Error(), 0)
}

type adminVersionRequest struct {
	Version string `json:"version"`
}

func (s *Server) decodeAdminVersion(w http.ResponseWriter, r *http.Request) (string, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	var req adminVersionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, false, http.StatusBadRequest, ErrCodeBadInput, "bad request: "+err.Error(), 0)
		return "", false
	}
	if req.Version == "" {
		s.writeError(w, false, http.StatusBadRequest, ErrCodeBadInput, `bad request: missing "version"`, 0)
		return "", false
	}
	return req.Version, true
}

func (s *Server) handleAdminList(w http.ResponseWriter, _ *http.Request) {
	vs, err := s.cfg.Admin.Versions()
	if err != nil {
		s.adminError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"versions": vs})
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	v, ok := s.decodeAdminVersion(w, r)
	if !ok {
		return
	}
	if err := s.cfg.Admin.Load(v); err != nil {
		s.adminError(w, err)
		return
	}
	s.Log("serve: admin loaded model version %s", v)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"loaded": v})
}

func (s *Server) handleAdminPromote(w http.ResponseWriter, r *http.Request) {
	v, ok := s.decodeAdminVersion(w, r)
	if !ok {
		return
	}
	if err := s.cfg.Admin.Promote(v); err != nil {
		s.adminError(w, err)
		return
	}
	s.Log("serve: admin promoted model version %s", v)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"promoted": v})
}

func (s *Server) handleAdminRollback(w http.ResponseWriter, _ *http.Request) {
	desc, err := s.cfg.Admin.Rollback()
	if err != nil {
		s.adminError(w, err)
		return
	}
	s.Log("serve: admin rollback: %s", desc)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"rolled_back": desc})
}

// mountAdmin registers the lifecycle endpoints. Separated from Handler so
// the route list reads as the control-plane surface in one place.
func (s *Server) mountAdmin(mux *http.ServeMux) {
	mux.HandleFunc("GET /admin/models", s.adminGuard(s.handleAdminList))
	mux.HandleFunc("POST /admin/models/load", s.adminGuard(s.handleAdminLoad))
	mux.HandleFunc("POST /admin/models/promote", s.adminGuard(s.handleAdminPromote))
	mux.HandleFunc("POST /admin/models/rollback", s.adminGuard(s.handleAdminRollback))
}

// String formats a status row for logs.
func (v VersionStatus) String() string {
	return fmt.Sprintf("%s(%s)", v.Version, v.State)
}
