// Package serve is the hardened HTTP serving layer for a trained RAPID
// model. The paper's efficiency analysis (Section V-B) positions re-ranking
// as a stage inside an industrial response budget (~50 ms); a stage in that
// position must degrade, shed or drain — never stall or crash the chain it
// sits in. The server therefore enforces, per request:
//
//   - a scoring deadline (Config.Budget) with graceful degradation: on
//     overrun, scoring error or recovered scoring panic the response falls
//     back to the initial-ranker ordering and is marked "degraded" instead
//     of erroring;
//   - bounded concurrency: a semaphore with a bounded queue wait sheds
//     excess load with 429 + Retry-After rather than queueing unboundedly;
//   - panic recovery: a bug anywhere in the handler chain yields a 500,
//     never a process death;
//   - request-size caps via http.MaxBytesReader;
//
// and, per process: an http.Server with read/write/idle timeouts, a /readyz
// probe (distinct from /healthz liveness) that flips unready during drain,
// and graceful shutdown that completes in-flight requests before exit.
//
// Every hot-path event lands in an internal/obs registry exported on
// GET /metrics (Prometheus text format): requests and responses by status,
// degradations by reason, shed and panic counts, queue-wait / scoring /
// end-to-end latency histograms and an in-flight gauge. Config.Pprof
// additionally mounts net/http/pprof under /debug/pprof/.
//
// The server scores through a Provider — a per-request (model, manifest,
// version) pin — so a model lifecycle layer (internal/registry) can swap,
// canary and shadow versions underneath live traffic; NewServer wraps a
// fixed model in a static provider for the single-model shape.
package serve

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rerank"
)

// MaxListLength caps the number of candidates in one re-rank request.
// Re-ranking operates on the final stage's short list (the paper's lists are
// tens of items); a four-digit list is a malformed or hostile request, and
// the Bi-LSTM's O(L) step chain would blow the budget anyway.
const MaxListLength = 1024

// Scorer is the model-side contract the server needs: score an instance
// under a context, name the model. Score must honor ctx — when the deadline
// fires or the caller cancels, it stops working and returns ctx's error
// rather than burning CPU on an abandoned request. *core.Model implements
// it; tests substitute stubs; Adapt wraps legacy context-free rerankers.
//
// Scorer implementations should be comparable (pointer receivers or small
// value types): the micro-batching coalescer groups in-flight requests by
// (scorer, version) identity. A scorer whose dynamic type does not support
// == is detected at submission and scored unbatched instead.
type Scorer interface {
	Score(ctx context.Context, inst *rerank.Instance) ([]float64, error)
	Name() string
}

// BatchScorer is the optional batched contract: score B instances in one
// pass, returning one score slice per instance in input order. The serving
// layer batches through this interface when a coalesced batch holds more
// than one request; scorers without it are scored per instance.
type BatchScorer interface {
	Scorer
	ScoreBatch(ctx context.Context, insts []*rerank.Instance) ([][]float64, error)
}

// Adapt wraps a legacy context-free reranker (the rerank.Reranker contract)
// as a Scorer. The adapter checks the context between instances, so batch
// scoring through it still observes cancellation at instance granularity.
func Adapt(r rerank.Reranker) Scorer { return &adapter{r: r} }

type adapter struct{ r rerank.Reranker }

func (a *adapter) Name() string { return a.r.Name() }

func (a *adapter) Score(ctx context.Context, inst *rerank.Instance) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.r.Scores(inst), nil
}

func (a *adapter) ScoreBatch(ctx context.Context, insts []*rerank.Instance) ([][]float64, error) {
	out := make([][]float64, len(insts))
	for i, inst := range insts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = a.r.Scores(inst)
	}
	return out, nil
}

// Config bounds the server's resource envelope. The zero value is usable:
// every field falls back to the listed default.
type Config struct {
	// Budget is the per-request scoring deadline (default 50ms, the
	// industrial response budget of Section V-B). On overrun the request
	// degrades to the initial-ranker ordering.
	Budget time.Duration
	// MaxInFlight bounds concurrently executing scoring passes (default
	// 4×GOMAXPROCS). Scoring is CPU-bound; admitting more than a small
	// multiple of the cores only grows tail latency.
	MaxInFlight int
	// QueueWait is how long an admission may wait for a scoring slot before
	// the request is shed with 429 (default 10ms).
	QueueWait time.Duration
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// ReadTimeout/WriteTimeout/IdleTimeout configure the http.Server
	// (defaults 5s/10s/60s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// Registry receives the server's metrics; nil means a private registry
	// (read it back with Server.Registry). Passing one lets a process share
	// a single /metrics namespace across subsystems.
	Registry *obs.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server's
	// handler. Opt-in: profiling endpoints expose heap contents and must be
	// enabled deliberately.
	Pprof bool
	// Admin, when set, mounts the model lifecycle endpoints (GET
	// /admin/models, POST /admin/models/{load,promote,rollback}) backed by
	// this control plane. nil (the default) exposes no admin surface.
	Admin Admin
	// AdminToken guards the admin endpoints: callers must present it as
	// "Authorization: Bearer <token>". Empty restricts admin access to
	// loopback peers instead — model swapping is never unauthenticated on a
	// non-local listener.
	AdminToken string
	// Batch bounds the micro-batching coalescer; see BatchConfig. The zero
	// value enables batching with the defaults (16 / 2ms); set MaxBatch to 1
	// to score strictly per request.
	Batch BatchConfig
	// StateCacheBytes is the memory budget for the encoded user-state cache
	// (the repeat-user fast path). 0, the default, disables the cache. The
	// cache only engages for scorers implementing StateScorer; wire
	// Server.FlushStateCache to the model lifecycle (Registry.SetOnSwap) so a
	// promote or rollback can never serve a stale state.
	StateCacheBytes int64
	// Feedback, when set, mounts POST /v1/feedback backed by this sink and
	// correlates every rerank response's request_id to its served (route,
	// version) pair via Track. nil (the default) exposes no feedback surface;
	// responses still carry request ids either way.
	Feedback FeedbackSink
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 50 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.Batch.MaxBatch <= 0 {
		c.Batch.MaxBatch = 16
	}
	if c.Batch.MaxWait <= 0 {
		c.Batch.MaxWait = 2 * time.Millisecond
	}
	if c.Batch.Workers <= 0 {
		c.Batch.Workers = max(2, runtime.GOMAXPROCS(0))
	}
	return c
}

// Stats are the server's operational counters, exported on /healthz. The
// same numbers back the /metrics exposition: both views read the one set of
// registry atomics, so they can never disagree (the previous revision kept a
// parallel set of counters that /healthz read field-by-field).
type Stats struct {
	Requests  int64 `json:"requests"`
	Degraded  int64 `json:"degraded"`
	Shed      int64 `json:"shed"`
	Panics    int64 `json:"panics_recovered"`
	BadInput  int64 `json:"bad_input"`
	Responses int64 `json:"responses_ok"`
}

// serveMetrics is the serving-side metric set, registered on one
// obs.Registry. Counters are the source of truth for Stats.
type serveMetrics struct {
	requests    *obs.Counter
	responses   *obs.CounterVec // terminal status per request
	responsesOK *obs.Counter    // cached responses.With("ok")
	degraded    *obs.CounterVec // degradation reason
	shed        *obs.CounterVec // shed reason: backpressure vs draining
	shedBack    *obs.Counter    // cached shed.With(ShedBackpressure)
	shedDrain   *obs.Counter    // cached shed.With(ShedDraining)
	panics      *obs.Counter
	badInput    *obs.Counter
	inflight    *obs.Gauge
	queueWait   *obs.Histogram
	scoring     *obs.Histogram
	request     *obs.Histogram

	batchRequests *obs.Counter   // /v1/rerank:batch envelopes
	batchItems    *obs.Counter   // instances carried by those envelopes
	batchSize     *obs.Histogram // instances per dispatched scoring batch

	divRequests *obs.CounterVec   // scored jobs per diversifier
	divItems    *obs.CounterVec   // candidates re-ranked per diversifier
	divLatency  *obs.HistogramVec // batch wall-clock per diversifier

	feedback   *obs.CounterVec // /v1/feedback requests by terminal status
	feedbackOK *obs.Counter    // cached feedback.With("accepted")

	cacheHits          *obs.Counter // encoded user-state cache
	cacheMisses        *obs.Counter
	cacheEvictions     *obs.Counter
	cacheInvalidations *obs.Counter
	cacheEntries       *obs.Gauge
	cacheBytes         *obs.Gauge
	matWorkers         *obs.Gauge // GEMM worker knob, for perf forensics
}

func newServeMetrics(r *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		requests: r.Counter("rapid_http_requests_total",
			"Re-rank requests received (any outcome)."),
		responses: r.CounterVec("rapid_http_responses_total",
			"Finished re-rank requests by terminal status: ok, degraded, bad_input, too_large, shed, canceled.", "status"),
		degraded: r.CounterVec("rapid_degraded_total",
			"Degraded (initial-order fallback) responses by reason: deadline, error, panic.", "reason"),
		shed: r.CounterVec("rapid_shed_total",
			"Requests shed by reason: backpressure (429, no scoring slot freed within the queue wait) or draining (503, the server is going away).", "reason"),
		panics: r.Counter("rapid_panics_recovered_total",
			"Panics recovered in the handler chain or the scoring goroutine."),
		badInput: r.Counter("rapid_bad_input_total",
			"Requests rejected with 4xx for malformed or geometry-mismatched input."),
		inflight: r.Gauge("rapid_inflight_scoring",
			"Scoring passes currently executing (includes deadline-abandoned passes until they finish)."),
		queueWait: r.Histogram("rapid_queue_wait_seconds",
			"Time an admitted request waited for a scoring slot.", nil),
		scoring: r.Histogram("rapid_scoring_latency_seconds",
			"Model scoring wall-clock time, measured to completion even past the budget.", nil),
		request: r.Histogram("rapid_request_latency_seconds",
			"End-to-end /rerank handler latency.", nil),
		batchRequests: r.Counter("rapid_batch_requests_total",
			"Multi-instance /v1/rerank:batch envelopes received."),
		batchItems: r.Counter("rapid_batch_items_total",
			"Instances carried by /v1/rerank:batch envelopes."),
		batchSize: r.Histogram("rapid_batch_size",
			"Instances per dispatched scoring batch (single requests count as 1).",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		// The diversifier family is registered even when only neural versions
		// are resident, so a canary dashboard can tell "no diversifier traffic"
		// (series at zero) from "metrics missing" — same eager-visibility rule
		// as the cache family below.
		divRequests: r.CounterVec("rapid_diversifier_requests_total",
			"Requests scored by a classic diversifier version, by diversifier name.", "diversifier"),
		divItems: r.CounterVec("rapid_diversifier_items_total",
			"Candidates re-ranked by a classic diversifier version, by diversifier name.", "diversifier"),
		divLatency: r.HistogramVec("rapid_diversifier_latency_seconds",
			"Scoring wall-clock of batches served by a classic diversifier version, by diversifier name.", "diversifier", nil),
		// The feedback family is registered even without a sink so dashboards
		// can tell "feedback surface off" from "metrics missing" — the same
		// eager-visibility rule as the cache family below.
		feedback: r.CounterVec("rapid_feedback_requests_total",
			"POST /v1/feedback requests by terminal status: accepted, bad_input, shed, error.", "status"),
		// The state-cache family is registered even with the cache disabled so
		// dashboards can tell "cache off" (all-zero series) from "metrics
		// missing" — the same eager-visibility rule as the shed series below.
		cacheHits: r.Counter("rapid_state_cache_hits_total",
			"Scoring passes that reused a cached encoded user state."),
		cacheMisses: r.Counter("rapid_state_cache_misses_total",
			"State-cache lookups that found no usable entry."),
		cacheEvictions: r.Counter("rapid_state_cache_evictions_total",
			"Encoded user states evicted by the cache's memory budget (LRU)."),
		cacheInvalidations: r.Counter("rapid_state_cache_invalidations_total",
			"Whole-cache flushes triggered by model lifecycle transitions."),
		cacheEntries: r.Gauge("rapid_state_cache_entries",
			"Encoded user states currently resident in the cache."),
		cacheBytes: r.Gauge("rapid_state_cache_bytes",
			"Estimated bytes of encoded user states resident in the cache."),
		matWorkers: r.Gauge("rapid_mat_workers",
			"GEMM worker goroutines the matrix kernels may use (1 = serial)."),
	}
	// Eager label creation: both shed series are visible on /metrics at zero,
	// so a router's dashboards can tell "never shed" from "series missing".
	m.shedBack = m.shed.With(ShedBackpressure)
	m.shedDrain = m.shed.With(ShedDraining)
	m.responsesOK = m.responses.With("ok")
	m.feedbackOK = m.feedback.With("accepted")
	m.feedback.With("shed")
	return m
}

// Shed reasons, exported so a fleet router can match the X-Shed-Reason
// header without restating the strings. A backpressure shed (429) means
// "come back shortly — a slot will free"; a draining shed (503) means "this
// replica is going away — re-route, do not retry here".
const (
	ShedBackpressure = "backpressure"
	ShedDraining     = "draining"
)

// ShedReasonHeader carries the shed reason on 429/503 shed responses so a
// router can distinguish backpressure from drain without parsing the body.
const ShedReasonHeader = "X-Shed-Reason"

// shedResponse answers a request the server cannot admit. Backpressure keeps
// the 429 + Retry-After contract (the pressure-derived jittered hint);
// draining answers 503 with Retry-After set to the drain window — the
// process is restarting, and only a client with no alternative replica
// should bother coming back at all.
func (s *Server) shedResponse(w http.ResponseWriter, reason string) {
	s.met.responses.With("shed").Inc()
	w.Header().Set(ShedReasonHeader, reason)
	if reason == ShedDraining {
		s.met.shedDrain.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(max(1, int(s.cfg.DrainTimeout/time.Second))))
		http.Error(w, "draining, replica going away", http.StatusServiceUnavailable)
		return
	}
	s.met.shedBack.Inc()
	w.Header().Set("Retry-After", s.retryAfter())
	http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
}

// Server serves a trained model behind the robustness envelope above.
type Server struct {
	cfg        Config
	provider   Provider
	sem        chan struct{}
	ready      atomic.Bool
	reg        *obs.Registry
	met        *serveMetrics
	batch      *coalescer
	stateCache *StateCache // nil when Config.StateCacheBytes == 0
	idPrefix   string      // per-process request-id prefix
	reqSeq     atomic.Uint64

	// Faults is the chaos-testing seam; nil in production.
	Faults FaultInjector
	// Log receives operational messages; defaults to log.Printf.
	Log func(format string, args ...any)
}

// NewServer wraps a single fixed scorer with the hardened handler chain.
// man.Config must describe the scorer's instance geometry (it validates
// incoming requests). For hot-swappable versions use NewProviderServer.
func NewServer(model Scorer, man Manifest, cfg Config) *Server {
	return NewProviderServer(staticProvider{pin: Pinned{Scorer: model, Manifest: man}}, cfg)
}

// NewProviderServer builds a server that asks p for the (model, manifest,
// version) triple of every request — the deployment shape where a registry
// swaps, canaries and shadows model versions underneath live traffic.
func NewProviderServer(p Provider, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		provider: p,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		reg:      reg,
		met:      newServeMetrics(reg),
		idPrefix: newIDPrefix(),
		Log:      log.Printf,
	}
	s.batch = newCoalescer(s)
	if cfg.StateCacheBytes > 0 {
		s.stateCache = newStateCache(cfg.StateCacheBytes, s.met)
	}
	s.met.matWorkers.Set(float64(mat.Workers()))
	s.ready.Store(true)
	return s
}

// Registry exposes the server's metric registry so a binary can add its own
// metrics to the same /metrics namespace.
func (s *Server) Registry() *obs.Registry { return s.reg }

// newIDPrefix draws the per-process request-id prefix. Randomness makes ids
// unique across replicas and restarts without coordination; crypto/rand
// failure (no entropy device) falls back to a pid-free constant — ids are
// then unique only within the process, which the correlation table is.
func newIDPrefix() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "local"
	}
	return hex.EncodeToString(b[:])
}

// newRequestID issues the response's request_id: process prefix + sequence.
// Cheap (one atomic add, one small allocation) because every response pays
// it; the id is opaque to clients — its only contract is echoing it back in
// feedback events.
func (s *Server) newRequestID() string {
	return s.idPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 36)
}

// Stats snapshots the operational counters from the metric registry. Each
// field is one atomic load; the struct is a consistent-enough scrape (see
// the obs package comment), and every field is individually exact.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  s.met.requests.Value(),
		Degraded:  s.met.degraded.Total(),
		Shed:      s.met.shed.Total(),
		Panics:    s.met.panics.Value(),
		BadInput:  s.met.badInput.Value(),
		Responses: s.met.responsesOK.Value(),
	}
}

// Handler returns the full handler chain: routing wrapped in panic
// recovery, with /metrics (and optionally /debug/pprof/) mounted beside the
// serving endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// /rerank is the documented alias of the v1 single-item route: both are
	// served by the same handler and return byte-identical bodies.
	mux.HandleFunc("POST /rerank", s.handleRerank)
	mux.HandleFunc("POST /v1/rerank", s.handleRerank)
	mux.HandleFunc("POST /v1/rerank:batch", s.handleRerankBatch)
	if s.cfg.Feedback != nil {
		mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	}
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /metrics", s.reg.Handler())
	if s.cfg.Admin != nil {
		s.mountAdmin(mux)
	}
	if s.cfg.Pprof {
		obs.RegisterPprof(mux)
	}
	return s.recovered(mux)
}

// recovered converts any handler panic into a 500 instead of a process
// death. Scoring panics never reach here — they are recovered on the scoring
// goroutine and degrade the response — so this is the last line of defense
// for bugs in routing, decoding or encoding.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Inc()
				s.Log("serve: recovered handler panic on %s %s: %v", r.Method, r.URL.Path, p)
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

type scoreOutcome struct {
	scores   []float64
	err      error
	panicked bool
}

func (s *Server) handleRerank(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.requests.Inc()
	defer func() { s.met.request.ObserveDuration(time.Since(start)) }()

	// A draining server finishes what it admitted but takes nothing new:
	// answering 503/draining immediately (instead of queueing and shedding
	// with a generic 429) tells a fleet router to re-route now and stop
	// retrying a replica that is going away.
	if !s.ready.Load() {
		s.shedResponse(w, ShedDraining)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req RerankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.met.badInput.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.responses.With("too_large").Inc()
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		s.met.responses.With("bad_input").Inc()
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Pin one coherent (model, manifest, version) triple before validating:
	// the pinned version's geometry is the contract the request must meet,
	// and the same pin serves scoring and response labeling, so a version
	// swap mid-request can never mix models.
	route := RouteKey(&req)
	pin := s.provider.Pick(route)
	inst, err := ToInstance(pin.Manifest.Config, &req)
	if err != nil {
		s.met.badInput.Inc()
		s.met.responses.With("bad_input").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Admission: wait at most QueueWait for a scoring slot, then shed. The
	// slot is released by the scoring goroutine when scoring truly ends, not
	// when the handler returns — an abandoned (deadline-overrun) scorer
	// still occupies CPU, and only this accounting keeps the concurrency
	// bound honest.
	admit := time.NewTimer(s.cfg.QueueWait)
	defer admit.Stop()
	qstart := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.met.queueWait.ObserveDuration(time.Since(qstart))
	case <-admit.C:
		s.shedResponse(w, s.shedReason())
		return
	case <-r.Context().Done():
		s.met.responses.With("canceled").Inc()
		return // client gone; nothing to answer
	}

	// Scoring is delegated to the micro-batching coalescer: the request's
	// job either rides a coalesced batch with other in-flight requests of
	// the same (scorer, version) pin or dispatches alone when the server is
	// idle. The worker releases this request's scoring slot when the work
	// truly ends — an abandoned (deadline-overrun) pass still occupies CPU,
	// and only that accounting keeps the concurrency bound honest.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Budget)
	defer cancel()
	key, hasKey := s.stateKeyFor(&req, route, pin)
	done := s.batch.submitJob(&scoreJob{
		ctx: ctx, inst: inst, pin: pin,
		done: make(chan scoreOutcome, 1), ownsSlot: true,
		key: key, hasKey: hasKey,
	})

	var resp RerankResponse
	outcome := "ok"
	select {
	case out := <-done:
		if out.err != nil {
			// A client disconnect surfaces as context.Canceled with the
			// request context done; count it as canceled (matching the
			// admission path) and skip serializing a response nobody reads —
			// it is not a budget overrun.
			if errors.Is(out.err, context.Canceled) && r.Context().Err() != nil {
				s.met.responses.With("canceled").Inc()
				return
			}
			outcome = degradeReason(out)
			resp = s.degrade(inst, outcome)
		} else {
			resp = okResponse(inst, out.scores)
			s.met.responsesOK.Inc()
		}
	case <-ctx.Done():
		if r.Context().Err() != nil {
			s.met.responses.With("canceled").Inc()
			return
		}
		resp = s.degrade(inst, "deadline")
		outcome = "deadline"
	}
	resp.ModelVersion = pin.Version
	resp.Canary = pin.Canary
	resp.LatencyMS = float64(time.Since(start).Microseconds()) / 1000
	// The request id is issued only for responses that actually reach the
	// client (canceled paths return above), and tracked just before encoding
	// so a feedback event can never race ahead of its correlation entry.
	resp.RequestID = s.newRequestID()
	if s.cfg.Feedback != nil {
		s.cfg.Feedback.Track(resp.RequestID, route, pin.Version)
	}
	if pin.Observe != nil {
		pin.Observe(outcome, time.Since(start))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.Log("serve: encode response: %v", err)
	}
}

// MaxBatchRequests caps the instances one /v1/rerank:batch envelope may
// carry. The envelope is admitted as one unit against MaxInFlight; an
// unbounded envelope would let a single caller monopolize the scoring pool.
const MaxBatchRequests = 64

// handleRerankBatch serves POST /v1/rerank:batch: a multi-instance
// envelope scored as pre-grouped batches. Each item is pinned, validated
// and answered independently (per-item degraded flags and error strings);
// the envelope occupies one MaxInFlight slot and one Budget deadline as a
// whole. Envelope-level counters observe the request once; per-item
// degradations still land in the per-reason degraded counters.
func (s *Server) handleRerankBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.requests.Inc()
	s.met.batchRequests.Inc()
	defer func() { s.met.request.ObserveDuration(time.Since(start)) }()

	if !s.ready.Load() {
		s.shedResponse(w, ShedDraining)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var breq RerankBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
		s.met.badInput.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.responses.With("too_large").Inc()
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		s.met.responses.With("bad_input").Inc()
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	n := len(breq.Requests)
	if n == 0 || n > MaxBatchRequests {
		s.met.badInput.Inc()
		s.met.responses.With("bad_input").Inc()
		http.Error(w, fmt.Sprintf("batch must carry 1..%d requests, got %d", MaxBatchRequests, n), http.StatusBadRequest)
		return
	}
	s.met.batchItems.Add(int64(n))

	// Pin and validate each item independently: one malformed item yields a
	// per-item error, not a rejected envelope.
	pins := make([]Pinned, n)
	insts := make([]*rerank.Instance, n)
	resps := make([]RerankResponse, n)
	outcomes := make([]string, n)
	valid := 0
	routes := make([]uint64, n)
	for i := range breq.Requests {
		routes[i] = RouteKey(&breq.Requests[i])
		pins[i] = s.provider.Pick(routes[i])
		inst, err := ToInstance(pins[i].Manifest.Config, &breq.Requests[i])
		if err != nil {
			s.met.badInput.Inc()
			resps[i] = RerankResponse{Error: err.Error()}
			continue
		}
		insts[i] = inst
		valid++
	}

	if valid > 0 {
		// Admission: the whole envelope takes one scoring slot.
		admit := time.NewTimer(s.cfg.QueueWait)
		defer admit.Stop()
		qstart := time.Now()
		select {
		case s.sem <- struct{}{}:
			s.met.queueWait.ObserveDuration(time.Since(qstart))
		case <-admit.C:
			s.shedResponse(w, s.shedReason())
			return
		case <-r.Context().Done():
			s.met.responses.With("canceled").Inc()
			return // client gone; nothing to answer
		}
		// Release the envelope's slot and timeout context on every exit —
		// including a panic recovered by the outer handler wrapper — or one
		// MaxInFlight slot would leak until restart. The straight-line path
		// releases the slot early, before response labeling and encoding,
		// so a slow client never holds scoring capacity.
		held := true
		defer func() {
			if held {
				<-s.sem
			}
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Budget)
		defer cancel()
		jobs := make([]*scoreJob, 0, valid)
		idxs := make([]int, 0, valid)
		for i := range breq.Requests {
			if insts[i] == nil {
				continue
			}
			key, hasKey := s.stateKeyFor(&breq.Requests[i], routes[i], pins[i])
			jobs = append(jobs, &scoreJob{
				ctx: ctx, inst: insts[i], pin: pins[i],
				done: make(chan scoreOutcome, 1),
				key:  key, hasKey: hasKey,
			})
			idxs = append(idxs, i)
		}
		// The envelope is already a batch in hand: enqueue contiguous
		// same-pin runs (split at MaxBatch) directly, skipping the MaxWait
		// coalescing window. A non-comparable scorer cannot form a batchKey,
		// so its jobs enqueue one by one.
		for from := 0; from < len(jobs); {
			to := from + 1
			if comparableScorer(jobs[from].pin.Scorer) {
				key := batchKey{jobs[from].pin.Scorer, jobs[from].pin.Version}
				for to < len(jobs) && to-from < s.cfg.Batch.MaxBatch &&
					comparableScorer(jobs[to].pin.Scorer) &&
					(batchKey{jobs[to].pin.Scorer, jobs[to].pin.Version}) == key {
					to++
				}
			}
			s.batch.enqueue(jobs[from:to:to])
			from = to
		}
		for k, j := range jobs {
			i := idxs[k]
			var out scoreOutcome
			select {
			case out = <-j.done:
			case <-ctx.Done():
				out = scoreOutcome{err: ctx.Err()}
			}
			if out.err != nil {
				// A client disconnect cancels ctx for every remaining item;
				// count the envelope once as canceled and skip serializing a
				// response nobody will read. The deferred release frees the
				// slot; workers still drain the buffered done channels.
				if errors.Is(out.err, context.Canceled) && r.Context().Err() != nil {
					s.met.responses.With("canceled").Inc()
					return
				}
				outcomes[i] = degradeReason(out)
				s.met.degraded.With(outcomes[i]).Inc()
				resps[i] = degradedResponse(insts[i], outcomes[i])
			} else {
				outcomes[i] = "ok"
				resps[i] = okResponse(insts[i], out.scores)
			}
		}
		held = false
		<-s.sem // release the envelope's slot
	}

	elapsed := time.Since(start)
	ms := float64(elapsed.Microseconds()) / 1000
	for i := range resps {
		if insts[i] == nil {
			continue
		}
		resps[i].ModelVersion = pins[i].Version
		resps[i].Canary = pins[i].Canary
		resps[i].LatencyMS = ms
		// Each batch item gets its own request id: feedback joins per
		// impression, and an envelope is just transport.
		resps[i].RequestID = s.newRequestID()
		if s.cfg.Feedback != nil {
			s.cfg.Feedback.Track(resps[i].RequestID, routes[i], pins[i].Version)
		}
		if pins[i].Observe != nil {
			pins[i].Observe(outcomes[i], elapsed)
		}
	}
	// The envelope's terminal status reflects its items: ok if any item
	// scored, degraded if any item at least reached scoring, bad_input when
	// every item failed validation. Counting every envelope as ok would hide
	// batch-path failures from ok-rate dashboards.
	status := "bad_input"
	for i := range resps {
		if outcomes[i] == "ok" {
			status = "ok"
			break
		}
		if insts[i] != nil {
			status = "degraded"
		}
	}
	s.met.responses.With(status).Inc()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(RerankBatchResponse{Responses: resps}); err != nil {
		s.Log("serve: encode batch response: %v", err)
	}
}

// shedReason classifies a queue-wait shed: a drain that began while the
// request waited for a slot is a draining shed (the slot will never free for
// new work), anything else is ordinary backpressure.
func (s *Server) shedReason() string {
	if !s.ready.Load() {
		return ShedDraining
	}
	return ShedBackpressure
}

// retryAfter derives the 429 backoff hint from current pressure instead of a
// constant: an idle-but-bursty server suggests 1s, a saturated one up to 4s,
// and ±1s of jitter spreads the retries of a shed wave so the clients do not
// come back in lockstep and shed again.
func (s *Server) retryAfter() string {
	base := 1 + (3*len(s.sem))/cap(s.sem)
	sec := base + rand.IntN(3) - 1
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}

// degrade builds the graceful-degradation response: the initial ranker's
// ordering, marked degraded. A re-ranking stage that cannot answer in budget
// must hand back the list it was given — the upstream ranking is always a
// valid (if less diverse) answer, while an error would cost the impression.
func (s *Server) degrade(inst *rerank.Instance, reason string) RerankResponse {
	s.met.degraded.With(reason).Inc()
	s.met.responses.With("degraded").Inc()
	return degradedResponse(inst, reason)
}

func degradedResponse(inst *rerank.Instance, reason string) RerankResponse {
	order, scores := FallbackOrder(inst)
	return RerankResponse{Ranked: order, Scores: scores, Degraded: true, DegradedReason: reason}
}

// degradeReason maps a scoring outcome's error to the degradation label:
// panic for recovered panics, deadline for context expiry/cancellation
// (a scorer that honored ctx reports the same reason the handler's own
// timeout path would), error for everything else. Client disconnects are
// filtered out by the handlers before this mapping — a canceled request
// context counts as "canceled", not a degradation.
func degradeReason(out scoreOutcome) string {
	switch {
	case out.panicked:
		return "panic"
	case errors.Is(out.err, context.DeadlineExceeded), errors.Is(out.err, context.Canceled):
		return "deadline"
	default:
		return "error"
	}
}

// okResponse orders the list by the model's scores and aligns the score
// slice with the returned ranking.
func okResponse(inst *rerank.Instance, scores []float64) RerankResponse {
	order := rerank.OrderByScores(inst.Items, scores)
	pos := make(map[int]int, len(inst.Items))
	for i, id := range inst.Items {
		pos[id] = i
	}
	ordered := make([]float64, len(order))
	for i, id := range order {
		ordered[i] = scores[pos[id]]
	}
	return RerankResponse{Ranked: order, Scores: ordered}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	active := s.provider.Active()
	payload := map[string]any{
		"status":  "ok",
		"dataset": active.Manifest.Dataset,
		"model":   active.Scorer.Name(),
		"topics":  active.Manifest.Config.Topics,
		"hidden":  active.Manifest.Config.Hidden,
		"stats":   s.Stats(),
	}
	if active.Version != "" {
		payload["version"] = active.Version
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(payload)
}

// handleReady is the readiness probe: 200 while the server accepts traffic,
// 503 once drain has begun (so load balancers stop routing new requests) —
// distinct from /healthz, which stays 200 for as long as the process lives.
// Both answers carry a ReadyStatus body: the pinned model version feeds a
// router's skew detector and the draining flag its health prober, without a
// second endpoint or an extra probe.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	ready := s.ready.Load()
	st := ReadyStatus{
		Ready:        ready,
		Draining:     !ready,
		ModelVersion: s.provider.Active().Version,
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(st)
}

// NewHTTPServer builds the http.Server with the hardened timeouts. A server
// without read/write timeouts can be wedged by a single slow-loris client.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
}

// Run listens on addr and serves until ctx is canceled (wire it to
// SIGINT/SIGTERM via signal.NotifyContext), then drains gracefully: flips
// /readyz to 503, stops accepting connections, and waits up to DrainTimeout
// for in-flight requests to complete.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run on an existing listener (tests use :0 listeners).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := s.NewHTTPServer(ln.Addr().String())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.ready.Store(false)
	s.Log("serve: draining (timeout %v)", s.cfg.DrainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	// All in-flight handlers have returned; flush stragglers and stop the
	// scoring workers.
	s.batch.close()
	return nil
}
