// Package serve is the hardened HTTP frontend for the RAPID scoring engine
// (internal/engine). The engine owns the scoring data plane — deadlines,
// graceful degradation, bounded concurrency, micro-batching, provider
// pinning, the encoded-state cache and multi-tenancy; this package owns only
// what is HTTP: routing, JSON decode/encode, request-size caps, the mapping
// from the engine's typed errors onto status codes and the unified error
// envelope, panic recovery in the handler chain, probes, the /metrics
// exposition, the admin control-plane routes and the http.Server lifecycle
// (timeouts, graceful drain).
//
// Surfaces:
//
//   - POST /v1/rerank (and its deprecated byte-compatible alias POST
//     /rerank), POST /v1/rerank:batch — the scoring endpoints;
//   - POST /v1/feedback — outcome ingestion, mounted when Config.Feedback
//     is set;
//   - GET /healthz, /readyz, /metrics, optional /debug/pprof/ and
//     /admin/models lifecycle routes.
//
// Errors on the v1 surface share one JSON envelope, {"error": {"code",
// "message", "retry_after_s"}}; the legacy /rerank alias keeps its original
// plain-text error bodies so pre-v1 clients never see a format change, and
// answers with a Deprecation header plus a rapid_http_legacy_requests_total
// counter so its remaining callers can be found and migrated.
//
// A second, non-HTTP frontend for fleet-internal callers lives in
// internal/serve/binproto: the same engine behind a length-prefixed binary
// protocol. Config.BinaryListener serves it from the same Server.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Config bounds the server's resource envelope. The zero value is usable:
// every field falls back to the listed default. The scoring-side fields
// (Budget, MaxInFlight, QueueWait, Batch, StateCacheBytes, Feedback,
// Tenants, TenantMaxInFlight) are handed to the engine verbatim; the rest is
// HTTP-frontend configuration.
type Config struct {
	// Budget is the per-request scoring deadline (default 50ms, the
	// industrial response budget of Section V-B). On overrun the request
	// degrades to the initial-ranker ordering.
	Budget time.Duration
	// MaxInFlight bounds concurrently executing scoring passes (default
	// 4×GOMAXPROCS).
	MaxInFlight int
	// QueueWait is how long an admission may wait for a scoring slot before
	// the request is shed with 429 (default 10ms).
	QueueWait time.Duration
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// ReadTimeout/WriteTimeout/IdleTimeout configure the http.Server
	// (defaults 5s/10s/60s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// Registry receives the server's metrics; nil means a private registry
	// (read it back with Server.Registry). Passing one lets a process share
	// a single /metrics namespace across subsystems.
	Registry *obs.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server's
	// handler. Opt-in: profiling endpoints expose heap contents and must be
	// enabled deliberately.
	Pprof bool
	// Admin, when set, mounts the model lifecycle endpoints (GET
	// /admin/models, POST /admin/models/{load,promote,rollback}) backed by
	// this control plane. nil (the default) exposes no admin surface.
	Admin Admin
	// AdminToken guards the admin endpoints: callers must present it as
	// "Authorization: Bearer <token>". Empty restricts admin access to
	// loopback peers instead — model swapping is never unauthenticated on a
	// non-local listener.
	AdminToken string
	// Batch bounds the micro-batching coalescer; see BatchConfig.
	Batch BatchConfig
	// StateCacheBytes is the memory budget for the encoded user-state cache;
	// 0 disables it. See engine.Config.StateCacheBytes.
	StateCacheBytes int64
	// Feedback, when set, mounts POST /v1/feedback backed by this sink and
	// correlates every rerank response's request_id to its served (route,
	// version) pair. nil exposes no feedback surface.
	Feedback FeedbackSink
	// Tenants resolves the request "tenant" field to additional resident
	// scorers; see engine.Config.Tenants. nil rejects every named tenant.
	Tenants TenantSource
	// TenantMaxInFlight bounds concurrently admitted single-rerank requests
	// per tenant; see engine.Config.TenantMaxInFlight. 0 disables quotas.
	TenantMaxInFlight int
	// BinaryListener, when set, additionally serves the fleet-internal
	// binary protocol (internal/serve/binproto) on this listener from the
	// same engine; Serve owns the listener and drains it with the HTTP side.
	BinaryListener net.Listener
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	return c
}

// ShedReasonHeader carries the shed reason on 429/503 shed responses so a
// router can distinguish backpressure from drain without parsing the body.
const ShedReasonHeader = "X-Shed-Reason"

// Server is the HTTP frontend over an engine.Engine. The embedded engine
// exposes the scoring-side surface (Stats, Registry, StateCache,
// FlushStateCache, SetDraining, Faults, Log) directly on the Server, so
// existing callers are unaffected by the engine extraction.
type Server struct {
	*engine.Engine
	cfg Config
	met *engine.Metrics
	// legacyRequests counts POST /rerank (deprecated alias) hits so the
	// remaining pre-v1 callers can be found before the alias is removed.
	legacyRequests *obs.Counter
}

// NewServer wraps a single fixed scorer with the hardened handler chain.
// man.Config must describe the scorer's instance geometry (it validates
// incoming requests). For hot-swappable versions use NewProviderServer.
func NewServer(model Scorer, man Manifest, cfg Config) *Server {
	return NewProviderServer(StaticProvider(Pinned{Scorer: model, Manifest: man}), cfg)
}

// NewProviderServer builds a server that asks p for the (model, manifest,
// version) triple of every request — the deployment shape where a registry
// swaps, canaries and shadows model versions underneath live traffic.
func NewProviderServer(p Provider, cfg Config) *Server {
	cfg = cfg.withDefaults()
	eng := engine.New(p, engine.Config{
		Budget:            cfg.Budget,
		MaxInFlight:       cfg.MaxInFlight,
		QueueWait:         cfg.QueueWait,
		DrainTimeout:      cfg.DrainTimeout,
		Registry:          cfg.Registry,
		Batch:             cfg.Batch,
		StateCacheBytes:   cfg.StateCacheBytes,
		Feedback:          cfg.Feedback,
		Tenants:           cfg.Tenants,
		TenantMaxInFlight: cfg.TenantMaxInFlight,
	})
	return &Server{
		Engine: eng,
		cfg:    cfg,
		met:    eng.Metrics(),
		legacyRequests: eng.Registry().Counter("rapid_http_legacy_requests_total",
			"Requests to the deprecated POST /rerank alias (migrate callers to POST /v1/rerank)."),
	}
}

// Handler returns the full handler chain: routing wrapped in panic
// recovery, with /metrics (and optionally /debug/pprof/) mounted beside the
// serving endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// /rerank is the deprecated byte-compatible alias of the v1 single-item
	// route: same handler, same success bodies, but plain-text errors (the
	// pre-envelope format), a Deprecation header and its own hit counter.
	mux.HandleFunc("POST /rerank", s.handleLegacyRerank)
	mux.HandleFunc("POST /v1/rerank", s.handleV1Rerank)
	mux.HandleFunc("POST /v1/rerank:batch", s.handleRerankBatch)
	if s.cfg.Feedback != nil {
		mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	}
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /metrics", s.Registry().Handler())
	if s.cfg.Admin != nil {
		s.mountAdmin(mux)
	}
	if s.cfg.Pprof {
		obs.RegisterPprof(mux)
	}
	return s.recovered(mux)
}

// recovered converts any handler panic into a 500 instead of a process
// death. Scoring panics never reach here — they are recovered on the scoring
// goroutine and degrade the response — so this is the last line of defense
// for bugs in routing, decoding or encoding.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.met.Panics.Inc()
				s.Log("serve: recovered handler panic on %s %s: %v", r.Method, r.URL.Path, p)
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleLegacyRerank(w http.ResponseWriter, r *http.Request) {
	// RFC 9745 deprecation signal on every alias response; the migration
	// path is documented in the README. Success bodies stay byte-identical
	// to /v1/rerank, so flipping the path is the whole client change.
	w.Header().Set("Deprecation", "@1767225600") // 2026-01-01T00:00:00Z
	s.legacyRequests.Inc()
	s.serveRerank(w, r, true)
}

func (s *Server) handleV1Rerank(w http.ResponseWriter, r *http.Request) {
	s.serveRerank(w, r, false)
}

// serveRerank is the single-item scoring route: decode, hand to the engine,
// encode. Everything between — admission, tenancy, pinning, deadline,
// degradation, metrics — is the engine's.
func (s *Server) serveRerank(w http.ResponseWriter, r *http.Request, legacy bool) {
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req RerankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.decodeFailed(w, start, err, legacy, false)
		return
	}
	resp, err := s.Engine.Rerank(r.Context(), &req)
	if err != nil {
		s.writeEngineError(w, legacy, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.Log("serve: encode response: %v", err)
	}
}

// handleRerankBatch serves POST /v1/rerank:batch: a multi-instance envelope
// scored as pre-grouped batches. Items are answered independently (per-item
// degraded flags and error strings); see engine.RerankBatch.
func (s *Server) handleRerankBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var breq RerankBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
		s.decodeFailed(w, start, err, false, true)
		return
	}
	resps, err := s.Engine.RerankBatch(r.Context(), breq.Requests)
	if err != nil {
		s.writeEngineError(w, false, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(RerankBatchResponse{Responses: resps}); err != nil {
		s.Log("serve: encode batch response: %v", err)
	}
}

// decodeFailed accounts and answers a request that never reached the engine
// (malformed JSON or an oversized body). The frontend mirrors the engine's
// entry accounting — received counter, end-to-end latency, terminal status —
// so the request totals on /metrics cover decode failures too, exactly as
// they did when decoding lived inside the scoring handler.
func (s *Server) decodeFailed(w http.ResponseWriter, start time.Time, err error, legacy, batch bool) {
	s.met.Requests.Inc()
	if batch {
		s.met.BatchRequests.Inc()
	}
	s.met.BadInput.Inc()
	s.met.Request.ObserveDuration(time.Since(start))
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.met.Responses.With("too_large").Inc()
		s.writeError(w, legacy, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), 0)
		return
	}
	s.met.Responses.With("bad_input").Inc()
	s.writeError(w, legacy, http.StatusBadRequest, "bad_input", "bad request: "+err.Error(), 0)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	active := s.Provider().Active()
	payload := map[string]any{
		"status":  "ok",
		"dataset": active.Manifest.Dataset,
		"model":   active.Scorer.Name(),
		"topics":  active.Manifest.Config.Topics,
		"hidden":  active.Manifest.Config.Hidden,
		"stats":   s.Stats(),
	}
	if active.Version != "" {
		payload["version"] = active.Version
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(payload)
}

// handleReady is the readiness probe: 200 while the server accepts traffic,
// 503 once drain has begun (so load balancers stop routing new requests) —
// distinct from /healthz, which stays 200 for as long as the process lives.
// Both answers carry a ReadyStatus body: the pinned model version feeds a
// router's skew detector and the draining flag its health prober, without a
// second endpoint or an extra probe.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	draining := s.Draining()
	st := ReadyStatus{
		Ready:        !draining,
		Draining:     draining,
		ModelVersion: s.Provider().Active().Version,
	}
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(st)
}

// NewHTTPServer builds the http.Server with the hardened timeouts. A server
// without read/write timeouts can be wedged by a single slow-loris client.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
}

// Run listens on addr and serves until ctx is canceled (wire it to
// SIGINT/SIGTERM via signal.NotifyContext), then drains gracefully: flips
// /readyz to 503, stops accepting connections, and waits up to DrainTimeout
// for in-flight requests to complete.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run on an existing listener (tests use :0 listeners). When
// Config.BinaryListener is set the binary frontend serves alongside HTTP
// and drains with it.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := s.NewHTTPServer(ln.Addr().String())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	var stopBinary func(context.Context)
	if s.cfg.BinaryListener != nil {
		stopBinary = s.serveBinary(s.cfg.BinaryListener, errc)
	}
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.SetDraining(true)
	s.Log("serve: draining (timeout %v)", s.cfg.DrainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	var derr error
	if err := hs.Shutdown(sctx); err != nil {
		derr = fmt.Errorf("serve: drain incomplete: %w", err)
	}
	if stopBinary != nil {
		stopBinary(sctx)
	}
	// All in-flight handlers have returned; flush stragglers and stop the
	// scoring workers.
	s.Engine.Close()
	return derr
}
