package serve

import (
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rerank"
)

// This file re-exports the engine's transport-neutral surface under the
// names the serve package historically owned. The scoring data plane —
// micro-batching, provider pinning, deadlines, degradation, the state cache,
// tenancy — moved to internal/engine so frontends other than HTTP (the
// binary protocol, embedded callers) can share one implementation; type
// aliases keep every existing import of internal/serve compiling and keep
// serve's wire types and engine's request types interchangeable values, not
// conversions.

// Scorer is the model-side contract; see engine.Scorer.
type Scorer = engine.Scorer

// BatchScorer is the optional batched contract; see engine.BatchScorer.
type BatchScorer = engine.BatchScorer

// StateScorer is the optional encoded-user-state contract; see
// engine.StateScorer.
type StateScorer = engine.StateScorer

// Adapt wraps a legacy context-free reranker as a Scorer.
func Adapt(r rerank.Reranker) Scorer { return engine.Adapt(r) }

// Manifest describes a saved model; see engine.Manifest.
type Manifest = engine.Manifest

// Pinned is one coherent serving assignment; see engine.Pinned.
type Pinned = engine.Pinned

// Provider hands the server a model per request; see engine.Provider.
type Provider = engine.Provider

// StaticProvider wraps one fixed pin as a Provider.
func StaticProvider(pin Pinned) Provider { return engine.StaticProvider(pin) }

// BatchConfig bounds the micro-batching coalescer; see engine.BatchConfig.
type BatchConfig = engine.BatchConfig

// FaultInjector is the chaos-testing seam; see engine.FaultInjector.
type FaultInjector = engine.FaultInjector

// AfterScoreInjector optionally corrupts successful outcomes; see
// engine.AfterScoreInjector.
type AfterScoreInjector = engine.AfterScoreInjector

// FaultFunc adapts a function to FaultInjector.
type FaultFunc = engine.FaultFunc

// AfterScoreFunc bundles before/after hooks; see engine.FaultHooks.
type AfterScoreFunc = engine.AfterScoreFunc

// FaultHooks bundles a FaultFunc with an after-score hook.
type FaultHooks = engine.FaultHooks

// RerankRequest is the wire format of POST /rerank and /v1/rerank — the
// engine's transport-neutral Request, decoded from JSON by this frontend.
type RerankRequest = engine.Request

// RerankItem is one candidate of the initial list.
type RerankItem = engine.Item

// SeqItemWire is one entry of a per-topic behavior sequence.
type SeqItemWire = engine.SeqItem

// RerankResponse is the wire format of a rerank reply — the engine's
// Response, encoded to JSON by this frontend.
type RerankResponse = engine.Response

// FeedbackEvent is the wire format of POST /v1/feedback.
type FeedbackEvent = engine.FeedbackEvent

// FeedbackSink is the seam to the feedback subsystem; see
// engine.FeedbackSink.
type FeedbackSink = engine.FeedbackSink

// ErrFeedbackBusy reports a full feedback ingest queue; the handler sheds
// the event with 429 + Retry-After.
var ErrFeedbackBusy = engine.ErrFeedbackBusy

// StateKey identifies one cached user state; see engine.StateKey.
type StateKey = engine.StateKey

// StateCache is the memory-budgeted LRU of encoded user states.
type StateCache = engine.StateCache

// Stats are the engine's operational counters, exported on /healthz.
type Stats = engine.Stats

// TenantSource resolves tenant names to providers; see engine.TenantSource.
type TenantSource = engine.TenantSource

// StaticTenants is a fixed tenant table; see engine.StaticTenants.
type StaticTenants = engine.StaticTenants

// Limits and labels shared with the engine.
const (
	MaxListLength    = engine.MaxListLength
	MaxBatchRequests = engine.MaxBatchRequests
	MaxDim           = engine.MaxDim
	MaxRequestIDLen  = engine.MaxRequestIDLen
	DefaultTenant    = engine.DefaultTenant

	ShedBackpressure = engine.ShedBackpressure
	ShedDraining     = engine.ShedDraining
	ShedTenantQuota  = engine.ShedTenantQuota
)

// RouteKey derives the deterministic canary routing key for a request.
func RouteKey(req *RerankRequest) uint64 { return engine.RouteKey(req) }

// HistoryKey hashes the inputs the user-preference encoder consumes.
func HistoryKey(req *RerankRequest) uint64 { return engine.HistoryKey(req) }

// ToInstance validates the wire request against the model geometry and
// assembles a rerank.Instance.
func ToInstance(cfg core.Config, req *RerankRequest) (*rerank.Instance, error) {
	return engine.ToInstance(cfg, req)
}

// FallbackOrder is the graceful-degradation ranking.
func FallbackOrder(inst *rerank.Instance) ([]int, []float64) {
	return engine.FallbackOrder(inst)
}

// ManifestPath derives the manifest's path from the weights path.
func ManifestPath(modelPath string) string { return engine.ManifestPath(modelPath) }

// ValidateConfig rejects a manifest config that could never describe a
// servable model.
func ValidateConfig(cfg core.Config) error { return engine.ValidateConfig(cfg) }

// LoadModel reads the manifest next to modelPath and loads the weights
// strictly.
func LoadModel(modelPath string) (*core.Model, Manifest, error) {
	return engine.LoadModel(modelPath)
}

// ReadManifest reads and validates the manifest next to modelPath without
// touching weights.
func ReadManifest(modelPath string) (Manifest, error) { return engine.ReadManifest(modelPath) }

// LoadScorer is the version-agnostic load path the registry uses.
func LoadScorer(modelPath string) (Scorer, Manifest, error) {
	return engine.LoadScorer(modelPath)
}

// WriteManifestFileAtomic writes a manifest with the weights' atomic
// discipline.
func WriteManifestFileAtomic(path string, man Manifest) error {
	return engine.WriteManifestFileAtomic(path, man)
}

// decodeManifest keeps the fuzz harness driving the exact parse stage a
// hostile manifest reaches.
func decodeManifest(r io.Reader) (Manifest, error) { return engine.DecodeManifest(r) }
