package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// recordingSink captures Track/Submit calls and lets tests force Submit
// errors — the serve-side contract is tested without internal/feedback.
type recordingSink struct {
	tracked []struct {
		id      string
		route   uint64
		version string
	}
	submitted []FeedbackEvent
	submitErr error
}

func (r *recordingSink) Track(id string, route uint64, version string) {
	r.tracked = append(r.tracked, struct {
		id      string
		route   uint64
		version string
	}{id, route, version})
}

func (r *recordingSink) Submit(ev FeedbackEvent) error {
	if r.submitErr != nil {
		return r.submitErr
	}
	r.submitted = append(r.submitted, ev)
	return nil
}

func postFeedback(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/feedback", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestFeedbackHandlerAccepts(t *testing.T) {
	sink := &recordingSink{}
	s := testServer(t, Config{Feedback: sink})
	ev := FeedbackEvent{RequestID: "abc-1", Items: []int{7, 8, 9}, Clicks: []bool{true, false}}
	w := postFeedback(t, s.Handler(), mustJSON(t, ev))
	if w.Code != http.StatusAccepted {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	var out map[string]bool
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil || !out["accepted"] {
		t.Fatalf("body %q not {\"accepted\":true}", w.Body.String())
	}
	if len(sink.submitted) != 1 || sink.submitted[0].RequestID != "abc-1" {
		t.Fatalf("sink got %+v", sink.submitted)
	}
}

func TestFeedbackHandlerValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{"},
		{"no request id", `{"items":[1]}`},
		{"no items", `{"request_id":"x"}`},
		{"clicks longer than items", `{"request_id":"x","items":[1],"clicks":[true,false]}`},
		{"oversized request id", `{"request_id":"` + strings.Repeat("a", MaxRequestIDLen+1) + `","items":[1]}`},
	}
	sink := &recordingSink{}
	s := testServer(t, Config{Feedback: sink})
	h := s.Handler()
	for _, tc := range cases {
		if w := postFeedback(t, h, []byte(tc.body)); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, w.Code)
		}
	}
	if len(sink.submitted) != 0 {
		t.Fatalf("invalid events reached the sink: %+v", sink.submitted)
	}
}

func TestFeedbackHandlerBackpressure(t *testing.T) {
	sink := &recordingSink{submitErr: ErrFeedbackBusy}
	s := testServer(t, Config{Feedback: sink})
	w := postFeedback(t, s.Handler(), mustJSON(t, FeedbackEvent{RequestID: "x", Items: []int{1}}))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := w.Header().Get(ShedReasonHeader); got != ShedBackpressure {
		t.Fatalf("%s = %q, want %q", ShedReasonHeader, got, ShedBackpressure)
	}
}

func TestFeedbackHandlerSinkError(t *testing.T) {
	sink := &recordingSink{submitErr: errors.New("disk on fire")}
	s := testServer(t, Config{Feedback: sink})
	w := postFeedback(t, s.Handler(), mustJSON(t, FeedbackEvent{RequestID: "x", Items: []int{1}}))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
}

func TestFeedbackHandlerDraining(t *testing.T) {
	s := testServer(t, Config{Feedback: &recordingSink{}})
	s.SetDraining(true)
	w := postFeedback(t, s.Handler(), mustJSON(t, FeedbackEvent{RequestID: "x", Items: []int{1}}))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if got := w.Header().Get(ShedReasonHeader); got != ShedDraining {
		t.Fatalf("%s = %q, want %q", ShedReasonHeader, got, ShedDraining)
	}
}

func TestFeedbackNotMountedWithoutSink(t *testing.T) {
	s := testServer(t, Config{})
	w := postFeedback(t, s.Handler(), mustJSON(t, FeedbackEvent{RequestID: "x", Items: []int{1}}))
	if w.Code != http.StatusNotFound {
		t.Fatalf("feedback route answered %d without a sink", w.Code)
	}
}

// TestRerankResponseRequestID is the wire-contract regression for satellite
// 1: every successful /v1/rerank response carries a non-empty request_id
// under exactly that JSON key, ids are unique across requests, and each
// served response is tracked with its id before the body is written.
func TestRerankResponseRequestID(t *testing.T) {
	sink := &recordingSink{}
	s := testServer(t, Config{Feedback: sink})
	h := s.Handler()
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		w := postRerank(t, h, mustJSON(t, validRequest()))
		if w.Code != http.StatusOK {
			t.Fatalf("rerank status %d", w.Code)
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
			t.Fatal(err)
		}
		idJSON, ok := raw["request_id"]
		if !ok {
			t.Fatalf("response has no request_id key: %s", w.Body.String())
		}
		var id string
		if err := json.Unmarshal(idJSON, &id); err != nil || id == "" {
			t.Fatalf("request_id %s not a non-empty string", idJSON)
		}
		if seen[id] {
			t.Fatalf("request_id %q reused", id)
		}
		seen[id] = true
	}
	if len(sink.tracked) != 3 {
		t.Fatalf("tracked %d responses, want 3", len(sink.tracked))
	}
	for _, tr := range sink.tracked {
		if !seen[tr.id] {
			t.Fatalf("tracked id %q never appeared on the wire", tr.id)
		}
	}
}

// TestRerankBatchRequestIDs: every successful item of a batch envelope gets
// its own unique request_id; failed items carry none and are not tracked.
func TestRerankBatchRequestIDs(t *testing.T) {
	sink := &recordingSink{}
	s := testServer(t, Config{Feedback: sink})
	bad := validRequest()
	bad.UserFeatures = []float64{1} // wrong dims: per-item validation error
	env := RerankBatchRequest{Requests: []RerankRequest{*validRequest(), *bad, *validRequest()}}
	w := postBatch(t, s.Handler(), mustJSON(t, env))
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d body %s", w.Code, w.Body.String())
	}
	var out RerankBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("%d responses, want 3", len(out.Responses))
	}
	if out.Responses[0].RequestID == "" || out.Responses[2].RequestID == "" {
		t.Fatalf("successful items missing request_id: %+v", out.Responses)
	}
	if out.Responses[0].RequestID == out.Responses[2].RequestID {
		t.Fatal("batch items share a request_id")
	}
	if out.Responses[1].RequestID != "" {
		t.Fatalf("failed item was issued request_id %q", out.Responses[1].RequestID)
	}
	if len(sink.tracked) != 2 {
		t.Fatalf("tracked %d batch items, want 2 (failed item skipped)", len(sink.tracked))
	}
}

// TestRerankWithoutSinkStillIssuesIDs: request ids are part of the wire
// contract whether or not a feedback sink is configured.
func TestRerankWithoutSinkStillIssuesIDs(t *testing.T) {
	s := testServer(t, Config{})
	w := postRerank(t, s.Handler(), mustJSON(t, validRequest()))
	if w.Code != http.StatusOK {
		t.Fatalf("rerank status %d", w.Code)
	}
	var resp RerankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID == "" {
		t.Fatal("request_id omitted without a feedback sink")
	}
}
