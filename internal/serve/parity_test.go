package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/rerank"
	"repro/internal/serve/binproto"
)

// parityHarness mounts both frontends over ONE server (one engine, one
// model, one metric set) and returns a way to drive the same request through
// each: the HTTP path via the real handler chain, the binary path via a real
// TCP connection through binproto.
type parityHarness struct {
	s   *Server
	h   http.Handler
	bin *binproto.Client
}

func newParityHarness(t *testing.T, cfg Config) *parityHarness {
	t.Helper()
	s := testServer(t, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := &binproto.Server{Eng: s.Engine, Log: t.Logf}
	go bs.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		bs.Shutdown(ctx)
	})
	c, err := binproto.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &parityHarness{s: s, h: s.Handler(), bin: c}
}

func (p *parityHarness) overHTTP(t *testing.T, req *RerankRequest) (RerankResponse, int) {
	t.Helper()
	w := httptest.NewRecorder()
	hr := httptest.NewRequest(http.MethodPost, "/v1/rerank", bytes.NewReader(mustJSON(t, req)))
	p.h.ServeHTTP(w, hr)
	var resp RerankResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode http response: %v (body %s)", err, w.Body.String())
		}
	}
	return resp, w.Code
}

// parityRequest builds a deterministic request at the test geometry with
// irrational-ish feature values — scores whose decimal text would lose bits
// under a sloppy JSON round trip, which is exactly what the bitwise
// comparison must rule out.
func parityRequest(seed int64) *RerankRequest {
	rng := rand.New(rand.NewSource(seed))
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	req := &RerankRequest{
		UserFeatures:   vec(3),
		TopicSequences: [][]SeqItemWire{{{Features: vec(2)}, {Features: vec(2)}}, {{Features: vec(2)}}},
	}
	for i := 0; i < 6; i++ {
		req.Items = append(req.Items, RerankItem{
			ID:        100*int(seed) + i,
			Features:  vec(2),
			Cover:     []float64{rng.Float64(), rng.Float64()},
			InitScore: rng.Float64(),
		})
	}
	return req
}

func assertParity(t *testing.T, label string, j, b RerankResponse) {
	t.Helper()
	if j.Degraded != b.Degraded || j.DegradedReason != b.DegradedReason {
		t.Fatalf("%s: degradation differs: http %v/%q binary %v/%q",
			label, j.Degraded, j.DegradedReason, b.Degraded, b.DegradedReason)
	}
	if len(j.Ranked) != len(b.Ranked) || len(j.Scores) != len(b.Scores) {
		t.Fatalf("%s: shape differs: http %d/%d binary %d/%d",
			label, len(j.Ranked), len(j.Scores), len(b.Ranked), len(b.Scores))
	}
	for i := range j.Ranked {
		if j.Ranked[i] != b.Ranked[i] {
			t.Fatalf("%s: ranked[%d]: http %d binary %d", label, i, j.Ranked[i], b.Ranked[i])
		}
		if math.Float64bits(j.Scores[i]) != math.Float64bits(b.Scores[i]) {
			t.Fatalf("%s: scores[%d] not bitwise equal: http %x binary %x",
				label, i, math.Float64bits(j.Scores[i]), math.Float64bits(b.Scores[i]))
		}
	}
}

// TestCrossFrontendScoreParity is the frontend-neutrality acceptance test:
// the same request served over HTTP/JSON and over the binary protocol by the
// same engine returns bitwise-identical rankings and scores — the JSON
// round trip is lossless and the binary codec never re-quantizes.
func TestCrossFrontendScoreParity(t *testing.T) {
	p := newParityHarness(t, Config{Budget: 2 * time.Second})
	for seed := int64(1); seed <= 8; seed++ {
		req := parityRequest(seed)
		jresp, code := p.overHTTP(t, req)
		if code != http.StatusOK {
			t.Fatalf("seed %d: http status %d", seed, code)
		}
		bresp, err := p.bin.Rerank(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: binary: %v", seed, err)
		}
		if jresp.Degraded || bresp.Degraded {
			t.Fatalf("seed %d: degraded response in a healthy harness", seed)
		}
		if jresp.ModelVersion != bresp.ModelVersion || jresp.Canary != bresp.Canary {
			t.Fatalf("seed %d: version/canary differ: %+v vs %+v", seed, jresp, bresp)
		}
		assertParity(t, "healthy", jresp, bresp)
	}
}

// TestBinaryRequestIDsJoinFeedback: request IDs minted for binary-frontend
// responses are first-class citizens of the feedback loop — /v1/feedback
// accepts them and the sink sees the same ID the wire carried.
func TestBinaryRequestIDsJoinFeedback(t *testing.T) {
	sink := &recordingSink{}
	p := newParityHarness(t, Config{Budget: 2 * time.Second, Feedback: sink})
	resp, err := p.bin.Rerank(context.Background(), parityRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RequestID == "" {
		t.Fatal("binary response carries no request id")
	}
	ev := FeedbackEvent{RequestID: resp.RequestID, Items: resp.Ranked[:2], Clicks: []bool{true, false}}
	w := postFeedback(t, p.h, mustJSON(t, ev))
	if w.Code != http.StatusAccepted {
		t.Fatalf("feedback for binary request id: status %d body %s", w.Code, w.Body.String())
	}
	if len(sink.submitted) != 1 || sink.submitted[0].RequestID != resp.RequestID {
		t.Fatalf("sink got %+v, want request id %q", sink.submitted, resp.RequestID)
	}
}

// TestCrossFrontendDegradationParity: under injected scoring faults both
// frontends degrade identically — same flag, same reason, same fallback
// ordering — because degradation lives in the engine, not the transport.
func TestCrossFrontendDegradationParity(t *testing.T) {
	p := newParityHarness(t, Config{Budget: 2 * time.Second})
	p.s.Faults = FaultFunc(func(context.Context, *rerank.Instance) error {
		return errors.New("injected scoring error")
	})
	req := parityRequest(5)
	jresp, code := p.overHTTP(t, req)
	if code != http.StatusOK {
		t.Fatalf("degraded http status %d, want 200", code)
	}
	bresp, err := p.bin.Rerank(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !jresp.Degraded || !bresp.Degraded {
		t.Fatalf("faults not degrading: http %v binary %v", jresp.Degraded, bresp.Degraded)
	}
	assertParity(t, "degraded", jresp, bresp)

	// The fallback must be the exact initial-ranker ordering on both.
	inst, err := ToInstance(testConfig(), req)
	if err != nil {
		t.Fatal(err)
	}
	wantRank, wantScores := FallbackOrder(inst)
	for i := range wantRank {
		if jresp.Ranked[i] != wantRank[i] {
			t.Fatalf("fallback rank[%d] = %d, want item %d", i, jresp.Ranked[i], wantRank[i])
		}
		if math.Float64bits(jresp.Scores[i]) != math.Float64bits(wantScores[i]) {
			t.Fatalf("fallback score[%d] differs from initial ranker", i)
		}
	}
}

// TestCrossFrontendShedParity: with zero admission capacity both frontends
// refuse with their protocol's overload shape carrying the same retry hint
// semantics (HTTP 429 + Retry-After, binary overloaded + RetryAfterS).
func TestCrossFrontendShedParity(t *testing.T) {
	p := newParityHarness(t, Config{Budget: 2 * time.Second, MaxInFlight: 1, QueueWait: time.Nanosecond})
	// Occupy the only scoring slot so both frontends must shed.
	release := make(chan struct{})
	blocked := make(chan struct{})
	p.s.Faults = FaultFunc(func(ctx context.Context, _ *rerank.Instance) error {
		close(blocked)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	holder := mustJSON(t, parityRequest(1))
	go func() { // holds the slot; outcome checked implicitly via <-blocked
		w := httptest.NewRecorder()
		hr := httptest.NewRequest(http.MethodPost, "/v1/rerank", bytes.NewReader(holder))
		p.h.ServeHTTP(w, hr)
	}()
	<-blocked
	defer close(release)

	_, code := p.overHTTP(t, parityRequest(2))
	if code != http.StatusTooManyRequests {
		t.Fatalf("http shed status %d, want 429", code)
	}
	_, err := p.bin.Rerank(context.Background(), parityRequest(2))
	var re *binproto.RemoteError
	if !errors.As(err, &re) || re.Code != binproto.CodeOverloaded {
		t.Fatalf("binary shed error %v, want overloaded", err)
	}
	if !re.Retryable() || re.RetryAfterS < 1 {
		t.Fatalf("binary shed not retryable with hint: %+v", re)
	}
}
