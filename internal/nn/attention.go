package nn

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// SelfAttention implements the parameter-free scaled dot-product
// self-attention of RAPID's Eq. (2):
//
//	A = softmax(V·Vᵀ/√d)·V
//
// It has no weights; it exists as a method on Tape for symmetry with the
// parametric attention below.
func SelfAttention(t *Tape, v *Node) *Node {
	d := float64(v.Value.Cols)
	scores := t.Scale(t.MatMul(v, t.Transpose(v)), 1/math.Sqrt(d))
	return t.MatMul(t.SoftmaxRows(scores), v)
}

// AttentionHead is a single projected attention head:
// softmax(Q·Kᵀ/√d)·V with Q = x·Wq, K = x·Wk, V = x·Wv.
type AttentionHead struct {
	Wq, Wk, Wv *Param
	Dim        int
}

// NewAttentionHead creates a head projecting `in`-dim rows to `dim`-dim.
func NewAttentionHead(ps *ParamSet, prefix string, in, dim int, rng *rand.Rand) *AttentionHead {
	return &AttentionHead{
		Wq:  ps.New(prefix+".Wq", mat.XavierUniform(in, dim, rng)),
		Wk:  ps.New(prefix+".Wk", mat.XavierUniform(in, dim, rng)),
		Wv:  ps.New(prefix+".Wv", mat.XavierUniform(in, dim, rng)),
		Dim: dim,
	}
}

// Forward computes attention over the rows of x (L×in), optionally applying
// a mask added to the score matrix before the softmax (nil for no mask).
// Masks encode structural constraints: SRGA's unidirectional attention
// passes a lower-triangular mask, its local attention a band mask.
func (h *AttentionHead) Forward(t *Tape, x *Node, mask *mat.Matrix) *Node {
	q := t.MatMul(x, t.Use(h.Wq))
	k := t.MatMul(x, t.Use(h.Wk))
	v := t.MatMul(x, t.Use(h.Wv))
	scores := t.Scale(t.MatMul(q, t.Transpose(k)), 1/math.Sqrt(float64(h.Dim)))
	if mask != nil {
		scores = t.Add(scores, t.Constant(mask))
	}
	return t.MatMul(t.SoftmaxRows(scores), v)
}

// CrossForward computes attention where queries come from x (Lq×in) and
// keys/values from y (Lk×in). Used for induced set attention in SetRank.
func (h *AttentionHead) CrossForward(t *Tape, x, y *Node) *Node {
	q := t.MatMul(x, t.Use(h.Wq))
	k := t.MatMul(y, t.Use(h.Wk))
	v := t.MatMul(y, t.Use(h.Wv))
	scores := t.Scale(t.MatMul(q, t.Transpose(k)), 1/math.Sqrt(float64(h.Dim)))
	return t.MatMul(t.SoftmaxRows(scores), v)
}

// MultiHeadAttention concatenates several heads and projects back to the
// model dimension, as in Vaswani et al. Used by the PRM and SetRank
// baselines and RAPID-trans.
type MultiHeadAttention struct {
	Heads []*AttentionHead
	Wo    *Param
}

// NewMultiHeadAttention builds `heads` heads of size dim/heads each over
// dim-wide rows. dim must be divisible by heads.
func NewMultiHeadAttention(ps *ParamSet, prefix string, dim, heads int, rng *rand.Rand) *MultiHeadAttention {
	if heads <= 0 || dim%heads != 0 {
		panic("nn: MultiHeadAttention dim must be divisible by heads")
	}
	m := &MultiHeadAttention{Wo: ps.New(prefix+".Wo", mat.XavierUniform(dim, dim, rng))}
	hd := dim / heads
	for i := 0; i < heads; i++ {
		m.Heads = append(m.Heads, NewAttentionHead(ps, prefix+".h"+itoa(i), dim, hd, rng))
	}
	return m
}

// Forward applies every head to x (L×dim) and mixes with Wo.
func (m *MultiHeadAttention) Forward(t *Tape, x *Node, mask *mat.Matrix) *Node {
	outs := make([]*Node, len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.Forward(t, x, mask)
	}
	return t.MatMul(t.ConcatCols(outs...), t.Use(m.Wo))
}

// TransformerBlock is one pre-norm-free encoder block: multi-head
// self-attention with a residual connection and layer norm, followed by a
// position-wise feed-forward with another residual + norm.
type TransformerBlock struct {
	Attn     *MultiHeadAttention
	Norm1    *LayerNorm
	FF1, FF2 *Dense
	Norm2    *LayerNorm
}

// NewTransformerBlock builds a block with model width dim, `heads` heads and
// an ff-wide inner feed-forward layer.
func NewTransformerBlock(ps *ParamSet, prefix string, dim, heads, ff int, rng *rand.Rand) *TransformerBlock {
	return &TransformerBlock{
		Attn:  NewMultiHeadAttention(ps, prefix+".attn", dim, heads, rng),
		Norm1: NewLayerNorm(ps, prefix+".ln1", dim),
		FF1:   NewDense(ps, prefix+".ff1", dim, ff, ReLU, rng),
		FF2:   NewDense(ps, prefix+".ff2", ff, dim, Linear, rng),
		Norm2: NewLayerNorm(ps, prefix+".ln2", dim),
	}
}

// Forward applies the block to x (L×dim).
func (b *TransformerBlock) Forward(t *Tape, x *Node, mask *mat.Matrix) *Node {
	a := t.Add(x, b.Attn.Forward(t, x, mask))
	a = b.Norm1.Forward(t, a)
	f := t.Add(a, b.FF2.Forward(t, b.FF1.Forward(t, a)))
	return b.Norm2.Forward(t, f)
}

// CausalMask returns an L×L additive mask with −inf-like penalties above the
// diagonal, restricting attention to previous positions (SRGA's
// unidirectional browsing assumption).
func CausalMask(l int) *mat.Matrix {
	m := mat.New(l, l)
	for i := 0; i < l; i++ {
		for j := i + 1; j < l; j++ {
			m.Set(i, j, maskPenalty)
		}
	}
	return m
}

// BandMask returns an L×L additive mask allowing each position to attend
// only to neighbors within the given radius (SRGA's local attention).
func BandMask(l, radius int) *mat.Matrix {
	m := mat.New(l, l)
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			if j < i-radius || j > i+radius {
				m.Set(i, j, maskPenalty)
			}
		}
	}
	return m
}

// maskPenalty is a large negative number used instead of −inf so the
// softmax stays finite even for fully masked rows.
const maskPenalty = -1e9

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
