package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// snapshot is the on-disk representation of a ParamSet.
type snapshot struct {
	Params []paramRecord
}

type paramRecord struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// Save writes every parameter of s (values only, not optimizer state) to w
// using encoding/gob.
func (s *ParamSet) Save(w io.Writer) error {
	snap := snapshot{}
	for _, p := range s.All() {
		snap.Params = append(snap.Params, paramRecord{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores parameter values previously written by Save. Every stored
// parameter must exist in s with matching shape; extra parameters in s are
// left untouched (allowing forward-compatible model growth).
func (s *ParamSet) Load(r io.Reader) error {
	return s.load(r, false)
}

// LoadStrict is Load plus a completeness check: every parameter of s must be
// present in the snapshot. A serving process should prefer this — a weights
// file that covers only part of the model would otherwise leave the rest at
// random initialization and serve garbage without any error.
func (s *ParamSet) LoadStrict(r io.Reader) error {
	return s.load(r, true)
}

func (s *ParamSet) load(r io.Reader, strict bool) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	seen := make(map[string]bool, len(snap.Params))
	for _, rec := range snap.Params {
		p := s.Get(rec.Name)
		if p == nil {
			return fmt.Errorf("nn: snapshot has unknown parameter %q", rec.Name)
		}
		if p.Value.Rows != rec.Rows || p.Value.Cols != rec.Cols {
			return fmt.Errorf("nn: parameter %q shape mismatch: model %dx%d, snapshot %dx%d",
				rec.Name, p.Value.Rows, p.Value.Cols, rec.Rows, rec.Cols)
		}
		copy(p.Value.Data, rec.Data)
		seen[rec.Name] = true
	}
	if strict {
		for _, p := range s.All() {
			if !seen[p.Name] {
				return fmt.Errorf("nn: snapshot is missing parameter %q (%dx%d)", p.Name, p.Value.Rows, p.Value.Cols)
			}
		}
	}
	return nil
}

// SaveFileAtomic writes the parameter snapshot to path through a temporary
// file in the same directory followed by a rename, so a crash or kill
// mid-write can never leave a truncated or half-written checkpoint at path.
// The parent directory is fsynced after the rename: syncing only the file
// makes its *contents* durable, but the rename lives in the directory, and a
// crash before the directory metadata reaches disk would silently lose a
// "successfully written" checkpoint or registry version.
func (s *ParamSet) SaveFileAtomic(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("nn: checkpoint temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = s.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("nn: sync checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("nn: close checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("nn: publish checkpoint: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("nn: open checkpoint dir: %w", err)
	}
	defer d.Close()
	if err = d.Sync(); err != nil {
		return fmt.Errorf("nn: sync checkpoint dir: %w", err)
	}
	return nil
}

// CopyValuesFrom copies values from src into s for every parameter name both
// sets share with matching shapes. It returns the number of parameters
// copied. Used to transfer trained weights between model variants.
func (s *ParamSet) CopyValuesFrom(src *ParamSet) int {
	n := 0
	for _, p := range s.All() {
		q := src.Get(p.Name)
		if q != nil && q.Value.SameShape(p.Value) {
			copy(p.Value.Data, q.Value.Data)
			n++
		}
	}
	return n
}
