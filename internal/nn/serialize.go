package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-disk representation of a ParamSet.
type snapshot struct {
	Params []paramRecord
}

type paramRecord struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// Save writes every parameter of s (values only, not optimizer state) to w
// using encoding/gob.
func (s *ParamSet) Save(w io.Writer) error {
	snap := snapshot{}
	for _, p := range s.All() {
		snap.Params = append(snap.Params, paramRecord{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores parameter values previously written by Save. Every stored
// parameter must exist in s with matching shape; extra parameters in s are
// left untouched (allowing forward-compatible model growth).
func (s *ParamSet) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	for _, rec := range snap.Params {
		p := s.Get(rec.Name)
		if p == nil {
			return fmt.Errorf("nn: snapshot has unknown parameter %q", rec.Name)
		}
		if p.Value.Rows != rec.Rows || p.Value.Cols != rec.Cols {
			return fmt.Errorf("nn: parameter %q shape mismatch: model %dx%d, snapshot %dx%d",
				rec.Name, p.Value.Rows, p.Value.Cols, rec.Rows, rec.Cols)
		}
		copy(p.Value.Data, rec.Data)
	}
	return nil
}

// CopyValuesFrom copies values from src into s for every parameter name both
// sets share with matching shapes. It returns the number of parameters
// copied. Used to transfer trained weights between model variants.
func (s *ParamSet) CopyValuesFrom(src *ParamSet) int {
	n := 0
	for _, p := range s.All() {
		q := src.Get(p.Name)
		if q != nil && q.Value.SameShape(p.Value) {
			copy(p.Value.Data, q.Value.Data)
			n++
		}
	}
	return n
}
