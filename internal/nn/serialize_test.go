package nn

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mat"
)

func twoParamSet(seed int64) *ParamSet {
	rng := rand.New(rand.NewSource(seed))
	ps := NewParamSet()
	ps.New("a", mat.RandNormal(2, 3, 0, 0.5, rng))
	ps.New("b", mat.RandNormal(4, 1, 0, 0.5, rng))
	return ps
}

func TestLoadStrictRoundTrip(t *testing.T) {
	src := twoParamSet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := twoParamSet(2)
	if err := dst.LoadStrict(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, p := range dst.All() {
		q := src.All()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != q.Value.Data[j] {
				t.Fatalf("param %s not restored", p.Name)
			}
		}
	}
}

func TestLoadStrictMissingParam(t *testing.T) {
	small := NewParamSet()
	small.New("a", mat.New(2, 3))
	var buf bytes.Buffer
	if err := small.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := twoParamSet(1)
	// Non-strict load tolerates the gap (forward-compatible growth)…
	if err := full.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	// …strict load must name the missing parameter.
	err := full.LoadStrict(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("strict load accepted a partial snapshot")
	}
	if !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("error does not name the missing parameter: %v", err)
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.gob")
	src := twoParamSet(3)
	if err := src.SaveFileAtomic(path); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing checkpoint must also succeed (rename replaces).
	if err := src.SaveFileAtomic(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dst := twoParamSet(4)
	if err := dst.LoadStrict(f); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "weights.gob" {
		t.Fatalf("directory not clean after atomic save: %v", entries)
	}
	// A write into a missing directory fails without leaving junk at path.
	if err := src.SaveFileAtomic(filepath.Join(dir, "missing", "w.gob")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
}
