package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// checkOp gradient-checks a scalar-producing graph over one parameter.
func checkOp(t *testing.T, name string, p *Param, build func(tp *Tape) *Node) {
	t.Helper()
	f := func() float64 {
		tp := NewTape()
		return build(tp).Value.Data[0]
	}
	fb := func() {
		tp := NewTape()
		tp.Backward(build(tp))
	}
	if _, err := GradCheck([]*Param{p}, f, fb, 1e-5); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestGradAdd(t *testing.T) {
	p := NewParam("p", uniformConst(2, 3, 0.3))
	c := uniformConst(2, 3, 0.7)
	checkOp(t, "Add", p, func(tp *Tape) *Node {
		return tp.Sum(tp.Add(tp.Use(p), tp.Constant(c)))
	})
}

func TestGradSub(t *testing.T) {
	p := NewParam("p", uniformConst(2, 3, 0.4))
	c := uniformConst(2, 3, 0.9)
	checkOp(t, "Sub", p, func(tp *Tape) *Node {
		return tp.Sum(tp.Sub(tp.Constant(c), tp.Use(p)))
	})
}

func TestGradMul(t *testing.T) {
	p := NewParam("p", uniformConst(2, 3, 0.5))
	c := uniformConst(2, 3, 0.2)
	checkOp(t, "Mul", p, func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.Use(p), tp.Constant(c)))
	})
}

func TestGradMulBothSides(t *testing.T) {
	a := NewParam("a", uniformConst(2, 2, 0.11))
	b := NewParam("b", uniformConst(2, 2, 0.77))
	f := func() float64 {
		tp := NewTape()
		return tp.Sum(tp.Mul(tp.Use(a), tp.Use(b))).Value.Data[0]
	}
	fb := func() {
		tp := NewTape()
		tp.Backward(tp.Sum(tp.Mul(tp.Use(a), tp.Use(b))))
	}
	if _, err := GradCheck([]*Param{a, b}, f, fb, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradMatMul(t *testing.T) {
	a := NewParam("a", uniformConst(2, 3, 0.13))
	b := NewParam("b", uniformConst(3, 4, 0.57))
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.MatMul(tp.Use(a), tp.Use(b)))
	}
	f := func() float64 { tp := NewTape(); return build(tp).Value.Data[0] }
	fb := func() { tp := NewTape(); tp.Backward(build(tp)) }
	if _, err := GradCheck([]*Param{a, b}, f, fb, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradTranspose(t *testing.T) {
	p := NewParam("p", uniformConst(2, 3, 0.31))
	c := uniformConst(2, 3, 0.5)
	checkOp(t, "Transpose", p, func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.Transpose(tp.Use(p)), tp.Constant(c.T())))
	})
}

func TestGradScale(t *testing.T) {
	p := NewParam("p", uniformConst(2, 2, 0.21))
	checkOp(t, "Scale", p, func(tp *Tape) *Node {
		return tp.Sum(tp.Scale(tp.Use(p), -1.7))
	})
}

func TestGradAddRowBroadcast(t *testing.T) {
	x := NewParam("x", uniformConst(3, 4, 0.15))
	b := NewParam("b", uniformConst(1, 4, 0.85))
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.Sigmoid(tp.AddRowBroadcast(tp.Use(x), tp.Use(b))))
	}
	f := func() float64 { tp := NewTape(); return build(tp).Value.Data[0] }
	fb := func() { tp := NewTape(); tp.Backward(build(tp)) }
	if _, err := GradCheck([]*Param{x, b}, f, fb, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradConcatColsAndSlice(t *testing.T) {
	a := NewParam("a", uniformConst(2, 2, 0.41))
	b := NewParam("b", uniformConst(2, 3, 0.61))
	build := func(tp *Tape) *Node {
		cc := tp.ConcatCols(tp.Use(a), tp.Use(b))
		return tp.Sum(tp.Tanh(tp.SliceCols(cc, 1, 4)))
	}
	f := func() float64 { tp := NewTape(); return build(tp).Value.Data[0] }
	fb := func() { tp := NewTape(); tp.Backward(build(tp)) }
	if _, err := GradCheck([]*Param{a, b}, f, fb, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradConcatRowsAndSliceRows(t *testing.T) {
	a := NewParam("a", uniformConst(2, 3, 0.43))
	b := NewParam("b", uniformConst(1, 3, 0.67))
	build := func(tp *Tape) *Node {
		cr := tp.ConcatRows(tp.Use(a), tp.Use(b))
		return tp.Sum(tp.Sigmoid(tp.SliceRows(cr, 1, 3)))
	}
	f := func() float64 { tp := NewTape(); return build(tp).Value.Data[0] }
	fb := func() { tp := NewTape(); tp.Backward(build(tp)) }
	if _, err := GradCheck([]*Param{a, b}, f, fb, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradActivations(t *testing.T) {
	for _, tc := range []struct {
		name  string
		apply func(tp *Tape, x *Node) *Node
	}{
		{"Sigmoid", func(tp *Tape, x *Node) *Node { return tp.Sigmoid(x) }},
		{"Tanh", func(tp *Tape, x *Node) *Node { return tp.Tanh(x) }},
		{"Softplus", func(tp *Tape, x *Node) *Node { return tp.Softplus(x) }},
	} {
		p := NewParam("p", uniformConst(2, 3, 0.37))
		checkOp(t, tc.name, p, func(tp *Tape) *Node {
			return tp.Sum(tc.apply(tp, tp.Use(p)))
		})
	}
}

func TestGradReLU(t *testing.T) {
	// Keep values away from the kink at 0.
	v := uniformConst(2, 3, 0.47)
	for i := range v.Data {
		if math.Abs(v.Data[i]) < 0.05 {
			v.Data[i] = 0.1
		}
	}
	p := NewParam("p", v)
	checkOp(t, "ReLU", p, func(tp *Tape) *Node {
		return tp.Sum(tp.ReLU(tp.Use(p)))
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	p := NewParam("p", uniformConst(3, 4, 0.53))
	c := uniformConst(3, 4, 0.29)
	checkOp(t, "SoftmaxRows", p, func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.SoftmaxRows(tp.Use(p)), tp.Constant(c)))
	})
}

func TestGradMeanAndMeanRows(t *testing.T) {
	p := NewParam("p", uniformConst(3, 2, 0.59))
	checkOp(t, "Mean", p, func(tp *Tape) *Node {
		return tp.Mean(tp.Use(p))
	})
	c := uniformConst(1, 2, 0.9)
	checkOp(t, "MeanRows", p, func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.MeanRows(tp.Use(p)), tp.Constant(c)))
	})
}

func TestGradSigmoidBCE(t *testing.T) {
	p := NewParam("p", uniformConst(4, 1, 0.71))
	targets := []float64{1, 0, 1, 0}
	checkOp(t, "SigmoidBCE", p, func(tp *Tape) *Node {
		return tp.SigmoidBCE(tp.Use(p), targets)
	})
}

func TestSigmoidBCEStability(t *testing.T) {
	// Extreme logits must not produce NaN/Inf.
	tp := NewTape()
	logits := tp.Constant(mat.ColVector([]float64{1000, -1000}))
	loss := tp.SigmoidBCE(logits, []float64{1, 0})
	if v := loss.Value.Data[0]; math.IsNaN(v) || math.IsInf(v, 0) || v > 1e-6 {
		t.Fatalf("extreme-logit BCE = %v, want ~0", v)
	}
	tp2 := NewTape()
	logits2 := tp2.Constant(mat.ColVector([]float64{-1000}))
	loss2 := tp2.SigmoidBCE(logits2, []float64{1})
	if v := loss2.Value.Data[0]; math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("wrong-side extreme logit BCE = %v", v)
	}
}

func TestGradLayerNorm(t *testing.T) {
	x := NewParam("x", uniformConst(3, 4, 0.23))
	g := NewParam("g", uniformConst(1, 4, 0.91))
	b := NewParam("b", uniformConst(1, 4, 0.17))
	c := uniformConst(3, 4, 0.63)
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.LayerNormRows(tp.Use(x), tp.Use(g), tp.Use(b)), tp.Constant(c)))
	}
	f := func() float64 { tp := NewTape(); return build(tp).Value.Data[0] }
	fb := func() { tp := NewTape(); tp.Backward(build(tp)) }
	if _, err := GradCheck([]*Param{x, g, b}, f, fb, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardRequires1x1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar did not panic")
		}
	}()
	tp := NewTape()
	n := tp.Constant(mat.New(2, 2))
	tp.Backward(n)
}

func TestParamGradAccumulation(t *testing.T) {
	p := NewParam("p", mat.FromSlice(1, 1, []float64{2}))
	for i := 0; i < 3; i++ {
		tp := NewTape()
		tp.Backward(tp.Sum(tp.Use(p)))
	}
	if got := p.Grad.Data[0]; got != 3 {
		t.Fatalf("gradient accumulated to %v, want 3 (one per backward pass)", got)
	}
	p.ZeroGrad()
	if p.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad did not clear")
	}
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	p := NewParam("p", uniformConst(1, 5, 0.87))
	checkOp(t, "SoftmaxCrossEntropy", p, func(tp *Tape) *Node {
		return tp.SoftmaxCrossEntropy(tp.Use(p), 2)
	})
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	tp := NewTape()
	logits := tp.Constant(mat.RowVector([]float64{1000, -1000, 0}))
	loss := tp.SoftmaxCrossEntropy(logits, 0)
	if v := loss.Value.Data[0]; math.IsNaN(v) || math.IsInf(v, 0) || v > 1e-6 {
		t.Fatalf("dominant-logit CE = %v, want ~0", v)
	}
}
