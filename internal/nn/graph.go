// Package nn is a small neural-network library built for this reproduction:
// a reverse-mode automatic-differentiation tape over dense matrices, the
// recurrent and attention layers RAPID and its baselines require, and the
// Adam optimizer. Everything is stdlib-only and single-goroutine per tape.
//
// The usual pattern is:
//
//	tape := nn.NewTape()
//	out := layer.Forward(tape, tape.Constant(x))
//	loss := tape.SigmoidBCE(out, targets)
//	tape.Backward(loss)        // accumulates into Param.Grad
//	optimizer.Step(params)     // consumes and zeroes the gradients
package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Node is one value in the computation graph. Value is the forward result;
// Grad accumulates ∂loss/∂Value during Backward. For parameter nodes Grad
// aliases the owning Param's gradient so that repeated forward passes
// accumulate into the same buffer.
type Node struct {
	Value *mat.Matrix
	Grad  *mat.Matrix
	back  func() // propagates this node's Grad into its inputs; nil for leaves
}

// Tape records nodes in topological (creation) order so Backward can run a
// single reverse sweep. A Tape is cheap; create a fresh one per forward pass.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{nodes: make([]*Node, 0, 256)} }

func (t *Tape) newNode(v *mat.Matrix, back func()) *Node {
	n := &Node{Value: v, Grad: mat.New(v.Rows, v.Cols), back: back}
	t.nodes = append(t.nodes, n)
	return n
}

// Constant wraps a matrix that requires no gradient. Backward still flows
// into its Grad buffer (harmlessly) but nothing reads it.
func (t *Tape) Constant(v *mat.Matrix) *Node {
	return t.newNode(v, nil)
}

// Use introduces parameter p into the graph. The returned node's gradient
// buffer is p.Grad itself, so Backward accumulates directly into the param.
func (t *Tape) Use(p *Param) *Node {
	n := &Node{Value: p.Value, Grad: p.Grad, back: nil}
	t.nodes = append(t.nodes, n)
	return n
}

// Backward seeds loss with gradient 1 and propagates through the tape in
// reverse creation order. loss must be a 1×1 node produced by this tape.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward target must be 1x1, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	loss.Grad.Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if n := t.nodes[i]; n.back != nil {
			n.back()
		}
	}
}

// Add returns a + b.
func (t *Tape) Add(a, b *Node) *Node {
	out := t.newNode(a.Value.Add(b.Value), nil)
	out.back = func() {
		a.Grad.AddInPlace(out.Grad)
		b.Grad.AddInPlace(out.Grad)
	}
	return out
}

// Sub returns a − b.
func (t *Tape) Sub(a, b *Node) *Node {
	out := t.newNode(a.Value.Sub(b.Value), nil)
	out.back = func() {
		a.Grad.AddInPlace(out.Grad)
		b.Grad.AddScaledInPlace(-1, out.Grad)
	}
	return out
}

// Mul returns the element-wise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	out := t.newNode(a.Value.MulElem(b.Value), nil)
	out.back = func() {
		a.Grad.AddInPlace(out.Grad.MulElem(b.Value))
		b.Grad.AddInPlace(out.Grad.MulElem(a.Value))
	}
	return out
}

// Scale returns s·a for a fixed scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	out := t.newNode(a.Value.Scale(s), nil)
	out.back = func() {
		a.Grad.AddScaledInPlace(s, out.Grad)
	}
	return out
}

// MatMul returns the matrix product a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	out := t.newNode(a.Value.MatMul(b.Value), nil)
	out.back = func() {
		// dA = dOut · Bᵀ ; dB = Aᵀ · dOut
		a.Grad.AddInPlace(out.Grad.MatMul(b.Value.T()))
		b.Grad.AddInPlace(a.Value.T().MatMul(out.Grad))
	}
	return out
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	out := t.newNode(a.Value.T(), nil)
	out.back = func() {
		a.Grad.AddInPlace(out.Grad.T())
	}
	return out
}

// AddRowBroadcast returns a + 1·b where a is R×C and b is 1×C: b is added to
// every row of a. This is the bias pattern for dense layers over lists.
func (t *Tape) AddRowBroadcast(a, b *Node) *Node {
	if b.Value.Rows != 1 || b.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("nn: AddRowBroadcast wants 1x%d bias, got %dx%d", a.Value.Cols, b.Value.Rows, b.Value.Cols))
	}
	v := a.Value.Clone()
	for i := 0; i < v.Rows; i++ {
		row := v.Row(i)
		for j, bv := range b.Value.Data {
			row[j] += bv
		}
	}
	out := t.newNode(v, nil)
	out.back = func() {
		a.Grad.AddInPlace(out.Grad)
		for i := 0; i < out.Grad.Rows; i++ {
			row := out.Grad.Row(i)
			for j, g := range row {
				b.Grad.Data[j] += g
			}
		}
	}
	return out
}

// ConcatCols concatenates nodes horizontally: [a | b | …].
func (t *Tape) ConcatCols(ns ...*Node) *Node {
	vals := make([]*mat.Matrix, len(ns))
	for i, n := range ns {
		vals[i] = n.Value
	}
	out := t.newNode(mat.ConcatCols(vals...), nil)
	out.back = func() {
		off := 0
		for _, n := range ns {
			for i := 0; i < n.Value.Rows; i++ {
				grow := out.Grad.Row(i)[off : off+n.Value.Cols]
				nrow := n.Grad.Row(i)
				for j, g := range grow {
					nrow[j] += g
				}
			}
			off += n.Value.Cols
		}
	}
	return out
}

// ConcatRows concatenates nodes vertically.
func (t *Tape) ConcatRows(ns ...*Node) *Node {
	vals := make([]*mat.Matrix, len(ns))
	for i, n := range ns {
		vals[i] = n.Value
	}
	out := t.newNode(mat.ConcatRows(vals...), nil)
	out.back = func() {
		off := 0
		for _, n := range ns {
			sz := len(n.Value.Data)
			for j := 0; j < sz; j++ {
				n.Grad.Data[j] += out.Grad.Data[off+j]
			}
			off += sz
		}
	}
	return out
}

// SliceCols returns columns [from, to) of a as a new node.
func (t *Tape) SliceCols(a *Node, from, to int) *Node {
	out := t.newNode(a.Value.SliceCols(from, to), nil)
	out.back = func() {
		for i := 0; i < out.Grad.Rows; i++ {
			grow := out.Grad.Row(i)
			arow := a.Grad.Row(i)
			for j, g := range grow {
				arow[from+j] += g
			}
		}
	}
	return out
}

// SliceRows returns rows [from, to) of a as a new node.
func (t *Tape) SliceRows(a *Node, from, to int) *Node {
	out := t.newNode(a.Value.SliceRows(from, to), nil)
	out.back = func() {
		cols := a.Value.Cols
		for i := 0; i < out.Grad.Rows; i++ {
			grow := out.Grad.Row(i)
			arow := a.Grad.Data[(from+i)*cols : (from+i+1)*cols]
			for j, g := range grow {
				arow[j] += g
			}
		}
	}
	return out
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := a.Value.Apply(mat.Sigmoid)
	out := t.newNode(v, nil)
	out.back = func() {
		for i, y := range v.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * y * (1 - y)
		}
	}
	return out
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	v := a.Value.Apply(math.Tanh)
	out := t.newNode(v, nil)
	out.back = func() {
		for i, y := range v.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * (1 - y*y)
		}
	}
	return out
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	v := a.Value.Apply(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	out := t.newNode(v, nil)
	out.back = func() {
		for i, x := range a.Value.Data {
			if x > 0 {
				a.Grad.Data[i] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// Softplus applies log(1+e^x) element-wise, computed stably. Its derivative
// is the sigmoid. Used to keep standard deviations positive in the
// probabilistic re-ranking head.
func (t *Tape) Softplus(a *Node) *Node {
	v := a.Value.Apply(softplus)
	out := t.newNode(v, nil)
	out.back = func() {
		for i, x := range a.Value.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * mat.Sigmoid(x)
		}
	}
	return out
}

func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// SoftmaxRows applies a stable softmax to each row of a.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	v := a.Value.SoftmaxRows()
	out := t.newNode(v, nil)
	out.back = func() {
		// For each row: dx_j = y_j (dy_j − Σ_k dy_k y_k).
		for i := 0; i < v.Rows; i++ {
			yrow := v.Row(i)
			gyrow := out.Grad.Row(i)
			garow := a.Grad.Row(i)
			var dot float64
			for k, y := range yrow {
				dot += gyrow[k] * y
			}
			for j, y := range yrow {
				garow[j] += y * (gyrow[j] - dot)
			}
		}
	}
	return out
}

// Sum reduces a to a 1×1 node containing the sum of its entries.
func (t *Tape) Sum(a *Node) *Node {
	out := t.newNode(mat.FromSlice(1, 1, []float64{a.Value.Sum()}), nil)
	out.back = func() {
		g := out.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	}
	return out
}

// Mean reduces a to a 1×1 node containing the mean of its entries.
func (t *Tape) Mean(a *Node) *Node {
	n := float64(len(a.Value.Data))
	out := t.newNode(mat.FromSlice(1, 1, []float64{a.Value.Mean()}), nil)
	out.back = func() {
		g := out.Grad.Data[0] / n
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	}
	return out
}

// MeanRows reduces a R×C node to 1×C by averaging over rows.
func (t *Tape) MeanRows(a *Node) *Node {
	r := a.Value.Rows
	v := mat.New(1, a.Value.Cols)
	for i := 0; i < r; i++ {
		row := a.Value.Row(i)
		for j, x := range row {
			v.Data[j] += x
		}
	}
	inv := 1.0
	if r > 0 {
		inv = 1 / float64(r)
	}
	v.ScaleInPlace(inv)
	out := t.newNode(v, nil)
	out.back = func() {
		for i := 0; i < r; i++ {
			arow := a.Grad.Row(i)
			for j, g := range out.Grad.Data {
				arow[j] += g * inv
			}
		}
	}
	return out
}

// SigmoidBCE computes the mean binary cross-entropy between sigmoid(logits)
// and targets, where logits is L×1 and targets has length L. The fused form
// is numerically stable: loss_i = softplus(z_i) − y_i·z_i, d/dz = σ(z) − y.
func (t *Tape) SigmoidBCE(logits *Node, targets []float64) *Node {
	l := logits.Value
	if l.Cols != 1 || l.Rows != len(targets) {
		panic(fmt.Sprintf("nn: SigmoidBCE wants %dx1 logits for %d targets, got %dx%d", len(targets), len(targets), l.Rows, l.Cols))
	}
	var loss float64
	for i, y := range targets {
		z := l.Data[i]
		loss += softplus(z) - y*z
	}
	n := float64(len(targets))
	if n == 0 {
		n = 1
	}
	out := t.newNode(mat.FromSlice(1, 1, []float64{loss / n}), nil)
	out.back = func() {
		g := out.Grad.Data[0] / n
		for i, y := range targets {
			logits.Grad.Data[i] += g * (mat.Sigmoid(l.Data[i]) - y)
		}
	}
	return out
}

// SoftmaxCrossEntropy computes −log softmax(logits)[target] for a 1×C
// logits row, the pointer-network step loss. The fused form is stable
// (log-sum-exp) and its gradient is softmax − onehot(target).
func (t *Tape) SoftmaxCrossEntropy(logits *Node, target int) *Node {
	row := logits.Value
	if row.Rows != 1 || target < 0 || target >= row.Cols {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy wants 1×C logits and target<C, got %dx%d target %d", row.Rows, row.Cols, target))
	}
	mx := math.Inf(-1)
	for _, v := range row.Data {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for _, v := range row.Data {
		sum += math.Exp(v - mx)
	}
	lse := mx + math.Log(sum)
	out := t.newNode(mat.FromSlice(1, 1, []float64{lse - row.Data[target]}), nil)
	out.back = func() {
		g := out.Grad.Data[0]
		for j, v := range row.Data {
			p := math.Exp(v - lse)
			if j == target {
				p -= 1
			}
			logits.Grad.Data[j] += g * p
		}
	}
	return out
}

// LayerNormRows normalizes each row of a to zero mean / unit variance and
// applies a learned per-column gain g and bias b (both 1×C nodes).
func (t *Tape) LayerNormRows(a, gain, bias *Node) *Node {
	const eps = 1e-5
	rows, cols := a.Value.Rows, a.Value.Cols
	v := mat.New(rows, cols)
	norm := mat.New(rows, cols) // x̂ before gain/bias, kept for backward
	invstd := make([]float64, rows)
	for i := 0; i < rows; i++ {
		row := a.Value.Row(i)
		var mu float64
		for _, x := range row {
			mu += x
		}
		mu /= float64(cols)
		var va float64
		for _, x := range row {
			d := x - mu
			va += d * d
		}
		va /= float64(cols)
		is := 1 / math.Sqrt(va+eps)
		invstd[i] = is
		nrow := norm.Row(i)
		vrow := v.Row(i)
		for j, x := range row {
			nh := (x - mu) * is
			nrow[j] = nh
			vrow[j] = nh*gain.Value.Data[j] + bias.Value.Data[j]
		}
	}
	out := t.newNode(v, nil)
	out.back = func() {
		for i := 0; i < rows; i++ {
			gout := out.Grad.Row(i)
			nrow := norm.Row(i)
			// Gradients through gain and bias.
			for j, g := range gout {
				gain.Grad.Data[j] += g * nrow[j]
				bias.Grad.Data[j] += g
			}
			// Gradient through normalization:
			// dx = invstd/C · (C·dx̂ − Σdx̂ − x̂·Σ(dx̂·x̂)) with dx̂ = dout·gain.
			c := float64(cols)
			var sum, sumxh float64
			dxh := make([]float64, cols)
			for j, g := range gout {
				d := g * gain.Value.Data[j]
				dxh[j] = d
				sum += d
				sumxh += d * nrow[j]
			}
			arow := a.Grad.Row(i)
			for j := range dxh {
				arow[j] += invstd[i] / c * (c*dxh[j] - sum - nrow[j]*sumxh)
			}
		}
	}
	return out
}
